// Conformance + soak suite for the simulation-as-a-service daemon
// (src/serve, docs/SERVE.md). Three contracts are enforced here:
//
//   1. Protocol conformance — every command's happy path, every documented
//      ErrorCode, and the connection-lifecycle rules (hello-first, sessions
//      die with their connection, command errors keep the connection alive).
//   2. Hostility containment — a fuzzed corpus of truncated frames,
//      oversized lengths, bad session ids, reflected reply kinds and raw
//      garbage may kill at most the offending connection; the daemon must
//      survive every one of them and still serve exact sessions afterwards.
//   3. Exactness — a served, resident session is spike-for-spike identical
//      to a solo compass run of the same network + inputs (the paper's
//      §VI-A one-to-one contract extended over the wire), including through
//      a mid-session checkpoint/restore round trip.
//
// The server runs single-threaded on its own std::thread; clients talk to it
// over real Unix-domain sockets, so the TSan soak exercises the only
// cross-thread surface (the atomic stop flag) plus full protocol traffic
// from N concurrent tenants.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/core/input_schedule.hpp"
#include "src/core/spike_sink.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/obs/json.hpp"
#include "src/serve/client.hpp"
#include "src/serve/server.hpp"
#include "tests/test_support.hpp"

namespace nsc {
namespace {

using core::InputSchedule;
using core::InputSpike;
using core::Network;
using core::Spike;
using core::Tick;
using serve::Client;
using serve::Cmd;
using serve::ErrorCode;
using serve::ServeError;

// ---------------------------------------------------------------------------
// Harness: one Server on its own thread, clients over its real socket.
// ---------------------------------------------------------------------------

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/nscsv_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

class ServeHarness {
 public:
  explicit ServeHarness(serve::Server::Config cfg = {}) {
    if (cfg.socket_path.empty()) cfg.socket_path = unique_socket_path();
    cfg.poll_interval_ms = 5;
    path_ = cfg.socket_path;
    server_ = std::make_unique<serve::Server>(std::move(cfg));
  }

  ~ServeHarness() { stop(); }

  void add_net(const std::string& name, Network net) {
    server_->add_network(name, std::move(net));
  }

  void start() {
    server_->bind();
    loop_ = std::thread([this] { server_->run(); });
  }

  /// Joins the loop without requesting a stop (kShutdown tests).
  void join() {
    if (loop_.joinable()) loop_.join();
  }

  void stop() {
    if (loop_.joinable()) {
      server_->request_stop();
      loop_.join();
    }
  }

  [[nodiscard]] Client client(int reply_deadline_ms = 30000) {
    return Client::connect(path_, 5000, reply_deadline_ms);
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] serve::Server& server() { return *server_; }

 private:
  std::string path_;
  std::unique_ptr<serve::Server> server_;
  std::thread loop_;
};

/// Small self-driven recurrent network (4 cores): fast, but chaotic enough
/// that any missed or extra synaptic op diverges the stream.
Network small_net(std::uint64_t seed = 11) {
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 2, 2};
  spec.rate_hz = 80;
  spec.synapses_per_axon = 32;
  spec.seed = seed;
  return netgen::make_recurrent(spec);
}

/// Deterministic external drive (absolute ticks, a few events per tick).
std::vector<InputSpike> drive_events(const Network& net, Tick ticks) {
  const auto ncores = static_cast<std::uint32_t>(net.cores.size());
  std::vector<InputSpike> events;
  for (Tick t = 0; t < ticks; ++t) {
    for (int k = 0; k < 3; ++k) {
      InputSpike e;
      e.tick = t;
      e.core = static_cast<core::CoreId>((t * 7 + k * 5) % ncores);
      e.axon = static_cast<std::uint16_t>((t * 13 + k * 31) % core::kCoreSize);
      events.push_back(e);
    }
  }
  return events;
}

std::vector<Spike> solo_witness(const Network& net, const std::vector<InputSpike>& events,
                                Tick ticks, int threads = 1) {
  InputSchedule in;
  for (const auto& e : events) in.add(e);
  in.finalize();
  return testsup::run_compass(net, events.empty() ? nullptr : &in, ticks, threads).spikes;
}

/// Drives a served session across [0, ticks) in `chunk`-tick commands,
/// draining the queue after each command.
std::vector<Spike> serve_session_run(Client& c, std::uint64_t session, Tick ticks,
                                     Tick chunk) {
  std::vector<Spike> out;
  Tick at = 0;
  while (at < ticks) {
    const Tick step = chunk > 0 && chunk < ticks - at ? chunk : ticks - at;
    c.tick(session, step);
    c.read_all_spikes(session, out);
    at += step;
  }
  return out;
}

ErrorCode error_code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ServeError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a ServeError";
  return ErrorCode::kBadRequest;
}

// ---------------------------------------------------------------------------
// Protocol conformance: happy paths and the documented error codes.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, HelloReportsCapacity) {
  ServeHarness h;
  h.add_net("a", small_net(1));
  h.add_net("b", small_net(2));
  h.start();
  Client c = h.client();
  const serve::HelloOk ok = c.hello();
  EXPECT_EQ(ok.version, serve::kVersion);
  EXPECT_EQ(ok.max_sessions, 16u);
  EXPECT_EQ(ok.active_sessions, 0u);
  EXPECT_EQ(ok.networks, 2u);
}

TEST(ServeProtocol, SessionLifecycleHappyPath) {
  ServeHarness h;
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  const serve::TickOk t1 = c.tick(s, 10);
  EXPECT_EQ(t1.now, 10);
  const serve::TickOk t2 = c.tick(s, 5);
  EXPECT_EQ(t2.now, 15);
  std::vector<Spike> spikes;
  c.read_all_spikes(s, spikes);
  EXPECT_FALSE(spikes.empty());
  c.destroy(s);
  EXPECT_EQ(error_code_of([&] { c.destroy(s); }), ErrorCode::kNoSuchSession);
}

TEST(ServeProtocol, CommandErrorsKeepConnectionAlive) {
  ServeHarness h;
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  EXPECT_EQ(error_code_of([&] { c.create("nosuch"); }), ErrorCode::kNoSuchNetwork);
  EXPECT_EQ(error_code_of([&] { c.tick(999, 5); }), ErrorCode::kNoSuchSession);
  std::vector<Spike> sink;
  EXPECT_EQ(error_code_of([&] { c.read_spikes(999, 10, sink); }),
            ErrorCode::kNoSuchSession);
  // The same connection still works after every refused command.
  const std::uint64_t s = c.create("net");
  EXPECT_EQ(c.tick(s, 3).now, 3);
}

TEST(ServeProtocol, AdmissionCapRefusesAndReleases) {
  serve::Server::Config cfg;
  cfg.max_sessions = 1;
  ServeHarness h(cfg);
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  EXPECT_EQ(error_code_of([&] { c.create("net"); }), ErrorCode::kAdmissionRefused);
  c.destroy(s);
  // Destroying the resident session frees the slot.
  const std::uint64_t s2 = c.create("net");
  c.destroy(s2);
}

TEST(ServeProtocol, InjectValidatesAllOrNothing) {
  ServeHarness h;
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  c.tick(s, 10, /*record=*/false);

  InputSpike past;
  past.tick = 5;  // Session is at tick 10; the past is immutable.
  past.core = 0;
  past.axon = 0;
  EXPECT_EQ(error_code_of([&] { c.inject(s, {past}); }), ErrorCode::kBadRequest);

  InputSpike bad_core;
  bad_core.tick = 20;
  bad_core.core = 1u << 20;  // Way past the 4-core network.
  bad_core.axon = 0;
  EXPECT_EQ(error_code_of([&] { c.inject(s, {bad_core}); }), ErrorCode::kBadRequest);

  InputSpike bad_axon;
  bad_axon.tick = 20;
  bad_axon.core = 0;
  bad_axon.axon = core::kCoreSize;  // One past the crossbar.
  EXPECT_EQ(error_code_of([&] { c.inject(s, {bad_axon}); }), ErrorCode::kBadRequest);
  c.destroy(s);
}

TEST(ServeProtocol, TickBoundsEnforced) {
  serve::Server::Config cfg;
  cfg.limits.max_ticks_per_cmd = 100;
  ServeHarness h(cfg);
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  EXPECT_EQ(error_code_of([&] { c.tick(s, -1); }), ErrorCode::kBadRequest);
  EXPECT_EQ(error_code_of([&] { c.tick(s, 101); }), ErrorCode::kLimitExceeded);
  EXPECT_EQ(c.tick(s, 100).now, 100);  // The bound itself is admitted.
}

TEST(ServeProtocol, CreateThreadsOutOfRangeRefused) {
  ServeHarness h;
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  EXPECT_EQ(error_code_of([&] { c.create("net", 100000); }), ErrorCode::kBadRequest);
}

TEST(ServeProtocol, RecordOffQueuesNothing) {
  ServeHarness h;
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  const serve::TickOk t = c.tick(s, 20, /*record=*/false);
  EXPECT_EQ(t.now, 20);
  EXPECT_EQ(t.queued, 0u);
  std::vector<Spike> spikes;
  EXPECT_EQ(c.read_spikes(s, 100, spikes), 0u);
  EXPECT_TRUE(spikes.empty());
}

TEST(ServeProtocol, QueueBackpressureDropsNewest) {
  serve::Server::Config cfg;
  cfg.limits.max_queued_spikes = 4;
  ServeHarness h(cfg);
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  const serve::TickOk t = c.tick(s, 30);  // Far more than 4 spikes in 30 ticks.
  EXPECT_LE(t.queued, 4u);
  EXPECT_GT(t.dropped_total, 0u);
  std::vector<Spike> spikes;
  c.read_all_spikes(s, spikes);
  EXPECT_LE(spikes.size(), 4u);
  // Drop-newest: what survives is the *head* of the stream.
  const std::vector<Spike> solo = solo_witness(small_net(), {}, 30);
  ASSERT_LE(spikes.size(), solo.size());
  for (std::size_t i = 0; i < spikes.size(); ++i) EXPECT_EQ(spikes[i], solo[i]) << i;
}

TEST(ServeProtocol, ShutdownCommandDrainsAndExits) {
  ServeHarness h;
  h.add_net("net", small_net());
  h.start();
  Client c = h.client();
  c.hello();
  c.shutdown();
  h.join();  // run() must return on its own — no request_stop().
  EXPECT_THROW(Client::connect(h.path(), 200), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Exactness: served == solo, spike for spike (§VI-A over the wire).
// ---------------------------------------------------------------------------

TEST(ServeExactness, ServedSessionMatchesSoloCompass) {
  const Network net = small_net(21);
  const Tick ticks = 60;
  const std::vector<InputSpike> events = drive_events(net, ticks);
  const std::vector<Spike> solo = solo_witness(net, events, ticks);

  ServeHarness h;
  h.add_net("net", small_net(21));
  h.start();
  Client c = h.client();
  c.hello();
  for (const Tick chunk : {Tick{0}, Tick{7}, Tick{1}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    const std::uint64_t s = c.create("net");
    c.inject(s, events);
    testsup::expect_spikes_equal(solo, serve_session_run(c, s, ticks, chunk),
                                 "served vs solo");
    c.destroy(s);
  }
}

TEST(ServeExactness, SessionThreadCountNeverChangesTheStream) {
  const Network net = small_net(22);
  const Tick ticks = 50;
  const std::vector<Spike> solo = solo_witness(net, {}, ticks);

  ServeHarness h;
  h.add_net("net", small_net(22));
  h.start();
  Client c = h.client();
  c.hello();
  for (const std::uint32_t threads : {1u, 3u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::uint64_t s = c.create("net", threads);
    testsup::expect_spikes_equal(solo, serve_session_run(c, s, ticks, 0), "served vs solo");
    c.destroy(s);
  }
}

TEST(ServeExactness, CheckpointRestoreRoundTripMidSession) {
  const Network net = testsup::hard_network();
  const Tick ticks = 40;
  const InputSchedule solo_in = testsup::hard_inputs(net, ticks);
  const std::vector<InputSpike> events(solo_in.events().begin(), solo_in.events().end());
  const std::vector<Spike> solo = testsup::run_compass(net, &solo_in, ticks, 1).spikes;

  ServeHarness h;
  h.add_net("hard", testsup::hard_network());
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("hard");
  c.inject(s, events);

  std::vector<Spike> head;
  c.tick(s, 20);
  c.read_all_spikes(s, head);
  const std::vector<std::uint8_t> blob = c.checkpoint(s);
  EXPECT_FALSE(blob.empty());

  std::vector<Spike> tail_a;
  c.tick(s, 20);
  c.read_all_spikes(s, tail_a);

  c.restore(s, blob);
  EXPECT_EQ(c.tick(s, 0).now, 20);  // Restored to the checkpoint tick.
  std::vector<Spike> tail_b;
  c.tick(s, 20);
  c.read_all_spikes(s, tail_b);

  testsup::expect_spikes_equal(tail_a, tail_b, "replayed tail vs original tail");
  std::vector<Spike> full = head;
  full.insert(full.end(), tail_a.begin(), tail_a.end());
  testsup::expect_spikes_equal(solo, full, "served (with roundtrip) vs solo");
  c.destroy(s);
}

TEST(ServeExactness, RestoreRejectsGarbageAndPreservesSession) {
  const Network net = small_net(23);
  const Tick ticks = 40;
  const std::vector<Spike> solo = solo_witness(net, {}, ticks);

  ServeHarness h;
  h.add_net("net", small_net(23));
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  std::vector<Spike> stream;
  c.tick(s, 20);
  c.read_all_spikes(s, stream);

  const std::vector<std::uint8_t> garbage(256, 0xAB);
  EXPECT_EQ(error_code_of([&] { c.restore(s, garbage); }), ErrorCode::kBadCheckpoint);
  EXPECT_EQ(error_code_of([&] { c.restore(s, {}); }), ErrorCode::kBadCheckpoint);

  // The failed restores must not have perturbed the resident simulator.
  EXPECT_EQ(c.tick(s, 20).now, 40);
  c.read_all_spikes(s, stream);
  testsup::expect_spikes_equal(solo, stream, "post-bad-restore stream vs solo");
  c.destroy(s);
}

// ---------------------------------------------------------------------------
// Hostility: nothing a client sends may kill the daemon.
// ---------------------------------------------------------------------------

/// Expects the daemon to drop this connection (recv sees EOF, or the send
/// itself fails once the daemon closed first).
void expect_connection_dropped(ipc::Channel& ch) {
  ipc::Frame f;
  const ipc::RecvStatus st = ch.recv_frame_deadline(f, 10000);
  EXPECT_EQ(st, ipc::RecvStatus::kClosed);
}

/// After any hostile episode the daemon must still serve an exact session.
void expect_daemon_still_exact(ServeHarness& h, const std::vector<Spike>& solo) {
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  testsup::expect_spikes_equal(solo, serve_session_run(c, s, 30, 0),
                               "post-hostility served vs solo");
  c.destroy(s);
}

TEST(ServeHostile, FirstFrameMustBeHello) {
  ServeHarness h;
  h.add_net("net", small_net(31));
  h.start();
  const std::vector<Spike> solo = solo_witness(small_net(31), {}, 30);

  {  // A command before the handshake is protocol abuse.
    Client c = h.client();
    serve::SessionReq req;
    std::vector<std::uint8_t> payload;
    ipc::put_pod(payload, req);
    ASSERT_TRUE(c.channel().send_frame(static_cast<std::uint32_t>(Cmd::kDestroy),
                                       payload.data(), payload.size()));
    expect_connection_dropped(c.channel());
  }
  {  // Wrong magic.
    Client c = h.client();
    serve::HelloReq req;
    req.magic = 0xDEADBEEF;
    std::vector<std::uint8_t> payload;
    ipc::put_pod(payload, req);
    ASSERT_TRUE(c.channel().send_frame(static_cast<std::uint32_t>(Cmd::kHello),
                                       payload.data(), payload.size()));
    expect_connection_dropped(c.channel());
  }
  {  // Wrong version.
    Client c = h.client();
    serve::HelloReq req;
    req.version = 999;
    std::vector<std::uint8_t> payload;
    ipc::put_pod(payload, req);
    ASSERT_TRUE(c.channel().send_frame(static_cast<std::uint32_t>(Cmd::kHello),
                                       payload.data(), payload.size()));
    expect_connection_dropped(c.channel());
  }
  expect_daemon_still_exact(h, solo);
}

TEST(ServeHostile, OversizedFrameHeaderKillsOnlyThatConnection) {
  serve::Server::Config cfg;
  cfg.max_frame_payload = 1u << 16;
  ServeHarness h(cfg);
  h.add_net("net", small_net(31));
  h.start();
  const std::vector<Spike> solo = solo_witness(small_net(31), {}, 30);

  Client victim = h.client();
  victim.hello();
  const std::uint64_t s = victim.create("net");
  victim.tick(s, 5);

  // A header claiming a payload past the daemon's bound: unframeable, fatal
  // for the connection — and its session dies with it.
  const std::uint32_t hostile[2] = {static_cast<std::uint32_t>(Cmd::kTick), 1u << 30};
  EXPECT_GT(victim.channel().write_some(hostile, sizeof hostile), 0);
  expect_connection_dropped(victim.channel());

  expect_daemon_still_exact(h, solo);
  // The killed connection's session was reaped (slot free again under a
  // fresh connection).
  Client c = h.client();
  c.hello();
  EXPECT_EQ(error_code_of([&] { c.tick(s, 1); }), ErrorCode::kNoSuchSession);
}

TEST(ServeHostile, TruncatedPayloadCorpusGetsErrorsNeverDeath) {
  ServeHarness h;
  h.add_net("net", small_net(31));
  h.start();
  const std::vector<Spike> solo = solo_witness(small_net(31), {}, 30);

  Client c = h.client();
  c.hello();
  // Every command kind, with payloads cut to every prefix of a plausible
  // request: all must come back as one kError (well-framed abuse), and the
  // connection must stay usable throughout.
  for (const Cmd cmd : {Cmd::kCreate, Cmd::kTick, Cmd::kInject, Cmd::kReadSpikes,
                        Cmd::kCheckpoint, Cmd::kRestore, Cmd::kDestroy}) {
    std::vector<std::uint8_t> full(24, 0x5C);
    for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                  std::size_t{15}}) {
      ASSERT_TRUE(c.channel().send_frame(static_cast<std::uint32_t>(cmd), full.data(),
                                         std::min(len, full.size())));
      ipc::Frame reply;
      ASSERT_EQ(c.channel().recv_frame_deadline(reply, 10000), ipc::RecvStatus::kOk)
          << "cmd=" << static_cast<std::uint32_t>(cmd) << " len=" << len;
      EXPECT_EQ(reply.kind, static_cast<std::uint32_t>(Cmd::kError));
    }
  }
  // Inject whose count promises more records than the frame carries.
  {
    serve::InjectReq req;
    req.session = 1;
    req.count = 1u << 20;
    std::vector<std::uint8_t> payload;
    ipc::put_pod(payload, req);
    ASSERT_TRUE(c.channel().send_frame(static_cast<std::uint32_t>(Cmd::kInject),
                                       payload.data(), payload.size()));
    ipc::Frame reply;
    ASSERT_EQ(c.channel().recv_frame_deadline(reply, 10000), ipc::RecvStatus::kOk);
    EXPECT_EQ(reply.kind, static_cast<std::uint32_t>(Cmd::kError));
  }
  // The abused connection can still do real work.
  const std::uint64_t s = c.create("net");
  testsup::expect_spikes_equal(solo, serve_session_run(c, s, 30, 0),
                               "post-corpus served vs solo");
  c.destroy(s);
  expect_daemon_still_exact(h, solo);
}

TEST(ServeHostile, RandomGarbageFramesNeverKillTheDaemon) {
  ServeHarness h;
  h.add_net("net", small_net(31));
  h.start();
  const std::vector<Spike> solo = solo_witness(small_net(31), {}, 30);

  // Seeded LCG so the corpus is reproducible (no wall-clock entropy).
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  Client c = h.client();
  c.hello();
  for (int i = 0; i < 200; ++i) {
    // Kinds sweep commands, replies (reflected), and unknown values; session
    // ids and payload bytes are garbage.
    const auto kind = static_cast<std::uint32_t>(next() % 97);
    std::vector<std::uint8_t> payload(next() % 48);
    for (auto& b : payload) b = static_cast<std::uint8_t>(next());
    ASSERT_TRUE(c.channel().send_frame(kind, payload.data(), payload.size())) << i;
    ipc::Frame reply;
    ASSERT_EQ(c.channel().recv_frame_deadline(reply, 10000), ipc::RecvStatus::kOk) << i;
    // Every well-framed command gets exactly one reply; garbage is refused,
    // never fatal. (kStats/kShutdown are excluded kinds-wise only by luck of
    // the modulus — both are harmless no-session commands anyway, but a
    // drained daemon would break the exactness check below, so skip them.)
    if (kind == static_cast<std::uint32_t>(Cmd::kStats)) continue;
    if (kind == static_cast<std::uint32_t>(Cmd::kHello)) continue;
    if (kind == static_cast<std::uint32_t>(Cmd::kShutdown)) continue;
    EXPECT_EQ(reply.kind, static_cast<std::uint32_t>(Cmd::kError)) << "kind=" << kind;
  }
  expect_daemon_still_exact(h, solo);
}

TEST(ServeHostile, ForgedCheckpointBlobsAreContained) {
  ServeHarness h;
  h.add_net("net", small_net(31));
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s = c.create("net");
  std::vector<std::uint8_t> blob = c.checkpoint(s);
  ASSERT_GT(blob.size(), 64u);
  // Corrupt interior bytes at seeded offsets; every forged blob must be
  // refused (kBadCheckpoint) or — if the mutation is semantically invisible
  // — accepted; either way the daemon survives and the session stays live.
  std::uint64_t state = 12345;
  for (int i = 0; i < 16; ++i) {
    state = state * 6364136223846793005ull + 1;
    std::vector<std::uint8_t> forged = blob;
    forged[state % forged.size()] ^= 0xFF;
    try {
      c.restore(s, forged);
      c.restore(s, blob);  // Undo an accepted forgery: back to known state.
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadCheckpoint) << i;
    }
  }
  EXPECT_GE(c.tick(s, 5).now, 5);
  c.destroy(s);
}

// ---------------------------------------------------------------------------
// Multi-tenancy: ownership, reaping, per-tenant stats, eviction, soak.
// ---------------------------------------------------------------------------

TEST(ServeTenancy, SessionsAreOwnedByTheirConnection) {
  ServeHarness h;
  h.add_net("net", small_net(41));
  h.start();
  Client a = h.client();
  a.hello();
  const std::uint64_t s = a.create("net");

  Client b = h.client();
  b.hello();
  // Another tenant cannot tick, read, checkpoint, restore or destroy it —
  // the id is not even acknowledged to exist.
  EXPECT_EQ(error_code_of([&] { b.tick(s, 1); }), ErrorCode::kNoSuchSession);
  std::vector<Spike> sink;
  EXPECT_EQ(error_code_of([&] { b.read_spikes(s, 1, sink); }), ErrorCode::kNoSuchSession);
  EXPECT_EQ(error_code_of([&] { b.checkpoint(s); }), ErrorCode::kNoSuchSession);
  EXPECT_EQ(error_code_of([&] { b.destroy(s); }), ErrorCode::kNoSuchSession);
  // The owner is unaffected by the attempts.
  EXPECT_EQ(a.tick(s, 5).now, 5);
  a.destroy(s);
}

TEST(ServeTenancy, ConnectionDeathReapsItsSessions) {
  serve::Server::Config cfg;
  cfg.max_sessions = 1;
  ServeHarness h(cfg);
  h.add_net("net", small_net(41));
  h.start();
  {
    Client a = h.client();
    a.hello();
    a.create("net");  // Occupies the only slot, then the connection dies.
  }
  // The daemon notices the hangup and frees the slot; a new tenant must get
  // it within the poll cadence.
  Client b = h.client();
  b.hello();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    try {
      b.destroy(b.create("net"));
      break;
    } catch (const ServeError& e) {
      ASSERT_EQ(e.code(), ErrorCode::kAdmissionRefused);
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "slot never reaped";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

TEST(ServeTenancy, StatsIsolatePerTenantCounters) {
  ServeHarness h;
  h.add_net("net", small_net(41));
  h.start();
  Client c = h.client();
  c.hello();
  const std::uint64_t s1 = c.create("net");
  const std::uint64_t s2 = c.create("net");
  c.tick(s1, 7);
  c.tick(s2, 31, /*record=*/false);

  const obs::JsonValue doc = obs::parse_json(c.stats_json());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "nsc-bench-v1");
  const obs::JsonValue* sessions = doc.find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->items().size(), 2u);
  for (const obs::JsonValue& row : sessions->items()) {
    const auto id = static_cast<std::uint64_t>(row.find("id")->as_int());
    const std::int64_t ticks = row.find("ticks_served")->as_int();
    const auto queued = static_cast<std::uint64_t>(row.find("queue_depth")->as_int());
    if (id == s1) {
      EXPECT_EQ(ticks, 7);
      EXPECT_GT(queued, 0u);  // record=true queued its spikes.
    } else {
      EXPECT_EQ(id, s2);
      EXPECT_EQ(ticks, 31);
      EXPECT_EQ(queued, 0u);  // record=false queued nothing.
    }
  }
  c.destroy(s1);
  c.destroy(s2);

  // Daemon totals survive session churn (folded into retired counters).
  const obs::JsonValue after = obs::parse_json(c.stats_json());
  EXPECT_EQ(after.find("ticks")->as_int(), 38);
  EXPECT_EQ(after.find("sessions")->items().size(), 0u);
}

TEST(ServeTenancy, SlowClientIsEvictedOthersUnaffected) {
  serve::Server::Config cfg;
  cfg.max_conn_out_bytes = 4096;  // One checkpoint blob blows this bound.
  ServeHarness h(cfg);
  h.add_net("net", small_net(41));
  h.add_net("hard", testsup::hard_network());
  h.start();

  Client healthy = h.client();
  healthy.hello();
  const std::uint64_t hs = healthy.create("net");
  healthy.tick(hs, 5, /*record=*/false);

  // The slow tenant asks for a reply (a 16-core checkpoint blob) far larger
  // than its allowed backlog: the daemon sheds it instead of buffering
  // without bound.
  Client slow = h.client();
  slow.hello();
  const std::uint64_t ss = slow.create("hard");
  EXPECT_THROW(slow.checkpoint(ss), std::runtime_error);

  // The healthy tenant never noticed: still resident, still exact ticks.
  EXPECT_EQ(healthy.tick(hs, 5, false).now, 10);
  healthy.destroy(hs);
  EXPECT_GT(testsup::counter_value(h.server().metrics(), "serve.conns_evicted_slow"), 0u);
}

TEST(ServeSoak, ConcurrentTenantsStayExactAndIsolated) {
  const Tick ticks = 30;
  const std::vector<Spike> solo = solo_witness(small_net(51), {}, ticks);

  ServeHarness h;
  h.add_net("net", small_net(51));
  h.start();

  constexpr int kTenants = 4;
  constexpr int kIterations = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      try {
        Client c = h.client();
        c.hello();
        for (int i = 0; i < kIterations; ++i) {
          const std::uint64_t s = c.create("net");
          // Interleave plain runs with checkpoint/restore round trips so
          // blob traffic and tick traffic contend.
          std::vector<Spike> stream;
          if ((t + i) % 2 == 0) {
            stream = serve_session_run(c, s, ticks, 1 + t);
          } else {
            c.tick(s, ticks / 2);
            c.read_all_spikes(s, stream);
            const std::vector<std::uint8_t> blob = c.checkpoint(s);
            c.restore(s, blob);
            c.tick(s, ticks - ticks / 2);
            c.read_all_spikes(s, stream);
          }
          if (stream != solo) {
            ++failures;
            return;
          }
          c.destroy(s);
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& th : tenants) th.join();
  EXPECT_EQ(failures.load(), 0) << "a tenant diverged or was refused";

  h.stop();
  // Post-mortem counter audit: every tenant's ticks arrived, nothing leaked.
  const obs::Registry& m = h.server().metrics();
  EXPECT_EQ(testsup::counter_value(m, "serve.sessions_created"),
            static_cast<std::uint64_t>(kTenants * kIterations));
  EXPECT_EQ(testsup::counter_value(m, "serve.ticks_served"),
            static_cast<std::uint64_t>(kTenants * kIterations) * ticks);
  EXPECT_EQ(h.server().active_sessions(), 0u);
}

}  // namespace
}  // namespace nsc
