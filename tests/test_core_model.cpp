// Tests for crossbar, geometry, input schedules, network description,
// serialization round-trips and validation.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "src/core/crossbar.hpp"
#include "src/core/input_schedule.hpp"
#include "src/core/neuron_hot.hpp"
#include "src/core/spike_sink.hpp"
#include "src/core/network.hpp"
#include "src/core/network_io.hpp"
#include "src/core/types.hpp"
#include "src/analysis/lint.hpp"
#include "src/netgen/random_net.hpp"

namespace nsc::core {
namespace {

TEST(GeometryTest, TrueNorthChipCounts) {
  const Geometry g = truenorth_chip();
  EXPECT_EQ(g.total_cores(), 4096);
  EXPECT_EQ(g.neurons(), 1'048'576);
  EXPECT_EQ(g.cores_per_chip(), 4096);
  EXPECT_EQ(g.chips(), 1);
}

TEST(GeometryTest, LocalAndGlobalXYRoundTrip) {
  const Geometry g{2, 3, 8, 8};  // 6 chips of 64 cores
  EXPECT_EQ(g.total_cores(), 6 * 64);
  for (CoreId c = 0; c < static_cast<CoreId>(g.total_cores()); c += 7) {
    const auto gxy = g.global_xy(c);
    EXPECT_EQ(g.core_at_global(gxy.x, gxy.y), c);
  }
}

TEST(GeometryTest, ChipOfMatchesChipXY) {
  const Geometry g{2, 2, 4, 4};
  const CoreId c = g.core_at(3, 1, 2);  // chip 3 = (1,1)
  EXPECT_EQ(g.chip_of(c), 3);
  EXPECT_EQ(g.chip_xy(c).x, 1);
  EXPECT_EQ(g.chip_xy(c).y, 1);
  EXPECT_EQ(g.local_xy(c).x, 1);
  EXPECT_EQ(g.local_xy(c).y, 2);
}

TEST(CrossbarTest, SetTestCountColumns) {
  Crossbar x;
  x.set(0, 0);
  x.set(0, 255);
  x.set(200, 0);
  EXPECT_TRUE(x.test(0, 0));
  EXPECT_FALSE(x.test(1, 0));
  EXPECT_EQ(x.count(), 3);
  EXPECT_EQ(x.row_count(0), 2);
  EXPECT_EQ(x.column_count(0), 2);
  x.set(0, 0, false);
  EXPECT_EQ(x.count(), 2);
  x.clear();
  EXPECT_EQ(x.count(), 0);
}

TEST(InputScheduleTest, SortsAndIndexes) {
  InputSchedule in;
  in.add(5, 1, 10);
  in.add(2, 0, 3);
  in.add(5, 0, 7);
  in.add(2, 0, 3);  // duplicate: merged
  in.finalize();
  EXPECT_EQ(in.size(), 3u);
  EXPECT_EQ(in.at(2).size(), 1u);
  EXPECT_EQ(in.at(5).size(), 2u);
  EXPECT_EQ(in.at(3).size(), 0u);
  EXPECT_EQ(in.at(99).size(), 0u);
  EXPECT_EQ(in.last_tick(), 5);
  // Canonical order within tick 5.
  EXPECT_EQ(in.at(5)[0].core, 0u);
  EXPECT_EQ(in.at(5)[1].core, 1u);
}

TEST(InputScheduleTest, EmptySchedule) {
  InputSchedule in;
  in.finalize();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(in.at(0).size(), 0u);
  EXPECT_EQ(in.last_tick(), -1);
}

TEST(NetworkTest, CountsSynapsesAndNeurons) {
  Network net(Geometry{1, 1, 2, 1});
  net.core(0).crossbar.set(0, 0);
  net.core(0).crossbar.set(1, 5);
  net.core(1).neuron[0].enabled = 1;
  net.core(0).neuron[0].enabled = 1;
  for (int j = 1; j < kCoreSize; ++j) {
    net.core(0).neuron[j].enabled = 0;
    net.core(1).neuron[j].enabled = 0;
  }
  EXPECT_EQ(net.total_synapses(), 2u);
  EXPECT_EQ(net.enabled_neurons(), 2u);
  EXPECT_EQ(net.used_cores(), 2);
}

TEST(NetworkIoTest, RoundTripRandomNetwork) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 3, 2};
  spec.seed = 99;
  const Network net = netgen::make_random(spec);
  std::stringstream buf;
  save_network(net, buf);
  const Network loaded = load_network(buf);
  ASSERT_EQ(loaded.geom, net.geom);
  EXPECT_EQ(loaded.seed, net.seed);
  for (CoreId c = 0; c < static_cast<CoreId>(net.geom.total_cores()); ++c) {
    ASSERT_EQ(loaded.core(c).crossbar, net.core(c).crossbar) << "core " << c;
    ASSERT_EQ(loaded.core(c).axon_type, net.core(c).axon_type);
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& a = loaded.core(c).neuron[j];
      const NeuronParams& b = net.core(c).neuron[j];
      ASSERT_EQ(a.threshold, b.threshold);
      ASSERT_EQ(a.leak, b.leak);
      ASSERT_EQ(a.init_v, b.init_v);
      ASSERT_EQ(a.target.core, b.target.core);
      ASSERT_EQ(a.target.axon, b.target.axon);
      ASSERT_EQ(a.target.delay, b.target.delay);
      ASSERT_EQ(a.stochastic_weight, b.stochastic_weight);
    }
  }
}

TEST(NetworkIoTest, RejectsGarbage) {
  std::stringstream buf("this is not a network file at all");
  EXPECT_THROW((void)load_network(buf), std::runtime_error);
}

// Envelope validation now lives in src/analysis (nsc_lint); these cover the
// require_deployable migration path for the old validate_or_throw callers.
// Per-rule coverage is in tests/test_analysis.cpp.
TEST(ValidationTest, CleanNetworkPasses) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  const Network net = netgen::make_random(spec);
  EXPECT_EQ(analysis::lint(net).count(analysis::Severity::kError), 0u);
  EXPECT_NO_THROW(analysis::require_deployable(net));
}

TEST(ValidationTest, CatchesBadTargetCore) {
  Network net(Geometry{1, 1, 2, 1});
  net.core(0).neuron[0].target = {999, 0, 1};
  const auto report = analysis::lint(net);
  EXPECT_TRUE(report.has_rule("NSC005"));
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].core, 0u);
  EXPECT_THROW(analysis::require_deployable(net), std::runtime_error);
}

TEST(ValidationTest, CatchesBadDelay) {
  Network net(Geometry{1, 1, 2, 1});
  net.core(0).neuron[3].target = {1, 0, 0};  // delay 0 < kMinDelay
  EXPECT_TRUE(analysis::lint(net).has_rule("NSC007"));
  net.core(0).neuron[3].target = {1, 0, 16};  // > kMaxDelay
  EXPECT_TRUE(analysis::lint(net).has_rule("NSC007"));
}

TEST(ValidationTest, CatchesNonPositiveThreshold) {
  Network net(Geometry{1, 1, 1, 1});
  net.core(0).neuron[0].threshold = 0;
  EXPECT_TRUE(analysis::lint(net).has_rule("NSC003"));
}

TEST(ValidationTest, CatchesTargetOnDisabledCore) {
  Network net(Geometry{1, 1, 2, 1});
  net.core(1).disabled = 1;
  for (auto& p : net.core(1).neuron) p.enabled = 0;
  net.core(0).neuron[0].target = {1, 0, 1};
  EXPECT_TRUE(analysis::lint(net).has_rule("NSC006"));
}

TEST(KernelStatsTest, RateAndSynapsesPerDelivery) {
  KernelStats s;
  s.ticks = 100;
  s.spikes = 2000;
  s.sops = 256000;
  s.axon_events = 2000;
  // 2000 spikes / (100 ticks * 1000 neurons) * 1000 Hz = 20 Hz
  EXPECT_DOUBLE_EQ(s.mean_rate_hz(1000), 20.0);
  EXPECT_DOUBLE_EQ(s.mean_synapses_per_delivery(), 128.0);
}

TEST(SpikeOrdering, ComparesLexicographically) {
  const Spike a{1, 2, 3}, b{1, 2, 4}, c{2, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Spike{1, 2, 3}));
}

TEST(TraceHash, EmptyStreamIsFnvOffsetBasis) {
  EXPECT_EQ(trace_hash({}), TraceHashSink::kFnvOffset);
}

TEST(TraceHash, StreamingSinkMatchesBatchAndDetectsReordering) {
  const std::vector<Spike> spikes = {{0, 1, 2}, {0, 1, 3}, {5, 0, 255}};
  TraceHashSink sink;
  for (const Spike& s : spikes) sink.on_spike(s.tick, s.core, s.neuron);
  EXPECT_EQ(sink.hash(), trace_hash(spikes));
  EXPECT_EQ(sink.spike_count(), spikes.size());
  // Order, tick, core and neuron all feed the digest.
  EXPECT_NE(trace_hash({{0, 1, 3}, {0, 1, 2}, {5, 0, 255}}), trace_hash(spikes));
  EXPECT_NE(trace_hash({{1, 1, 2}, {0, 1, 3}, {5, 0, 255}}), trace_hash(spikes));
  EXPECT_NE(trace_hash({{0, 2, 2}, {0, 1, 3}, {5, 0, 255}}), trace_hash(spikes));
  EXPECT_NE(trace_hash({{0, 1, 2}, {0, 1, 3}}), trace_hash(spikes));
}

// ---------------------------------------------------------------------------
// Property tests for the hot-path helpers (src/core/neuron_hot.hpp): the
// dense-word masked accumulate and the vectorizable integrate+leak sweep
// must equal their naive per-bit / int64-clamped oracles bit for bit.
// ---------------------------------------------------------------------------

TEST(NeuronHotProperty, DenseAccumulateMatchesCtzWalk) {
  util::Xoshiro rng(321);
  std::array<std::int16_t, 64> w{};
  for (auto& x : w) {
    x = static_cast<std::int16_t>(static_cast<int>(rng.next_below(513)) + kWeightMin);
  }
  std::vector<std::uint64_t> words = {0, ~0ULL, 1ULL, 1ULL << 63, 0x8000000000000001ULL};
  for (int n = 0; n < 32; ++n) words.push_back(rng.next() & rng.next());
  for (int n = 0; n < 32; ++n) words.push_back(rng.next() | rng.next());
  for (const std::uint64_t bits : words) {
    std::array<std::int32_t, 64> fast{}, naive{};
    for (auto& x : fast) x = static_cast<std::int32_t>(rng.next_below(1000)) - 500;
    naive = fast;
    hot_accumulate_word(fast.data(), w.data(), bits);
    for (int k = 0; k < 64; ++k) {
      if ((bits >> k) & 1U) naive[static_cast<std::size_t>(k)] += w[static_cast<std::size_t>(k)];
    }
    EXPECT_EQ(fast, naive) << "bits=" << bits;
  }
}

TEST(NeuronHotProperty, SweepMatchesInt64ClampedOracle) {
  util::Xoshiro rng(654);
  std::vector<std::int32_t> hot(kHotStride);
  std::int32_t* leak = hot.data();
  std::int32_t* alpha = hot.data() + kCoreSize;
  std::int32_t* floor_le = hot.data() + 2 * kCoreSize;
  std::array<std::int32_t, kCoreSize> v{}, acc{};
  for (int j = 0; j < kCoreSize; ++j) {
    // Stress the clamp edges: potentials near both rails, leaks that push
    // past them, thresholds straddling the resulting values.
    v[static_cast<std::size_t>(j)] =
        static_cast<std::int32_t>(rng.next_below(2 * 1048576)) - 1048576;  // |v| <= 2^20
    acc[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(rng.next_below(131072)) - 65536;
    leak[j] = static_cast<std::int32_t>(rng.next_below(2048)) - 1024;
    alpha[j] = static_cast<std::int32_t>(rng.next_below(262144));
    floor_le[j] = -static_cast<std::int32_t>(rng.next_below(262144)) - 1;
  }
  for (const bool with_acc : {true, false}) {
    auto fast_v = v;
    std::array<std::uint8_t, kCoreSize> bad{};
    hot_neuron_sweep(fast_v.data(), with_acc ? acc.data() : nullptr, hot.data(), bad.data());
    for (int j = 0; j < kCoreSize; ++j) {
      std::int64_t x = v[static_cast<std::size_t>(j)];
      if (with_acc) x = clamp_potential(x + acc[static_cast<std::size_t>(j)]);
      const std::int32_t want = clamp_potential(x + leak[j]);
      EXPECT_EQ(fast_v[static_cast<std::size_t>(j)], want) << "neuron " << j;
      const bool want_bad = want >= alpha[j] || want <= floor_le[j];
      EXPECT_EQ(bad[static_cast<std::size_t>(j)] != 0, want_bad) << "neuron " << j;
    }
  }
}

}  // namespace
}  // namespace nsc::core
