// Tests for the corelet compositional layer: pins, connections, absorption,
// placement strategies, and the library corelets (splitter, relay, delay
// line, WTA) executed on the TrueNorth backend.
#include <gtest/gtest.h>

#include "src/core/spike_sink.hpp"
#include "src/analysis/lint.hpp"
#include "src/corelet/corelet.hpp"
#include "src/corelet/lib.hpp"
#include "src/corelet/place.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc::corelet {
namespace {

using core::InputSchedule;
using core::Spike;
using core::Tick;
using core::VectorSink;

/// Places, validates and runs a corelet against an input schedule.
std::vector<Spike> run_corelet(const Corelet& c, const InputSchedule& in, Tick ticks,
                               PlaceStrategy strategy = PlaceStrategy::kBlock2D) {
  PlacedCorelet placed = place(c, fit_geometry(c), strategy);
  analysis::require_deployable(placed.network);
  tn::TrueNorthSimulator sim(placed.network);
  VectorSink sink;
  sim.run(ticks, &in, &sink);
  return sink.spikes();
}

TEST(CoreletTest, AddCoreStartsDisabled) {
  Corelet c("t");
  const int k = c.add_core();
  EXPECT_EQ(k, 0);
  EXPECT_EQ(c.core_count(), 1);
  EXPECT_EQ(c.enabled_neurons(), 0u);
}

TEST(CoreletTest, ConnectValidatesArguments) {
  Corelet c("t");
  c.add_core();
  EXPECT_THROW(c.connect({1, 0}, {0, 0}), std::out_of_range);
  EXPECT_THROW(c.connect({0, 0}, {0, 0}, 0), std::out_of_range);
  EXPECT_THROW(c.connect({0, 0}, {0, 0}, 16), std::out_of_range);
  EXPECT_NO_THROW(c.connect({0, 0}, {0, 0}, 15));
}

TEST(CoreletTest, AbsorbRebasesInternalConnections) {
  Corelet child("child");
  child.add_core();
  child.add_core();
  child.connect({0, 5}, {1, 7}, 2);

  Corelet parent("parent");
  parent.add_core();
  const int off = parent.absorb(std::move(child));
  EXPECT_EQ(off, 1);
  EXPECT_EQ(parent.core_count(), 3);
  const auto& target = parent.core(1).neuron[5].target;
  EXPECT_EQ(target.core, 2u);  // rebased from 1
  EXPECT_EQ(target.axon, 7);
  EXPECT_EQ(target.delay, 2);
}

TEST(PlaceTest, LinearMapsIdentity) {
  Corelet c("t");
  c.add_core();
  c.add_core();
  const PlacedCorelet p = place(c, core::Geometry{1, 1, 2, 2}, PlaceStrategy::kLinear);
  EXPECT_EQ(p.core_map[0], 0u);
  EXPECT_EQ(p.core_map[1], 1u);
}

TEST(PlaceTest, Block2DKeepsNeighborsClose) {
  Corelet c("t");
  for (int i = 0; i < 16; ++i) c.add_core();
  const core::Geometry g{1, 1, 8, 8};
  const PlacedCorelet p = place(c, g, PlaceStrategy::kBlock2D);
  // Consecutive logical cores must be mesh neighbors in snake order.
  for (int i = 0; i + 1 < 16; ++i) {
    const auto a = g.global_xy(p.core_map[static_cast<std::size_t>(i)]);
    const auto b = g.global_xy(p.core_map[static_cast<std::size_t>(i + 1)]);
    EXPECT_EQ(std::abs(a.x - b.x) + std::abs(a.y - b.y), 1) << "at " << i;
  }
}

TEST(PlaceTest, ThrowsWhenTooSmall) {
  Corelet c("t");
  for (int i = 0; i < 5; ++i) c.add_core();
  EXPECT_THROW((void)place(c, core::Geometry{1, 1, 2, 2}), std::runtime_error);
}

TEST(PlaceTest, FitGeometryCoversCorelet) {
  Corelet c("t");
  for (int i = 0; i < 10; ++i) c.add_core();
  const core::Geometry g = fit_geometry(c);
  EXPECT_GE(g.total_cores(), 10);
  EXPECT_LE(g.total_cores(), 16);  // 4x4 is the smallest square fit
}

TEST(SplitterTest, ReplicatesInputToAllOutputs) {
  const Corelet c = make_splitter(5);
  InputSchedule in;
  in.add(0, 0, 0);  // resolved below: splitter input pin is (core 0, axon 0)
  in.finalize();
  const auto spikes = run_corelet(c, in, 3);
  ASSERT_EQ(spikes.size(), 5u);
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(spikes[static_cast<std::size_t>(j)], (Spike{0, 0, static_cast<std::uint16_t>(j)}));
  }
}

TEST(SplitterTest, RejectsBadFanout) {
  EXPECT_THROW((void)make_splitter(0), std::out_of_range);
  EXPECT_THROW((void)make_splitter(257), std::out_of_range);
}

TEST(RelayTest, PassesChannelsIndependently) {
  const Corelet c = make_relay(8);
  InputSchedule in;
  in.add(0, 0, 3);
  in.add(2, 0, 6);
  in.finalize();
  const auto spikes = run_corelet(c, in, 5);
  ASSERT_EQ(spikes.size(), 2u);
  EXPECT_EQ(spikes[0], (Spike{0, 0, 3}));
  EXPECT_EQ(spikes[1], (Spike{2, 0, 6}));
}

TEST(DelayLineTest, DelaysBySpecifiedTicks) {
  for (int delay : {1, 15, 16, 40}) {
    const Corelet c = make_delay_line(4, delay);
    InputSchedule in;
    in.add(0, 0, 2);  // channel 2 enters the first relay (core 0)
    in.finalize();
    PlacedCorelet placed = place(c, fit_geometry(c));
    analysis::require_deployable(placed.network);
    tn::TrueNorthSimulator sim(placed.network);
    VectorSink sink;
    sim.run(static_cast<Tick>(delay) + 5, &in, &sink);
    // The terminal relay's spike is the last one recorded.
    ASSERT_FALSE(sink.spikes().empty()) << "delay " << delay;
    const Spike last = sink.spikes().back();
    EXPECT_EQ(last.tick, static_cast<Tick>(delay)) << "delay " << delay;
    EXPECT_EQ(last.neuron, 2);
  }
}

TEST(DelayLineTest, ZeroDelayIsIdentityRelay) {
  const Corelet c = make_delay_line(4, 0);
  EXPECT_EQ(c.core_count(), 1);
}

TEST(WtaTest, StrongestChannelWins) {
  const WtaParams params{.channels = 4};
  const Corelet c = make_wta(params);
  // Drive channel 2 hard, channel 0 weakly.
  InputSchedule in;
  for (Tick t = 0; t < 40; ++t) {
    in.add(t, 0, 2);              // every tick
    if (t % 4 == 0) in.add(t, 0, 0);  // quarter rate
  }
  in.finalize();
  const auto spikes = run_corelet(c, in, 45);
  // Count output-copy spikes per channel (copies are neurons n..2n-1).
  int wins[4] = {0, 0, 0, 0};
  for (const Spike& s : spikes) {
    if (s.neuron >= 4 && s.neuron < 8) ++wins[s.neuron - 4];
  }
  EXPECT_GT(wins[2], 0);
  EXPECT_GT(wins[2], 3 * std::max({wins[0], wins[1], wins[3]}));
}

TEST(WtaTest, OutputCopiesHaveFreeTargets) {
  const Corelet c = make_wta({.channels = 8});
  for (int i = 0; i < c.output_count(); ++i) {
    const OutputPin p = c.output(i);
    EXPECT_FALSE(c.core(p.core).neuron[p.neuron].target.valid());
  }
}

TEST(WtaTest, RejectsTooManyChannels) {
  EXPECT_THROW((void)make_wta({.channels = 129}), std::out_of_range);
}

TEST(PlacedPinResolution, InputAndOutputMapping) {
  Corelet c("t");
  const int k = c.add_core();
  c.add_input({k, 7});
  c.add_output({k, 9});
  const PlacedCorelet p = place(c, core::Geometry{1, 1, 2, 2}, PlaceStrategy::kLinear);
  const core::InputSpike s = p.input_at(0, 5);
  EXPECT_EQ(s.tick, 5);
  EXPECT_EQ(s.core, 0u);
  EXPECT_EQ(s.axon, 7);
  const auto [oc, on] = p.output_at(0);
  EXPECT_EQ(oc, 0u);
  EXPECT_EQ(on, 9);
  EXPECT_EQ(p.output_flat_index(0), 9u);
}

}  // namespace
}  // namespace nsc::corelet
