// Tests for the static analysis subsystem (src/analysis): one crafted
// violating network per rule ID in the catalog, a lint-clean golden network,
// graph/load primitives, JSON schema round-trip, and the deployment gates
// (require_deployable / clean_at) the rest of the codebase migrated onto.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/analysis/graph.hpp"
#include "src/analysis/lint.hpp"
#include "src/analysis/load.hpp"
#include "src/analysis/report.hpp"
#include "src/core/network.hpp"
#include "src/netgen/random_net.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/obs/json.hpp"

namespace nsc::analysis {
namespace {

using core::CoreId;
using core::Geometry;
using core::kCoreSize;
using core::Network;

/// A network with every neuron disabled: the only description that fires no
/// rule at all, and the canvas the per-rule tests paint single defects onto.
Network blank(const Geometry& g) {
  Network net(g);
  for (auto& cs : net.cores) {
    for (auto& p : cs.neuron) p.enabled = 0;
  }
  return net;
}

/// Enables neuron (c, j) with an innocuous parameter set (no target yet).
core::NeuronParams& enable(Network& net, CoreId c, int j) {
  core::NeuronParams& p = net.core(c).neuron[j];
  p.enabled = 1;
  p.threshold = 100;
  return p;
}

/// A 4-core ring where every routed spike lands on a synapse-bearing axon
/// exactly once: the only finding left is the (informational) recurrent
/// loop, so it is deployable at the --fail-on=warn bar.
Network golden_ring() {
  Network net = blank(Geometry{1, 1, 2, 2});
  for (CoreId c = 0; c < 4; ++c) {
    for (int j = 0; j < kCoreSize; ++j) {
      net.core(c).crossbar.set(j, j);
      core::NeuronParams& p = enable(net, c, j);
      p.weight[0] = 1;  // Nonzero drive so the load bounds have something to say.
      p.target = {(c + 1) % 4, static_cast<std::uint16_t>(j), 1};
    }
  }
  return net;
}

TEST(LintCatalog, RulesAreOrderedAndSeveritiesStable) {
  const auto& catalog = rule_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].id, catalog[i].id) << "catalog must stay sorted by rule ID";
  }
  for (const RuleInfo& r : catalog) {
    EXPECT_EQ(r.id.size(), 6u);
    EXPECT_TRUE(r.id.substr(0, 3) == "NSC");
    EXPECT_FALSE(r.summary.empty());
  }
}

TEST(LintClean, AllDisabledNetworkHasZeroFindings) {
  const LintReport report = lint(blank(Geometry{1, 1, 2, 2}));
  EXPECT_TRUE(report.clean()) << "first finding: "
                              << (report.findings.empty() ? "" : report.findings[0].message);
  EXPECT_EQ(report.max_severity(), Severity::kInfo);
}

TEST(LintClean, GoldenRingOnlyReportsItsRecurrence) {
  const LintReport report = lint(golden_ring());
  EXPECT_EQ(report.count(Severity::kError), 0u);
  EXPECT_EQ(report.count(Severity::kWarn), 0u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "NSC023");
  EXPECT_EQ(report.findings[0].count, 4u);  // All four cores in the loop.
  EXPECT_TRUE(clean_at(golden_ring()));
  EXPECT_NO_THROW(require_deployable(golden_ring()));
}

// --- One crafted violating network per rule ID ------------------------------

TEST(LintRule, NSC001CoreVectorMismatch) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.cores.pop_back();
  const LintReport report = lint(net);
  ASSERT_EQ(report.findings.size(), 1u) << "NSC001 must gate all other rules";
  EXPECT_EQ(report.findings[0].rule, "NSC001");
  EXPECT_EQ(report.max_severity(), Severity::kError);
}

TEST(LintRule, NSC002AxonTypeOutOfRange) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.core(0).axon_type[7] = core::kAxonTypes;
  const LintReport report = lint(net);
  EXPECT_TRUE(report.has_rule("NSC002"));
  EXPECT_EQ(report.max_severity(), Severity::kError);
}

TEST(LintRule, NSC003NonPositiveThreshold) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 3).threshold = 0;
  EXPECT_TRUE(lint(net).has_rule("NSC003"));
}

TEST(LintRule, NSC004NegativeNegThreshold) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).neg_threshold = -5;
  EXPECT_TRUE(lint(net).has_rule("NSC004"));
}

TEST(LintRule, NSC005TargetCoreOutOfGrid) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).target = {99, 0, 1};
  const LintReport report = lint(net);
  EXPECT_TRUE(report.has_rule("NSC005"));
  EXPECT_THROW(require_deployable(net), std::runtime_error);
}

TEST(LintRule, NSC006TargetsDisabledCore) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.core(1).disabled = 1;
  enable(net, 0, 0).target = {1, 0, 1};
  EXPECT_TRUE(lint(net).has_rule("NSC006"));
}

TEST(LintRule, NSC007DelayOutsideRange) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).target = {1, 0, 0};  // below kMinDelay
  EXPECT_TRUE(lint(net).has_rule("NSC007"));
  net.core(0).neuron[0].target.delay = core::kMaxDelay + 1;
  EXPECT_TRUE(lint(net).has_rule("NSC007"));
}

TEST(LintRule, NSC008WeightOutsideNineBits) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).weight[2] = static_cast<std::int16_t>(core::kWeightMax + 1);
  EXPECT_TRUE(lint(net).has_rule("NSC008"));
}

TEST(LintRule, NSC009LeakOutsideNineBits) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).leak = static_cast<std::int16_t>(core::kWeightMin - 1);
  EXPECT_TRUE(lint(net).has_rule("NSC009"));
}

TEST(LintRule, NSC010ThresholdOverEighteenBits) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).threshold = core::kThresholdMax + 1;
  EXPECT_TRUE(lint(net).has_rule("NSC010"));
}

TEST(LintRule, NSC011PotentialOutsideTwentyBits) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).init_v = core::kPotentialMax + 1;
  EXPECT_TRUE(lint(net).has_rule("NSC011"));
}

TEST(LintRule, NSC012TargetAxonOutOfRange) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).target = {1, kCoreSize, 1};
  EXPECT_TRUE(lint(net).has_rule("NSC012"));
}

TEST(LintRule, NSC013EnabledNeuronOnDisabledCore) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.core(1).disabled = 1;
  enable(net, 1, 4).target = {0, 0, 1};
  const LintReport report = lint(net);
  EXPECT_TRUE(report.has_rule("NSC013"));
  EXPECT_EQ(report.count(Severity::kError), 0u) << "NSC013 is a warn, not an error";
}

TEST(LintRule, NSC014InitialPotentialFiresAtTickZero) {
  Network net = blank(Geometry{1, 1, 2, 1});
  core::NeuronParams& p = enable(net, 0, 0);
  p.threshold = 10;
  p.init_v = 10;
  p.target = {1, 0, 1};
  net.core(1).crossbar.set(0, 0);
  const LintReport report = lint(net);
  EXPECT_TRUE(report.has_rule("NSC014"));
  EXPECT_FALSE(clean_at(net)) << "warn findings must fail the --fail-on=warn bar";
  EXPECT_NO_THROW(require_deployable(net)) << "warn findings must not block deployment";
}

TEST(LintRule, NSC020DeadEndNeuron) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 9);  // No target: spikes are dropped.
  const LintReport report = lint(net);
  EXPECT_TRUE(report.has_rule("NSC020"));
  EXPECT_TRUE(clean_at(net)) << "dead ends are informational";
}

TEST(LintRule, NSC021DanglingAxonTarget) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).target = {1, 3, 1};  // Core 1's row 3 has no synapses.
  const LintReport report = lint(net);
  EXPECT_TRUE(report.has_rule("NSC021"));
  EXPECT_EQ(report.max_severity(), Severity::kWarn);
}

TEST(LintRule, NSC022DuplicateAxonTargets) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.core(1).crossbar.set(5, 0);
  enable(net, 0, 0).target = {1, 5, 1};
  enable(net, 0, 1).target = {1, 5, 1};
  EXPECT_TRUE(lint(net).has_rule("NSC022"));
}

TEST(LintRule, NSC023SelfLoopIsOneHopCycle) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.core(0).crossbar.set(0, 0);
  enable(net, 0, 0).target = {0, 0, 1};
  const LintReport report = lint(net);
  ASSERT_TRUE(report.has_rule("NSC023"));
  for (const Finding& f : report.findings) {
    if (f.rule != "NSC023") continue;
    EXPECT_EQ(f.core, 0u);
    EXPECT_NE(f.message.find("1 hop"), std::string::npos) << f.message;
  }
}

TEST(LintRule, NSC024UnreachableCore) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.core(1).crossbar.set(0, 0);
  enable(net, 0, 0).target = {1, 0, 1};
  const LintReport report = lint(net);
  ASSERT_TRUE(report.has_rule("NSC024"));
  for (const Finding& f : report.findings) {
    if (f.rule == "NSC024") EXPECT_EQ(f.core, 0u) << "only the source core is unreachable";
  }
}

TEST(LintRule, NSC025OrphanAxons) {
  Network net = blank(Geometry{1, 1, 2, 1});
  net.core(1).crossbar.set(2, 7);  // Synapses no routed spike can ever reach.
  EXPECT_TRUE(lint(net).has_rule("NSC025"));
}

TEST(LintRule, NSC030LinkOverflowRisk) {
  // Two chips of 6×6 cores; all 9,216 chip-0 neurons fire every tick and
  // cross the single eastbound merge–split link: 9,216 > 8,192 capacity.
  const Geometry geom{2, 1, 6, 6};
  Network net = blank(geom);
  const CoreId per_chip = static_cast<CoreId>(geom.cores_per_chip());
  for (CoreId c = 0; c < per_chip; ++c) {
    for (int j = 0; j < kCoreSize; ++j) {
      net.core(c).crossbar.set(j, j);
      core::NeuronParams& p = enable(net, c, j);
      p.threshold = 1;
      p.weight[0] = 1;  // Drive 1 over threshold 1: rate bound saturates at 1.
      p.target = {per_chip + c, static_cast<std::uint16_t>(j), 1};
    }
  }
  const LintReport report = lint(net);
  EXPECT_TRUE(report.has_rule("NSC030"));
  EXPECT_GT(report.load.links.size(), 0u);
  EXPECT_GT(report.load.links[0].bounded_packets,
            static_cast<double>(kLinkPacketsPerTickCapacity));
}

TEST(LintRule, NSC031SaturatedCore) {
  Network net = blank(Geometry{1, 1, 2, 1});
  for (int j = 0; j < kCoreSize; ++j) {
    net.core(0).crossbar.set(j, j);
    core::NeuronParams& p = enable(net, 0, j);
    p.threshold = 1;
    p.weight[0] = 1;
    p.target = {1, static_cast<std::uint16_t>(j), 1};
    net.core(1).crossbar.set(j, j);
  }
  EXPECT_TRUE(lint(net).has_rule("NSC031"));
}

TEST(LintRule, NSC040StochasticModes) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).stochastic_weight = 1;
  enable(net, 0, 1).threshold_mask = 0x3;
  const LintReport report = lint(net);
  ASSERT_TRUE(report.has_rule("NSC040"));
  for (const Finding& f : report.findings) {
    if (f.rule == "NSC040") EXPECT_EQ(f.count, 2u);
  }
}

// --- Options, suppression, and gating ---------------------------------------

TEST(LintOptionsTest, SuppressionSkipsRuleAndIsRecorded) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).stochastic_weight = 1;
  LintOptions options;
  options.suppress = {"NSC040", "NSC040"};
  const LintReport report = lint(net, options);
  EXPECT_FALSE(report.has_rule("NSC040"));
  ASSERT_EQ(report.suppressed.size(), 1u) << "suppression list must be deduplicated";
  EXPECT_EQ(report.suppressed[0], "NSC040");
}

TEST(LintOptionsTest, GraphAndLoadPassesCanBeDisabled) {
  Network net = golden_ring();
  LintOptions options;
  options.graph = false;
  options.load = false;
  const LintReport report = lint(net, options);
  EXPECT_FALSE(report.has_rule("NSC023"));
  EXPECT_TRUE(report.load.cores.empty());
}

TEST(LintReportTest, PerRuleCapFoldsTailIntoSummary) {
  // 128 cores each with one dead-end neuron: NSC020 must cap at 32 detailed
  // findings plus one overflow summary carrying the remaining 96 sites.
  Network net = blank(Geometry{1, 1, 16, 8});
  for (CoreId c = 0; c < 128; ++c) enable(net, c, 0);
  const LintReport report = lint(net);
  std::size_t nsc020 = 0;
  std::uint64_t sites = 0;
  for (const Finding& f : report.findings) {
    if (f.rule != "NSC020") continue;
    ++nsc020;
    sites += f.count;
  }
  EXPECT_EQ(nsc020, 33u);
  EXPECT_EQ(sites, 128u);
}

// --- Graph and load primitives ----------------------------------------------

TEST(CoreGraphTest, CsrEdgesAndDegrees) {
  Network net = blank(Geometry{1, 1, 2, 2});
  enable(net, 0, 0).target = {1, 0, 1};
  enable(net, 0, 1).target = {1, 1, 1};  // Duplicate edge 0->1 collapses.
  enable(net, 0, 2).target = {2, 0, 1};
  enable(net, 1, 0).target = {2, 1, 1};
  const CoreGraph g = build_core_graph(net);
  ASSERT_EQ(g.ncores, 4);
  EXPECT_EQ(g.out_start[1] - g.out_start[0], 2u);  // 0 -> {1, 2}
  EXPECT_EQ(g.in_degree[2], 2u);                   // From cores 0 and 1.
  EXPECT_EQ(g.in_degree[0], 0u);
  EXPECT_TRUE(recurrent_components(g).empty());
}

TEST(CoreGraphTest, TwoCoreCycleHasShortestCycleTwo) {
  Network net = blank(Geometry{1, 1, 2, 2});
  enable(net, 0, 0).target = {1, 0, 1};
  enable(net, 1, 0).target = {0, 0, 1};
  const auto comps = recurrent_components(build_core_graph(net));
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].cores.size(), 2u);
  EXPECT_EQ(comps[0].shortest_cycle, 2);
}

TEST(LoadBoundTest, RateBoundIsDriveOverThreshold) {
  Network net = blank(Geometry{1, 1, 1, 1});
  net.core(0).crossbar.set(0, 0);
  core::NeuronParams& p = enable(net, 0, 0);
  p.threshold = 2;
  p.weight[0] = 1;
  EXPECT_DOUBLE_EQ(neuron_rate_bound(net.core(0), 0), 0.5);
  p.weight[0] = 5;  // Drive exceeds threshold: clamps to one spike per tick.
  EXPECT_DOUBLE_EQ(neuron_rate_bound(net.core(0), 0), 1.0);
  p.weight[0] = -5;  // Inhibition can never cause a firing.
  EXPECT_DOUBLE_EQ(neuron_rate_bound(net.core(0), 0), 0.0);
  p.weight[0] = 5;
  p.stochastic_weight = 1;  // Stochastic synapses deliver at most ±1.
  EXPECT_DOUBLE_EQ(neuron_rate_bound(net.core(0), 0), 0.5);
}

TEST(LoadBoundTest, HistogramsAndTotalsAreConsistent) {
  const Network net = golden_ring();
  const LoadSummary load = compute_load(net);
  std::uint64_t fan_in_total = 0;
  for (const auto b : load.fan_in_hist) fan_in_total += b;
  EXPECT_EQ(fan_in_total, static_cast<std::uint64_t>(net.geom.neurons()));
  for (const CoreLoad& cl : load.cores) {
    EXPECT_EQ(cl.enabled_neurons, static_cast<std::uint32_t>(kCoreSize));
    EXPECT_EQ(cl.fan_out, static_cast<std::uint32_t>(kCoreSize));
    EXPECT_EQ(cl.axons_targeted, static_cast<std::uint32_t>(kCoreSize));
  }
  EXPECT_TRUE(load.links.empty()) << "single-chip networks have no merge-split links";
}

// --- JSON schema round-trip -------------------------------------------------

TEST(LintJsonTest, ReportRoundTripsThroughOwnParser) {
  const Network net = golden_ring();
  const LintReport report = lint(net);
  const obs::JsonValue doc = report_to_json(report, "golden_ring", net.geom);
  const obs::JsonValue parsed = obs::parse_json(doc.to_string(2));

  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("schema")->as_string(), "nsc-lint-v1");
  EXPECT_EQ(parsed.find("net")->as_string(), "golden_ring");
  EXPECT_EQ(parsed.find_path("geometry.total_cores")->as_int(), 4);
  EXPECT_EQ(parsed.find_path("counts.error")->as_int(), 0);
  EXPECT_EQ(parsed.find_path("counts.info")->as_int(),
            static_cast<std::int64_t>(report.count(Severity::kInfo)));
  const obs::JsonValue* findings = parsed.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->items().size(), report.findings.size());
  EXPECT_EQ(findings->items()[0].find("rule")->as_string(), "NSC023");
  EXPECT_EQ(findings->items()[0].find("severity")->as_string(), "info");
  EXPECT_GT(parsed.find_path("load.total_rate_bound")->as_double(), 0.0);
}

TEST(LintJsonTest, ErrorNetworkCountsSurviveSerialization) {
  Network net = blank(Geometry{1, 1, 2, 1});
  enable(net, 0, 0).target = {1, 0, 0};  // NSC007
  enable(net, 0, 1).threshold = 0;       // NSC003
  const LintReport report = lint(net);
  const obs::JsonValue parsed =
      obs::parse_json(report_to_json(report, "bad", net.geom).to_string(0));
  EXPECT_EQ(parsed.find_path("counts.error")->as_int(),
            static_cast<std::int64_t>(report.count(Severity::kError)));
  EXPECT_GE(parsed.find_path("counts.error")->as_int(), 2);
}

// --- The shipped generators must stay lint-clean at --fail-on=warn ----------

TEST(GeneratorLint, RecurrentCharacterizationNetworkIsWarnClean) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.rate_hz = 20.0;
  spec.synapses_per_axon = 128;
  EXPECT_TRUE(clean_at(netgen::make_recurrent(spec)));
}

TEST(GeneratorLint, RandomRegressionNetworkIsWarnClean) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{2, 1, 4, 4};
  spec.synapse_density = 0.3;
  spec.seed = 9;
  EXPECT_TRUE(clean_at(netgen::make_random(spec)));
}

TEST(GeneratorLint, OutOfRangeSpecsAreHardErrors) {
  netgen::RecurrentSpec rec;
  rec.synapses_per_axon = kCoreSize + 1;
  EXPECT_THROW((void)netgen::calibrate(rec), std::invalid_argument);
  rec.synapses_per_axon = 128;
  rec.rate_hz = 0.0;
  EXPECT_THROW((void)netgen::calibrate(rec), std::invalid_argument);
  netgen::RandomNetSpec rnd;
  rnd.synapse_density = 1.5;
  EXPECT_THROW((void)netgen::make_random(rnd), std::invalid_argument);
}

TEST(GeneratorLint, SubHertzTargetsStayInsideThresholdEnvelope) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.rate_hz = 0.01;  // Would want Δ > 2^18 − 1; must clamp, not overflow.
  spec.synapses_per_axon = 64;
  const netgen::RateCalibration cal = netgen::calibrate(spec);
  EXPECT_LE(cal.threshold, core::kThresholdMax);
  EXPECT_EQ(lint(netgen::make_recurrent(spec)).count(Severity::kError), 0u);
}

}  // namespace
}  // namespace nsc::analysis
