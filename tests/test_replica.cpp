// Replica-batched backend conformance (docs/REPLICA.md): every replica of a
// BatchSimulator must be spike-for-spike identical to a solo single-process
// compass run of the same network fed the same inputs, across replica and
// thread counts; per-replica checkpoints splice into and out of solo runs
// (including the TrueNorth expression) and reject fault-carrying snapshots;
// hostile potentials demote to the exact generic path instead of corrupting
// the hot sweep.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/core/snapshot.hpp"
#include "src/replica/batch.hpp"
#include "test_support.hpp"

namespace nsc {
namespace {

using core::InputSchedule;
using core::Network;
using core::Tick;
using core::VectorSink;
using replica::BatchSimulator;
using testsup::expect_identical;
using testsup::expect_spikes_equal;
using testsup::fuzz_spec;
using testsup::RunResult;
using testsup::tail_from;

/// Distinct Poisson input stream per replica: same fuzz axes, shifted seed.
std::vector<InputSchedule> replica_inputs(const netgen::RandomNetSpec& spec, const Network& net,
                                          int replicas, Tick ticks) {
  std::vector<InputSchedule> ins;
  ins.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    netgen::RandomNetSpec s = spec;
    s.seed = spec.seed + 1000 * static_cast<std::uint64_t>(r) + 1;
    ins.push_back(netgen::make_poisson_inputs(s, net, ticks));
  }
  return ins;
}

std::vector<const InputSchedule*> input_ptrs(const std::vector<InputSchedule>& ins) {
  std::vector<const InputSchedule*> ptrs;
  ptrs.reserve(ins.size());
  for (const InputSchedule& in : ins) ptrs.push_back(&in);
  return ptrs;
}

/// Runs all replicas of `sim` for `ticks` and returns per-replica results.
std::vector<RunResult> run_batch(BatchSimulator& sim, const std::vector<const InputSchedule*>& ins,
                                 Tick ticks) {
  const auto n = static_cast<std::size_t>(sim.replicas());
  std::vector<VectorSink> sinks(n);
  std::vector<core::SpikeSink*> sink_ptrs(n);
  for (std::size_t r = 0; r < n; ++r) sink_ptrs[r] = &sinks[r];
  sim.run(ticks, ins.empty() ? nullptr : ins.data(), sink_ptrs.data());
  std::vector<RunResult> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = {sinks[r].spikes(), sim.stats(static_cast<int>(r))};
  }
  return out;
}

/// The exactness bar: {1, 4, 16} replicas x {1, 3} threads, each replica fed
/// a distinct input stream, every one compared spike-for-spike (and
/// counter-for-counter) against its own solo compass run.
TEST(ReplicaBatch, FuzzMatrixMatchesSoloWitnesses) {
  constexpr Tick kTicks = 60;
  for (const std::uint64_t seed : {3ULL, 10ULL}) {
    const netgen::RandomNetSpec spec = fuzz_spec(seed);
    const Network net = netgen::make_random(spec);
    for (const int replicas : {1, 4, 16}) {
      const std::vector<InputSchedule> ins = replica_inputs(spec, net, replicas, kTicks);
      const std::vector<const InputSchedule*> ptrs = input_ptrs(ins);
      std::vector<RunResult> solo;
      solo.reserve(static_cast<std::size_t>(replicas));
      for (int r = 0; r < replicas; ++r) {
        solo.push_back(testsup::run_compass(net, ptrs[static_cast<std::size_t>(r)], kTicks, 1));
      }
      for (const int threads : {1, 3}) {
        BatchSimulator batch(net, {.replicas = replicas, .threads = threads});
        const std::vector<RunResult> got = run_batch(batch, ptrs, kTicks);
        for (int r = 0; r < replicas; ++r) {
          const std::string label = "seed " + std::to_string(seed) + " R" +
                                    std::to_string(replicas) + " T" + std::to_string(threads) +
                                    " replica " + std::to_string(r);
          expect_identical(solo[static_cast<std::size_t>(r)], got[static_cast<std::size_t>(r)],
                           label.c_str());
        }
      }
    }
  }
}

/// Mid-run per-replica checkpoints splice out of the batch: each replica's
/// snapshot resumes in a solo compass simulator and reproduces the tail of
/// that replica's uninterrupted solo trajectory, counters included.
TEST(ReplicaBatch, CheckpointSplicesIntoSoloCompass) {
  constexpr Tick kHalf = 30;
  constexpr Tick kTicks = 60;
  const netgen::RandomNetSpec spec = fuzz_spec(5);
  const Network net = netgen::make_random(spec);
  constexpr int kReplicas = 3;
  const std::vector<InputSchedule> ins = replica_inputs(spec, net, kReplicas, kTicks);
  const std::vector<const InputSchedule*> ptrs = input_ptrs(ins);

  BatchSimulator batch(net, {.replicas = kReplicas, .threads = 2});
  run_batch(batch, ptrs, kHalf);
  for (int r = 0; r < kReplicas; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const RunResult full = testsup::run_compass(net, ptrs[i], kTicks, 1);
    std::stringstream snap;
    batch.save_checkpoint(r, snap);
    compass::Simulator resumed(net, {.threads = 2});
    resumed.load_checkpoint(snap);
    EXPECT_EQ(resumed.now(), kHalf);
    VectorSink sink;
    resumed.run(kTicks - kHalf, ptrs[i], &sink);
    const std::string label = "replica " + std::to_string(r) + " -> solo";
    expect_spikes_equal(tail_from(full.spikes, kHalf), sink.spikes(), label.c_str());
    EXPECT_EQ(resumed.stats().spikes, full.stats.spikes) << label;
    EXPECT_EQ(resumed.stats().sops, full.stats.sops) << label;
  }
}

/// ...and into the batch: a solo checkpoint restored into one replica slot
/// resumes that trajectory exactly while the other (un-restored) replicas
/// advance from tick 0 — replicas run on their own local clocks.
TEST(ReplicaBatch, SoloCheckpointSplicesIntoReplicaSlot) {
  constexpr Tick kHalf = 30;
  constexpr Tick kTicks = 60;
  const netgen::RandomNetSpec spec = fuzz_spec(8);
  const Network net = netgen::make_random(spec);
  constexpr int kReplicas = 3;
  const std::vector<InputSchedule> ins = replica_inputs(spec, net, kReplicas, kTicks);
  const std::vector<const InputSchedule*> ptrs = input_ptrs(ins);

  compass::Simulator solo(net, {.threads = 1});
  const RunResult full_r1 = [&] {
    compass::Simulator s(net, {.threads = 1});
    VectorSink sink;
    s.run(kTicks, ptrs[1], &sink);
    return RunResult{sink.spikes(), s.stats()};
  }();
  solo.run(kHalf, ptrs[1], nullptr);
  std::stringstream snap;
  solo.save_checkpoint(snap);

  BatchSimulator batch(net, {.replicas = kReplicas, .threads = 1});
  batch.load_checkpoint(1, snap);
  EXPECT_EQ(batch.now(1), kHalf);
  EXPECT_EQ(batch.now(0), 0);
  const std::vector<RunResult> got = run_batch(batch, ptrs, kHalf);
  // Replica 1 ran kHalf..kTicks of its trajectory; 0 and 2 ran 0..kHalf.
  expect_spikes_equal(tail_from(full_r1.spikes, kHalf), got[1].spikes, "restored replica 1");
  EXPECT_EQ(got[1].stats.spikes, full_r1.stats.spikes);
  for (const int r : {0, 2}) {
    const auto i = static_cast<std::size_t>(r);
    const RunResult solo_head = testsup::run_compass(net, ptrs[i], kHalf, 1);
    const std::string label = "fresh replica " + std::to_string(r);
    expect_identical(solo_head, got[i], label.c_str());
  }
}

/// Replica snapshots are plain NSCK files: they restore into the TrueNorth
/// expression (and vice versa) and resume the identical trajectory.
TEST(ReplicaBatch, CheckpointsInterchangeWithTrueNorth) {
  constexpr Tick kHalf = 20;
  constexpr Tick kTicks = 40;
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, kTicks);
  const std::vector<const InputSchedule*> ptrs = {&in, &in};
  const RunResult full = testsup::run_truenorth(net, &in, kTicks);

  // batch -> tn: both replicas see the same inputs, so both snapshots must
  // resume the solo trajectory on the TrueNorth expression.
  BatchSimulator batch(net, {.replicas = 2, .threads = 1});
  run_batch(batch, ptrs, kHalf);
  std::stringstream snap;
  batch.save_checkpoint(0, snap);
  tn::TrueNorthSimulator tn_resumed(net);
  tn_resumed.load_checkpoint(snap);
  VectorSink tn_sink;
  tn_resumed.run(kTicks - kHalf, &in, &tn_sink);
  expect_spikes_equal(tail_from(full.spikes, kHalf), tn_sink.spikes(), "replica -> tn");

  // tn -> batch: restore the TrueNorth midpoint into replica slot 1.
  tn::TrueNorthSimulator tn_half(net);
  tn_half.run(kHalf, &in, nullptr);
  std::stringstream tn_snap;
  tn_half.save_checkpoint(tn_snap);
  BatchSimulator batch2(net, {.replicas = 2, .threads = 1});
  batch2.load_checkpoint(1, tn_snap);
  const std::vector<RunResult> got = run_batch(batch2, ptrs, kTicks - kHalf);
  expect_spikes_equal(tail_from(full.spikes, kHalf), got[1].spikes, "tn -> replica");
}

/// The batch backend models no runtime faults: snapshots carrying cores (or
/// links) failed mid-run by a fault campaign are rejected, not silently
/// resurrected.
TEST(ReplicaBatch, RejectsFaultCarryingSnapshots) {
  const netgen::RandomNetSpec spec = fuzz_spec(2);
  const Network net = netgen::make_random(spec);
  compass::Simulator solo(net, {.threads = 1});
  solo.run(10, nullptr, nullptr);
  ASSERT_TRUE(solo.fail_core(1));
  solo.run(5, nullptr, nullptr);
  std::stringstream snap;
  solo.save_checkpoint(snap);
  BatchSimulator batch(net, {.replicas = 2, .threads = 1});
  EXPECT_THROW(batch.load_checkpoint(0, snap), std::runtime_error);
}

/// Hostile potentials (outside the hot sweep's proven |v| <= 2^20 bound) in
/// an otherwise valid snapshot demote the affected cores of that replica to
/// the exact generic path: the run must still match a solo compass run
/// restored from the very same snapshot.
TEST(ReplicaBatch, HostileSnapshotPotentialsDemoteExactly) {
  constexpr Tick kTicks = 40;
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 2, 2};
  spec.rate_hz = 50;
  spec.synapses_per_axon = 64;
  spec.seed = 31;
  const Network net = netgen::make_recurrent(spec);

  compass::Simulator warm(net, {.threads = 1});
  warm.run(10, nullptr, nullptr);
  std::stringstream snap_stream;
  warm.save_checkpoint(snap_stream);
  core::Snapshot snap = core::load_snapshot(snap_stream);
  snap.v[0] = core::kHotPotentialBound + 1;   // just past the proven bound
  snap.v[7] = -(core::kHotPotentialBound + 1);

  std::stringstream hostile;
  core::save_snapshot(snap, hostile);
  compass::Simulator solo(net, {.threads = 1});
  solo.load_checkpoint(hostile);
  VectorSink solo_sink;
  solo.run(kTicks, nullptr, &solo_sink);

  hostile.clear();
  hostile.seekg(0);
  BatchSimulator batch(net, {.replicas = 2, .threads = 1});
  batch.load_checkpoint(0, hostile);
  const std::vector<RunResult> got = run_batch(batch, {}, kTicks);
  expect_spikes_equal(solo_sink.spikes(), got[0].spikes, "hostile restore");
  EXPECT_EQ(got[0].stats.spikes, solo.stats().spikes);
  EXPECT_EQ(got[0].stats.sops, solo.stats().sops);
}

/// Aggregate view: per-replica counters sum into aggregate_stats(), and the
/// replica.* observability counters report the batch shape.
TEST(ReplicaBatch, AggregateStatsAndCounters) {
  constexpr Tick kTicks = 25;
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 2, 2};
  spec.rate_hz = 50;
  spec.synapses_per_axon = 64;
  spec.seed = 12;
  const Network net = netgen::make_recurrent(spec);
  constexpr int kReplicas = 3;
  BatchSimulator batch(net, {.replicas = kReplicas, .threads = 1});
  const std::vector<RunResult> got = run_batch(batch, {}, kTicks);

  core::KernelStats sum;
  for (const RunResult& r : got) {
    sum.ticks += r.stats.ticks;
    sum.spikes += r.stats.spikes;
    sum.sops += r.stats.sops;
    sum.neuron_updates += r.stats.neuron_updates;
  }
  const core::KernelStats agg = batch.aggregate_stats();
  EXPECT_EQ(agg.ticks, sum.ticks);
  EXPECT_EQ(agg.ticks, static_cast<std::uint64_t>(kReplicas) * kTicks);
  EXPECT_EQ(agg.spikes, sum.spikes);
  EXPECT_EQ(agg.sops, sum.sops);
  EXPECT_EQ(agg.neuron_updates, sum.neuron_updates);

  EXPECT_EQ(testsup::counter_value(batch.metrics(), "replica.count"), kReplicas);
  EXPECT_EQ(testsup::counter_value(batch.metrics(), "replica.tick_replicas"),
            static_cast<std::uint64_t>(kReplicas) * kTicks);
  // Every (tick, replica, live core) is either visited or skipped.
  EXPECT_EQ(testsup::counter_value(batch.metrics(), "cores_visited") +
                testsup::counter_value(batch.metrics(), "cores_skipped"),
            static_cast<std::uint64_t>(kReplicas) * kTicks * 4);
}

/// Replica indices are validated on the checkpoint interface.
TEST(ReplicaBatch, BadReplicaIndexThrows) {
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 2, 2};
  spec.rate_hz = 50;
  spec.synapses_per_axon = 64;
  spec.seed = 4;
  const Network net = netgen::make_recurrent(spec);
  BatchSimulator batch(net, {.replicas = 2, .threads = 1});
  std::stringstream snap;
  EXPECT_THROW(batch.save_checkpoint(2, snap), std::out_of_range);
  EXPECT_THROW(batch.save_checkpoint(-1, snap), std::out_of_range);
  EXPECT_THROW(batch.load_checkpoint(2, snap), std::out_of_range);
}

}  // namespace
}  // namespace nsc
