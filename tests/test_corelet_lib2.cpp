// Tests for the extended corelet library: pooling, coincidence, threshold
// banks, temporal filters, stochastic rate scaling, and spiking logic gates,
// all executed on the TrueNorth backend.
#include <gtest/gtest.h>

#include "src/core/spike_sink.hpp"
#include "src/analysis/lint.hpp"
#include "src/corelet/lib2.hpp"
#include "src/corelet/place.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc::corelet {
namespace {

using core::InputSchedule;
using core::Spike;
using core::Tick;
using core::VectorSink;

std::vector<Spike> run_corelet(const Corelet& c, const InputSchedule& in, Tick ticks,
                               std::uint64_t seed = 1) {
  PlacedCorelet placed = place(c, fit_geometry(c));
  placed.network.seed = seed;
  analysis::require_deployable(placed.network);
  tn::TrueNorthSimulator sim(placed.network);
  VectorSink sink;
  sim.run(ticks, &in, &sink);
  return sink.spikes();
}

int count_neuron(const std::vector<Spike>& spikes, std::uint16_t neuron) {
  int n = 0;
  for (const Spike& s : spikes) n += s.neuron == neuron ? 1 : 0;
  return n;
}

TEST(MaxPool, FiresOnAnyGroupMember) {
  const Corelet c = make_max_pool(2, 3);  // groups of 3
  InputSchedule in;
  in.add(0, 0, 1);  // group 0, member 1
  in.add(2, 0, 4);  // group 1, member 1
  in.add(2, 0, 5);  // group 1, member 2 (same tick: still one output spike)
  in.finalize();
  const auto spikes = run_corelet(c, in, 5);
  ASSERT_EQ(spikes.size(), 2u);
  EXPECT_EQ(spikes[0], (Spike{0, 0, 0}));
  EXPECT_EQ(spikes[1], (Spike{2, 0, 1}));
}

TEST(MaxPool, RejectsBadShape) {
  EXPECT_THROW((void)make_max_pool(0, 4), std::out_of_range);
  EXPECT_THROW((void)make_max_pool(64, 5), std::out_of_range);  // 320 axons
}

TEST(Coincidence, RequiresSameTickPair) {
  const Corelet c = make_coincidence(4);
  InputSchedule in;
  in.add(0, 0, 2);      // A2 alone -> no output
  in.add(3, 0, 2);      // A2 ...
  in.add(3, 0, 4 + 2);  // ... with B2 -> fire
  in.add(5, 0, 1);      // A1 at t=5, B1 at t=6 -> no output
  in.add(6, 0, 4 + 1);
  in.finalize();
  const auto spikes = run_corelet(c, in, 10);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], (Spike{3, 0, 2}));
}

TEST(ThresholdBank, LaddersByInputRate) {
  const Corelet c = make_threshold_bank(16, {2, 6, 12});
  InputSchedule in;
  // Drive 4 of 16 inputs every tick: per-tick count = 4 -> only level-2
  // neuron (cut 2) is supercritical.
  for (Tick t = 0; t < 50; ++t) {
    for (int i = 0; i < 4; ++i) in.add(t, 0, static_cast<std::uint16_t>(i));
  }
  in.finalize();
  const auto spikes = run_corelet(c, in, 55);
  EXPECT_GT(count_neuron(spikes, 0), 20);  // (4-2)/2 per tick -> ~1/tick
  EXPECT_EQ(count_neuron(spikes, 1), 0);
  EXPECT_EQ(count_neuron(spikes, 2), 0);
}

TEST(ThresholdBank, AllLevelsAtHighRate) {
  const Corelet c = make_threshold_bank(16, {2, 6, 12});
  InputSchedule in;
  for (Tick t = 0; t < 50; ++t) {
    for (int i = 0; i < 16; ++i) in.add(t, 0, static_cast<std::uint16_t>(i));
  }
  in.finalize();
  const auto spikes = run_corelet(c, in, 55);
  EXPECT_GT(count_neuron(spikes, 0), 20);
  EXPECT_GT(count_neuron(spikes, 1), 20);
  EXPECT_GT(count_neuron(spikes, 2), 10);
}

TEST(TemporalFilter, TracksRateAndDecays) {
  const Corelet c = make_temporal_filter(2, 4);
  InputSchedule in;
  for (Tick t = 0; t < 40; ++t) in.add(t, 0, 0);  // channel 0 at full rate
  in.finalize();
  const auto spikes = run_corelet(c, in, 80);
  const int on_phase = count_neuron(spikes, 0);
  // Full-rate input through gain-4/threshold-4 integrator ≈ ~1 spike/tick
  // minus the 1/tick decay share.
  EXPECT_GT(on_phase, 25);
  EXPECT_LT(on_phase, 41);
  EXPECT_EQ(count_neuron(spikes, 1), 0);  // silent channel stays silent
}

TEST(RateScaler, ScalesByNumOver256) {
  const Corelet c = make_rate_scaler(1, 64);  // 1/4 rate
  InputSchedule in;
  const int n = 4000;
  for (Tick t = 0; t < n; ++t) in.add(t, 0, 0);
  in.finalize();
  const auto spikes = run_corelet(c, in, n + 2, 77);
  EXPECT_NEAR(static_cast<double>(spikes.size()) / n, 0.25, 0.03);
}

TEST(RateScaler, FullRateIsDeterministicIdentity) {
  const Corelet c = make_rate_scaler(1, 256);
  InputSchedule in;
  for (Tick t = 0; t < 100; ++t) in.add(t, 0, 0);
  in.finalize();
  const auto spikes = run_corelet(c, in, 102);
  EXPECT_EQ(spikes.size(), 100u);
}

struct GateCase {
  GateKind kind;
  bool a, b;
  bool want;
  int latency;  ///< Output tick relative to input tick.
};

class GateTruth : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruth, MatchesTruthTable) {
  const GateCase gc = GetParam();
  const Corelet c = make_gate(gc.kind);
  InputSchedule in;
  const Tick t0 = 3;
  if (gc.a) in.add(t0, 0, 0);
  if (gc.b) in.add(t0, 0, 1);  // B, or the clock for NOT
  in.finalize();
  const auto spikes = run_corelet(c, in, 10);
  const int fired = count_neuron(spikes, 0);
  EXPECT_EQ(fired, gc.want ? 1 : 0);
  if (gc.want) {
    for (const Spike& s : spikes) {
      if (s.neuron == 0) EXPECT_EQ(s.tick, t0 + gc.latency);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, GateTruth,
    ::testing::Values(GateCase{GateKind::kOr, false, false, false, 0},
                      GateCase{GateKind::kOr, true, false, true, 0},
                      GateCase{GateKind::kOr, false, true, true, 0},
                      GateCase{GateKind::kOr, true, true, true, 0},
                      GateCase{GateKind::kAnd, true, false, false, 0},
                      GateCase{GateKind::kAnd, false, true, false, 0},
                      GateCase{GateKind::kAnd, true, true, true, 0},
                      // NOT: b is the clock; output = clock AND !a.
                      GateCase{GateKind::kNot, false, true, true, 0},
                      GateCase{GateKind::kNot, true, true, false, 0},
                      GateCase{GateKind::kXor, true, false, true, 1},
                      GateCase{GateKind::kXor, false, true, true, 1},
                      GateCase{GateKind::kXor, true, true, false, 1},
                      GateCase{GateKind::kXor, false, false, false, 1}));

TEST(Gates, AndIgnoresStaggeredInputs) {
  const Corelet c = make_gate(GateKind::kAnd);
  InputSchedule in;
  in.add(2, 0, 0);
  in.add(3, 0, 1);  // one tick late: no AND
  in.finalize();
  EXPECT_EQ(run_corelet(c, in, 8).size(), 0u);
}

}  // namespace
}  // namespace nsc::corelet
