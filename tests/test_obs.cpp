// Observability subsystem: timer/counter registry, JSON tree (build,
// serialize, parse round-trip), bench reports (schema, stable key set,
// zero-tick edge case), report diffing (regression gating), and the
// instrumentation-does-not-perturb-the-kernel invariant (metrics on vs off
// must be spike-for-spike identical).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>

#include "src/compass/simulator.hpp"
#include "src/core/spike_sink.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/obs/json.hpp"
#include "src/obs/json_report.hpp"
#include "src/obs/obs.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::Network;
using core::VectorSink;
using obs::BenchReport;
using obs::JsonValue;
using obs::PhaseAccum;
using obs::Registry;

// --- PhaseAccum / Registry ---

TEST(PhaseAccum, TracksCallsTotalsAndEnvelope) {
  PhaseAccum acc;
  EXPECT_EQ(acc.calls, 0u);
  EXPECT_DOUBLE_EQ(acc.mean_ns(), 0.0);
  acc.add(100);
  acc.add(50);
  acc.add(200);
  EXPECT_EQ(acc.calls, 3u);
  EXPECT_EQ(acc.total_ns, 350u);
  EXPECT_EQ(acc.min_ns, 50u);
  EXPECT_EQ(acc.max_ns, 200u);
  EXPECT_NEAR(acc.mean_ns(), 350.0 / 3.0, 1e-9);
}

TEST(Registry, PreservesInsertionOrderAndIdentity) {
  Registry reg;
  PhaseAccum& compute = reg.phase("compute");
  PhaseAccum& exchange = reg.phase("exchange");
  EXPECT_EQ(&reg.phase("compute"), &compute);
  EXPECT_NE(&compute, &exchange);
  ASSERT_EQ(reg.phases().size(), 2u);
  EXPECT_EQ(reg.phases()[0].first, "compute");
  EXPECT_EQ(reg.phases()[1].first, "exchange");
  EXPECT_EQ(reg.find_phase("nope"), nullptr);

  reg.counter("messages") += 7;
  reg.counter("messages") += 3;
  EXPECT_EQ(reg.counter_value("messages"), 10u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
}

TEST(Registry, ResetZeroesInPlaceKeepingReferencesValid) {
  Registry reg;
  PhaseAccum& acc = reg.phase("compute");
  std::uint64_t& ctr = reg.counter("messages");
  acc.add(42);
  ctr = 9;
  reg.reset();
  EXPECT_EQ(reg.phases().size(), 1u);
  EXPECT_EQ(acc.calls, 0u);
  EXPECT_EQ(acc.total_ns, 0u);
  EXPECT_EQ(ctr, 0u);
  // The same reference keeps accumulating after reset.
  acc.add(5);
  EXPECT_EQ(reg.find_phase("compute")->total_ns, 5u);
}

TEST(Registry, MergeFoldsPhasesAndCounters) {
  Registry a, b;
  a.phase("compute").add(100);
  b.phase("compute").add(10);
  b.phase("commit").add(7);
  a.counter("messages") = 4;
  b.counter("messages") = 6;
  a.merge(b);
  const PhaseAccum* compute = a.find_phase("compute");
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->calls, 2u);
  EXPECT_EQ(compute->total_ns, 110u);
  EXPECT_EQ(compute->min_ns, 10u);
  EXPECT_EQ(compute->max_ns, 100u);
  EXPECT_EQ(a.find_phase("commit")->total_ns, 7u);
  EXPECT_EQ(a.counter_value("messages"), 10u);
}

TEST(ScopedTimer, AccumulatesWhenEnabledAndIgnoresNullptr) {
  PhaseAccum acc;
  { obs::ScopedTimer t(&acc); }
  { obs::ScopedTimer t(nullptr); }
  if (obs::kEnabled) {
    EXPECT_EQ(acc.calls, 1u);
  } else {
    EXPECT_EQ(acc.calls, 0u);
  }
}

TEST(Clock, MonotonicNs) {
  const std::uint64_t a = obs::now_ns();
  const std::uint64_t b = obs::now_ns();
  EXPECT_GE(b, a);
}

// --- JSON tree ---

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, SerializeParseRoundTrip) {
  JsonValue root = JsonValue::object();
  root.set("name", "micro \"kernel\"");
  root.set("count", std::int64_t{1} << 52);  // Large integer, exactly representable.
  root.set("ratio", 0.125);
  root.set("flag", true);
  root.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back(-2);
  arr.push_back(2.5);
  root.set("xs", std::move(arr));

  for (const int indent : {0, 2}) {
    const JsonValue back = obs::parse_json(root.to_string(indent));
    EXPECT_EQ(back.find("name")->as_string(), "micro \"kernel\"");
    EXPECT_EQ(back.find("count")->as_int(), std::int64_t{1} << 52);
    EXPECT_DOUBLE_EQ(back.find("ratio")->as_double(), 0.125);
    EXPECT_TRUE(back.find("flag")->as_bool());
    EXPECT_EQ(back.find("nothing")->kind(), JsonValue::Kind::Null);
    ASSERT_EQ(back.find("xs")->items().size(), 3u);
    EXPECT_EQ(back.find("xs")->items()[1].as_int(), -2);
  }
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::parse_json(""), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("123 456"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("nul"), std::runtime_error);
}

TEST(Json, FindPathWalksNestedObjects) {
  const JsonValue doc = obs::parse_json(R"({"phases": {"compute": {"total_ns": 42}}})");
  const JsonValue* v = doc.find_path("phases.compute.total_ns");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->as_int(), 42);
  EXPECT_EQ(doc.find_path("phases.missing.total_ns"), nullptr);
}

TEST(Json, NonFiniteNumbersSerializeAsValidJson) {
  JsonValue root = JsonValue::object();
  root.set("bad", std::numeric_limits<double>::quiet_NaN());
  root.set("inf", std::numeric_limits<double>::infinity());
  EXPECT_NO_THROW(obs::parse_json(root.to_string()));
}

// --- Bench reports ---

BenchReport sample_report(std::uint64_t ticks, double wall_s) {
  BenchReport r;
  r.name = "sample";
  r.git_sha = "abc123";
  r.threads = 4;
  r.ticks = ticks;
  r.wall_s = wall_s;
  r.load_imbalance = 1.1;
  r.stats.sops = 1000 * ticks;
  r.stats.spikes = 10 * ticks;
  r.metrics.phase("compute").add(1000);
  r.metrics.phase("exchange").add(100);
  r.metrics.counter("messages") = 6 * ticks;
  return r;
}

TEST(BenchReportJson, EmitsStableKeySet) {
  const JsonValue doc = obs::report_to_json(sample_report(100, 0.01));
  std::set<std::string> keys;
  for (const auto& [k, v] : doc.members()) keys.insert(k);
  const std::set<std::string> expected = {"schema",      "name",        "git_sha",
                                          "threads",     "ticks",       "wall_s",
                                          "ticks_per_s", "sops_per_s",  "load_imbalance",
                                          "stats",       "phases",      "counters"};
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(doc.find("schema")->as_string(), "nsc-bench-v1");
  EXPECT_DOUBLE_EQ(doc.find("ticks_per_s")->as_double(), 10000.0);
  EXPECT_DOUBLE_EQ(doc.find("sops_per_s")->as_double(), 1000 * 100 / 0.01);
  EXPECT_EQ(doc.find_path("phases.compute.total_ns")->as_int(), 1000);
  EXPECT_EQ(doc.find_path("counters.messages")->as_int(), 600);
}

TEST(BenchReportJson, ZeroTickReportIsValidAndFinite) {
  const BenchReport r = sample_report(0, 0.0);
  const JsonValue doc = obs::report_to_json(r);
  EXPECT_DOUBLE_EQ(doc.find("ticks_per_s")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(doc.find("sops_per_s")->as_double(), 0.0);
  EXPECT_NO_THROW(obs::parse_json(doc.to_string()));
}

TEST(BenchReportJson, WriteThenLoadRoundTrips) {
  const std::string path = testing::TempDir() + "/obs_report.json";
  obs::write_bench_report(path, sample_report(50, 0.005));
  const JsonValue doc = obs::load_json_file(path);
  EXPECT_EQ(doc.find("name")->as_string(), "sample");
  EXPECT_EQ(doc.find("ticks")->as_int(), 50);
}

// --- Report diffing (the CI gate) ---

TEST(BenchDiff, PassesWhenWithinThreshold) {
  const JsonValue base = obs::report_to_json(sample_report(100, 0.010));
  const JsonValue cand = obs::report_to_json(sample_report(100, 0.012));  // 1.2x slower.
  const obs::DiffResult diff = obs::diff_reports(base, cand, 1.5);
  EXPECT_FALSE(diff.regressed);
  ASSERT_GE(diff.entries.size(), 2u);
}

TEST(BenchDiff, FlagsInjectedSlowdown) {
  const JsonValue base = obs::report_to_json(sample_report(100, 0.010));
  const JsonValue cand = obs::report_to_json(sample_report(100, 0.030));  // 3x slower.
  const obs::DiffResult diff = obs::diff_reports(base, cand, 2.0);
  EXPECT_TRUE(diff.regressed);
  bool ticks_regressed = false;
  for (const obs::DiffEntry& e : diff.entries) {
    if (e.metric == "ticks_per_s") ticks_regressed = e.regression;
  }
  EXPECT_TRUE(ticks_regressed);
}

TEST(BenchDiff, SpeedupIsNotARegression) {
  const JsonValue base = obs::report_to_json(sample_report(100, 0.030));
  const JsonValue cand = obs::report_to_json(sample_report(100, 0.010));
  EXPECT_FALSE(obs::diff_reports(base, cand, 1.1).regressed);
}

TEST(BenchDiff, PhaseComparisonFlagsPhaseBlowup) {
  BenchReport slow = sample_report(100, 0.010);
  slow.metrics.reset();
  slow.metrics.phase("compute").add(10000);  // 10x the baseline's 1000 ns.
  const JsonValue base = obs::report_to_json(sample_report(100, 0.010));
  const JsonValue cand = obs::report_to_json(slow);
  EXPECT_FALSE(obs::diff_reports(base, cand, 2.0, /*compare_phases=*/false).regressed);
  EXPECT_TRUE(obs::diff_reports(base, cand, 2.0, /*compare_phases=*/true).regressed);
}

TEST(BenchDiff, SkipsMissingAndZeroBaselineMetrics) {
  const JsonValue base = obs::parse_json(R"({"ticks_per_s": 0.0})");
  const JsonValue cand = obs::parse_json(R"({"ticks_per_s": 100.0, "sops_per_s": 5.0})");
  const obs::DiffResult diff = obs::diff_reports(base, cand, 1.5);
  EXPECT_TRUE(diff.entries.empty());
  EXPECT_FALSE(diff.regressed);
  EXPECT_THROW(obs::diff_reports(base, cand, 0.5), std::runtime_error);
}

// --- Instrumentation must not perturb the kernel ---

Network obs_test_net() {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.rate_hz = 80;
  spec.synapses_per_axon = 96;
  spec.seed = 4242;
  return netgen::make_recurrent(spec);
}

TEST(ObsEquivalence, CompassSpikesIdenticalWithMetricsOnAndOff) {
  const Network net = obs_test_net();
  for (const int threads : {1, 3}) {
    VectorSink on_sink, off_sink;
    compass::Simulator on(net, {.threads = threads, .collect_phase_metrics = true});
    compass::Simulator off(net, {.threads = threads, .collect_phase_metrics = false});
    on.run(120, nullptr, &on_sink);
    off.run(120, nullptr, &off_sink);
    EXPECT_EQ(on_sink.spikes(), off_sink.spikes()) << "threads=" << threads;
    EXPECT_EQ(on.stats().sops, off.stats().sops);
    EXPECT_EQ(on.messages_sent(), off.messages_sent());
    // Off: no timings collected, load imbalance unknown.
    EXPECT_EQ(off.metrics().find_phase("compute")->calls, 0u);
    EXPECT_DOUBLE_EQ(off.load_imbalance(), 0.0);
  }
}

TEST(ObsEquivalence, TrueNorthSpikesIdenticalWithMetricsOnAndOff) {
  const Network net = obs_test_net();
  VectorSink on_sink, off_sink;
  tn::TrueNorthSimulator on(net, {.collect_phase_metrics = true});
  tn::TrueNorthSimulator off(net, {.collect_phase_metrics = false});
  on.run(120, nullptr, &on_sink);
  off.run(120, nullptr, &off_sink);
  EXPECT_EQ(on_sink.spikes(), off_sink.spikes());
  EXPECT_EQ(on.stats().sops, off.stats().sops);
  EXPECT_EQ(off.metrics().find_phase("compute")->calls, 0u);
}

TEST(ObsEquivalence, DensityHistogramCollectionDoesNotPerturbSpikes) {
  // Fully-dense recurrent net (256 syn/axon): every core visit lands in the
  // kDense strategy, so the kernel.density_b* histogram and dispatch
  // counters are exercised on every tick. They are derived-observation
  // state only — spike output must be identical with phase-metric
  // collection on and off, and the histogram's top bucket (mean bits/word
  // 64 -> b7) must actually populate.
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 2, 2};
  spec.rate_hz = 200;
  spec.synapses_per_axon = 256;
  spec.seed = 31337;
  const Network net = netgen::make_recurrent(spec);

  VectorSink on_sink, off_sink;
  compass::Simulator on(net, {.threads = 3, .collect_phase_metrics = true});
  compass::Simulator off(net, {.threads = 3, .collect_phase_metrics = false});
  on.run(80, nullptr, &on_sink);
  off.run(80, nullptr, &off_sink);
  EXPECT_EQ(on_sink.spikes(), off_sink.spikes());
  EXPECT_EQ(on.stats().sops, off.stats().sops);
  // The histogram and dispatch counters are always-live (like the visit
  // counters): both simulators must agree bucket for bucket.
  std::uint64_t top_bucket = 0;
  std::uint64_t dense_dispatch = 0;
  for (int b = 0; b < 8; ++b) {
    const std::string name = "kernel.density_b" + std::to_string(b);
    EXPECT_EQ(on.metrics().counter_value(name), off.metrics().counter_value(name)) << name;
    if (b == 7) top_bucket = on.metrics().counter_value(name);
  }
  dense_dispatch = on.metrics().counter_value("kernel.dispatch_dense");
  EXPECT_GT(top_bucket, 0u) << "256 syn/axon visits must land in density_b7";
  EXPECT_GT(dense_dispatch, 0u) << "profile must converge to the kDense strategy";

  VectorSink tn_on_sink, tn_off_sink;
  tn::TrueNorthSimulator tn_on(net, {.collect_phase_metrics = true});
  tn::TrueNorthSimulator tn_off(net, {.collect_phase_metrics = false});
  tn_on.run(80, nullptr, &tn_on_sink);
  tn_off.run(80, nullptr, &tn_off_sink);
  EXPECT_EQ(tn_on_sink.spikes(), tn_off_sink.spikes());
  EXPECT_EQ(on_sink.spikes(), tn_on_sink.spikes());  // And across backends.
  EXPECT_GT(tn_on.metrics().counter_value("kernel.density_b7"), 0u);
}

TEST(ObsMetrics, CompassCollectsPhaseTimingsAndCounters) {
  const Network net = obs_test_net();
  compass::Simulator sim(net, {.threads = 2});
  VectorSink sink;
  sim.run(50, nullptr, &sink);
  if (!obs::kEnabled) GTEST_SKIP() << "built with NSC_OBS=0";
  const obs::Registry& m = sim.metrics();
  EXPECT_EQ(m.find_phase("compute")->calls, 50u);
  EXPECT_EQ(m.find_phase("exchange")->calls, 50u);
  EXPECT_EQ(m.find_phase("commit")->calls, 50u);
  EXPECT_GT(m.find_phase("compute")->total_ns, 0u);
  EXPECT_EQ(m.counter_value("messages"), sim.messages_sent());
  EXPECT_GT(m.counter_value("message_bytes"), 0u);
  ASSERT_EQ(sim.partition_compute_ns().size(), 2u);
  EXPECT_GE(sim.load_imbalance(), 1.0);

  sim.reset_metrics();
  EXPECT_EQ(m.find_phase("compute")->calls, 0u);
  EXPECT_EQ(m.counter_value("messages"), 0u);
  EXPECT_DOUBLE_EQ(sim.load_imbalance(), 0.0);
  // Metrics keep accumulating after a reset.
  sim.run(10, nullptr, &sink);
  EXPECT_EQ(m.find_phase("compute")->calls, 10u);
}

TEST(ObsMetrics, TrueNorthCollectsPhaseTimings) {
  const Network net = obs_test_net();
  tn::TrueNorthSimulator sim(net);
  sim.run(30, nullptr, nullptr);
  if (!obs::kEnabled) GTEST_SKIP() << "built with NSC_OBS=0";
  const obs::Registry& m = sim.metrics();
  EXPECT_EQ(m.find_phase("inject")->calls, 30u);
  EXPECT_EQ(m.find_phase("compute")->calls, 30u);
  EXPECT_EQ(m.find_phase("commit")->calls, 30u);
  EXPECT_GT(m.find_phase("compute")->total_ns, 0u);
  sim.reset_metrics();
  EXPECT_EQ(m.find_phase("compute")->calls, 0u);
}

}  // namespace
}  // namespace nsc
