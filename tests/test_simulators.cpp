// Behavioral tests of the simulator backends against hand-built networks:
// delay semantics, spike routing, drops, fault handling, stats accounting,
// and hop counting. The reference simulator defines expected behavior; the
// TrueNorth and Compass backends are additionally cross-checked in
// test_equivalence.cpp.
#include <gtest/gtest.h>

#include "src/compass/simulator.hpp"
#include "src/core/reference_sim.hpp"
#include "src/core/spike_sink.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc {
namespace {

using core::CoreId;
using core::Geometry;
using core::InputSchedule;
using core::kCoreSize;
using core::Network;
using core::NeuronParams;
using core::Spike;
using core::Tick;
using core::VectorSink;

/// 2-core network: axon 0 of core 0 drives neuron 0 (weight 1, threshold 1),
/// which targets (core 1, axon 3, delay d); neuron 3 of core 1 listens on
/// axon 3 the same way.
Network make_relay(std::uint8_t delay) {
  Network net(Geometry{1, 1, 2, 1});
  for (auto& cs : net.cores) {
    for (auto& p : cs.neuron) p.enabled = 0;
  }
  auto& c0 = net.core(0);
  c0.crossbar.set(0, 0);
  c0.neuron[0].enabled = 1;
  c0.neuron[0].weight[0] = 1;
  c0.neuron[0].threshold = 1;
  c0.neuron[0].target = {1, 3, delay};
  auto& c1 = net.core(1);
  c1.crossbar.set(3, 3);
  c1.neuron[3].enabled = 1;
  c1.neuron[3].weight[0] = 1;
  c1.neuron[3].threshold = 1;
  c1.neuron[3].target = {};  // spike dropped at the end of the relay
  return net;
}

InputSchedule one_input(Tick t, CoreId core, std::uint16_t axon) {
  InputSchedule in;
  in.add(t, core, axon);
  in.finalize();
  return in;
}

TEST(ReferenceSim, RelayRespectsAxonalDelay) {
  for (std::uint8_t d : {std::uint8_t{1}, std::uint8_t{7}, std::uint8_t{15}}) {
    const Network net = make_relay(d);
    core::ReferenceSimulator sim(net);
    const InputSchedule in = one_input(0, 0, 0);
    VectorSink sink;
    sim.run(20, &in, &sink);
    ASSERT_EQ(sink.spikes().size(), 2u) << "delay " << int(d);
    EXPECT_EQ(sink.spikes()[0], (Spike{0, 0, 0}));
    EXPECT_EQ(sink.spikes()[1], (Spike{static_cast<Tick>(0 + d), 1, 3}));
  }
}

TEST(ReferenceSim, DroppedSpikesCounted) {
  const Network net = make_relay(1);
  core::ReferenceSimulator sim(net);
  const InputSchedule in = one_input(0, 0, 0);
  sim.run(5, &in, nullptr);
  EXPECT_EQ(sim.stats().spikes, 2u);
  EXPECT_EQ(sim.stats().dropped_spikes, 1u);  // the relay end has no target
}

TEST(ReferenceSim, SameTickSameAxonInputsMerge) {
  const Network net = make_relay(1);
  core::ReferenceSimulator sim(net);
  InputSchedule in;
  in.add(0, 0, 0);
  in.add(0, 0, 0);
  in.finalize();
  VectorSink sink;
  sim.run(5, &in, &sink);
  EXPECT_EQ(sink.spikes().size(), 2u);  // merged: one axon event, one spike
  EXPECT_EQ(sim.stats().axon_events, 2u);
}

TEST(ReferenceSim, StatsCountSopsAndUpdates) {
  const Network net = make_relay(1);
  core::ReferenceSimulator sim(net);
  const InputSchedule in = one_input(0, 0, 0);
  sim.run(10, &in, nullptr);
  EXPECT_EQ(sim.stats().ticks, 10u);
  EXPECT_EQ(sim.stats().sops, 2u);           // one per relay stage
  EXPECT_EQ(sim.stats().neuron_updates, 20u);  // 2 enabled neurons × 10 ticks
}

TEST(ReferenceSim, InitialPotentialRespected) {
  Network net = make_relay(1);
  net.core(0).neuron[0].init_v = 1;  // at threshold: fires on tick 0 via leak pass
  core::ReferenceSimulator sim(net);
  VectorSink sink;
  sim.run(3, nullptr, &sink);
  ASSERT_FALSE(sink.spikes().empty());
  EXPECT_EQ(sink.spikes()[0], (Spike{0, 0, 0}));
}

TEST(ReferenceSim, DisabledCoreAbsorbsNothing) {
  Network net = make_relay(1);
  net.core(1).disabled = 1;
  for (auto& p : net.core(1).neuron) p.enabled = 0;
  net.core(0).neuron[0].target = {};  // keep validation clean
  core::ReferenceSimulator sim(net);
  const InputSchedule in = one_input(0, 0, 0);
  VectorSink sink;
  sim.run(5, &in, &sink);
  EXPECT_EQ(sink.spikes().size(), 1u);  // only core 0 fires
}

TEST(TrueNorthSim, MatchesRelaySemantics) {
  const Network net = make_relay(4);
  tn::TrueNorthSimulator sim(net);
  const InputSchedule in = one_input(2, 0, 0);
  VectorSink sink;
  sim.run(20, &in, &sink);
  ASSERT_EQ(sink.spikes().size(), 2u);
  EXPECT_EQ(sink.spikes()[0], (Spike{2, 0, 0}));
  EXPECT_EQ(sink.spikes()[1], (Spike{6, 1, 3}));
}

TEST(TrueNorthSim, HopAccountingUsesManhattan) {
  const Network net = make_relay(1);  // cores (0,0) and (1,0): 1 hop apart
  tn::TrueNorthSimulator sim(net);
  const InputSchedule in = one_input(0, 0, 0);
  sim.run(5, &in, nullptr);
  // Only the core-0 spike routes (core-1 spike is dropped): 1 hop.
  EXPECT_EQ(sim.stats().hop_sum, 1u);
  EXPECT_DOUBLE_EQ(sim.mean_hops_per_spike(), 1.0);
}

TEST(TrueNorthSim, FaultedTargetDropsSpike) {
  Network net = make_relay(1);
  net.core(1).disabled = 1;
  for (auto& p : net.core(1).neuron) p.enabled = 0;
  tn::TrueNorthSimulator sim(net);
  const InputSchedule in = one_input(0, 0, 0);
  sim.run(5, &in, nullptr);
  EXPECT_EQ(sim.stats().spikes, 1u);
  EXPECT_EQ(sim.stats().dropped_spikes, 1u);
}

TEST(TrueNorthSim, PerTickMaximaTracked) {
  const Network net = make_relay(1);
  tn::TrueNorthSimulator sim(net);
  const InputSchedule in = one_input(0, 0, 0);
  sim.run(3, &in, nullptr);
  // Tick 0 and tick 1 each have a 1-axon, 1-SOP, 1-spike busiest core.
  EXPECT_EQ(sim.stats().sum_max_core_sops, 2u);
  EXPECT_EQ(sim.stats().sum_max_core_axon_events, 2u);
  EXPECT_EQ(sim.stats().sum_max_core_spikes, 2u);
}

TEST(CompassSim, MatchesRelaySemanticsAcrossThreads) {
  for (int threads : {1, 2, 4}) {
    const Network net = make_relay(3);
    compass::Simulator sim(net, {.threads = threads});
    const InputSchedule in = one_input(1, 0, 0);
    VectorSink sink;
    sim.run(20, &in, &sink);
    ASSERT_EQ(sink.spikes().size(), 2u) << threads << " threads";
    EXPECT_EQ(sink.spikes()[0], (Spike{1, 0, 0}));
    EXPECT_EQ(sink.spikes()[1], (Spike{4, 1, 3}));
  }
}

TEST(CompassSim, MessageAggregationCountsOnePerPairPerTick) {
  // Relay with the two cores in different partitions: the cross-partition
  // spike is one aggregated message; per-spike mode counts the same single
  // delivery as one message too, so drive several spikes through.
  Network net = make_relay(1);
  net.core(0).neuron[0].leak = 1;  // free-runs at threshold 1: fires every tick
  compass::Simulator agg(net, {.threads = 2, .aggregate_messages = true});
  agg.run(10, nullptr, nullptr);
  EXPECT_GT(agg.stats().spikes, 0u);
  const std::uint64_t agg_msgs = agg.messages_sent();

  compass::Simulator per(net, {.threads = 2, .aggregate_messages = false});
  per.run(10, nullptr, nullptr);
  EXPECT_EQ(per.stats().spikes, agg.stats().spikes);
  // One spike per tick crosses the partition boundary: aggregated mode also
  // sends one message per tick here, so the counts agree in this topology...
  EXPECT_EQ(per.messages_sent(), agg_msgs);
}

TEST(CompassSim, PartitionsCoverAllCoresContiguously) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 8, 8};
  spec.rate_hz = 20;
  spec.synapses_per_axon = 32;
  const Network net = netgen::make_recurrent(spec);
  compass::Simulator sim(net, {.threads = 4});
  const auto& parts = sim.partitions();
  ASSERT_EQ(parts.size(), 4u);
  CoreId cursor = 0;
  for (const auto& r : parts) {
    EXPECT_EQ(r.begin, cursor);
    cursor = r.end;
  }
  EXPECT_EQ(cursor, static_cast<CoreId>(net.geom.total_cores()));
}

TEST(Partition, BalancesLoadOnUniformNetwork) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 8, 8};
  spec.synapses_per_axon = 64;
  const Network net = netgen::make_recurrent(spec);
  const auto parts = compass::partition_balanced(net, 4);
  EXPECT_LT(compass::load_imbalance(net, parts), 1.1);
}

TEST(Partition, SinglePartitionTakesAll) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  const Network net = netgen::make_recurrent(spec);
  const auto parts = compass::partition_balanced(net, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 4);
}

TEST(RecurrentNet, MeasuredRateTracksTarget) {
  // Property: the calibrated recurrent networks hold their target rate.
  for (double rate : {10.0, 50.0, 200.0}) {
    netgen::RecurrentSpec spec;
    spec.geom = Geometry{1, 1, 8, 8};  // 64 cores, 16k neurons
    spec.rate_hz = rate;
    spec.synapses_per_axon = 64;
    spec.seed = 42;
    const Network net = netgen::make_recurrent(spec);
    tn::TrueNorthSimulator sim(net);
    sim.run(200, nullptr, nullptr);
    const double measured =
        sim.stats().mean_rate_hz(static_cast<std::uint64_t>(net.geom.neurons()));
    EXPECT_NEAR(measured, rate, rate * 0.25) << "target " << rate << " Hz";
  }
}

TEST(RecurrentNet, SopsPerDeliveryEqualsSynapseParameter) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.rate_hz = 50;
  spec.synapses_per_axon = 37;
  const Network net = netgen::make_recurrent(spec);
  tn::TrueNorthSimulator sim(net);
  sim.run(100, nullptr, nullptr);
  EXPECT_NEAR(sim.stats().mean_synapses_per_delivery(), 37.0, 1.5);
}

TEST(RecurrentNet, CalibrationFixedPoint) {
  for (double rate : {2.0, 20.0, 200.0}) {
    for (int syn : {0, 128, 256}) {
      netgen::RecurrentSpec spec;
      spec.rate_hz = rate;
      spec.synapses_per_axon = syn;
      const auto cal = netgen::calibrate(spec);
      EXPECT_GT(cal.threshold, 0);
      EXPECT_GE(cal.leak, 1);
      EXPECT_NEAR(cal.expected_rate_hz, rate, rate * 0.15) << rate << "/" << syn;
      // Subcritical: branching ratio K/α stays below 1.
      EXPECT_LT(static_cast<double>(syn), cal.threshold + cal.jitter_mask / 2.0);
    }
  }
}

}  // namespace
}  // namespace nsc
