// Deployment-planner suite (src/analysis/plan, docs/ANALYSIS.md): the
// planner rules NSC041–NSC055 each fire on a crafted violating
// network/config, the nsc-plan-v1 JSON round-trips, the checkpoint audit
// rejects forged NSCK state, and — the load-bearing gate — the static
// per-tick bounds are CONSERVATIVE: fuzzed nets run at {1, 2, 4} ranks on
// the real forked Coordinator must never exceed the planned
// dist.messages / dist.bytes / per-rank compute work.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/lint.hpp"
#include "src/analysis/plan.hpp"
#include "src/core/snapshot.hpp"
#include "src/dist/coordinator.hpp"
#include "src/obs/json.hpp"
#include "tests/test_support.hpp"

// Rank processes are forked from the test binary; under TSan the default
// die_after_fork=1 would abort them before they ever reach rank_main.
extern "C" const char* __tsan_default_options() { return "die_after_fork=0"; }

namespace nsc {
namespace {

using analysis::DeploymentPlan;
using analysis::DeploymentSpec;
using analysis::LintReport;
using analysis::Severity;
using core::Geometry;
using core::Network;
using core::Tick;

Network make_ring(int ncores = 4) {
  Network net(Geometry{1, 1, 2, ncores / 2});
  for (core::CoreId c = 0; c < ncores; ++c) {
    for (int j = 0; j < core::kCoreSize; ++j) {
      net.core(c).crossbar.set(j, j);
      core::NeuronParams& p = net.core(c).neuron[j];
      p.threshold = 100;
      p.target = {(c + 1) % ncores, static_cast<std::uint16_t>(j), 1};
    }
  }
  return net;
}

/// 16 fully-dense cores: every axon targeted, every row full — the planner's
/// per-tick work bound is ~16 * (256 + 256 + 256*256), big enough to trip
/// the deadline and recovery models with small knobs.
Network make_dense16() {
  Network net(Geometry{1, 1, 4, 4});
  for (core::CoreId c = 0; c < 16; ++c) {
    for (int a = 0; a < core::kCoreSize; ++a) {
      for (int j = 0; j < core::kCoreSize; ++j) net.core(c).crossbar.set(a, j);
    }
    for (int j = 0; j < core::kCoreSize; ++j) {
      core::NeuronParams& p = net.core(c).neuron[j];
      p.threshold = 200;
      p.target = {(c + 1) % 16, static_cast<std::uint16_t>(j),
                  static_cast<std::uint8_t>(1 + (j % core::kMaxDelay))};
    }
  }
  return net;
}

LintReport lint_with(const Network& net, const DeploymentSpec& spec) {
  analysis::LintOptions options;
  options.deploy = &spec;
  return analysis::lint(net, options);
}

// ---------------------------------------------------------------------------
// Plan structure
// ---------------------------------------------------------------------------

TEST(Plan, MessageBoundIsExactRankArithmetic) {
  const Network net = make_ring();
  DeploymentSpec spec;
  spec.ranks = 3;
  const DeploymentPlan plan = analysis::plan_deployment(net, spec);
  ASSERT_EQ(plan.ranks.size(), 3u);
  EXPECT_EQ(plan.total_messages_per_tick, 3u * 2u);
  for (const analysis::RankBound& b : plan.ranks) {
    EXPECT_EQ(b.send_messages, 2u);
    EXPECT_GE(b.send_bytes, 2u * 8u) << "every peer frame carries its 8-byte tick header";
    EXPECT_EQ(b.work_bound, b.enabled_neurons + b.axons_targeted + b.reachable_synapses);
  }
  EXPECT_GE(plan.load_imbalance, 1.0);
  EXPECT_GE(plan.recommended_ranks, 1);
}

TEST(Plan, ShardsMatchCompassPartitioner) {
  // The planner must reuse the runtime partitioner verbatim, or the bounds
  // would describe shards no rank actually owns.
  const Network net = make_ring(8);
  DeploymentSpec spec;
  spec.ranks = 4;
  const DeploymentPlan plan = analysis::plan_deployment(net, spec);
  const std::vector<compass::CoreRange> shards = compass::partition_balanced(net, 4);
  ASSERT_EQ(plan.ranks.size(), shards.size());
  for (std::size_t r = 0; r < shards.size(); ++r) {
    EXPECT_EQ(plan.ranks[r].shard.begin, shards[r].begin);
    EXPECT_EQ(plan.ranks[r].shard.end, shards[r].end);
  }
}

TEST(Plan, RejectsInvalidSpecs) {
  const Network net = make_ring();
  DeploymentSpec bad;
  bad.ranks = 0;
  EXPECT_THROW((void)analysis::plan_deployment(net, bad), std::invalid_argument);
  bad = DeploymentSpec{};
  bad.replicas = 0;
  EXPECT_THROW((void)analysis::plan_deployment(net, bad), std::invalid_argument);
  bad = DeploymentSpec{};
  bad.recovery_interval = 0;
  EXPECT_THROW((void)analysis::plan_deployment(net, bad), std::invalid_argument);
}

TEST(Plan, SnapshotImageBoundCoversRealSnapshot) {
  const Network net = testsup::hard_network();
  core::Snapshot snap;
  snap.geom = net.geom;
  snap.net_seed = net.seed;
  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  snap.dead_cores.assign(ncores, 0);
  snap.dead_links.assign(static_cast<std::size_t>(net.geom.chips()) * 4, 0);
  snap.v.assign(ncores * core::kCoreSize, 0);
  snap.delay_words.assign(ncores * 16 * 4, 0);
  for (int i = 0; i < 64; ++i) snap.set_extra("counter_" + std::to_string(i), i);
  snap.traffic_link_totals.assign(static_cast<std::size_t>(net.geom.chips()) * 4, 0);
  std::ostringstream os(std::ios::binary);
  core::save_snapshot(snap, os);
  EXPECT_LE(os.str().size(), analysis::snapshot_image_bytes_bound(net.geom));
}

// ---------------------------------------------------------------------------
// One crafted violating net/config per planner rule
// ---------------------------------------------------------------------------

TEST(PlanRule, NSC041EmptyShards) {
  // 4 cores across 6 ranks: two shards own nothing but still fork and frame.
  const Network net = make_ring();
  DeploymentSpec spec;
  spec.ranks = 6;
  const LintReport report = lint_with(net, spec);
  EXPECT_TRUE(report.has_rule("NSC041"));
  EXPECT_FALSE(lint_with(net, DeploymentSpec{.ranks = 4}).has_rule("NSC041"));
}

TEST(PlanRule, NSC042StaticImbalance) {
  // Core 0 fully dense, core 1 barely used: a 2-way split is ~2x lopsided.
  Network net(Geometry{1, 1, 2, 1});
  for (int a = 0; a < core::kCoreSize; ++a) {
    for (int j = 0; j < core::kCoreSize; ++j) net.core(0).crossbar.set(a, j);
  }
  for (int j = 0; j < core::kCoreSize; ++j) {
    net.core(0).neuron[j].threshold = 100;
    net.core(0).neuron[j].target = {1, static_cast<std::uint16_t>(j), 1};
    net.core(1).neuron[j].enabled = false;
  }
  net.core(1).neuron[0].enabled = true;
  net.core(1).neuron[0].threshold = 100;
  net.core(1).neuron[0].target = {0, 0, 1};
  const LintReport report = lint_with(net, DeploymentSpec{.ranks = 2});
  EXPECT_TRUE(report.has_rule("NSC042"));
}

TEST(PlanRule, NSC043ExchangeOverCapacity) {
  // The byte bound itself needs a ~10^6-route cut to trip; craft the plan
  // and drive the rule pass directly.
  const Network net = make_ring();
  DeploymentPlan plan;
  plan.spec.ranks = 2;
  plan.total_messages_per_tick = 2;
  plan.total_bytes_per_tick = analysis::kExchangeBytesPerTickCapacity + 1;
  bool found = false;
  for (const analysis::Finding& f : analysis::plan_findings(net, plan)) {
    found = found || f.rule == "NSC043";
  }
  EXPECT_TRUE(found);
}

TEST(PlanRule, NSC044DeadlineInfeasible) {
  // Dense 16-core net at 2 ranks: >1 ms of bounded work per tick vs a 1 ms
  // deadline whose heartbeat window is 250 us.
  const Network net = make_dense16();
  DeploymentSpec spec;
  spec.ranks = 2;
  spec.rank_deadline_ms = 1;
  EXPECT_TRUE(lint_with(net, spec).has_rule("NSC044"));
  spec.rank_deadline_ms = 60000;
  EXPECT_FALSE(lint_with(net, spec).has_rule("NSC044"));
}

TEST(PlanRule, NSC045RecoveryOverBudget) {
  const Network net = make_dense16();
  DeploymentSpec spec;
  spec.ranks = 2;
  spec.supervise = true;
  spec.recovery_interval = 1000000;  // replay bound ~2e12 ns >> 1e9 budget
  EXPECT_TRUE(lint_with(net, spec).has_rule("NSC045"));
  spec.supervise = false;
  EXPECT_FALSE(lint_with(net, spec).has_rule("NSC045"))
      << "recovery cost is moot without --supervise";
}

TEST(PlanRule, NSC046ReplicaFootprintOverBudget) {
  const Network net = make_ring();
  DeploymentSpec spec;
  spec.replicas = 4;
  spec.replica_memory_budget = 1024;  // nothing fits in 1 KiB
  const LintReport report = lint_with(net, spec);
  EXPECT_TRUE(report.has_rule("NSC046"));
  spec.replica_memory_budget = analysis::kDefaultReplicaMemoryBudgetBytes;
  EXPECT_FALSE(lint_with(net, spec).has_rule("NSC046"));
}

TEST(PlanRule, NSC047RecommendsDifferentRankCount) {
  // A 4-core ring cannot use 4 processes: per-frame overhead dominates, so
  // the modeled optimum is fewer ranks and the info rule says so.
  const Network net = make_ring();
  const LintReport report = lint_with(net, DeploymentSpec{.ranks = 4});
  ASSERT_TRUE(report.has_rule("NSC047"));
  for (const analysis::Finding& f : report.findings) {
    if (f.rule == "NSC047") EXPECT_EQ(f.severity, Severity::kInfo);
  }
}

TEST(PlanRule, NSC055ReplicasCannotShard) {
  const Network net = make_ring();
  DeploymentSpec spec;
  spec.ranks = 2;
  spec.replicas = 2;
  const LintReport report = lint_with(net, spec);
  ASSERT_TRUE(report.has_rule("NSC055"));
  EXPECT_GE(report.count(Severity::kError), 1u);
}

TEST(PlanRule, CatalogCarriesTheDeploymentRules) {
  int seen = 0;
  for (const analysis::RuleInfo& r : analysis::rule_catalog()) {
    if (r.id >= "NSC041" && r.id <= "NSC055") ++seen;
    if (r.id == "NSC048" || r.id == "NSC049" || r.id == "NSC050" || r.id == "NSC051" ||
        r.id == "NSC055") {
      EXPECT_EQ(r.severity, Severity::kError) << r.id;
    }
  }
  EXPECT_EQ(seen, 15);
}

// ---------------------------------------------------------------------------
// nsc-plan-v1 round trip
// ---------------------------------------------------------------------------

TEST(PlanJson, RoundTripsThroughObsJson) {
  const Network net = make_dense16();
  DeploymentSpec spec;
  spec.ranks = 3;
  spec.supervise = true;
  spec.rank_deadline_ms = 40;
  spec.recovery_interval = 16;
  const DeploymentPlan plan = analysis::plan_deployment(net, spec);

  const std::string text = analysis::plan_to_json(plan, "dense16", net.geom).to_string(2);
  const DeploymentPlan back = analysis::plan_from_json(obs::parse_json(text));

  EXPECT_EQ(back.spec.ranks, plan.spec.ranks);
  EXPECT_EQ(back.spec.replicas, plan.spec.replicas);
  EXPECT_EQ(back.spec.supervise, plan.spec.supervise);
  EXPECT_EQ(back.spec.rank_deadline_ms, plan.spec.rank_deadline_ms);
  EXPECT_EQ(back.spec.recovery_interval, plan.spec.recovery_interval);
  EXPECT_EQ(back.spec.replica_memory_budget, plan.spec.replica_memory_budget);
  ASSERT_EQ(back.ranks.size(), plan.ranks.size());
  for (std::size_t r = 0; r < plan.ranks.size(); ++r) {
    EXPECT_EQ(back.ranks[r].shard.begin, plan.ranks[r].shard.begin);
    EXPECT_EQ(back.ranks[r].shard.end, plan.ranks[r].shard.end);
    EXPECT_EQ(back.ranks[r].enabled_neurons, plan.ranks[r].enabled_neurons);
    EXPECT_EQ(back.ranks[r].axons_targeted, plan.ranks[r].axons_targeted);
    EXPECT_EQ(back.ranks[r].reachable_synapses, plan.ranks[r].reachable_synapses);
    EXPECT_EQ(back.ranks[r].work_bound, plan.ranks[r].work_bound);
    EXPECT_EQ(back.ranks[r].send_messages, plan.ranks[r].send_messages);
    EXPECT_EQ(back.ranks[r].send_bytes, plan.ranks[r].send_bytes);
    EXPECT_NEAR(back.ranks[r].est_tick_ns, plan.ranks[r].est_tick_ns,
                1e-6 * plan.ranks[r].est_tick_ns + 1e-9);
  }
  EXPECT_EQ(back.total_messages_per_tick, plan.total_messages_per_tick);
  EXPECT_EQ(back.total_bytes_per_tick, plan.total_bytes_per_tick);
  EXPECT_EQ(back.total_work_per_tick, plan.total_work_per_tick);
  EXPECT_NEAR(back.load_imbalance, plan.load_imbalance, 1e-9);
  EXPECT_EQ(back.recommended_ranks, plan.recommended_ranks);
  EXPECT_EQ(back.replica.total_bytes, plan.replica.total_bytes);
  EXPECT_EQ(back.recovery.image_bytes, plan.recovery.image_bytes);
  EXPECT_EQ(back.recovery.replay_work_bound, plan.recovery.replay_work_bound);
}

TEST(PlanJson, RejectsForeignSchema) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", "nsc-bench-v1");
  EXPECT_THROW((void)analysis::plan_from_json(doc), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Checkpoint audit (NSC048–NSC054): forged and hostile NSCK fixtures
// ---------------------------------------------------------------------------

core::Snapshot consistent_snapshot(const Network& net) {
  core::Snapshot snap;
  snap.backend = core::SnapshotBackend::kCompass;
  snap.geom = net.geom;
  snap.net_seed = net.seed;
  snap.tick = 5;
  snap.stats.ticks = 5;
  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  snap.v.assign(ncores * core::kCoreSize, 0);
  snap.delay_words.assign(ncores * 16 * 4, 0);
  return snap;
}

std::string write_snapshot(const std::string& name, const core::Snapshot& snap) {
  const std::string path = ::testing::TempDir() + name;
  core::save_snapshot(snap, path);
  return path;
}

TEST(CheckpointAudit, CleanSnapshotHasNoErrorFindings) {
  const Network net = make_ring();
  const std::string path = write_snapshot("audit_clean.nsck", consistent_snapshot(net));
  const LintReport report = analysis::audit_checkpoint(path, &net);
  EXPECT_EQ(report.count(Severity::kError), 0u);
  EXPECT_EQ(report.count(Severity::kWarn), 0u);
}

TEST(CheckpointAudit, NSC048ForgedMagicAndTruncation) {
  const Network net = make_ring();
  std::ostringstream os(std::ios::binary);
  core::save_snapshot(consistent_snapshot(net), os);
  std::string bytes = os.str();

  const std::string forged = ::testing::TempDir() + "audit_forged.nsck";
  {
    std::string b = bytes;
    b[0] = static_cast<char>(b[0] ^ 0x5A);
    std::ofstream f(forged, std::ios::binary);
    f.write(b.data(), static_cast<std::streamsize>(b.size()));
  }
  EXPECT_TRUE(analysis::audit_checkpoint(forged).has_rule("NSC048"));

  const std::string truncated = ::testing::TempDir() + "audit_truncated.nsck";
  {
    std::ofstream f(truncated, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const LintReport report = analysis::audit_checkpoint(truncated);
  EXPECT_TRUE(report.has_rule("NSC048"));
  EXPECT_GE(report.count(Severity::kError), 1u);
}

TEST(CheckpointAudit, NSC049GeometryOrSeedMismatch) {
  const Network net = make_ring();
  core::Snapshot snap = consistent_snapshot(net);
  snap.net_seed = net.seed + 1;
  const std::string path = write_snapshot("audit_seed.nsck", snap);
  EXPECT_TRUE(analysis::audit_checkpoint(path, &net).has_rule("NSC049"));
  // Without a network to cross-check there is nothing to mismatch.
  EXPECT_FALSE(analysis::audit_checkpoint(path).has_rule("NSC049"));
}

TEST(CheckpointAudit, NSC050NonBooleanFaultBitmap) {
  const Network net = make_ring();
  core::Snapshot snap = consistent_snapshot(net);
  snap.dead_cores.assign(static_cast<std::size_t>(net.geom.total_cores()), 0);
  snap.dead_cores[1] = 2;
  const std::string path = write_snapshot("audit_bitmap.nsck", snap);
  const LintReport report = analysis::audit_checkpoint(path, &net);
  EXPECT_TRUE(report.has_rule("NSC050"));
  EXPECT_GE(report.count(Severity::kError), 1u);
}

TEST(CheckpointAudit, NSC051PotentialOutsideEnvelope) {
  const Network net = make_ring();
  core::Snapshot snap = consistent_snapshot(net);
  snap.v[3] = core::kPotentialMax + 7;
  snap.v[300] = core::kPotentialMin - 1;
  const std::string path = write_snapshot("audit_hot.nsck", snap);
  const LintReport report = analysis::audit_checkpoint(path, &net);
  ASSERT_TRUE(report.has_rule("NSC051"));
  for (const analysis::Finding& f : report.findings) {
    if (f.rule == "NSC051") {
      EXPECT_EQ(f.count, 2u);
      EXPECT_EQ(f.core, 0);
      EXPECT_EQ(f.neuron, 3);
    }
  }
}

TEST(CheckpointAudit, NSC052TickBehindStats) {
  const Network net = make_ring();
  core::Snapshot snap = consistent_snapshot(net);
  snap.tick = 2;
  snap.stats.ticks = 9;
  const std::string path = write_snapshot("audit_stale.nsck", snap);
  EXPECT_TRUE(analysis::audit_checkpoint(path, &net).has_rule("NSC052"));
}

TEST(CheckpointAudit, NSC053And054DeadCoreWithBufferedDeliveries) {
  const Network net = make_ring();
  core::Snapshot snap = consistent_snapshot(net);
  snap.dead_cores.assign(static_cast<std::size_t>(net.geom.total_cores()), 0);
  snap.dead_cores[2] = 1;
  snap.delay_words[2 * 16 * 4] = 0x1;
  const std::string path = write_snapshot("audit_dead.nsck", snap);
  const LintReport report = analysis::audit_checkpoint(path, &net);
  EXPECT_TRUE(report.has_rule("NSC053"));
  EXPECT_TRUE(report.has_rule("NSC054"));
  EXPECT_EQ(report.count(Severity::kError), 0u) << "degraded state is a warning, not an error";
}

TEST(CheckpointAudit, SuppressionSkipsAndRecordsRules) {
  const Network net = make_ring();
  core::Snapshot snap = consistent_snapshot(net);
  snap.v[0] = core::kPotentialMax + 1;
  const std::string path = write_snapshot("audit_suppress.nsck", snap);
  const LintReport report = analysis::audit_checkpoint(path, &net, {"NSC051"});
  EXPECT_FALSE(report.has_rule("NSC051"));
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0], "NSC051");
}

// ---------------------------------------------------------------------------
// THE conservativeness gate: fuzzed nets, real forked ranks, measured
// counters never exceed the static bounds. Bounds assume fresh, input-free
// runs (external input is statically unknowable), so no InputSchedule here.
// ---------------------------------------------------------------------------

void expect_run_within_bounds(const Network& net, Tick ticks, int ranks) {
  DeploymentSpec spec;
  spec.ranks = ranks;
  const DeploymentPlan plan = analysis::plan_deployment(net, spec);

  dist::Coordinator coord(net, {.ranks = ranks, .threads_per_rank = 1});
  core::VectorSink sink;
  coord.run(ticks, nullptr, &sink);

  const auto t = static_cast<std::uint64_t>(ticks);
  const std::uint64_t messages = testsup::counter_value(coord.metrics(), "dist.messages");
  const std::uint64_t bytes = testsup::counter_value(coord.metrics(), "dist.bytes");
  // Messages are exact arithmetic, not just a bound: one kSpikeBatch frame
  // per ordered live pair per tick.
  EXPECT_EQ(messages, t * plan.total_messages_per_tick);
  EXPECT_LE(bytes, t * plan.total_bytes_per_tick);

  const std::vector<std::uint64_t>& work = coord.rank_compute_work();
  ASSERT_EQ(work.size(), plan.ranks.size());
  std::uint64_t total_work = 0;
  for (std::size_t r = 0; r < work.size(); ++r) {
    EXPECT_LE(work[r], t * plan.ranks[r].work_bound) << "rank " << r;
    total_work += work[r];
  }
  EXPECT_LE(total_work, t * plan.total_work_per_tick);
  EXPECT_EQ(total_work, coord.stats().sops + coord.stats().axon_events +
                            coord.stats().neuron_updates);
}

class PlanConservative : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanConservative, MeasuredRunNeverExceedsStaticBounds) {
  const Network net = netgen::make_random(testsup::fuzz_spec(GetParam()));
  const Tick ticks = 30 + static_cast<Tick>(GetParam() % 7);
  for (const int ranks : {1, 2, 4}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    expect_run_within_bounds(net, ticks, ranks);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanConservative, ::testing::Range<std::uint64_t>(1, 7));

TEST(PlanConservative, SelfDrivenRecurrentTrafficStaysBounded) {
  // The heaviest wire traffic: a self-driven recurrent net where every
  // spike after tick 0 crosses shards.
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 2};
  spec.rate_hz = 80;
  spec.synapses_per_axon = 96;
  spec.seed = 515;
  const Network net = netgen::make_recurrent(spec);
  for (const int ranks : {2, 4}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    expect_run_within_bounds(net, 60, ranks);
  }
}

}  // namespace
}  // namespace nsc
