// Resilience subsystem (docs/RESILIENCE.md): checkpoint/restore is
// bit-exact on both kernel expressions, checkpoints interchange between
// them, hostile checkpoint/network files are rejected before any large
// allocation, and mid-run fault campaigns are deterministic with every
// dropped spike accounted for.
//
// The hard multi-chip fixture, tail splitting, and counter lookup live in
// tests/test_support.hpp, shared with the differential, equivalence, and
// distributed-conformance suites.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/network_io.hpp"
#include "src/core/snapshot.hpp"
#include "src/fault/campaign.hpp"
#include "src/fault/inject.hpp"
#include "tests/test_support.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::InputSchedule;
using core::Network;
using core::Spike;
using core::Tick;
using core::VectorSink;
using testsup::counter_value;
using testsup::hard_inputs;
using testsup::hard_network;
using testsup::tail_from;

template <typename MakeSim>
void roundtrip_case(const Network& net, const InputSchedule& in, MakeSim make) {
  constexpr Tick kTotal = 40, kCut = 17;
  VectorSink full;
  auto base = make(net);
  base->run(kTotal, &in, &full);

  // Save at kCut, restore into a FRESH simulator, run the remainder.
  std::stringstream ckpt;
  {
    auto sim = make(net);
    VectorSink pre;
    sim->run(kCut, &in, &pre);
    sim->save_checkpoint(ckpt);
  }
  auto resumed = make(net);
  resumed->load_checkpoint(ckpt);
  EXPECT_EQ(resumed->now(), kCut);
  VectorSink post;
  resumed->run(kTotal - kCut, &in, &post);

  // Bit-exact: the resumed tail equals the uninterrupted run's tail, and
  // the cumulative kernel counters agree.
  EXPECT_EQ(post.spikes(), tail_from(full.spikes(), kCut));
  EXPECT_EQ(resumed->stats().spikes, base->stats().spikes);
  EXPECT_EQ(resumed->stats().sops, base->stats().sops);
  EXPECT_EQ(resumed->stats().axon_events, base->stats().axon_events);
  EXPECT_EQ(resumed->stats().ticks, base->stats().ticks);
  EXPECT_EQ(resumed->stats().dropped_spikes, base->stats().dropped_spikes);
  EXPECT_EQ(resumed->stats().interchip_crossings, base->stats().interchip_crossings);
}

TEST(CheckpointRoundtrip, TrueNorthBitExact) {
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 40);
  roundtrip_case(net, in, [](const Network& n) {
    return std::make_unique<tn::TrueNorthSimulator>(n);
  });
}

TEST(CheckpointRoundtrip, CompassBitExactAnyThreads) {
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 40);
  for (int threads : {1, 3, 4}) {
    roundtrip_case(net, in, [threads](const Network& n) {
      return std::make_unique<compass::Simulator>(n, compass::Config{.threads = threads});
    });
  }
}

TEST(CheckpointRoundtrip, CrossBackendInterchange) {
  // A TrueNorth checkpoint resumed on Compass (and vice versa) continues
  // the exact spike train — the 1:1 equivalence survives serialization.
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 40);
  constexpr Tick kTotal = 40, kCut = 13;
  VectorSink full;
  {
    tn::TrueNorthSimulator ref(net);
    ref.run(kTotal, &in, &full);
  }
  std::stringstream tn_ckpt, cp_ckpt;
  {
    tn::TrueNorthSimulator sim(net);
    VectorSink pre;
    sim.run(kCut, &in, &pre);
    sim.save_checkpoint(tn_ckpt);
  }
  {
    compass::Simulator sim(net, {.threads = 3});
    VectorSink pre;
    sim.run(kCut, &in, &pre);
    sim.save_checkpoint(cp_ckpt);
  }
  {
    compass::Simulator sim(net, {.threads = 2});
    sim.load_checkpoint(tn_ckpt);
    VectorSink post;
    sim.run(kTotal - kCut, &in, &post);
    EXPECT_EQ(post.spikes(), tail_from(full.spikes(), kCut));
  }
  {
    tn::TrueNorthSimulator sim(net);
    sim.load_checkpoint(cp_ckpt);
    VectorSink post;
    sim.run(kTotal - kCut, &in, &post);
    EXPECT_EQ(post.spikes(), tail_from(full.spikes(), kCut));
  }
}

TEST(CheckpointRoundtrip, FileConvenienceHelpers) {
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 20);
  tn::TrueNorthSimulator a(net);
  VectorSink pre;
  a.run(9, &in, &pre);
  const std::string path = ::testing::TempDir() + "nsc_resilience_ckpt.nsck";
  core::save_checkpoint(a, path);
  tn::TrueNorthSimulator b(net);
  core::load_checkpoint(b, path);
  EXPECT_EQ(b.now(), 9);
  EXPECT_EQ(b.stats().spikes, a.stats().spikes);
}

TEST(CheckpointHostile, RejectsGarbageAndMismatch) {
  const Network net = hard_network();
  tn::TrueNorthSimulator sim(net);
  {
    std::stringstream bad("not a checkpoint at all");
    EXPECT_THROW(sim.load_checkpoint(bad), std::runtime_error);
  }
  {
    std::stringstream empty;
    EXPECT_THROW(sim.load_checkpoint(empty), std::runtime_error);
  }
  // Truncation at every interesting boundary must throw, never crash.
  std::stringstream good;
  sim.save_checkpoint(good);
  const std::string bytes = good.str();
  for (std::size_t cut : {std::size_t{3}, std::size_t{9}, std::size_t{40}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::stringstream trunc(bytes.substr(0, cut));
    tn::TrueNorthSimulator fresh(net);
    EXPECT_THROW(fresh.load_checkpoint(trunc), std::runtime_error) << "cut=" << cut;
  }
  // Geometry mismatch: a checkpoint of one mesh must not load into another.
  {
    Network other(Geometry{1, 1, 4, 4});
    tn::TrueNorthSimulator small(other);
    std::stringstream ckpt;
    small.save_checkpoint(ckpt);
    EXPECT_THROW(sim.load_checkpoint(ckpt), std::runtime_error);
  }
  // Seed mismatch: same geometry, different network.
  {
    Network reseeded = hard_network();
    reseeded.seed = 12345;
    tn::TrueNorthSimulator other(reseeded);
    std::stringstream ckpt;
    other.save_checkpoint(ckpt);
    EXPECT_THROW(sim.load_checkpoint(ckpt), std::runtime_error);
  }
}

TEST(CheckpointHostile, ForgedGeometryRejectedBeforeAllocation) {
  // A header claiming a continent-sized mesh backed by a 60-byte file must
  // fail on the size check, not attempt a gigabyte allocation.
  std::stringstream forged;
  const std::uint32_t magic = 0x4E53434Bu, version = 1;
  forged.write(reinterpret_cast<const char*>(&magic), 4);
  forged.write(reinterpret_cast<const char*>(&version), 4);
  const std::uint8_t backend = 1;
  forged.write(reinterpret_cast<const char*>(&backend), 1);
  const std::int32_t geom[4] = {100, 100, 64, 64};  // 40.96M cores
  forged.write(reinterpret_cast<const char*>(geom), sizeof geom);
  const std::uint64_t seed = 1;
  forged.write(reinterpret_cast<const char*>(&seed), 8);
  const std::int64_t tick = 5;
  forged.write(reinterpret_cast<const char*>(&tick), 8);
  EXPECT_THROW(core::load_snapshot(forged), std::runtime_error);
}

TEST(NetworkHostile, TruncatedAndForgedFilesRejected) {
  const Network net = hard_network();
  std::stringstream good;
  core::save_network(net, good);
  const std::string bytes = good.str();
  for (std::size_t cut : {std::size_t{2}, std::size_t{11}, std::size_t{24}, bytes.size() / 3,
                          bytes.size() - 7}) {
    std::istringstream trunc(bytes.substr(0, cut));
    EXPECT_THROW(core::load_network(trunc), std::runtime_error) << "cut=" << cut;
  }
  // Forged header: plausible geometry (1024 cores) but only a header's worth
  // of bytes — the pre-allocation size check must reject it.
  std::istringstream forged(bytes.substr(0, 32));
  EXPECT_THROW(core::load_network(forged), std::runtime_error);
  // Untouched bytes still load.
  std::istringstream ok(bytes);
  const Network loaded = core::load_network(ok);
  EXPECT_EQ(loaded.geom, net.geom);
}

TEST(FaultCampaign, DeterministicAcrossRunsAndThreads) {
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 50);
  const auto campaign = fault::Campaign::random(net.geom, 4, 1, 25, 99);
  ASSERT_FALSE(campaign.empty());

  // TrueNorth reference, run twice: identical spikes and counters.
  auto run_tn = [&]() {
    auto sim = std::make_unique<tn::TrueNorthSimulator>(net);
    VectorSink sink;
    fault::run_with_campaign(*sim, 50, &in, &sink, campaign);
    return std::pair(sink.spikes(), std::pair(counter_value(sim->metrics(), "fault.spikes_dropped"),
                                              counter_value(sim->metrics(), "fault.cores_failed")));
  };
  const auto [tn_spikes, tn_counters] = run_tn();
  {
    const auto [again, counters2] = run_tn();
    EXPECT_EQ(again, tn_spikes);
    EXPECT_EQ(counters2, tn_counters);
  }
  EXPECT_GT(tn_counters.second, 0u);  // the campaign actually killed cores

  // Compass at several thread counts: spike-for-spike identical to
  // TrueNorth under the same campaign, drops counted identically.
  for (int threads : {1, 3, 4}) {
    compass::Simulator sim(net, {.threads = threads});
    VectorSink sink;
    fault::run_with_campaign(sim, 50, &in, &sink, campaign);
    EXPECT_EQ(sink.spikes(), tn_spikes) << "threads=" << threads;
    EXPECT_EQ(counter_value(sim.metrics(), "fault.spikes_dropped"), tn_counters.first)
        << "threads=" << threads;
    EXPECT_EQ(counter_value(sim.metrics(), "fault.cores_failed"), tn_counters.second);
  }
}

TEST(FaultCampaign, DeadCoreGoesSilentAndDropsAreCounted) {
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 40);
  constexpr core::CoreId kVictim = 5;
  constexpr Tick kKill = 12;
  fault::Campaign campaign;
  campaign.fail_core_at(kKill, kVictim);
  campaign.finalize();

  tn::TrueNorthSimulator sim(net);
  VectorSink sink;
  const int applied = fault::run_with_campaign(sim, 40, &in, &sink, campaign);
  EXPECT_EQ(applied, 1);
  bool fired_before = false;
  for (const auto& s : sink.spikes()) {
    if (s.core == kVictim) {
      EXPECT_LT(s.tick, kKill);
      fired_before = true;
    }
  }
  EXPECT_TRUE(fired_before);  // was alive and active before the event
  EXPECT_GT(counter_value(sim.metrics(), "fault.spikes_dropped"), 0u);
  EXPECT_EQ(counter_value(sim.metrics(), "fault.cores_failed"), 1u);
}

TEST(FaultCampaign, LinkFailureReroutesOrDrops) {
  // Kill one directed inter-chip link on the 2-chip mesh. The mesh has a
  // single east link, so traffic either detours (impossible here — no other
  // row of chips) and spikes crossing it drop, all counted.
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 40);
  fault::Campaign campaign;
  campaign.fail_link_at(10, 0, 0);  // chip 0, east
  campaign.finalize();

  tn::TrueNorthSimulator tn_sim(net);
  VectorSink tn_sink;
  fault::run_with_campaign(tn_sim, 40, &in, &tn_sink, campaign);
  EXPECT_EQ(counter_value(tn_sim.metrics(), "fault.links_failed"), 1u);
  EXPECT_GT(counter_value(tn_sim.metrics(), "fault.spikes_dropped"), 0u);

  // Equivalence holds under link faults too.
  compass::Simulator cp(net, {.threads = 3});
  VectorSink cp_sink;
  fault::run_with_campaign(cp, 40, &in, &cp_sink, campaign);
  EXPECT_EQ(cp_sink.spikes(), tn_sink.spikes());
  EXPECT_EQ(counter_value(cp.metrics(), "fault.spikes_dropped"),
            counter_value(tn_sim.metrics(), "fault.spikes_dropped"));
}

TEST(FaultCampaign, CheckpointMidCampaignResumesExactly) {
  // Checkpoint between two fault events; the resumed run (same campaign —
  // already-applied events are skipped by tick) matches the uninterrupted
  // one spike for spike, including the fault counters.
  const Network net = hard_network();
  const InputSchedule in = hard_inputs(net, 50);
  fault::Campaign campaign;
  campaign.fail_core_at(8, 3).fail_core_at(30, 11).fail_link_at(35, 1, 1);
  campaign.finalize();

  VectorSink full;
  tn::TrueNorthSimulator base(net);
  fault::run_with_campaign(base, 50, &in, &full, campaign);

  std::stringstream ckpt;
  {
    tn::TrueNorthSimulator sim(net);
    VectorSink pre;
    fault::run_with_campaign(sim, 20, &in, &pre, campaign);  // applies event @8
    sim.save_checkpoint(ckpt);
  }
  for (int threads : {0 /* tn */, 2}) {
    std::stringstream replay(ckpt.str());
    std::unique_ptr<core::Simulator> resumed;
    if (threads == 0) {
      resumed = std::make_unique<tn::TrueNorthSimulator>(net);
    } else {
      resumed = std::make_unique<compass::Simulator>(net, compass::Config{.threads = threads});
    }
    resumed->load_checkpoint(replay);
    EXPECT_EQ(resumed->now(), 20);
    VectorSink post;
    fault::run_with_campaign(*resumed, 30, &in, &post, campaign);  // applies @30, @35
    EXPECT_EQ(post.spikes(), tail_from(full.spikes(), 20)) << "threads=" << threads;
    EXPECT_EQ(resumed->stats().spikes, base.stats().spikes);
  }
}

TEST(FaultCampaign, RandomCampaignNeverKillsWholeMesh) {
  const Geometry g{1, 1, 3, 3};
  const auto campaign = fault::Campaign::random(g, 100, 50, 10, 4);
  int core_events = 0;
  for (const auto& e : campaign.events()) {
    if (e.kind == fault::FaultKind::kCore) ++core_events;
    EXPECT_GE(e.tick, 1);
    EXPECT_LE(e.tick, 10);
  }
  EXPECT_EQ(core_events, g.total_cores() - 1);  // capped, one survivor
  // Single-chip mesh: no link events at all.
  for (const auto& e : campaign.events()) EXPECT_EQ(e.kind, fault::FaultKind::kCore);
}

TEST(FaultInject, PromotedHelperKeepsNetworkValidAndEquivalent) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.rate_hz = 50;
  spec.synapses_per_axon = 32;
  spec.seed = 21;
  Network net = netgen::make_recurrent(spec);
  const int faulted = fault::inject_faults(net, 0.3, 7);
  EXPECT_GT(faulted, 0);
  EXPECT_LT(faulted, net.geom.total_cores());
  for (const auto& cs : net.cores) {
    if (cs.disabled) continue;
    for (const auto& p : cs.neuron) {
      if (p.target.valid()) EXPECT_FALSE(net.core(p.target.core).disabled != 0);
    }
  }
  tn::TrueNorthSimulator a(net);
  VectorSink sa;
  a.run(30, nullptr, &sa);
  compass::Simulator b(net, {.threads = 2});
  VectorSink sb;
  b.run(30, nullptr, &sb);
  EXPECT_EQ(sa.spikes(), sb.spikes());
}

}  // namespace
}  // namespace nsc
