// The paper's core verification methodology (§VI-A): one-to-one equivalence
// of the kernel's expressions. We run randomized regressions comparing the
// TrueNorth architectural simulator, the Compass threaded simulator (at
// several thread counts), and the dense reference simulator, requiring
// spike-for-spike identical output streams and identical kernel counters.
//
// The backend runners and the spike+counter comparison live in
// tests/test_support.hpp, shared with the differential, resilience, and
// distributed-conformance suites.
#include <gtest/gtest.h>

#include <memory>

#include "tests/test_support.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::InputSchedule;
using core::Network;
using core::Spike;
using core::VectorSink;
using testsup::expect_identical;
using testsup::run_compass;
using testsup::run_reference;
using testsup::run_truenorth;
using testsup::RunResult;

/// Parameterized over the regression seed: each seed generates a different
/// random network (all features enabled) and input drive.
class RegressionBySeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegressionBySeed, AllExpressionsAgree) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 3, 3};
  spec.seed = GetParam();
  spec.synapse_density = 0.15;
  spec.input_drive_hz = 120.0;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 40);

  const RunResult ref = run_reference(net, &in, 50);
  EXPECT_GT(ref.spikes.size(), 0u) << "regression must actually exercise spiking";
  expect_identical(ref, run_truenorth(net, &in, 50), "reference vs truenorth");
  expect_identical(ref, run_compass(net, &in, 50, 1), "reference vs compass(1)");
  expect_identical(ref, run_compass(net, &in, 50, 3), "reference vs compass(3)");
  expect_identical(ref, run_compass(net, &in, 50, 8), "reference vs compass(8)");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegressionBySeed,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

/// Single-core regressions, the bulk of the paper's 413k pre-fab suite:
/// one core, dense stochastic features, heavy input.
class SingleCoreRegression : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingleCoreRegression, AllExpressionsAgree) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 1, 1};
  spec.seed = GetParam() * 7919;
  spec.synapse_density = 0.5;
  spec.input_drive_hz = 300.0;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 80);

  const RunResult ref = run_reference(net, &in, 100);
  expect_identical(ref, run_truenorth(net, &in, 100), "reference vs truenorth");
  expect_identical(ref, run_compass(net, &in, 100, 2), "reference vs compass(2)");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleCoreRegression, ::testing::Range<std::uint64_t>(1, 11));

TEST(Equivalence, RecurrentCharacterizationNetwork) {
  // The stochastic recurrent networks are the paper's "sensitive assay":
  // any deviation diverges chaotically. 16 cores, 100 ticks.
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.rate_hz = 100;
  spec.synapses_per_axon = 96;
  spec.seed = 2024;
  const Network net = netgen::make_recurrent(spec);

  const RunResult ref = run_reference(net, nullptr, 100);
  EXPECT_GT(ref.spikes.size(), 1000u);
  expect_identical(ref, run_truenorth(net, nullptr, 100), "reference vs truenorth");
  expect_identical(ref, run_compass(net, nullptr, 100, 4), "reference vs compass(4)");
}

TEST(Equivalence, MultiChipGeometry) {
  // Spikes crossing chip boundaries must behave identically; the TrueNorth
  // backend additionally counts merge–split crossings.
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{2, 2, 2, 2};  // 4 chips, 16 cores
  spec.seed = 77;
  spec.input_drive_hz = 150.0;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 30);

  const RunResult ref = run_reference(net, &in, 40);
  const RunResult tn = run_truenorth(net, &in, 40);
  expect_identical(ref, tn, "reference vs truenorth (multichip)");
  expect_identical(ref, run_compass(net, &in, 40, 4), "reference vs compass (multichip)");
  EXPECT_GT(tn.stats.interchip_crossings, 0u);
}

TEST(Equivalence, WithFaultedCores) {
  // Disable a core and silence its neurons plus every neuron targeting it;
  // all expressions must agree on the degraded network.
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.seed = 31337;
  Network net = netgen::make_random(spec);
  const core::CoreId faulted = 5;
  net.core(faulted).disabled = 1;
  for (auto& p : net.core(faulted).neuron) p.enabled = 0;
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 30);

  const RunResult ref = run_reference(net, &in, 40);
  expect_identical(ref, run_truenorth(net, &in, 40), "reference vs truenorth (faulted)");
  expect_identical(ref, run_compass(net, &in, 40, 3), "reference vs compass (faulted)");
  for (const Spike& s : ref.spikes) EXPECT_NE(s.core, faulted);
}

TEST(Equivalence, DeterministicAcrossRepeatedRuns) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.seed = 4242;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 20);
  const RunResult a = run_truenorth(net, &in, 30);
  const RunResult b = run_truenorth(net, &in, 30);
  expect_identical(a, b, "repeat determinism");
}

TEST(Equivalence, SeedChangesStochasticOutcome) {
  // Sanity check that the stochastic modes actually depend on the seed —
  // otherwise the equivalence suite would be vacuous for PRNG paths.
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.seed = 1001;
  Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 20);
  const RunResult a = run_truenorth(net, &in, 30);
  net.seed ^= 0xDEADBEEF;  // same topology, different stochastic stream
  const RunResult b = run_truenorth(net, &in, 30);
  EXPECT_NE(core::first_mismatch(a.spikes, b.spikes), -1);
}

TEST(Equivalence, LongRunNoDrift) {
  // Scaled-down version of the paper's 10k–100M tick regressions: 5,000
  // ticks on a small stochastic network, still spike-exact.
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 2, 1};
  spec.seed = 606;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 200);
  const RunResult ref = run_reference(net, &in, 5000);
  expect_identical(ref, run_truenorth(net, &in, 5000), "reference vs truenorth (long)");
  expect_identical(ref, run_compass(net, &in, 5000, 2), "reference vs compass (long)");
}

}  // namespace
}  // namespace nsc
