// Unit tests for the TrueNorth digital neuron model: integration, leak,
// threshold, reset modes, negative-threshold behavior, stochastic modes,
// and hardware-range clamping.
#include <gtest/gtest.h>

#include "src/core/neuron_model.hpp"

namespace nsc::core {
namespace {

const util::CounterPrng kPrng(1234);

NeuronParams basic() {
  NeuronParams p;
  p.weight[0] = 3;
  p.weight[1] = -2;
  p.threshold = 10;
  p.leak = 0;
  return p;
}

TEST(NeuronModel, DeterministicSynapseDelta) {
  const NeuronParams p = basic();
  EXPECT_EQ(synapse_delta(p, 0, kPrng, 0, 0, 0, 0), 3);
  EXPECT_EQ(synapse_delta(p, 1, kPrng, 0, 0, 0, 0), -2);
}

TEST(NeuronModel, StochasticSynapseExpectedValue) {
  NeuronParams p = basic();
  p.weight[0] = 64;  // expect +1 with probability 64/256 = 0.25
  p.stochastic_weight = 1;  // type 0 stochastic
  long sum = 0;
  const int n = 40000;
  for (int t = 0; t < n; ++t) sum += synapse_delta(p, 0, kPrng, 0, 0, t, 0);
  EXPECT_NEAR(static_cast<double>(sum) / n, 0.25, 0.02);
}

TEST(NeuronModel, StochasticSynapseNegativeWeight) {
  NeuronParams p = basic();
  p.weight[2] = -128;  // expect -1 with probability 0.5
  p.stochastic_weight = 1u << 2;
  long sum = 0;
  const int n = 40000;
  for (int t = 0; t < n; ++t) sum += synapse_delta(p, 2, kPrng, 0, 0, t, 0);
  EXPECT_NEAR(static_cast<double>(sum) / n, -0.5, 0.02);
}

TEST(NeuronModel, StochasticSynapseOnlyMarkedTypes) {
  NeuronParams p = basic();
  p.stochastic_weight = 1u << 1;  // only type 1
  EXPECT_EQ(synapse_delta(p, 0, kPrng, 0, 0, 0, 0), 3);  // type 0 stays exact
}

TEST(NeuronModel, DeterministicLeak) {
  NeuronParams p = basic();
  p.leak = -4;
  EXPECT_EQ(leak_delta(p, kPrng, 0, 0, 0, 0), -4);
}

TEST(NeuronModel, StochasticLeakExpectedValue) {
  NeuronParams p = basic();
  p.leak = 128;  // +1 with probability 0.5
  p.stochastic_leak = 1;
  long sum = 0;
  const int n = 40000;
  for (int t = 0; t < n; ++t) sum += leak_delta(p, kPrng, 0, 0, t, 0);
  EXPECT_NEAR(static_cast<double>(sum) / n, 0.5, 0.02);
}

TEST(NeuronModel, FiresAtThresholdInclusive) {
  const NeuronParams p = basic();
  std::int32_t v = 10;
  EXPECT_TRUE(threshold_fire_reset(v, p, kPrng, 0, 0, 0));
  v = 9;
  EXPECT_FALSE(threshold_fire_reset(v, p, kPrng, 0, 0, 0));
  EXPECT_EQ(v, 9);
}

TEST(NeuronModel, AbsoluteReset) {
  NeuronParams p = basic();
  p.reset_v = 2;
  std::int32_t v = 15;
  EXPECT_TRUE(threshold_fire_reset(v, p, kPrng, 0, 0, 0));
  EXPECT_EQ(v, 2);
}

TEST(NeuronModel, LinearResetCarriesOvershoot) {
  NeuronParams p = basic();
  p.reset_mode = ResetMode::kLinear;
  std::int32_t v = 17;
  EXPECT_TRUE(threshold_fire_reset(v, p, kPrng, 0, 0, 0));
  EXPECT_EQ(v, 7);  // 17 - 10
}

TEST(NeuronModel, NoneResetKeepsPotential) {
  NeuronParams p = basic();
  p.reset_mode = ResetMode::kNone;
  std::int32_t v = 12;
  EXPECT_TRUE(threshold_fire_reset(v, p, kPrng, 0, 0, 0));
  EXPECT_EQ(v, 12);
}

TEST(NeuronModel, NegativeSaturation) {
  NeuronParams p = basic();
  p.neg_threshold = 5;
  std::int32_t v = -9;
  EXPECT_FALSE(threshold_fire_reset(v, p, kPrng, 0, 0, 0));
  EXPECT_EQ(v, -5);
}

TEST(NeuronModel, NegativeReset) {
  NeuronParams p = basic();
  p.neg_threshold = 5;
  p.negative_mode = NegativeMode::kReset;
  p.reset_v = 1;
  std::int32_t v = -5;  // at the floor: kReset triggers at <= -beta
  EXPECT_FALSE(threshold_fire_reset(v, p, kPrng, 0, 0, 0));
  EXPECT_EQ(v, -1);
}

TEST(NeuronModel, StochasticThresholdRaisesEffectiveAlpha) {
  NeuronParams p = basic();
  p.threshold = 10;
  p.threshold_mask = 0x7;  // jitter in [0, 7]
  int fired = 0;
  const int n = 40000;
  for (int t = 0; t < n; ++t) {
    std::int32_t v = 13;  // fires iff jitter <= 3 → p = 4/8
    fired += threshold_fire_reset(v, p, kPrng, 0, 0, t) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.5, 0.02);
}

TEST(NeuronModel, ClampPotentialRange) {
  EXPECT_EQ(clamp_potential(static_cast<std::int64_t>(kPotentialMax) + 100), kPotentialMax);
  EXPECT_EQ(clamp_potential(static_cast<std::int64_t>(kPotentialMin) - 100), kPotentialMin);
  EXPECT_EQ(clamp_potential(12345), 12345);
}

TEST(NeuronModel, LeakThresholdUpdateComposes) {
  NeuronParams p = basic();
  p.leak = 3;
  p.threshold = 10;
  std::int32_t v = 7;
  // 7 + 3 = 10 → fires, absolute reset to 0.
  EXPECT_TRUE(leak_threshold_update(v, p, kPrng, 0, 0, 0));
  EXPECT_EQ(v, 0);
}

TEST(NeuronModel, LeakDrivenOscillatorPeriod) {
  // Pure leak-driven neuron: fires every ceil(alpha/leak) ticks.
  NeuronParams p;
  p.leak = 3;
  p.threshold = 9;
  std::int32_t v = 0;
  int fires = 0;
  for (int t = 0; t < 300; ++t) {
    fires += leak_threshold_update(v, p, kPrng, 0, 0, t) ? 1 : 0;
  }
  EXPECT_EQ(fires, 100);  // period exactly 3
}

}  // namespace
}  // namespace nsc::core

namespace nsc::core {
namespace {

TEST(NeuronModel, LeakReversalFollowsPotentialSign) {
  NeuronParams p;
  p.leak = -3;  // decay toward zero from either side
  p.leak_reversal = 1;
  p.threshold = 100;
  EXPECT_EQ(leak_delta(p, kPrng, 0, 0, 0, 10), -3);
  EXPECT_EQ(leak_delta(p, kPrng, 0, 0, 0, -10), 3);
  EXPECT_EQ(leak_delta(p, kPrng, 0, 0, 0, 0), 0);
}

TEST(NeuronModel, LeakReversalSymmetricDecayReachesZero) {
  NeuronParams p;
  p.leak = -2;
  p.leak_reversal = 1;
  p.threshold = 1000;
  p.neg_threshold = 1000;
  for (std::int32_t start : {9, -9}) {
    std::int32_t v = start;
    for (int t = 0; t < 20; ++t) (void)leak_threshold_update(v, p, kPrng, 0, 0, t);
    // Decays to the band around zero and oscillates within |leak| of it.
    EXPECT_LE(std::abs(v), 2) << "start " << start;
  }
}

TEST(NeuronModel, LeakReversalPositiveLeakRepelsFromZero) {
  NeuronParams p;
  p.leak = 2;
  p.leak_reversal = 1;
  p.threshold = 50;
  p.neg_threshold = 50;
  std::int32_t v = -1;
  for (int t = 0; t < 10; ++t) (void)leak_threshold_update(v, p, kPrng, 0, 0, t);
  EXPECT_LT(v, -10);  // driven away from zero on the negative side
}

TEST(NeuronModel, StochasticLeakReversalKeepsExpectedMagnitude) {
  NeuronParams p;
  p.leak = -128;  // p = 0.5 of a unit step toward zero
  p.leak_reversal = 1;
  p.stochastic_leak = 1;
  long sum = 0;
  const int n = 40000;
  for (int t = 0; t < n; ++t) sum += leak_delta(p, kPrng, 0, 0, t, 100);
  EXPECT_NEAR(static_cast<double>(sum) / n, -0.5, 0.02);
  sum = 0;
  for (int t = 0; t < n; ++t) sum += leak_delta(p, kPrng, 0, 0, t, -100);
  EXPECT_NEAR(static_cast<double>(sum) / n, 0.5, 0.02);
}

}  // namespace
}  // namespace nsc::core
