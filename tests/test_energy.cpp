// Tests for the energy/power/timing models: calibration anchors, voltage
// scaling laws, monotonicity invariants, host models, projections, and the
// emulated power meter's 3% calibration band.
#include <gtest/gtest.h>

#include <cmath>

#include "src/energy/host_models.hpp"
#include "src/energy/power_meter.hpp"
#include "src/energy/scaling_model.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/energy/truenorth_timing.hpp"

namespace nsc::energy {
namespace {

/// Synthesizes the counters of a full-chip recurrent network at the given
/// rate/synapse point, run for `ticks` (1M neurons, 4,096 cores).
core::KernelStats chip_stats(double rate_hz, int synapses, std::uint64_t ticks = 1000) {
  core::KernelStats s;
  const double neurons = 1048576.0;
  const double spikes_per_tick = neurons * rate_hz / 1000.0;
  s.ticks = ticks;
  s.spikes = static_cast<std::uint64_t>(spikes_per_tick * static_cast<double>(ticks));
  s.axon_events = s.spikes;
  s.sops = static_cast<std::uint64_t>(static_cast<double>(s.spikes) * synapses);
  s.neuron_updates = static_cast<std::uint64_t>(neurons * static_cast<double>(ticks));
  // Uniform targets average 21.33 hops per dimension on the 64×64 mesh.
  s.hop_sum = static_cast<std::uint64_t>(static_cast<double>(s.spikes) * 42.7);
  // Per-tick maxima: mean per-core load with a modest Poisson tail factor.
  const double per_core_axons = spikes_per_tick / 4096.0;
  s.sum_max_core_axon_events =
      static_cast<std::uint64_t>(per_core_axons * 2.0 * static_cast<double>(ticks));
  s.sum_max_core_sops = static_cast<std::uint64_t>(per_core_axons * 2.0 * synapses *
                                                   static_cast<double>(ticks));
  s.sum_max_core_spikes = s.sum_max_core_axon_events;
  return s;
}

constexpr int kChipCores = 4096;

TEST(TrueNorthPower, HeadlineOperatingPoint) {
  // Paper §I: 20 Hz / 128 synapses, real time, 0.75 V → ~65 mW, ~46 GSOPS/W.
  const TrueNorthPowerModel model;
  const auto s = chip_stats(20, 128);
  const double watts = model.mean_power_w(s, kChipCores, 0.75, kRealTimeTickHz);
  EXPECT_GT(watts, 0.040);
  EXPECT_LT(watts, 0.080);
  const double gsops_w = 1e-9 * model.sops_per_watt(s, kChipCores, 0.75, kRealTimeTickHz);
  EXPECT_GT(gsops_w, 38.0);
  EXPECT_LT(gsops_w, 58.0);
}

TEST(TrueNorthPower, FasterThanRealTimeAmortizesPassive) {
  // Paper §I: running ~5× faster raises GSOPS/W from ~46 to ~81.
  const TrueNorthPowerModel model;
  const auto s = chip_stats(20, 128);
  const double rt = model.sops_per_watt(s, kChipCores, 0.75, kRealTimeTickHz);
  const double fast = model.sops_per_watt(s, kChipCores, 0.75, 5 * kRealTimeTickHz);
  EXPECT_GT(fast / rt, 1.5);
  EXPECT_LT(fast / rt, 3.0);
}

TEST(TrueNorthPower, UpperCornerExceeds300GsopsPerWatt) {
  // Paper §VI-B: 200 Hz / 256 synapses → >400 GSOPS/W (model: ~340).
  const TrueNorthPowerModel model;
  const auto s = chip_stats(200, 256);
  const double gsops_w = 1e-9 * model.sops_per_watt(s, kChipCores, 0.75, kRealTimeTickHz);
  EXPECT_GT(gsops_w, 250.0);
}

TEST(TrueNorthPower, EfficiencyRisesTowardUpperRight) {
  const TrueNorthPowerModel model;
  double prev = 0.0;
  for (const auto& [r, k] : {std::pair{5.0, 32}, {20.0, 128}, {100.0, 256}}) {
    const double v = model.sops_per_watt(chip_stats(r, k), kChipCores, 0.75, kRealTimeTickHz);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(TrueNorthPower, PerSynapticEventEnergyNearTenPicojoule) {
  // Paper §I: ~10 pJ per synaptic event all-in (total energy / SOPs).
  const TrueNorthPowerModel model;
  const auto s = chip_stats(20, 128);
  const double e = model.total_energy_j(s, kChipCores, 0.75, kRealTimeTickHz) /
                   static_cast<double>(s.sops);
  EXPECT_GT(e, 5e-12);
  EXPECT_LT(e, 40e-12);
}

TEST(TrueNorthPower, ActiveScalesAsVSquared) {
  const TrueNorthPowerModel model;
  const auto s = chip_stats(50, 128);
  const double lo = model.active_energy_j(s, 0.70);
  const double hi = model.active_energy_j(s, 1.05);
  EXPECT_NEAR(hi / lo, (1.05 * 1.05) / (0.70 * 0.70), 1e-9);
}

TEST(TrueNorthPower, PassiveScalesSuperlinearly) {
  const TrueNorthPowerModel model;
  const double lo = model.passive_power_w(kChipCores, 0.70);
  const double hi = model.passive_power_w(kChipCores, 1.05);
  EXPECT_GT(hi / lo, std::pow(1.05 / 0.70, 2.0));
}

TEST(TrueNorthPower, EfficiencyImprovesAtLowerVoltage) {
  // Paper Fig. 5(f): SOPS/W is maximized at low voltage.
  const TrueNorthPowerModel model;
  const auto s = chip_stats(50, 128);
  EXPECT_GT(model.sops_per_watt(s, kChipCores, 0.70, kRealTimeTickHz),
            model.sops_per_watt(s, kChipCores, 1.00, kRealTimeTickHz));
}

TEST(TrueNorthPower, EnergyMonotoneInActivity) {
  const TrueNorthPowerModel model;
  const double lo = model.total_energy_j(chip_stats(10, 64), kChipCores, 0.75, 1000);
  const double hi = model.total_energy_j(chip_stats(100, 192), kChipCores, 0.75, 1000);
  EXPECT_GT(hi, lo);
}

TEST(TrueNorthPower, ScaleInvarianceOfSopsPerWatt) {
  // Replicating the workload and the cores leaves GSOPS/W unchanged.
  const TrueNorthPowerModel model;
  auto s = chip_stats(20, 128);
  const double full = model.sops_per_watt(s, kChipCores, 0.75, kRealTimeTickHz);
  core::KernelStats half = s;
  half.spikes /= 2;
  half.sops /= 2;
  half.axon_events /= 2;
  half.neuron_updates /= 2;
  half.hop_sum /= 2;
  const double scaled = model.sops_per_watt(half, kChipCores / 2, 0.75, kRealTimeTickHz);
  EXPECT_NEAR(scaled / full, 1.0, 1e-6);
}

TEST(TrueNorthTiming, LightLoadFasterThanRealTime) {
  const TrueNorthTimingModel model;
  EXPECT_GT(model.max_tick_hz(chip_stats(5, 32), 0.75), 1000.0);
  EXPECT_TRUE(model.sustains_real_time(chip_stats(5, 32), 0.75));
}

TEST(TrueNorthTiming, HeavyCornerNearRealTime) {
  const TrueNorthTimingModel model;
  const double hz = model.max_tick_hz(chip_stats(200, 256), 0.75);
  EXPECT_GT(hz, 500.0);
  EXPECT_LT(hz, 3000.0);
}

TEST(TrueNorthTiming, SpeedRisesWithVoltage) {
  const TrueNorthTimingModel model;
  const auto s = chip_stats(50, 128);
  double prev = 0.0;
  for (double v : {0.67, 0.75, 0.90, 1.05}) {
    const double hz = model.max_tick_hz(s, v);
    EXPECT_GT(hz, prev);
    prev = hz;
  }
}

TEST(TrueNorthTiming, WorstCaseBelowRealTime) {
  // §VI-A stress test: every synapse active, every neuron fires every tick.
  const TrueNorthTimingModel model;
  core::KernelStats s;
  s.ticks = 1;
  s.sum_max_core_axon_events = 256;
  s.sum_max_core_sops = 256 * 256;
  s.sum_max_core_spikes = 256;
  EXPECT_LT(model.max_tick_hz(s, 0.75), 1000.0);
}

TEST(HostModels, WorkUnitsCombineSopsAndUpdates) {
  core::KernelStats s;
  s.ticks = 10;
  s.sops = 1000;
  s.neuron_updates = 500;
  EXPECT_DOUBLE_EQ(work_units(s), 1300.0);
  EXPECT_DOUBLE_EQ(work_units_per_tick(s), 130.0);
}

TEST(HostModels, X86MoreThreadsFasterAndHungrier) {
  const X86Model x86;
  const auto s = chip_stats(12.8, 128, 100);
  EXPECT_LT(x86.seconds_per_tick(s, 12), x86.seconds_per_tick(s, 1));
  EXPECT_GT(x86.power_w(12), x86.power_w(1));
  EXPECT_GT(x86.power_w(1), 70.0);  // idle floor
}

TEST(HostModels, BgqStrongScalingWithDiminishingReturns) {
  const BgqModel bgq;
  const auto s = chip_stats(12.8, 128, 100);
  const double t1 = bgq.seconds_per_tick(s, 1, 64);
  const double t32 = bgq.seconds_per_tick(s, 32, 64);
  EXPECT_LT(t32, t1);
  EXPECT_GT(t32, t1 / 32.0);  // collectives prevent ideal scaling
}

TEST(HostModels, BgqNeovisionAnchor) {
  // Paper §VI-E: best BG/Q point is ~12× slower than real time for a
  // NeoVision-like load (~1.5M work units per tick).
  const BgqModel bgq;
  core::KernelStats s;
  s.ticks = 1;
  s.sops = 1'100'000;
  s.neuron_updates = 660'000;
  const double t32 = bgq.seconds_per_tick(s, 32, 64);
  EXPECT_GT(t32 / 1e-3, 6.0);   // slower than real time by roughly an
  EXPECT_LT(t32 / 1e-3, 25.0);  // order of magnitude, centered near 12x
}

TEST(HostModels, EnergyPerTickFiveOrdersAboveTrueNorth) {
  // The paper's headline: both hosts ~1e5× more energy per tick.
  const TrueNorthPowerModel tnp;
  const X86Model x86;
  const BgqModel bgq;
  const auto s = chip_stats(20, 128, 100);
  const double tn_j = tnp.total_energy_j(s, kChipCores, 0.75, kRealTimeTickHz) /
                      static_cast<double>(s.ticks);
  const double x86_j = x86.energy_per_tick_j(s, 12);
  const double bgq_j = bgq.energy_per_tick_j(s, 32, 64);
  EXPECT_GT(x86_j / tn_j, 1e4);
  EXPECT_LT(x86_j / tn_j, 1e7);
  EXPECT_GT(bgq_j / tn_j, 1e4);
  EXPECT_LT(bgq_j / tn_j, 1e7);
}

TEST(ScalingModel, PaperTiersPresentAndOrdered) {
  const auto tiers = paper_system_tiers();
  ASSERT_GE(tiers.size(), 5u);
  for (std::size_t i = 0; i + 1 < tiers.size(); ++i) {
    EXPECT_LT(tiers[i].chips, tiers[i + 1].chips);
  }
  // 4x4 board: 16 chips at the measured 7.2 W (§VII-C).
  bool found = false;
  for (const auto& t : tiers) {
    if (t.chips == 16) {
      EXPECT_NEAR(t.total_power_w, 7.2, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScalingModel, RatScaleEnergyRatio) {
  // Paper §VII-D: backplane replicates the rat-scale BG/L run for ~6,400×
  // less energy.
  const auto tiers = paper_system_tiers();
  const SystemTier* backplane = nullptr;
  for (const auto& t : tiers) {
    if (t.chips == 1024) backplane = &t;
  }
  ASSERT_NE(backplane, nullptr);
  const double ratio = energy_to_solution_ratio(bgl_rat_scale(), *backplane);
  EXPECT_GT(ratio, 3000.0);
  EXPECT_LT(ratio, 13000.0);
}

TEST(ScalingModel, HumanScaleEnergyRatio) {
  // Paper §VII-D: a 4 kW rack replicates the 1%-human-scale BG/P run for
  // ~128,000× less energy (with our installed-power constants: ~64,000×).
  const auto tiers = paper_system_tiers();
  const SystemTier* rack = nullptr;
  for (const auto& t : tiers) {
    if (t.chips == 4096) rack = &t;
  }
  ASSERT_NE(rack, nullptr);
  const double ratio = energy_to_solution_ratio(bgp_one_percent_human(), *rack);
  EXPECT_GT(ratio, 3e4);
  EXPECT_LT(ratio, 3e5);
}

TEST(ScalingModel, PowerDensityFourOrdersBelowCpu) {
  // Paper §I: ~20 mW/cm² vs ~100 W/cm² for a modern processor.
  const double d = truenorth_power_density_w_per_cm2(0.065);
  EXPECT_GT(d, 0.005);
  EXPECT_LT(d, 0.05);
  EXPECT_GT(100.0 / d, 1e3);
}

TEST(PowerMeterTest, RmsWithinThreePercentOfAnalytic) {
  // Paper §V-2: ADC-chain calibration agreed with the bench supply to 3%.
  const PowerMeter meter;
  const double active_per_tick = 30e-6;  // 30 µJ/tick
  const double passive = 0.035;          // 35 mW
  const double tick_hz = 1000.0;
  const MeterReading r = meter.measure(active_per_tick, passive, tick_hz, 600);
  const double analytic = passive + active_per_tick * tick_hz;
  EXPECT_GT(r.samples, 500u);
  EXPECT_NEAR(r.rms_power_w, analytic, 0.03 * analytic);
}

TEST(PowerMeterTest, RequiresLongWindow) {
  const PowerMeter meter;
  const MeterReading r = meter.measure(10e-6, 0.04, 1000.0, 600);
  EXPECT_EQ(r.ticks_averaged, 600u);
  EXPECT_GT(r.mean_current_a, 0.0);
}

}  // namespace
}  // namespace nsc::energy
