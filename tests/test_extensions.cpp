// Tests for the extension modules: telemetry log (EMON-style), PGM image
// I/O, spike-train analysis, and the optical-flow application.
#include <gtest/gtest.h>

#include <sstream>

#include "src/apps/optical_flow.hpp"
#include "src/core/spike_analysis.hpp"
#include "src/analysis/lint.hpp"
#include "src/energy/telemetry.hpp"
#include "src/vision/pgm.hpp"
#include "src/vision/scene.hpp"

namespace nsc {
namespace {

// ---------------------------------------------------------------------------
// Telemetry.

TEST(Telemetry, RecordsAndLists) {
  energy::TelemetryLog log;
  EXPECT_FALSE(log.has_channel("node0"));
  log.record("node0", 0.0, 100.0);
  log.record("node0", 1.0, 200.0);
  log.record("node1", 0.5, 50.0);
  EXPECT_TRUE(log.has_channel("node0"));
  EXPECT_EQ(log.sample_count("node0"), 2u);
  EXPECT_EQ(log.channels().size(), 2u);
}

TEST(Telemetry, RejectsOutOfOrderSamples) {
  energy::TelemetryLog log;
  log.record("p", 2.0, 1.0);
  EXPECT_THROW(log.record("p", 1.0, 1.0), std::invalid_argument);
}

TEST(Telemetry, TimeWeightedMean) {
  energy::TelemetryLog log;
  log.record("p", 0.0, 100.0);  // holds over [0, 2)
  log.record("p", 2.0, 300.0);  // holds from 2 on
  EXPECT_DOUBLE_EQ(log.mean_over("p", 0.0, 4.0), 200.0);
  EXPECT_DOUBLE_EQ(log.mean_over("p", 0.0, 2.0), 100.0);
  EXPECT_DOUBLE_EQ(log.mean_over("p", 2.0, 3.0), 300.0);
  EXPECT_DOUBLE_EQ(log.mean_over("p", 1.0, 3.0), 200.0);
}

TEST(Telemetry, IntegralIsEnergy) {
  energy::TelemetryLog log;
  log.record("w", 0.0, 10.0);
  log.record("w", 5.0, 20.0);
  EXPECT_DOUBLE_EQ(log.integral_over("w", 0.0, 10.0), 10.0 * 5 + 20.0 * 5);
  EXPECT_DOUBLE_EQ(log.integral_over("w", 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(log.integral_over("missing", 0.0, 1.0), 0.0);
}

TEST(Telemetry, NodeCardToComputeCard) {
  // The paper's estimate: compute-card power = node-card power / 32.
  energy::TelemetryLog log;
  log.record("node_card", 0.0, 960.0);
  EXPECT_DOUBLE_EQ(log.mean_per_part("node_card", 0.0, 1.0, 32), 30.0);
}

// ---------------------------------------------------------------------------
// PGM.

TEST(Pgm, RoundTrip) {
  vision::Image img(5, 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 5; ++x) img.set(x, y, static_cast<std::uint8_t>(10 * x + y));
  }
  std::stringstream buf;
  vision::write_pgm(img, buf);
  const vision::Image back = vision::read_pgm(buf);
  ASSERT_EQ(back.width(), 5);
  ASSERT_EQ(back.height(), 3);
  EXPECT_EQ(back.pixels(), img.pixels());
}

TEST(Pgm, RejectsGarbage) {
  std::stringstream buf("P6 this is a ppm, not pgm");
  EXPECT_THROW((void)vision::read_pgm(buf), std::runtime_error);
}

TEST(Pgm, SceneRendersToValidImage) {
  vision::SceneConfig cfg;
  cfg.seed = 4;
  const vision::SyntheticScene scene(cfg);
  std::stringstream buf;
  vision::write_pgm(scene.render(), buf);
  EXPECT_GT(buf.str().size(), static_cast<std::size_t>(cfg.width * cfg.height));
}

TEST(Pgm, GrayFromGridNormalizes) {
  const vision::Image img = vision::gray_from_grid({{0.0, 5.0}, {10.0, 2.5}});
  EXPECT_EQ(img.at(0, 0), 0);
  EXPECT_EQ(img.at(1, 1), 63);  // 2.5/10 of 255
  EXPECT_EQ(img.at(0, 1), 255);
  const vision::Image flat = vision::gray_from_grid({{3.0, 3.0}});
  EXPECT_EQ(flat.at(0, 0), 0);  // degenerate range maps to 0
}

// ---------------------------------------------------------------------------
// Spike analysis.

TEST(SpikeAnalysis, ClockworkTrainStatistics) {
  std::vector<core::Spike> spikes;
  for (core::Tick t = 0; t < 100; t += 5) spikes.push_back({t, 0, 3});
  const auto s = core::analyze_spikes(spikes, 256, 0, 100);
  EXPECT_EQ(s.spikes, 20u);
  EXPECT_NEAR(s.mean_rate_hz, 1000.0 * 20 / (100.0 * 256), 1e-9);
  EXPECT_NEAR(s.active_fraction, 1.0 / 256, 1e-9);
  EXPECT_DOUBLE_EQ(s.isi_mean, 5.0);
  EXPECT_DOUBLE_EQ(s.isi_cv, 0.0);  // perfectly regular
  EXPECT_EQ(s.peak_tick_count, 1u);
}

TEST(SpikeAnalysis, SynchronyDetectsPopulationBursts) {
  // 10 neurons all firing the same ticks = strongly synchronized.
  std::vector<core::Spike> sync, async_spikes;
  for (core::Tick t = 0; t < 100; t += 10) {
    for (std::uint16_t n = 0; n < 10; ++n) sync.push_back({t, 0, n});
  }
  for (std::uint16_t n = 0; n < 10; ++n) {
    for (core::Tick t = n; t < 100; t += 10) async_spikes.push_back({t, 0, n});
  }
  const auto s_sync = core::analyze_spikes(sync, 10, 0, 100);
  const auto s_async = core::analyze_spikes(async_spikes, 10, 0, 100);
  EXPECT_GT(s_sync.synchrony, 5.0);
  EXPECT_LT(s_async.synchrony, 0.5);
  EXPECT_EQ(s_sync.peak_tick_count, 10u);
  EXPECT_EQ(s_async.peak_tick_count, 1u);
}

TEST(SpikeAnalysis, WindowFiltersTicks) {
  std::vector<core::Spike> spikes = {{5, 0, 0}, {15, 0, 0}, {25, 0, 0}};
  const auto s = core::analyze_spikes(spikes, 1, 10, 10);  // [10, 20)
  EXPECT_EQ(s.spikes, 1u);
}

TEST(SpikeAnalysis, TraceAndCounts) {
  std::vector<core::Spike> spikes = {{0, 0, 0}, {0, 0, 1}, {2, 1, 0}};
  const auto trace = core::population_trace(spikes, 0, 3);
  EXPECT_EQ(trace, (std::vector<std::uint32_t>{2, 0, 1}));
  const auto counts = core::per_neuron_counts(spikes, 2 * 256);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[256], 1u);
}

// ---------------------------------------------------------------------------
// Optical flow.

TEST(OpticalFlow, BuildsValidNetwork) {
  apps::AppConfig cfg;
  cfg.frames = 4;
  cfg.ticks_per_frame = 20;
  cfg.scene_objects = 1;
  cfg.seed = 8;
  const auto app = apps::make_optical_flow_app(cfg);
  EXPECT_TRUE(analysis::clean_at(app.net.network()));
  EXPECT_EQ(app.region_cols * app.region_rows, 16);
  EXPECT_GT(app.net.inputs.size(), 0u);
}

/// Controlled stimulus: a bright bar translating 2 px/frame in a known
/// direction. The decoded dominant direction must match for all four.
class FlowBarSweep : public ::testing::TestWithParam<apps::FlowDir> {};

TEST_P(FlowBarSweep, TranslatingBarDecodesToItsDirection) {
  const apps::FlowDir dir = GetParam();
  apps::AppConfig cfg;
  cfg.frames = 6;
  cfg.ticks_per_frame = 33;
  auto app = apps::make_optical_flow_net(cfg);

  std::vector<vision::Image> frames;
  for (int f = 0; f < cfg.frames; ++f) {
    vision::Image img(cfg.img_w, cfg.img_h, 16);
    const int shift = 2 * f;
    switch (dir) {
      case apps::FlowDir::kRight: img.fill_rect(10 + shift, 0, 8, 64, 220); break;
      case apps::FlowDir::kLeft: img.fill_rect(44 - shift, 0, 8, 64, 220); break;
      case apps::FlowDir::kDown: img.fill_rect(0, 10 + shift, 64, 8, 220); break;
      case apps::FlowDir::kUp: img.fill_rect(0, 44 - shift, 64, 8, 220); break;
    }
    frames.push_back(std::move(img));
  }
  apps::encode_flow_frames(app, frames, 0xBA7);
  core::WindowedCountSink sink(static_cast<std::uint64_t>(app.net.network().geom.neurons()),
                               app.ticks_per_frame);
  (void)apps::run_on_truenorth(app.net, &sink);
  const auto flow = apps::decode_flow(app, sink);
  // Frames 1.. must decode to the bar's direction (frame 0 has no motion).
  int correct = 0, scored = 0;
  for (std::size_t f = 1; f < flow.dominant_direction.size(); ++f) {
    ++scored;
    correct += flow.dominant_direction[f] == static_cast<int>(dir) ? 1 : 0;
  }
  EXPECT_GE(correct, scored - 1) << "direction " << apps::flow_dir_name(dir) << ": " << correct
                                 << "/" << scored;
}

INSTANTIATE_TEST_SUITE_P(Directions, FlowBarSweep,
                         ::testing::Values(apps::FlowDir::kRight, apps::FlowDir::kLeft,
                                           apps::FlowDir::kDown, apps::FlowDir::kUp));

TEST(OpticalFlow, SceneClipBeatsChance) {
  // Natural-scene clips are noisier (diagonal motion, bounces): require
  // clearly above the 25% four-way chance level across seeds.
  int correct = 0, scored = 0;
  for (std::uint64_t seed : {1u, 2u, 6u, 9u}) {
    apps::AppConfig cfg;
    cfg.frames = 6;
    cfg.ticks_per_frame = 33;
    cfg.scene_objects = 1;
    cfg.seed = seed;
    const auto app = apps::make_optical_flow_app(cfg);
    core::WindowedCountSink sink(
        static_cast<std::uint64_t>(app.net.network().geom.neurons()), app.ticks_per_frame);
    (void)apps::run_on_truenorth(app.net, &sink);
    const auto flow = apps::decode_flow(app, sink);
    correct += flow.correct_frames;
    scored += flow.scored_frames;
  }
  ASSERT_GT(scored, 10);
  EXPECT_GT(static_cast<double>(correct) / scored, 0.35)
      << correct << "/" << scored << " frames correct";
}

TEST(OpticalFlow, ExpressionsAgree) {
  apps::AppConfig cfg;
  cfg.frames = 3;
  cfg.ticks_per_frame = 15;
  cfg.scene_objects = 1;
  cfg.seed = 2;
  const auto app = apps::make_optical_flow_app(cfg);
  core::VectorSink a, b;
  (void)apps::run_on_truenorth(app.net, &a);
  (void)apps::run_on_compass(app.net, 3, &b);
  EXPECT_EQ(core::first_mismatch(a.spikes(), b.spikes()), -1);
}

TEST(OpticalFlow, DirNames) {
  EXPECT_STREQ(apps::flow_dir_name(apps::FlowDir::kRight), "right");
  EXPECT_STREQ(apps::flow_dir_name(apps::FlowDir::kUp), "up");
}

}  // namespace
}  // namespace nsc
