// Conformance suite for the multi-process sharded Compass backend
// (src/dist, docs/DISTRIBUTED.md). The distributed expression joins the
// paper's §VI-A one-to-one contract: every run here must be spike-for-spike
// identical to the dense reference, the TrueNorth architectural simulator,
// and single-process Compass — across rank counts, thread counts, golden
// fixtures, checkpoint interchange, fault campaigns, and rank death.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/aer.hpp"
#include "src/core/network_io.hpp"
#include "src/dist/coordinator.hpp"
#include "src/fault/campaign.hpp"
#include "tests/test_support.hpp"

// Rank processes are forked from the test binary; under TSan the default
// die_after_fork=1 would abort them before they ever reach rank_main.
extern "C" const char* __tsan_default_options() { return "die_after_fork=0"; }

namespace nsc {
namespace {

using core::InputSchedule;
using core::Network;
using core::Spike;
using core::Tick;
using core::VectorSink;
using testsup::expect_spikes_equal;

std::vector<Spike> run_dist(const Network& net, const InputSchedule* in, Tick ticks, int ranks,
                            int threads) {
  dist::Coordinator coord(net, {.ranks = ranks, .threads_per_rank = threads});
  VectorSink sink;
  coord.run(ticks, in, &sink);
  return sink.spikes();
}

// ---------------------------------------------------------------------------
// Fuzz matrix over the Fig. 5 axes: every seeded network (geometry incl.
// multichip, density, drive, stochastic modes) must agree with all three
// single-process expressions at {1, 2, 4} ranks x {1, 3} threads per rank.
// ---------------------------------------------------------------------------

class DistConformance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistConformance, MatchesAllSingleProcessExpressions) {
  const std::uint64_t seed = GetParam();
  const netgen::RandomNetSpec spec = testsup::fuzz_spec(seed);
  const Network net = netgen::make_random(spec);
  const Tick ticks = 40 + static_cast<Tick>(seed % 11);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, ticks);

  const std::vector<Spike> ref = testsup::run_reference(net, &in, ticks).spikes;
  expect_spikes_equal(ref, testsup::run_truenorth(net, &in, ticks).spikes, "reference vs tn");
  expect_spikes_equal(ref, testsup::run_compass(net, &in, ticks, 3).spikes,
                      "reference vs compass");
  for (const int ranks : {1, 2, 4}) {
    for (const int threads : {1, 3}) {
      SCOPED_TRACE("ranks=" + std::to_string(ranks) + " threads=" + std::to_string(threads));
      expect_spikes_equal(ref, run_dist(net, &in, ticks, ranks, threads), "reference vs dist");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistConformance, ::testing::Range<std::uint64_t>(1, 9));

TEST(DistConformance, SelfDrivenRecurrentNetwork) {
  // No external input: after the first tick all traffic is inter-core, so
  // every spike a rank sees from a remote shard went over the wire.
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 4, 2};
  spec.rate_hz = 80;
  spec.synapses_per_axon = 96;
  spec.seed = 515;
  const Network net = netgen::make_recurrent(spec);
  const std::vector<Spike> ref = testsup::run_reference(net, nullptr, 60).spikes;
  EXPECT_GT(ref.size(), 500u);
  for (const int ranks : {2, 4}) {
    expect_spikes_equal(ref, run_dist(net, nullptr, 60, ranks, 1), "recurrent dist");
  }
}

TEST(DistConformance, AggregatedStatsMatchSingleProcess) {
  const netgen::RandomNetSpec spec = testsup::fuzz_spec(5);
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 40);
  const testsup::RunResult want = testsup::run_compass(net, &in, 40, 1);

  dist::Coordinator coord(net, {.ranks = 3, .threads_per_rank = 1});
  VectorSink sink;
  coord.run(40, &in, &sink);
  expect_spikes_equal(want.spikes, sink.spikes(), "dist ranks=3");
  EXPECT_EQ(coord.stats().spikes, want.stats.spikes);
  EXPECT_EQ(coord.stats().sops, want.stats.sops);
  EXPECT_EQ(coord.stats().axon_events, want.stats.axon_events);
  EXPECT_EQ(coord.stats().neuron_updates, want.stats.neuron_updates);
  EXPECT_EQ(coord.stats().ticks, want.stats.ticks);
  EXPECT_EQ(coord.now(), 40);
  EXPECT_EQ(coord.live_ranks(), 3);
  // The dist layer actually exchanged something and accounted for it.
  EXPECT_GT(testsup::counter_value(coord.metrics(), "dist.messages"), 0u);
  EXPECT_GT(testsup::counter_value(coord.metrics(), "dist.bytes"), 0u);
  // Timer-derived: per-rank compute time is all zeros with -DNEUROSYN_OBS=OFF.
  if (obs::kEnabled) EXPECT_GE(coord.load_imbalance(), 1.0);
  EXPECT_EQ(coord.rank_compute_ns().size(), 3u);
}

TEST(DistConformance, InvalidConfigRejected) {
  const Network net = netgen::make_random(testsup::fuzz_spec(1));
  EXPECT_THROW(dist::Coordinator(net, {.ranks = 0}), std::invalid_argument);
  EXPECT_THROW(dist::Coordinator(net, {.ranks = 2, .threads_per_rank = 0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Golden fixtures: the committed trace hashes (docs/PERFORMANCE.md) must
// reproduce bit-for-bit at 2 and 4 ranks. tools/CMakeLists.txt enforces the
// same gate through the nsc_run CLI.
// ---------------------------------------------------------------------------

struct GoldenCase {
  const char* net;
  const char* aer;  // nullptr = self-driven
  std::uint64_t hash;
};

class DistGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(DistGolden, TraceHashReproducesAtTwoAndFourRanks) {
  const GoldenCase& gc = GetParam();
  const std::string dir = std::string(NSC_TEST_DATA_DIR) + "/";
  const Network net = core::load_network(dir + gc.net);
  InputSchedule in;
  if (gc.aer != nullptr) {
    in = core::load_aer_inputs(dir + gc.aer);
  } else {
    in.finalize();
  }
  for (const int ranks : {2, 4}) {
    const std::vector<Spike> spikes = run_dist(net, &in, 60, ranks, 1);
    EXPECT_EQ(core::trace_hash(spikes), gc.hash) << gc.net << " ranks=" << ranks;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, DistGolden,
    ::testing::Values(GoldenCase{"golden_recurrent_r50_k64.nsc", nullptr, 0x2c75ce5b492581e2ULL},
                      GoldenCase{"golden_recurrent_r20_k128.nsc", nullptr, 0x4d8fd92f56bf5533ULL},
                      GoldenCase{"golden_random_multichip.nsc", "golden_inputs.aer",
                                 0x9293fd59cfb54800ULL}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name(info.param.net);
      name = name.substr(0, name.find('.'));
      for (char& c : name) {
        if (c != '_' && (std::isalnum(static_cast<unsigned char>(c)) == 0)) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Checkpoint interchange: a snapshot stitched from rank blobs is a plain
// NSCK snapshot — restorable single-process, by TrueNorth, or at a different
// rank count — and single-process snapshots restore onto ranks.
// ---------------------------------------------------------------------------

TEST(DistCheckpoint, DistToSingleProcessAndBack) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 40);
  const std::vector<Spike> full = testsup::run_compass(net, &in, 40, 1).spikes;

  {  // dist first half -> compass second half
    dist::Coordinator a(net, {.ranks = 2, .threads_per_rank = 1});
    compass::Simulator b(net, {.threads = 2});
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "dist -> compass");
  }
  {  // dist first half -> truenorth second half
    dist::Coordinator a(net, {.ranks = 4, .threads_per_rank = 1});
    tn::TrueNorthSimulator b(net);
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "dist -> tn");
  }
  {  // compass first half -> dist second half
    dist::Coordinator b(net, {.ranks = 2, .threads_per_rank = 1});
    compass::Simulator a(net, {.threads = 3});
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "compass -> dist");
  }
  {  // re-shard: 2 ranks -> 4 ranks mid-run
    dist::Coordinator a(net, {.ranks = 2, .threads_per_rank = 1});
    dist::Coordinator b(net, {.ranks = 4, .threads_per_rank = 1});
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "dist 2 -> dist 4");
  }
}

TEST(DistCheckpoint, RestoredCountersMatchUninterruptedRun) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 40);
  const testsup::RunResult want = testsup::run_compass(net, &in, 40, 1);

  std::stringstream snap;
  {
    dist::Coordinator a(net, {.ranks = 2, .threads_per_rank = 1});
    VectorSink pre;
    a.run(17, &in, &pre);
    a.save_checkpoint(snap);
  }
  dist::Coordinator b(net, {.ranks = 2, .threads_per_rank = 1});
  b.load_checkpoint(snap);
  EXPECT_EQ(b.now(), 17);
  VectorSink post;
  b.run(23, &in, &post);
  expect_spikes_equal(testsup::tail_from(want.spikes, 17), post.spikes(), "restored tail");
  // The restored coordinator's cumulative counters equal the uninterrupted
  // run's — the delta-report rebasing must not double-count restored state.
  EXPECT_EQ(b.stats().spikes, want.stats.spikes);
  EXPECT_EQ(b.stats().sops, want.stats.sops);
  EXPECT_EQ(b.stats().ticks, want.stats.ticks);
}

// ---------------------------------------------------------------------------
// Fault campaigns and rank death. A campaign broadcast to every rank drops
// the same spikes as single-process; a rank process dying mid-campaign
// degrades into fail_core/spikes_dropped accounting instead of hanging (the
// whole suite runs under a ctest timeout as the hang guard).
// ---------------------------------------------------------------------------

TEST(DistFault, CampaignMatchesSingleProcess) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 50);
  const auto campaign = fault::Campaign::random(net.geom, 4, 1, 25, 99);
  ASSERT_FALSE(campaign.empty());

  compass::Simulator sp(net, {.threads = 1});
  VectorSink sp_sink;
  fault::run_with_campaign(sp, 50, &in, &sp_sink, campaign);

  dist::Coordinator coord(net, {.ranks = 2, .threads_per_rank = 1});
  VectorSink d_sink;
  fault::run_with_campaign(coord, 50, &in, &d_sink, campaign);

  expect_spikes_equal(sp_sink.spikes(), d_sink.spikes(), "campaign dist vs single");
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.cores_failed"),
            testsup::counter_value(sp.metrics(), "fault.cores_failed"));
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.spikes_dropped"),
            testsup::counter_value(sp.metrics(), "fault.spikes_dropped"));
}

TEST(DistFault, FailCoreAndLinkBroadcast) {
  const Network net = testsup::hard_network();  // 2 chips
  const InputSchedule in = testsup::hard_inputs(net, 40);
  compass::Simulator sp(net, {.threads = 1});
  dist::Coordinator coord(net, {.ranks = 2, .threads_per_rank = 1});
  EXPECT_TRUE(sp.fail_core(5));
  EXPECT_TRUE(coord.fail_core(5));
  EXPECT_FALSE(coord.fail_core(5));  // already dead: same contract
  EXPECT_TRUE(sp.fail_link(0, 0));
  EXPECT_TRUE(coord.fail_link(0, 0));
  EXPECT_FALSE(coord.fail_link(0, 0));
  VectorSink a, b;
  sp.run(40, &in, &a);
  coord.run(40, &in, &b);
  expect_spikes_equal(a.spikes(), b.spikes(), "faulted dist vs single");
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.cores_failed"), 1u);
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.links_failed"), 1u);
}

TEST(DistFault, RankDeathMidCampaignDegradesInsteadOfHanging) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 50);
  fault::Campaign campaign;
  campaign.fail_core_at(10, 2);
  campaign.finalize();

  constexpr Tick kDeath = 25;
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.threads_per_rank = 1;
  cfg.suicide_rank = 1;  // test hook: rank 1 calls _Exit(3) at tick 25
  cfg.suicide_tick = kDeath;
  dist::Coordinator coord(net, cfg);
  VectorSink sink;
  fault::run_with_campaign(coord, 50, &in, &sink, campaign);

  // The run completed (did not hang), the dead rank's shard is accounted as
  // failed cores, and the survivor kept producing its own spikes.
  EXPECT_EQ(coord.now(), 50);
  EXPECT_EQ(coord.live_ranks(), 1);
  EXPECT_FALSE(coord.rank_alive(1));
  const compass::CoreRange dead_shard = coord.shards()[1];
  const auto dead_cores = static_cast<std::uint64_t>(dead_shard.end - dead_shard.begin);
  // +1 for the campaign's own fail_core on the surviving shard.
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.cores_failed"), dead_cores + 1);

  // Before the death tick the degraded run is identical to a healthy one;
  // after it, no spike from the dead shard ever appears.
  const std::vector<Spike> healthy = [&] {
    compass::Simulator sp(net, {.threads = 1});
    VectorSink s;
    fault::run_with_campaign(sp, 50, &in, &s, campaign);
    return s.spikes();
  }();
  std::vector<Spike> healthy_head, got_head;
  for (const Spike& s : healthy) {
    if (s.tick < kDeath) healthy_head.push_back(s);
  }
  for (const Spike& s : sink.spikes()) {
    if (s.tick < kDeath) got_head.push_back(s);
    if (s.tick >= kDeath) {
      EXPECT_TRUE(s.core < dead_shard.begin || s.core >= dead_shard.end)
          << "spike from dead shard at tick " << s.tick;
    }
  }
  expect_spikes_equal(healthy_head, got_head, "pre-death prefix");

  // A checkpoint of the degraded system is still a valid snapshot:
  // restoring it single-process keeps the dead cores dead.
  std::stringstream snap;
  coord.save_checkpoint(snap);
  compass::Simulator resumed(net, {.threads = 1});
  resumed.load_checkpoint(snap);
  EXPECT_EQ(resumed.now(), 50);
  VectorSink tail;
  resumed.run(10, &in, &tail);
  for (const Spike& s : tail.spikes()) {
    EXPECT_TRUE(s.core < dead_shard.begin || s.core >= dead_shard.end);
  }
}

TEST(DistFault, FirstRankDeathDoesNotStallRecordStream) {
  // Rank 0 is the first the coordinator reads each tick's spike frames from;
  // killing it exercises the EOF path in the record loop, not just the peer
  // exchange.
  const Network net = netgen::make_random(testsup::fuzz_spec(2));
  const InputSchedule in = netgen::make_poisson_inputs(testsup::fuzz_spec(2), net, 30);
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.suicide_rank = 0;
  cfg.suicide_tick = 10;
  dist::Coordinator coord(net, cfg);
  VectorSink sink;
  coord.run(30, &in, &sink);  // must not hang
  EXPECT_EQ(coord.now(), 30);
  EXPECT_EQ(coord.live_ranks(), 1);
  EXPECT_FALSE(coord.rank_alive(0));
  EXPECT_TRUE(coord.rank_alive(1));
}

}  // namespace
}  // namespace nsc
