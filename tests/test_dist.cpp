// Conformance suite for the multi-process sharded Compass backend
// (src/dist, docs/DISTRIBUTED.md). The distributed expression joins the
// paper's §VI-A one-to-one contract: every run here must be spike-for-spike
// identical to the dense reference, the TrueNorth architectural simulator,
// and single-process Compass — across rank counts, thread counts, golden
// fixtures, checkpoint interchange, fault campaigns, and rank death.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/aer.hpp"
#include "src/core/network_io.hpp"
#include "src/dist/coordinator.hpp"
#include "src/dist/supervisor.hpp"
#include "src/fault/campaign.hpp"
#include "tests/test_support.hpp"

// Rank processes are forked from the test binary; under TSan the default
// die_after_fork=1 would abort them before they ever reach rank_main.
extern "C" const char* __tsan_default_options() { return "die_after_fork=0"; }

namespace nsc {
namespace {

using core::InputSchedule;
using core::Network;
using core::Spike;
using core::Tick;
using core::VectorSink;
using testsup::expect_spikes_equal;

std::vector<Spike> run_dist(const Network& net, const InputSchedule* in, Tick ticks, int ranks,
                            int threads) {
  dist::Coordinator coord(net, {.ranks = ranks, .threads_per_rank = threads});
  VectorSink sink;
  coord.run(ticks, in, &sink);
  return sink.spikes();
}

// ---------------------------------------------------------------------------
// Fuzz matrix over the Fig. 5 axes: every seeded network (geometry incl.
// multichip, density, drive, stochastic modes) must agree with all three
// single-process expressions at {1, 2, 4} ranks x {1, 3} threads per rank.
// ---------------------------------------------------------------------------

class DistConformance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistConformance, MatchesAllSingleProcessExpressions) {
  const std::uint64_t seed = GetParam();
  const netgen::RandomNetSpec spec = testsup::fuzz_spec(seed);
  const Network net = netgen::make_random(spec);
  const Tick ticks = 40 + static_cast<Tick>(seed % 11);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, ticks);

  const std::vector<Spike> ref = testsup::run_reference(net, &in, ticks).spikes;
  expect_spikes_equal(ref, testsup::run_truenorth(net, &in, ticks).spikes, "reference vs tn");
  expect_spikes_equal(ref, testsup::run_compass(net, &in, ticks, 3).spikes,
                      "reference vs compass");
  for (const int ranks : {1, 2, 4}) {
    for (const int threads : {1, 3}) {
      SCOPED_TRACE("ranks=" + std::to_string(ranks) + " threads=" + std::to_string(threads));
      expect_spikes_equal(ref, run_dist(net, &in, ticks, ranks, threads), "reference vs dist");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistConformance, ::testing::Range<std::uint64_t>(1, 9));

TEST(DistConformance, SelfDrivenRecurrentNetwork) {
  // No external input: after the first tick all traffic is inter-core, so
  // every spike a rank sees from a remote shard went over the wire.
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 4, 2};
  spec.rate_hz = 80;
  spec.synapses_per_axon = 96;
  spec.seed = 515;
  const Network net = netgen::make_recurrent(spec);
  const std::vector<Spike> ref = testsup::run_reference(net, nullptr, 60).spikes;
  EXPECT_GT(ref.size(), 500u);
  for (const int ranks : {2, 4}) {
    expect_spikes_equal(ref, run_dist(net, nullptr, 60, ranks, 1), "recurrent dist");
  }
}

TEST(DistConformance, AggregatedStatsMatchSingleProcess) {
  const netgen::RandomNetSpec spec = testsup::fuzz_spec(5);
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 40);
  const testsup::RunResult want = testsup::run_compass(net, &in, 40, 1);

  dist::Coordinator coord(net, {.ranks = 3, .threads_per_rank = 1});
  VectorSink sink;
  coord.run(40, &in, &sink);
  expect_spikes_equal(want.spikes, sink.spikes(), "dist ranks=3");
  EXPECT_EQ(coord.stats().spikes, want.stats.spikes);
  EXPECT_EQ(coord.stats().sops, want.stats.sops);
  EXPECT_EQ(coord.stats().axon_events, want.stats.axon_events);
  EXPECT_EQ(coord.stats().neuron_updates, want.stats.neuron_updates);
  EXPECT_EQ(coord.stats().ticks, want.stats.ticks);
  EXPECT_EQ(coord.now(), 40);
  EXPECT_EQ(coord.live_ranks(), 3);
  // The dist layer actually exchanged something and accounted for it.
  EXPECT_GT(testsup::counter_value(coord.metrics(), "dist.messages"), 0u);
  EXPECT_GT(testsup::counter_value(coord.metrics(), "dist.bytes"), 0u);
  // Timer-derived: per-rank compute time is all zeros with -DNEUROSYN_OBS=OFF.
  if (obs::kEnabled) EXPECT_GE(coord.load_imbalance(), 1.0);
  EXPECT_EQ(coord.rank_compute_ns().size(), 3u);
}

TEST(DistConformance, InvalidConfigRejected) {
  const Network net = netgen::make_random(testsup::fuzz_spec(1));
  EXPECT_THROW(dist::Coordinator(net, {.ranks = 0}), std::invalid_argument);
  EXPECT_THROW(dist::Coordinator(net, {.ranks = 2, .threads_per_rank = 0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Golden fixtures: the committed trace hashes (docs/PERFORMANCE.md) must
// reproduce bit-for-bit at 2 and 4 ranks. tools/CMakeLists.txt enforces the
// same gate through the nsc_run CLI.
// ---------------------------------------------------------------------------

struct GoldenCase {
  const char* net;
  const char* aer;  // nullptr = self-driven
  std::uint64_t hash;
};

class DistGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(DistGolden, TraceHashReproducesAtTwoAndFourRanks) {
  const GoldenCase& gc = GetParam();
  const std::string dir = std::string(NSC_TEST_DATA_DIR) + "/";
  const Network net = core::load_network(dir + gc.net);
  InputSchedule in;
  if (gc.aer != nullptr) {
    in = core::load_aer_inputs(dir + gc.aer);
  } else {
    in.finalize();
  }
  for (const int ranks : {2, 4}) {
    const std::vector<Spike> spikes = run_dist(net, &in, 60, ranks, 1);
    EXPECT_EQ(core::trace_hash(spikes), gc.hash) << gc.net << " ranks=" << ranks;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, DistGolden,
    ::testing::Values(GoldenCase{"golden_recurrent_r50_k64.nsc", nullptr, 0x2c75ce5b492581e2ULL},
                      GoldenCase{"golden_recurrent_r20_k128.nsc", nullptr, 0x4d8fd92f56bf5533ULL},
                      GoldenCase{"golden_random_multichip.nsc", "golden_inputs.aer",
                                 0x9293fd59cfb54800ULL}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name(info.param.net);
      name = name.substr(0, name.find('.'));
      for (char& c : name) {
        if (c != '_' && (std::isalnum(static_cast<unsigned char>(c)) == 0)) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Checkpoint interchange: a snapshot stitched from rank blobs is a plain
// NSCK snapshot — restorable single-process, by TrueNorth, or at a different
// rank count — and single-process snapshots restore onto ranks.
// ---------------------------------------------------------------------------

TEST(DistCheckpoint, DistToSingleProcessAndBack) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 40);
  const std::vector<Spike> full = testsup::run_compass(net, &in, 40, 1).spikes;

  {  // dist first half -> compass second half
    dist::Coordinator a(net, {.ranks = 2, .threads_per_rank = 1});
    compass::Simulator b(net, {.threads = 2});
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "dist -> compass");
  }
  {  // dist first half -> truenorth second half
    dist::Coordinator a(net, {.ranks = 4, .threads_per_rank = 1});
    tn::TrueNorthSimulator b(net);
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "dist -> tn");
  }
  {  // compass first half -> dist second half
    dist::Coordinator b(net, {.ranks = 2, .threads_per_rank = 1});
    compass::Simulator a(net, {.threads = 3});
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "compass -> dist");
  }
  {  // re-shard: 2 ranks -> 4 ranks mid-run
    dist::Coordinator a(net, {.ranks = 2, .threads_per_rank = 1});
    dist::Coordinator b(net, {.ranks = 4, .threads_per_rank = 1});
    expect_spikes_equal(full, testsup::run_split(a, b, &in, 40), "dist 2 -> dist 4");
  }
}

TEST(DistCheckpoint, RestoredCountersMatchUninterruptedRun) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 40);
  const testsup::RunResult want = testsup::run_compass(net, &in, 40, 1);

  std::stringstream snap;
  {
    dist::Coordinator a(net, {.ranks = 2, .threads_per_rank = 1});
    VectorSink pre;
    a.run(17, &in, &pre);
    a.save_checkpoint(snap);
  }
  dist::Coordinator b(net, {.ranks = 2, .threads_per_rank = 1});
  b.load_checkpoint(snap);
  EXPECT_EQ(b.now(), 17);
  VectorSink post;
  b.run(23, &in, &post);
  expect_spikes_equal(testsup::tail_from(want.spikes, 17), post.spikes(), "restored tail");
  // The restored coordinator's cumulative counters equal the uninterrupted
  // run's — the delta-report rebasing must not double-count restored state.
  EXPECT_EQ(b.stats().spikes, want.stats.spikes);
  EXPECT_EQ(b.stats().sops, want.stats.sops);
  EXPECT_EQ(b.stats().ticks, want.stats.ticks);
}

// ---------------------------------------------------------------------------
// Fault campaigns and rank death. A campaign broadcast to every rank drops
// the same spikes as single-process; a rank process dying mid-campaign
// degrades into fail_core/spikes_dropped accounting instead of hanging (the
// whole suite runs under a ctest timeout as the hang guard).
// ---------------------------------------------------------------------------

TEST(DistFault, CampaignMatchesSingleProcess) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 50);
  const auto campaign = fault::Campaign::random(net.geom, 4, 1, 25, 99);
  ASSERT_FALSE(campaign.empty());

  compass::Simulator sp(net, {.threads = 1});
  VectorSink sp_sink;
  fault::run_with_campaign(sp, 50, &in, &sp_sink, campaign);

  dist::Coordinator coord(net, {.ranks = 2, .threads_per_rank = 1});
  VectorSink d_sink;
  fault::run_with_campaign(coord, 50, &in, &d_sink, campaign);

  expect_spikes_equal(sp_sink.spikes(), d_sink.spikes(), "campaign dist vs single");
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.cores_failed"),
            testsup::counter_value(sp.metrics(), "fault.cores_failed"));
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.spikes_dropped"),
            testsup::counter_value(sp.metrics(), "fault.spikes_dropped"));
}

TEST(DistFault, FailCoreAndLinkBroadcast) {
  const Network net = testsup::hard_network();  // 2 chips
  const InputSchedule in = testsup::hard_inputs(net, 40);
  compass::Simulator sp(net, {.threads = 1});
  dist::Coordinator coord(net, {.ranks = 2, .threads_per_rank = 1});
  EXPECT_TRUE(sp.fail_core(5));
  EXPECT_TRUE(coord.fail_core(5));
  EXPECT_FALSE(coord.fail_core(5));  // already dead: same contract
  EXPECT_TRUE(sp.fail_link(0, 0));
  EXPECT_TRUE(coord.fail_link(0, 0));
  EXPECT_FALSE(coord.fail_link(0, 0));
  VectorSink a, b;
  sp.run(40, &in, &a);
  coord.run(40, &in, &b);
  expect_spikes_equal(a.spikes(), b.spikes(), "faulted dist vs single");
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.cores_failed"), 1u);
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.links_failed"), 1u);
}

TEST(DistFault, RankDeathMidCampaignDegradesInsteadOfHanging) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 50);
  fault::Campaign campaign;
  campaign.fail_core_at(10, 2);
  campaign.finalize();

  constexpr Tick kDeath = 25;
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.threads_per_rank = 1;
  cfg.suicide_rank = 1;  // test hook: rank 1 calls _Exit(3) at tick 25
  cfg.suicide_tick = kDeath;
  dist::Coordinator coord(net, cfg);
  VectorSink sink;
  fault::run_with_campaign(coord, 50, &in, &sink, campaign);

  // The run completed (did not hang), the dead rank's shard is accounted as
  // failed cores, and the survivor kept producing its own spikes.
  EXPECT_EQ(coord.now(), 50);
  EXPECT_EQ(coord.live_ranks(), 1);
  EXPECT_FALSE(coord.rank_alive(1));
  const compass::CoreRange dead_shard = coord.shards()[1];
  const auto dead_cores = static_cast<std::uint64_t>(dead_shard.end - dead_shard.begin);
  // +1 for the campaign's own fail_core on the surviving shard.
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "fault.cores_failed"), dead_cores + 1);

  // Before the death tick the degraded run is identical to a healthy one;
  // after it, no spike from the dead shard ever appears.
  const std::vector<Spike> healthy = [&] {
    compass::Simulator sp(net, {.threads = 1});
    VectorSink s;
    fault::run_with_campaign(sp, 50, &in, &s, campaign);
    return s.spikes();
  }();
  std::vector<Spike> healthy_head, got_head;
  for (const Spike& s : healthy) {
    if (s.tick < kDeath) healthy_head.push_back(s);
  }
  for (const Spike& s : sink.spikes()) {
    if (s.tick < kDeath) got_head.push_back(s);
    if (s.tick >= kDeath) {
      EXPECT_TRUE(s.core < dead_shard.begin || s.core >= dead_shard.end)
          << "spike from dead shard at tick " << s.tick;
    }
  }
  expect_spikes_equal(healthy_head, got_head, "pre-death prefix");

  // A checkpoint of the degraded system is still a valid snapshot:
  // restoring it single-process keeps the dead cores dead.
  std::stringstream snap;
  coord.save_checkpoint(snap);
  compass::Simulator resumed(net, {.threads = 1});
  resumed.load_checkpoint(snap);
  EXPECT_EQ(resumed.now(), 50);
  VectorSink tail;
  resumed.run(10, &in, &tail);
  for (const Spike& s : tail.spikes()) {
    EXPECT_TRUE(s.core < dead_shard.begin || s.core >= dead_shard.end);
  }
}

// ---------------------------------------------------------------------------
// Self-healing supervisor (docs/DISTRIBUTED.md, "Failure model and
// recovery"). Under Policy::kRecover a rank death or hang must be invisible
// in the output: respawn the fleet, restore the shadow checkpoint, replay
// the journaled inputs, and produce a trace spike-for-spike identical to a
// fault-free run. Backoff is zeroed throughout to keep the suite fast.
// ---------------------------------------------------------------------------

constexpr dist::SupervisorConfig kFastRecover{dist::Policy::kRecover, /*recovery_interval=*/4,
                                              /*max_respawns=*/3, /*backoff_base_ms=*/0};

TEST(DistRecover, KillAtEveryPhaseRecoversExactly) {
  // The suicide hook fires pre-compute (0), post-compute (1), or
  // post-exchange (2); each phase loses different in-flight state, and all
  // three must recover to the identical trace. Poisson inputs make the
  // journal replay carry real external spikes.
  const netgen::RandomNetSpec spec = testsup::fuzz_spec(3);
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 30);
  const std::vector<Spike> ref = testsup::run_compass(net, &in, 30, 1).spikes;

  for (const int phase : {0, 1, 2}) {
    SCOPED_TRACE("phase=" + std::to_string(phase));
    dist::Config cfg;
    cfg.ranks = 2;
    cfg.suicide_rank = 1;
    cfg.suicide_tick = 13;
    cfg.suicide_phase = phase;
    dist::Supervisor sup(net, cfg, kFastRecover);
    VectorSink sink;
    sup.run(30, &in, &sink);
    expect_spikes_equal(ref, sink.spikes(), "recovered vs fault-free");
    EXPECT_EQ(sup.respawns_done(), 1);
    EXPECT_FALSE(sup.exhausted());
    EXPECT_EQ(sup.now(), 30);
    EXPECT_EQ(sup.coordinator().live_ranks(), 2);
  }
}

TEST(DistRecover, GoldenTraceHashAfterMidRunKill) {
  // The committed golden hash must reproduce through a mid-run kill at 2 and
  // 4 ranks — same gate tools/CMakeLists.txt enforces via the nsc_run CLI.
  const std::string dir = std::string(NSC_TEST_DATA_DIR) + "/";
  const Network net = core::load_network(dir + "golden_recurrent_r50_k64.nsc");
  for (const int ranks : {2, 4}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    dist::Config cfg;
    cfg.ranks = ranks;
    cfg.suicide_rank = ranks - 1;
    cfg.suicide_tick = 30;
    dist::SupervisorConfig scfg = kFastRecover;
    scfg.recovery_interval = 16;
    dist::Supervisor sup(net, cfg, scfg);
    VectorSink sink;
    sup.run(60, nullptr, &sink);
    EXPECT_EQ(core::trace_hash(sink.spikes()), 0x2c75ce5b492581e2ULL);
    EXPECT_EQ(sup.respawns_done(), 1);
  }
}

TEST(DistRecover, CampaignRankKillDispatchesThroughFailRank) {
  // kill_rank_at flows Campaign -> run_with_campaign -> Simulator::fail_rank
  // -> Coordinator SIGKILL; the supervisor then heals it. On a
  // single-process simulator the same campaign is a no-op, so the reference
  // run uses the identical campaign.
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);
  fault::Campaign campaign;
  campaign.kill_rank_at(15, 1);
  campaign.finalize();

  compass::Simulator sp(net, {.threads = 1});
  VectorSink ref;
  EXPECT_EQ(fault::run_with_campaign(sp, 30, &in, &ref, campaign), 0);  // no-op single-process

  dist::Supervisor sup(net, {.ranks = 2, .threads_per_rank = 1}, kFastRecover);
  VectorSink sink;
  EXPECT_EQ(fault::run_with_campaign(sup, 30, &in, &sink, campaign), 1);
  expect_spikes_equal(ref.spikes(), sink.spikes(), "campaign kill recovered");
  EXPECT_EQ(sup.respawns_done(), 1);
  EXPECT_EQ(testsup::counter_value(sup.metrics(), "dist.ranks_respawned"), 2u);
  EXPECT_GT(testsup::counter_value(sup.metrics(), "dist.rollback_ticks"), 0u);
}

TEST(DistRecover, DoubleFailureInOneWindowCostsOneRespawn) {
  // Both ranks die inside the same recovery window; resurrection is
  // fleet-granular, so one respawn heals both and the trace stays exact.
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);
  const std::vector<Spike> ref = testsup::run_compass(net, &in, 30, 1).spikes;

  dist::Config cfg;
  cfg.ranks = 2;
  cfg.suicide_rank = 0;
  cfg.suicide_tick = 12;
  cfg.suicide2_rank = 1;
  cfg.suicide2_tick = 12;
  dist::Supervisor sup(net, cfg, kFastRecover);
  VectorSink sink;
  sup.run(30, &in, &sink);
  expect_spikes_equal(ref, sink.spikes(), "double failure recovered");
  EXPECT_EQ(sup.respawns_done(), 1);
}

TEST(DistRecover, RespawnBudgetExhaustionFallsBackToDegrade) {
  // hook_incarnation = -1 re-arms the suicide after every respawn, so the
  // same rank keeps dying at the same tick until the budget runs out; the
  // run must still complete (degraded), never wedge or throw.
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);

  dist::Config cfg;
  cfg.ranks = 2;
  cfg.suicide_rank = 1;
  cfg.suicide_tick = 10;
  cfg.hook_incarnation = -1;
  dist::SupervisorConfig scfg = kFastRecover;
  scfg.max_respawns = 2;
  dist::Supervisor sup(net, cfg, scfg);
  VectorSink sink;
  sup.run(30, &in, &sink);
  EXPECT_EQ(sup.now(), 30);
  EXPECT_TRUE(sup.exhausted());
  EXPECT_EQ(sup.respawns_done(), 2);
  EXPECT_EQ(sup.coordinator().live_ranks(), 1);
  EXPECT_EQ(testsup::counter_value(sup.metrics(), "dist.ranks_respawned"), 4u);
  // The degraded tail still accounts the dead shard as failed cores.
  EXPECT_GT(testsup::counter_value(sup.metrics(), "fault.cores_failed"), 0u);
}

TEST(DistRecover, DeathDuringImageCollectionKeepsPreviousImage) {
  // The rank dies while serving its 2nd kSave (the first image refresh after
  // tick 0), so the in-flight image is discarded and recovery restores the
  // older one — rolling back further, but still exactly.
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);
  const std::vector<Spike> ref = testsup::run_compass(net, &in, 30, 1).spikes;

  dist::Config cfg;
  cfg.ranks = 2;
  cfg.die_on_save_rank = 0;
  cfg.die_on_save_seq = 2;
  dist::Supervisor sup(net, cfg, kFastRecover);
  VectorSink sink;
  sup.run(30, &in, &sink);
  expect_spikes_equal(ref, sink.spikes(), "die-on-save recovered");
  EXPECT_EQ(sup.respawns_done(), 1);
}

TEST(DistRecover, DegradePolicyMatchesUnsupervisedCoordinator) {
  // Policy::kDegrade must be byte-identical to running the Coordinator
  // directly: no imaging, no buffering, no respawn.
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.suicide_rank = 1;
  cfg.suicide_tick = 12;

  dist::Coordinator coord(net, cfg);
  VectorSink want;
  coord.run(30, &in, &want);

  dist::SupervisorConfig scfg = kFastRecover;
  scfg.policy = dist::Policy::kDegrade;
  dist::Supervisor sup(net, cfg, scfg);
  VectorSink got;
  sup.run(30, &in, &got);
  expect_spikes_equal(want.spikes(), got.spikes(), "degrade policy vs coordinator");
  EXPECT_EQ(sup.respawns_done(), 0);
  EXPECT_EQ(sup.coordinator().live_ranks(), 1);
}

TEST(DistRecover, InvalidSupervisorConfigRejected) {
  const Network net = testsup::hard_network();
  EXPECT_THROW(dist::Supervisor(net, {.ranks = 2}, {dist::Policy::kRecover, 0, 3, 5}),
               std::invalid_argument);
  EXPECT_THROW(dist::Supervisor(net, {.ranks = 2}, {dist::Policy::kRecover, 32, -1, 5}),
               std::invalid_argument);
  EXPECT_THROW(dist::Supervisor(net, {.ranks = 2}, {dist::Policy::kRecover, 32, 3, -1}),
               std::invalid_argument);
}

TEST(DistRecover, StatsOnlyRunHealsOnMissedHeartbeats) {
  // With no sink the ranks stream no per-tick spikes — heartbeats are the
  // only liveness signal. A wedged rank stops sending them, the deadline
  // fires, and the supervisor respawns; the run completes with full stats.
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.hang_rank = 1;
  cfg.hang_tick = 10;
  cfg.rank_deadline_ms = 1000;
  dist::Supervisor sup(net, cfg, kFastRecover);
  sup.run(30, &in, nullptr);
  EXPECT_EQ(sup.now(), 30);
  EXPECT_EQ(sup.respawns_done(), 1);
  EXPECT_EQ(sup.stats().ticks, 30u);
  EXPECT_GE(testsup::counter_value(sup.metrics(), "dist.heartbeats_missed"), 1u);
  EXPECT_EQ(sup.coordinator().live_ranks(), 2);
}

// ---------------------------------------------------------------------------
// Deadline layer: --rank-deadline-ms turns silent hangs into detection
// (RankTimeout unsupervised, recovery supervised) and never fires on a
// healthy fleet. Deadlines here are generous because sanitizer builds run
// the whole suite under heavy slowdown.
// ---------------------------------------------------------------------------

TEST(DistDeadline, HangWithoutSupervisionThrowsRankTimeout) {
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.hang_rank = 1;
  cfg.hang_tick = 10;
  cfg.rank_deadline_ms = 500;
  dist::Coordinator coord(net, cfg);
  VectorSink sink;
  EXPECT_THROW(coord.run(30, &in, &sink), dist::RankTimeout);
  EXPECT_FALSE(coord.rank_alive(1));  // declared hung and killed
  EXPECT_GE(testsup::counter_value(coord.metrics(), "dist.heartbeats_missed"), 1u);
}

TEST(DistDeadline, HealthyRunUnaffectedByDeadline) {
  const netgen::RandomNetSpec spec = testsup::fuzz_spec(4);
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 30);
  const std::vector<Spike> ref = testsup::run_compass(net, &in, 30, 1).spikes;
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.rank_deadline_ms = 10000;
  dist::Coordinator coord(net, cfg);
  VectorSink sink;
  coord.run(30, &in, &sink);
  expect_spikes_equal(ref, sink.spikes(), "deadline-armed healthy run");
  EXPECT_EQ(coord.live_ranks(), 2);
  EXPECT_EQ(testsup::counter_value(coord.metrics(), "dist.heartbeats_missed"), 0u);
}

TEST(DistDeadline, SupervisedHangRecoversExactlyWithThreads) {
  // threads_per_rank = 2 puts the compass worker pool, the peer pump, and
  // the wedge hook in play together — the interleaving TSan cares about.
  const Network net = testsup::hard_network();
  const InputSchedule in = testsup::hard_inputs(net, 30);
  const std::vector<Spike> ref = testsup::run_compass(net, &in, 30, 1).spikes;
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.threads_per_rank = 2;
  cfg.hang_rank = 0;
  cfg.hang_tick = 14;
  cfg.rank_deadline_ms = 1000;
  dist::Supervisor sup(net, cfg, kFastRecover);
  VectorSink sink;
  sup.run(30, &in, &sink);
  expect_spikes_equal(ref, sink.spikes(), "hang recovered");
  EXPECT_EQ(sup.respawns_done(), 1);
  EXPECT_GE(testsup::counter_value(sup.metrics(), "dist.heartbeats_missed"), 1u);
}

TEST(DistFault, FirstRankDeathDoesNotStallRecordStream) {
  // Rank 0 is the first the coordinator reads each tick's spike frames from;
  // killing it exercises the EOF path in the record loop, not just the peer
  // exchange.
  const Network net = netgen::make_random(testsup::fuzz_spec(2));
  const InputSchedule in = netgen::make_poisson_inputs(testsup::fuzz_spec(2), net, 30);
  dist::Config cfg;
  cfg.ranks = 2;
  cfg.suicide_rank = 0;
  cfg.suicide_tick = 10;
  dist::Coordinator coord(net, cfg);
  VectorSink sink;
  coord.run(30, &in, &sink);  // must not hang
  EXPECT_EQ(coord.now(), 30);
  EXPECT_EQ(coord.live_ranks(), 1);
  EXPECT_FALSE(coord.rank_alive(0));
  EXPECT_TRUE(coord.rank_alive(1));
}

}  // namespace
}  // namespace nsc
