// Additional cross-module coverage: energy-breakdown consistency, host-model
// monotonicity, traffic conservation between the router math and the chip
// simulator, WTA parameter sweeps, partition edge cases, and multi-chip
// placement.
#include <gtest/gtest.h>

#include "src/compass/partition.hpp"
#include "src/core/spike_sink.hpp"
#include "src/corelet/lib.hpp"
#include "src/corelet/place.hpp"
#include "src/energy/host_models.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/noc/route.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::Network;

TEST(EnergyBreakdown, ComponentsSumToTotals) {
  const energy::TrueNorthPowerModel model;
  core::KernelStats s;
  s.ticks = 50;
  s.sops = 123456;
  s.axon_events = 2345;
  s.spikes = 2000;
  s.neuron_updates = 512000;
  s.hop_sum = 84000;
  s.interchip_crossings = 300;
  const auto b = model.breakdown(s, 1024, 0.8, 1000.0);
  EXPECT_NEAR(b.active(), model.active_energy_j(s, 0.8), 1e-15);
  EXPECT_NEAR(b.total(), model.total_energy_j(s, 1024, 0.8, 1000.0), 1e-15);
  for (double part : {b.sop_j, b.axon_j, b.neuron_j, b.spike_j, b.hop_j, b.crossing_j,
                      b.passive_j}) {
    EXPECT_GT(part, 0.0);
  }
}

TEST(EnergyBreakdown, PassiveShareShrinksWithActivity) {
  const energy::TrueNorthPowerModel model;
  auto share = [&](double scale) {
    core::KernelStats s;
    s.ticks = 10;
    s.sops = static_cast<std::uint64_t>(1e6 * scale);
    s.axon_events = static_cast<std::uint64_t>(1e4 * scale);
    s.spikes = s.axon_events;
    s.neuron_updates = 2'560'000;
    const auto b = model.breakdown(s, 1024, 0.75, 1000.0);
    return b.passive_j / b.total();
  };
  EXPECT_GT(share(0.1), share(1.0));
  EXPECT_GT(share(1.0), share(20.0));
}

TEST(HostModels, MoreHostsNeverSlower) {
  const energy::BgqModel bgq;
  core::KernelStats s;
  s.ticks = 1;
  s.sops = 2'000'000;
  s.neuron_updates = 1'000'000;
  double prev = 1e9;
  for (int hosts : {1, 2, 4, 8, 16, 32}) {
    const double t = bgq.seconds_per_tick(s, hosts, 64);
    EXPECT_LE(t, prev + 1e-12) << hosts;
    prev = t;
  }
}

TEST(HostModels, PowerScalesWithHostsAndThreads) {
  const energy::BgqModel bgq;
  EXPECT_NEAR(bgq.power_w(2, 8), 2 * bgq.power_w(1, 8), 1e-12);
  EXPECT_GT(bgq.power_w(1, 64), bgq.power_w(1, 8));
  const energy::X86Model x86;
  EXPECT_GT(x86.power_w(12), x86.power_w(4));
}

TEST(TrafficConservation, SimulatorMatchesRouteMath) {
  // Total interchip crossings accumulated by the simulator must equal the
  // per-spike crossings predicted by route_dor for each routed spike.
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{2, 2, 4, 4};
  spec.rate_hz = 60;
  spec.synapses_per_axon = 32;
  spec.seed = 15;
  const Network net = netgen::make_recurrent(spec);
  tn::TrueNorthSimulator sim(net);
  core::VectorSink sink;
  sim.run(30, nullptr, &sink);

  std::uint64_t expected = 0;
  for (const core::Spike& s : sink.spikes()) {
    const auto& target = net.core(s.core).neuron[s.neuron].target;
    if (!target.valid()) continue;
    expected += static_cast<std::uint64_t>(
        noc::route_dor(net.geom, s.core, target.core).chip_crossings);
  }
  EXPECT_EQ(sim.stats().interchip_crossings, expected);
  EXPECT_EQ(sim.traffic().total_crossings(), expected);
}

TEST(TrafficConservation, HopSumMatchesRouteMath) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 6, 6};
  spec.rate_hz = 40;
  spec.synapses_per_axon = 24;
  spec.seed = 9;
  const Network net = netgen::make_recurrent(spec);
  tn::TrueNorthSimulator sim(net);
  core::VectorSink sink;
  sim.run(25, nullptr, &sink);
  std::uint64_t expected = 0;
  for (const core::Spike& s : sink.spikes()) {
    const auto& target = net.core(s.core).neuron[s.neuron].target;
    if (target.valid()) {
      expected += static_cast<std::uint64_t>(noc::route_dor(net.geom, s.core, target.core).hops);
    }
  }
  EXPECT_EQ(sim.stats().hop_sum, expected);
}

class WtaInhibitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(WtaInhibitionSweep, StrongerInhibitionSparsifiesWinners) {
  // Drive all channels equally; count how many distinct channels ever win.
  const auto inhibit = static_cast<std::int16_t>(-GetParam());
  corelet::WtaParams params;
  params.channels = 8;
  params.inhibit = inhibit;
  const corelet::Corelet c = corelet::make_wta(params);
  core::InputSchedule in;
  for (core::Tick t = 0; t < 60; ++t) {
    for (int ch = 0; ch < 8; ++ch) in.add(t, 0, static_cast<std::uint16_t>(ch));
  }
  in.finalize();
  const auto placed = corelet::place(c, corelet::fit_geometry(c));
  tn::TrueNorthSimulator sim(placed.network);
  core::CountSink sink(static_cast<std::uint64_t>(placed.network.geom.neurons()));
  sim.run(65, &in, &sink);
  int winners = 0;
  std::uint64_t total = 0;
  for (int ch = 0; ch < 8; ++ch) {
    const auto n = sink.count(0, static_cast<std::uint16_t>(8 + ch));  // output copies
    winners += n > 0 ? 1 : 0;
    total += n;
  }
  EXPECT_GT(total, 0u);
  if (GetParam() == 0) {
    EXPECT_EQ(winners, 8);  // no inhibition: everyone fires
  }
  // Recorded for the sweep comparison below via test parameterization; the
  // monotone property is asserted pairwise in WtaInhibitionMonotone.
}

INSTANTIATE_TEST_SUITE_P(Strengths, WtaInhibitionSweep, ::testing::Values(0, 6, 24));

TEST(WtaInhibition, MonotoneSparsification) {
  auto winners_at = [](std::int16_t inhibit) {
    corelet::WtaParams params;
    params.channels = 8;
    params.inhibit = inhibit;
    const corelet::Corelet c = corelet::make_wta(params);
    core::InputSchedule in;
    for (core::Tick t = 0; t < 60; ++t) {
      for (int ch = 0; ch < 8; ++ch) in.add(t, 0, static_cast<std::uint16_t>(ch));
    }
    in.finalize();
    const auto placed = corelet::place(c, corelet::fit_geometry(c));
    tn::TrueNorthSimulator sim(placed.network);
    core::CountSink sink(static_cast<std::uint64_t>(placed.network.geom.neurons()));
    sim.run(65, &in, &sink);
    std::uint64_t total = 0;
    for (int ch = 0; ch < 8; ++ch) total += sink.count(0, static_cast<std::uint16_t>(8 + ch));
    return total;
  };
  const auto none = winners_at(0);
  const auto strong = winners_at(-24);
  EXPECT_GT(none, strong);  // inhibition suppresses total winner activity
}

TEST(Partition, ZeroLoadNetworkStillPartitions) {
  const Network net(Geometry{1, 1, 4, 4});  // idle default network
  const auto parts = compass::partition_balanced(net, 5);
  ASSERT_EQ(parts.size(), 5u);
  core::CoreId covered = 0;
  for (const auto& r : parts) covered += static_cast<core::CoreId>(r.size());
  EXPECT_EQ(covered, 16u);
}

TEST(Partition, SkewedLoadStaysReasonablyBalanced) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.synapses_per_axon = 200;
  Network net = netgen::make_recurrent(spec);
  // Empty half the cores: balance must adapt.
  for (core::CoreId c = 8; c < 16; ++c) {
    net.core(c).crossbar.clear();
    for (auto& p : net.core(c).neuron) p.enabled = 0;
  }
  const auto parts = compass::partition_balanced(net, 4);
  EXPECT_LT(compass::load_imbalance(net, parts), 1.6);
}

TEST(PlaceMultichip, Block2DSpansChipsSeamlessly) {
  corelet::Corelet c("wide");
  for (int i = 0; i < 24; ++i) c.add_core();
  const Geometry g{2, 1, 4, 4};  // two chips side by side
  const auto placed = corelet::place(c, g, corelet::PlaceStrategy::kBlock2D);
  // Snake order must fill the global 8-wide mesh row by row, crossing the
  // chip boundary without gaps.
  for (int i = 0; i + 1 < 24; ++i) {
    const auto a = g.global_xy(placed.core_map[static_cast<std::size_t>(i)]);
    const auto b = g.global_xy(placed.core_map[static_cast<std::size_t>(i + 1)]);
    EXPECT_EQ(std::abs(a.x - b.x) + std::abs(a.y - b.y), 1) << i;
  }
}

TEST(RecurrentNet, JitterDisabledIsDeterministicPeriodic) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.rate_hz = 50;
  spec.synapses_per_axon = 0;  // pure leak-driven
  spec.threshold_jitter = false;
  const Network net = netgen::make_recurrent(spec);
  tn::TrueNorthSimulator sim(net);
  sim.run(200, nullptr, nullptr);
  const double rate = sim.stats().mean_rate_hz(static_cast<std::uint64_t>(net.geom.neurons()));
  EXPECT_NEAR(rate, 50.0, 3.0);  // exact leak clockwork
}

}  // namespace
}  // namespace nsc
