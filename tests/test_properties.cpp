// Cross-cutting property tests: parameterized sweeps over geometries,
// delays, thread counts, calibration grid points, and model monotonicity —
// the invariants DESIGN.md §6 commits to, beyond the per-module unit tests.
#include <gtest/gtest.h>

#include <sstream>

#include "src/compass/simulator.hpp"
#include "src/core/network_io.hpp"
#include "src/core/reference_sim.hpp"
#include "src/core/spike_sink.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/netgen/random_net.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::InputSchedule;
using core::Network;
using core::Spike;
using core::VectorSink;

std::vector<Spike> run_tn(const Network& net, const InputSchedule* in, core::Tick ticks) {
  tn::TrueNorthSimulator sim(net);
  VectorSink sink;
  sim.run(ticks, in, &sink);
  return sink.spikes();
}

// ---------------------------------------------------------------------------
// Equivalence across geometries (single-core to multi-chip).

struct GeomCase {
  Geometry geom;
  const char* name;
};

class GeometryEquivalence : public ::testing::TestWithParam<GeomCase> {};

TEST_P(GeometryEquivalence, AllBackendsAgree) {
  netgen::RandomNetSpec spec;
  spec.geom = GetParam().geom;
  spec.seed = 2718;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 25);

  const auto want = run_tn(net, &in, 35);
  {
    core::ReferenceSimulator sim(net);
    VectorSink sink;
    sim.run(35, &in, &sink);
    EXPECT_EQ(core::first_mismatch(want, sink.spikes()), -1) << GetParam().name;
  }
  for (int threads : {1, 2, 5}) {
    compass::Simulator sim(net, {.threads = threads});
    VectorSink sink;
    sim.run(35, &in, &sink);
    EXPECT_EQ(core::first_mismatch(want, sink.spikes()), -1)
        << GetParam().name << " compass(" << threads << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryEquivalence,
    ::testing::Values(GeomCase{{1, 1, 1, 1}, "single_core"}, GeomCase{{1, 1, 1, 2}, "two_cores"},
                      GeomCase{{1, 1, 5, 3}, "rect_chip"}, GeomCase{{2, 1, 2, 2}, "two_chips"},
                      GeomCase{{2, 3, 2, 2}, "six_chips"}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Axonal delay sweep: a relay through every legal delay on every backend.

class DelaySweep : public ::testing::TestWithParam<int> {};

TEST_P(DelaySweep, RelayArrivesExactlyOnTime) {
  const int delay = GetParam();
  Network net(Geometry{1, 1, 2, 1});
  for (auto& cs : net.cores) {
    for (auto& p : cs.neuron) p.enabled = 0;
  }
  net.core(0).crossbar.set(0, 0);
  net.core(0).neuron[0].enabled = 1;
  net.core(0).neuron[0].weight[0] = 1;
  net.core(0).neuron[0].threshold = 1;
  net.core(0).neuron[0].target = {1, 9, static_cast<std::uint8_t>(delay)};
  net.core(1).crossbar.set(9, 9);
  net.core(1).neuron[9].enabled = 1;
  net.core(1).neuron[9].weight[0] = 1;
  net.core(1).neuron[9].threshold = 1;

  InputSchedule in;
  in.add(4, 0, 0);
  in.finalize();

  const std::vector<Spike> want = {{4, 0, 0}, {4 + delay, 1, 9}};
  EXPECT_EQ(run_tn(net, &in, 25), want);
  {
    core::ReferenceSimulator sim(net);
    VectorSink sink;
    sim.run(25, &in, &sink);
    EXPECT_EQ(sink.spikes(), want);
  }
  {
    compass::Simulator sim(net, {.threads = 2});
    VectorSink sink;
    sim.run(25, &in, &sink);
    EXPECT_EQ(sink.spikes(), want);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDelays, DelaySweep, ::testing::Range(1, 16));

// ---------------------------------------------------------------------------
// Compass thread-count invariance of counters on a busier network.

TEST(CompassProperty, StatsInvariantAcrossThreadCounts) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 6, 6};
  spec.rate_hz = 80;
  spec.synapses_per_axon = 48;
  spec.seed = 5;
  const Network net = netgen::make_recurrent(spec);
  core::KernelStats first;
  for (int threads : {1, 2, 3, 4, 6, 8}) {
    compass::Simulator sim(net, {.threads = threads});
    sim.run(40, nullptr, nullptr);
    if (threads == 1) {
      first = sim.stats();
      EXPECT_GT(first.spikes, 0u);
      continue;
    }
    EXPECT_EQ(sim.stats().spikes, first.spikes) << threads;
    EXPECT_EQ(sim.stats().sops, first.sops) << threads;
    EXPECT_EQ(sim.stats().axon_events, first.axon_events) << threads;
    EXPECT_EQ(sim.stats().neuron_updates, first.neuron_updates) << threads;
  }
}

TEST(CompassProperty, AggregationDoesNotChangeFunction) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.rate_hz = 60;
  spec.synapses_per_axon = 32;
  spec.seed = 6;
  const Network net = netgen::make_recurrent(spec);
  VectorSink a, b;
  compass::Simulator agg(net, {.threads = 3, .aggregate_messages = true});
  agg.run(40, nullptr, &a);
  compass::Simulator per(net, {.threads = 3, .aggregate_messages = false});
  per.run(40, nullptr, &b);
  EXPECT_EQ(core::first_mismatch(a.spikes(), b.spikes()), -1);
}

// ---------------------------------------------------------------------------
// Model-file round trip preserves dynamics bit-exactly.

TEST(NetworkIoProperty, RoundTripPreservesDynamics) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 3, 2};
  spec.seed = 404;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 20);
  std::stringstream buf;
  core::save_network(net, buf);
  const Network loaded = core::load_network(buf);
  EXPECT_EQ(core::first_mismatch(run_tn(net, &in, 30), run_tn(loaded, &in, 30)), -1);
}

// ---------------------------------------------------------------------------
// Calibration sweep: every grid point of the paper's 88-network space has a
// consistent integer fixed point.

class CalibrationGrid : public ::testing::TestWithParam<netgen::GridPoint> {};

TEST_P(CalibrationGrid, FixedPointNearTarget) {
  netgen::RecurrentSpec spec;
  spec.rate_hz = GetParam().rate_hz;
  spec.synapses_per_axon = GetParam().synapses;
  const auto cal = netgen::calibrate(spec);
  EXPECT_GT(cal.threshold, 0);
  EXPECT_GE(cal.leak, 1);
  EXPECT_LE(cal.leak, 255);  // hardware 9-bit signed leak
  EXPECT_NEAR(cal.expected_rate_hz, spec.rate_hz, spec.rate_hz * 0.1);
  // Subcritical branching: K/(mean effective threshold) < 1.
  EXPECT_LT(static_cast<double>(spec.synapses_per_axon),
            cal.threshold + cal.jitter_mask / 2.0);
}

INSTANTIATE_TEST_SUITE_P(All88, CalibrationGrid,
                         ::testing::ValuesIn(netgen::characterization_grid()));

// ---------------------------------------------------------------------------
// Energy/timing model monotonicity across the characterization axes.

TEST(EnergyProperty, PowerMonotoneInRateAndSynapses) {
  const energy::TrueNorthPowerModel model;
  auto stats_for = [](double rate, int syn) {
    core::KernelStats s;
    s.ticks = 100;
    const double spikes = 1e6 * rate / 1000.0 * 100.0;
    s.spikes = static_cast<std::uint64_t>(spikes);
    s.axon_events = s.spikes;
    s.sops = static_cast<std::uint64_t>(spikes * syn);
    s.neuron_updates = 100'000'000;
    s.hop_sum = static_cast<std::uint64_t>(spikes * 42);
    return s;
  };
  double prev = 0.0;
  for (double rate : {2.0, 20.0, 100.0, 200.0}) {
    const double p = model.mean_power_w(stats_for(rate, 128), 4096, 0.75, 1000);
    EXPECT_GT(p, prev);
    prev = p;
  }
  prev = 0.0;
  for (int syn : {0, 64, 128, 256}) {
    const double p = model.mean_power_w(stats_for(50, syn), 4096, 0.75, 1000);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

class VoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(VoltageSweep, PowerAndSpeedScaleWithVoltage) {
  const double v = GetParam();
  const energy::TrueNorthPowerModel power;
  const energy::TrueNorthTimingModel timing;
  core::KernelStats s;
  s.ticks = 10;
  s.sops = 1'000'000;
  s.axon_events = 10'000;
  s.spikes = 10'000;
  s.neuron_updates = 1'000'000;
  s.sum_max_core_sops = 10'000;
  s.sum_max_core_axon_events = 100;
  s.sum_max_core_spikes = 100;
  // Against the nominal 0.75 V: higher voltage = more power, more speed.
  const double p_ratio =
      power.mean_power_w(s, 4096, v, 1000) / power.mean_power_w(s, 4096, 0.75, 1000);
  const double f_ratio = timing.max_tick_hz(s, v) / timing.max_tick_hz(s, 0.75);
  if (v > 0.75) {
    EXPECT_GT(p_ratio, 1.0);
    EXPECT_GT(f_ratio, 1.0);
  } else if (v < 0.75) {
    EXPECT_LT(p_ratio, 1.0);
    EXPECT_LT(f_ratio, 1.0);
  } else {
    EXPECT_NEAR(p_ratio, 1.0, 1e-12);
    EXPECT_NEAR(f_ratio, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, VoltageSweep,
                         ::testing::Values(0.67, 0.70, 0.75, 0.85, 0.95, 1.05));

// ---------------------------------------------------------------------------
// Recurrent networks: spike conservation — every spike either routes to a
// valid axon or is counted as dropped; SOPs only arise from deliveries.

TEST(ConservationProperty, SpikesRoutedOrDropped) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 4, 4};
  spec.seed = 909;
  spec.invalid_target_fraction = 0.3;  // lots of drops
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 20);
  tn::TrueNorthSimulator sim(net);
  sim.run(30, &in, nullptr);
  const auto& s = sim.stats();
  EXPECT_GT(s.dropped_spikes, 0u);
  EXPECT_LE(s.dropped_spikes, s.spikes);
  // Axon events cannot exceed deliveries plus external inputs.
  EXPECT_LE(s.axon_events, (s.spikes - s.dropped_spikes) + in.size());
}

TEST(ConservationProperty, NoInputsNoLeakMeansSilence) {
  Network net(Geometry{1, 1, 2, 2});
  // All neurons enabled with zero leak and positive thresholds: nothing can
  // ever fire without input.
  for (auto& cs : net.cores) {
    for (auto& p : cs.neuron) {
      p.enabled = 1;
      p.threshold = 5;
      p.leak = 0;
    }
  }
  EXPECT_TRUE(run_tn(net, nullptr, 50).empty());
}

// ---------------------------------------------------------------------------
// Simulator misc: zero ticks, repeated run() calls continue seamlessly.

TEST(SimulatorProperty, SplitRunsEqualOneRun) {
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.rate_hz = 100;
  spec.synapses_per_axon = 32;
  spec.seed = 77;
  const Network net = netgen::make_recurrent(spec);

  VectorSink whole;
  {
    tn::TrueNorthSimulator sim(net);
    sim.run(60, nullptr, &whole);
  }
  VectorSink pieces;
  {
    tn::TrueNorthSimulator sim(net);
    sim.run(0, nullptr, &pieces);
    sim.run(13, nullptr, &pieces);
    sim.run(17, nullptr, &pieces);
    sim.run(30, nullptr, &pieces);
    EXPECT_EQ(sim.now(), 60);
  }
  EXPECT_EQ(core::first_mismatch(whole.spikes(), pieces.spikes()), -1);
}

TEST(SimulatorProperty, SinkTickEndCalledPerTick) {
  struct TickCounter final : core::SpikeSink {
    int ticks = 0;
    void on_spike(core::Tick, core::CoreId, std::uint16_t) override {}
    void on_tick_end(core::Tick) override { ++ticks; }
  };
  Network net(Geometry{1, 1, 1, 1});
  TickCounter counter;
  tn::TrueNorthSimulator sim(net);
  sim.run(23, nullptr, &counter);
  EXPECT_EQ(counter.ticks, 23);
}

}  // namespace
}  // namespace nsc
