// Tests for the offline training substrate: the perceptron, the 4-level
// weight quantizer, the classifier-corelet emitter, and the train-offline /
// deploy-on-chip accuracy contract.
#include <gtest/gtest.h>

#include "src/analysis/lint.hpp"
#include "src/corelet/place.hpp"
#include "src/train/perceptron.hpp"

namespace nsc::train {
namespace {

TEST(PatternDataset, ShapesAndLabels) {
  const Dataset d = make_pattern_dataset(10, 0.05, 3);
  EXPECT_EQ(d.size(), 40u);
  EXPECT_EQ(d.features(), 64);
  EXPECT_EQ(d.classes, 4);
  for (int y : d.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
  }
}

TEST(PatternDataset, DeterministicPerSeed) {
  const Dataset a = make_pattern_dataset(5, 0.1, 7);
  const Dataset b = make_pattern_dataset(5, 0.1, 7);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(Perceptron, LearnsSeparablePatterns) {
  const Dataset train = make_pattern_dataset(40, 0.05, 11);
  const Dataset test = make_pattern_dataset(20, 0.05, 99);
  const LinearModel m = train_perceptron(train);
  EXPECT_GT(m.accuracy(train), 0.95);
  EXPECT_GT(m.accuracy(test), 0.9);
}

TEST(Perceptron, ChanceOnRandomLabelsIsLow) {
  Dataset d = make_pattern_dataset(20, 0.5, 5);  // 50% flip noise: no signal
  const LinearModel m = train_perceptron(d, {.epochs = 5});
  const Dataset fresh = make_pattern_dataset(20, 0.5, 6);
  EXPECT_LT(m.accuracy(fresh), 0.6);
}

TEST(QuantizeRow, RecoversDistinctLevels) {
  std::vector<float> w = {1.0f, 1.1f, -2.0f, -2.1f, 0.0f, 0.01f, 1.05f, -1.9f};
  const QuantizedRow q = quantize_row(w, 10.0f);
  // Two clear clusters: ~+10 and ~-20.
  bool has_pos = false, has_neg = false;
  for (int g = 0; g < core::kAxonTypes; ++g) {
    if (q.level[g] >= 9 && q.level[g] <= 12) has_pos = true;
    if (q.level[g] <= -18 && q.level[g] >= -22) has_neg = true;
  }
  EXPECT_TRUE(has_pos);
  EXPECT_TRUE(has_neg);
  // Near-zero weights stay off the crossbar.
  EXPECT_EQ(q.assign[4], 0xFF);
  EXPECT_EQ(q.assign[5], 0xFF);
  // Significant weights are assigned.
  EXPECT_NE(q.assign[0], 0xFF);
  EXPECT_NE(q.assign[2], 0xFF);
}

TEST(QuantizeRow, AllZeroRowStaysOff) {
  const QuantizedRow q = quantize_row(std::vector<float>(8, 0.0f), 16.0f);
  for (auto a : q.assign) EXPECT_EQ(a, 0xFF);
}

TEST(EmitClassifier, ProducesValidNetwork) {
  const Dataset d = make_pattern_dataset(20, 0.05, 2);
  const LinearModel m = train_perceptron(d, {.epochs = 8});
  const ClassifierCorelet clf = emit_classifier(m);
  EXPECT_EQ(clf.classes, 4);
  EXPECT_EQ(clf.features, 64);
  const auto placed = corelet::place(clf.net, core::Geometry{1, 1, 1, 1});
  EXPECT_TRUE(analysis::clean_at(placed.network));
  // Each feature owns four typed axons.
  const auto axons = clf.feature_axons(5);
  EXPECT_EQ(axons[0], 20);
  EXPECT_EQ(axons[3], 23);
}

TEST(EmitClassifier, RejectsTooManyFeatures) {
  LinearModel m;
  m.w.assign(2, std::vector<float>(65, 1.0f));
  EXPECT_THROW((void)emit_classifier(m), std::out_of_range);
}

TEST(TrainDeploy, SpikingAccuracyTracksFloatModel) {
  // The paper's ecosystem contract: train offline, deploy on the chip, keep
  // the quality. Quantization + rate coding may cost a few points.
  const Dataset train = make_pattern_dataset(40, 0.05, 21);
  const Dataset test = make_pattern_dataset(15, 0.05, 77);
  const LinearModel m = train_perceptron(train);
  const double float_acc = m.accuracy(test);
  const ClassifierCorelet clf = emit_classifier(m);
  const double spike_acc = spiking_accuracy(clf, test);
  EXPECT_GT(float_acc, 0.9);
  EXPECT_GT(spike_acc, float_acc - 0.15);
}

}  // namespace
}  // namespace nsc::train
