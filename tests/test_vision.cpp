// Tests for the vision substrate: images, synthetic scenes, encoders,
// detection metrics.
#include <gtest/gtest.h>

#include "src/vision/encode.hpp"
#include "src/vision/image.hpp"
#include "src/vision/metrics.hpp"
#include "src/vision/scene.hpp"

namespace nsc::vision {
namespace {

TEST(ImageTest, SetGetClampedAndRect) {
  Image img(8, 4, 10);
  EXPECT_EQ(img.at(0, 0), 10);
  img.set(2, 3, 99);
  EXPECT_EQ(img.at(2, 3), 99);
  EXPECT_EQ(img.at_clamped(-1, 0), 0);
  EXPECT_EQ(img.at_clamped(8, 0), 0);
  img.fill_rect(6, 2, 5, 5, 200);  // clipped at the border
  EXPECT_EQ(img.at(7, 3), 200);
  EXPECT_EQ(img.at(5, 3), 10);
}

TEST(IouTest, KnownOverlaps) {
  const LabeledBox a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
  const LabeledBox b{10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(iou(a, b), 0.0);
  const LabeledBox c{5, 0, 10, 10};
  EXPECT_NEAR(iou(a, c), 50.0 / 150.0, 1e-12);
}

TEST(SceneTest, DeterministicPerSeed) {
  SceneConfig cfg;
  cfg.seed = 5;
  SyntheticScene a(cfg), b(cfg);
  a.step();
  b.step();
  const Image fa = a.render(), fb = b.render();
  EXPECT_EQ(fa.pixels(), fb.pixels());
  const auto ga = a.ground_truth(), gb = b.ground_truth();
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(ga[i].x, gb[i].x);
    EXPECT_EQ(ga[i].cls, gb[i].cls);
  }
}

TEST(SceneTest, ObjectsMoveAndStayInFrame) {
  SceneConfig cfg;
  cfg.objects = 4;
  cfg.seed = 9;
  SyntheticScene scene(cfg);
  const auto g0 = scene.ground_truth();
  for (int f = 0; f < 50; ++f) {
    scene.step();
    for (const LabeledBox& b : scene.ground_truth()) {
      EXPECT_GE(b.x, 0);
      EXPECT_GE(b.y, 0);
      EXPECT_LE(b.x + b.w, cfg.width);
      EXPECT_LE(b.y + b.h, cfg.height);
    }
  }
  const auto g1 = scene.ground_truth();
  bool moved = false;
  for (std::size_t i = 0; i < g0.size(); ++i) {
    if (g0[i].x != g1[i].x || g0[i].y != g1[i].y) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(SceneTest, ObjectsBrighterThanBackground) {
  SceneConfig cfg;
  cfg.objects = 1;
  cfg.seed = 3;
  SyntheticScene scene(cfg);
  const Image f = scene.render();
  const LabeledBox b = scene.ground_truth()[0];
  const ClassArchetype a = archetype(b.cls);
  EXPECT_GT(static_cast<int>(f.at(b.x + b.w / 2, b.y)), cfg.background + 30);
  (void)a;
}

TEST(ArchetypeTest, ClassesSeparableByLuminousMass) {
  // The What network's classification axis: area × brightness must be
  // distinct across classes.
  std::vector<double> mass;
  for (int c = 0; c < kObjectClasses; ++c) {
    const ClassArchetype a = archetype(static_cast<ObjectClass>(c));
    mass.push_back(a.w * a.h * (0.75 * a.brightness + 0.25 * a.accent));
  }
  std::sort(mass.begin(), mass.end());
  for (std::size_t i = 0; i + 1 < mass.size(); ++i) {
    EXPECT_GT(mass[i + 1], mass[i] * 1.1) << "classes " << i << " and " << i + 1;
  }
}

TEST(RateEncoderTest, RateProportionalToValue) {
  const RateEncoder enc(0.5, 11);
  for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{64}, std::uint8_t{255}}) {
    int fires = 0;
    const int n = 20000;
    for (int t = 0; t < n; ++t) fires += enc.fires(42, t, v) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(fires) / n, enc.prob(v), 0.02) << int(v);
  }
}

TEST(RateEncoderTest, DeterministicAndPixelKeyed) {
  const RateEncoder enc(0.5, 11);
  EXPECT_EQ(enc.fires(1, 5, 200), enc.fires(1, 5, 200));
  int diffs = 0;
  for (int t = 0; t < 200; ++t) {
    if (enc.fires(1, t, 200) != enc.fires(2, t, 200)) ++diffs;
  }
  EXPECT_GT(diffs, 10);  // different pixels get decorrelated streams
}

TEST(DecodeRate, InvertsEncoding) {
  EXPECT_NEAR(decode_rate(50, 100, 0.5), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(decode_rate(0, 100, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(decode_rate(10, 0, 0.5), 0.0);
}

TEST(MatchDetections, PerfectDetections) {
  const std::vector<LabeledBox> gt = {{0, 0, 10, 10, ObjectClass::kCar},
                                      {30, 30, 8, 8, ObjectClass::kPerson}};
  const DetectionCounts c = match_detections(gt, gt, 0.5, true);
  EXPECT_EQ(c.true_positives, 2);
  EXPECT_EQ(c.false_positives, 0);
  EXPECT_EQ(c.false_negatives, 0);
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.f1(), 1.0);
}

TEST(MatchDetections, WrongClassIsFalsePositive) {
  const std::vector<LabeledBox> gt = {{0, 0, 10, 10, ObjectClass::kCar}};
  std::vector<LabeledBox> det = gt;
  det[0].cls = ObjectClass::kBus;
  const DetectionCounts c = match_detections(gt, det, 0.3, true);
  EXPECT_EQ(c.true_positives, 0);
  EXPECT_EQ(c.false_positives, 1);
  EXPECT_EQ(c.false_negatives, 1);
  // Without class matching the same detection counts.
  const DetectionCounts c2 = match_detections(gt, det, 0.3, false);
  EXPECT_EQ(c2.true_positives, 1);
}

TEST(MatchDetections, EachGroundTruthClaimedOnce) {
  const std::vector<LabeledBox> gt = {{0, 0, 10, 10, ObjectClass::kCar}};
  const std::vector<LabeledBox> det = {{0, 0, 10, 10, ObjectClass::kCar},
                                       {1, 1, 10, 10, ObjectClass::kCar}};
  const DetectionCounts c = match_detections(gt, det, 0.3, true);
  EXPECT_EQ(c.true_positives, 1);
  EXPECT_EQ(c.false_positives, 1);
}

TEST(DetectionCountsTest, Accumulates) {
  DetectionCounts a{1, 2, 3}, b{4, 0, 1};
  a += b;
  EXPECT_EQ(a.true_positives, 5);
  EXPECT_EQ(a.false_positives, 2);
  EXPECT_EQ(a.false_negatives, 4);
}

}  // namespace
}  // namespace nsc::vision
