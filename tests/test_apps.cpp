// Integration tests for the five characterization applications: networks
// build and validate, run on both expressions with identical spikes, produce
// sensible activity, and the NeoVision pipeline detects and classifies
// moving objects above chance.
#include <gtest/gtest.h>

#include "src/apps/haar.hpp"
#include "src/apps/lbp.hpp"
#include "src/apps/neovision.hpp"
#include "src/apps/saccade.hpp"
#include "src/apps/saliency.hpp"
#include "src/core/spike_sink.hpp"
#include "src/analysis/lint.hpp"

namespace nsc::apps {
namespace {

AppConfig small_cfg() {
  AppConfig cfg;
  cfg.img_w = 64;
  cfg.img_h = 64;
  cfg.frames = 4;
  cfg.ticks_per_frame = 20;
  cfg.scene_objects = 2;
  cfg.seed = 11;
  return cfg;
}

void expect_valid_and_equivalent(const AppNetwork& net) {
  EXPECT_TRUE(analysis::clean_at(net.network())) << net.name;
  core::VectorSink tn_sink, compass_sink;
  const AppRunResult tn = run_on_truenorth(net, &tn_sink);
  const AppRunResult cp = run_on_compass(net, 3, &compass_sink);
  EXPECT_EQ(core::first_mismatch(tn_sink.spikes(), compass_sink.spikes()), -1)
      << net.name << ": expressions diverged";
  EXPECT_EQ(tn.stats.spikes, cp.stats.spikes) << net.name;
  EXPECT_GT(tn.stats.spikes, 0u) << net.name << ": network is silent";
  EXPECT_GT(tn.stats.sops, 0u) << net.name;
}

TEST(HaarApp, BuildsRunsAndExtractsFeatures) {
  const HaarApp app = make_haar_app(small_cfg());
  EXPECT_EQ(app.features, 10);
  EXPECT_GT(app.neurons_per_patch, 30);
  EXPECT_EQ(app.patches, 32);
  EXPECT_GT(app.net.inputs.size(), 0u);
  expect_valid_and_equivalent(app.net);
}

TEST(HaarApp, FeaturesRespondToStructure) {
  // A textured scene must excite more feature spikes than a blank one.
  AppConfig cfg = small_cfg();
  const HaarApp textured = make_haar_app(cfg);
  core::CountSink sink(
      static_cast<std::uint64_t>(textured.net.network().geom.neurons()));
  (void)run_on_truenorth(textured.net, &sink);
  std::uint64_t total = 0;
  for (auto v : sink.counts()) total += v;
  EXPECT_GT(total, 100u);
}

TEST(LbpApp, BuildsRunsAndBins) {
  const LbpApp app = make_lbp_app(small_cfg());
  EXPECT_EQ(app.bins, 20);
  EXPECT_EQ(app.subpatches, 32);
  EXPECT_GT(app.comparisons_per_patch, 100);
  expect_valid_and_equivalent(app.net);
}

TEST(SaliencyApp, BuildsRunsAndHighlightsObjects) {
  const SaliencyApp app = make_saliency_app(small_cfg());
  EXPECT_GT(app.centers_per_patch, 5);
  expect_valid_and_equivalent(app.net);
}

TEST(SaliencyApp, ObjectRegionsBeatEmptyRegions) {
  AppConfig cfg = small_cfg();
  cfg.frames = 3;
  const SaliencyApp app = make_saliency_app(cfg);
  core::CountSink sink(static_cast<std::uint64_t>(app.net.network().geom.neurons()));
  (void)run_on_truenorth(app.net, &sink);
  // Energy outputs are the last `patches` output pins.
  std::uint64_t max_energy = 0, total_energy = 0;
  const int patches = app.patches;
  const int first_energy = static_cast<int>(app.net.placed.outputs.size()) - patches;
  for (int i = 0; i < patches; ++i) {
    const auto n = sink.counts()[app.net.placed.output_flat_index(first_energy + i)];
    max_energy = std::max<std::uint64_t>(max_energy, n);
    total_energy += n;
  }
  EXPECT_GT(total_energy, 0u);
  // Saliency must be spatially selective, not uniform.
  EXPECT_GT(static_cast<double>(max_energy) * patches,
            2.0 * static_cast<double>(total_energy));
}

TEST(SaccadeApp, BuildsRunsAndSelects) {
  const SaccadeApp app = make_saccade_app(small_cfg());
  EXPECT_GT(app.regions, 8);
  EXPECT_GT(app.ior_delay_ticks, 10);
  expect_valid_and_equivalent(app.net);
}

TEST(SaccadeApp, WinnerSelectionIsSparse) {
  AppConfig cfg = small_cfg();
  cfg.frames = 5;
  const SaccadeApp app = make_saccade_app(cfg);
  core::CountSink sink(static_cast<std::uint64_t>(app.net.network().geom.neurons()));
  (void)run_on_truenorth(app.net, &sink);
  int active_regions = 0;
  std::uint64_t total = 0;
  for (int i = 0; i < static_cast<int>(app.net.placed.outputs.size()); ++i) {
    const auto n = sink.counts()[app.net.placed.output_flat_index(i)];
    active_regions += n > 0 ? 1 : 0;
    total += n;
  }
  EXPECT_GT(total, 0u);
  // WTA + IoR: selection concentrates on a few regions at a time.
  EXPECT_LT(active_regions, app.regions);
}

TEST(NeovisionApp, BuildsRunsAndBinds) {
  AppConfig cfg = small_cfg();
  cfg.frames = 6;
  cfg.ticks_per_frame = 25;
  const NeovisionApp app = make_neovision_app(cfg);
  EXPECT_EQ(app.region_cols * app.region_rows, 16);
  EXPECT_TRUE(analysis::clean_at(app.net.network()));

  core::WindowedCountSink sink(static_cast<std::uint64_t>(app.net.network().geom.neurons()),
                               app.ticks_per_frame);
  (void)run_on_truenorth(app.net, &sink);
  ASSERT_EQ(sink.windows().size(), static_cast<std::size_t>(cfg.frames));

  const NeovisionResult res = decode_detections(app, sink);
  // Moving bright objects must be detected well above chance; classification
  // of the separable archetypes must be mostly right.
  EXPECT_GT(res.counts.true_positives + res.counts.false_negatives, 0);
  EXPECT_GT(res.counts.recall(), 0.3);
  EXPECT_GT(res.counts.precision(), 0.3);
}

TEST(NeovisionApp, ExpressionsAgree) {
  AppConfig cfg = small_cfg();
  cfg.frames = 3;
  const NeovisionApp app = make_neovision_app(cfg);
  expect_valid_and_equivalent(app.net);
}

TEST(AppHarness, WallClockAndStatsPopulated) {
  const HaarApp app = make_haar_app(small_cfg());
  const AppRunResult r = run_on_compass(app.net, 2);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.seconds_per_tick(), 0.0);
  EXPECT_EQ(r.stats.ticks, static_cast<std::uint64_t>(app.net.ticks));
}

}  // namespace
}  // namespace nsc::apps
