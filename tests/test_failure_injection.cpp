// Failure injection: faulted cores, fault sweeps, disconnections, hostile
// inputs, and degenerate configurations — the robustness claims of paper
// §III-C ("local core failures do not disrupt global usability") made
// testable.
#include <gtest/gtest.h>

#include "src/compass/simulator.hpp"
#include "src/core/reference_sim.hpp"
#include "src/core/spike_sink.hpp"
#include "src/fault/inject.hpp"
#include "src/netgen/random_net.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/noc/route.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::InputSchedule;
using core::Network;
using core::VectorSink;
using fault::inject_faults;  // promoted to src/fault/inject.hpp

class FaultSweep : public ::testing::TestWithParam<double> {};

TEST_P(FaultSweep, DegradedNetworkStaysCorrectAndEquivalent) {
  const double fraction = GetParam();
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 5, 5};
  spec.rate_hz = 60;
  spec.synapses_per_axon = 48;
  spec.seed = 17;
  Network net = netgen::make_recurrent(spec);
  const int faulted = inject_faults(net, fraction, 99);
  if (fraction > 0) EXPECT_GT(faulted, 0);

  tn::TrueNorthSimulator tn_sim(net);
  VectorSink tn_sink;
  tn_sim.run(40, nullptr, &tn_sink);

  // No spike from a faulted core; the network still computes.
  for (const auto& s : tn_sink.spikes()) {
    EXPECT_FALSE(net.core(s.core).disabled != 0) << "spike from faulted core " << s.core;
  }
  if (fraction < 0.5) EXPECT_GT(tn_sink.spikes().size(), 0u);

  // Degraded networks keep 1:1 equivalence.
  compass::Simulator cp(net, {.threads = 3});
  VectorSink cp_sink;
  cp.run(40, nullptr, &cp_sink);
  EXPECT_EQ(core::first_mismatch(tn_sink.spikes(), cp_sink.spikes()), -1);
}

INSTANTIATE_TEST_SUITE_P(Fractions, FaultSweep, ::testing::Values(0.0, 0.05, 0.2, 0.4));

TEST(FaultRouting, DetoursNeverTraverseFaults) {
  // Exhaustive check on a small mesh: for random fault sets, every
  // reachable pair's detour is at least Manhattan-long and at most the
  // BFS-optimal (they are equal by construction; verify the bound holds).
  const Geometry g{1, 1, 6, 6};
  util::Xoshiro rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    noc::FaultSet faults(g.total_cores());
    for (int f = 0; f < 5; ++f) {
      faults.mark(static_cast<core::CoreId>(rng.next_below(36)));
    }
    for (int i = 0; i < 30; ++i) {
      const auto a = static_cast<core::CoreId>(rng.next_below(36));
      const auto b = static_cast<core::CoreId>(rng.next_below(36));
      if (faults.is_faulted(a) || faults.is_faulted(b)) continue;
      const auto r = noc::route_with_faults(g, faults, a, b);
      if (!r.reachable) continue;
      EXPECT_GE(r.hops, noc::manhattan(g, a, b));
      if (!noc::dor_path_blocked(g, faults, a, b)) {
        EXPECT_EQ(r.hops, noc::manhattan(g, a, b));
      }
    }
  }
}

TEST(FaultRouting, FullyFencedDestinationUnreachable) {
  const Geometry g{1, 1, 5, 5};
  noc::FaultSet faults(g.total_cores());
  // Fence in the center core (2,2).
  for (const auto& [dx, dy] : {std::pair{1, 0}, {-1, 0}, {0, 1}, {0, -1}}) {
    faults.mark(g.core_at(0, 2 + dx, 2 + dy));
  }
  const auto r = noc::route_with_faults(g, faults, g.core_at(0, 0, 0), g.core_at(0, 2, 2));
  EXPECT_FALSE(r.reachable);
}

TEST(HostileInputs, OutOfRangeCoreIgnored) {
  Network net(Geometry{1, 1, 2, 1});
  net.core(0).neuron[0].enabled = 1;
  net.core(0).neuron[0].threshold = 1;
  net.core(0).neuron[0].weight[0] = 1;
  net.core(0).crossbar.set(0, 0);
  InputSchedule in;
  in.add(0, 999999, 0);  // bogus core: must be ignored, not crash
  in.add(1, 0, 0);
  in.finalize();
  const std::vector<core::Spike> want = {{1, 0, 0}};
  {
    tn::TrueNorthSimulator sim(net);
    VectorSink sink;
    sim.run(5, &in, &sink);
    EXPECT_EQ(sink.spikes(), want);
  }
  {
    core::ReferenceSimulator sim(net);
    VectorSink sink;
    sim.run(5, &in, &sink);
    EXPECT_EQ(sink.spikes(), want);
  }
  {
    compass::Simulator sim(net, {.threads = 2});
    VectorSink sink;
    sim.run(5, &in, &sink);
    EXPECT_EQ(sink.spikes(), want);
  }
}

TEST(HostileInputs, InputsToFaultedCoreAbsorbed) {
  Network net(Geometry{1, 1, 2, 1});
  net.core(1).disabled = 1;
  for (auto& p : net.core(1).neuron) p.enabled = 0;
  InputSchedule in;
  for (core::Tick t = 0; t < 10; ++t) in.add(t, 1, 5);
  in.finalize();
  tn::TrueNorthSimulator sim(net);
  VectorSink sink;
  sim.run(12, &in, &sink);
  EXPECT_TRUE(sink.spikes().empty());
  EXPECT_EQ(sim.stats().axon_events, 0u);  // faulted cores absorb nothing
}

TEST(HostileInputs, ScheduleBeyondRunHorizonIsDeferredNotLost) {
  Network net(Geometry{1, 1, 1, 1});
  net.core(0).crossbar.set(0, 0);
  net.core(0).neuron[0].enabled = 1;
  net.core(0).neuron[0].threshold = 1;
  net.core(0).neuron[0].weight[0] = 1;
  InputSchedule in;
  in.add(10, 0, 0);
  in.finalize();
  tn::TrueNorthSimulator sim(net);
  VectorSink sink;
  sim.run(5, &in, &sink);  // ends before the event
  EXPECT_TRUE(sink.spikes().empty());
  sim.run(10, &in, &sink);  // continues through tick 10
  ASSERT_EQ(sink.spikes().size(), 1u);
  EXPECT_EQ(sink.spikes()[0].tick, 10);
}

TEST(Degenerate, EmptyNetworkRunsQuietly) {
  // A default-constructed network has every neuron enabled at threshold 1
  // with zero drive: all neurons update every tick yet nothing ever fires.
  Network net(Geometry{1, 1, 4, 4});
  for (auto* sim_kind : {"tn", "compass", "reference"}) {
    VectorSink sink;
    if (std::string(sim_kind) == "tn") {
      tn::TrueNorthSimulator sim(net);
      sim.run(10, nullptr, &sink);
      EXPECT_EQ(sim.stats().neuron_updates, 10u * 16 * core::kCoreSize);
    } else if (std::string(sim_kind) == "compass") {
      compass::Simulator sim(net, {.threads = 4});
      sim.run(10, nullptr, &sink);
    } else {
      core::ReferenceSimulator sim(net);
      sim.run(10, nullptr, &sink);
    }
    EXPECT_TRUE(sink.spikes().empty()) << sim_kind;
  }
}

TEST(Degenerate, MoreThreadsThanCores) {
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 2, 1};
  spec.seed = 55;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 10);
  tn::TrueNorthSimulator tn_sim(net);
  VectorSink want;
  tn_sim.run(15, &in, &want);
  compass::Simulator sim(net, {.threads = 8});  // 8 threads, 2 cores
  VectorSink got;
  sim.run(15, &in, &got);
  EXPECT_EQ(core::first_mismatch(want.spikes(), got.spikes()), -1);
}

TEST(Degenerate, SelfTargetingNeuronOscillates) {
  // A neuron that excites itself through its own core's crossbar: fires,
  // re-excites one tick later, forever — delay loops are well-defined.
  Network net(Geometry{1, 1, 1, 1});
  net.core(0).crossbar.set(7, 3);
  auto& p = net.core(0).neuron[3];
  p.enabled = 1;
  p.weight[0] = 1;
  p.threshold = 1;
  p.init_v = 1;  // kick-start
  p.target = {0, 7, 1};
  tn::TrueNorthSimulator sim(net);
  VectorSink sink;
  sim.run(20, nullptr, &sink);
  EXPECT_EQ(sink.spikes().size(), 20u);  // fires every tick
}

}  // namespace
}  // namespace nsc
