// Shared helpers for the conformance suites (test_equivalence,
// test_differential, test_resilience, test_dist): canonical backend runners,
// spike-stream comparison, the fuzzed network axes of the paper's Fig. 5
// sweep, and the "hard" multi-chip stochastic network the checkpoint tests
// stress. Keeping them here means every suite fuzzes the same population and
// compares with the same error reporting.
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <string_view>
#include <vector>

#include "src/compass/simulator.hpp"
#include "src/core/reference_sim.hpp"
#include "src/core/spike_sink.hpp"
#include "src/netgen/random_net.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/obs/obs.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc::testsup {

struct RunResult {
  std::vector<core::Spike> spikes;
  core::KernelStats stats;
};

inline RunResult run_reference(const core::Network& net, const core::InputSchedule* in,
                               core::Tick ticks) {
  core::ReferenceSimulator sim(net);
  core::VectorSink sink;
  sim.run(ticks, in, &sink);
  return {sink.spikes(), sim.stats()};
}

inline RunResult run_truenorth(const core::Network& net, const core::InputSchedule* in,
                               core::Tick ticks) {
  tn::TrueNorthSimulator sim(net);
  core::VectorSink sink;
  sim.run(ticks, in, &sink);
  return {sink.spikes(), sim.stats()};
}

inline RunResult run_compass(const core::Network& net, const core::InputSchedule* in,
                             core::Tick ticks, int threads) {
  compass::Simulator sim(net, {.threads = threads});
  core::VectorSink sink;
  sim.run(ticks, in, &sink);
  return {sink.spikes(), sim.stats()};
}

/// Spike-for-spike comparison with an index-of-first-divergence diagnostic.
inline void expect_spikes_equal(const std::vector<core::Spike>& want,
                                const std::vector<core::Spike>& got, const char* label) {
  const auto mismatch = core::first_mismatch(want, got);
  EXPECT_EQ(mismatch, -1) << label << ": sizes " << want.size() << " vs " << got.size()
                          << ", first mismatch at index " << mismatch;
}

/// Spike stream plus the cumulative kernel counters (§VI-A's 1:1 contract).
inline void expect_identical(const RunResult& a, const RunResult& b, const char* label) {
  expect_spikes_equal(a.spikes, b.spikes, label);
  EXPECT_EQ(a.stats.spikes, b.stats.spikes) << label;
  EXPECT_EQ(a.stats.sops, b.stats.sops) << label;
  EXPECT_EQ(a.stats.axon_events, b.stats.axon_events) << label;
  EXPECT_EQ(a.stats.neuron_updates, b.stats.neuron_updates) << label;
  EXPECT_EQ(a.stats.dropped_spikes, b.stats.dropped_spikes) << label;
}

/// Runs `sim_a` to the midpoint, snapshots it, restores the snapshot into
/// `sim_b`, finishes the run there, and returns the spliced spike stream.
/// Exercises both save/load and the post-restore re-derivation of the
/// event-driven worklists (they are derived state, absent from snapshots).
template <typename SimA, typename SimB>
std::vector<core::Spike> run_split(SimA& sim_a, SimB& sim_b, const core::InputSchedule* in,
                                   core::Tick ticks) {
  const core::Tick half = ticks / 2;
  core::VectorSink sink;
  sim_a.run(half, in, &sink);
  std::stringstream snap;
  sim_a.save_checkpoint(snap);
  sim_b.load_checkpoint(snap);
  sim_b.run(ticks - half, in, &sink);
  return sink.spikes();
}

/// Seeded point on the Fig. 5 fuzz axes: geometry (incl. one multichip
/// tiling), crossbar density, drive rate, stochastic modes on/off.
inline netgen::RandomNetSpec fuzz_spec(std::uint64_t seed) {
  netgen::RandomNetSpec spec;
  static const core::Geometry kGeoms[] = {core::Geometry{1, 1, 2, 2}, core::Geometry{1, 1, 3, 3},
                                          core::Geometry{2, 1, 2, 2}, core::Geometry{1, 1, 4, 2}};
  spec.geom = kGeoms[seed % 4];
  spec.seed = seed * 2654435761ULL + 7;
  spec.synapse_density = 0.08 + 0.04 * static_cast<double>(seed % 8);
  spec.input_drive_hz = 60.0 + 25.0 * static_cast<double>(seed % 5);
  spec.stochastic_modes = (seed % 2) == 0;
  return spec;
}

/// Multi-chip random network with stochastic neurons and the full delay
/// range — the hardest state to checkpoint (active delay buffers, PRNG
/// draws keyed by tick, inter-chip traffic).
inline core::Network hard_network() {
  netgen::RandomNetSpec spec;
  spec.geom = core::Geometry{2, 1, 4, 4};
  spec.seed = 77;
  spec.synapse_density = 0.3;
  return netgen::make_random(spec);
}

inline core::InputSchedule hard_inputs(const core::Network& net, core::Tick ticks) {
  netgen::RandomNetSpec spec;
  spec.geom = net.geom;
  spec.seed = 77;
  return netgen::make_poisson_inputs(spec, net, ticks);
}

/// Spikes with tick >= t.
inline std::vector<core::Spike> tail_from(const std::vector<core::Spike>& all, core::Tick t) {
  std::vector<core::Spike> out;
  for (const auto& s : all) {
    if (s.tick >= t) out.push_back(s);
  }
  return out;
}

inline std::uint64_t counter_value(const obs::Registry& reg, std::string_view name) {
  for (const auto& [n, v] : reg.counters()) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace nsc::testsup
