// Differential fuzz harness (satellites S1/S4 of the event-driven PR): seeded
// randomized networks spanning the paper's Fig. 5 sweep axes — firing rate ×
// synapses per axon — plus adversarial random nets covering delays 1–15, all
// four axon types, and the stochastic modes on and off. Every network must be
// spike-for-spike identical across the dense reference simulator, the Compass
// threaded simulator at several thread counts, and the TrueNorth architectural
// simulator, including across a mid-run checkpoint/restore — the scaled-down
// form of the paper's 413k-regression 1:1 methodology (§VI-A), re-run here
// against the event-driven worklist + hot-path fast loops.
//
// The backend runners, spike comparison, fuzz axes, and checkpoint-splice
// helper live in tests/test_support.hpp, shared with the equivalence,
// resilience, and distributed-conformance suites.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "tests/test_support.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::InputSchedule;
using core::Network;
using core::Spike;
using core::VectorSink;
using testsup::expect_spikes_equal;
using testsup::fuzz_spec;
using testsup::run_split;

std::vector<Spike> run_reference(const Network& net, const InputSchedule* in, core::Tick ticks) {
  return testsup::run_reference(net, in, ticks).spikes;
}

std::vector<Spike> run_truenorth(const Network& net, const InputSchedule* in, core::Tick ticks) {
  return testsup::run_truenorth(net, in, ticks).spikes;
}

std::vector<Spike> run_compass(const Network& net, const InputSchedule* in, core::Tick ticks,
                               int threads) {
  return testsup::run_compass(net, in, ticks, threads).spikes;
}

/// ~30 adversarial random networks (with ~20 characterization-grid networks
/// below: the harness's ~50-network budget), each checked across all three
/// expressions and three Compass thread counts; every fifth seed additionally
/// runs the mid-run checkpoint/restore leg across *different* thread counts.
class DifferentialFuzzRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzzRandom, AllExpressionsAgree) {
  const std::uint64_t seed = GetParam();
  const netgen::RandomNetSpec spec = fuzz_spec(seed);
  const Network net = netgen::make_random(spec);
  const core::Tick ticks = 40 + static_cast<core::Tick>(seed % 21);  // 40..60
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, ticks);

  const std::vector<Spike> ref = run_reference(net, &in, ticks);
  expect_spikes_equal(ref, run_truenorth(net, &in, ticks), "reference vs truenorth");
  for (const int threads : {1, 3, 4}) {
    expect_spikes_equal(ref, run_compass(net, &in, ticks, threads), "reference vs compass");
  }

  if (seed % 5 == 0) {
    // Mid-run snapshot: first half on 3 threads, restored second half on 4;
    // and the TrueNorth → Compass snapshot interchange the repo guarantees.
    compass::Simulator c3(net, {.threads = 3});
    compass::Simulator c4(net, {.threads = 4});
    expect_spikes_equal(ref, run_split(c3, c4, &in, ticks), "compass split 3->4");
    tn::TrueNorthSimulator tn_sim(net);
    compass::Simulator c2(net, {.threads = 2});
    expect_spikes_equal(ref, run_split(tn_sim, c2, &in, ticks), "tn -> compass split");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzRandom,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(DifferentialFuzz, RandomSweepCoversDelayAndAxonTypeAxes) {
  // The fuzz axes the issue names must actually occur in the generated
  // population: the full delay range 1..15 and all four axon types.
  std::set<int> delays;
  std::set<int> types;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Network net = netgen::make_random(fuzz_spec(seed));
    const auto ncores = static_cast<core::CoreId>(net.geom.total_cores());
    for (core::CoreId c = 0; c < ncores; ++c) {
      const core::CoreSpec& cs = net.core(c);
      for (int i = 0; i < core::kCoreSize; ++i) types.insert(cs.axon_type[i]);
      for (const auto& p : cs.neuron) {
        if (p.enabled != 0) delays.insert(p.target.delay);
      }
    }
  }
  for (int d = core::kMinDelay; d <= core::kMaxDelay; ++d) {
    EXPECT_TRUE(delays.count(d)) << "delay " << d << " never generated";
  }
  for (int g = 0; g < core::kAxonTypes; ++g) {
    EXPECT_TRUE(types.count(g)) << "axon type " << g << " never generated";
  }
}

/// ~20 points of the paper's Fig. 5 characterization grid (rate × synapses),
/// alternating threshold jitter, on a small recurrent geometry. These are the
/// "sensitive assay" networks: one wrong synaptic op diverges chaotically.
class DifferentialFuzzGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DifferentialFuzzGrid, AllExpressionsAgree) {
  const std::vector<netgen::GridPoint> grid = netgen::characterization_grid();
  const std::size_t idx = (GetParam() * 9) % grid.size();  // spread over the 88 points
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.rate_hz = grid[idx].rate_hz;
  spec.synapses_per_axon = grid[idx].synapses;
  spec.seed = 1000 + GetParam();
  spec.threshold_jitter = (GetParam() % 2) == 0;
  const Network net = netgen::make_recurrent(spec);

  const core::Tick ticks = 50;
  const std::vector<Spike> ref = run_reference(net, nullptr, ticks);
  expect_spikes_equal(ref, run_truenorth(net, nullptr, ticks), "reference vs truenorth");
  for (const int threads : {1, 3, 4}) {
    expect_spikes_equal(ref, run_compass(net, nullptr, ticks, threads), "reference vs compass");
  }
}

INSTANTIATE_TEST_SUITE_P(GridPoints, DifferentialFuzzGrid,
                         ::testing::Range<std::size_t>(0, 20));

/// Dense-end networks (>= 128 synapses per axon at high firing rates): the
/// regime where the SIMD kernel layer's kDense strategy — including the
/// fully-populated-row multiply-add batch at 256 syn/axon — carries the
/// whole synapse phase. The characterization grid above only samples this
/// corner sparsely, so it gets its own sweep: one wrong lane in any
/// accumulate tier diverges within a few ticks here.
struct DenseEndPoint {
  int rate_hz;
  int synapses;
  bool jitter;
};

class DifferentialFuzzDenseEnd : public ::testing::TestWithParam<DenseEndPoint> {};

TEST_P(DifferentialFuzzDenseEnd, AllExpressionsAgree) {
  const DenseEndPoint p = GetParam();
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.rate_hz = p.rate_hz;
  spec.synapses_per_axon = p.synapses;
  spec.seed = 5000 + static_cast<std::uint64_t>(p.rate_hz) * 1000 +
              static_cast<std::uint64_t>(p.synapses);
  spec.threshold_jitter = p.jitter;
  const Network net = netgen::make_recurrent(spec);

  const core::Tick ticks = 50;
  const std::vector<Spike> ref = run_reference(net, nullptr, ticks);
  EXPECT_FALSE(ref.empty()) << "dense-end net must actually spike";
  expect_spikes_equal(ref, run_truenorth(net, nullptr, ticks), "reference vs truenorth");
  for (const int threads : {1, 3, 4}) {
    expect_spikes_equal(ref, run_compass(net, nullptr, ticks, threads), "reference vs compass");
  }
  // The strategy choice is perf-only derived state: it must also survive a
  // mid-run checkpoint splice (profiles reset to kHybrid and re-learn).
  tn::TrueNorthSimulator tn_sim(net);
  compass::Simulator c4(net, {.threads = 4});
  expect_spikes_equal(ref, run_split(tn_sim, c4, nullptr, ticks), "tn -> compass split");
}

INSTANTIATE_TEST_SUITE_P(DensePoints, DifferentialFuzzDenseEnd,
                         ::testing::Values(DenseEndPoint{150, 128, true},
                                           DenseEndPoint{150, 128, false},
                                           DenseEndPoint{180, 192, true},
                                           DenseEndPoint{200, 256, true},
                                           DenseEndPoint{200, 256, false},
                                           DenseEndPoint{120, 224, true}));

// ---------------------------------------------------------------------------
// S4: a warm-restored simulator (kept running after save_checkpoint) and a
// cold-restored one (fresh object + load_checkpoint) must behave identically
// — the regression that pins the post-restore worklist re-derivation.
// ---------------------------------------------------------------------------

template <typename MakeSim>
void check_warm_vs_cold(const InputSchedule* in, MakeSim make_sim) {
  const core::Tick half = 25, rest = 25;
  auto warm = make_sim();
  VectorSink warmup;
  warm->run(half, in, &warmup);
  std::stringstream snap;
  warm->save_checkpoint(snap);

  auto cold = make_sim();
  cold->load_checkpoint(snap);

  VectorSink warm_sink, cold_sink;
  warm->run(rest, in, &warm_sink);
  cold->run(rest, in, &cold_sink);
  expect_spikes_equal(warm_sink.spikes(), cold_sink.spikes(), "warm vs cold restore");
  EXPECT_EQ(warm->now(), cold->now());
  EXPECT_EQ(warm->stats().spikes, cold->stats().spikes);
  EXPECT_EQ(warm->stats().sops, cold->stats().sops);
  EXPECT_EQ(warm->stats().neuron_updates, cold->stats().neuron_updates);
}

TEST(DifferentialRestore, WarmVsColdCompass) {
  const netgen::RandomNetSpec spec = fuzz_spec(12);
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 50);
  check_warm_vs_cold(&in, [&] {
    return std::make_unique<compass::Simulator>(net, compass::Config{.threads = 3});
  });
}

TEST(DifferentialRestore, WarmVsColdTrueNorth) {
  const netgen::RandomNetSpec spec = fuzz_spec(13);
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 50);
  check_warm_vs_cold(&in, [&] { return std::make_unique<tn::TrueNorthSimulator>(net); });
}

TEST(DifferentialRestore, WarmVsColdRecurrentSelfDriven) {
  // Self-driven recurrent net: after restore the only activity source is the
  // delay rings + potentials, so a worklist not re-derived from them would
  // visibly freeze the network.
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.rate_hz = 50;
  spec.synapses_per_axon = 64;
  spec.seed = 99;
  const Network net = netgen::make_recurrent(spec);
  check_warm_vs_cold(nullptr, [&] {
    return std::make_unique<compass::Simulator>(net, compass::Config{.threads = 2});
  });
  check_warm_vs_cold(nullptr, [&] { return std::make_unique<tn::TrueNorthSimulator>(net); });
}

}  // namespace
}  // namespace nsc
