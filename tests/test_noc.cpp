// Tests for mesh routing: DOR hop counts, chip-boundary crossings,
// fault-detour routing, and inter-chip traffic accounting.
#include <gtest/gtest.h>

#include "src/core/types.hpp"
#include "src/noc/route.hpp"
#include "src/noc/traffic.hpp"

namespace nsc::noc {
namespace {

using core::CoreId;
using core::Geometry;

TEST(RouteDor, LocalDeliveryIsZeroHops) {
  const Geometry g = core::truenorth_chip();
  const RouteInfo r = route_dor(g, 5, 5);
  EXPECT_EQ(r.hops, 0);
  EXPECT_EQ(r.chip_crossings, 0);
}

TEST(RouteDor, HopsEqualManhattan) {
  const Geometry g = core::truenorth_chip();
  const CoreId a = g.core_at(0, 3, 7);
  const CoreId b = g.core_at(0, 40, 60);
  const RouteInfo r = route_dor(g, a, b);
  EXPECT_EQ(r.hops, (40 - 3) + (60 - 7));
  EXPECT_EQ(r.hops, manhattan(g, a, b));
  EXPECT_EQ(r.chip_crossings, 0);
}

TEST(RouteDor, SymmetricHopCount) {
  const Geometry g{1, 1, 16, 16};
  const CoreId a = g.core_at(0, 1, 14);
  const CoreId b = g.core_at(0, 12, 2);
  EXPECT_EQ(route_dor(g, a, b).hops, route_dor(g, b, a).hops);
}

TEST(RouteDor, CountsChipCrossingsXThenY) {
  const Geometry g{2, 2, 4, 4};  // 2x2 chips of 4x4 cores
  const CoreId a = g.core_at(0, 0, 0);        // chip (0,0), global (0,0)
  const CoreId b = g.core_at(3, 3, 3);        // chip (1,1), global (7,7)
  const RouteInfo r = route_dor(g, a, b);
  EXPECT_EQ(r.hops, 14);
  EXPECT_EQ(r.chip_crossings, 2);  // one eastward, one southward
}

TEST(RouteDor, NoCrossingWithinChip) {
  const Geometry g{2, 1, 4, 4};
  const RouteInfo r = route_dor(g, g.core_at(1, 0, 0), g.core_at(1, 3, 3));
  EXPECT_EQ(r.chip_crossings, 0);
}

TEST(FaultSetTest, MarkAndQuery) {
  FaultSet f(16);
  EXPECT_TRUE(f.empty());
  f.mark(3);
  EXPECT_TRUE(f.is_faulted(3));
  EXPECT_FALSE(f.is_faulted(4));
  EXPECT_EQ(f.count(), 1);
}

TEST(DorPathBlocked, DetectsBlockOnXLeg) {
  const Geometry g{1, 1, 8, 8};
  FaultSet f(g.total_cores());
  f.mark(g.core_at(0, 3, 0));  // on the x path from (0,0) to (6,0)
  EXPECT_TRUE(dor_path_blocked(g, f, g.core_at(0, 0, 0), g.core_at(0, 6, 0)));
  EXPECT_FALSE(dor_path_blocked(g, f, g.core_at(0, 0, 1), g.core_at(0, 6, 1)));
}

TEST(DorPathBlocked, DetectsBlockOnYLegAndTurnCore) {
  const Geometry g{1, 1, 8, 8};
  FaultSet f(g.total_cores());
  f.mark(g.core_at(0, 5, 2));  // on the y leg at column 5
  EXPECT_TRUE(dor_path_blocked(g, f, g.core_at(0, 0, 0), g.core_at(0, 5, 4)));
  FaultSet f2(g.total_cores());
  f2.mark(g.core_at(0, 5, 0));  // the turn core itself
  EXPECT_TRUE(dor_path_blocked(g, f2, g.core_at(0, 0, 0), g.core_at(0, 5, 4)));
}

TEST(DorPathBlocked, DestinationNotCounted) {
  const Geometry g{1, 1, 8, 8};
  FaultSet f(g.total_cores());
  f.mark(g.core_at(0, 6, 0));
  EXPECT_FALSE(dor_path_blocked(g, f, g.core_at(0, 0, 0), g.core_at(0, 6, 0)));
}

TEST(RouteWithFaults, CleanPathMatchesDor) {
  const Geometry g{1, 1, 8, 8};
  FaultSet f(g.total_cores());
  f.mark(g.core_at(0, 7, 7));  // not on the path
  const CoreId a = g.core_at(0, 0, 0), b = g.core_at(0, 4, 4);
  const RouteInfo r = route_with_faults(g, f, a, b);
  EXPECT_EQ(r.hops, route_dor(g, a, b).hops);
}

TEST(RouteWithFaults, DetourAddsHopsButStaysShortest) {
  const Geometry g{1, 1, 8, 8};
  FaultSet f(g.total_cores());
  f.mark(g.core_at(0, 2, 0));  // force a sidestep on the x leg
  const CoreId a = g.core_at(0, 0, 0), b = g.core_at(0, 4, 0);
  const RouteInfo r = route_with_faults(g, f, a, b);
  EXPECT_TRUE(r.reachable);
  EXPECT_EQ(r.hops, 4 + 2);  // one step aside, one step back
}

TEST(RouteWithFaults, WallForcesLongWayOrUnreachable) {
  const Geometry g{1, 1, 4, 4};
  FaultSet f(g.total_cores());
  // Wall across x=1 (all rows): src column 0 fully cut off.
  for (int y = 0; y < 4; ++y) f.mark(g.core_at(0, 1, y));
  const RouteInfo r = route_with_faults(g, f, g.core_at(0, 0, 0), g.core_at(0, 3, 0));
  EXPECT_FALSE(r.reachable);
}

TEST(RouteWithFaults, DetourAroundPartialWall) {
  const Geometry g{1, 1, 5, 5};
  FaultSet f(g.total_cores());
  for (int y = 0; y < 4; ++y) f.mark(g.core_at(0, 2, y));  // gap at y = 4
  const RouteInfo r = route_with_faults(g, f, g.core_at(0, 0, 0), g.core_at(0, 4, 0));
  EXPECT_TRUE(r.reachable);
  EXPECT_EQ(r.hops, 4 + 8);  // down to row 4 and back up
}

TEST(InterChipTrafficTest, CountsPerLinkAndMax) {
  const Geometry g{2, 2, 2, 2};
  InterChipTraffic traffic(g);
  const CoreId a = g.core_at(0, 0, 0);  // chip (0,0)
  const CoreId b = g.core_at(3, 1, 1);  // chip (1,1)
  traffic.record_route(a, b);
  traffic.record_route(a, b);
  traffic.end_tick();
  EXPECT_EQ(traffic.total_crossings(), 4u);          // 2 packets × 2 crossings
  EXPECT_EQ(traffic.max_link_packets_per_tick(), 2u);
  EXPECT_EQ(traffic.link_total(0, LinkDir::kEast), 2u);   // chip0 → chip1
  EXPECT_EQ(traffic.link_total(1, LinkDir::kSouth), 2u);  // chip1 → chip3
  EXPECT_EQ(traffic.link_total(0, LinkDir::kWest), 0u);
}

TEST(InterChipTrafficTest, SingleChipNeverCounts) {
  const Geometry g{1, 1, 4, 4};
  InterChipTraffic traffic(g);
  traffic.record_route(0, 15);
  traffic.end_tick();
  EXPECT_EQ(traffic.total_crossings(), 0u);
}

TEST(InterChipTrafficTest, WestAndNorthDirections) {
  const Geometry g{2, 2, 2, 2};
  InterChipTraffic traffic(g);
  const CoreId a = g.core_at(3, 0, 0);  // chip (1,1)
  const CoreId b = g.core_at(0, 0, 0);  // chip (0,0)
  traffic.record_route(a, b);
  traffic.end_tick();
  EXPECT_EQ(traffic.link_total(3, LinkDir::kWest), 1u);
  EXPECT_EQ(traffic.link_total(2, LinkDir::kNorth), 1u);
}

TEST(InterChipTrafficTest, ResetClearsEverything) {
  const Geometry g{2, 1, 2, 2};
  InterChipTraffic traffic(g);
  traffic.record_route(g.core_at(0, 0, 0), g.core_at(1, 1, 1));
  traffic.end_tick();
  traffic.reset();
  EXPECT_EQ(traffic.total_crossings(), 0u);
  EXPECT_EQ(traffic.max_link_packets_per_tick(), 0u);
}

TEST(UniformTargets, MeanHopDistanceMatchesPaper) {
  // Paper §IV-B: uniformly random targets average 21.66 hops in each
  // dimension on the 64×64 grid; mean |Δ| of two uniform draws on [0,64)
  // is (64² − 1)/(3·64) ≈ 21.33.
  const Geometry g = core::truenorth_chip();
  double sum = 0.0;
  int n = 0;
  for (int a = 0; a < 64; ++a) {
    for (int b = 0; b < 64; ++b) {
      sum += std::abs(a - b);
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 21.66, 0.5);
  (void)g;
}

}  // namespace
}  // namespace nsc::noc
