// Unit tests for the utility substrate: bit rows, PRNGs, stats, barriers,
// thread pool, tables/CSV.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "src/util/barrier.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/bits.hpp"
#include "src/util/csv.hpp"
#include "src/util/prng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"

namespace nsc::util {
namespace {

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(~0ULL), 64);
  EXPECT_EQ(popcount64(0xF0F0ULL), 8);
}

TEST(Bits, LowestSetAndClear) {
  EXPECT_EQ(lowest_set(0b1000), 3);
  EXPECT_EQ(clear_lowest(0b1010), 0b1000U);
  EXPECT_EQ(ceil_div(7, 3), 3);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(BitRow256, SetTestClear) {
  BitRow256 r;
  EXPECT_FALSE(r.any());
  r.set(0);
  r.set(63);
  r.set(64);
  r.set(255);
  EXPECT_TRUE(r.test(0));
  EXPECT_TRUE(r.test(63));
  EXPECT_TRUE(r.test(64));
  EXPECT_TRUE(r.test(255));
  EXPECT_FALSE(r.test(1));
  EXPECT_EQ(r.count(), 4);
  r.clear(64);
  EXPECT_FALSE(r.test(64));
  EXPECT_EQ(r.count(), 3);
  r.reset();
  EXPECT_EQ(r.count(), 0);
}

TEST(BitRow256, ForEachSetAscending) {
  BitRow256 r;
  const std::vector<int> want = {3, 64, 65, 200, 255};
  for (int i : want) r.set(i);
  std::vector<int> got;
  r.for_each_set([&](int i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitRow256, OrAssign) {
  BitRow256 a, b;
  a.set(1);
  b.set(2);
  b.set(200);
  a |= b;
  EXPECT_EQ(a.count(), 3);
  EXPECT_TRUE(a.test(200));
}

TEST(CounterPrng, DeterministicAndKeyed) {
  const CounterPrng p(42);
  EXPECT_EQ(p.draw(1, 2, 3, 4), p.draw(1, 2, 3, 4));
  EXPECT_NE(p.draw(1, 2, 3, 4), p.draw(1, 2, 3, 5));
  EXPECT_NE(p.draw(1, 2, 3, 4), p.draw(1, 2, 4, 4));
  EXPECT_NE(p.draw(1, 2, 3, 4), CounterPrng(43).draw(1, 2, 3, 4));
}

TEST(CounterPrng, Bernoulli16Rate) {
  const CounterPrng p(7);
  const std::uint32_t p16 = 1 << 14;  // 1/4
  int hits = 0;
  const int n = 40000;
  for (int t = 0; t < n; ++t) hits += p.bernoulli16(0, 0, static_cast<std::uint64_t>(t), 0, p16);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(CounterPrng, DrawBitsRange) {
  const CounterPrng p(9);
  for (int t = 0; t < 1000; ++t) {
    EXPECT_LT(p.draw_bits(0, 0, static_cast<std::uint64_t>(t), 0, 8), 256u);
  }
}

TEST(GaloisLfsr16, FullPeriod) {
  GaloisLfsr16 lfsr(0x1u);
  std::set<std::uint16_t> seen;
  for (std::uint32_t i = 0; i < GaloisLfsr16::kPeriod; ++i) seen.insert(lfsr.next());
  EXPECT_EQ(seen.size(), GaloisLfsr16::kPeriod);  // maximal-length taps
  EXPECT_EQ(seen.count(0), 0u);                   // zero state unreachable
}

TEST(Xoshiro, BelowBoundAndUniformish) {
  Xoshiro rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(SampleDistinct, DistinctAndInRange) {
  Xoshiro rng(11);
  int out[64];
  sample_distinct(rng, 256, 64, out);
  std::set<int> s(out, out + 64);
  EXPECT_EQ(s.size(), 64u);
  EXPECT_GE(*s.begin(), 0);
  EXPECT_LT(*s.rbegin(), 256);
}

TEST(SampleDistinct, FullPermutation) {
  Xoshiro rng(3);
  int out[16];
  sample_distinct(rng, 16, 16, out);
  std::set<int> s(out, out + 16);
  EXPECT_EQ(s.size(), 16u);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(HistogramTest, QuantileLinear) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.1);
}

TEST(SpinBarrierTest, SynchronizesPhases) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[3] = {0, 0, 0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int ph = 0; ph < 3; ++ph) {
        ++phase_counts[ph];
        barrier.arrive_and_wait();
        // After the barrier every participant must have bumped this phase.
        EXPECT_EQ(phase_counts[ph].load(), kThreads);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ThreadPoolTest, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  for (int rep = 0; rep < 50; ++rep) {
    pool.run_all([&](int i) { ++hits[static_cast<std::size_t>(i)]; });
  }
  for (auto& h : hits) EXPECT_EQ(h.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadInline) {
  ThreadPool pool(1);
  int x = 0;
  pool.run_all([&](int i) { x = i + 1; });
  EXPECT_EQ(x, 1);
}

TEST(TableTest, AlignsAndPrints) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_numeric("beta", {2.5}, 3);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(FormatSig, Ranges) {
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(46.2, 3), "46.2");
  EXPECT_NE(format_sig(6.5e7, 2).find("e"), std::string::npos);
}

TEST(CsvTest, EscapesAndWrites) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  const std::string path = testing::TempDir() + "/nsc_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row(std::vector<double>{1.0, 2.0});
    EXPECT_EQ(w.rows(), 1u);
    EXPECT_THROW(w.add_row(std::vector<double>{1.0}), std::runtime_error);
  }
}

TEST(PrintGrid, EmitsAllCells) {
  std::ostringstream os;
  print_grid(os, "T", "x", "y", {1, 2}, {10, 20}, {{0.5, 1.5}, {2.5, 3.5}});
  const std::string out = os.str();
  for (const char* cell : {"0.50", "1.50", "2.50", "3.50"}) {
    EXPECT_NE(out.find(cell), std::string::npos) << cell << " missing in:\n" << out;
  }
}

// ---------------------------------------------------------------------------
// Property tests: the word-level BitRow256 iteration helpers the event-driven
// synaptic phase rests on, checked against naive per-bit oracles over random
// rows and the structural edge cases (empty, all-ones, word boundaries).
// ---------------------------------------------------------------------------

/// (row, mask) pairs: deterministic edge cases plus seeded random fills.
std::vector<std::pair<BitRow256, BitRow256>> word_iter_cases() {
  std::vector<std::pair<BitRow256, BitRow256>> cases;
  BitRow256 zero, ones, bounds;
  for (int i = 0; i < BitRow256::kBits; ++i) ones.set(i);
  for (int i : {0, 63, 64, 127, 128, 191, 192, 255}) bounds.set(i);
  BitRow256 even;
  for (int i = 0; i < BitRow256::kBits; i += 2) even.set(i);
  for (const BitRow256& row : {zero, ones, bounds, even}) {
    for (const BitRow256& mask : {zero, ones, bounds, even}) cases.emplace_back(row, mask);
  }
  Xoshiro rng(20260806);
  for (int n = 0; n < 64; ++n) {
    BitRow256 row, mask;
    // Sweep fill density so sparse (ctz-walk) and dense words both occur.
    const std::uint64_t row_p = 1 + rng.next_below(255);
    const std::uint64_t mask_p = 1 + rng.next_below(255);
    for (int i = 0; i < BitRow256::kBits; ++i) {
      if (rng.next_below(256) < row_p) row.set(i);
      if (rng.next_below(256) < mask_p) mask.set(i);
    }
    cases.emplace_back(row, mask);
  }
  return cases;
}

TEST(BitRow256Property, ForEachMaskedWordMatchesPerBitOracle) {
  for (const auto& [row, mask] : word_iter_cases()) {
    BitRow256 rebuilt;
    int last_base = -64;
    row.for_each_masked_word(mask, [&](int base, std::uint64_t w) {
      EXPECT_NE(w, 0u) << "zero word visited at base " << base;
      EXPECT_EQ(base % 64, 0);
      EXPECT_GT(base, last_base) << "bases must ascend";
      last_base = base;
      rebuilt.set_word(base / 64, w);
    });
    for (int i = 0; i < BitRow256::kBits; ++i) {
      EXPECT_EQ(rebuilt.test(i), row.test(i) && mask.test(i)) << "bit " << i;
    }
  }
}

TEST(BitRow256Property, ForEachSetMaskedMatchesPerBitOracle) {
  for (const auto& [row, mask] : word_iter_cases()) {
    std::vector<int> want;
    for (int i = 0; i < BitRow256::kBits; ++i) {
      if (row.test(i) && mask.test(i)) want.push_back(i);
    }
    std::vector<int> got;
    row.for_each_set_masked(mask, [&](int i) { got.push_back(i); });
    EXPECT_EQ(got, want);
  }
}

TEST(BitRow256Property, AndCountMatchesPerBitOracle) {
  for (const auto& [row, mask] : word_iter_cases()) {
    int want = 0;
    for (int i = 0; i < BitRow256::kBits; ++i) want += (row.test(i) && mask.test(i)) ? 1 : 0;
    EXPECT_EQ(row.and_count(mask), want);
  }
}

TEST(BitRow256Property, OrWordMatchesPerBitSets) {
  Xoshiro rng(77);
  for (int n = 0; n < 32; ++n) {
    const int wi = static_cast<int>(rng.next_below(BitRow256::kWords));
    const std::uint64_t bits = rng.next() & rng.next();  // biased toward sparse
    BitRow256 a, b;
    a.or_word(wi, bits);
    for (int k = 0; k < 64; ++k) {
      if ((bits >> k) & 1U) b.set(wi * 64 + k);
    }
    EXPECT_EQ(a, b);
  }
  // Edge cases: OR of zero is a no-op; OR of all-ones fills the word exactly.
  BitRow256 r;
  r.or_word(2, 0);
  EXPECT_FALSE(r.any());
  r.or_word(3, ~0ULL);
  EXPECT_EQ(r.count(), 64);
  EXPECT_TRUE(r.test(192));
  EXPECT_TRUE(r.test(255));
  EXPECT_FALSE(r.test(191));
}

TEST(BitsProperty, Popcount64MatchesPerBitOracle) {
  Xoshiro rng(11);
  for (const std::uint64_t w :
       {std::uint64_t{0}, ~std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{1} << 63,
        rng.next(), rng.next(), rng.next() & rng.next(), rng.next() | rng.next()}) {
    int want = 0;
    for (int k = 0; k < 64; ++k) want += static_cast<int>((w >> k) & 1U);
    EXPECT_EQ(popcount64(w), want) << "w=" << w;
  }
}

}  // namespace
}  // namespace nsc::util
