// Tests for the liquid state machine: reservoir validity, fading memory,
// state separability, and the headline property — temporal patterns that a
// timing-blind readout cannot separate are classified through the reservoir.
#include <gtest/gtest.h>

#include "src/apps/lsm.hpp"
#include "src/analysis/lint.hpp"

namespace nsc::apps {
namespace {

TEST(Lsm, ReservoirIsValidAndRecurrent) {
  const Lsm lsm = make_lsm({});
  EXPECT_TRUE(analysis::clean_at(lsm.reservoir));
  // Every neuron projects back into the reservoir core.
  for (const auto& p : lsm.reservoir.core(0).neuron) {
    EXPECT_TRUE(p.target.valid());
    EXPECT_EQ(p.target.core, 0u);
    EXPECT_GE(p.target.axon, 32);  // never onto an input axon
  }
}

TEST(Lsm, TemplatesAreTimingOnly) {
  LsmConfig cfg;
  const Lsm lsm = make_lsm(cfg);
  ASSERT_EQ(lsm.templates.size(), static_cast<std::size_t>(cfg.classes));
  for (const auto& cls : lsm.templates) {
    for (const auto& channel : cls) {
      EXPECT_EQ(static_cast<int>(channel.size()), cfg.spikes_per_channel);
    }
  }
  // Different classes place spikes at different ticks somewhere.
  EXPECT_NE(lsm.templates[0], lsm.templates[1]);
}

TEST(Lsm, SamplesAreDeterministicPerSeed) {
  const Lsm lsm = make_lsm({});
  const auto a = make_lsm_sample(lsm, 1, 42);
  const auto b = make_lsm_sample(lsm, 1, 42);
  ASSERT_EQ(a.size(), b.size());
  const auto c = make_lsm_sample(lsm, 1, 43);
  EXPECT_NE(a.size() == c.size() && std::equal(a.events().begin(), a.events().end(),
                                               c.events().begin()),
            true);
}

TEST(Lsm, ReservoirHasFadingMemory) {
  // The same sample produces the same state; the empty input produces a
  // near-silent state (activity requires drive — no runaway self-excitation).
  const Lsm lsm = make_lsm({});
  const auto in = make_lsm_sample(lsm, 0, 7);
  const auto s1 = reservoir_state(lsm, in);
  const auto s2 = reservoir_state(lsm, in);
  EXPECT_EQ(s1, s2);
  core::InputSchedule quiet;
  quiet.finalize();
  const auto s0 = reservoir_state(lsm, quiet);
  float driven = 0, silent = 0;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    driven += s1[i];
    silent += s0[i];
  }
  EXPECT_GT(driven, 4 * silent + 0.1f);
}

TEST(Lsm, ReservoirSeparatesTemporalClassesWhereCountsCannot) {
  LsmConfig cfg;
  cfg.seed = 3;
  const Lsm lsm = make_lsm(cfg);

  // Timing-blind baseline: per-channel counts are identical across classes
  // by construction (up to drop noise) — near chance (25%).
  const train::Dataset base_train = make_lsm_dataset(lsm, 20, false, 100);
  const train::Dataset base_test = make_lsm_dataset(lsm, 10, false, 999);
  const auto base_model = train::train_perceptron(base_train, {.epochs = 10});
  const double base_acc = base_model.accuracy(base_test);
  EXPECT_LT(base_acc, 0.55);

  // Reservoir states: linearly separable.
  const train::Dataset res_train = make_lsm_dataset(lsm, 20, true, 100);
  const train::Dataset res_test = make_lsm_dataset(lsm, 10, true, 999);
  const auto res_model = train::train_perceptron(res_train, {.epochs = 10});
  const double res_acc = res_model.accuracy(res_test);
  EXPECT_GT(res_acc, 0.8) << "baseline was " << base_acc;
  EXPECT_GT(res_acc, base_acc + 0.2);
}

}  // namespace
}  // namespace nsc::apps
