# Runs a command and fails unless it exits with exactly the expected code.
# ctest's WILL_FAIL only distinguishes zero from non-zero; the nsc_lint CLI
# contract separates warn-gate failures (1) from error findings (2).
#
#   cmake -DEXPECT=2 "-DCMD=/path/to/nsc_lint --net bad.nsc" -P check_exit.cmake
if(NOT DEFINED EXPECT OR NOT DEFINED CMD)
  message(FATAL_ERROR "usage: cmake -DEXPECT=N -DCMD=\"prog args...\" -P check_exit.cmake")
endif()
separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(COMMAND ${cmd_list} RESULT_VARIABLE rc)
if(NOT rc EQUAL "${EXPECT}")
  message(FATAL_ERROR "expected exit code ${EXPECT}, got '${rc}' from: ${CMD}")
endif()
