// Tests for the AER event-file format: round trips for input schedules and
// spike records, format rejection, and an end-to-end record/replay loop.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/aer.hpp"
#include "src/core/spike_sink.hpp"
#include "src/netgen/random_net.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc::core {
namespace {

TEST(Aer, InputScheduleRoundTrip) {
  InputSchedule in;
  in.add(5, 3, 200);
  in.add(0, 0, 0);
  in.add(5, 3, 10);
  in.finalize();
  std::stringstream buf;
  save_aer(in, buf);
  const InputSchedule loaded = load_aer_inputs(buf);
  ASSERT_EQ(loaded.size(), in.size());
  EXPECT_EQ(loaded.at(0).size(), 1u);
  EXPECT_EQ(loaded.at(5).size(), 2u);
  EXPECT_EQ(loaded.at(5)[1].axon, 200);
}

TEST(Aer, SpikeRoundTrip) {
  const std::vector<Spike> spikes = {{0, 1, 2}, {7, 100, 255}, {7, 100, 0}};
  std::stringstream buf;
  save_aer(spikes, buf);
  const std::vector<Spike> loaded = load_aer_spikes(buf);
  EXPECT_EQ(loaded, spikes);
}

TEST(Aer, EmptyFiles) {
  std::stringstream buf;
  save_aer(std::vector<Spike>{}, buf);
  EXPECT_TRUE(load_aer_spikes(buf).empty());
}

TEST(Aer, RejectsGarbage) {
  std::stringstream buf("definitely not an AER file");
  EXPECT_THROW((void)load_aer_inputs(buf), std::runtime_error);
}

TEST(Aer, RejectsTruncated) {
  InputSchedule in;
  in.add(1, 2, 3);
  in.finalize();
  std::stringstream buf;
  save_aer(in, buf);
  std::string data = buf.str();
  data.resize(data.size() - 4);
  std::stringstream cut(data);
  EXPECT_THROW((void)load_aer_inputs(cut), std::runtime_error);
}

TEST(Aer, RecordReplayReproducesRun) {
  // Record a run's output spikes to AER; replaying the same inputs must
  // reproduce them exactly (the record/replay loop used with real boards).
  netgen::RandomNetSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.seed = 12;
  const Network net = netgen::make_random(spec);
  const InputSchedule in = netgen::make_poisson_inputs(spec, net, 20);

  std::stringstream in_file;
  save_aer(in, in_file);

  VectorSink first;
  {
    tn::TrueNorthSimulator sim(net);
    sim.run(30, &in, &first);
  }
  std::stringstream out_file;
  save_aer(first.spikes(), out_file);

  const InputSchedule replay_in = load_aer_inputs(in_file);
  VectorSink second;
  {
    tn::TrueNorthSimulator sim(net);
    sim.run(30, &replay_in, &second);
  }
  EXPECT_EQ(load_aer_spikes(out_file), second.spikes());
}

}  // namespace
}  // namespace nsc::core
