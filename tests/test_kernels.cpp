// The SIMD kernel layer's exactness contract (src/kernels/kernels.hpp):
// every dispatch tier computes identical int32 results lane for lane, so
// spike output — and therefore every golden trace hash — cannot depend on
// the host ISA or on NSC_FORCE_ISA. Two layers of proof:
//
//  1. The forced-ISA equivalence matrix: full simulations of networks
//     spanning the Fig. 5 density axes (including the fully-populated
//     256-synapse corner that exercises the kDense full-row batch path),
//     run under each forced tier across the tn / compass (1, 3, 4 threads)
//     / replica backends, must produce the identical trace hash the scalar
//     tier produces.
//
//  2. Per-kernel property tests: each tier's sweep_badmask /
//     accumulate_word / accumulate_row / accumulate_core checked against an
//     independent int64 oracle on random lanes, the int32 clamp boundaries,
//     and the ±2^20 hot-envelope edges (where bad-mask extraction must flip
//     on exact >= / <= equality).
//
// kernels_for demotes a tier the CPU cannot execute to the best supported
// one at or below it, so the matrix is safe to run anywhere; on hosts
// without AVX2 the avx2 leg degenerates to re-checking a lower tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "src/kernels/kernels.hpp"
#include "src/replica/batch.hpp"
#include "src/util/prng.hpp"
#include "tests/test_support.hpp"

namespace nsc {
namespace {

using core::Geometry;
using core::InputSchedule;
using core::Network;
using core::Spike;
using core::VectorSink;
using kernels::Isa;
using kernels::Kernels;

constexpr Isa kAllTiers[] = {Isa::kScalar, Isa::kSwar, Isa::kSse, Isa::kAvx2};
constexpr const char* kTierNames[] = {"scalar", "swar", "sse", "avx2"};

/// Scoped NSC_FORCE_ISA override. Backends re-read the variable at
/// construction, so each simulator built inside the scope runs the forced
/// tier (after demotion).
class ForcedIsa {
 public:
  explicit ForcedIsa(const char* name) { setenv("NSC_FORCE_ISA", name, 1); }
  ~ForcedIsa() { unsetenv("NSC_FORCE_ISA"); }
  ForcedIsa(const ForcedIsa&) = delete;
  ForcedIsa& operator=(const ForcedIsa&) = delete;
};

// ---------------------------------------------------------------------------
// 1. Forced-ISA equivalence matrix.
// ---------------------------------------------------------------------------

struct MatrixNet {
  const char* name;
  Network net;
  InputSchedule inputs;
  bool has_inputs;
};

/// The density axis: two adversarial random nets (one stochastic multichip)
/// plus two dense recurrent points — 128 syn/row and the fully-populated
/// 256-syn corner whose crossbar rows are all-ones (the kDense full-row
/// batch path).
std::vector<MatrixNet> matrix_nets() {
  std::vector<MatrixNet> nets;
  for (const std::uint64_t seed : {3ULL, 6ULL}) {
    const netgen::RandomNetSpec spec = testsup::fuzz_spec(seed);
    Network net = netgen::make_random(spec);
    InputSchedule in = netgen::make_poisson_inputs(spec, net, 40);
    nets.push_back({seed == 3 ? "random_s3" : "random_s6", std::move(net), std::move(in), true});
  }
  for (const int syn : {128, 256}) {
    netgen::RecurrentSpec spec;
    spec.geom = Geometry{1, 1, 2, 2};
    spec.rate_hz = syn == 128 ? 150 : 200;
    spec.synapses_per_axon = syn;
    spec.seed = 4242 + static_cast<std::uint64_t>(syn);
    const Network net = netgen::make_recurrent(spec);
    nets.push_back({syn == 128 ? "dense_128" : "dense_256", net, InputSchedule{}, false});
  }
  return nets;
}

struct MatrixHashes {
  std::uint64_t tn = 0;
  std::uint64_t compass[3] = {0, 0, 0};  // threads 1, 3, 4.
  std::uint64_t replica = 0;
  std::uint64_t spikes = 0;
};

MatrixHashes run_matrix(const MatrixNet& m, core::Tick ticks) {
  const InputSchedule* in = m.has_inputs ? &m.inputs : nullptr;
  MatrixHashes h;
  {
    const auto r = testsup::run_truenorth(m.net, in, ticks);
    h.tn = core::trace_hash(r.spikes);
    h.spikes = r.spikes.size();
  }
  const int kThreads[3] = {1, 3, 4};
  for (int t = 0; t < 3; ++t) {
    h.compass[t] = core::trace_hash(testsup::run_compass(m.net, in, ticks, kThreads[t]).spikes);
  }
  {
    replica::BatchSimulator batch(m.net, {.replicas = 2, .threads = 2});
    const InputSchedule* ins[2] = {in, in};
    VectorSink sinks[2];
    core::SpikeSink* sink_ptrs[2] = {&sinks[0], &sinks[1]};
    batch.run(ticks, m.has_inputs ? ins : nullptr, sink_ptrs);
    h.replica = core::trace_hash(sinks[0].spikes());
    // Both replicas ran the same network + inputs: identical by construction.
    EXPECT_EQ(h.replica, core::trace_hash(sinks[1].spikes()));
  }
  return h;
}

TEST(ForcedIsaMatrix, AllTiersAllBackendsIdenticalTraceHashes) {
  const std::vector<MatrixNet> nets = matrix_nets();
  constexpr core::Tick kTicks = 40;
  for (const MatrixNet& m : nets) {
    MatrixHashes want;
    {
      ForcedIsa force("scalar");
      want = run_matrix(m, kTicks);
    }
    // A silent network proves nothing; every matrix net must actually spike.
    EXPECT_GT(want.spikes, 0U) << m.name;
    // The backends must agree with each other under the scalar tier too.
    for (int t = 0; t < 3; ++t) EXPECT_EQ(want.tn, want.compass[t]) << m.name;
    EXPECT_EQ(want.tn, want.replica) << m.name;

    for (int tier = 1; tier < 4; ++tier) {
      ForcedIsa force(kTierNames[tier]);
      const MatrixHashes got = run_matrix(m, kTicks);
      EXPECT_EQ(want.tn, got.tn) << m.name << " tn tier=" << kTierNames[tier];
      for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(want.compass[t], got.compass[t])
            << m.name << " compass tier=" << kTierNames[tier];
      }
      EXPECT_EQ(want.replica, got.replica) << m.name << " replica tier=" << kTierNames[tier];
      EXPECT_EQ(want.spikes, got.spikes) << m.name << " tier=" << kTierNames[tier];
    }
  }
}

TEST(ForcedIsaMatrix, ForcedTierIsReportedInObsCounters) {
  // The kernel.isa_<tier> marker must name the tier actually dispatched —
  // the forced one after demotion, so the check is host-independent.
  netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 2, 2};
  spec.rate_hz = 100;
  spec.synapses_per_axon = 64;
  spec.seed = 7;
  const Network net = netgen::make_recurrent(spec);
  for (int tier = 0; tier < 4; ++tier) {
    ForcedIsa force(kTierNames[tier]);
    const Isa resolved = kernels::kernels_for(kAllTiers[tier]).isa;
    compass::Simulator sim(net, {.threads = 1});
    VectorSink sink;
    sim.run(5, nullptr, &sink);
    const std::string name = std::string("kernel.isa_") + kernels::isa_name(resolved);
    EXPECT_EQ(testsup::counter_value(sim.metrics(), name), 1U) << kTierNames[tier];
  }
}

TEST(ForcedIsaMatrix, UnknownForceSpellingFallsBackToBestSupported) {
  ForcedIsa force("not-a-tier");
  EXPECT_EQ(kernels::select_kernels().isa, kernels::best_supported_isa());
}

TEST(ForcedIsaMatrix, DemotionNeverExceedsForcedTier) {
  for (int tier = 0; tier < 4; ++tier) {
    const Kernels& k = kernels::kernels_for(kAllTiers[tier]);
    EXPECT_LE(static_cast<int>(k.isa), tier);
    EXPECT_LE(static_cast<int>(k.isa), static_cast<int>(kernels::best_supported_isa()));
  }
}

// ---------------------------------------------------------------------------
// 2. Per-kernel property tests against an int64 oracle.
// ---------------------------------------------------------------------------

constexpr std::int32_t kEnv = core::kHotPotentialBound;  // ±2^20 hot envelope.

std::int64_t clamp64(std::int64_t x) {
  if (x > core::kPotentialMax) return core::kPotentialMax;
  if (x < core::kPotentialMin) return core::kPotentialMin;
  return x;
}

/// A signed draw in [-bound, bound], with the exact edges over-sampled so
/// the >= / <= equality cases actually occur.
std::int32_t edgy(util::Xoshiro& rng, std::int32_t bound) {
  switch (rng.next_below(8)) {
    case 0:
      return bound;
    case 1:
      return -bound;
    case 2:
      return core::kPotentialMax;
    case 3:
      return core::kPotentialMin;
    default:
      return static_cast<std::int32_t>(rng.next_below(2 * static_cast<std::uint64_t>(bound) + 1)) -
             bound;
  }
}

TEST(KernelProperties, SweepBadmaskMatchesInt64Oracle) {
  util::Xoshiro rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    alignas(32) std::int32_t v0[core::kCoreSize];
    alignas(32) std::int32_t acc[core::kCoreSize];
    alignas(32) std::int32_t hot[core::kHotStride];
    for (int j = 0; j < core::kCoreSize; ++j) {
      v0[j] = edgy(rng, kEnv);
      acc[j] = edgy(rng, kEnv);
      hot[j] = edgy(rng, core::kHotLeakBound);                      // leak row.
      hot[core::kCoreSize + j] = edgy(rng, kEnv);                   // alpha row.
      hot[2 * core::kCoreSize + j] = edgy(rng, kEnv);               // floor_le row.
    }
    const bool with_acc = (trial % 2) == 0;

    std::int32_t want_v[core::kCoreSize];
    std::uint64_t want_bad[4] = {0, 0, 0, 0};
    for (int j = 0; j < core::kCoreSize; ++j) {
      std::int64_t x = v0[j];
      if (with_acc) x = clamp64(x + acc[j]);
      x = clamp64(x + hot[j]);
      want_v[j] = static_cast<std::int32_t>(x);
      const bool bad = x >= hot[core::kCoreSize + j] || x <= hot[2 * core::kCoreSize + j];
      if (bad) want_bad[j / 64] |= std::uint64_t{1} << (j % 64);
    }

    for (const Isa tier : kAllTiers) {
      const Kernels& k = kernels::kernels_for(tier);
      std::int32_t v[core::kCoreSize];
      std::uint64_t bad[4] = {0, 0, 0, 0};
      for (int j = 0; j < core::kCoreSize; ++j) v[j] = v0[j];
      k.sweep_badmask(v, with_acc ? acc : nullptr, hot, bad);
      for (int w = 0; w < 4; ++w) {
        EXPECT_EQ(bad[w], want_bad[w]) << "tier " << kernels::isa_name(k.isa) << " word " << w;
      }
      for (int j = 0; j < core::kCoreSize; ++j) {
        ASSERT_EQ(v[j], want_v[j]) << "tier " << kernels::isa_name(k.isa) << " lane " << j;
      }
    }
  }
}

TEST(KernelProperties, AccumulateWordAndRowMatchInt64Oracle) {
  util::Xoshiro rng(202);
  for (int trial = 0; trial < 60; ++trial) {
    alignas(32) std::int32_t acc0[core::kCoreSize];
    alignas(32) std::int16_t wrow[core::kCoreSize];
    std::uint64_t bits[4];
    for (int j = 0; j < core::kCoreSize; ++j) {
      acc0[j] = edgy(rng, kEnv);
      wrow[j] = static_cast<std::int16_t>(static_cast<std::int32_t>(rng.next_below(65536)) -
                                          32768);
    }
    for (auto& b : bits) {
      b = rng.next();
      if (trial % 5 == 0) b = ~std::uint64_t{0};  // Fully-dense words.
      if (trial % 7 == 0) b = 0;
    }

    std::int64_t want[core::kCoreSize];
    for (int j = 0; j < core::kCoreSize; ++j) {
      want[j] = acc0[j];
      if ((bits[j / 64] >> (j % 64)) & 1U) want[j] += wrow[j];
      ASSERT_EQ(want[j], static_cast<std::int32_t>(want[j]));  // No int32 overflow.
    }

    for (const Isa tier : kAllTiers) {
      const Kernels& k = kernels::kernels_for(tier);
      std::int32_t a[core::kCoreSize];
      // Per-word form.
      for (int j = 0; j < core::kCoreSize; ++j) a[j] = acc0[j];
      for (int w = 0; w < 4; ++w) k.accumulate_word(a + w * 64, wrow + w * 64, bits[w]);
      for (int j = 0; j < core::kCoreSize; ++j) {
        ASSERT_EQ(a[j], want[j]) << "word tier " << kernels::isa_name(k.isa) << " lane " << j;
      }
      // Whole-row form must be the identical grouping.
      for (int j = 0; j < core::kCoreSize; ++j) a[j] = acc0[j];
      k.accumulate_row(a, wrow, bits);
      for (int j = 0; j < core::kCoreSize; ++j) {
        ASSERT_EQ(a[j], want[j]) << "row tier " << kernels::isa_name(k.isa) << " lane " << j;
      }
    }
  }
}

TEST(KernelProperties, AccumulateCoreMatchesInt64Oracle) {
  util::Xoshiro rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    // A random crossbar mixing empty, sparse, dense, and fully-populated
    // rows — the last is what the tiers may batch per axon type, so it must
    // be well represented.
    util::BitRow256 xbar[core::kCoreSize];
    std::uint16_t rowpop[core::kCoreSize];
    std::uint8_t types[core::kCoreSize];
    alignas(32) std::int16_t wt[core::kAxonTypes * core::kCoreSize];
    alignas(32) std::int32_t acc0[core::kCoreSize];
    for (int i = 0; i < core::kCoreSize; ++i) {
      xbar[i].reset();
      switch (rng.next_below(4)) {
        case 0:
          break;  // Empty row.
        case 1:
          for (int w = 0; w < 4; ++w) xbar[i].set_word(w, ~std::uint64_t{0});  // Full row.
          break;
        case 2:  // Sparse.
          for (int b = 0; b < 8; ++b) xbar[i].set(static_cast<int>(rng.next_below(256)));
          break;
        default:  // Dense but partial.
          for (int w = 0; w < 4; ++w) xbar[i].set_word(w, rng.next() | rng.next());
          if (xbar[i].count() == core::kCoreSize) xbar[i].clear(0);
          break;
      }
      rowpop[i] = static_cast<std::uint16_t>(xbar[i].count());
      types[i] = static_cast<std::uint8_t>(rng.next_below(core::kAxonTypes));
    }
    for (int j = 0; j < core::kAxonTypes * core::kCoreSize; ++j) {
      wt[j] = static_cast<std::int16_t>(static_cast<std::int32_t>(rng.next_below(513)) - 256);
    }
    for (int j = 0; j < core::kCoreSize; ++j) acc0[j] = edgy(rng, kEnv);

    // A random ascending active-axon subset.
    std::int16_t axons[core::kCoreSize];
    int n = 0;
    for (int i = 0; i < core::kCoreSize; ++i) {
      if (rng.next_below(4) != 0) axons[n++] = static_cast<std::int16_t>(i);
    }

    std::int64_t want[core::kCoreSize];
    for (int j = 0; j < core::kCoreSize; ++j) want[j] = acc0[j];
    for (int k = 0; k < n; ++k) {
      const int i = axons[k];
      const std::int16_t* wrow = wt + static_cast<std::size_t>(types[i]) * core::kCoreSize;
      for (int j = 0; j < core::kCoreSize; ++j) {
        if (xbar[i].test(j)) want[j] += wrow[j];
      }
    }
    for (int j = 0; j < core::kCoreSize; ++j) {
      ASSERT_EQ(want[j], static_cast<std::int32_t>(want[j]));  // No int32 overflow.
    }

    for (const Isa tier : kAllTiers) {
      const Kernels& k = kernels::kernels_for(tier);
      alignas(32) std::int32_t a[core::kCoreSize];
      for (int j = 0; j < core::kCoreSize; ++j) a[j] = acc0[j];
      k.accumulate_core(a, wt, xbar, types, rowpop, axons, n);
      for (int j = 0; j < core::kCoreSize; ++j) {
        ASSERT_EQ(a[j], want[j]) << "tier " << kernels::isa_name(k.isa) << " lane " << j
                                 << " trial " << trial;
      }
    }
  }
}

TEST(KernelProperties, AccumulateWordClampFreedomAtEnvelopeEdge) {
  // The accumulate kernels are add-only (no clamp): starting exactly at the
  // ±2^20 envelope edge plus the extreme weight must round-trip through
  // every tier without saturating — saturation here would silently diverge
  // from the generic path, which clamps later in the sweep.
  alignas(32) std::int16_t wrow[core::kCoreSize];
  std::uint64_t bits[4] = {~std::uint64_t{0}, ~std::uint64_t{0}, ~std::uint64_t{0},
                           ~std::uint64_t{0}};
  for (int j = 0; j < core::kCoreSize; ++j) {
    wrow[j] = (j % 2) == 0 ? std::int16_t{32767} : std::int16_t{-32768};
  }
  for (const Isa tier : kAllTiers) {
    const Kernels& k = kernels::kernels_for(tier);
    alignas(32) std::int32_t a[core::kCoreSize];
    for (int j = 0; j < core::kCoreSize; ++j) a[j] = (j % 2) == 0 ? kEnv : -kEnv;
    k.accumulate_word(a, wrow, bits[0]);
    k.accumulate_word(a + 64, wrow + 64, bits[1]);
    k.accumulate_word(a + 128, wrow + 128, bits[2]);
    k.accumulate_word(a + 192, wrow + 192, bits[3]);
    for (int j = 0; j < core::kCoreSize; ++j) {
      const std::int32_t want = ((j % 2) == 0 ? kEnv + 32767 : -kEnv - 32768);
      ASSERT_EQ(a[j], want) << "tier " << kernels::isa_name(k.isa) << " lane " << j;
    }
  }
}

}  // namespace
}  // namespace nsc
