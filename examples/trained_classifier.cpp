// Train-offline / deploy-on-chip example (paper Fig. 2's ecosystem loop):
// a perceptron is trained in floating point, quantized to the chip's
// 4-level-per-neuron weight representation, emitted as a classifier corelet,
// and evaluated as a spiking network — accuracy before and after.
//
//   $ ./trained_classifier
#include <cstdio>

#include "src/train/perceptron.hpp"

int main() {
  using namespace nsc::train;

  // 1. Data: 8×8 binary patterns in four classes, 5% flip noise.
  const Dataset train_set = make_pattern_dataset(60, 0.05, 42);
  const Dataset test_set = make_pattern_dataset(25, 0.05, 1234);
  std::printf("dataset: %zu train / %zu test samples, %d features, %d classes\n",
              train_set.size(), test_set.size(), train_set.features(), train_set.classes);

  // 2. Train offline (float).
  const LinearModel model = train_perceptron(train_set);
  std::printf("float perceptron:  train %.1f%%   test %.1f%%\n",
              100.0 * model.accuracy(train_set), 100.0 * model.accuracy(test_set));

  // 3. Quantize to the chip representation and emit a corelet.
  const ClassifierCorelet clf = emit_classifier(model);
  std::printf("emitted corelet: 1 core, %d features x 4 typed axons, %d class neurons,"
              " threshold %d\n", clf.features, clf.classes, clf.threshold);

  // Show one class's quantized weights.
  const auto q = quantize_row(model.w[0], 16.0f / 1.0f);
  std::printf("class-0 weight levels (pre-normalization grid): %d %d %d %d\n", q.level[0],
              q.level[1], q.level[2], q.level[3]);

  // 4. Deploy: run the spiking classifier on the test set.
  const double spiking = spiking_accuracy(clf, test_set);
  std::printf("spiking deployment: test %.1f%%  (rate-coded inputs, 48 ticks/sample)\n",
              100.0 * spiking);
  std::printf("\nThe float model and its TrueNorth deployment agree to within a few points —\n"
              "the \"train off-line, run unchanged on hardware\" workflow of the paper.\n");
  return 0;
}
