// Multi-object detection & classification demo: the NeoVision-style
// What/Where system on synthetic labeled video (paper §IV-B).
//
//   $ ./detection_demo
//
// Shows the full application loop: scene → spike encoding (with the
// frame-lagged tap for the transient Where network) → TrueNorth execution →
// What/Where binding into labeled boxes → precision/recall scoring.
#include <cstdio>

#include "src/apps/app_common.hpp"
#include "src/apps/neovision.hpp"
#include "src/core/spike_sink.hpp"
#include "src/vision/image.hpp"

int main() {
  using namespace nsc;

  apps::AppConfig cfg;
  cfg.img_w = 64;
  cfg.img_h = 64;
  cfg.frames = 8;
  cfg.ticks_per_frame = 33;
  cfg.scene_objects = 2;
  cfg.seed = 4;

  std::printf("building What/Where detection network...\n");
  const apps::NeovisionApp app = apps::make_neovision_app(cfg);
  std::printf("  %d cores, %llu neurons; %dx%d regions of %dx%d px\n",
              app.net.used_cores(), static_cast<unsigned long long>(app.net.neurons()),
              app.region_cols, app.region_rows, app.region_w, app.region_h);

  core::WindowedCountSink sink(static_cast<std::uint64_t>(app.net.network().geom.neurons()),
                               app.ticks_per_frame);
  const apps::AppRunResult run = apps::run_on_truenorth(app.net, &sink);
  std::printf("ran %llu ticks (%.1f ms wall): %llu spikes\n\n",
              static_cast<unsigned long long>(run.stats.ticks), 1e3 * run.wall_seconds,
              static_cast<unsigned long long>(run.stats.spikes));

  const apps::NeovisionResult result = apps::decode_detections(app, sink);
  for (std::size_t f = 0; f < result.detections.size(); ++f) {
    std::printf("frame %zu:\n  truth:", f);
    for (const auto& b : app.ground_truth[f]) {
      std::printf(" %s(%d,%d %dx%d)", vision::class_name(b.cls), b.x, b.y, b.w, b.h);
    }
    std::printf("\n  found:");
    for (const auto& b : result.detections[f]) {
      std::printf(" %s(%d,%d %dx%d)", vision::class_name(b.cls), b.x, b.y, b.w, b.h);
    }
    std::printf("%s\n", f == 0 ? "  (frame 0 has no motion reference)" : "");
  }

  std::printf("\nscore (frames 1..%d, IoU>=0.15, class must match):\n", cfg.frames - 1);
  std::printf("  precision %.2f  recall %.2f  f1 %.2f   (paper: 0.85 / 0.80 on NeoVision2 Tower)\n",
              result.counts.precision(), result.counts.recall(), result.counts.f1());
  return 0;
}
