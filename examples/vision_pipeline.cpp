// Vision pipeline example: saliency → saccade on synthetic streaming video,
// with an ASCII visualization of where the network's attention lands.
//
//   $ ./vision_pipeline
//
// Demonstrates corelet composition (the saccade app absorbs the saliency
// corelet, a WTA stage and a delay-line inhibition-of-return loop) and
// frame-windowed spike decoding.
#include <cstdio>
#include <vector>

#include "src/apps/app_common.hpp"
#include "src/apps/saccade.hpp"
#include "src/core/spike_sink.hpp"
#include "src/vision/scene.hpp"

int main() {
  using namespace nsc;

  apps::AppConfig cfg;
  cfg.img_w = 64;
  cfg.img_h = 64;
  cfg.frames = 10;
  cfg.ticks_per_frame = 33;
  cfg.scene_objects = 2;
  cfg.seed = 21;

  std::printf("building saliency+saccade network...\n");
  const apps::SaccadeApp app = apps::make_saccade_app(cfg);
  std::printf("  %d cores, %llu neurons, %d attention regions, IoR delay %d ticks\n",
              app.net.used_cores(), static_cast<unsigned long long>(app.net.neurons()),
              app.regions, app.ior_delay_ticks);

  // Run on the TrueNorth expression, windowing spikes per frame.
  core::WindowedCountSink sink(static_cast<std::uint64_t>(app.net.network().geom.neurons()),
                               cfg.ticks_per_frame);
  const apps::AppRunResult run = apps::run_on_truenorth(app.net, &sink);
  std::printf("ran %llu ticks: %llu spikes, %llu synaptic ops\n\n",
              static_cast<unsigned long long>(run.stats.ticks),
              static_cast<unsigned long long>(run.stats.spikes),
              static_cast<unsigned long long>(run.stats.sops));

  // Replay the scene to show ground truth beside the attention map. The
  // saccade grid is 4 patches wide (patches are 16x8 over a 64x64 frame).
  vision::SceneConfig sc;
  sc.width = cfg.img_w;
  sc.height = cfg.img_h;
  sc.objects = cfg.scene_objects;
  sc.seed = cfg.seed;
  vision::SyntheticScene scene(sc);

  const int grid_cols = cfg.img_w / 16;   // saccade regions per row
  const int grid_rows = cfg.img_h / 8;
  for (int f = 0; f < cfg.frames; ++f) {
    const auto gt = scene.ground_truth();
    if (static_cast<std::size_t>(f) < sink.windows().size()) {
      const auto& counts = sink.windows()[static_cast<std::size_t>(f)];
      // Winner = region with the most saccade output spikes this frame.
      int best = -1;
      std::uint32_t best_count = 0;
      for (int r = 0; r < app.regions; ++r) {
        const std::uint32_t n = counts[app.net.placed.output_flat_index(r)];
        if (n > best_count) {
          best_count = n;
          best = r;
        }
      }
      std::printf("frame %d: attention -> ", f);
      if (best >= 0) {
        std::printf("region (%d,%d), %u spikes. ", best % grid_cols, best / grid_cols,
                    best_count);
      } else {
        std::printf("none. ");
      }
      std::printf("objects:");
      for (const auto& b : gt) {
        std::printf(" %s@(%d,%d)", vision::class_name(b.cls), b.x, b.y);
      }
      std::printf("\n");
      // Attention heat strip (one char per region, row-major).
      for (int gy = 0; gy < grid_rows; ++gy) {
        std::printf("    ");
        for (int gx = 0; gx < grid_cols; ++gx) {
          const int r = gy * grid_cols + gx;
          const std::uint32_t n =
              r < app.regions ? counts[app.net.placed.output_flat_index(r)] : 0;
          std::printf("%c", n == 0 ? '.' : (n < 3 ? '+' : '#'));
        }
        std::printf("\n");
      }
    }
    scene.step();
  }

  std::printf("\nThe WTA selects the most salient region; inhibition-of-return (a %d-tick\n"
              "delay loop) forces exploration instead of locking on (paper SIV-B).\n",
              app.ior_delay_ticks);
  return 0;
}
