// Quickstart: build a network, run it on both kernel expressions, verify
// they agree spike-for-spike, and estimate TrueNorth speed/power.
//
//   $ ./quickstart
//
// This walks the paper's whole workflow in ~80 lines: describe a model once
// (NetworkDescription), simulate it with the Compass expression, deploy it
// unchanged on the TrueNorth expression, and read the chip's projected
// power from the energy model.
#include <cstdio>

#include "src/analysis/lint.hpp"
#include "src/compass/simulator.hpp"
#include "src/core/spike_sink.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/tn/chip_sim.hpp"

int main() {
  using namespace nsc;

  // 1. Describe a model: a 256-core recurrent network firing at ~20 Hz with
  //    128 active synapses per axon — the paper's headline operating point,
  //    at 1/16 chip scale so the example runs in a second.
  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 16, 16};
  spec.rate_hz = 20.0;
  spec.synapses_per_axon = 128;
  spec.seed = 7;
  const core::Network net = netgen::make_recurrent(spec);
  // Static pre-deployment verification (docs/ANALYSIS.md): the two kernel
  // expressions below are only guaranteed to agree spike-for-spike when the
  // model is inside the hardware envelope.
  analysis::require_deployable(net);
  std::printf("network: %d cores, %d neurons, %llu synapses\n", net.geom.total_cores(),
              net.geom.neurons(), static_cast<unsigned long long>(net.total_synapses()));

  // 2. Simulate with the Compass expression (4 simulated processes).
  constexpr core::Tick kTicks = 250;
  compass::Simulator compass_sim(net, {.threads = 4});
  core::VectorSink compass_spikes;
  compass_sim.run(kTicks, nullptr, &compass_spikes);

  // 3. Deploy the SAME network, unchanged, on the TrueNorth expression.
  tn::TrueNorthSimulator tn_sim(net);
  core::VectorSink tn_spikes;
  tn_sim.run(kTicks, nullptr, &tn_spikes);

  // 4. One-to-one equivalence (the paper's co-design verification).
  const auto mismatch = core::first_mismatch(compass_spikes.spikes(), tn_spikes.spikes());
  std::printf("spikes: %zu   1:1 equivalence: %s\n", tn_spikes.spikes().size(),
              mismatch == -1 ? "EXACT MATCH" : "MISMATCH");
  if (mismatch != -1) return 1;

  // 5. What would the silicon do with this network?
  const auto& stats = tn_sim.stats();
  const energy::TrueNorthPowerModel power;
  const energy::TrueNorthTimingModel timing;
  const double volts = 0.75;
  const double rate = stats.mean_rate_hz(static_cast<std::uint64_t>(net.geom.neurons()));
  const double mw =
      1e3 * power.mean_power_w(stats, net.geom.total_cores(), volts, energy::kRealTimeTickHz);
  const double gsops_w =
      1e-9 * power.sops_per_watt(stats, net.geom.total_cores(), volts, energy::kRealTimeTickHz);
  const double fmax_khz = 1e-3 * timing.max_tick_hz(stats, volts);
  std::printf("measured rate: %.1f Hz   synapses/delivery: %.1f\n", rate,
              stats.mean_synapses_per_delivery());
  std::printf("TrueNorth @0.75V, real-time: %.2f mW, %.1f GSOPS/W, max tick rate %.2f kHz\n",
              mw, gsops_w, fmax_khz);
  return 0;
}
