// Recurrent-network characterization example: one point of the paper's
// 88-network sweep, end to end — generate, run, raster, and project the
// silicon's speed/power through the energy models, including the emulated
// ADC measurement chain and a model-file round trip.
//
//   $ ./recurrent_dynamics [rate_hz] [synapses]
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/core/network_io.hpp"
#include "src/core/spike_sink.hpp"
#include "src/energy/power_meter.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/energy/units.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/tn/chip_sim.hpp"

int main(int argc, char** argv) {
  using namespace nsc;
  const double rate = argc > 1 ? std::atof(argv[1]) : 20.0;
  const int synapses = argc > 2 ? std::atoi(argv[2]) : 128;

  netgen::RecurrentSpec spec;
  spec.geom = core::Geometry{1, 1, 16, 16};  // 256 cores, 65,536 neurons
  spec.rate_hz = rate;
  spec.synapses_per_axon = synapses;
  spec.seed = 4;
  const auto cal = netgen::calibrate(spec);
  std::printf("calibration: threshold %d, leak %d, jitter mask 0x%x -> expected %.1f Hz\n",
              cal.threshold, cal.leak, cal.jitter_mask, cal.expected_rate_hz);

  core::Network net = netgen::make_recurrent(spec);

  // Model files: networks serialize losslessly (train once, deploy anywhere).
  std::stringstream file;
  core::save_network(net, file);
  net = core::load_network(file);
  std::printf("model round-trip: %zu bytes\n", file.str().size());

  tn::TrueNorthSimulator sim(net);
  sim.run(60, nullptr, nullptr);  // settle to the rate fixed point
  sim.reset_stats();

  // Raster: watch 40 neurons of core 0 for 60 ticks.
  core::VectorSink sink;
  sim.run(60, nullptr, &sink);
  std::printf("\nspike raster (core 0, neurons 0-39, 60 ticks):\n");
  for (int j = 0; j < 40; ++j) {
    char row[61] = {};
    for (int t = 0; t < 60; ++t) row[t] = '.';
    for (const core::Spike& s : sink.spikes()) {
      if (s.core == 0 && s.neuron == j) row[s.tick - 60] = '|';
    }
    std::printf("  n%02d %s\n", j, row);
  }

  const core::KernelStats& s = sim.stats();
  const auto neurons = static_cast<std::uint64_t>(net.geom.neurons());
  std::printf("\nmeasured: %.1f Hz mean rate, %.1f synapses/delivery, %.1f hops/spike\n",
              s.mean_rate_hz(neurons), s.mean_synapses_per_delivery(),
              sim.mean_hops_per_spike());

  const energy::TrueNorthPowerModel power;
  const energy::TrueNorthTimingModel timing;
  for (double v : {0.70, 0.75, 1.00}) {
    std::printf("@%.2fV: %.2f mW, %.1f GSOPS/W, max tick rate %.2f kHz\n", v,
                1e3 * power.mean_power_w(s, net.geom.total_cores(), v, energy::kRealTimeTickHz),
                1e-9 * power.sops_per_watt(s, net.geom.total_cores(), v,
                                           energy::kRealTimeTickHz),
                1e-3 * timing.max_tick_hz(s, v));
  }

  // Measure the 0.75 V operating point the way the paper does (§V-2).
  const double active = power.active_energy_j(s, 0.75) / static_cast<double>(s.ticks);
  const double passive = power.passive_power_w(net.geom.total_cores(), 0.75);
  const auto reading = energy::PowerMeter{}.measure(active, passive, 1000.0, 600);
  std::printf("\nADC measurement chain: %.3f mW over %zu samples (%zu ticks averaged)\n",
              1e3 * reading.rms_power_w, reading.samples, reading.ticks_averaged);
  return 0;
}
