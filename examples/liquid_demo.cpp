// Liquid state machine demo (paper Fig. 2 lists LSMs among the demonstrated
// applications): temporal patterns with identical spike counts — separable
// only through timing — classified from the reservoir's echo.
//
//   $ ./liquid_demo
#include <cstdio>

#include "src/apps/lsm.hpp"

int main() {
  using namespace nsc;

  apps::LsmConfig cfg;
  cfg.seed = 3;
  const apps::Lsm lsm = apps::make_lsm(cfg);
  std::printf("reservoir: 1 core, 256 neurons, subcritical recurrence, delays 1-6\n");
  std::printf("task: %d classes x %d channels, %d spikes/channel — identical counts,\n"
              "      class-specific timing (jitter %.0f%%, drop %.0f%%)\n\n",
              cfg.classes, cfg.input_channels, cfg.spikes_per_channel,
              100 * cfg.jitter_prob, 100 * cfg.drop_prob);

  // Timing-blind baseline: per-channel spike counts.
  const train::Dataset base_train = apps::make_lsm_dataset(lsm, 25, false, 100);
  const train::Dataset base_test = apps::make_lsm_dataset(lsm, 12, false, 999);
  const auto base = train::train_perceptron(base_train, {.epochs = 10});
  std::printf("count-only readout (no reservoir): %.0f%% accuracy (chance = 25%%)\n",
              100.0 * base.accuracy(base_test));

  // Reservoir echo readout.
  const train::Dataset res_train = apps::make_lsm_dataset(lsm, 25, true, 100);
  const train::Dataset res_test = apps::make_lsm_dataset(lsm, 12, true, 999);
  const auto readout = train::train_perceptron(res_train, {.epochs = 10});
  std::printf("reservoir-echo readout:            %.0f%% accuracy\n",
              100.0 * readout.accuracy(res_test));

  std::printf("\nThe echo window starts after the last input spike: every bit of class\n"
              "information there is the liquid's fading memory of input *timing*.\n");
  return 0;
}
