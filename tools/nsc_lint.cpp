// nsc_lint — static verification of a network model file, no simulation
// (docs/ANALYSIS.md).
//
//   nsc_lint --net net.nsc [--json report.json] [--fail-on error|warn|never]
//            [--suppress NSC022,NSC041-NSC055] [--max-findings N]
//            [--no-graph] [--no-load] [--quiet]
//            [--ranks N] [--replicas M] [--supervise] [--rank-deadline-ms MS]
//            [--recovery-interval K] [--mem-budget-mb MB]
//            [--plan] [--plan-out plan.json] [--check-run bench.json]
//            [--checkpoint state.nsck]
//
// Checks the hardware envelope (weights, delays, thresholds, axon types,
// crossbar/grid shape), graph structure (dead neurons, unreachable cores,
// orphan axons, recurrent loops), conservative load bounds (merge-split
// link overflow risk, firing-rate upper bounds) and determinism hazards
// (stochastic modes that must be seeded). Findings carry stable rule IDs
// (NSC001...) and severities; --json writes the "nsc-lint-v1" report.
//
// Deployment planning (docs/ANALYSIS.md "Deployment planner"): any of
// --ranks/--replicas/--supervise/--rank-deadline-ms/--recovery-interval/
// --mem-budget-mb/--plan enables the planner rules NSC041–NSC055 against
// that configuration. --plan prints the round-trippable "nsc-plan-v1" JSON
// (per-rank shard assignment, per-rank compute/exchange bounds, recommended
// rank count) to stdout; --plan-out writes it to a file instead.
// --check-run compares an "nsc-bench-v1" report from a measured run of the
// same net/rank count against the static bounds and exits 2 if the run ever
// exceeded them — the CI conservativeness gate.
//
// --checkpoint statically audits an NSCK snapshot (rules NSC048–NSC054)
// without constructing a simulator: hostile or forged files are rejected
// with exit 2. With --net, the checkpoint is also cross-checked against the
// network it claims to belong to (NSC049).
//
// --suppress takes comma-separated rule IDs and NSC0xx-NSC0yy ranges;
// unknown rule IDs warn on stderr (they used to be silently accepted).
//
// Exit codes: 0 = deployable under the chosen gate, 1 = warnings present
// and --fail-on=warn, 2 = error-level findings, a conservativeness-gate
// violation, or a usage error.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/analysis/lint.hpp"
#include "src/analysis/plan.hpp"
#include "src/analysis/report.hpp"
#include "src/core/network_io.hpp"
#include "src/obs/json.hpp"

namespace {

const char* flag_value(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

bool known_rule(const std::string& id) {
  for (const nsc::analysis::RuleInfo& r : nsc::analysis::rule_catalog()) {
    if (r.id == id) return true;
  }
  return false;
}

/// "NSC041" -> 41; -1 when the token is not an NSCxxx rule ID.
int rule_number(const std::string& id) {
  if (id.size() != 6 || id.compare(0, 3, "NSC") != 0) return -1;
  int n = 0;
  for (std::size_t i = 3; i < 6; ++i) {
    if (id[i] < '0' || id[i] > '9') return -1;
    n = n * 10 + (id[i] - '0');
  }
  return n;
}

/// Comma-separated rule IDs with NSC0xx-NSC0yy range expansion. Unknown IDs
/// (not in the catalog) warn on stderr instead of being silently accepted;
/// they are still passed through so the suppression list stays auditable.
std::vector<std::string> parse_suppress(const std::string& spec) {
  std::vector<std::string> out;
  auto add = [&](const std::string& id) {
    if (!known_rule(id)) {
      std::fprintf(stderr, "warning: --suppress lists unknown rule ID '%s' (not in the catalog)\n",
                   id.c_str());
    }
    out.push_back(id);
  };
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    const std::size_t dash = tok.find('-');
    if (dash == std::string::npos) {
      add(tok);
      continue;
    }
    const int lo = rule_number(tok.substr(0, dash));
    const int hi = rule_number(tok.substr(dash + 1));
    if (lo < 0 || hi < 0 || lo > hi) {
      std::fprintf(stderr, "warning: --suppress range '%s' is not NSC0xx-NSC0yy; ignored\n",
                   tok.c_str());
      continue;
    }
    for (int n = lo; n <= hi; ++n) {
      char id[16];
      std::snprintf(id, sizeof id, "NSC%03d", n);
      // Ranges sweep catalog gaps (e.g. NSC015-NSC019 never existed), so
      // only IDs the catalog knows expand — no unknown-ID warning spam.
      if (known_rule(id)) out.push_back(id);
    }
  }
  return out;
}

long long parse_ll(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid integer for ") + name + ": '" + s + "'");
  }
  return v;
}

std::uint64_t json_u64(const nsc::obs::JsonValue& doc, const char* key, std::uint64_t fallback) {
  const nsc::obs::JsonValue* v = doc.find(key);
  return v != nullptr && v->is_number() ? static_cast<std::uint64_t>(v->as_int()) : fallback;
}

/// The bench-smoke conservativeness gate: asserts a measured "nsc-bench-v1"
/// run never exceeded the plan's static per-tick bounds. Returns false (and
/// prints the violation) when any measured total is above measured-ticks x
/// bound — which for a correct planner can only mean the bound is not
/// conservative.
bool check_run_against_plan(const nsc::analysis::DeploymentPlan& plan, const std::string& run_path,
                            std::FILE* status) {
  const nsc::obs::JsonValue run = nsc::obs::load_json_file(run_path);
  const nsc::obs::JsonValue* schema = run.find("schema");
  if (schema == nullptr || schema->as_string() != "nsc-bench-v1") {
    throw std::runtime_error(run_path + " is not an nsc-bench-v1 report");
  }
  const std::uint64_t ticks = json_u64(run, "ticks", 0);
  if (ticks == 0) throw std::runtime_error(run_path + ": report covers zero ticks");
  const nsc::obs::JsonValue* stats = run.find("stats");
  if (stats == nullptr) throw std::runtime_error(run_path + ": report has no stats section");
  const std::uint64_t work = json_u64(*stats, "sops", 0) + json_u64(*stats, "axon_events", 0) +
                             json_u64(*stats, "neuron_updates", 0);
  // Counter names contain dots, so they are direct keys of "counters".
  const nsc::obs::JsonValue* counters = run.find("counters");
  const std::uint64_t messages =
      counters != nullptr ? json_u64(*counters, "dist.messages", 0) : 0;
  const std::uint64_t bytes = counters != nullptr ? json_u64(*counters, "dist.bytes", 0) : 0;

  bool ok = true;
  auto gate = [&](const char* what, std::uint64_t measured, std::uint64_t per_tick) {
    const std::uint64_t bound = ticks * per_tick;
    if (measured > bound) {
      std::fprintf(status,
                   "CONSERVATIVENESS FAIL: measured %s %llu exceeds static bound %llu "
                   "(%llu ticks x %llu/tick)\n",
                   what, static_cast<unsigned long long>(measured),
                   static_cast<unsigned long long>(bound),
                   static_cast<unsigned long long>(ticks),
                   static_cast<unsigned long long>(per_tick));
      ok = false;
    } else {
      std::fprintf(status, "bound ok: %s %llu <= %llu (%llu ticks x %llu/tick)\n", what,
                   static_cast<unsigned long long>(measured),
                   static_cast<unsigned long long>(bound),
                   static_cast<unsigned long long>(ticks),
                   static_cast<unsigned long long>(per_tick));
    }
  };
  gate("dist.messages", messages, plan.total_messages_per_tick);
  gate("dist.bytes", bytes, plan.total_bytes_per_tick);
  gate("compute work", work, plan.total_work_per_tick);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string net_path = flag_value(argc, argv, "--net", "");
  const std::string ckpt_path = flag_value(argc, argv, "--checkpoint", "");
  if (net_path.empty() && ckpt_path.empty()) {
    std::fprintf(stderr,
                 "usage: nsc_lint --net FILE [--json FILE] [--fail-on error|warn|never]\n"
                 "                [--suppress NSC0xx,NSC0yy-NSC0zz] [--max-findings N]\n"
                 "                [--no-graph] [--no-load] [--quiet]\n"
                 "                [--ranks N] [--replicas M] [--supervise]\n"
                 "                [--rank-deadline-ms MS] [--recovery-interval K]\n"
                 "                [--mem-budget-mb MB] [--plan] [--plan-out FILE]\n"
                 "                [--check-run bench.json]\n"
                 "       nsc_lint --checkpoint state.nsck [--net FILE] [...]\n");
    return 2;
  }
  try {
    const std::string fail_on = flag_value(argc, argv, "--fail-on", "error");
    if (fail_on != "error" && fail_on != "warn" && fail_on != "never") {
      throw std::runtime_error("invalid --fail-on '" + fail_on + "' (error|warn|never)");
    }
    const std::string json_path = flag_value(argc, argv, "--json", "");
    const long max_findings =
        std::strtol(flag_value(argc, argv, "--max-findings", "50"), nullptr, 10);
    const bool quiet = flag_present(argc, argv, "--quiet");

    nsc::analysis::LintOptions options;
    options.suppress = parse_suppress(flag_value(argc, argv, "--suppress", ""));
    options.graph = !flag_present(argc, argv, "--no-graph");
    options.load = !flag_present(argc, argv, "--no-load");

    // Deployment planner: any deployment flag (or --plan/--check-run)
    // enables the NSC041–NSC055 rule group against that configuration.
    const std::string plan_out = flag_value(argc, argv, "--plan-out", "");
    const std::string check_run = flag_value(argc, argv, "--check-run", "");
    const bool want_plan_json = flag_present(argc, argv, "--plan") || !plan_out.empty();
    const bool have_deploy =
        want_plan_json || !check_run.empty() || flag_present(argc, argv, "--ranks") ||
        flag_present(argc, argv, "--replicas") || flag_present(argc, argv, "--supervise") ||
        flag_present(argc, argv, "--rank-deadline-ms") ||
        flag_present(argc, argv, "--recovery-interval") ||
        flag_present(argc, argv, "--mem-budget-mb");
    nsc::analysis::DeploymentSpec spec;
    if (have_deploy) {
      if (net_path.empty()) {
        throw std::runtime_error("the deployment planner needs --net (got only --checkpoint)");
      }
      spec.ranks = static_cast<int>(parse_ll("--ranks", flag_value(argc, argv, "--ranks", "1")));
      spec.replicas =
          static_cast<int>(parse_ll("--replicas", flag_value(argc, argv, "--replicas", "1")));
      spec.supervise = flag_present(argc, argv, "--supervise");
      spec.rank_deadline_ms = static_cast<int>(
          parse_ll("--rank-deadline-ms", flag_value(argc, argv, "--rank-deadline-ms", "0")));
      spec.recovery_interval =
          parse_ll("--recovery-interval", flag_value(argc, argv, "--recovery-interval", "32"));
      const long long budget_mb =
          parse_ll("--mem-budget-mb", flag_value(argc, argv, "--mem-budget-mb", "1024"));
      if (spec.ranks < 1) throw std::runtime_error("--ranks must be >= 1");
      if (spec.replicas < 1) throw std::runtime_error("--replicas must be >= 1");
      if (spec.rank_deadline_ms < 0) throw std::runtime_error("--rank-deadline-ms must be >= 0");
      if (spec.recovery_interval < 1) throw std::runtime_error("--recovery-interval must be >= 1");
      if (budget_mb < 1) throw std::runtime_error("--mem-budget-mb must be >= 1");
      spec.replica_memory_budget = static_cast<std::uint64_t>(budget_mb) << 20;
      options.deploy = &spec;
    }

    // When --plan streams the JSON artifact to stdout, human-facing report and
    // status lines move to stderr so `nsc_lint --plan > plan.json` stays
    // machine-parseable.
    std::FILE* status = want_plan_json && plan_out.empty() ? stderr : stdout;
    std::uint64_t errors = 0, warns = 0;
    std::optional<nsc::core::Network> net;
    if (!net_path.empty()) {
      net.emplace(nsc::core::load_network(net_path));
      const nsc::analysis::LintReport report = nsc::analysis::lint(*net, options);
      if (!quiet) {
        std::ostringstream os;
        nsc::analysis::print_report(
            os, report, max_findings > 0 ? static_cast<std::size_t>(max_findings) : 0);
        std::fputs(os.str().c_str(), status);
      }
      if (!json_path.empty()) {
        nsc::analysis::write_lint_report(json_path, report, net_path, net->geom);
        std::printf("wrote lint report to %s\n", json_path.c_str());
      }
      errors += report.count(nsc::analysis::Severity::kError);
      warns += report.count(nsc::analysis::Severity::kWarn);
    }

    if (!ckpt_path.empty()) {
      // Static NSCK audit: load_snapshot is the hostile-file hardening; no
      // simulator is ever constructed here.
      const nsc::analysis::LintReport audit = nsc::analysis::audit_checkpoint(
          ckpt_path, net ? &*net : nullptr, options.suppress);
      if (!quiet) {
        std::ostringstream os;
        nsc::analysis::print_report(
            os, audit, max_findings > 0 ? static_cast<std::size_t>(max_findings) : 0);
        std::fputs(os.str().c_str(), status);
      }
      errors += audit.count(nsc::analysis::Severity::kError);
      warns += audit.count(nsc::analysis::Severity::kWarn);
    }

    if (have_deploy && net) {
      // The plan behind the NSC041–NSC055 findings above, surfaced as the
      // round-trippable nsc-plan-v1 artifact (recomputing it is cheap).
      const nsc::analysis::DeploymentPlan plan = nsc::analysis::plan_deployment(*net, spec);
      if (want_plan_json) {
        const std::string text =
            nsc::analysis::plan_to_json(plan, net_path, net->geom).to_string(2);
        if (plan_out.empty()) {
          std::printf("%s\n", text.c_str());
        } else {
          std::ofstream os(plan_out);
          if (!os) throw std::runtime_error("cannot open " + plan_out + " for writing");
          os << text << "\n";
          if (!os) throw std::runtime_error("write failed: " + plan_out);
          std::printf("wrote deployment plan to %s\n", plan_out.c_str());
        }
      }
      if (!check_run.empty() && !check_run_against_plan(plan, check_run, status)) {
        std::fprintf(status, "FAIL: measured run exceeds the static deployment bounds\n");
        return 2;
      }
    }

    const std::string subject = net_path.empty() ? ckpt_path : net_path;
    if (fail_on != "never" && errors > 0) {
      std::fprintf(status, "FAIL: %llu error-level finding(s)\n",
                   static_cast<unsigned long long>(errors));
      return 2;
    }
    if (fail_on == "warn" && warns > 0) {
      std::fprintf(status, "FAIL: %llu warn-level finding(s) with --fail-on=warn\n",
                   static_cast<unsigned long long>(warns));
      return 1;
    }
    std::fprintf(status, "OK: %s is deployable (fail-on=%s)\n", subject.c_str(), fail_on.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
