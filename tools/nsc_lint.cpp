// nsc_lint — static verification of a network model file, no simulation
// (docs/ANALYSIS.md).
//
//   nsc_lint --net net.nsc [--json report.json] [--fail-on error|warn|never]
//            [--suppress NSC022,NSC040] [--max-findings N] [--no-graph]
//            [--no-load] [--quiet]
//
// Checks the hardware envelope (weights, delays, thresholds, axon types,
// crossbar/grid shape), graph structure (dead neurons, unreachable cores,
// orphan axons, recurrent loops), conservative load bounds (merge-split
// link overflow risk, firing-rate upper bounds) and determinism hazards
// (stochastic modes that must be seeded). Findings carry stable rule IDs
// (NSC001...) and severities; --json writes the "nsc-lint-v1" report.
//
// Exit codes: 0 = deployable under the chosen gate, 1 = warnings present
// and --fail-on=warn, 2 = error-level findings (or usage error).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "src/analysis/lint.hpp"
#include "src/analysis/report.hpp"
#include "src/core/network_io.hpp"

namespace {

const char* flag_value(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::vector<std::string> parse_rule_list(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(tok);
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string net_path = flag_value(argc, argv, "--net", "");
  if (net_path.empty()) {
    std::fprintf(stderr,
                 "usage: nsc_lint --net FILE [--json FILE] [--fail-on error|warn|never]\n"
                 "                [--suppress NSC0xx,NSC0yy] [--max-findings N]\n"
                 "                [--no-graph] [--no-load] [--quiet]\n");
    return 2;
  }
  try {
    const std::string fail_on = flag_value(argc, argv, "--fail-on", "error");
    if (fail_on != "error" && fail_on != "warn" && fail_on != "never") {
      throw std::runtime_error("invalid --fail-on '" + fail_on + "' (error|warn|never)");
    }
    const std::string json_path = flag_value(argc, argv, "--json", "");
    const long max_findings =
        std::strtol(flag_value(argc, argv, "--max-findings", "50"), nullptr, 10);

    nsc::analysis::LintOptions options;
    options.suppress = parse_rule_list(flag_value(argc, argv, "--suppress", ""));
    options.graph = !flag_present(argc, argv, "--no-graph");
    options.load = !flag_present(argc, argv, "--no-load");

    const nsc::core::Network net = nsc::core::load_network(net_path);
    const nsc::analysis::LintReport report = nsc::analysis::lint(net, options);

    if (!flag_present(argc, argv, "--quiet")) {
      std::ostringstream os;
      nsc::analysis::print_report(
          os, report, max_findings > 0 ? static_cast<std::size_t>(max_findings) : 0);
      std::fputs(os.str().c_str(), stdout);
    }
    if (!json_path.empty()) {
      nsc::analysis::write_lint_report(json_path, report, net_path, net.geom);
      std::printf("wrote lint report to %s\n", json_path.c_str());
    }

    const std::uint64_t errors = report.count(nsc::analysis::Severity::kError);
    const std::uint64_t warns = report.count(nsc::analysis::Severity::kWarn);
    if (fail_on != "never" && errors > 0) {
      std::printf("FAIL: %llu error-level finding(s)\n", static_cast<unsigned long long>(errors));
      return 2;
    }
    if (fail_on == "warn" && warns > 0) {
      std::printf("FAIL: %llu warn-level finding(s) with --fail-on=warn\n",
                  static_cast<unsigned long long>(warns));
      return 1;
    }
    std::printf("OK: %s is deployable (fail-on=%s)\n", net_path.c_str(), fail_on.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
