// nsc_client — scriptable driver for the nsc_serve session protocol
// (docs/SERVE.md). One invocation = one session, driven end to end; ctest
// chains invocations to exercise the daemon like a real tenant.
//
//   nsc_client --socket PATH --create NET --ticks N
//              [--threads N] [--chunk N] [--in events.aer] [--out spikes.aer]
//              [--trace-hash] [--expect-trace-hash HEX]
//              [--checkpoint-roundtrip-at T] [--verify-solo net.nsc]
//              [--stats-out FILE] [--shutdown | --sigterm]
//              [--spawn-serve BIN [--spawn-arg ARG ...]]
//
// The session is created over a daemon-preloaded network, inputs from --in
// are injected up front (absolute ticks, same AER file nsc_run takes), the
// run advances in --chunk-tick commands (default: one command) draining the
// spike queue after each, and the streamed spike train is hashed with the
// same FNV-1a digest as nsc_run --trace-hash — so a served session is
// golden-gated against the solo witness hashes. --checkpoint-roundtrip-at T
// checkpoints mid-run, finishes, restores the blob and replays the tail,
// requiring the two tails to be spike-for-spike identical (exit 1 on drift).
// --verify-solo runs the same network+inputs on an in-process solo compass
// simulator and requires exact stream equality. --spawn-serve forks the
// daemon (args via repeated --spawn-arg), waits for its socket, and shuts it
// down afterwards, propagating a non-zero daemon exit; --sigterm stops the
// spawned daemon with the signal instead of the kShutdown command, asserting
// the signal path also exits 0 (the clean-shutdown contract).
//
// Exit codes: 0 success, 1 runtime/protocol failure (daemon refused the
// session, hash or roundtrip or solo mismatch, daemon died), 2 usage error.
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "src/compass/simulator.hpp"
#include "src/core/aer.hpp"
#include "src/core/network_io.hpp"
#include "src/core/spike_sink.hpp"
#include "src/ipc/endpoint.hpp"
#include "src/serve/client.hpp"

namespace {

long long parse_ll(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid integer for ") + name + ": '" + s + "'");
  }
  return v;
}

std::uint64_t parse_hex64(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 16);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid hex value for ") + name + ": '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --create NET --ticks N [--threads N] [--chunk N]\n"
               "          [--in events.aer] [--out spikes.aer] [--trace-hash]\n"
               "          [--expect-trace-hash HEX] [--checkpoint-roundtrip-at T]\n"
               "          [--verify-solo net.nsc] [--stats-out FILE] [--shutdown | --sigterm]\n"
               "          [--spawn-serve BIN [--spawn-arg ARG ...]]\n",
               argv0);
  return 2;
}

std::uint64_t hash_spikes(const std::vector<nsc::core::Spike>& spikes) {
  nsc::core::TraceHashSink h;
  for (const auto& s : spikes) h.on_spike(s.tick, s.core, s.neuron);
  return h.hash();
}

/// Advances the session from `from` to `to` in `chunk`-tick commands,
/// draining the queue after each so the stream arrives in canonical order.
void run_span(nsc::serve::Client& client, std::uint64_t session, nsc::core::Tick from,
              nsc::core::Tick to, nsc::core::Tick chunk,
              std::vector<nsc::core::Spike>& out) {
  nsc::core::Tick at = from;
  while (at < to) {
    const nsc::core::Tick step = chunk > 0 && chunk < to - at ? chunk : to - at;
    client.tick(session, step, /*record=*/true);
    client.read_all_spikes(session, out);
    at += step;
  }
}

struct Options {
  std::string socket;
  std::string net_name;
  std::string in_path;
  std::string out_path;
  std::string solo_net;
  std::string stats_out;
  std::string spawn_serve;
  std::vector<std::string> spawn_args;
  nsc::core::Tick ticks = 0;
  nsc::core::Tick chunk = 0;
  nsc::core::Tick roundtrip_at = -1;
  std::uint32_t threads = 0;
  bool trace_hash = false;
  bool has_expect = false;
  std::uint64_t expect_hash = 0;
  bool do_shutdown = false;
  bool do_sigterm = false;
};

int run_session(const Options& opt) {
  nsc::serve::Client client = nsc::serve::Client::connect(opt.socket);
  client.hello();

  std::vector<nsc::core::InputSpike> inputs;
  if (!opt.in_path.empty()) {
    const nsc::core::InputSchedule sched = nsc::core::load_aer_inputs(opt.in_path);
    inputs.assign(sched.events().begin(), sched.events().end());
  }

  const std::uint64_t session = client.create(opt.net_name, opt.threads);
  if (!inputs.empty()) client.inject(session, inputs);

  std::vector<nsc::core::Spike> stream;
  if (opt.roundtrip_at > 0 && opt.roundtrip_at < opt.ticks) {
    run_span(client, session, 0, opt.roundtrip_at, opt.chunk, stream);
    const std::vector<std::uint8_t> blob = client.checkpoint(session);
    std::vector<nsc::core::Spike> tail_a;
    run_span(client, session, opt.roundtrip_at, opt.ticks, opt.chunk, tail_a);
    client.restore(session, blob);
    std::vector<nsc::core::Spike> tail_b;
    run_span(client, session, opt.roundtrip_at, opt.ticks, opt.chunk, tail_b);
    if (tail_a != tail_b) {
      std::fprintf(stderr,
                   "nsc_client: checkpoint roundtrip diverged (%zu vs %zu spikes, "
                   "hash %016llx vs %016llx)\n",
                   tail_a.size(), tail_b.size(),
                   static_cast<unsigned long long>(hash_spikes(tail_a)),
                   static_cast<unsigned long long>(hash_spikes(tail_b)));
      return 1;
    }
    stream.insert(stream.end(), tail_a.begin(), tail_a.end());
  } else {
    run_span(client, session, 0, opt.ticks, opt.chunk, stream);
  }

  if (!opt.stats_out.empty()) {
    const std::string json = client.stats_json();
    std::FILE* f = std::fopen(opt.stats_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "nsc_client: cannot write %s\n", opt.stats_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  client.destroy(session);
  if (opt.do_shutdown) client.shutdown();

  const std::uint64_t hash = hash_spikes(stream);
  if (opt.trace_hash || opt.has_expect) {
    std::printf("trace-hash         : %016llx (%zu spikes)\n",
                static_cast<unsigned long long>(hash), stream.size());
  }
  if (!opt.out_path.empty()) nsc::core::save_aer(stream, opt.out_path);

  if (!opt.solo_net.empty()) {
    const nsc::core::Network net = nsc::core::load_network(opt.solo_net);
    nsc::compass::Config cfg;
    cfg.threads = opt.threads == 0 ? 1 : static_cast<int>(opt.threads);
    nsc::compass::Simulator solo(net, cfg);
    nsc::core::InputSchedule sched;
    for (const auto& e : inputs) sched.add(e);
    sched.finalize();
    nsc::core::VectorSink sink;
    solo.run(opt.ticks, inputs.empty() ? nullptr : &sched, &sink);
    if (sink.spikes() != stream) {
      std::fprintf(stderr,
                   "nsc_client: served stream diverges from solo run "
                   "(%zu vs %zu spikes)\n",
                   stream.size(), sink.spikes().size());
      return 1;
    }
    std::printf("solo-verify        : identical (%zu spikes)\n", stream.size());
  }

  if (opt.has_expect && hash != opt.expect_hash) {
    std::fprintf(stderr, "nsc_client: trace hash mismatch: got %016llx, expected %016llx\n",
                 static_cast<unsigned long long>(hash),
                 static_cast<unsigned long long>(opt.expect_hash));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto need = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) throw std::invalid_argument(std::string(flag) + " needs a value");
        return argv[++i];
      };
      if (arg == "--socket") {
        opt.socket = need("--socket");
      } else if (arg == "--create") {
        opt.net_name = need("--create");
      } else if (arg == "--ticks") {
        opt.ticks = parse_ll("--ticks", need(arg.c_str()));
        if (opt.ticks < 0) throw std::invalid_argument("--ticks must be >= 0");
      } else if (arg == "--chunk") {
        opt.chunk = parse_ll("--chunk", need(arg.c_str()));
        if (opt.chunk < 0) throw std::invalid_argument("--chunk must be >= 0");
      } else if (arg == "--threads") {
        const long long v = parse_ll("--threads", need(arg.c_str()));
        if (v < 0) throw std::invalid_argument("--threads must be >= 0");
        opt.threads = static_cast<std::uint32_t>(v);
      } else if (arg == "--in") {
        opt.in_path = need("--in");
      } else if (arg == "--out") {
        opt.out_path = need("--out");
      } else if (arg == "--trace-hash") {
        opt.trace_hash = true;
      } else if (arg == "--expect-trace-hash") {
        opt.expect_hash = parse_hex64("--expect-trace-hash", need(arg.c_str()));
        opt.has_expect = true;
      } else if (arg == "--checkpoint-roundtrip-at") {
        opt.roundtrip_at = parse_ll("--checkpoint-roundtrip-at", need(arg.c_str()));
        if (opt.roundtrip_at < 1) {
          throw std::invalid_argument("--checkpoint-roundtrip-at must be >= 1");
        }
      } else if (arg == "--verify-solo") {
        opt.solo_net = need("--verify-solo");
      } else if (arg == "--stats-out") {
        opt.stats_out = need("--stats-out");
      } else if (arg == "--shutdown") {
        opt.do_shutdown = true;
      } else if (arg == "--sigterm") {
        opt.do_sigterm = true;
      } else if (arg == "--spawn-serve") {
        opt.spawn_serve = need("--spawn-serve");
      } else if (arg == "--spawn-arg") {
        opt.spawn_args.emplace_back(need("--spawn-arg"));
      } else {
        throw std::invalid_argument("unknown flag '" + arg + "'");
      }
    }
    if (opt.socket.empty()) throw std::invalid_argument("--socket is required");
    if (opt.net_name.empty()) throw std::invalid_argument("--create is required");
    if (opt.do_shutdown && opt.do_sigterm) {
      throw std::invalid_argument("--shutdown and --sigterm are mutually exclusive");
    }
    if (opt.do_sigterm && opt.spawn_serve.empty()) {
      throw std::invalid_argument("--sigterm requires --spawn-serve");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nsc_client: %s\n", e.what());
    return usage(argv[0]);
  }

  int serve_pid = -1;
  if (!opt.spawn_serve.empty()) {
    std::vector<std::string> argv_serve;
    argv_serve.push_back(opt.spawn_serve);
    argv_serve.push_back("--socket");
    argv_serve.push_back(opt.socket);
    for (const std::string& a : opt.spawn_args) argv_serve.push_back(a);
    try {
      serve_pid = nsc::ipc::spawn_process(argv_serve);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nsc_client: %s\n", e.what());
      return 1;
    }
  }

  int rc;
  try {
    rc = run_session(opt);
  } catch (const nsc::serve::ServeError& e) {
    std::fprintf(stderr, "nsc_client: daemon refused: %s (%s)\n", e.what(),
                 std::string(nsc::serve::error_code_name(e.code())).c_str());
    rc = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nsc_client: %s\n", e.what());
    rc = 1;
  }

  if (serve_pid > 0) {
    if (opt.do_sigterm) {
      nsc::ipc::signal_process(serve_pid, SIGTERM);
    } else if (!opt.do_shutdown) {
      // The script did not shut the daemon down itself; do it now so the
      // test never leaks a process (SIGTERM as the fallback path).
      try {
        nsc::serve::Client c = nsc::serve::Client::connect(opt.socket, 1000);
        c.hello();
        c.shutdown();
      } catch (const std::exception&) {
        nsc::ipc::signal_process(serve_pid, SIGTERM);
      }
    }
    const int status = nsc::ipc::reap_process_deadline(serve_pid, 10000);
    const bool clean = status >= 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!clean && rc == 0) {
      std::fprintf(stderr, "nsc_client: spawned daemon exited uncleanly (status %d)\n",
                   status);
      rc = 1;
    }
  }
  return rc;
}
