// nsc_run — execute a network model file on either kernel expression.
//
//   nsc_run --net net.nsc --ticks 1000 [--backend tn|compass] [--threads N]
//           [--ranks N] [--replicas N] [--in events.aer] [--out spikes.aer]
//           [--json report.json] [--volts 0.75] [--verify] [--lint]
//           [--restore ckpt.nsck] [--save-checkpoint ckpt.nsck [--checkpoint-at T]]
//           [--trace-hash] [--expect-trace-hash HEX]
//           [--rank-deadline-ms MS] [--supervise [--recovery-interval K]
//           [--respawn-budget N]] [--kill-rank R --kill-tick T]
//           [--hang-rank R --hang-tick T]
//
// Prints run statistics, the per-phase wall-time breakdown, spike-train
// analysis, and (for the tn backend) the energy/timing model's projection of
// the silicon. --json additionally writes an "nsc-bench-v1" metrics report
// (docs/OBSERVABILITY.md). --verify runs BOTH backends and checks
// spike-for-spike agreement (exit 1 on mismatch). --restore resumes a saved
// checkpoint (docs/RESILIENCE.md) and then runs --ticks further ticks;
// --save-checkpoint writes one after --checkpoint-at ticks of this run
// (default: at the end), then finishes the run. --lint statically verifies
// the network first (docs/ANALYSIS.md) and refuses to run error-level
// networks (exit 1); warnings are printed but do not block. --trace-hash
// prints the FNV-1a 64 digest of the canonical spike stream;
// --expect-trace-hash HEX additionally compares it against a golden value
// and exits 1 on drift (the golden-trace gate, docs/PERFORMANCE.md).
// --ranks N > 1 runs the compass backend sharded across N forked rank
// processes (docs/DISTRIBUTED.md) — same spikes, same trace hash.
// --rank-deadline-ms MS arms the failure detector: a rank silent for MS ms
// is declared hung, killed, and the run fails cleanly with exit 1 (never a
// wedge). --supervise wraps the sharded run in the self-healing
// dist::Supervisor (docs/DISTRIBUTED.md "Failure model and recovery"):
// shadow checkpoints every --recovery-interval ticks, and rank loss is
// repaired by respawn + rollback + input replay (at most --respawn-budget
// times) so the trace stays identical to a fault-free run. --kill-rank/
// --kill-tick and --hang-rank/--hang-tick inject a rank SIGKILL or SIGSTOP
// at a tick boundary through the fault-campaign runner (chaos testing;
// --hang-rank requires --rank-deadline-ms, or nothing would ever detect it).
// --replicas N > 1 runs N batched instances of the network on the
// replica-batched compass backend (docs/REPLICA.md): --in events are
// assigned round-robin (event k to replica k mod N), --trace-hash prints
// each replica's hash plus the combined FNV mix of all of them (the value
// --expect-trace-hash checks), and stats/--json report aggregate counters
// over all replicas. Per-replica checkpointing and AER output are not
// plumbed through this CLI, so --replicas rejects --verify, --restore,
// --save-checkpoint, --out and --ranks > 1 as usage errors.
//
// Exit codes: 0 success, 1 runtime failure (bad file, verify/hash mismatch,
// lint error, rank timeout), 2 usage error (missing --net, malformed
// --ranks/--replicas, --ranks or --replicas without the compass backend,
// --replicas combined with an unsupported mode, --verify with --ranks > 1,
// --supervise without a multi-rank compass run or with --verify/--replicas,
// --recovery-interval/--respawn-budget without --supervise, rank-fault
// flags out of range or missing their tick/deadline partner).
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/analysis/plan.hpp"
#include "src/analysis/report.hpp"
#include "src/compass/simulator.hpp"
#include "src/core/aer.hpp"
#include "src/core/network_io.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/spike_analysis.hpp"
#include "src/core/spike_sink.hpp"
#include "src/dist/coordinator.hpp"
#include "src/dist/supervisor.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/fault/campaign.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/energy/units.hpp"
#include "src/obs/json_report.hpp"
#include "src/obs/obs.hpp"
#include "src/replica/batch.hpp"
#include "src/tn/chip_sim.hpp"

namespace {

const char* flag_value(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Strict integer parse: the whole token must be a number (no atoi-style
/// silent zero for garbage like "--ticks banana").
long long parse_ll(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid integer for ") + name + ": '" + s + "'");
  }
  return v;
}

/// Strict 64-bit hex parse (optional 0x prefix) for --expect-trace-hash.
std::uint64_t parse_hex64(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 16);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid hex value for ") + name + ": '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_d(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid number for ") + name + ": '" + s + "'");
  }
  return v;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

void print_stats(const nsc::core::KernelStats& s, std::uint64_t neurons) {
  std::printf("ticks %llu   spikes %llu   SOPs %llu   axon events %llu   dropped %llu\n",
              static_cast<unsigned long long>(s.ticks),
              static_cast<unsigned long long>(s.spikes),
              static_cast<unsigned long long>(s.sops),
              static_cast<unsigned long long>(s.axon_events),
              static_cast<unsigned long long>(s.dropped_spikes));
  std::printf("mean rate %.2f Hz   synapses/delivery %.1f\n", s.mean_rate_hz(neurons),
              s.mean_synapses_per_delivery());
}

void print_phases(const nsc::obs::Registry& metrics, std::uint64_t ticks) {
  for (const auto& [name, acc] : metrics.phases()) {
    if (acc.calls == 0) continue;
    std::printf("phase %-8s %10.3f ms total   %8.1f us/tick\n", name.c_str(),
                1e-6 * static_cast<double>(acc.total_ns),
                ticks != 0 ? 1e-3 * static_cast<double>(acc.total_ns) / static_cast<double>(ticks)
                           : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string net_path = flag_value(argc, argv, "--net", "");
  if (net_path.empty()) {
    std::fprintf(stderr,
                 "usage: nsc_run --net FILE --ticks N [--backend tn|compass] [--threads N]\n"
                 "               [--ranks N] [--replicas N] [--in events.aer] [--out spikes.aer]\n"
                 "               [--volts V] [--verify] [--lint] [--restore F]\n"
                 "               [--save-checkpoint F [--checkpoint-at T]]\n");
    return 2;
  }
  // --ranks is a usage-level contract: 0, negatives, and non-numeric tokens
  // are rejected with exit 2 before anything is loaded or forked, as is
  // asking for a sharded run of a backend that cannot shard.
  int ranks = 1;
  try {
    ranks = static_cast<int>(parse_ll("--ranks", flag_value(argc, argv, "--ranks", "1")));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  }
  if (ranks < 1) {
    std::fprintf(stderr, "usage error: --ranks must be >= 1, got %d\n", ranks);
    return 2;
  }
  if (ranks > 1 && std::string(flag_value(argc, argv, "--backend", "tn")) != "compass") {
    std::fprintf(stderr, "usage error: --ranks requires --backend compass\n");
    return 2;
  }
  // --replicas shares the usage-level contract: malformed values and modes
  // the batched backend does not support are rejected before loading.
  int replicas = 1;
  try {
    replicas =
        static_cast<int>(parse_ll("--replicas", flag_value(argc, argv, "--replicas", "1")));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  }
  if (replicas < 1) {
    std::fprintf(stderr, "usage error: --replicas must be >= 1, got %d\n", replicas);
    return 2;
  }
  if (replicas > 1) {
    if (std::string(flag_value(argc, argv, "--backend", "tn")) != "compass") {
      std::fprintf(stderr, "usage error: --replicas requires --backend compass\n");
      return 2;
    }
    if (ranks > 1) {
      std::fprintf(stderr, "usage error: --replicas cannot be combined with --ranks > 1\n");
      return 2;
    }
    if (flag_present(argc, argv, "--verify") || flag_present(argc, argv, "--restore") ||
        flag_present(argc, argv, "--save-checkpoint") || flag_present(argc, argv, "--out")) {
      std::fprintf(stderr,
                   "usage error: --replicas does not support --verify, --restore, "
                   "--save-checkpoint or --out\n");
      return 2;
    }
    if (flag_present(argc, argv, "--supervise")) {
      std::fprintf(stderr, "usage error: --supervise cannot be combined with --replicas > 1\n");
      return 2;
    }
  }
  // Audit fix: --verify runs both single-process backends; a --ranks > 1
  // request alongside it used to be silently ignored — reject it instead.
  if (flag_present(argc, argv, "--verify") && ranks > 1) {
    std::fprintf(stderr, "usage error: --verify cannot be combined with --ranks > 1\n");
    return 2;
  }
  // Resilience-flag contract (exit 2 before anything loads or forks): the
  // supervised/deadline/rank-fault flags only make sense on a multi-rank
  // compass run, and each injection flag needs its partner.
  const bool supervise = flag_present(argc, argv, "--supervise");
  int rank_deadline_ms = 0;
  int respawn_budget = 3;
  int kill_rank = -1;
  int hang_rank = -1;
  long long recovery_interval = 32;
  long long kill_tick = -1;
  long long hang_tick = -1;
  try {
    rank_deadline_ms = static_cast<int>(
        parse_ll("--rank-deadline-ms", flag_value(argc, argv, "--rank-deadline-ms", "0")));
    recovery_interval =
        parse_ll("--recovery-interval", flag_value(argc, argv, "--recovery-interval", "32"));
    respawn_budget = static_cast<int>(
        parse_ll("--respawn-budget", flag_value(argc, argv, "--respawn-budget", "3")));
    kill_rank =
        static_cast<int>(parse_ll("--kill-rank", flag_value(argc, argv, "--kill-rank", "-1")));
    kill_tick = parse_ll("--kill-tick", flag_value(argc, argv, "--kill-tick", "-1"));
    hang_rank =
        static_cast<int>(parse_ll("--hang-rank", flag_value(argc, argv, "--hang-rank", "-1")));
    hang_tick = parse_ll("--hang-tick", flag_value(argc, argv, "--hang-tick", "-1"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  }
  if (supervise &&
      (ranks < 2 || std::string(flag_value(argc, argv, "--backend", "tn")) != "compass")) {
    std::fprintf(stderr,
                 "usage error: --supervise requires --backend compass and --ranks >= 2\n");
    return 2;
  }
  if (supervise && flag_present(argc, argv, "--verify")) {
    std::fprintf(stderr, "usage error: --supervise cannot be combined with --verify\n");
    return 2;
  }
  if (!supervise && (flag_present(argc, argv, "--recovery-interval") ||
                     flag_present(argc, argv, "--respawn-budget"))) {
    std::fprintf(stderr,
                 "usage error: --recovery-interval/--respawn-budget require --supervise\n");
    return 2;
  }
  if (recovery_interval < 1) {
    std::fprintf(stderr, "usage error: --recovery-interval must be >= 1, got %lld\n",
                 recovery_interval);
    return 2;
  }
  if (respawn_budget < 0) {
    std::fprintf(stderr, "usage error: --respawn-budget must be >= 0, got %d\n", respawn_budget);
    return 2;
  }
  if (flag_present(argc, argv, "--rank-deadline-ms")) {
    if (rank_deadline_ms < 1) {
      std::fprintf(stderr, "usage error: --rank-deadline-ms must be >= 1, got %d\n",
                   rank_deadline_ms);
      return 2;
    }
    if (ranks < 2) {
      std::fprintf(stderr, "usage error: --rank-deadline-ms requires --ranks >= 2\n");
      return 2;
    }
  }
  if ((kill_rank >= 0) != (kill_tick >= 0)) {
    std::fprintf(stderr, "usage error: --kill-rank and --kill-tick must be given together\n");
    return 2;
  }
  if ((hang_rank >= 0) != (hang_tick >= 0)) {
    std::fprintf(stderr, "usage error: --hang-rank and --hang-tick must be given together\n");
    return 2;
  }
  if (kill_rank >= 0 || hang_rank >= 0) {
    if (ranks < 2) {
      std::fprintf(stderr, "usage error: --kill-rank/--hang-rank require --ranks >= 2\n");
      return 2;
    }
    if (kill_rank >= ranks || hang_rank >= ranks) {
      std::fprintf(stderr, "usage error: --kill-rank/--hang-rank must be < --ranks\n");
      return 2;
    }
  }
  if (hang_rank >= 0 && rank_deadline_ms < 1) {
    std::fprintf(stderr,
                 "usage error: --hang-rank requires --rank-deadline-ms (a hang with no "
                 "deadline would never be detected)\n");
    return 2;
  }
  try {
    const auto ticks =
        static_cast<nsc::core::Tick>(parse_ll("--ticks", flag_value(argc, argv, "--ticks", "100")));
    const std::string backend = flag_value(argc, argv, "--backend", "tn");
    if (backend != "tn" && backend != "compass") {
      throw std::runtime_error("unknown backend '" + backend + "' (expected tn or compass)");
    }
    const int threads =
        static_cast<int>(parse_ll("--threads", flag_value(argc, argv, "--threads", "1")));
    const double volts = parse_d("--volts", flag_value(argc, argv, "--volts", "0.75"));
    const std::string in_path = flag_value(argc, argv, "--in", "");
    const std::string out_path = flag_value(argc, argv, "--out", "");
    const std::string json_path = flag_value(argc, argv, "--json", "");
    const std::string restore_path = flag_value(argc, argv, "--restore", "");
    const std::string expect_hash_hex = flag_value(argc, argv, "--expect-trace-hash", "");
    const bool want_trace_hash =
        flag_present(argc, argv, "--trace-hash") || !expect_hash_hex.empty();
    const std::string ckpt_path = flag_value(argc, argv, "--save-checkpoint", "");
    const auto ckpt_at = static_cast<nsc::core::Tick>(
        parse_ll("--checkpoint-at", flag_value(argc, argv, "--checkpoint-at", "-1")));
    if (ticks < 0) throw std::runtime_error("--ticks must be >= 0");
    const nsc::core::Network net = nsc::core::load_network(net_path);
    if (flag_present(argc, argv, "--lint")) {
      // Deployment runs get the deployment-aware preflight: the planner
      // rules (NSC041–NSC055) vet the rank/replica/supervision configuration
      // before any process forks (docs/ANALYSIS.md).
      const bool deployment_run = ranks > 1 || replicas > 1 || supervise ||
                                  flag_present(argc, argv, "--rank-deadline-ms");
      bool deployable = false;
      if (deployment_run) {
        nsc::analysis::DeploymentSpec spec;
        spec.ranks = ranks;
        spec.replicas = replicas;
        spec.supervise = supervise;
        spec.rank_deadline_ms = rank_deadline_ms > 0 ? rank_deadline_ms : 0;
        spec.recovery_interval = recovery_interval;
        deployable = nsc::analysis::lint_preflight(net, net_path, spec);
      } else {
        deployable = nsc::analysis::lint_preflight(net, net_path);
      }
      if (!deployable) return 1;
    }
    const auto neurons = static_cast<std::uint64_t>(net.geom.neurons());
    std::printf("loaded %s: %d cores, %llu enabled neurons, %llu synapses\n", net_path.c_str(),
                net.geom.total_cores(), static_cast<unsigned long long>(net.enabled_neurons()),
                static_cast<unsigned long long>(net.total_synapses()));

    nsc::core::InputSchedule inputs;
    if (!in_path.empty()) {
      inputs = nsc::core::load_aer_inputs(in_path);
      std::printf("inputs: %zu events from %s\n", inputs.size(), in_path.c_str());
    } else {
      inputs.finalize();
    }

    if (replicas > 1) {
      // Batched multi-instance run (docs/REPLICA.md): input events fan out
      // round-robin — event k of the finalized (sorted) schedule drives
      // replica k mod N — so one AER file exercises divergent replicas.
      std::vector<nsc::core::InputSchedule> rep_inputs(static_cast<std::size_t>(replicas));
      {
        std::size_t k = 0;
        for (const nsc::core::InputSpike& ev : inputs.events()) {
          rep_inputs[k % static_cast<std::size_t>(replicas)].add(ev);
          ++k;
        }
      }
      std::vector<const nsc::core::InputSchedule*> in_ptrs(static_cast<std::size_t>(replicas));
      std::vector<nsc::core::TraceHashSink> hash_sinks(static_cast<std::size_t>(replicas));
      std::vector<nsc::core::SpikeSink*> sink_ptrs(static_cast<std::size_t>(replicas));
      for (int r = 0; r < replicas; ++r) {
        const auto i = static_cast<std::size_t>(r);
        rep_inputs[i].finalize();
        in_ptrs[i] = &rep_inputs[i];
        sink_ptrs[i] = &hash_sinks[i];
      }
      nsc::replica::BatchSimulator sim(
          net, {.replicas = replicas, .threads = std::max(1, threads)});
      nsc::obs::BenchReport report;
      report.name = "nsc_run";
      const std::uint64_t t0 = nsc::obs::now_ns();
      sim.run(ticks, in_ptrs.data(), sink_ptrs.data());
      report.wall_s = 1e-9 * static_cast<double>(nsc::obs::now_ns() - t0);
      const nsc::core::KernelStats stats = sim.aggregate_stats();
      report.stats = stats;
      report.threads = std::max(1, threads);
      report.ticks = static_cast<std::uint64_t>(replicas) * static_cast<std::uint64_t>(ticks);
      report.metrics = sim.metrics();
      std::printf("replicas %d (aggregate stats below)\n", replicas);
      // aggregate_stats().ticks already sums replica-ticks (R*T), so the rate
      // denominator takes the plain per-instance neuron count.
      print_stats(stats, neurons);
      print_phases(sim.metrics(), stats.ticks);
      if (!json_path.empty()) {
        nsc::obs::write_bench_report(json_path, report);
        std::printf("wrote metrics report to %s\n", json_path.c_str());
      }
      if (want_trace_hash) {
        // The combined digest FNV-mixes the per-replica digests in replica
        // order, so it pins every replica's stream and their assignment.
        std::uint64_t combined = nsc::core::TraceHashSink::kFnvOffset;
        std::uint64_t nspikes = 0;
        for (int r = 0; r < replicas; ++r) {
          const auto i = static_cast<std::size_t>(r);
          std::printf("replica %d trace hash: %016llx over %llu spikes\n", r,
                      static_cast<unsigned long long>(hash_sinks[i].hash()),
                      static_cast<unsigned long long>(hash_sinks[i].spike_count()));
          for (int b = 0; b < 8; ++b) {
            combined = (combined ^ ((hash_sinks[i].hash() >> (8 * b)) & 0xFFU)) *
                       nsc::core::TraceHashSink::kFnvPrime;
          }
          nspikes += hash_sinks[i].spike_count();
        }
        std::printf("trace hash: %016llx over %llu spikes (combined, %d replicas)\n",
                    static_cast<unsigned long long>(combined),
                    static_cast<unsigned long long>(nspikes), replicas);
        if (!expect_hash_hex.empty()) {
          const std::uint64_t want = parse_hex64("--expect-trace-hash", expect_hash_hex.c_str());
          if (combined != want) {
            std::fprintf(stderr, "TRACE HASH MISMATCH: got %016llx, want %016llx\n",
                         static_cast<unsigned long long>(combined),
                         static_cast<unsigned long long>(want));
            return 1;
          }
          std::printf("trace hash matches golden value\n");
        }
      }
      return 0;
    }

    if (flag_present(argc, argv, "--verify")) {
      nsc::core::VectorSink a, b;
      nsc::tn::TrueNorthSimulator tn_sim(net);
      tn_sim.run(ticks, &inputs, &a);
      nsc::compass::Simulator cp(net, {.threads = std::max(1, threads)});
      cp.run(ticks, &inputs, &b);
      const auto mismatch = nsc::core::first_mismatch(a.spikes(), b.spikes());
      if (mismatch != -1) {
        std::fprintf(stderr, "VERIFY FAILED: first spike mismatch at index %lld\n",
                     static_cast<long long>(mismatch));
        return 1;
      }
      std::printf("verify: tn and compass(%d) agree on %zu spikes over %lld ticks\n", threads,
                  a.spikes().size(), static_cast<long long>(ticks));
      return 0;
    }

    nsc::core::VectorSink sink;
    nsc::core::KernelStats stats;
    nsc::obs::BenchReport report;
    report.name = "nsc_run";
    report.ticks = static_cast<std::uint64_t>(ticks);

    // Rank-fault chaos schedule (empty unless --kill-rank/--hang-rank):
    // applied through the campaign runner so the kills land at exact tick
    // boundaries, deterministically.
    nsc::fault::Campaign campaign;
    if (kill_rank >= 0) campaign.kill_rank_at(kill_tick, kill_rank);
    if (hang_rank >= 0) campaign.hang_rank_at(hang_tick, hang_rank);
    campaign.finalize();

    // Restore (if asked), run --ticks further ticks — splitting the run
    // around --checkpoint-at when a save was requested — and time the whole
    // thing.
    const auto run_span = [&](nsc::core::Simulator& sim, nsc::core::Tick n) {
      if (campaign.empty()) {
        sim.run(n, &inputs, &sink);
      } else {
        nsc::fault::run_with_campaign(sim, n, &inputs, &sink, campaign);
      }
    };
    const auto drive = [&](nsc::core::Simulator& sim) {
      if (!restore_path.empty()) {
        nsc::core::load_checkpoint(sim, restore_path);
        std::printf("restored %s at tick %lld\n", restore_path.c_str(),
                    static_cast<long long>(sim.now()));
      }
      const std::uint64_t t0 = nsc::obs::now_ns();
      if (!ckpt_path.empty()) {
        nsc::core::Tick pre = ckpt_at < 0 ? ticks : ckpt_at;
        if (pre > ticks) pre = ticks;
        if (pre > 0) run_span(sim, pre);
        nsc::core::save_checkpoint(sim, ckpt_path);
        std::printf("wrote checkpoint to %s at tick %lld\n", ckpt_path.c_str(),
                    static_cast<long long>(sim.now()));
        if (ticks - pre > 0) run_span(sim, ticks - pre);
      } else {
        run_span(sim, ticks);
      }
      report.wall_s = 1e-9 * static_cast<double>(nsc::obs::now_ns() - t0);
    };

    if (backend == "compass" && ranks > 1) {
      nsc::dist::Config dcfg;
      dcfg.ranks = ranks;
      dcfg.threads_per_rank = std::max(1, threads);
      dcfg.rank_deadline_ms = rank_deadline_ms;
      std::unique_ptr<nsc::dist::Supervisor> sup;
      std::unique_ptr<nsc::dist::Coordinator> coord;
      nsc::core::Simulator* simp = nullptr;
      if (supervise) {
        nsc::dist::SupervisorConfig scfg;
        scfg.policy = nsc::dist::Policy::kRecover;
        scfg.recovery_interval = static_cast<nsc::core::Tick>(recovery_interval);
        scfg.max_respawns = respawn_budget;
        sup = std::make_unique<nsc::dist::Supervisor>(net, dcfg, scfg);
        simp = sup.get();
      } else {
        coord = std::make_unique<nsc::dist::Coordinator>(net, dcfg);
        simp = coord.get();
      }
      drive(*simp);
      const nsc::obs::Registry& m = sup ? sup->metrics() : coord->metrics();
      const nsc::dist::Coordinator& c = sup ? sup->coordinator() : *coord;
      stats = simp->stats();
      report.stats = stats;
      report.threads = ranks * std::max(1, threads);
      report.metrics = m;
      report.load_imbalance = c.load_imbalance();
      print_stats(stats, neurons);
      std::printf("ranks %d   dist messages %llu   dist bytes %llu\n", ranks,
                  static_cast<unsigned long long>(m.counter_value("dist.messages")),
                  static_cast<unsigned long long>(m.counter_value("dist.bytes")));
      if (sup) {
        std::printf("supervisor: respawns %d%s   rollback ticks %llu   recovery %.1f ms   "
                    "heartbeats missed %llu\n",
                    sup->respawns_done(), sup->exhausted() ? " (budget exhausted)" : "",
                    static_cast<unsigned long long>(m.counter_value("dist.rollback_ticks")),
                    1e-6 * static_cast<double>(m.counter_value("dist.recovery_ns")),
                    static_cast<unsigned long long>(m.counter_value("dist.heartbeats_missed")));
      }
      if (c.load_imbalance() > 0.0) {
        std::printf("load imbalance (max/mean rank compute): %.2f\n", c.load_imbalance());
      }
    } else if (backend == "compass") {
      nsc::compass::Simulator sim(net, {.threads = std::max(1, threads)});
      drive(sim);
      stats = sim.stats();
      report.stats = stats;
      report.threads = sim.config().threads;
      report.metrics = sim.metrics();
      report.load_imbalance = sim.load_imbalance();
      print_stats(stats, neurons);
      std::printf("messages sent: %llu\n",
                  static_cast<unsigned long long>(sim.messages_sent()));
      print_phases(sim.metrics(), stats.ticks);
      if (sim.load_imbalance() > 0.0) {
        std::printf("load imbalance (max/mean compute): %.2f\n", sim.load_imbalance());
      }
    } else {
      nsc::tn::TrueNorthSimulator sim(net);
      drive(sim);
      stats = sim.stats();
      report.stats = stats;
      report.metrics = sim.metrics();
      print_stats(stats, neurons);
      print_phases(sim.metrics(), stats.ticks);
      std::printf("mean hops/spike %.2f   interchip crossings %llu\n", sim.mean_hops_per_spike(),
                  static_cast<unsigned long long>(stats.interchip_crossings));
      const nsc::energy::TrueNorthPowerModel power;
      const nsc::energy::TrueNorthTimingModel timing;
      std::printf("silicon projection @%.2fV: %.2f mW, %.1f GSOPS/W, max tick rate %.2f kHz\n",
                  volts,
                  1e3 * power.mean_power_w(stats, net.geom.total_cores(), volts,
                                           nsc::energy::kRealTimeTickHz),
                  1e-9 * power.sops_per_watt(stats, net.geom.total_cores(), volts,
                                             nsc::energy::kRealTimeTickHz),
                  1e-3 * timing.max_tick_hz(stats, volts));
    }

    const auto train = nsc::core::analyze_spikes(sink.spikes(), neurons, 0, ticks);
    std::printf("spike train: active %.1f%%, ISI mean %.1f ticks (CV %.2f), synchrony %.2f\n",
                100.0 * train.active_fraction, train.isi_mean, train.isi_cv, train.synchrony);

    if (!out_path.empty()) {
      nsc::core::save_aer(sink.spikes(), out_path);
      std::printf("wrote %zu spikes to %s\n", sink.spikes().size(), out_path.c_str());
    }

    if (!json_path.empty()) {
      nsc::obs::write_bench_report(json_path, report);
      std::printf("wrote metrics report to %s\n", json_path.c_str());
    }

    if (want_trace_hash) {
      const std::uint64_t h = nsc::core::trace_hash(sink.spikes());
      std::printf("trace hash: %016llx over %zu spikes\n", static_cast<unsigned long long>(h),
                  sink.spikes().size());
      if (!expect_hash_hex.empty()) {
        const std::uint64_t want = parse_hex64("--expect-trace-hash", expect_hash_hex.c_str());
        if (h != want) {
          std::fprintf(stderr, "TRACE HASH MISMATCH: got %016llx, want %016llx\n",
                       static_cast<unsigned long long>(h),
                       static_cast<unsigned long long>(want));
          return 1;
        }
        std::printf("trace hash matches golden value\n");
      }
    }
  } catch (const nsc::dist::RankTimeout& e) {
    // Clean failure, never a wedge: the hung rank was already killed and
    // its death absorbed before this was thrown.
    std::fprintf(stderr, "rank timeout: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
