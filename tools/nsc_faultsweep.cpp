// nsc_faultsweep — graceful-degradation curves under mid-run fault
// campaigns (docs/RESILIENCE.md).
//
//   nsc_faultsweep --net net.nsc --ticks 200 [--backend tn|compass]
//                  [--threads N] [--fractions 0,0.1,0.25] [--events-seed S]
//                  [--in events.aer] [--json curve.json] [--check-monotone]
//                  [--lint]
//   nsc_faultsweep --net net.nsc --ticks 200 --rank-kills [--ranks N]
//                  [--recovery-interval K] [--threads N] [--in events.aer]
//                  [--json report.json] [--check-monotone]
//
// For each fault fraction f, runs the network under a deterministic seeded
// campaign that kills round(f * cores) cores at random ticks in the first
// half of the run, and reports spike fidelity — the fraction of the
// fault-free reference spike train the degraded run still produces — plus
// the reroute/drop accounting. --json writes an "nsc-bench-v1" report whose
// "degradation" array is the curve; --check-monotone exits non-zero unless
// the fault-free point has fidelity 1.0 and fidelity is non-increasing in f
// (0.1 tolerance for spike trains that reorganize rather than thin out).
//
// --rank-kills switches to the chaos mode (docs/DISTRIBUTED.md): it sweeps
// the (kill tick × victim rank) grid — kill ticks at T/4, T/2, 3T/4 — each
// cell running the self-healing dist::Supervisor over --ranks forked rank
// processes with that rank SIGKILLed at that tick boundary, and reports
// post-recovery fidelity (must be 1.0: recovery is exact), respawn count,
// recovery latency, and rollback depth. --json writes the grid into a
// "rank_kills" array; --check-monotone exits non-zero unless every cell
// recovered exactly (fidelity 1.0, at least one respawn).
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/analysis/report.hpp"
#include "src/compass/simulator.hpp"
#include "src/core/aer.hpp"
#include "src/core/network_io.hpp"
#include "src/core/spike_sink.hpp"
#include "src/dist/supervisor.hpp"
#include "src/fault/campaign.hpp"
#include "src/obs/json_report.hpp"
#include "src/obs/obs.hpp"
#include "src/tn/chip_sim.hpp"

namespace {

const char* flag_value(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

long long parse_ll(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid integer for ") + name + ": '" + s + "'");
  }
  return v;
}

/// Comma-separated fault fractions, each in [0, 1).
std::vector<double> parse_fractions(const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    errno = 0;
    char* end = nullptr;
    const double f = std::strtod(tok.c_str(), &end);
    if (errno != 0 || end == tok.c_str() || *end != '\0' || f < 0.0 || f >= 1.0) {
      throw std::runtime_error("invalid fault fraction '" + tok + "' (need 0 <= f < 1)");
    }
    out.push_back(f);
    pos = comma + 1;
  }
  return out;
}

std::unique_ptr<nsc::core::Simulator> make_sim(const nsc::core::Network& net,
                                               const std::string& backend, int threads) {
  if (backend == "compass") {
    return std::make_unique<nsc::compass::Simulator>(
        net, nsc::compass::Config{.threads = std::max(1, threads)});
  }
  return std::make_unique<nsc::tn::TrueNorthSimulator>(net);
}

std::uint64_t counter_value(const nsc::obs::Registry& reg, std::string_view name) {
  for (const auto& [n, v] : reg.counters()) {
    if (n == name) return v;
  }
  return 0;
}

const nsc::obs::Registry& sim_metrics(const nsc::core::Simulator& sim, const std::string& backend) {
  if (backend == "compass") return static_cast<const nsc::compass::Simulator&>(sim).metrics();
  return static_cast<const nsc::tn::TrueNorthSimulator&>(sim).metrics();
}

/// |A ∩ B| for two canonically ordered spike trains (two-pointer sweep).
std::size_t spike_intersection(const std::vector<nsc::core::Spike>& a,
                               const std::vector<nsc::core::Spike>& b) {
  std::size_t i = 0, j = 0, matched = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++matched, ++i, ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return matched;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string net_path = flag_value(argc, argv, "--net", "");
  if (net_path.empty()) {
    std::fprintf(stderr,
                 "usage: nsc_faultsweep --net FILE --ticks N [--backend tn|compass] [--threads N]\n"
                 "                      [--fractions 0,0.1,0.25] [--events-seed S] [--in F]\n"
                 "                      [--json FILE] [--check-monotone] [--lint]\n"
                 "       nsc_faultsweep --net FILE --ticks N --rank-kills [--ranks N]\n"
                 "                      [--recovery-interval K] [--threads N] [--in F]\n"
                 "                      [--json FILE] [--check-monotone]\n");
    return 2;
  }
  try {
    const auto ticks =
        static_cast<nsc::core::Tick>(parse_ll("--ticks", flag_value(argc, argv, "--ticks", "100")));
    if (ticks <= 0) throw std::runtime_error("--ticks must be > 0");
    const std::string backend = flag_value(argc, argv, "--backend", "tn");
    if (backend != "tn" && backend != "compass") {
      throw std::runtime_error("unknown backend '" + backend + "' (expected tn or compass)");
    }
    const int threads =
        static_cast<int>(parse_ll("--threads", flag_value(argc, argv, "--threads", "1")));
    const auto events_seed = static_cast<std::uint64_t>(
        parse_ll("--events-seed", flag_value(argc, argv, "--events-seed", "1")));
    const std::vector<double> fractions =
        parse_fractions(flag_value(argc, argv, "--fractions", "0,0.05,0.15,0.3"));
    const std::string in_path = flag_value(argc, argv, "--in", "");
    const std::string json_path = flag_value(argc, argv, "--json", "");
    const bool check_monotone = flag_present(argc, argv, "--check-monotone");

    const nsc::core::Network net = nsc::core::load_network(net_path);
    if (flag_present(argc, argv, "--lint") && !nsc::analysis::lint_preflight(net, net_path)) {
      return 1;
    }
    const int ncores = net.geom.total_cores();
    nsc::core::InputSchedule inputs;
    if (!in_path.empty()) {
      inputs = nsc::core::load_aer_inputs(in_path);
    } else {
      inputs.finalize();
    }

    if (flag_present(argc, argv, "--rank-kills")) {
      const int nranks =
          static_cast<int>(parse_ll("--ranks", flag_value(argc, argv, "--ranks", "2")));
      if (nranks < 2) throw std::runtime_error("--rank-kills needs --ranks >= 2");
      const auto interval = static_cast<nsc::core::Tick>(parse_ll(
          "--recovery-interval", flag_value(argc, argv, "--recovery-interval", "8")));
      if (interval < 1) throw std::runtime_error("--recovery-interval must be >= 1");
      if (ticks < 4) throw std::runtime_error("--rank-kills needs --ticks >= 4");

      // Fault-free reference on the single-process kernel: recovery is exact,
      // so every cell of the grid must reproduce this train spike for spike.
      nsc::core::VectorSink ref;
      nsc::obs::BenchReport report;
      report.name = "nsc_faultsweep";
      report.ticks = static_cast<std::uint64_t>(ticks);
      report.threads = std::max(1, threads);
      {
        nsc::compass::Simulator sim(net,
                                    nsc::compass::Config{.threads = std::max(1, threads)});
        const std::uint64_t t0 = nsc::obs::now_ns();
        sim.run(ticks, &inputs, &ref);
        report.wall_s = 1e-9 * static_cast<double>(nsc::obs::now_ns() - t0);
        report.stats = sim.stats();
        report.metrics = sim.metrics();
      }
      std::printf("reference (compass): %zu spikes over %lld ticks on %d cores\n",
                  ref.spikes().size(), static_cast<long long>(ticks), ncores);

      const nsc::core::Tick kill_ticks[] = {ticks / 4, ticks / 2, 3 * ticks / 4};
      nsc::obs::JsonValue grid = nsc::obs::JsonValue::array();
      bool all_exact = true;
      bool all_respawned = true;
      std::printf("%6s %10s %10s %10s %10s %12s %10s\n", "rank", "kill_tick", "spikes",
                  "fidelity", "respawns", "recovery_ms", "rollback");
      for (int r = 0; r < nranks; ++r) {
        nsc::core::Tick prev = -1;
        for (const nsc::core::Tick kt : kill_ticks) {
          if (kt == prev) continue;  // Tiny --ticks collapses grid columns.
          prev = kt;
          nsc::dist::Supervisor sim(
              net,
              nsc::dist::Config{.ranks = nranks, .threads_per_rank = std::max(1, threads)},
              nsc::dist::SupervisorConfig{.recovery_interval = interval});
          nsc::fault::Campaign campaign;
          campaign.kill_rank_at(std::max<nsc::core::Tick>(1, kt), r);
          campaign.finalize();
          nsc::core::VectorSink sink;
          nsc::fault::run_with_campaign(sim, ticks, &inputs, &sink, campaign);

          const nsc::obs::Registry& m = sim.metrics();
          const std::uint64_t respawned = m.counter_value("dist.ranks_respawned");
          const std::uint64_t recovery_ns = m.counter_value("dist.recovery_ns");
          const std::uint64_t rollback = m.counter_value("dist.rollback_ticks");
          const bool exact = sink.spikes() == ref.spikes();
          const double fidelity =
              ref.spikes().empty()
                  ? (exact ? 1.0 : 0.0)
                  : static_cast<double>(spike_intersection(ref.spikes(), sink.spikes())) /
                        static_cast<double>(ref.spikes().size());
          all_exact = all_exact && exact;
          all_respawned = all_respawned && sim.respawns_done() >= 1;
          std::printf("%6d %10lld %10zu %10.4f %10d %12.2f %10llu\n", r,
                      static_cast<long long>(kt), sink.spikes().size(), fidelity,
                      sim.respawns_done(), 1e-6 * static_cast<double>(recovery_ns),
                      static_cast<unsigned long long>(rollback));

          nsc::obs::JsonValue cell = nsc::obs::JsonValue::object();
          cell.set("rank", static_cast<std::int64_t>(r));
          cell.set("kill_tick", static_cast<std::int64_t>(kt));
          cell.set("spikes", static_cast<std::uint64_t>(sink.spikes().size()));
          cell.set("ref_spikes", static_cast<std::uint64_t>(ref.spikes().size()));
          cell.set("fidelity", fidelity);
          cell.set("exact", exact);
          cell.set("ranks_respawned", respawned);
          cell.set("recovery_ns", recovery_ns);
          cell.set("rollback_ticks", rollback);
          grid.push_back(std::move(cell));
        }
      }

      if (!json_path.empty()) {
        nsc::obs::JsonValue doc = nsc::obs::report_to_json(report);
        doc.set("rank_kills", std::move(grid));
        std::ofstream out(json_path);
        if (!out) throw std::runtime_error("cannot open " + json_path + " for writing");
        out << doc.to_string(2) << "\n";
        if (!out) throw std::runtime_error("write failed: " + json_path);
        std::printf("wrote rank-kill grid to %s\n", json_path.c_str());
      }

      if (check_monotone) {
        // Recovery is all-or-nothing: every cell must be exact and must have
        // actually exercised a respawn (a kill that never fired is a test bug).
        if (!all_exact) {
          std::fprintf(stderr, "CHECK FAILED: a recovered trace diverged from the reference\n");
          return 1;
        }
        if (!all_respawned) {
          std::fprintf(stderr, "CHECK FAILED: a grid cell completed without any respawn\n");
          return 1;
        }
        std::printf("rank-kill check passed (all cells exact, all respawned)\n");
      }
      return 0;
    }

    // Fault-free reference: the spike train every degraded run is scored
    // against.
    nsc::core::VectorSink ref;
    nsc::obs::BenchReport report;
    report.name = "nsc_faultsweep";
    report.ticks = static_cast<std::uint64_t>(ticks);
    report.threads = backend == "compass" ? std::max(1, threads) : 1;
    {
      auto sim = make_sim(net, backend, threads);
      const std::uint64_t t0 = nsc::obs::now_ns();
      sim->run(ticks, &inputs, &ref);
      report.wall_s = 1e-9 * static_cast<double>(nsc::obs::now_ns() - t0);
      report.stats = sim->stats();
      report.metrics = sim_metrics(*sim, backend);
    }
    std::printf("reference (%s): %zu spikes over %lld ticks on %d cores\n", backend.c_str(),
                ref.spikes().size(), static_cast<long long>(ticks), ncores);

    nsc::obs::JsonValue curve = nsc::obs::JsonValue::array();
    std::vector<double> fidelities;
    std::printf("%10s %8s %10s %10s %10s %10s\n", "fraction", "failed", "spikes", "fidelity",
                "dropped", "rerouted");
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      const double f = fractions[fi];
      const int n_faults = std::min(ncores - 1, static_cast<int>(std::lround(f * ncores)));
      // Events land in the first half so degradation has time to show.
      const auto campaign = nsc::fault::Campaign::random(
          net.geom, n_faults, 0, std::max<nsc::core::Tick>(1, ticks / 2),
          events_seed + 7919 * fi);
      auto sim = make_sim(net, backend, threads);
      nsc::core::VectorSink sink;
      nsc::fault::run_with_campaign(*sim, ticks, &inputs, &sink, campaign);

      const nsc::obs::Registry& m = sim_metrics(*sim, backend);
      const std::uint64_t cores_failed = counter_value(m, "fault.cores_failed");
      const std::uint64_t dropped = counter_value(m, "fault.spikes_dropped");
      const std::uint64_t rerouted = counter_value(m, "fault.rerouted_hops");
      const double fidelity =
          ref.spikes().empty()
              ? 1.0
              : static_cast<double>(spike_intersection(ref.spikes(), sink.spikes())) /
                    static_cast<double>(ref.spikes().size());
      fidelities.push_back(fidelity);
      std::printf("%10.3f %8llu %10zu %10.4f %10llu %10llu\n", f,
                  static_cast<unsigned long long>(cores_failed), sink.spikes().size(), fidelity,
                  static_cast<unsigned long long>(dropped),
                  static_cast<unsigned long long>(rerouted));

      nsc::obs::JsonValue point = nsc::obs::JsonValue::object();
      point.set("fraction", f);
      point.set("cores_failed", cores_failed);
      point.set("spikes", static_cast<std::uint64_t>(sink.spikes().size()));
      point.set("ref_spikes", static_cast<std::uint64_t>(ref.spikes().size()));
      point.set("fidelity", fidelity);
      point.set("fault_spikes_dropped", dropped);
      point.set("rerouted_hops", rerouted);
      curve.push_back(std::move(point));
    }

    if (!json_path.empty()) {
      nsc::obs::JsonValue doc = nsc::obs::report_to_json(report);
      doc.set("degradation", std::move(curve));
      std::ofstream out(json_path);
      if (!out) throw std::runtime_error("cannot open " + json_path + " for writing");
      out << doc.to_string(2) << "\n";
      if (!out) throw std::runtime_error("write failed: " + json_path);
      std::printf("wrote degradation curve to %s\n", json_path.c_str());
    }

    if (check_monotone) {
      // The curve must start perfect and must not climb back up as faults
      // accumulate (small tolerance: dead cores can unmask spikes elsewhere).
      constexpr double kTol = 0.1;
      for (std::size_t i = 0; i < fractions.size(); ++i) {
        if (fractions[i] == 0.0 && fidelities[i] != 1.0) {
          std::fprintf(stderr, "CHECK FAILED: fault-free fidelity %.4f != 1.0\n", fidelities[i]);
          return 1;
        }
        if (i > 0 && fractions[i] >= fractions[i - 1] &&
            fidelities[i] > fidelities[i - 1] + kTol) {
          std::fprintf(stderr, "CHECK FAILED: fidelity climbed %.4f -> %.4f at fraction %.3f\n",
                       fidelities[i - 1], fidelities[i], fractions[i]);
          return 1;
        }
      }
      std::printf("monotone check passed (%zu points)\n", fractions.size());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
