// nsc_info — inspect a network model file: geometry, resource usage,
// parameter distributions, validation findings.
//
//   nsc_info --net net.nsc [--per-core]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/analysis/lint.hpp"
#include "src/core/network_io.hpp"
#include "src/util/table.hpp"

namespace {

const char* flag_value(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string net_path = flag_value(argc, argv, "--net", "");
  if (net_path.empty()) {
    std::fprintf(stderr, "usage: nsc_info --net FILE [--per-core]\n");
    return 2;
  }
  try {
    const nsc::core::Network net = nsc::core::load_network(net_path);
    std::printf("%s\n", net_path.c_str());
    std::printf("geometry: %dx%d chips of %dx%d cores = %d cores, %d neuron slots\n",
                net.geom.chips_x, net.geom.chips_y, net.geom.cores_x, net.geom.cores_y,
                net.geom.total_cores(), net.geom.neurons());
    std::printf("seed: %llu\n", static_cast<unsigned long long>(net.seed));

    std::uint64_t enabled = 0, synapses = 0, stochastic = 0, delays[16] = {};
    int disabled_cores = 0;
    std::uint64_t targets_local = 0, targets_remote = 0, targets_none = 0;
    for (nsc::core::CoreId c = 0; c < static_cast<nsc::core::CoreId>(net.geom.total_cores());
         ++c) {
      const auto& cs = net.core(c);
      disabled_cores += cs.disabled ? 1 : 0;
      synapses += static_cast<std::uint64_t>(cs.crossbar.count());
      for (const auto& p : cs.neuron) {
        if (!p.enabled) continue;
        ++enabled;
        stochastic += (p.stochastic_weight || p.stochastic_leak || p.threshold_mask) ? 1 : 0;
        if (!p.target.valid()) {
          ++targets_none;
        } else {
          ++delays[p.target.delay & 15];
          if (p.target.core == c) {
            ++targets_local;
          } else {
            ++targets_remote;
          }
        }
      }
    }
    std::printf("enabled neurons: %llu (%.1f%% of slots), stochastic modes on %llu\n",
                static_cast<unsigned long long>(enabled),
                100.0 * static_cast<double>(enabled) / net.geom.neurons(),
                static_cast<unsigned long long>(stochastic));
    std::printf("synapses: %llu (density %.3f)\n", static_cast<unsigned long long>(synapses),
                static_cast<double>(synapses) /
                    (static_cast<double>(net.geom.total_cores()) * 256.0 * 256.0));
    std::printf("targets: %llu remote, %llu same-core, %llu none (sinks)\n",
                static_cast<unsigned long long>(targets_remote),
                static_cast<unsigned long long>(targets_local),
                static_cast<unsigned long long>(targets_none));
    std::printf("disabled cores: %d\n", disabled_cores);
    std::printf("delay histogram:");
    for (int d = 1; d <= 15; ++d) {
      if (delays[d]) std::printf(" %d:%llu", d, static_cast<unsigned long long>(delays[d]));
    }
    std::printf("\n");

    const auto lint = nsc::analysis::lint(net);
    if (lint.clean()) {
      std::printf("lint: OK\n");
    } else {
      std::printf("lint: %llu error(s), %llu warning(s), %llu info(s); first: [%s] %s\n",
                  static_cast<unsigned long long>(lint.count(nsc::analysis::Severity::kError)),
                  static_cast<unsigned long long>(lint.count(nsc::analysis::Severity::kWarn)),
                  static_cast<unsigned long long>(lint.count(nsc::analysis::Severity::kInfo)),
                  lint.findings[0].rule.c_str(), lint.findings[0].message.c_str());
      std::printf("      run nsc_lint --net %s for the full report\n", net_path.c_str());
    }

    if (flag_present(argc, argv, "--per-core")) {
      nsc::util::Table t({"core", "enabled", "synapses", "mean row fanout"});
      const int show = std::min(net.geom.total_cores(), 32);
      for (int c = 0; c < show; ++c) {
        const auto& cs = net.core(static_cast<nsc::core::CoreId>(c));
        int en = 0;
        for (const auto& p : cs.neuron) en += p.enabled ? 1 : 0;
        t.add_row({std::to_string(c), std::to_string(en), std::to_string(cs.crossbar.count()),
                   nsc::util::format_sig(cs.mean_row_synapses(), 3)});
      }
      if (net.geom.total_cores() > show) {
        std::printf("(showing the first %d of %d cores)\n", show, net.geom.total_cores());
      }
      t.print(std::cout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
