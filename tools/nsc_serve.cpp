// nsc_serve — simulation-as-a-service daemon (docs/SERVE.md).
//
//   nsc_serve --socket PATH --net NAME=FILE [--net NAME=FILE ...]
//             [--max-sessions N] [--max-connections N] [--threads N]
//             [--max-queued-spikes N] [--max-ticks-per-cmd N]
//             [--max-conn-mb N] [--no-lint]
//
// Loads every named network once at startup (refusing, exit 1, any network
// whose nsc_lint report contains error-severity findings — the same
// admission bar deployment uses), binds a Unix-domain socket, and serves the
// framed session protocol: tenants create resident simulator instances over
// the preloaded networks, tick them, inject AER events, stream spikes back,
// checkpoint/restore, and destroy. One poll-driven thread serializes all
// commands; per-session queues and slow-client eviction keep one tenant from
// stalling the rest. SIGTERM/SIGINT shut down cleanly: pending replies are
// flushed, every session is destroyed, and the socket path is unlinked.
//
// Exit codes: 0 clean shutdown (signal or kShutdown command), 1 runtime
// failure (unreadable/invalid network, lint-refused network, bind failure),
// 2 usage error (missing --socket, no --net, malformed NAME=FILE or numeric
// flag).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ipc/endpoint.hpp"
#include "src/serve/server.hpp"

namespace {

long long parse_ll(const char* name, const char* s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    throw std::runtime_error(std::string("invalid integer for ") + name + ": '" + s + "'");
  }
  return v;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --net NAME=FILE [--net NAME=FILE ...]\n"
               "          [--max-sessions N] [--max-connections N] [--threads N]\n"
               "          [--max-queued-spikes N] [--max-ticks-per-cmd N]\n"
               "          [--max-conn-mb N] [--no-lint]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  nsc::serve::Server::Config cfg;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto need = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) throw std::invalid_argument(std::string(flag) + " needs a value");
        return argv[++i];
      };
      if (arg == "--socket") {
        cfg.socket_path = need("--socket");
      } else if (arg == "--net") {
        const std::string spec = need("--net");
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
          throw std::invalid_argument("--net expects NAME=FILE, got '" + spec + "'");
        }
        cfg.net_paths.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      } else if (arg == "--max-sessions") {
        cfg.max_sessions = static_cast<int>(parse_ll("--max-sessions", need(arg.c_str())));
        if (cfg.max_sessions < 0) throw std::invalid_argument("--max-sessions must be >= 0");
      } else if (arg == "--max-connections") {
        cfg.max_connections =
            static_cast<int>(parse_ll("--max-connections", need(arg.c_str())));
        if (cfg.max_connections < 1) {
          throw std::invalid_argument("--max-connections must be >= 1");
        }
      } else if (arg == "--threads") {
        cfg.default_threads = static_cast<int>(parse_ll("--threads", need(arg.c_str())));
        if (cfg.default_threads < 1) throw std::invalid_argument("--threads must be >= 1");
      } else if (arg == "--max-queued-spikes") {
        const long long v = parse_ll("--max-queued-spikes", need(arg.c_str()));
        if (v < 1) throw std::invalid_argument("--max-queued-spikes must be >= 1");
        cfg.limits.max_queued_spikes = static_cast<std::size_t>(v);
      } else if (arg == "--max-ticks-per-cmd") {
        const long long v = parse_ll("--max-ticks-per-cmd", need(arg.c_str()));
        if (v < 1) throw std::invalid_argument("--max-ticks-per-cmd must be >= 1");
        cfg.limits.max_ticks_per_cmd = v;
      } else if (arg == "--max-conn-mb") {
        const long long v = parse_ll("--max-conn-mb", need(arg.c_str()));
        if (v < 1) throw std::invalid_argument("--max-conn-mb must be >= 1");
        cfg.max_conn_out_bytes = static_cast<std::size_t>(v) << 20;
      } else if (arg == "--no-lint") {
        cfg.lint_admission = false;
      } else {
        throw std::invalid_argument("unknown flag '" + arg + "'");
      }
    }
    if (cfg.socket_path.empty()) throw std::invalid_argument("--socket is required");
    if (cfg.net_paths.empty()) throw std::invalid_argument("at least one --net is required");
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "nsc_serve: %s\n", e.what());
    return usage(argv[0]);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "nsc_serve: %s\n", e.what());
    return usage(argv[0]);
  }

  try {
    nsc::serve::Server server(cfg);
    server.load_networks();
    server.bind();
    nsc::ipc::install_stop_signal(SIGTERM);
    nsc::ipc::install_stop_signal(SIGINT);
    std::fprintf(stderr, "nsc_serve: serving %zu network(s) on %s (max %d sessions)\n",
                 cfg.net_paths.size(), cfg.socket_path.c_str(), cfg.max_sessions);
    server.run();
    const auto& m = server.metrics();
    std::fprintf(stderr,
                 "nsc_serve: clean shutdown — %llu session(s) served, %llu tick(s), "
                 "%llu spike(s) streamed\n",
                 static_cast<unsigned long long>(m.counter_value("serve.sessions_created")),
                 static_cast<unsigned long long>(m.counter_value("serve.ticks_served")),
                 static_cast<unsigned long long>(m.counter_value("serve.spikes_streamed")));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nsc_serve: %s\n", e.what());
    return 1;
  }
}
