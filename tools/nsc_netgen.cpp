// nsc_netgen — generate network model files from the command line.
//
//   nsc_netgen recurrent --rate 20 --synapses 128 --cores-x 32 --cores-y 32
//              --seed 1 --out net.nsc
//   nsc_netgen random --cores-x 4 --cores-y 4 --density 0.25 --out net.nsc
//
// Writes the binary model format of src/core/network_io.hpp, loadable by
// nsc_run and by the library's load_network().
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/analysis/lint.hpp"
#include "src/analysis/report.hpp"
#include "src/core/network_io.hpp"
#include "src/netgen/random_net.hpp"
#include "src/netgen/recurrent.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: nsc_netgen recurrent|random [options] --out FILE\n"
               "  common:    --cores-x N --cores-y N --chips-x N --chips-y N --seed N\n"
               "  recurrent: --rate HZ --synapses K\n"
               "  random:    --density P --input-hz HZ\n");
}

/// Minimal flag parser: --name value pairs after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const {
    for (int i = 2; i + 1 < argc_; ++i) {
      if (name == argv_[i]) return argv_[i + 1];
    }
    return fallback;
  }
  /// Strict parses: a malformed value is a hard error, not a silent zero.
  [[nodiscard]] double get_d(const std::string& name, double fallback) const {
    const std::string v = get(name, "");
    if (v.empty()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      throw std::runtime_error("invalid number for " + name + ": '" + v + "'");
    }
    return d;
  }
  [[nodiscard]] int get_i(const std::string& name, int fallback) const {
    const std::string v = get(name, "");
    if (v.empty()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long d = std::strtol(v.c_str(), &end, 10);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      throw std::runtime_error("invalid integer for " + name + ": '" + v + "'");
    }
    return static_cast<int>(d);
  }

 private:
  int argc_;
  char** argv_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string mode = argv[1];
  const Flags flags(argc, argv);
  const std::string out = flags.get("--out", "");
  if (out.empty()) {
    usage();
    return 2;
  }

  try {
    nsc::core::Geometry geom;
    geom.chips_x = flags.get_i("--chips-x", 1);
    geom.chips_y = flags.get_i("--chips-y", 1);
    geom.cores_x = flags.get_i("--cores-x", 8);
    geom.cores_y = flags.get_i("--cores-y", 8);
    if (geom.chips_x <= 0 || geom.chips_y <= 0 || geom.cores_x <= 0 || geom.cores_y <= 0) {
      throw std::runtime_error("geometry dimensions must all be positive");
    }
    const auto seed = static_cast<std::uint64_t>(flags.get_i("--seed", 1));
    nsc::core::Network net;
    if (mode == "recurrent") {
      nsc::netgen::RecurrentSpec spec;
      spec.geom = geom;
      spec.seed = seed;
      spec.rate_hz = flags.get_d("--rate", 20.0);
      spec.synapses_per_axon = flags.get_i("--synapses", 128);
      // Out-of-envelope requests are clamped with an explicit warn; the
      // generator itself rejects them outright (no silent saturation).
      const int k_max = nsc::core::kCoreSize;
      if (spec.synapses_per_axon < 0 || spec.synapses_per_axon > k_max) {
        const int clamped = spec.synapses_per_axon < 0 ? 0 : k_max;
        std::fprintf(stderr, "warn: --synapses %d outside [0, %d]; clamping to %d\n",
                     spec.synapses_per_axon, k_max, clamped);
        spec.synapses_per_axon = clamped;
      }
      const auto cal = nsc::netgen::calibrate(spec);
      net = nsc::netgen::make_recurrent(spec);
      if (std::abs(cal.expected_rate_hz - spec.rate_hz) > 0.1 * spec.rate_hz) {
        std::fprintf(stderr,
                     "warn: target rate %.2f Hz is not reachable inside the hardware "
                     "envelope; calibrated to %.2f Hz\n",
                     spec.rate_hz, cal.expected_rate_hz);
      }
      std::printf("recurrent network: %d cores, target %.1f Hz (calibrated %.1f Hz), "
                  "K=%d, threshold %d, leak %d\n",
                  geom.total_cores(), spec.rate_hz, cal.expected_rate_hz,
                  spec.synapses_per_axon, cal.threshold, cal.leak);
    } else if (mode == "random") {
      nsc::netgen::RandomNetSpec spec;
      spec.geom = geom;
      spec.seed = seed;
      spec.synapse_density = flags.get_d("--density", 0.25);
      spec.input_drive_hz = flags.get_d("--input-hz", 100.0);
      if (spec.synapse_density < 0.0 || spec.synapse_density > 1.0) {
        const double clamped = spec.synapse_density < 0.0 ? 0.0 : 1.0;
        std::fprintf(stderr, "warn: --density %.3f outside [0, 1]; clamping to %.1f\n",
                     spec.synapse_density, clamped);
        spec.synapse_density = clamped;
      }
      net = nsc::netgen::make_random(spec);
      std::printf("random network: %d cores, density %.2f\n", geom.total_cores(),
                  spec.synapse_density);
    } else {
      usage();
      return 2;
    }
    // Generators must emit lint-clean networks: refuse to write anything
    // outside the hardware envelope, and surface every warning explicitly
    // (nothing is silently clamped).
    const auto report = nsc::analysis::lint(net);
    for (const auto& f : report.findings) {
      if (f.severity != nsc::analysis::Severity::kInfo) {
        std::fprintf(stderr, "%s [%s] %s\n", std::string(severity_name(f.severity)).c_str(),
                     f.rule.c_str(), f.message.c_str());
      }
    }
    if (report.count(nsc::analysis::Severity::kError) > 0) {
      throw std::runtime_error("generated network fails lint; refusing to write " + out);
    }
    nsc::core::save_network(net, out);
    std::printf("wrote %s (%llu synapses, %llu enabled neurons)\n", out.c_str(),
                static_cast<unsigned long long>(net.total_synapses()),
                static_cast<unsigned long long>(net.enabled_neurons()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
