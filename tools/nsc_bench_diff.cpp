// nsc_bench_diff — compare two BENCH_*.json metrics reports and gate on
// regressions (the hook CI's bench smoke job fails on).
//
//   nsc_bench_diff baseline.json candidate.json [--threshold R] [--phases]
//
// Throughput metrics (ticks_per_s, sops_per_s) regress when the candidate is
// more than R× slower than the baseline; with --phases, per-phase mean wall
// times regress when more than R× larger. Exit codes: 0 = within threshold,
// 1 = regression detected, 2 = usage or parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/json_report.hpp"

namespace {

const char* string_at(const nsc::obs::JsonValue& doc, const char* key, const char* fallback) {
  const nsc::obs::JsonValue* v = doc.find(key);
  return v != nullptr && v->kind() == nsc::obs::JsonValue::Kind::String ? v->as_string().c_str()
                                                                        : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 1.25;
  bool phases = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--phases") == 0) {
      phases = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2 || threshold < 1.0) {
    std::fprintf(stderr,
                 "usage: nsc_bench_diff baseline.json candidate.json [--threshold R>=1] "
                 "[--phases]\n");
    return 2;
  }

  try {
    const nsc::obs::JsonValue base = nsc::obs::load_json_file(paths[0]);
    const nsc::obs::JsonValue cand = nsc::obs::load_json_file(paths[1]);
    std::printf("baseline:  %s (%s, git %s)\n", paths[0].c_str(), string_at(base, "name", "?"),
                string_at(base, "git_sha", "?"));
    std::printf("candidate: %s (%s, git %s)\n", paths[1].c_str(), string_at(cand, "name", "?"),
                string_at(cand, "git_sha", "?"));
    std::printf("threshold: %.2fx%s\n\n", threshold, phases ? " (including phases)" : "");

    const nsc::obs::DiffResult diff = nsc::obs::diff_reports(base, cand, threshold, phases);
    if (diff.entries.empty()) {
      std::fprintf(stderr, "no comparable metrics found (wrong schema?)\n");
      return 2;
    }
    for (const nsc::obs::DiffEntry& e : diff.entries) {
      std::printf("%-28s %14.4g -> %14.4g   ratio %6.3f   %s\n", e.metric.c_str(), e.baseline,
                  e.candidate, e.ratio, e.regression ? "REGRESSION" : "ok");
    }
    if (diff.regressed) {
      std::printf("\nFAIL: regression beyond %.2fx threshold\n", threshold);
      return 1;
    }
    std::printf("\nOK: all metrics within %.2fx threshold\n", threshold);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
