// nsc_bench_diff — compare two BENCH_*.json metrics reports and gate on
// regressions (the hook CI's bench smoke job fails on).
//
//   nsc_bench_diff baseline.json candidate.json [--threshold R] [--phases]
//                  [--min-speedup S]
//
// Throughput metrics (ticks_per_s, sops_per_s) regress when the candidate is
// more than R× slower than the baseline; with --phases, per-phase mean wall
// times regress when more than R× larger. --min-speedup S replaces the
// regression gate on throughput metrics: every one must be at least S× the
// baseline — the CI check that pins an optimization's promised win (e.g. the
// event-driven hot path's ≥2× at the sparse operating point, or the 4-rank
// distributed speedup) so it cannot silently erode. The two reports may then
// be different configurations of the same workload (1 rank vs 4 ranks), where
// "candidate slower than baseline" is exactly what the gate is for. Exit
// codes: 0 = within threshold, 1 = regression (or missed speedup) detected,
// 2 = usage or parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/json_report.hpp"

namespace {

const char* string_at(const nsc::obs::JsonValue& doc, const char* key, const char* fallback) {
  const nsc::obs::JsonValue* v = doc.find(key);
  return v != nullptr && v->kind() == nsc::obs::JsonValue::Kind::String ? v->as_string().c_str()
                                                                        : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 1.25;
  double min_speedup = 0.0;  // 0 = gate disabled
  bool phases = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--phases") == 0) {
      phases = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2 || threshold < 1.0 || min_speedup < 0.0) {
    std::fprintf(stderr,
                 "usage: nsc_bench_diff baseline.json candidate.json [--threshold R>=1] "
                 "[--phases] [--min-speedup S>=0]\n");
    return 2;
  }

  try {
    const nsc::obs::JsonValue base = nsc::obs::load_json_file(paths[0]);
    const nsc::obs::JsonValue cand = nsc::obs::load_json_file(paths[1]);
    std::printf("baseline:  %s (%s, git %s)\n", paths[0].c_str(), string_at(base, "name", "?"),
                string_at(base, "git_sha", "?"));
    std::printf("candidate: %s (%s, git %s)\n", paths[1].c_str(), string_at(cand, "name", "?"),
                string_at(cand, "git_sha", "?"));
    std::printf("threshold: %.2fx%s\n\n", threshold, phases ? " (including phases)" : "");

    const nsc::obs::DiffResult diff = nsc::obs::diff_reports(base, cand, threshold, phases);
    if (diff.entries.empty()) {
      std::fprintf(stderr, "no comparable metrics found (wrong schema?)\n");
      return 2;
    }
    for (const nsc::obs::DiffEntry& e : diff.entries) {
      std::printf("%-28s %14.4g -> %14.4g   ratio %6.3f   %s\n", e.metric.c_str(), e.baseline,
                  e.candidate, e.ratio, e.regression ? "REGRESSION" : "ok");
    }
    const auto is_throughput = [](const std::string& m) {
      return m.size() > 6 && m.compare(m.size() - 6, 6, "_per_s") == 0;
    };
    bool missed_speedup = false;
    if (min_speedup > 0.0) {
      std::printf("\n");
      for (const nsc::obs::DiffEntry& e : diff.entries) {
        // Speedup gating only makes sense for higher-is-better throughput
        // metrics; phase wall times (lower is better) are excluded.
        if (!is_throughput(e.metric)) continue;
        const bool ok = e.ratio >= min_speedup;
        missed_speedup = missed_speedup || !ok;
        std::printf("speedup %-28s ratio %6.3f (need >= %.2f)   %s\n", e.metric.c_str(), e.ratio,
                    min_speedup, ok ? "ok" : "BELOW TARGET");
      }
    }
    // With the speedup gate active, it owns the verdict on throughput
    // metrics; the R x threshold still applies to any phase entries.
    bool regressed = false;
    for (const nsc::obs::DiffEntry& e : diff.entries) {
      if (min_speedup > 0.0 && is_throughput(e.metric)) continue;
      regressed = regressed || e.regression;
    }
    if (regressed || missed_speedup) {
      if (regressed) {
        std::printf("\nFAIL: regression beyond %.2fx threshold\n", threshold);
      }
      if (missed_speedup) {
        std::printf("\nFAIL: throughput below %.2fx required speedup\n", min_speedup);
      }
      return 1;
    }
    std::printf("\nOK: all metrics within %.2fx threshold\n", threshold);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
