// nsc_lint_fixture — writes tiny crafted network and checkpoint files for
// the nsc_lint CLI exit-code tests (tools/CMakeLists.txt). nsc_netgen cannot
// produce these: it refuses to write networks that fail lint, which is
// exactly what the error fixture must be — and no simulator will ever emit a
// forged or truncated NSCK image.
//
//   nsc_lint_fixture --dir DIR
//
// Network fixtures written into DIR:
//   lint_clean.nsc — a 4-core ring whose only finding is the informational
//                    recurrent loop (deployable even at --fail-on=warn)
//   lint_warn.nsc  — the ring plus one neuron starting at its threshold
//                    (NSC014, warn; deployable only at --fail-on=error)
//   lint_error.nsc — the ring plus one zero-delay route (NSC007, error;
//                    never deployable)
//
// Checkpoint fixtures (audited by `nsc_lint --checkpoint`, docs/ANALYSIS.md):
//   ck_valid.nsck         — consistent snapshot of the ring (audits clean)
//   ck_forged_magic.nsck  — first magic byte flipped (NSC048, exit 2)
//   ck_truncated.nsck     — valid image cut mid-payload (NSC048, exit 2)
//   ck_bad_geometry.nsck  — header claims ~2^31 cores (NSC048, exit 2;
//                           the loader must reject it BEFORE allocating)
//   ck_seed_mismatch.nsck — wrong network seed (NSC049 vs lint_clean.nsc)
//   ck_bad_bitmap.nsck    — fault bitmap byte = 2 (NSC050, exit 2)
//   ck_bad_potential.nsck — membrane potential above the 20-bit envelope
//                           (NSC051, exit 2)
//   ck_stale_tick.nsck    — header tick behind stats.ticks (NSC052, warn)
//   ck_dead_delay.nsck    — dead core with buffered deliveries
//                           (NSC053 info + NSC054 warn)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/core/network.hpp"
#include "src/core/network_io.hpp"
#include "src/core/snapshot.hpp"
#include "src/util/bitrow.hpp"

namespace {

// 16 delay slots x 4 bit-words per slot — the snapshot's per-core slice of
// the axonal delay buffer (src/core/snapshot.cpp).
constexpr std::size_t kDelayWordsPerCore =
    static_cast<std::size_t>(nsc::core::kMaxDelay + 1) * nsc::util::BitRow256::kWords;

nsc::core::Network make_ring() {
  using namespace nsc;
  core::Network net(core::Geometry{1, 1, 2, 2});
  for (core::CoreId c = 0; c < 4; ++c) {
    for (int j = 0; j < core::kCoreSize; ++j) {
      net.core(c).crossbar.set(j, j);
      core::NeuronParams& p = net.core(c).neuron[j];
      p.threshold = 100;
      p.target = {(c + 1) % 4, static_cast<std::uint16_t>(j), 1};
    }
  }
  return net;
}

nsc::core::Snapshot make_snapshot(const nsc::core::Network& net) {
  using namespace nsc;
  core::Snapshot snap;
  snap.backend = core::SnapshotBackend::kCompass;
  snap.geom = net.geom;
  snap.net_seed = net.seed;
  snap.tick = 5;
  snap.stats.ticks = 5;
  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  snap.v.assign(ncores * core::kCoreSize, 0);
  snap.delay_words.assign(ncores * kDelayWordsPerCore, 0);
  return snap;
}

std::string snapshot_bytes(const nsc::core::Snapshot& snap) {
  std::ostringstream os(std::ios::binary);
  nsc::core::save_snapshot(snap, os);
  return os.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* dir = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0) dir = argv[i + 1];
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: nsc_lint_fixture --dir DIR\n");
    return 2;
  }
  try {
    const std::string base = std::string(dir) + "/";
    const nsc::core::Network ring = make_ring();
    nsc::core::save_network(ring, base + "lint_clean.nsc");

    nsc::core::Network warn = make_ring();
    warn.core(0).neuron[0].init_v = warn.core(0).neuron[0].threshold;  // NSC014
    nsc::core::save_network(warn, base + "lint_warn.nsc");

    nsc::core::Network error = make_ring();
    error.core(0).neuron[0].target.delay = 0;  // NSC007
    nsc::core::save_network(error, base + "lint_error.nsc");

    // --- checkpoint-audit fixtures ---
    const std::string valid = snapshot_bytes(make_snapshot(ring));
    write_bytes(base + "ck_valid.nsck", valid);

    std::string forged = valid;
    forged[0] = static_cast<char>(forged[0] ^ 0x5A);  // NSC048: wrong magic
    write_bytes(base + "ck_forged_magic.nsck", forged);

    // NSC048: payload cut mid-stream; the loader's stream_remaining check
    // must reject it before any bulk allocation.
    write_bytes(base + "ck_truncated.nsck", valid.substr(0, valid.size() / 2));

    // NSC048: header claims an absurd core grid. Offset 9 is the first
    // geometry int32 (after magic u32, version u32, backend u8).
    std::string huge = valid;
    huge[9] = '\x00';
    huge[10] = '\x00';
    huge[11] = '\x00';
    huge[12] = '\x7f';  // chips_x = 0x7f000000
    write_bytes(base + "ck_bad_geometry.nsck", huge);

    nsc::core::Snapshot mismatch = make_snapshot(ring);
    mismatch.net_seed = ring.seed + 1;  // NSC049 vs lint_clean.nsc
    write_bytes(base + "ck_seed_mismatch.nsck", snapshot_bytes(mismatch));

    nsc::core::Snapshot bitmap = make_snapshot(ring);
    bitmap.dead_cores.assign(static_cast<std::size_t>(ring.geom.total_cores()), 0);
    bitmap.dead_cores[1] = 2;  // NSC050: non-boolean liveness byte
    write_bytes(base + "ck_bad_bitmap.nsck", snapshot_bytes(bitmap));

    nsc::core::Snapshot hot = make_snapshot(ring);
    hot.v[3] = nsc::core::kPotentialMax + 7;  // NSC051: outside 20-bit envelope
    write_bytes(base + "ck_bad_potential.nsck", snapshot_bytes(hot));

    nsc::core::Snapshot stale = make_snapshot(ring);
    stale.tick = 2;
    stale.stats.ticks = 9;  // NSC052: clock behind the counters
    write_bytes(base + "ck_stale_tick.nsck", snapshot_bytes(stale));

    nsc::core::Snapshot dead = make_snapshot(ring);
    dead.dead_cores.assign(static_cast<std::size_t>(ring.geom.total_cores()), 0);
    dead.dead_cores[2] = 1;  // NSC053: runtime fault state present
    // NSC054: a delivery buffered on the dead core — it can never drain.
    dead.delay_words[2 * kDelayWordsPerCore] = 0x1;
    write_bytes(base + "ck_dead_delay.nsck", snapshot_bytes(dead));

    std::printf("wrote lint fixtures to %s\n", dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
