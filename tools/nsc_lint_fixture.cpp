// nsc_lint_fixture — writes tiny crafted network files for the nsc_lint CLI
// exit-code tests (tools/CMakeLists.txt). nsc_netgen cannot produce these:
// it refuses to write networks that fail lint, which is exactly what the
// error fixture must be.
//
//   nsc_lint_fixture --dir DIR
//
// Writes into DIR:
//   lint_clean.nsc — a 4-core ring whose only finding is the informational
//                    recurrent loop (deployable even at --fail-on=warn)
//   lint_warn.nsc  — the ring plus one neuron starting at its threshold
//                    (NSC014, warn; deployable only at --fail-on=error)
//   lint_error.nsc — the ring plus one zero-delay route (NSC007, error;
//                    never deployable)
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/core/network.hpp"
#include "src/core/network_io.hpp"

namespace {

nsc::core::Network make_ring() {
  using namespace nsc;
  core::Network net(core::Geometry{1, 1, 2, 2});
  for (core::CoreId c = 0; c < 4; ++c) {
    for (int j = 0; j < core::kCoreSize; ++j) {
      net.core(c).crossbar.set(j, j);
      core::NeuronParams& p = net.core(c).neuron[j];
      p.threshold = 100;
      p.target = {(c + 1) % 4, static_cast<std::uint16_t>(j), 1};
    }
  }
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const char* dir = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0) dir = argv[i + 1];
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: nsc_lint_fixture --dir DIR\n");
    return 2;
  }
  try {
    const std::string base = std::string(dir) + "/";
    nsc::core::save_network(make_ring(), base + "lint_clean.nsc");

    nsc::core::Network warn = make_ring();
    warn.core(0).neuron[0].init_v = warn.core(0).neuron[0].threshold;  // NSC014
    nsc::core::save_network(warn, base + "lint_warn.nsc");

    nsc::core::Network error = make_ring();
    error.core(0).neuron[0].target.delay = 0;  // NSC007
    nsc::core::save_network(error, base + "lint_error.nsc");

    std::printf("wrote lint fixtures to %s\n", dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
