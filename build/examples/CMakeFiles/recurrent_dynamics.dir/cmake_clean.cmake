file(REMOVE_RECURSE
  "CMakeFiles/recurrent_dynamics.dir/recurrent_dynamics.cpp.o"
  "CMakeFiles/recurrent_dynamics.dir/recurrent_dynamics.cpp.o.d"
  "recurrent_dynamics"
  "recurrent_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurrent_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
