# Empty dependencies file for recurrent_dynamics.
# This may be replaced when dependencies are built.
