file(REMOVE_RECURSE
  "CMakeFiles/vision_pipeline.dir/vision_pipeline.cpp.o"
  "CMakeFiles/vision_pipeline.dir/vision_pipeline.cpp.o.d"
  "vision_pipeline"
  "vision_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
