# Empty dependencies file for vision_pipeline.
# This may be replaced when dependencies are built.
