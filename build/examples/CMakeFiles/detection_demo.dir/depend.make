# Empty dependencies file for detection_demo.
# This may be replaced when dependencies are built.
