# Empty compiler generated dependencies file for detection_demo.
# This may be replaced when dependencies are built.
