file(REMOVE_RECURSE
  "CMakeFiles/detection_demo.dir/detection_demo.cpp.o"
  "CMakeFiles/detection_demo.dir/detection_demo.cpp.o.d"
  "detection_demo"
  "detection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
