# Empty dependencies file for trained_classifier.
# This may be replaced when dependencies are built.
