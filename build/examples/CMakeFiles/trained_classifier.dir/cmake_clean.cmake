file(REMOVE_RECURSE
  "CMakeFiles/trained_classifier.dir/trained_classifier.cpp.o"
  "CMakeFiles/trained_classifier.dir/trained_classifier.cpp.o.d"
  "trained_classifier"
  "trained_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trained_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
