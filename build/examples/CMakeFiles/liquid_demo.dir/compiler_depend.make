# Empty compiler generated dependencies file for liquid_demo.
# This may be replaced when dependencies are built.
