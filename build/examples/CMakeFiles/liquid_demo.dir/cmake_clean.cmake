file(REMOVE_RECURSE
  "CMakeFiles/liquid_demo.dir/liquid_demo.cpp.o"
  "CMakeFiles/liquid_demo.dir/liquid_demo.cpp.o.d"
  "liquid_demo"
  "liquid_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
