file(REMOVE_RECURSE
  "CMakeFiles/headline_gsops.dir/headline_gsops.cpp.o"
  "CMakeFiles/headline_gsops.dir/headline_gsops.cpp.o.d"
  "headline_gsops"
  "headline_gsops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_gsops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
