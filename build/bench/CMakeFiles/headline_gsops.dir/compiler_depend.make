# Empty compiler generated dependencies file for headline_gsops.
# This may be replaced when dependencies are built.
