file(REMOVE_RECURSE
  "CMakeFiles/micro_kernel.dir/micro_kernel.cpp.o"
  "CMakeFiles/micro_kernel.dir/micro_kernel.cpp.o.d"
  "micro_kernel"
  "micro_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
