file(REMOVE_RECURSE
  "CMakeFiles/equivalence_regressions.dir/equivalence_regressions.cpp.o"
  "CMakeFiles/equivalence_regressions.dir/equivalence_regressions.cpp.o.d"
  "equivalence_regressions"
  "equivalence_regressions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_regressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
