# Empty compiler generated dependencies file for equivalence_regressions.
# This may be replaced when dependencies are built.
