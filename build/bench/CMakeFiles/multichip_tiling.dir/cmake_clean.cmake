file(REMOVE_RECURSE
  "CMakeFiles/multichip_tiling.dir/multichip_tiling.cpp.o"
  "CMakeFiles/multichip_tiling.dir/multichip_tiling.cpp.o.d"
  "multichip_tiling"
  "multichip_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichip_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
