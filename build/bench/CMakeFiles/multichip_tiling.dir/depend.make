# Empty dependencies file for multichip_tiling.
# This may be replaced when dependencies are built.
