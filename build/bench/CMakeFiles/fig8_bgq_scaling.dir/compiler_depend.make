# Empty compiler generated dependencies file for fig8_bgq_scaling.
# This may be replaced when dependencies are built.
