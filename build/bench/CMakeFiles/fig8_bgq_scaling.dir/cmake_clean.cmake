file(REMOVE_RECURSE
  "CMakeFiles/fig8_bgq_scaling.dir/fig8_bgq_scaling.cpp.o"
  "CMakeFiles/fig8_bgq_scaling.dir/fig8_bgq_scaling.cpp.o.d"
  "fig8_bgq_scaling"
  "fig8_bgq_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bgq_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
