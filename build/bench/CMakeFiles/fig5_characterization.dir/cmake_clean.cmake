file(REMOVE_RECURSE
  "CMakeFiles/fig5_characterization.dir/fig5_characterization.cpp.o"
  "CMakeFiles/fig5_characterization.dir/fig5_characterization.cpp.o.d"
  "fig5_characterization"
  "fig5_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
