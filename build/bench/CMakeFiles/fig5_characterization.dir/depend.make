# Empty dependencies file for fig5_characterization.
# This may be replaced when dependencies are built.
