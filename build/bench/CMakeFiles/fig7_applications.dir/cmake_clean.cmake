file(REMOVE_RECURSE
  "CMakeFiles/fig7_applications.dir/fig7_applications.cpp.o"
  "CMakeFiles/fig7_applications.dir/fig7_applications.cpp.o.d"
  "fig7_applications"
  "fig7_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
