# Empty dependencies file for fig7_applications.
# This may be replaced when dependencies are built.
