# Empty dependencies file for future_systems.
# This may be replaced when dependencies are built.
