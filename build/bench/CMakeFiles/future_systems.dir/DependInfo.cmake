
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/future_systems.cpp" "bench/CMakeFiles/future_systems.dir/future_systems.cpp.o" "gcc" "bench/CMakeFiles/future_systems.dir/future_systems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/neurosyn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/netgen/CMakeFiles/neurosyn_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/neurosyn_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/compass/CMakeFiles/neurosyn_compass.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/neurosyn_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/neurosyn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/tn/CMakeFiles/neurosyn_tn.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/neurosyn_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/corelet/CMakeFiles/neurosyn_corelet.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neurosyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/neurosyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
