file(REMOVE_RECURSE
  "CMakeFiles/future_systems.dir/future_systems.cpp.o"
  "CMakeFiles/future_systems.dir/future_systems.cpp.o.d"
  "future_systems"
  "future_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
