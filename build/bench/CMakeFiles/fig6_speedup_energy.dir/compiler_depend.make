# Empty compiler generated dependencies file for fig6_speedup_energy.
# This may be replaced when dependencies are built.
