# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_neuron[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_simulators[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_corelet[1]_include.cmake")
include("/root/repo/build/tests/test_vision[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_corelet_lib2[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_aer[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_lsm[1]_include.cmake")
include("/root/repo/build/tests/test_more_coverage[1]_include.cmake")
