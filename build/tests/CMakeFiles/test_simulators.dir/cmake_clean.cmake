file(REMOVE_RECURSE
  "CMakeFiles/test_simulators.dir/test_simulators.cpp.o"
  "CMakeFiles/test_simulators.dir/test_simulators.cpp.o.d"
  "test_simulators"
  "test_simulators.pdb"
  "test_simulators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
