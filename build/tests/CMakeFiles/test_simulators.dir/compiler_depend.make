# Empty compiler generated dependencies file for test_simulators.
# This may be replaced when dependencies are built.
