file(REMOVE_RECURSE
  "CMakeFiles/test_lsm.dir/test_lsm.cpp.o"
  "CMakeFiles/test_lsm.dir/test_lsm.cpp.o.d"
  "test_lsm"
  "test_lsm.pdb"
  "test_lsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
