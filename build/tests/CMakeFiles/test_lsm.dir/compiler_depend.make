# Empty compiler generated dependencies file for test_lsm.
# This may be replaced when dependencies are built.
