file(REMOVE_RECURSE
  "CMakeFiles/test_vision.dir/test_vision.cpp.o"
  "CMakeFiles/test_vision.dir/test_vision.cpp.o.d"
  "test_vision"
  "test_vision.pdb"
  "test_vision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
