# Empty compiler generated dependencies file for test_vision.
# This may be replaced when dependencies are built.
