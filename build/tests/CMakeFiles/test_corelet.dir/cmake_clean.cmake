file(REMOVE_RECURSE
  "CMakeFiles/test_corelet.dir/test_corelet.cpp.o"
  "CMakeFiles/test_corelet.dir/test_corelet.cpp.o.d"
  "test_corelet"
  "test_corelet.pdb"
  "test_corelet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
