# Empty dependencies file for test_corelet.
# This may be replaced when dependencies are built.
