file(REMOVE_RECURSE
  "CMakeFiles/test_more_coverage.dir/test_more_coverage.cpp.o"
  "CMakeFiles/test_more_coverage.dir/test_more_coverage.cpp.o.d"
  "test_more_coverage"
  "test_more_coverage.pdb"
  "test_more_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
