file(REMOVE_RECURSE
  "CMakeFiles/test_train.dir/test_train.cpp.o"
  "CMakeFiles/test_train.dir/test_train.cpp.o.d"
  "test_train"
  "test_train.pdb"
  "test_train[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
