file(REMOVE_RECURSE
  "CMakeFiles/test_aer.dir/test_aer.cpp.o"
  "CMakeFiles/test_aer.dir/test_aer.cpp.o.d"
  "test_aer"
  "test_aer.pdb"
  "test_aer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
