# Empty dependencies file for test_aer.
# This may be replaced when dependencies are built.
