file(REMOVE_RECURSE
  "CMakeFiles/test_neuron.dir/test_neuron.cpp.o"
  "CMakeFiles/test_neuron.dir/test_neuron.cpp.o.d"
  "test_neuron"
  "test_neuron.pdb"
  "test_neuron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neuron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
