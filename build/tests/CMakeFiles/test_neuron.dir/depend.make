# Empty dependencies file for test_neuron.
# This may be replaced when dependencies are built.
