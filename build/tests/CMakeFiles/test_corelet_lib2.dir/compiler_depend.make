# Empty compiler generated dependencies file for test_corelet_lib2.
# This may be replaced when dependencies are built.
