file(REMOVE_RECURSE
  "CMakeFiles/test_corelet_lib2.dir/test_corelet_lib2.cpp.o"
  "CMakeFiles/test_corelet_lib2.dir/test_corelet_lib2.cpp.o.d"
  "test_corelet_lib2"
  "test_corelet_lib2.pdb"
  "test_corelet_lib2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corelet_lib2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
