# Empty dependencies file for nsc_netgen.
# This may be replaced when dependencies are built.
