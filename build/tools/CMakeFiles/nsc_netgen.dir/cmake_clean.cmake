file(REMOVE_RECURSE
  "CMakeFiles/nsc_netgen.dir/nsc_netgen.cpp.o"
  "CMakeFiles/nsc_netgen.dir/nsc_netgen.cpp.o.d"
  "nsc_netgen"
  "nsc_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsc_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
