file(REMOVE_RECURSE
  "CMakeFiles/nsc_info.dir/nsc_info.cpp.o"
  "CMakeFiles/nsc_info.dir/nsc_info.cpp.o.d"
  "nsc_info"
  "nsc_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsc_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
