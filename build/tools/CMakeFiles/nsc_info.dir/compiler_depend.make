# Empty compiler generated dependencies file for nsc_info.
# This may be replaced when dependencies are built.
