# Empty compiler generated dependencies file for nsc_run.
# This may be replaced when dependencies are built.
