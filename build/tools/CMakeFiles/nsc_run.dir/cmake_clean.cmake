file(REMOVE_RECURSE
  "CMakeFiles/nsc_run.dir/nsc_run.cpp.o"
  "CMakeFiles/nsc_run.dir/nsc_run.cpp.o.d"
  "nsc_run"
  "nsc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
