# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_netgen "/root/repo/build/tools/nsc_netgen" "recurrent" "--rate" "50" "--synapses" "64" "--cores-x" "4" "--cores-y" "4" "--out" "/root/repo/build/tools/cli_test.nsc")
set_tests_properties(cli_netgen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/nsc_info" "--net" "/root/repo/build/tools/cli_test.nsc" "--per-core")
set_tests_properties(cli_info PROPERTIES  DEPENDS "cli_netgen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_tn "/root/repo/build/tools/nsc_run" "--net" "/root/repo/build/tools/cli_test.nsc" "--ticks" "50" "--out" "/root/repo/build/tools/cli_test.aer")
set_tests_properties(cli_run_tn PROPERTIES  DEPENDS "cli_netgen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_compass "/root/repo/build/tools/nsc_run" "--net" "/root/repo/build/tools/cli_test.nsc" "--ticks" "50" "--backend" "compass" "--threads" "3")
set_tests_properties(cli_run_compass PROPERTIES  DEPENDS "cli_netgen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify "/root/repo/build/tools/nsc_run" "--net" "/root/repo/build/tools/cli_test.nsc" "--ticks" "50" "--threads" "2" "--verify")
set_tests_properties(cli_verify PROPERTIES  DEPENDS "cli_netgen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay "/root/repo/build/tools/nsc_run" "--net" "/root/repo/build/tools/cli_test.nsc" "--ticks" "50" "--in" "/root/repo/build/tools/cli_test.aer" "--backend" "compass" "--threads" "2")
set_tests_properties(cli_replay PROPERTIES  DEPENDS "cli_run_tn" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
