# Empty compiler generated dependencies file for neurosyn_compass.
# This may be replaced when dependencies are built.
