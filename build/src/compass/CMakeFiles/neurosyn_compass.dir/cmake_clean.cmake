file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_compass.dir/partition.cpp.o"
  "CMakeFiles/neurosyn_compass.dir/partition.cpp.o.d"
  "CMakeFiles/neurosyn_compass.dir/simulator.cpp.o"
  "CMakeFiles/neurosyn_compass.dir/simulator.cpp.o.d"
  "libneurosyn_compass.a"
  "libneurosyn_compass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_compass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
