file(REMOVE_RECURSE
  "libneurosyn_compass.a"
)
