# CMake generated Testfile for 
# Source directory: /root/repo/src/compass
# Build directory: /root/repo/build/src/compass
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
