
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_common.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/app_common.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/app_common.cpp.o.d"
  "/root/repo/src/apps/haar.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/haar.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/haar.cpp.o.d"
  "/root/repo/src/apps/lbp.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/lbp.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/lbp.cpp.o.d"
  "/root/repo/src/apps/lsm.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/lsm.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/lsm.cpp.o.d"
  "/root/repo/src/apps/neovision.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/neovision.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/neovision.cpp.o.d"
  "/root/repo/src/apps/optical_flow.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/optical_flow.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/optical_flow.cpp.o.d"
  "/root/repo/src/apps/patch.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/patch.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/patch.cpp.o.d"
  "/root/repo/src/apps/saccade.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/saccade.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/saccade.cpp.o.d"
  "/root/repo/src/apps/saliency.cpp" "src/apps/CMakeFiles/neurosyn_apps.dir/saliency.cpp.o" "gcc" "src/apps/CMakeFiles/neurosyn_apps.dir/saliency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neurosyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corelet/CMakeFiles/neurosyn_corelet.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/neurosyn_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/tn/CMakeFiles/neurosyn_tn.dir/DependInfo.cmake"
  "/root/repo/build/src/compass/CMakeFiles/neurosyn_compass.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/neurosyn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/neurosyn_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/neurosyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
