# Empty compiler generated dependencies file for neurosyn_apps.
# This may be replaced when dependencies are built.
