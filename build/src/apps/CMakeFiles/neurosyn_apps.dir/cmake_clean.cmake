file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_apps.dir/app_common.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/app_common.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/haar.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/haar.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/lbp.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/lbp.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/lsm.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/lsm.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/neovision.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/neovision.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/optical_flow.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/optical_flow.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/patch.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/patch.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/saccade.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/saccade.cpp.o.d"
  "CMakeFiles/neurosyn_apps.dir/saliency.cpp.o"
  "CMakeFiles/neurosyn_apps.dir/saliency.cpp.o.d"
  "libneurosyn_apps.a"
  "libneurosyn_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
