file(REMOVE_RECURSE
  "libneurosyn_apps.a"
)
