# Empty compiler generated dependencies file for neurosyn_util.
# This may be replaced when dependencies are built.
