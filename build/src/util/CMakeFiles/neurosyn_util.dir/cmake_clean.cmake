file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_util.dir/csv.cpp.o"
  "CMakeFiles/neurosyn_util.dir/csv.cpp.o.d"
  "CMakeFiles/neurosyn_util.dir/prng.cpp.o"
  "CMakeFiles/neurosyn_util.dir/prng.cpp.o.d"
  "CMakeFiles/neurosyn_util.dir/stats.cpp.o"
  "CMakeFiles/neurosyn_util.dir/stats.cpp.o.d"
  "CMakeFiles/neurosyn_util.dir/table.cpp.o"
  "CMakeFiles/neurosyn_util.dir/table.cpp.o.d"
  "CMakeFiles/neurosyn_util.dir/thread_pool.cpp.o"
  "CMakeFiles/neurosyn_util.dir/thread_pool.cpp.o.d"
  "libneurosyn_util.a"
  "libneurosyn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
