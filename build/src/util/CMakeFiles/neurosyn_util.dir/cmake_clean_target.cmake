file(REMOVE_RECURSE
  "libneurosyn_util.a"
)
