file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_corelet.dir/corelet.cpp.o"
  "CMakeFiles/neurosyn_corelet.dir/corelet.cpp.o.d"
  "CMakeFiles/neurosyn_corelet.dir/lib.cpp.o"
  "CMakeFiles/neurosyn_corelet.dir/lib.cpp.o.d"
  "CMakeFiles/neurosyn_corelet.dir/lib2.cpp.o"
  "CMakeFiles/neurosyn_corelet.dir/lib2.cpp.o.d"
  "CMakeFiles/neurosyn_corelet.dir/place.cpp.o"
  "CMakeFiles/neurosyn_corelet.dir/place.cpp.o.d"
  "libneurosyn_corelet.a"
  "libneurosyn_corelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_corelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
