file(REMOVE_RECURSE
  "libneurosyn_corelet.a"
)
