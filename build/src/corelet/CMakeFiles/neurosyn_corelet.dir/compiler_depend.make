# Empty compiler generated dependencies file for neurosyn_corelet.
# This may be replaced when dependencies are built.
