file(REMOVE_RECURSE
  "libneurosyn_train.a"
)
