# Empty compiler generated dependencies file for neurosyn_train.
# This may be replaced when dependencies are built.
