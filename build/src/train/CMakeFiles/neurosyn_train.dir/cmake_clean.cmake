file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_train.dir/perceptron.cpp.o"
  "CMakeFiles/neurosyn_train.dir/perceptron.cpp.o.d"
  "libneurosyn_train.a"
  "libneurosyn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
