file(REMOVE_RECURSE
  "libneurosyn_netgen.a"
)
