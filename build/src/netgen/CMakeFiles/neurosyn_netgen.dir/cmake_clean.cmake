file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_netgen.dir/random_net.cpp.o"
  "CMakeFiles/neurosyn_netgen.dir/random_net.cpp.o.d"
  "CMakeFiles/neurosyn_netgen.dir/recurrent.cpp.o"
  "CMakeFiles/neurosyn_netgen.dir/recurrent.cpp.o.d"
  "libneurosyn_netgen.a"
  "libneurosyn_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
