# Empty compiler generated dependencies file for neurosyn_netgen.
# This may be replaced when dependencies are built.
