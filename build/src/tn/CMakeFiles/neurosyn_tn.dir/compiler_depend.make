# Empty compiler generated dependencies file for neurosyn_tn.
# This may be replaced when dependencies are built.
