file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_tn.dir/chip_sim.cpp.o"
  "CMakeFiles/neurosyn_tn.dir/chip_sim.cpp.o.d"
  "libneurosyn_tn.a"
  "libneurosyn_tn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_tn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
