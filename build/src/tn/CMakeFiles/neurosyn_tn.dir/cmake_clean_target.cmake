file(REMOVE_RECURSE
  "libneurosyn_tn.a"
)
