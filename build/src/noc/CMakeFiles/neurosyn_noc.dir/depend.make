# Empty dependencies file for neurosyn_noc.
# This may be replaced when dependencies are built.
