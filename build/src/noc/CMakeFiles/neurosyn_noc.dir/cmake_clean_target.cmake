file(REMOVE_RECURSE
  "libneurosyn_noc.a"
)
