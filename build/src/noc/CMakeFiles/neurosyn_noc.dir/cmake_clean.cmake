file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_noc.dir/route.cpp.o"
  "CMakeFiles/neurosyn_noc.dir/route.cpp.o.d"
  "CMakeFiles/neurosyn_noc.dir/traffic.cpp.o"
  "CMakeFiles/neurosyn_noc.dir/traffic.cpp.o.d"
  "libneurosyn_noc.a"
  "libneurosyn_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
