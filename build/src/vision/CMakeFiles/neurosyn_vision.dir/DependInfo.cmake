
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/image.cpp" "src/vision/CMakeFiles/neurosyn_vision.dir/image.cpp.o" "gcc" "src/vision/CMakeFiles/neurosyn_vision.dir/image.cpp.o.d"
  "/root/repo/src/vision/metrics.cpp" "src/vision/CMakeFiles/neurosyn_vision.dir/metrics.cpp.o" "gcc" "src/vision/CMakeFiles/neurosyn_vision.dir/metrics.cpp.o.d"
  "/root/repo/src/vision/pgm.cpp" "src/vision/CMakeFiles/neurosyn_vision.dir/pgm.cpp.o" "gcc" "src/vision/CMakeFiles/neurosyn_vision.dir/pgm.cpp.o.d"
  "/root/repo/src/vision/scene.cpp" "src/vision/CMakeFiles/neurosyn_vision.dir/scene.cpp.o" "gcc" "src/vision/CMakeFiles/neurosyn_vision.dir/scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neurosyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/neurosyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
