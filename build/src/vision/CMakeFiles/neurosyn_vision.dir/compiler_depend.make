# Empty compiler generated dependencies file for neurosyn_vision.
# This may be replaced when dependencies are built.
