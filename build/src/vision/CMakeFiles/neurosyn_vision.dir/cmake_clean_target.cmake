file(REMOVE_RECURSE
  "libneurosyn_vision.a"
)
