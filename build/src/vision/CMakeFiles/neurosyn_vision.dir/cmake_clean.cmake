file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_vision.dir/image.cpp.o"
  "CMakeFiles/neurosyn_vision.dir/image.cpp.o.d"
  "CMakeFiles/neurosyn_vision.dir/metrics.cpp.o"
  "CMakeFiles/neurosyn_vision.dir/metrics.cpp.o.d"
  "CMakeFiles/neurosyn_vision.dir/pgm.cpp.o"
  "CMakeFiles/neurosyn_vision.dir/pgm.cpp.o.d"
  "CMakeFiles/neurosyn_vision.dir/scene.cpp.o"
  "CMakeFiles/neurosyn_vision.dir/scene.cpp.o.d"
  "libneurosyn_vision.a"
  "libneurosyn_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
