
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/host_models.cpp" "src/energy/CMakeFiles/neurosyn_energy.dir/host_models.cpp.o" "gcc" "src/energy/CMakeFiles/neurosyn_energy.dir/host_models.cpp.o.d"
  "/root/repo/src/energy/power_meter.cpp" "src/energy/CMakeFiles/neurosyn_energy.dir/power_meter.cpp.o" "gcc" "src/energy/CMakeFiles/neurosyn_energy.dir/power_meter.cpp.o.d"
  "/root/repo/src/energy/scaling_model.cpp" "src/energy/CMakeFiles/neurosyn_energy.dir/scaling_model.cpp.o" "gcc" "src/energy/CMakeFiles/neurosyn_energy.dir/scaling_model.cpp.o.d"
  "/root/repo/src/energy/telemetry.cpp" "src/energy/CMakeFiles/neurosyn_energy.dir/telemetry.cpp.o" "gcc" "src/energy/CMakeFiles/neurosyn_energy.dir/telemetry.cpp.o.d"
  "/root/repo/src/energy/truenorth_power.cpp" "src/energy/CMakeFiles/neurosyn_energy.dir/truenorth_power.cpp.o" "gcc" "src/energy/CMakeFiles/neurosyn_energy.dir/truenorth_power.cpp.o.d"
  "/root/repo/src/energy/truenorth_timing.cpp" "src/energy/CMakeFiles/neurosyn_energy.dir/truenorth_timing.cpp.o" "gcc" "src/energy/CMakeFiles/neurosyn_energy.dir/truenorth_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neurosyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/neurosyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
