file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_energy.dir/host_models.cpp.o"
  "CMakeFiles/neurosyn_energy.dir/host_models.cpp.o.d"
  "CMakeFiles/neurosyn_energy.dir/power_meter.cpp.o"
  "CMakeFiles/neurosyn_energy.dir/power_meter.cpp.o.d"
  "CMakeFiles/neurosyn_energy.dir/scaling_model.cpp.o"
  "CMakeFiles/neurosyn_energy.dir/scaling_model.cpp.o.d"
  "CMakeFiles/neurosyn_energy.dir/telemetry.cpp.o"
  "CMakeFiles/neurosyn_energy.dir/telemetry.cpp.o.d"
  "CMakeFiles/neurosyn_energy.dir/truenorth_power.cpp.o"
  "CMakeFiles/neurosyn_energy.dir/truenorth_power.cpp.o.d"
  "CMakeFiles/neurosyn_energy.dir/truenorth_timing.cpp.o"
  "CMakeFiles/neurosyn_energy.dir/truenorth_timing.cpp.o.d"
  "libneurosyn_energy.a"
  "libneurosyn_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
