# Empty compiler generated dependencies file for neurosyn_energy.
# This may be replaced when dependencies are built.
