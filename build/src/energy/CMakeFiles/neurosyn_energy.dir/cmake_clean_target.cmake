file(REMOVE_RECURSE
  "libneurosyn_energy.a"
)
