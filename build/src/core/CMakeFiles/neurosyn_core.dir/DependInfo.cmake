
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aer.cpp" "src/core/CMakeFiles/neurosyn_core.dir/aer.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/aer.cpp.o.d"
  "/root/repo/src/core/crossbar.cpp" "src/core/CMakeFiles/neurosyn_core.dir/crossbar.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/crossbar.cpp.o.d"
  "/root/repo/src/core/input_schedule.cpp" "src/core/CMakeFiles/neurosyn_core.dir/input_schedule.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/input_schedule.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/neurosyn_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/network.cpp.o.d"
  "/root/repo/src/core/network_io.cpp" "src/core/CMakeFiles/neurosyn_core.dir/network_io.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/network_io.cpp.o.d"
  "/root/repo/src/core/neuron_model.cpp" "src/core/CMakeFiles/neurosyn_core.dir/neuron_model.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/neuron_model.cpp.o.d"
  "/root/repo/src/core/reference_sim.cpp" "src/core/CMakeFiles/neurosyn_core.dir/reference_sim.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/reference_sim.cpp.o.d"
  "/root/repo/src/core/spike_analysis.cpp" "src/core/CMakeFiles/neurosyn_core.dir/spike_analysis.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/spike_analysis.cpp.o.d"
  "/root/repo/src/core/spike_sink.cpp" "src/core/CMakeFiles/neurosyn_core.dir/spike_sink.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/spike_sink.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/neurosyn_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/neurosyn_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/neurosyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
