file(REMOVE_RECURSE
  "libneurosyn_core.a"
)
