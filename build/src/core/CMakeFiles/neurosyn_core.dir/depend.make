# Empty dependencies file for neurosyn_core.
# This may be replaced when dependencies are built.
