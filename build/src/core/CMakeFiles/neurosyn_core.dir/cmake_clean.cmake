file(REMOVE_RECURSE
  "CMakeFiles/neurosyn_core.dir/aer.cpp.o"
  "CMakeFiles/neurosyn_core.dir/aer.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/crossbar.cpp.o"
  "CMakeFiles/neurosyn_core.dir/crossbar.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/input_schedule.cpp.o"
  "CMakeFiles/neurosyn_core.dir/input_schedule.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/network.cpp.o"
  "CMakeFiles/neurosyn_core.dir/network.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/network_io.cpp.o"
  "CMakeFiles/neurosyn_core.dir/network_io.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/neuron_model.cpp.o"
  "CMakeFiles/neurosyn_core.dir/neuron_model.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/reference_sim.cpp.o"
  "CMakeFiles/neurosyn_core.dir/reference_sim.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/spike_analysis.cpp.o"
  "CMakeFiles/neurosyn_core.dir/spike_analysis.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/spike_sink.cpp.o"
  "CMakeFiles/neurosyn_core.dir/spike_sink.cpp.o.d"
  "CMakeFiles/neurosyn_core.dir/validation.cpp.o"
  "CMakeFiles/neurosyn_core.dir/validation.cpp.o.d"
  "libneurosyn_core.a"
  "libneurosyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurosyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
