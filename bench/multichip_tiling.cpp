// Regenerates the multi-chip tiling results (E14 in DESIGN.md): the 4×1
// array board (§VII-B) and the 4×4 array board of Fig. 9 (§VII-C) —
// native chip-to-chip communication through merge–split boundaries, link
// loads, hop statistics, fault tolerance across the array, and the board
// power split (TrueNorth array vs support logic).
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/energy/scaling_model.hpp"
#include "src/energy/units.hpp"
#include "src/noc/route.hpp"
#include "src/util/table.hpp"

namespace {

using namespace nsc;

struct BoardRun {
  core::KernelStats stats;
  std::uint64_t crossings = 0;
  std::uint64_t max_link = 0;
  double mean_hops = 0.0;
  int cores = 0;
};

BoardRun run_board(const core::Geometry& geom, double rate, int synapses, core::Tick ticks) {
  netgen::RecurrentSpec spec;
  spec.geom = geom;
  spec.rate_hz = rate;
  spec.synapses_per_axon = synapses;
  spec.seed = 5;
  const core::Network net = netgen::make_recurrent(spec);
  tn::TrueNorthSimulator sim(net);
  sim.run(ticks, nullptr, nullptr);
  BoardRun r;
  r.stats = sim.stats();
  r.crossings = sim.traffic().total_crossings();
  r.max_link = sim.traffic().max_link_packets_per_tick();
  r.mean_hops = sim.mean_hops_per_spike();
  r.cores = geom.total_cores();
  return r;
}

}  // namespace

int main() {
  const core::Tick ticks = std::max<core::Tick>(bench::bench_ticks(), 20);
  // Scaled chips (16×16 cores each) keep run times tractable; the routing
  // and merge–split logic is identical at any per-chip core count.
  const int side = 16;
  std::printf("=== SVII-B/C: multi-chip tiled arrays (4x1 board, 4x4 board) ===\n");
  std::printf("scaled chips: %dx%d cores per chip, %lld ticks, 20 Hz / 128 synapses\n\n", side,
              side, static_cast<long long>(ticks));

  util::Table t({"board", "chips", "cores", "neurons", "spikes", "interchip crossings",
                 "crossings/spike", "max link pkts/tick", "mean hops/spike"});
  for (const auto& [name, gx, gy] :
       {std::tuple{"single chip", 1, 1}, {"4x1 array", 4, 1}, {"2x2 array", 2, 2},
        {"4x4 array (Fig. 9)", 4, 4}}) {
    const core::Geometry geom{gx, gy, side, side};
    const BoardRun r = run_board(geom, 20, 128, ticks);
    t.add_row({name, std::to_string(gx * gy), std::to_string(r.cores),
               std::to_string(r.cores * core::kCoreSize), std::to_string(r.stats.spikes),
               std::to_string(r.crossings),
               util::format_sig(static_cast<double>(r.crossings) /
                                    static_cast<double>(r.stats.spikes ? r.stats.spikes : 1),
                                3),
               std::to_string(r.max_link), util::format_sig(r.mean_hops, 3)});
  }
  t.print(std::cout);

  // Fault tolerance across the array: disable a core, routes detour.
  {
    const core::Geometry geom{2, 2, side, side};
    netgen::RecurrentSpec spec;
    spec.geom = geom;
    spec.rate_hz = 20;
    spec.synapses_per_axon = 128;
    spec.seed = 5;
    core::Network net = netgen::make_recurrent(spec);
    // Fault a mid-array core: silence it and retarget the neurons aimed at it.
    const core::CoreId faulted = geom.core_at(0, side - 1, side - 1);
    net.core(faulted).disabled = 1;
    for (auto& p : net.core(faulted).neuron) p.enabled = 0;
    for (auto& cs : net.cores) {
      for (auto& p : cs.neuron) {
        if (p.target.core == faulted) p.target.core = faulted + 1;
      }
    }
    tn::TrueNorthSimulator sim(net);
    sim.run(ticks, nullptr, nullptr);
    std::printf("\nfault tolerance: core %u disabled; %llu spikes delivered, mean hops %.2f\n",
                faulted, static_cast<unsigned long long>(sim.stats().spikes),
                sim.mean_hops_per_spike());
    std::printf("(detours around the faulted core add hops; no spikes lost in transit)\n");
  }

  // §VII-C board power: 16-chip board at 1.0 V, measured split 2.5 W array
  // + 4.7 W support = 7.2 W total.
  const core::Geometry board{4, 4, side, side};
  const BoardRun r44 = run_board(board, 20, 128, ticks);
  const nsc::energy::TrueNorthPowerModel power;
  const double chip_equiv = 4096.0 / (side * side);
  const double array_w = chip_equiv *
                         power.mean_power_w(r44.stats, board.total_cores(), 1.0,
                                            nsc::energy::kRealTimeTickHz);
  constexpr double kSupportW = 4.7;  // FPGAs + Zynq module (measured, §VII-C)
  std::printf("\n4x4 board power at 1.0 V (paper: 2.5 W array + 4.7 W support = 7.2 W):\n");
  std::printf("  modeled array (full-chip equiv): %.2f W + support %.1f W = %.2f W total\n",
              array_w, kSupportW, array_w + kSupportW);
  return 0;
}
