// Micro benchmarks of the kernel's hot paths and the ablations DESIGN.md
// calls out: event-driven vs dense synapse phase, crossbar row iteration,
// PRNG variants, routing, partitioning, and message aggregation.
#include <benchmark/benchmark.h>

#include "src/compass/simulator.hpp"
#include "src/core/reference_sim.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/noc/route.hpp"
#include "src/tn/chip_sim.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/prng.hpp"

namespace {

using nsc::core::Geometry;
using nsc::core::Network;

Network small_recurrent(double rate, int syn) {
  nsc::netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 8, 8};
  spec.rate_hz = rate;
  spec.synapses_per_axon = syn;
  spec.seed = 12345;
  return nsc::netgen::make_recurrent(spec);
}

/// Event-driven synapse phase (the kernel) on a 64-core recurrent network.
void BM_EventDrivenTick(benchmark::State& state) {
  const Network net = small_recurrent(50, static_cast<int>(state.range(0)));
  nsc::tn::TrueNorthSimulator sim(net);
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.counters["sops/tick"] = static_cast<double>(sim.stats().sops) /
                                static_cast<double>(sim.stats().ticks);
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.stats().sops));
}
BENCHMARK(BM_EventDrivenTick)->Arg(32)->Arg(128)->Arg(256);

/// Dense synapse phase (the ablation baseline): loops over all 65,536
/// (axon, neuron) pairs per core per tick regardless of activity.
void BM_DenseReferenceTick(benchmark::State& state) {
  const Network net = small_recurrent(50, static_cast<int>(state.range(0)));
  nsc::core::ReferenceSimulator sim(net);
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.stats().sops));
}
BENCHMARK(BM_DenseReferenceTick)->Arg(32)->Arg(128);

/// Compass tick with aggregated inter-process messages.
void BM_CompassTickAggregated(benchmark::State& state) {
  const Network net = small_recurrent(50, 128);
  nsc::compass::Simulator sim(net, {.threads = static_cast<int>(state.range(0)),
                                    .aggregate_messages = true});
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.counters["messages"] = static_cast<double>(sim.messages_sent());
}
BENCHMARK(BM_CompassTickAggregated)->Arg(1)->Arg(2)->Arg(4);

/// Message-count ablation: per-spike messaging explodes the message count
/// by the aggregation factor (the paper's S/N ≈ 256 argument, §III-A).
void BM_CompassTickPerSpikeMessages(benchmark::State& state) {
  const Network net = small_recurrent(50, 128);
  nsc::compass::Simulator sim(net, {.threads = 4, .aggregate_messages = false});
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.counters["messages"] = static_cast<double>(sim.messages_sent());
}
BENCHMARK(BM_CompassTickPerSpikeMessages);

void BM_BitRowForEachSet(benchmark::State& state) {
  nsc::util::BitRow256 row;
  nsc::util::Xoshiro rng(9);
  for (int i = 0; i < state.range(0); ++i) {
    row.set(static_cast<int>(rng.next_below(256)));
  }
  long sum = 0;
  for (auto _ : state) {
    row.for_each_set([&](int i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitRowForEachSet)->Arg(8)->Arg(64)->Arg(256);

void BM_CounterPrngDraw(benchmark::State& state) {
  const nsc::util::CounterPrng prng(7);
  std::uint64_t t = 0, acc = 0;
  for (auto _ : state) {
    acc ^= prng.draw(1, 2, t++, 3);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CounterPrngDraw);

void BM_GaloisLfsrNext(benchmark::State& state) {
  nsc::util::GaloisLfsr16 lfsr(0x1234);
  std::uint32_t acc = 0;
  for (auto _ : state) {
    acc ^= lfsr.next();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GaloisLfsrNext);

void BM_RouteDor(benchmark::State& state) {
  const Geometry g = nsc::core::truenorth_chip();
  nsc::util::Xoshiro rng(5);
  int acc = 0;
  for (auto _ : state) {
    const auto a = static_cast<nsc::core::CoreId>(rng.next_below(4096));
    const auto b = static_cast<nsc::core::CoreId>(rng.next_below(4096));
    acc += nsc::noc::route_dor(g, a, b).hops;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RouteDor);

void BM_PartitionBalanced(benchmark::State& state) {
  const Network net = small_recurrent(20, 128);
  for (auto _ : state) {
    auto parts = nsc::compass::partition_balanced(net, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_PartitionBalanced)->Arg(4)->Arg(32);

}  // namespace
