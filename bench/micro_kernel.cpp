// Micro benchmarks of the kernel's hot paths and the ablations DESIGN.md
// calls out: event-driven vs dense synapse phase, crossbar row iteration,
// PRNG variants, routing, partitioning, and message aggregation.
//
// In addition to the google-benchmark suite, main() runs one instrumented
// Compass workload and writes BENCH_micro_kernel.json (per-phase wall-time
// breakdown, throughput, counters) — the machine-readable report CI's bench
// smoke job diffs against bench/baselines/ with tools/nsc_bench_diff.
// Knobs: NSC_BENCH_TICKS (default 200), NSC_BENCH_THREADS (default 4),
// NSC_BENCH_RATE / NSC_BENCH_SYN (operating point of the instrumented run;
// default 20 Hz / 128 synapses — the paper's sparse headline point),
// NSC_BENCH_POINT (suffix appended to the report name, e.g. "dense" writes
// BENCH_micro_kernel_dense.json so one CI job can gate several operating
// points side by side), NSC_BENCH_JSON_DIR (report directory, default cwd).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/compass/simulator.hpp"
#include "src/core/reference_sim.hpp"
#include "src/core/spike_sink.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/noc/route.hpp"
#include "src/obs/json_report.hpp"
#include "src/tn/chip_sim.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/prng.hpp"

namespace {

using nsc::core::Geometry;
using nsc::core::Network;

Network small_recurrent(double rate, int syn) {
  nsc::netgen::RecurrentSpec spec;
  spec.geom = Geometry{1, 1, 8, 8};
  spec.rate_hz = rate;
  spec.synapses_per_axon = syn;
  spec.seed = 12345;
  return nsc::netgen::make_recurrent(spec);
}

/// Event-driven synapse phase (the kernel) on a 64-core recurrent network.
void BM_EventDrivenTick(benchmark::State& state) {
  const Network net = small_recurrent(50, static_cast<int>(state.range(0)));
  nsc::tn::TrueNorthSimulator sim(net);
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.counters["sops/tick"] = static_cast<double>(sim.stats().sops) /
                                static_cast<double>(sim.stats().ticks);
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.stats().sops));
}
BENCHMARK(BM_EventDrivenTick)->Arg(32)->Arg(128)->Arg(256);

/// Dense synapse phase (the ablation baseline): loops over all 65,536
/// (axon, neuron) pairs per core per tick regardless of activity.
void BM_DenseReferenceTick(benchmark::State& state) {
  const Network net = small_recurrent(50, static_cast<int>(state.range(0)));
  nsc::core::ReferenceSimulator sim(net);
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.stats().sops));
}
BENCHMARK(BM_DenseReferenceTick)->Arg(32)->Arg(128);

/// Compass tick with aggregated inter-process messages.
void BM_CompassTickAggregated(benchmark::State& state) {
  const Network net = small_recurrent(50, 128);
  nsc::compass::Simulator sim(net, {.threads = static_cast<int>(state.range(0)),
                                    .aggregate_messages = true});
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.counters["messages"] = static_cast<double>(sim.messages_sent());
}
BENCHMARK(BM_CompassTickAggregated)->Arg(1)->Arg(2)->Arg(4);

/// Message-count ablation: per-spike messaging explodes the message count
/// by the aggregation factor (the paper's S/N ≈ 256 argument, §III-A).
void BM_CompassTickPerSpikeMessages(benchmark::State& state) {
  const Network net = small_recurrent(50, 128);
  nsc::compass::Simulator sim(net, {.threads = 4, .aggregate_messages = false});
  for (auto _ : state) {
    sim.run(1, nullptr, nullptr);
  }
  state.counters["messages"] = static_cast<double>(sim.messages_sent());
}
BENCHMARK(BM_CompassTickPerSpikeMessages);

void BM_BitRowForEachSet(benchmark::State& state) {
  nsc::util::BitRow256 row;
  nsc::util::Xoshiro rng(9);
  for (int i = 0; i < state.range(0); ++i) {
    row.set(static_cast<int>(rng.next_below(256)));
  }
  long sum = 0;
  for (auto _ : state) {
    row.for_each_set([&](int i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitRowForEachSet)->Arg(8)->Arg(64)->Arg(256);

void BM_CounterPrngDraw(benchmark::State& state) {
  const nsc::util::CounterPrng prng(7);
  std::uint64_t t = 0, acc = 0;
  for (auto _ : state) {
    acc ^= prng.draw(1, 2, t++, 3);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CounterPrngDraw);

void BM_GaloisLfsrNext(benchmark::State& state) {
  nsc::util::GaloisLfsr16 lfsr(0x1234);
  std::uint32_t acc = 0;
  for (auto _ : state) {
    acc ^= lfsr.next();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GaloisLfsrNext);

void BM_RouteDor(benchmark::State& state) {
  const Geometry g = nsc::core::truenorth_chip();
  nsc::util::Xoshiro rng(5);
  int acc = 0;
  for (auto _ : state) {
    const auto a = static_cast<nsc::core::CoreId>(rng.next_below(4096));
    const auto b = static_cast<nsc::core::CoreId>(rng.next_below(4096));
    acc += nsc::noc::route_dor(g, a, b).hops;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RouteDor);

void BM_PartitionBalanced(benchmark::State& state) {
  const Network net = small_recurrent(20, 128);
  for (auto _ : state) {
    auto parts = nsc::compass::partition_balanced(net, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_PartitionBalanced)->Arg(4)->Arg(32);

long env_or(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::atol(v) : fallback;
}

/// Instrumented end-to-end Compass run; returns the metrics report CI gates
/// on (see file header). The default operating point is the paper's sparse
/// headline point (20 Hz, 128 active synapses) — the regime the event-driven
/// hot path is optimized for and the one the CI perf gate tracks.
nsc::obs::BenchReport instrumented_compass_run() {
  const auto ticks = static_cast<nsc::core::Tick>(env_or("NSC_BENCH_TICKS", 200));
  const int threads = static_cast<int>(env_or("NSC_BENCH_THREADS", 4));
  const double rate = static_cast<double>(env_or("NSC_BENCH_RATE", 20));
  const int syn = static_cast<int>(env_or("NSC_BENCH_SYN", 128));
  const Network net = small_recurrent(rate, syn);
  nsc::compass::Simulator sim(net, {.threads = threads});
  nsc::core::VectorSink sink;
  sim.run(40, nullptr, &sink);  // Warm up to the network's equilibrium rate.
  sim.reset_stats();
  sim.reset_metrics();

  const std::uint64_t t0 = nsc::obs::now_ns();
  sim.run(ticks, nullptr, &sink);
  const std::uint64_t wall_ns = nsc::obs::now_ns() - t0;

  nsc::obs::BenchReport report;
  report.name = "micro_kernel";
  if (const char* point = std::getenv("NSC_BENCH_POINT"); point != nullptr && point[0] != '\0') {
    report.name += std::string("_") + point;
  }
  report.threads = threads;
  report.ticks = static_cast<std::uint64_t>(ticks);
  report.wall_s = 1e-9 * static_cast<double>(wall_ns);
  report.load_imbalance = sim.load_imbalance();
  report.stats = sim.stats();
  report.metrics = sim.metrics();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const nsc::obs::BenchReport report = instrumented_compass_run();
  const std::string path = nsc::obs::default_report_path(report.name);
  nsc::obs::write_bench_report(path, report);
  std::printf("wrote %s: %.0f ticks/s, %.3g SOPS/s, %d threads, imbalance %.2f\n", path.c_str(),
              report.ticks_per_s(), report.sops_per_s(), report.threads, report.load_imbalance);
  return 0;
}
