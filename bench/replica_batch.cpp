// Replica-batched aggregate throughput at the paper's sparse operating point
// (docs/REPLICA.md). Runs the same N-instance workload twice — N sequential
// solo compass runs, then one replica::BatchSimulator — verifies every
// replica's spike trace hash matches its solo witness (exit 1 on any
// mismatch), and emits two nsc-bench-v1 reports with *aggregate* ticks
// (N x T), so ticks_per_s is aggregate replica-ticks/s and
// tools/nsc_bench_diff --min-speedup gates the batched-vs-sequential ratio:
//   BENCH_replica_batch_sequential.json  (the solo baseline)
//   BENCH_replica_batch.json             (the batched run)
// Knobs: NSC_BENCH_TICKS (default 400), NSC_BENCH_REPLICAS (default 16),
// NSC_BENCH_THREADS (default 1 — the single-CPU comparison the CI gate
// freezes; see docs/REPLICA.md for the baseline refresh policy),
// NSC_BENCH_RATE / NSC_BENCH_SYN (default 20 Hz / 128 synapses),
// NSC_BENCH_JSON_DIR (report directory, default cwd).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/compass/simulator.hpp"
#include "src/core/spike_sink.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/obs/json_report.hpp"
#include "src/obs/obs.hpp"
#include "src/replica/batch.hpp"

namespace {

long env_or(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::atol(v) : fallback;
}

nsc::core::Network sparse_point_net(double rate, int syn) {
  nsc::netgen::RecurrentSpec spec;
  spec.geom = nsc::core::Geometry{1, 1, 8, 8};
  spec.rate_hz = rate;
  spec.synapses_per_axon = syn;
  spec.seed = 12345;
  return nsc::netgen::make_recurrent(spec);
}

}  // namespace

int main() {
  const auto ticks = static_cast<nsc::core::Tick>(env_or("NSC_BENCH_TICKS", 400));
  const int replicas = static_cast<int>(env_or("NSC_BENCH_REPLICAS", 16));
  const int threads = static_cast<int>(env_or("NSC_BENCH_THREADS", 1));
  const double rate = static_cast<double>(env_or("NSC_BENCH_RATE", 20));
  const int syn = static_cast<int>(env_or("NSC_BENCH_SYN", 128));
  const nsc::core::Network net = sparse_point_net(rate, syn);
  const auto aggregate_ticks =
      static_cast<std::uint64_t>(replicas) * static_cast<std::uint64_t>(ticks);

  // Sequential baseline: N solo compass runs back-to-back, each warmed to the
  // network's equilibrium rate before the measured window.
  std::vector<std::unique_ptr<nsc::compass::Simulator>> solo;
  std::vector<nsc::core::TraceHashSink> solo_sinks(static_cast<std::size_t>(replicas));
  solo.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    solo.push_back(std::make_unique<nsc::compass::Simulator>(net, nsc::compass::Config{}));
    solo[static_cast<std::size_t>(r)]->run(40, nullptr, nullptr);
    solo[static_cast<std::size_t>(r)]->reset_stats();
  }
  const std::uint64_t s0 = nsc::obs::now_ns();
  for (int r = 0; r < replicas; ++r) {
    solo[static_cast<std::size_t>(r)]->run(ticks, nullptr,
                                           &solo_sinks[static_cast<std::size_t>(r)]);
  }
  const double seq_wall_s = 1e-9 * static_cast<double>(nsc::obs::now_ns() - s0);

  // Batched run: one BatchSimulator advancing all N replicas per tick.
  nsc::replica::Config cfg;
  cfg.replicas = replicas;
  cfg.threads = threads;
  nsc::replica::BatchSimulator batch(net, cfg);
  std::vector<nsc::core::TraceHashSink> batch_sinks(static_cast<std::size_t>(replicas));
  std::vector<nsc::core::SpikeSink*> sinks(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    sinks[static_cast<std::size_t>(r)] = &batch_sinks[static_cast<std::size_t>(r)];
  }
  batch.run(40, nullptr, nullptr);
  batch.reset_stats();
  batch.reset_metrics();
  const std::uint64_t b0 = nsc::obs::now_ns();
  batch.run(ticks, nullptr, sinks.data());
  const double bat_wall_s = 1e-9 * static_cast<double>(nsc::obs::now_ns() - b0);

  // Exactness gate: each batched replica must reproduce its solo witness
  // spike-for-spike. A throughput number from a wrong simulation is worse
  // than no number, so hash mismatch fails the bench outright.
  int mismatches = 0;
  for (int r = 0; r < replicas; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (batch_sinks[i].hash() != solo_sinks[i].hash() ||
        batch.stats(r).spikes != solo[i]->stats().spikes ||
        batch.stats(r).sops != solo[i]->stats().sops) {
      std::fprintf(stderr, "replica %d diverged from solo run: hash %016llx vs %016llx\n", r,
                   static_cast<unsigned long long>(batch_sinks[i].hash()),
                   static_cast<unsigned long long>(solo_sinks[i].hash()));
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %d of %d replicas diverged\n", mismatches, replicas);
    return 1;
  }

  nsc::obs::BenchReport seq_report;
  seq_report.name = "replica_batch_sequential";
  seq_report.threads = 1;
  seq_report.ticks = aggregate_ticks;
  seq_report.wall_s = seq_wall_s;
  for (int r = 0; r < replicas; ++r) {
    const nsc::core::KernelStats& s = solo[static_cast<std::size_t>(r)]->stats();
    seq_report.stats.ticks += s.ticks;
    seq_report.stats.spikes += s.spikes;
    seq_report.stats.sops += s.sops;
    seq_report.stats.axon_events += s.axon_events;
    seq_report.stats.neuron_updates += s.neuron_updates;
    seq_report.stats.dropped_spikes += s.dropped_spikes;
  }

  nsc::obs::BenchReport bat_report;
  bat_report.name = "replica_batch";
  bat_report.threads = threads;
  bat_report.ticks = aggregate_ticks;
  bat_report.wall_s = bat_wall_s;
  bat_report.stats = batch.aggregate_stats();
  bat_report.metrics = batch.metrics();

  const std::string seq_path = nsc::obs::default_report_path(seq_report.name);
  const std::string bat_path = nsc::obs::default_report_path(bat_report.name);
  nsc::obs::write_bench_report(seq_path, seq_report);
  nsc::obs::write_bench_report(bat_path, bat_report);
  std::printf("replicas=%d ticks=%lld: sequential %.0f replica-ticks/s, batched %.0f "
              "replica-ticks/s (%.2fx), all %d trace hashes match solo\n",
              replicas, static_cast<long long>(ticks), seq_report.ticks_per_s(),
              bat_report.ticks_per_s(), seq_wall_s / bat_wall_s, replicas);
  std::printf("wrote %s and %s\n", seq_path.c_str(), bat_path.c_str());
  return 0;
}
