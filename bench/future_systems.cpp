// Regenerates paper §VII-D (E15 in DESIGN.md): the projected system
// hierarchy (boards → backplanes → racks → human-scale), and the
// energy-to-solution comparisons against the historical Blue Gene cortical
// simulations (rat-scale on BG/L: ~6,400× less energy; 1%-human-scale on
// BG/P: ~128,000× with the paper's accounting).
#include <cstdio>
#include <iostream>

#include "src/energy/scaling_model.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace nsc::energy;

  std::printf("=== SVII-D: future systems and energy-to-solution projections ===\n\n");

  nsc::util::Table tiers(
      {"tier", "chips", "neurons", "synapses", "power (W)", "GSOPS @20Hz/128 (est)"});
  for (const SystemTier& t : paper_system_tiers()) {
    // Estimated sustained GSOPS at the headline operating point.
    const double gsops = t.neurons * 20.0 * 128.0 * 1e-9;
    tiers.add_row({t.name, std::to_string(t.chips), nsc::util::format_sig(t.neurons, 4),
                   nsc::util::format_sig(t.synapses, 4),
                   nsc::util::format_sig(t.total_power_w, 4),
                   nsc::util::format_sig(gsops, 4)});
  }
  tiers.print(std::cout);

  std::printf("\nEnergy-to-solution vs historical cortical simulations:\n");
  nsc::util::Table cmp({"comparison", "hist. racks", "rack power (W)", "slowdown",
                   "TrueNorth tier power (W)", "x energy reduction", "paper claims"});
  const auto all = paper_system_tiers();
  const SystemTier* backplane = nullptr;
  const SystemTier* rack = nullptr;
  for (const auto& t : all) {
    if (t.chips == 1024) backplane = &t;
    if (t.chips == 4096) rack = &t;
  }
  {
    const HistoricalRun h = bgl_rat_scale();
    cmp.add_row({h.name, nsc::util::format_sig(h.racks, 3),
                 nsc::util::format_sig(h.rack_power_w, 4), nsc::util::format_sig(h.slowdown, 3),
                 nsc::util::format_sig(backplane->total_power_w, 4),
                 nsc::util::format_sig(energy_to_solution_ratio(h, *backplane), 4), "6,400x"});
  }
  {
    const HistoricalRun h = bgp_one_percent_human();
    cmp.add_row({h.name, nsc::util::format_sig(h.racks, 3),
                 nsc::util::format_sig(h.rack_power_w, 4), nsc::util::format_sig(h.slowdown, 3),
                 nsc::util::format_sig(rack->total_power_w, 4),
                 nsc::util::format_sig(energy_to_solution_ratio(h, *rack), 4),
                 "128,000x (see EXPERIMENTS.md)"});
  }
  cmp.print(std::cout);

  std::printf("\nhuman-scale context: 96 racks x 4,096 chips = %.2e synapses at %.0f kW\n",
              all.back().synapses, all.back().total_power_w / 1000.0);
  std::printf("(the Compass run of the same scale used 96 racks of Blue Gene/Q, ~7.9 MW)\n");

  std::printf("\npower density: chip at 65 mW -> %.1f mW/cm2"
              " (paper: ~20 mW/cm2 vs ~100 W/cm2 CPU, ~4 orders of magnitude)\n",
              1e3 * truenorth_power_density_w_per_cm2(0.065));
  return 0;
}
