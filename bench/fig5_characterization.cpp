// Regenerates paper Fig. 5(a-f): TrueNorth characterization over the 88
// probabilistically-generated recurrent networks (rate × active synapses),
// at 0.75 V, plus the voltage sweeps at 50 Hz (E2–E7 in DESIGN.md).
//
// Output: six contour-style grids matching the figure panels. Absolute
// values are full-chip equivalents reconstructed through the calibrated
// component models (src/energy); shapes and headline anchors follow the
// paper (see EXPERIMENTS.md for paper-vs-measured).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/energy/units.hpp"
#include "src/util/csv.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace nsc;
  const core::Geometry geom = bench::scaled_chip();
  const core::Tick ticks = bench::bench_ticks();
  bench::print_banner("=== Fig. 5: TrueNorth characterization (a-f) ===", geom, ticks);
  const double factor = bench::full_chip_factor(geom);

  const std::vector<double> rates = netgen::grid_rates();
  const std::vector<int> synapses = netgen::grid_synapses();
  const energy::TrueNorthPowerModel power;
  const energy::TrueNorthTimingModel timing;
  constexpr double kV = 0.75;

  // One simulation per grid point; all six panels derive from these stats.
  std::vector<std::vector<core::KernelStats>> stats(
      rates.size(), std::vector<core::KernelStats>(synapses.size()));
  std::vector<std::vector<double>> gsops(rates.size(), std::vector<double>(synapses.size()));
  std::vector<std::vector<double>> fmax_khz(rates.size(), std::vector<double>(synapses.size()));
  std::vector<std::vector<double>> energy_uj(rates.size(), std::vector<double>(synapses.size()));
  std::vector<std::vector<double>> gsops_w(rates.size(), std::vector<double>(synapses.size()));

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    for (std::size_t si = 0; si < synapses.size(); ++si) {
      const auto run = bench::run_characterization(geom, rates[ri], synapses[si], ticks);
      const core::KernelStats& s = run.stats;
      stats[ri][si] = s;
      gsops[ri][si] =
          1e-9 * factor * energy::TrueNorthPowerModel::sops_per_second(s, energy::kRealTimeTickHz);
      fmax_khz[ri][si] = 1e-3 * timing.max_tick_hz(s, kV);
      energy_uj[ri][si] = 1e6 * factor *
                          power.total_energy_j(s, geom.total_cores(), kV,
                                               energy::kRealTimeTickHz) /
                          static_cast<double>(s.ticks ? s.ticks : 1);
      gsops_w[ri][si] =
          1e-9 * power.sops_per_watt(s, geom.total_cores(), kV, energy::kRealTimeTickHz);
    }
    std::fprintf(stderr, "  rate %.0f Hz row done\n", rates[ri]);
  }

  // Optional CSV export for external plotting: set NSC_BENCH_CSV to a
  // directory to dump one long-format file covering panels (a), (b), (d), (e).
  if (const char* csv_dir = std::getenv("NSC_BENCH_CSV")) {
    util::CsvWriter csv(std::string(csv_dir) + "/fig5.csv",
                        {"rate_hz", "synapses", "gsops", "fmax_khz", "energy_uj", "gsops_per_w"});
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      for (std::size_t si = 0; si < synapses.size(); ++si) {
        csv.add_row(std::vector<double>{rates[ri], static_cast<double>(synapses[si]),
                                        gsops[ri][si], fmax_khz[ri][si], energy_uj[ri][si],
                                        gsops_w[ri][si]});
      }
    }
    std::fprintf(stderr, "wrote %s/fig5.csv\n", csv_dir);
  }

  std::vector<double> syn_axis(synapses.begin(), synapses.end());
  util::print_grid(std::cout, "(a) Computation per time, GSOPS (full-chip equiv) @0.75V",
                   "synapses", "rate(Hz)", syn_axis, rates, gsops);
  std::cout << '\n';
  util::print_grid(std::cout, "(b) Maximum time-step frequency, kHz @0.75V", "synapses",
                   "rate(Hz)", syn_axis, rates, fmax_khz);
  std::cout << '\n';
  util::print_grid(std::cout, "(d) Total energy per time step, uJ (full-chip equiv) @0.75V",
                   "synapses", "rate(Hz)", syn_axis, rates, energy_uj);
  std::cout << '\n';
  util::print_grid(std::cout, "(e) Computation per energy, GSOPS/W @0.75V", "synapses",
                   "rate(Hz)", syn_axis, rates, gsops_w);
  std::cout << '\n';

  // Panels (c) and (f): voltage sweeps at 50 Hz, reusing the 50 Hz row.
  const std::vector<double> volts = {0.67, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00, 1.05};
  std::size_t r50 = 0;
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    if (rates[ri] == 50.0) r50 = ri;
  }
  std::vector<std::vector<double>> fmax_v(volts.size(), std::vector<double>(synapses.size()));
  std::vector<std::vector<double>> gsops_w_v(volts.size(), std::vector<double>(synapses.size()));
  for (std::size_t vi = 0; vi < volts.size(); ++vi) {
    for (std::size_t si = 0; si < synapses.size(); ++si) {
      const core::KernelStats& s = stats[r50][si];
      fmax_v[vi][si] = 1e-3 * timing.max_tick_hz(s, volts[vi]);
      gsops_w_v[vi][si] =
          1e-9 * power.sops_per_watt(s, geom.total_cores(), volts[vi], energy::kRealTimeTickHz);
    }
  }
  util::print_grid(std::cout, "(c) Maximum time-step frequency, kHz @50Hz mean rate", "synapses",
                   "V", syn_axis, volts, fmax_v);
  std::cout << '\n';
  util::print_grid(std::cout, "(f) Computation per energy, GSOPS/W @50Hz mean rate", "synapses",
                   "V", syn_axis, volts, gsops_w_v);

  // The paper's textual anchors, for quick comparison.
  std::cout << "\nAnchors (paper -> model):\n";
  std::size_t r20 = 0, s128 = 0, r200 = 0, s256 = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] == 20.0) r20 = i;
    if (rates[i] == 200.0) r200 = i;
  }
  for (std::size_t i = 0; i < synapses.size(); ++i) {
    if (synapses[i] == 128) s128 = i;
    if (synapses[i] == 256) s256 = i;
  }
  const double watts_20_128 = 1e3 * factor *
                              power.mean_power_w(stats[r20][s128], geom.total_cores(), kV,
                                                 energy::kRealTimeTickHz);
  std::printf("  20Hz/128syn real-time: 65 mW, 46 GSOPS/W  ->  %.1f mW (full-chip equiv), "
              "%.1f GSOPS/W\n", watts_20_128, gsops_w[r20][s128]);
  const double fast = 1e-9 * power.sops_per_watt(stats[r20][s128], geom.total_cores(), kV,
                                                 5 * energy::kRealTimeTickHz);
  std::printf("  same network ~5x faster: 81 GSOPS/W  ->  %.1f GSOPS/W\n", fast);
  std::printf("  200Hz/256syn: >400 GSOPS/W  ->  %.1f GSOPS/W\n", gsops_w[r200][s256]);
  return 0;
}
