// Regenerates the paper's §VI-A one-to-one equivalence methodology (E1 in
// DESIGN.md): randomized single-core and multi-core regressions comparing
// the TrueNorth expression, the Compass expression (several thread counts),
// and the dense reference simulator — requiring 100% spike-for-spike
// agreement — plus a long-duration drift regression and a max-speed probe
// (the "increase frequency until execution error" experiment, reported as
// the modeled max tick rate).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "src/compass/simulator.hpp"
#include "src/core/reference_sim.hpp"
#include "src/core/spike_sink.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/netgen/random_net.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/tn/chip_sim.hpp"
#include "src/util/table.hpp"

namespace {

using namespace nsc;

struct RegressionTally {
  int runs = 0;
  int matched = 0;
  std::uint64_t spikes = 0;
};

template <typename MakeNet>
RegressionTally regress(int count, core::Tick ticks, MakeNet&& make_net) {
  RegressionTally tally;
  for (int i = 0; i < count; ++i) {
    const auto [net, inputs] = make_net(static_cast<std::uint64_t>(i + 1));
    core::VectorSink ref_sink, tn_sink, cp_sink;
    {
      core::ReferenceSimulator sim(net);
      sim.run(ticks, &inputs, &ref_sink);
    }
    {
      tn::TrueNorthSimulator sim(net);
      sim.run(ticks, &inputs, &tn_sink);
    }
    {
      compass::Simulator sim(net, {.threads = 1 + static_cast<int>(i % 4)});
      sim.run(ticks, &inputs, &cp_sink);
    }
    const bool ok = core::first_mismatch(ref_sink.spikes(), tn_sink.spikes()) == -1 &&
                    core::first_mismatch(ref_sink.spikes(), cp_sink.spikes()) == -1;
    ++tally.runs;
    tally.matched += ok ? 1 : 0;
    tally.spikes += ref_sink.spikes().size();
  }
  return tally;
}

std::pair<core::Network, core::InputSchedule> random_case(std::uint64_t seed,
                                                          core::Geometry geom,
                                                          core::Tick input_ticks) {
  netgen::RandomNetSpec spec;
  spec.geom = geom;
  spec.seed = seed * 2654435761ULL;
  spec.input_drive_hz = 150.0;
  core::Network net = netgen::make_random(spec);
  core::InputSchedule in = netgen::make_poisson_inputs(spec, net, input_ticks);
  return {std::move(net), std::move(in)};
}

}  // namespace

int main() {
  std::printf("=== SVI-A: one-to-one equivalence regressions ===\n");
  std::printf("(scaled from the paper's 413,333 single-core + 7,536 full-chip runs)\n\n");
  const auto t0 = std::chrono::steady_clock::now();

  util::Table t({"suite", "regressions", "matched", "ticks each", "total spikes compared"});

  const auto single =
      regress(60, 120, [&](std::uint64_t s) { return random_case(s, {1, 1, 1, 1}, 100); });
  t.add_row({"single-core", std::to_string(single.runs), std::to_string(single.matched), "120",
             std::to_string(single.spikes)});

  const auto multi =
      regress(25, 80, [&](std::uint64_t s) { return random_case(s, {1, 1, 4, 4}, 60); });
  t.add_row({"16-core", std::to_string(multi.runs), std::to_string(multi.matched), "80",
             std::to_string(multi.spikes)});

  const auto multichip =
      regress(10, 60, [&](std::uint64_t s) { return random_case(s, {2, 2, 2, 2}, 40); });
  t.add_row({"4-chip array", std::to_string(multichip.runs), std::to_string(multichip.matched),
             "60", std::to_string(multichip.spikes)});

  // Long-duration drift (paper: 10k–100M ticks with zero mismatches).
  const auto longrun =
      regress(2, 20000, [&](std::uint64_t s) { return random_case(s, {1, 1, 2, 1}, 500); });
  t.add_row({"long-run 20k ticks", std::to_string(longrun.runs),
             std::to_string(longrun.matched), "20000", std::to_string(longrun.spikes)});

  // Stochastic recurrent assay (divergence amplifier).
  const auto assay = regress(6, 150, [&](std::uint64_t s) {
    netgen::RecurrentSpec spec;
    spec.geom = {1, 1, 4, 4};
    spec.rate_hz = 50 + 20 * static_cast<double>(s % 4);
    spec.synapses_per_axon = 64;
    spec.seed = s;
    return std::pair{netgen::make_recurrent(spec), core::InputSchedule{}};
  });
  t.add_row({"recurrent assay", std::to_string(assay.runs), std::to_string(assay.matched), "150",
             std::to_string(assay.spikes)});

  t.print(std::cout);

  const int total_runs =
      single.runs + multi.runs + multichip.runs + longrun.runs + assay.runs;
  const int total_ok =
      single.matched + multi.matched + multichip.matched + longrun.matched + assay.matched;
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("\nagreement: %d/%d (paper: 100%% across all regressions)\n", total_ok, total_runs);
  std::printf("wall time: %.1f s\n", std::chrono::duration<double>(t1 - t0).count());

  // Max-speed probe: the modeled frequency at which the worst-case network
  // would first miss its tick deadline (§VI-A's error-onset experiment).
  nsc::energy::TrueNorthTimingModel timing;
  core::KernelStats worst;
  worst.ticks = 1;
  worst.sum_max_core_axon_events = 256;
  worst.sum_max_core_sops = 256 * 256;
  worst.sum_max_core_spikes = 256;
  std::printf("\nworst-case network (all synapses, all neurons firing):\n");
  for (double v : {0.67, 0.75, 0.90, 1.05}) {
    std::printf("  @%.2fV: execution error beyond %.2f kHz tick rate\n", v,
                1e-3 * timing.max_tick_hz(worst, v));
  }
  return total_ok == total_runs ? 0 : 1;
}
