// Ablation bench for the design choices DESIGN.md §5 calls out:
//   1. event-driven synapse phase vs dense all-pairs loop,
//   2. core-clustered fan-out (one packet per spike) vs per-synapse packets,
//   3. Compass message aggregation vs per-spike messages,
//   4. counter-based PRNG vs hardware-style LFSR,
//   5. Block2D vs Linear corelet placement (mesh hop cost),
//   6. per-component energy attribution at three operating points.
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/compass/simulator.hpp"
#include "src/core/reference_sim.hpp"
#include "src/corelet/lib.hpp"
#include "src/corelet/place.hpp"
#include "src/energy/units.hpp"
#include "src/noc/route.hpp"
#include "src/util/table.hpp"

namespace {

using namespace nsc;

double seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("=== Design-choice ablations (DESIGN.md S5) ===\n\n");
  const core::Geometry geom{1, 1, 8, 8};
  const core::Tick ticks = 20;

  netgen::RecurrentSpec spec;
  spec.geom = geom;
  spec.rate_hz = 50;
  spec.synapses_per_axon = 128;
  spec.seed = 3;
  const core::Network net = netgen::make_recurrent(spec);

  // 1. Event-driven vs dense synapse phase.
  {
    tn::TrueNorthSimulator event_sim(net);
    const double t_event = seconds([&] { event_sim.run(ticks, nullptr, nullptr); });
    core::ReferenceSimulator dense_sim(net);
    const double t_dense = seconds([&] { dense_sim.run(ticks, nullptr, nullptr); });
    std::printf("1. synapse phase (64 cores, 50 Hz, 128 syn, %lld ticks):\n",
                static_cast<long long>(ticks));
    std::printf("   event-driven %.1f ms   dense %.1f ms   -> %.1fx advantage\n\n",
                1e3 * t_event, 1e3 * t_dense, t_dense / t_event);
  }

  // 2. Packets per spike: clustered fan-out sends 1; per-synapse addressing
  //    would send one per active synapse (the paper's S/N argument).
  {
    tn::TrueNorthSimulator sim(net);
    sim.run(ticks, nullptr, nullptr);
    const auto& s = sim.stats();
    std::printf("2. network traffic per spike:\n");
    std::printf("   clustered cores: 1 packet/spike (%llu packets);"
                " per-synapse addressing: %.0f packets/spike (%llu packets) -> %.0fx reduction\n\n",
                static_cast<unsigned long long>(s.spikes - s.dropped_spikes),
                s.mean_synapses_per_delivery(), static_cast<unsigned long long>(s.sops),
                s.mean_synapses_per_delivery());
  }

  // 3. Message aggregation between Compass processes.
  {
    compass::Simulator agg(net, {.threads = 4, .aggregate_messages = true});
    agg.run(ticks, nullptr, nullptr);
    compass::Simulator per(net, {.threads = 4, .aggregate_messages = false});
    per.run(ticks, nullptr, nullptr);
    std::printf("3. Compass inter-process messages (4 processes, %lld ticks):\n",
                static_cast<long long>(ticks));
    std::printf("   aggregated %llu   per-spike %llu   -> %.0fx fewer messages\n\n",
                static_cast<unsigned long long>(agg.messages_sent()),
                static_cast<unsigned long long>(per.messages_sent()),
                static_cast<double>(per.messages_sent()) /
                    static_cast<double>(std::max<std::uint64_t>(1, agg.messages_sent())));
  }

  // 4. PRNG throughput.
  {
    const util::CounterPrng cp(1);
    util::GaloisLfsr16 lfsr(0x5EED);
    volatile std::uint64_t sink = 0;
    const int n = 20'000'000;
    const double t_counter = seconds([&] {
      std::uint64_t acc = 0;
      for (int i = 0; i < n; ++i) acc ^= cp.draw(1, 2, static_cast<std::uint64_t>(i), 3);
      sink = acc;
    });
    const double t_lfsr = seconds([&] {
      std::uint64_t acc = 0;
      for (int i = 0; i < n; ++i) acc ^= lfsr.next();
      sink = acc;
    });
    std::printf("4. PRNG draws (%d draws): counter-based %.1f ns/draw, LFSR %.1f ns/draw\n",
                n, 1e9 * t_counter / n, 1e9 * t_lfsr / n);
    std::printf("   (counter-based draws are order-independent -> exact 1:1 equivalence at any\n"
                "    thread count; the LFSR is cheaper but order-sensitive)\n\n");
  }

  // 5. Placement strategy: mean hops of a 64-core pipeline corelet.
  {
    corelet::Corelet pipe("pipeline");
    int prev = pipe.absorb(corelet::make_relay(64));
    for (int stage = 1; stage < 48; ++stage) {
      const int next = pipe.absorb(corelet::make_relay(64));
      for (int i = 0; i < 64; ++i) {
        pipe.connect({prev, static_cast<std::uint16_t>(i)}, {next, static_cast<std::uint16_t>(i)},
                     1);
      }
      prev = next;
    }
    const core::Geometry pg{1, 1, 8, 8};
    double hops[2] = {0, 0};
    for (const auto strategy :
         {corelet::PlaceStrategy::kLinear, corelet::PlaceStrategy::kBlock2D}) {
      const auto placed = corelet::place(pipe, pg, strategy);
      double total = 0;
      int n = 0;
      for (core::CoreId c = 0; c < static_cast<core::CoreId>(pg.total_cores()); ++c) {
        for (const auto& p : placed.network.core(c).neuron) {
          if (!p.enabled || !p.target.valid()) continue;
          total += noc::route_dor(pg, c, p.target.core).hops;
          ++n;
        }
      }
      hops[strategy == corelet::PlaceStrategy::kLinear ? 0 : 1] = n ? total / n : 0;
    }
    std::printf("5. placement (48-stage pipeline on an 8x8 mesh): mean hops linear %.2f,"
                " block2D %.2f\n\n", hops[0], hops[1]);
  }

  // 6. Energy attribution at three operating points.
  {
    const energy::TrueNorthPowerModel power;
    util::Table t({"operating point", "SOP %", "axon %", "neuron %", "spike %", "hop %",
                   "passive %", "total uJ/tick"});
    for (const auto& [r, k] : {std::pair{5.0, 32}, {20.0, 128}, {200.0, 256}}) {
      const auto run = bench::run_characterization(core::Geometry{1, 1, 16, 16}, r, k, 20);
      const auto b = power.breakdown(run.stats, 256, 0.75, energy::kRealTimeTickHz);
      const double tot = b.total();
      t.add_row_numeric(util::format_sig(r, 3) + "Hz/" + std::to_string(k) + "syn",
                        {100 * b.sop_j / tot, 100 * b.axon_j / tot, 100 * b.neuron_j / tot,
                         100 * b.spike_j / tot, 100 * b.hop_j / tot, 100 * b.passive_j / tot,
                         1e6 * tot / static_cast<double>(run.stats.ticks)},
                        3);
    }
    std::printf("6. energy attribution (scaled 256-core chip):\n");
    t.print(std::cout);
    std::printf("   passive dominates at sparse activity; synaptic events take over at the\n"
                "   dense corner - the mechanism behind Fig. 5(e)'s efficiency gradient.\n");
  }
  return 0;
}
