// Regenerates the paper's headline numbers (E13 in DESIGN.md, §I / §VI-B):
//   * 65 mW and 46 GSOPS/W at 20 Hz / 128 active synapses, real time, 0.75 V
//   * 81 GSOPS/W when the same network runs ~5× faster than real time
//   * >400 GSOPS/W at 200 Hz / 256 synapses
//   * ~10 pJ per synaptic event (all-in)
//   * 20 mW/cm² power density (~4 orders below a conventional processor)
// plus a demonstration of the emulated ADC power-measurement chain (§V-2).
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/energy/power_meter.hpp"
#include "src/energy/scaling_model.hpp"
#include "src/energy/units.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace nsc;
  const core::Geometry geom = bench::scaled_chip();
  const core::Tick ticks = std::max<core::Tick>(bench::bench_ticks(), 20);
  bench::print_banner("=== Headline metrics (paper abstract / SVI-B) ===", geom, ticks);
  const double factor = bench::full_chip_factor(geom);

  const energy::TrueNorthPowerModel power;
  const energy::TrueNorthTimingModel timing;
  constexpr double kV = 0.75;

  const auto main_run = bench::run_characterization(geom, 20.0, 128, ticks);
  const auto corner_run = bench::run_characterization(geom, 200.0, 256, ticks);
  const core::KernelStats& s = main_run.stats;
  const core::KernelStats& sc = corner_run.stats;

  util::Table t({"metric", "paper", "this reproduction"});
  const double mw = 1e3 * factor *
                    power.mean_power_w(s, geom.total_cores(), kV, energy::kRealTimeTickHz) /
                    factor * factor;
  t.add_row({"chip power @20Hz/128syn, real-time", "65 mW",
             util::format_sig(1e3 * factor *
                                  power.mean_power_w(s, geom.total_cores(), kV,
                                                     energy::kRealTimeTickHz),
                              3) +
                 " mW (full-chip equiv)"});
  (void)mw;
  t.add_row({"GSOPS/W @20Hz/128syn, real-time", "46",
             util::format_sig(
                 1e-9 * power.sops_per_watt(s, geom.total_cores(), kV, energy::kRealTimeTickHz),
                 3)});
  t.add_row({"GSOPS/W same network, ~5x faster", "81",
             util::format_sig(1e-9 * power.sops_per_watt(s, geom.total_cores(), kV,
                                                         5 * energy::kRealTimeTickHz),
                              3)});
  t.add_row({"GSOPS/W @200Hz/256syn", ">400",
             util::format_sig(
                 1e-9 * power.sops_per_watt(sc, geom.total_cores(), kV, energy::kRealTimeTickHz),
                 3)});
  const double e_sop = power.total_energy_j(s, geom.total_cores(), kV, energy::kRealTimeTickHz) /
                       static_cast<double>(s.sops);
  t.add_row({"energy per synaptic event (all-in)", "~10 pJ",
             util::format_sig(1e12 * e_sop, 3) + " pJ"});
  const double chip_w =
      factor * power.mean_power_w(s, geom.total_cores(), kV, energy::kRealTimeTickHz);
  t.add_row({"power density", "20 mW/cm2",
             util::format_sig(1e3 * energy::truenorth_power_density_w_per_cm2(chip_w), 3) +
                 " mW/cm2"});
  t.add_row({"max tick rate @20Hz/128syn", "> real-time",
             util::format_sig(1e-3 * timing.max_tick_hz(s, kV), 3) + " kHz"});
  t.add_row({"measured network rate / synapses", "20 Hz / 128",
             util::format_sig(s.mean_rate_hz(static_cast<std::uint64_t>(geom.neurons())), 3) +
                 " Hz / " + util::format_sig(s.mean_synapses_per_delivery(), 4)});
  t.print(std::cout);

  // §V-2: the ADC measurement chain, applied to the modeled waveform.
  const double active_per_tick =
      factor * power.active_energy_j(s, kV) / static_cast<double>(s.ticks);
  const double passive = factor * power.passive_power_w(geom.total_cores(), kV);
  const energy::PowerMeter meter;
  const auto reading =
      meter.measure(active_per_tick, passive, energy::kRealTimeTickHz, 600);
  const double analytic = passive + active_per_tick * energy::kRealTimeTickHz;
  std::printf("\nEmulated AD7689 measurement chain (65.2 kHz, >500-tick average):\n");
  std::printf("  analytic %.2f mW, reconstructed %.2f mW (%.2f%% error; paper calibration 3%%)\n",
              1e3 * analytic, 1e3 * reading.rms_power_w,
              100.0 * std::abs(reading.rms_power_w - analytic) / analytic);

  bench::maybe_write_bench_json("headline_gsops", main_run, ticks);
  return 0;
}
