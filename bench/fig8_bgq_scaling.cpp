// Regenerates paper Fig. 8 (E12 in DESIGN.md): strong scaling of the
// NeoVision application on Blue Gene/Q — run time per tick versus power as
// hosts (1..32) and threads per host (8..64) vary — plus the x86 1-host
// 4/6/8/12-thread series the figure overlays.
//
// A second, *measured* section re-runs the figure's scaling axis for real on
// this machine: the quarter-chip recurrent workload sharded across forked
// rank processes (src/dist, docs/DISTRIBUTED.md) at 1/2/4 ranks, reporting
// observed ticks/s, per-rank compute/exchange time, and load imbalance. With
// NSC_BENCH_JSON=1 each point writes BENCH_fig8_ranks<R>.json so
// nsc_bench_diff --min-speedup can gate the 4-rank speedup in CI.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "src/apps/neovision.hpp"
#include "src/dist/coordinator.hpp"
#include "src/energy/host_models.hpp"
#include "src/energy/units.hpp"
#include "src/util/table.hpp"

namespace {

/// Measured multi-process scaling: the same recurrent workload, sharded
/// across forked rank processes exchanging AER batches over sockets.
void measured_scaling() {
  using namespace nsc;
  const core::Geometry geom = bench::scaled_chip();
  const core::Tick ticks = bench::bench_ticks();
  netgen::RecurrentSpec spec;
  spec.geom = geom;
  spec.rate_hz = 50;
  spec.synapses_per_axon = 64;
  spec.seed = 99;
  const core::Network net = netgen::make_recurrent(spec);

  std::printf("\n=== Fig. 8 (measured): multi-process sharded Compass on this host ===\n");
  std::printf("workload: %d-core recurrent net, %lld measured ticks after %lld warmup\n\n",
              geom.total_cores(), static_cast<long long>(ticks),
              static_cast<long long>(bench::bench_warmup()));

  const char* on = std::getenv("NSC_BENCH_JSON");
  const char* dir = std::getenv("NSC_BENCH_JSON_DIR");
  const bool write_json =
      !((on == nullptr || on[0] == '\0' || on[0] == '0') && (dir == nullptr || dir[0] == '\0'));

  util::Table t({"ranks", "ticks/s", "wall (s)", "imbalance", "exchange (ms)", "dist msgs",
                 "dist bytes"});
  for (const int ranks : {1, 2, 4}) {
    dist::Coordinator coord(net, {.ranks = ranks, .threads_per_rank = 1});
    coord.run(bench::bench_warmup(), nullptr, nullptr);
    coord.reset_stats();
    const std::uint64_t t0 = obs::now_ns();
    coord.run(ticks, nullptr, nullptr);
    const double wall_s = 1e-9 * static_cast<double>(obs::now_ns() - t0);
    const obs::Registry& m = coord.metrics();
    t.add_row({std::to_string(ranks),
               util::format_sig(static_cast<double>(ticks) / wall_s, 4),
               util::format_sig(wall_s, 4), util::format_sig(coord.load_imbalance(), 3),
               util::format_sig(1e-6 * static_cast<double>(m.counter_value("dist.exchange_ns")), 4),
               std::to_string(m.counter_value("dist.messages")),
               std::to_string(m.counter_value("dist.bytes"))});

    if (write_json) {
      obs::BenchReport report;
      report.name = "fig8_ranks" + std::to_string(ranks);
      report.threads = ranks;
      report.ticks = static_cast<std::uint64_t>(ticks);
      report.wall_s = wall_s;
      report.stats = coord.stats();
      report.load_imbalance = coord.load_imbalance();
      report.metrics = m;
      for (int r = 0; r < ranks; ++r) {
        const std::string prefix = "rank" + std::to_string(r);
        report.metrics.counter(prefix + ".compute_ns") =
            coord.rank_compute_ns()[static_cast<std::size_t>(r)];
        report.metrics.counter(prefix + ".exchange_ns") =
            coord.rank_exchange_ns()[static_cast<std::size_t>(r)];
      }
      const std::string path = obs::default_report_path(report.name);
      obs::write_bench_report(path, report);
      std::printf("wrote metrics report to %s\n", path.c_str());
    }
  }
  t.print(std::cout);
  std::printf("exchange time is wall time ranks spent in the tick-window protocol;\n"
              "imbalance is max/mean per-rank compute (1.0 = perfectly balanced).\n");
}

}  // namespace

int main() {
  using namespace nsc;
  apps::AppConfig cfg;
  cfg.img_w = 64;
  cfg.img_h = 64;
  cfg.frames = 6;
  cfg.ticks_per_frame = 33;
  cfg.scene_objects = 3;
  cfg.seed = 7;

  std::printf("=== Fig. 8: NeoVision strong scaling on BG/Q (time vs power) ===\n\n");
  const auto neo = apps::make_neovision_app(cfg);
  const apps::AppRunResult run = apps::run_on_truenorth(neo.net);
  // Scale the measured workload to the paper's NeoVision network (660,009
  // neurons in 4,018 cores, §IV-B); the scaled run is a proportional sample.
  const double scale = 660009.0 / static_cast<double>(neo.net.neurons());
  core::KernelStats s = run.stats;
  s.sops = static_cast<std::uint64_t>(static_cast<double>(s.sops) * scale);
  s.neuron_updates = static_cast<std::uint64_t>(static_cast<double>(s.neuron_updates) * scale);
  s.spikes = static_cast<std::uint64_t>(static_cast<double>(s.spikes) * scale);
  s.axon_events = static_cast<std::uint64_t>(static_cast<double>(s.axon_events) * scale);
  std::printf("workload: measured %d cores / %llu neurons, scaled %.0fx to the paper's\n"
              "660,009-neuron NeoVision network -> %.2e work units/tick\n\n",
              neo.net.used_cores(), static_cast<unsigned long long>(neo.net.neurons()), scale,
              energy::work_units_per_tick(s));

  const energy::BgqModel bgq;
  const energy::X86Model x86;

  util::Table t({"series", "hosts", "threads/host", "run time (s/tick)", "power (W)",
                 "energy (J/tick)", "x real-time"});
  for (int hosts : {1, 2, 4, 8, 16, 32}) {
    for (int threads : {8, 16, 32, 64}) {
      const double sec = bgq.seconds_per_tick(s, hosts, threads);
      const double w = bgq.power_w(hosts, threads);
      t.add_row({"BG/Q", std::to_string(hosts), std::to_string(threads),
                 util::format_sig(sec, 4), util::format_sig(w, 4),
                 util::format_sig(sec * w, 4), util::format_sig(sec / 1e-3, 3)});
    }
  }
  for (int threads : {4, 6, 8, 12}) {
    const double sec = x86.seconds_per_tick(s, threads);
    const double w = x86.power_w(threads);
    t.add_row({"x86", "1", std::to_string(threads), util::format_sig(sec, 4),
               util::format_sig(w, 4), util::format_sig(sec * w, 4),
               util::format_sig(sec / 1e-3, 3)});
  }
  t.print(std::cout);

  // The paper's summary observations.
  const double best = bgq.seconds_per_tick(s, 32, 64);
  const double single = bgq.seconds_per_tick(s, 1, 8);
  std::printf("\nbest BG/Q point: %.1f ms/tick = %.1fx slower than real time"
              " (paper: best point 12x slower)\n", 1e3 * best, best / 1e-3);
  std::printf("1-host 8-thread point: %.3f s/tick; 32-host speedup over it: %.1fx\n", single,
              single / best);
  std::printf("single host is most power-efficient but slowest; 32 hosts fastest but\n"
              "most power — the trade-off of paper Fig. 8.\n");

  measured_scaling();
  return 0;
}
