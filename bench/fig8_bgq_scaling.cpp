// Regenerates paper Fig. 8 (E12 in DESIGN.md): strong scaling of the
// NeoVision application on Blue Gene/Q — run time per tick versus power as
// hosts (1..32) and threads per host (8..64) vary — plus the x86 1-host
// 4/6/8/12-thread series the figure overlays.
#include <cstdio>
#include <iostream>

#include "src/apps/neovision.hpp"
#include "src/energy/host_models.hpp"
#include "src/energy/units.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace nsc;
  apps::AppConfig cfg;
  cfg.img_w = 64;
  cfg.img_h = 64;
  cfg.frames = 6;
  cfg.ticks_per_frame = 33;
  cfg.scene_objects = 3;
  cfg.seed = 7;

  std::printf("=== Fig. 8: NeoVision strong scaling on BG/Q (time vs power) ===\n\n");
  const auto neo = apps::make_neovision_app(cfg);
  const apps::AppRunResult run = apps::run_on_truenorth(neo.net);
  // Scale the measured workload to the paper's NeoVision network (660,009
  // neurons in 4,018 cores, §IV-B); the scaled run is a proportional sample.
  const double scale = 660009.0 / static_cast<double>(neo.net.neurons());
  core::KernelStats s = run.stats;
  s.sops = static_cast<std::uint64_t>(static_cast<double>(s.sops) * scale);
  s.neuron_updates = static_cast<std::uint64_t>(static_cast<double>(s.neuron_updates) * scale);
  s.spikes = static_cast<std::uint64_t>(static_cast<double>(s.spikes) * scale);
  s.axon_events = static_cast<std::uint64_t>(static_cast<double>(s.axon_events) * scale);
  std::printf("workload: measured %d cores / %llu neurons, scaled %.0fx to the paper's\n"
              "660,009-neuron NeoVision network -> %.2e work units/tick\n\n",
              neo.net.used_cores(), static_cast<unsigned long long>(neo.net.neurons()), scale,
              energy::work_units_per_tick(s));

  const energy::BgqModel bgq;
  const energy::X86Model x86;

  util::Table t({"series", "hosts", "threads/host", "run time (s/tick)", "power (W)",
                 "energy (J/tick)", "x real-time"});
  for (int hosts : {1, 2, 4, 8, 16, 32}) {
    for (int threads : {8, 16, 32, 64}) {
      const double sec = bgq.seconds_per_tick(s, hosts, threads);
      const double w = bgq.power_w(hosts, threads);
      t.add_row({"BG/Q", std::to_string(hosts), std::to_string(threads),
                 util::format_sig(sec, 4), util::format_sig(w, 4),
                 util::format_sig(sec * w, 4), util::format_sig(sec / 1e-3, 3)});
    }
  }
  for (int threads : {4, 6, 8, 12}) {
    const double sec = x86.seconds_per_tick(s, threads);
    const double w = x86.power_w(threads);
    t.add_row({"x86", "1", std::to_string(threads), util::format_sig(sec, 4),
               util::format_sig(w, 4), util::format_sig(sec * w, 4),
               util::format_sig(sec / 1e-3, 3)});
  }
  t.print(std::cout);

  // The paper's summary observations.
  const double best = bgq.seconds_per_tick(s, 32, 64);
  const double single = bgq.seconds_per_tick(s, 1, 8);
  std::printf("\nbest BG/Q point: %.1f ms/tick = %.1fx slower than real time"
              " (paper: best point 12x slower)\n", 1e3 * best, best / 1e-3);
  std::printf("1-host 8-thread point: %.3f s/tick; 32-host speedup over it: %.1fx\n", single,
              single / best);
  std::printf("single host is most power-efficient but slowest; 32 hosts fastest but\n"
              "most power — the trade-off of paper Fig. 8.\n");
  return 0;
}
