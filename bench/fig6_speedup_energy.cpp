// Regenerates paper Fig. 6(a-d): TrueNorth speedup and energy improvement
// versus Compass on 32-card Blue Gene/Q and on the dual-socket x86 server,
// over the 88-network characterization space (E8/E9 in DESIGN.md).
//
// TrueNorth runs in real time (1 ms/tick, the paper's comparison basis);
// platform times come from the calibrated host models driven by each
// network's measured work units, and the host-measured Compass wall clock
// on a subset validates the modeling (see EXPERIMENTS.md).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/compass/simulator.hpp"
#include "src/energy/host_models.hpp"
#include "src/energy/units.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace nsc;
  const core::Geometry geom = bench::scaled_chip();
  const core::Tick ticks = bench::bench_ticks();
  bench::print_banner("=== Fig. 6: speedup & energy improvement vs Compass (a-d) ===", geom,
                      ticks);
  const double factor = bench::full_chip_factor(geom);

  const std::vector<double> rates = netgen::grid_rates();
  const std::vector<int> synapses = netgen::grid_synapses();
  const energy::TrueNorthPowerModel tnp;
  const energy::X86Model x86;
  const energy::BgqModel bgq;
  constexpr double kV = 0.75;
  const double tn_tick_s = 1.0 / energy::kRealTimeTickHz;

  using Grid = std::vector<std::vector<double>>;
  Grid speed_bgq(rates.size(), std::vector<double>(synapses.size()));
  Grid energy_bgq(rates.size(), std::vector<double>(synapses.size()));
  Grid speed_x86(rates.size(), std::vector<double>(synapses.size()));
  Grid energy_x86(rates.size(), std::vector<double>(synapses.size()));

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    for (std::size_t si = 0; si < synapses.size(); ++si) {
      const auto run = bench::run_characterization(geom, rates[ri], synapses[si], ticks);
      core::KernelStats s = run.stats;
      // Full-chip-equivalent work for the platform models.
      s.sops = static_cast<std::uint64_t>(static_cast<double>(s.sops) * factor);
      s.neuron_updates =
          static_cast<std::uint64_t>(static_cast<double>(s.neuron_updates) * factor);
      s.axon_events = static_cast<std::uint64_t>(static_cast<double>(s.axon_events) * factor);
      s.hop_sum = static_cast<std::uint64_t>(static_cast<double>(s.hop_sum) * factor);
      s.spikes = static_cast<std::uint64_t>(static_cast<double>(s.spikes) * factor);

      const double tn_j_tick =
          tnp.total_energy_j(s, 4096, kV, energy::kRealTimeTickHz) / static_cast<double>(s.ticks);
      const double bgq_t = bgq.seconds_per_tick(s, 32, 64);
      const double x86_t = x86.seconds_per_tick(s, 12);
      speed_bgq[ri][si] = bgq_t / tn_tick_s;
      speed_x86[ri][si] = x86_t / tn_tick_s;
      energy_bgq[ri][si] = bgq.energy_per_tick_j(s, 32, 64) / tn_j_tick;
      energy_x86[ri][si] = x86.energy_per_tick_j(s, 12) / tn_j_tick;
    }
    std::fprintf(stderr, "  rate %.0f Hz row done\n", rates[ri]);
  }

  std::vector<double> syn_axis(synapses.begin(), synapses.end());
  util::print_grid(std::cout, "(a) x Speedup vs Compass on 32-card BG/Q", "synapses", "rate(Hz)",
                   syn_axis, rates, speed_bgq);
  std::cout << '\n';
  util::print_grid(std::cout, "(b) x Energy improvement vs BG/Q", "synapses", "rate(Hz)",
                   syn_axis, rates, energy_bgq);
  std::cout << '\n';
  util::print_grid(std::cout, "(c) x Speedup vs Compass on dual-socket x86", "synapses",
                   "rate(Hz)", syn_axis, rates, speed_x86);
  std::cout << '\n';
  util::print_grid(std::cout, "(d) x Energy improvement vs x86", "synapses", "rate(Hz)",
                   syn_axis, rates, energy_x86);

  // Validation subset: actually run Compass on this host and compare its
  // measured per-tick time against the x86 model's per-thread projection.
  std::cout << "\nHost-measured Compass validation subset (1 thread on this machine):\n";
  util::Table t({"rate(Hz)", "synapses", "model x86 1-thr (s/tick)", "measured host (s/tick)",
                 "measured/model"});
  for (const auto& [r, k] : std::vector<std::pair<double, int>>{{20, 128}, {100, 64}, {50, 256}}) {
    netgen::RecurrentSpec spec;
    spec.geom = geom;
    spec.rate_hz = r;
    spec.synapses_per_axon = k;
    spec.seed = 99;
    const core::Network net = netgen::make_recurrent(spec);
    compass::Simulator sim(net, {.threads = 1});
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(ticks, nullptr, nullptr);
    const auto t1 = std::chrono::steady_clock::now();
    const double measured =
        std::chrono::duration<double>(t1 - t0).count() / static_cast<double>(ticks);
    const double modeled = x86.seconds_per_tick(sim.stats(), 1);
    t.add_row_numeric(util::format_sig(r, 3) + " / " + std::to_string(k),
                      {static_cast<double>(k), modeled, measured, measured / modeled});
  }
  t.print(std::cout);
  std::cout << "(this host's lean in-process simulator runs faster per work unit than the\n"
               " paper-calibrated Compass-on-x86 model; ratios quantify the gap)\n";
  return 0;
}
