// Regenerates paper Fig. 7(a,b) and the §IV-B application statistics table
// (E10/E11/E16 in DESIGN.md): the five computer-vision applications on
// TrueNorth versus Compass on BG/Q and x86 — relative time, relative power,
// and energy improvement — plus the NeoVision precision/recall measurement.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/apps/haar.hpp"
#include "src/apps/lbp.hpp"
#include "src/apps/neovision.hpp"
#include "src/apps/saccade.hpp"
#include "src/apps/saliency.hpp"
#include "src/core/spike_sink.hpp"
#include "src/energy/host_models.hpp"
#include "src/energy/scaling_model.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/energy/units.hpp"
#include "src/util/table.hpp"

namespace {

using namespace nsc;

struct AppRow {
  std::string name;
  apps::AppRunResult tn;     ///< TrueNorth expression (stats + hops).
  apps::AppRunResult host;   ///< Compass on this host (measured).
  int cores = 0;             ///< Measured (scaled) network cores.
  std::uint64_t neurons = 0;
  int paper_cores = 0;       ///< Paper §IV-B network size.
  core::KernelStats paper_stats;  ///< Counters scaled to the paper network.
};

/// `paper_neurons`/`paper_cores` are the §IV-B network sizes; the scaled
/// run's counters are extrapolated proportionally so the platform models see
/// the paper's workload.
AppRow measure(const char* name, const apps::AppNetwork& net, double paper_neurons,
               int paper_cores) {
  AppRow row;
  row.name = name;
  row.cores = net.used_cores();
  row.neurons = net.neurons();
  row.paper_cores = paper_cores;
  row.tn = apps::run_on_truenorth(net);
  row.host = apps::run_on_compass(net, 1);
  const double k = paper_neurons / static_cast<double>(net.neurons());
  row.paper_stats = row.tn.stats;
  row.paper_stats.sops = static_cast<std::uint64_t>(static_cast<double>(row.tn.stats.sops) * k);
  row.paper_stats.neuron_updates =
      static_cast<std::uint64_t>(static_cast<double>(row.tn.stats.neuron_updates) * k);
  row.paper_stats.spikes =
      static_cast<std::uint64_t>(static_cast<double>(row.tn.stats.spikes) * k);
  row.paper_stats.axon_events =
      static_cast<std::uint64_t>(static_cast<double>(row.tn.stats.axon_events) * k);
  row.paper_stats.hop_sum =
      static_cast<std::uint64_t>(static_cast<double>(row.tn.stats.hop_sum) * k);
  std::fprintf(stderr, "  %s done (%llu spikes)\n", name,
               static_cast<unsigned long long>(row.tn.stats.spikes));
  return row;
}

}  // namespace

int main() {
  apps::AppConfig cfg;
  cfg.img_w = 64;
  cfg.img_h = 64;
  cfg.frames = 8;
  cfg.ticks_per_frame = 33;  // ~30 fps at the 1 kHz tick
  cfg.scene_objects = 3;
  cfg.seed = 7;

  std::printf("=== Fig. 7: application performance vs Compass (five apps) ===\n");
  std::printf("workload: %dx%d video, %d frames at ~30 fps (%lld ticks)\n\n", cfg.img_w,
              cfg.img_h, cfg.frames, static_cast<long long>(cfg.frames) * cfg.ticks_per_frame);

  // Paper §IV-B network sizes (neurons, cores) for workload extrapolation.
  std::vector<AppRow> rows;
  {
    const auto haar = apps::make_haar_app(cfg);
    rows.push_back(measure("haar", haar.net, 617567, 2605));
    const auto lbp = apps::make_lbp_app(cfg);
    rows.push_back(measure("lbp", lbp.net, 813978, 3836));
    const auto sal = apps::make_saliency_app(cfg);
    rows.push_back(measure("saliency", sal.net, 889461, 3926));
    const auto sac = apps::make_saccade_app(cfg);
    rows.push_back(measure("saccade", sac.net, 612458, 2571));
  }
  // NeoVision also reports detection quality (paper: 0.85 P / 0.80 R).
  const auto neo = apps::make_neovision_app(cfg);
  rows.push_back(measure("neovision", neo.net, 660009, 4018));
  // Quality is measured over several short, less crowded clips (the Tower
  // scenes have scattered objects; three objects in a 64×64 crop merge
  // hypotheses) and aggregated, as the paper does over its test set.
  vision::DetectionCounts neo_quality;
  for (std::uint64_t seed : {3u, 5u, 9u, 11u}) {
    apps::AppConfig quality_cfg = cfg;
    quality_cfg.scene_objects = 2;
    quality_cfg.frames = 6;
    quality_cfg.seed = seed;
    const auto neo_q = apps::make_neovision_app(quality_cfg);
    core::WindowedCountSink neo_sink(
        static_cast<std::uint64_t>(neo_q.net.network().geom.neurons()), neo_q.ticks_per_frame);
    (void)apps::run_on_truenorth(neo_q.net, &neo_sink);
    neo_quality += apps::decode_detections(neo_q, neo_sink).counts;
  }

  const energy::TrueNorthPowerModel tnp;
  const energy::TrueNorthTimingModel tnt;
  const energy::X86Model x86;
  const energy::BgqModel bgq;
  constexpr double kV = 0.75;

  // E16: the §IV-B application statistics block.
  util::Table stats_table({"app", "cores", "neurons", "mean rate (Hz)", "spikes", "SOPs"});
  for (const AppRow& r : rows) {
    stats_table.add_row(
        {r.name, std::to_string(r.cores), std::to_string(r.neurons),
         util::format_sig(r.tn.stats.mean_rate_hz(r.neurons), 3),
         std::to_string(r.tn.stats.spikes), std::to_string(r.tn.stats.sops)});
  }
  std::printf("Application networks (paper SIV-B analogue):\n");
  stats_table.print(std::cout);

  // Fig. 7(a): relative time vs relative power; Fig. 7(b): energy bars.
  util::Table fig7({"app", "rel.time BG/Q", "rel.power BG/Q", "x energy BG/Q", "rel.time x86",
                    "rel.power x86", "x energy x86", "host-measured rel.time"});
  const double tn_tick_s = 1.0 / energy::kRealTimeTickHz;
  for (const AppRow& r : rows) {
    const core::KernelStats& s = r.paper_stats;
    const double tn_p = tnp.mean_power_w(s, r.paper_cores, kV, energy::kRealTimeTickHz);
    const double tn_j = tn_p * tn_tick_s;
    // Weak scaling on BG/Q, as the paper does: ≈2 cores per thread.
    const int bgq_hosts = std::clamp(r.paper_cores / (2 * 32), 1, 32);
    const double bgq_t = bgq.seconds_per_tick(s, bgq_hosts, 32);
    const double bgq_p = bgq.power_w(bgq_hosts, 32);
    const double x86_t = x86.seconds_per_tick(s, 12);
    const double x86_p = x86.power_w(12);
    fig7.add_row_numeric(r.name, {bgq_t / tn_tick_s, bgq_p / tn_p, bgq_t * bgq_p / tn_j,
                                  x86_t / tn_tick_s, x86_p / tn_p, x86_t * x86_p / tn_j,
                                  r.host.seconds_per_tick() / tn_tick_s},
                         3);
  }
  std::printf("\nFig. 7 series (TrueNorth = 1 on both axes):\n");
  fig7.print(std::cout);

  // TrueNorth feasibility: all five apps must hold real time on-chip.
  util::Table rt({"app", "max tick rate (kHz)", "real-time?", "chip power (mW)",
                  "power density (mW/cm2)"});
  for (const AppRow& r : rows) {
    const double khz = 1e-3 * tnt.max_tick_hz(r.tn.stats, kV);
    const double mw =
        1e3 * tnp.mean_power_w(r.paper_stats, r.paper_cores, kV, energy::kRealTimeTickHz);
    rt.add_row({r.name, util::format_sig(khz, 3), khz >= 1.0 ? "yes" : "NO",
                util::format_sig(mw, 3),
                util::format_sig(1e3 * energy::truenorth_power_density_w_per_cm2(mw * 1e-3), 3)});
  }
  std::printf("\nTrueNorth real-time feasibility:\n");
  rt.print(std::cout);

  std::printf("\nNeoVision detection quality (paper: 0.85 precision / 0.80 recall):\n");
  std::printf("  precision %.2f   recall %.2f   (tp %d, fp %d, fn %d; synthetic scenes)\n",
              neo_quality.precision(), neo_quality.recall(), neo_quality.true_positives,
              neo_quality.false_positives, neo_quality.false_negatives);
  return 0;
}
