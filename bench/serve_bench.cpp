// Multi-tenant served-throughput smoke (docs/SERVE.md). Boots an in-process
// nsc_serve core on its own thread, drives N concurrent tenant sessions over
// real Unix-domain sockets (each its own connection: create, chunked ticks
// with spike streaming, destroy), verifies every tenant's streamed trace
// hash against the solo compass witness (exit 1 on any divergence — a
// throughput number from a wrong simulation is worse than no number), and
// emits BENCH_serve.json with *aggregate* ticks (N x T), so ticks_per_s is
// aggregate served session-ticks/s — the number CI's bench-smoke publishes.
// Knobs: NSC_BENCH_TICKS (default 400), NSC_BENCH_SESSIONS (default 8),
// NSC_BENCH_CHUNK (ticks per kTick command, default 50), NSC_BENCH_RATE /
// NSC_BENCH_SYN (default 20 Hz / 128 synapses on an 8x8-core net),
// NSC_BENCH_JSON_DIR (report directory, default cwd).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/core/spike_sink.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/obs/json.hpp"
#include "src/obs/json_report.hpp"
#include "src/obs/obs.hpp"
#include "src/compass/simulator.hpp"
#include "src/serve/client.hpp"
#include "src/serve/server.hpp"

namespace {

long env_or(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::atol(v) : fallback;
}

nsc::core::Network sparse_point_net(double rate, int syn) {
  nsc::netgen::RecurrentSpec spec;
  spec.geom = nsc::core::Geometry{1, 1, 8, 8};
  spec.rate_hz = rate;
  spec.synapses_per_axon = syn;
  spec.seed = 12345;
  return nsc::netgen::make_recurrent(spec);
}

std::uint64_t json_counter(const nsc::obs::JsonValue& doc, const char* section,
                           const char* key) {
  const nsc::obs::JsonValue* s = doc.find(section);
  const nsc::obs::JsonValue* v = s != nullptr ? s->find(key) : nullptr;
  return v != nullptr ? static_cast<std::uint64_t>(v->as_int()) : 0;
}

}  // namespace

int main() {
  const auto ticks = static_cast<nsc::core::Tick>(env_or("NSC_BENCH_TICKS", 400));
  const int sessions = static_cast<int>(env_or("NSC_BENCH_SESSIONS", 8));
  const auto chunk = static_cast<nsc::core::Tick>(env_or("NSC_BENCH_CHUNK", 50));
  const double rate = static_cast<double>(env_or("NSC_BENCH_RATE", 20));
  const int syn = static_cast<int>(env_or("NSC_BENCH_SYN", 128));

  // Solo witness: with no inputs every session runs the identical resident
  // network, so one solo hash gates all N served streams.
  const nsc::core::Network net = sparse_point_net(rate, syn);
  nsc::core::TraceHashSink solo_sink;
  {
    nsc::compass::Simulator solo(net, nsc::compass::Config{});
    solo.run(ticks, nullptr, &solo_sink);
  }

  nsc::serve::Server::Config cfg;
  cfg.socket_path = "/tmp/nsc_serve_bench_" + std::to_string(::getpid()) + ".sock";
  cfg.max_sessions = sessions;
  cfg.poll_interval_ms = 5;
  nsc::serve::Server server(cfg);
  server.add_network("bench", sparse_point_net(rate, syn));
  server.bind();
  std::thread loop([&server] { server.run(); });

  std::atomic<int> failures{0};
  std::vector<std::thread> tenants;
  tenants.reserve(static_cast<std::size_t>(sessions));
  const std::uint64_t t0 = nsc::obs::now_ns();
  for (int t = 0; t < sessions; ++t) {
    tenants.emplace_back([&, t] {
      try {
        nsc::serve::Client c = nsc::serve::Client::connect(cfg.socket_path);
        c.hello();
        const std::uint64_t s = c.create("bench");
        nsc::core::TraceHashSink hash;
        std::vector<nsc::core::Spike> spikes;
        nsc::core::Tick at = 0;
        while (at < ticks) {
          const nsc::core::Tick step = chunk > 0 && chunk < ticks - at ? chunk : ticks - at;
          c.tick(s, step);
          spikes.clear();
          c.read_all_spikes(s, spikes);
          for (const auto& sp : spikes) hash.on_spike(sp.tick, sp.core, sp.neuron);
          at += step;
        }
        if (hash.hash() != solo_sink.hash()) {
          std::fprintf(stderr, "session %d diverged from solo run: hash %016llx vs %016llx\n",
                       t, static_cast<unsigned long long>(hash.hash()),
                       static_cast<unsigned long long>(solo_sink.hash()));
          ++failures;
        }
        c.destroy(s);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "session %d failed: %s\n", t, e.what());
        ++failures;
      }
    });
  }
  for (auto& th : tenants) th.join();
  const double wall_s = 1e-9 * static_cast<double>(nsc::obs::now_ns() - t0);

  server.request_stop();
  loop.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "FAIL: %d of %d served sessions diverged or errored\n",
                 failures.load(), sessions);
    return 1;
  }

  // Kernel counters come from the daemon's own post-run stats document (the
  // retired fold), so the report reflects what was actually served.
  const nsc::obs::JsonValue daemon = nsc::obs::parse_json(server.stats_json());
  nsc::obs::BenchReport report;
  report.name = "serve";
  report.threads = sessions;
  report.ticks = static_cast<std::uint64_t>(sessions) * static_cast<std::uint64_t>(ticks);
  report.wall_s = wall_s;
  report.stats.ticks = json_counter(daemon, "stats", "ticks");
  report.stats.spikes = json_counter(daemon, "stats", "spikes");
  report.stats.sops = json_counter(daemon, "stats", "sops");
  report.stats.axon_events = json_counter(daemon, "stats", "axon_events");
  report.stats.neuron_updates = json_counter(daemon, "stats", "neuron_updates");
  report.stats.dropped_spikes = json_counter(daemon, "stats", "dropped_spikes");
  report.metrics = server.metrics();

  const std::string path = nsc::obs::default_report_path(report.name);
  nsc::obs::write_bench_report(path, report);
  std::printf("sessions=%d ticks=%lld chunk=%lld: %.0f served session-ticks/s aggregate, "
              "all %d trace hashes match solo (%s)\n",
              sessions, static_cast<long long>(ticks), static_cast<long long>(chunk),
              report.ticks_per_s(), sessions, path.c_str());
  return 0;
}
