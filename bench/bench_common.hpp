// Shared helpers for the figure benches: scaled geometries, characterization
// runs, and standard headers. Each bench prints the scale factors it runs
// at; ratios (speedup, energy improvement, GSOPS/W) are scale-invariant
// because workload and platform models scale together (DESIGN.md §4).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/network.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/obs/json_report.hpp"
#include "src/obs/obs.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc::bench {

/// Scale knob: NSC_BENCH_SCALE = small | quarter | full (default quarter).
/// quarter = 1,024 cores (32×32); full = the 4,096-core TrueNorth chip.
inline core::Geometry scaled_chip() {
  const char* env = std::getenv("NSC_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "quarter";
  if (scale == "full") return core::Geometry{1, 1, 64, 64};
  if (scale == "small") return core::Geometry{1, 1, 8, 8};
  return core::Geometry{1, 1, 32, 32};
}

/// Ticks per characterization point (NSC_BENCH_TICKS, default 10).
inline core::Tick bench_ticks() {
  const char* env = std::getenv("NSC_BENCH_TICKS");
  return env != nullptr ? std::atoll(env) : 10;
}

/// Warmup ticks before counters start (NSC_BENCH_WARMUP, default 40): the
/// recurrent networks converge to their target rate geometrically with
/// ratio K/α ≤ 0.8, so ~40 ticks reach equilibrium from the phase-
/// distributed cold start.
inline core::Tick bench_warmup() {
  const char* env = std::getenv("NSC_BENCH_WARMUP");
  return env != nullptr ? std::atoll(env) : 40;
}

/// Factor converting scaled-chip counters to full-chip-equivalent values.
inline double full_chip_factor(const core::Geometry& g) {
  return 4096.0 / static_cast<double>(g.total_cores());
}

/// One characterization run: builds the (rate, synapses) recurrent network
/// on the scaled chip and executes it on the TrueNorth expression.
struct CharacterizationRun {
  core::KernelStats stats;
  int cores = 0;
  double mean_hops = 0.0;
  double wall_s = 0.0;        ///< Wall-clock seconds of the measured window.
  obs::Registry metrics;      ///< Per-phase breakdown of the measured window.
};

inline CharacterizationRun run_characterization(const core::Geometry& geom, double rate_hz,
                                                int synapses, core::Tick ticks,
                                                std::uint64_t seed = 99) {
  netgen::RecurrentSpec spec;
  spec.geom = geom;
  spec.rate_hz = rate_hz;
  spec.synapses_per_axon = synapses;
  spec.seed = seed;
  const core::Network net = netgen::make_recurrent(spec);
  tn::TrueNorthSimulator sim(net);
  sim.run(bench_warmup(), nullptr, nullptr);
  sim.reset_stats();
  sim.reset_metrics();
  const std::uint64_t t0 = obs::now_ns();
  sim.run(ticks, nullptr, nullptr);
  const double wall_s = 1e-9 * static_cast<double>(obs::now_ns() - t0);
  return {sim.stats(), geom.total_cores(), sim.mean_hops_per_spike(), wall_s, sim.metrics()};
}

/// Writes BENCH_<name>.json for a characterization run when NSC_BENCH_JSON=1
/// or NSC_BENCH_JSON_DIR is set (mirrors the NSC_BENCH_CSV opt-in), so any
/// figure bench can feed the nsc_bench_diff regression gate.
inline void maybe_write_bench_json(const std::string& name, const CharacterizationRun& run,
                                   core::Tick ticks) {
  const char* on = std::getenv("NSC_BENCH_JSON");
  const char* dir = std::getenv("NSC_BENCH_JSON_DIR");
  if ((on == nullptr || on[0] == '\0' || on[0] == '0') && (dir == nullptr || dir[0] == '\0')) {
    return;
  }
  obs::BenchReport report;
  report.name = name;
  report.threads = 1;  // The TrueNorth expression is single-threaded.
  report.ticks = static_cast<std::uint64_t>(ticks);
  report.wall_s = run.wall_s;
  report.stats = run.stats;
  report.metrics = run.metrics;
  const std::string path = obs::default_report_path(name);
  obs::write_bench_report(path, report);
  std::printf("wrote metrics report to %s\n", path.c_str());
}

inline void print_banner(const char* title, const core::Geometry& g, core::Tick ticks) {
  std::printf("%s\n", title);
  std::printf("scale: %d cores (%s chip), %lld ticks per point; ", g.total_cores(),
              g.total_cores() == 4096 ? "full" : "scaled", static_cast<long long>(ticks));
  std::printf("full-chip factor %.1fx applied where noted\n\n", full_chip_factor(g));
}

}  // namespace nsc::bench
