// Shared helpers for the figure benches: scaled geometries, characterization
// runs, and standard headers. Each bench prints the scale factors it runs
// at; ratios (speedup, energy improvement, GSOPS/W) are scale-invariant
// because workload and platform models scale together (DESIGN.md §4).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/network.hpp"
#include "src/energy/truenorth_power.hpp"
#include "src/energy/truenorth_timing.hpp"
#include "src/netgen/recurrent.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc::bench {

/// Scale knob: NSC_BENCH_SCALE = small | quarter | full (default quarter).
/// quarter = 1,024 cores (32×32); full = the 4,096-core TrueNorth chip.
inline core::Geometry scaled_chip() {
  const char* env = std::getenv("NSC_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "quarter";
  if (scale == "full") return core::Geometry{1, 1, 64, 64};
  if (scale == "small") return core::Geometry{1, 1, 8, 8};
  return core::Geometry{1, 1, 32, 32};
}

/// Ticks per characterization point (NSC_BENCH_TICKS, default 10).
inline core::Tick bench_ticks() {
  const char* env = std::getenv("NSC_BENCH_TICKS");
  return env != nullptr ? std::atoll(env) : 10;
}

/// Warmup ticks before counters start (NSC_BENCH_WARMUP, default 40): the
/// recurrent networks converge to their target rate geometrically with
/// ratio K/α ≤ 0.8, so ~40 ticks reach equilibrium from the phase-
/// distributed cold start.
inline core::Tick bench_warmup() {
  const char* env = std::getenv("NSC_BENCH_WARMUP");
  return env != nullptr ? std::atoll(env) : 40;
}

/// Factor converting scaled-chip counters to full-chip-equivalent values.
inline double full_chip_factor(const core::Geometry& g) {
  return 4096.0 / static_cast<double>(g.total_cores());
}

/// One characterization run: builds the (rate, synapses) recurrent network
/// on the scaled chip and executes it on the TrueNorth expression.
struct CharacterizationRun {
  core::KernelStats stats;
  int cores = 0;
  double mean_hops = 0.0;
};

inline CharacterizationRun run_characterization(const core::Geometry& geom, double rate_hz,
                                                int synapses, core::Tick ticks,
                                                std::uint64_t seed = 99) {
  netgen::RecurrentSpec spec;
  spec.geom = geom;
  spec.rate_hz = rate_hz;
  spec.synapses_per_axon = synapses;
  spec.seed = seed;
  const core::Network net = netgen::make_recurrent(spec);
  tn::TrueNorthSimulator sim(net);
  sim.run(bench_warmup(), nullptr, nullptr);
  sim.reset_stats();
  sim.run(ticks, nullptr, nullptr);
  return {sim.stats(), geom.total_cores(), sim.mean_hops_per_spike()};
}

inline void print_banner(const char* title, const core::Geometry& g, core::Tick ticks) {
  std::printf("%s\n", title);
  std::printf("scale: %d cores (%s chip), %lld ticks per point; ", g.total_cores(),
              g.total_cores() == 4096 ? "full" : "scaled", static_cast<long long>(ticks));
  std::printf("full-chip factor %.1fx applied where noted\n\n", full_chip_factor(g));
}

}  // namespace nsc::bench
