// PGM (portable graymap) image output: scenes, saliency maps, and decoded
// activity maps can be dumped for visual inspection with any image viewer.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/vision/image.hpp"

namespace nsc::vision {

/// Writes `img` as binary PGM (P5).
void write_pgm(const Image& img, std::ostream& os);
void write_pgm(const Image& img, const std::string& path);

/// Reads a binary PGM (P5, maxval <= 255); throws std::runtime_error on
/// malformed input.
[[nodiscard]] Image read_pgm(std::istream& is);
[[nodiscard]] Image read_pgm(const std::string& path);

/// Renders a grid of doubles as an image, min–max normalized (all-equal
/// grids map to 0). Used to visualize saliency/activity maps.
[[nodiscard]] Image gray_from_grid(const std::vector<std::vector<double>>& rows);

}  // namespace nsc::vision
