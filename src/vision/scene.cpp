#include "src/vision/scene.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/prng.hpp"

namespace nsc::vision {

ClassArchetype archetype(ObjectClass c) {
  switch (c) {
    case ObjectClass::kPerson: return {3, 10, 190, 160};
    case ObjectClass::kCyclist: return {7, 9, 160, 220};
    case ObjectClass::kCar: return {13, 6, 230, 120};
    case ObjectClass::kBus: return {20, 8, 250, 130};
    case ObjectClass::kTruck: return {16, 10, 140, 240};
  }
  return {8, 8, 128, 128};
}

SyntheticScene::SyntheticScene(const SceneConfig& cfg)
    : cfg_(cfg), background_(cfg.width, cfg.height, cfg.background) {
  util::Xoshiro rng(cfg.seed * 0x2545F4914F6CDD1DULL + 99);
  if (cfg.textured_background) {
    // Gentle deterministic texture so feature extractors see structure even
    // without objects (streets/buildings stand-in).
    for (int y = 0; y < cfg.height; ++y) {
      for (int x = 0; x < cfg.width; ++x) {
        const int stripe = ((x / 8) + (y / 8)) % 2 == 0 ? 0 : 12;
        const int noise = static_cast<int>(rng.next_below(9));
        background_.set(x, y,
                        static_cast<std::uint8_t>(std::clamp(
                            static_cast<int>(cfg.background) + stripe + noise, 0, 255)));
      }
    }
  }
  objs_.reserve(static_cast<std::size_t>(cfg.objects));
  for (int i = 0; i < cfg.objects; ++i) {
    Obj o;
    o.cls = static_cast<ObjectClass>(rng.next_below(kObjectClasses));
    const ClassArchetype a = archetype(o.cls);
    for (int attempt = 0; attempt < 64; ++attempt) {
      o.x = static_cast<double>(rng.next_below(static_cast<std::uint64_t>(
          std::max(1, cfg.width - a.w))));
      o.y = static_cast<double>(rng.next_below(static_cast<std::uint64_t>(
          std::max(1, cfg.height - a.h))));
      if (cfg.min_separation <= 0) break;
      bool ok = true;
      for (const Obj& other : objs_) {
        const ClassArchetype oa = archetype(other.cls);
        const double dx = (o.x + a.w / 2.0) - (other.x + oa.w / 2.0);
        const double dy = (o.y + a.h / 2.0) - (other.y + oa.h / 2.0);
        if (dx * dx + dy * dy <
            static_cast<double>(cfg.min_separation) * cfg.min_separation) {
          ok = false;
          break;
        }
      }
      if (ok) break;
    }
    // 0.5–2 px/frame: visible inter-frame motion for the transient detectors.
    o.vx = (0.5 + rng.next_double() * 1.5) * cfg.speed_scale;
    o.vy = (0.25 + rng.next_double() * 0.75) * cfg.speed_scale;
    if (rng.next_double() < 0.5) o.vx = -o.vx;
    if (rng.next_double() < 0.5) o.vy = -o.vy;
    objs_.push_back(o);
  }
}

void SyntheticScene::step() {
  ++frame_;
  for (Obj& o : objs_) {
    const ClassArchetype a = archetype(o.cls);
    o.x += o.vx;
    o.y += o.vy;
    if (o.x < 0 || o.x + a.w >= cfg_.width) {
      o.vx = -o.vx;
      o.x = std::clamp(o.x, 0.0, static_cast<double>(cfg_.width - a.w));
    }
    if (o.y < 0 || o.y + a.h >= cfg_.height) {
      o.vy = -o.vy;
      o.y = std::clamp(o.y, 0.0, static_cast<double>(cfg_.height - a.h));
    }
  }
}

Image SyntheticScene::render() const {
  Image frame = background_;
  for (const Obj& o : objs_) {
    const ClassArchetype a = archetype(o.cls);
    const int x = static_cast<int>(std::lround(o.x));
    const int y = static_cast<int>(std::lround(o.y));
    frame.fill_rect(x, y, a.w, a.h, a.brightness);
    // Accent stripe: horizontal mid-band — gives classes internal texture.
    frame.fill_rect(x, y + a.h / 3, a.w, std::max(1, a.h / 4), a.accent);
  }
  return frame;
}

std::vector<LabeledBox> SyntheticScene::ground_truth() const {
  std::vector<LabeledBox> boxes;
  boxes.reserve(objs_.size());
  for (const Obj& o : objs_) {
    const ClassArchetype a = archetype(o.cls);
    LabeledBox b;
    b.x = std::clamp(static_cast<int>(std::lround(o.x)), 0, cfg_.width - 1);
    b.y = std::clamp(static_cast<int>(std::lround(o.y)), 0, cfg_.height - 1);
    b.w = std::min(a.w, cfg_.width - b.x);
    b.h = std::min(a.h, cfg_.height - b.y);
    b.cls = o.cls;
    boxes.push_back(b);
  }
  return boxes;
}

}  // namespace nsc::vision
