#include "src/vision/pgm.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace nsc::vision {

void write_pgm(const Image& img, std::ostream& os) {
  os << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(img.pixels().data()),
           static_cast<std::streamsize>(img.pixels().size()));
  if (!os) throw std::runtime_error("PGM write failed");
}

void write_pgm(const Image& img, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_pgm(img, f);
}

Image read_pgm(std::istream& is) {
  std::string magic;
  is >> magic;
  if (magic != "P5") throw std::runtime_error("not a binary PGM (P5) file");
  int w = 0, h = 0, maxval = 0;
  is >> w >> h >> maxval;
  if (!is || w <= 0 || h <= 0 || maxval <= 0 || maxval > 255 || w > 1 << 16 || h > 1 << 16) {
    throw std::runtime_error("malformed PGM header");
  }
  is.get();  // the single whitespace byte after maxval
  Image img(w, h);
  std::vector<char> buf(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!is) throw std::runtime_error("PGM pixel data truncated");
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.set(x, y, static_cast<std::uint8_t>(buf[static_cast<std::size_t>(y) * w + x]));
    }
  }
  return img;
}

Image read_pgm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_pgm(f);
}

Image gray_from_grid(const std::vector<std::vector<double>>& rows) {
  const int h = static_cast<int>(rows.size());
  const int w = h > 0 ? static_cast<int>(rows[0].size()) : 0;
  Image img(std::max(w, 1), std::max(h, 1));
  double lo = 1e300, hi = -1e300;
  for (const auto& row : rows) {
    for (double v : row) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (h == 0 || w == 0 || hi <= lo) return img;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double v = rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
      img.set(x, y, static_cast<std::uint8_t>(255.0 * (v - lo) / (hi - lo)));
    }
  }
  return img;
}

}  // namespace nsc::vision
