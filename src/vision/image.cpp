#include "src/vision/image.hpp"

#include <algorithm>

namespace nsc::vision {

void Image::fill_rect(int x, int y, int w, int h, std::uint8_t v) {
  const int x0 = std::max(0, x), y0 = std::max(0, y);
  const int x1 = std::min(w_, x + w), y1 = std::min(h_, y + h);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) set(xx, yy, v);
  }
}

const char* class_name(ObjectClass c) {
  switch (c) {
    case ObjectClass::kPerson: return "person";
    case ObjectClass::kCyclist: return "cyclist";
    case ObjectClass::kCar: return "car";
    case ObjectClass::kBus: return "bus";
    case ObjectClass::kTruck: return "truck";
  }
  return "?";
}

double iou(const LabeledBox& a, const LabeledBox& b) {
  const int x0 = std::max(a.x, b.x), y0 = std::max(a.y, b.y);
  const int x1 = std::min(a.x + a.w, b.x + b.w), y1 = std::min(a.y + a.h, b.y + b.h);
  const int iw = std::max(0, x1 - x0), ih = std::max(0, y1 - y0);
  const double inter = static_cast<double>(iw) * ih;
  const double uni = static_cast<double>(a.w) * a.h + static_cast<double>(b.w) * b.h - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

}  // namespace nsc::vision
