#include "src/vision/metrics.hpp"

#include <algorithm>

namespace nsc::vision {

DetectionCounts match_detections(const std::vector<LabeledBox>& ground_truth,
                                 const std::vector<LabeledBox>& detections,
                                 double iou_threshold, bool require_class) {
  DetectionCounts c;
  std::vector<bool> claimed(ground_truth.size(), false);
  for (const LabeledBox& det : detections) {
    int best = -1;
    double best_iou = iou_threshold;
    for (std::size_t g = 0; g < ground_truth.size(); ++g) {
      if (claimed[g]) continue;
      if (require_class && ground_truth[g].cls != det.cls) continue;
      const double v = iou(ground_truth[g], det);
      if (v >= best_iou) {
        best_iou = v;
        best = static_cast<int>(g);
      }
    }
    if (best >= 0) {
      claimed[static_cast<std::size_t>(best)] = true;
      ++c.true_positives;
    } else {
      ++c.false_positives;
    }
  }
  c.false_negatives = static_cast<int>(ground_truth.size()) - c.true_positives;
  return c;
}

}  // namespace nsc::vision
