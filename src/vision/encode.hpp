// Spike encoding/decoding: the off-chip transduction layer (the role the
// Zynq "thalamus" FPGA plays on the physical boards, paper §VII-A).
//
// Rate coding: while a frame is presented for `ticks_per_frame` ticks, each
// pixel fires Bernoulli spikes with probability max_prob · value/255 per
// tick. Draws are counter-based (keyed by pixel, tick, stream), so encoding
// is deterministic and identical regardless of traversal order.
#pragma once

#include <cstdint>

#include "src/core/input_schedule.hpp"
#include "src/util/prng.hpp"
#include "src/vision/image.hpp"

namespace nsc::vision {

class RateEncoder {
 public:
  explicit RateEncoder(double max_prob = 0.5, std::uint64_t seed = 2718)
      : max_prob_(max_prob), prng_(seed) {}

  /// Whether pixel `pixel_id` with value `v` fires at tick `t` on stream
  /// `stream` (streams decorrelate multiple taps of the same pixel).
  [[nodiscard]] bool fires(std::uint32_t pixel_id, core::Tick t, std::uint8_t v,
                           std::uint32_t stream = 0) const {
    if (v == 0) return false;
    const auto p16 = static_cast<std::uint32_t>(max_prob_ * 65536.0 * v / 255.0);
    return prng_.bernoulli16(pixel_id, stream, static_cast<std::uint64_t>(t), 0x7A0, p16);
  }

  [[nodiscard]] double max_prob() const noexcept { return max_prob_; }

  /// Expected per-tick firing probability of a pixel value.
  [[nodiscard]] double prob(std::uint8_t v) const { return max_prob_ * v / 255.0; }

 private:
  double max_prob_;
  util::CounterPrng prng_;
};

/// Spike-count decoding over a window: rate estimate in [0, 1] relative to
/// the encoder's maximum rate.
[[nodiscard]] inline double decode_rate(std::uint32_t spike_count, core::Tick window_ticks,
                                        double max_prob) {
  if (window_ticks <= 0 || max_prob <= 0.0) return 0.0;
  return static_cast<double>(spike_count) / (static_cast<double>(window_ticks) * max_prob);
}

}  // namespace nsc::vision
