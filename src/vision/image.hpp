// Minimal grayscale image/bounding-box types for the vision applications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nsc::vision {

class Image {
 public:
  Image() = default;
  Image(int width, int height, std::uint8_t fill = 0)
      : w_(width), h_(height), px_(static_cast<std::size_t>(width) * height, fill) {}

  [[nodiscard]] int width() const noexcept { return w_; }
  [[nodiscard]] int height() const noexcept { return h_; }

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return px_[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)];
  }
  void set(int x, int y, std::uint8_t v) {
    px_[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)] = v;
  }

  /// Clamped read: out-of-bounds coordinates return 0 (black border).
  [[nodiscard]] std::uint8_t at_clamped(int x, int y) const {
    if (x < 0 || y < 0 || x >= w_ || y >= h_) return 0;
    return at(x, y);
  }

  void fill(std::uint8_t v) { std::fill(px_.begin(), px_.end(), v); }

  /// Fills the axis-aligned rectangle [x, x+w) × [y, y+h), clipped.
  void fill_rect(int x, int y, int w, int h, std::uint8_t v);

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept { return px_; }

 private:
  int w_ = 0;
  int h_ = 0;
  std::vector<std::uint8_t> px_;
};

/// The five NeoVision2 Tower object classes (paper §IV-B).
enum class ObjectClass : std::uint8_t { kPerson = 0, kCyclist, kCar, kBus, kTruck };
inline constexpr int kObjectClasses = 5;

[[nodiscard]] const char* class_name(ObjectClass c);

/// Axis-aligned labeled bounding box.
struct LabeledBox {
  int x = 0, y = 0, w = 0, h = 0;
  ObjectClass cls = ObjectClass::kPerson;
};

/// Intersection-over-union of two boxes.
[[nodiscard]] double iou(const LabeledBox& a, const LabeledBox& b);

}  // namespace nsc::vision
