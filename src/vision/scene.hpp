// Synthetic streaming-video scenes: the substitute for the paper's camera
// feeds and the DARPA NeoVision2 Tower dataset (see DESIGN.md §3).
//
// A scene is a static textured background plus moving objects drawn from the
// five NeoVision classes; each class has a distinctive size, aspect ratio
// and brightness so a spiking prototype classifier has real signal to work
// with. Frames and ground-truth boxes are deterministic per seed.
#pragma once

#include <vector>

#include "src/vision/image.hpp"

namespace nsc::vision {

/// Visual archetype of one object class.
struct ClassArchetype {
  int w, h;                 ///< Bounding box in pixels.
  std::uint8_t brightness;  ///< Body fill level.
  std::uint8_t accent;      ///< Secondary fill (stripe) level.
};

/// Archetype table (fixed; tuned for 64×64-ish frames).
[[nodiscard]] ClassArchetype archetype(ObjectClass c);

struct SceneConfig {
  int width = 64;
  int height = 64;
  int objects = 3;
  std::uint64_t seed = 1;
  std::uint8_t background = 32;   ///< Base background level.
  bool textured_background = true;
  /// Minimum center-to-center distance between objects at spawn (0 = off).
  /// The NeoVision Tower scenes have scattered objects; separation keeps a
  /// region-level binder from merging neighbors into one hypothesis.
  int min_separation = 0;
  /// Velocity multiplier (1.0 = the default 0.25–2 px/frame walk speeds;
  /// optical-flow stimuli use faster objects so edges cross the stride-2
  /// sample grid every frame).
  double speed_scale = 1.0;
};

class SyntheticScene {
 public:
  explicit SyntheticScene(const SceneConfig& cfg);

  /// Advances object positions by one frame (bouncing off edges).
  void step();

  /// Renders the current frame.
  [[nodiscard]] Image render() const;

  /// Ground-truth boxes of the current frame (clipped to the frame).
  [[nodiscard]] std::vector<LabeledBox> ground_truth() const;

  [[nodiscard]] const SceneConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int frame_index() const noexcept { return frame_; }

 private:
  struct Obj {
    ObjectClass cls;
    double x, y, vx, vy;
  };

  SceneConfig cfg_;
  Image background_;
  std::vector<Obj> objs_;
  int frame_ = 0;
};

}  // namespace nsc::vision
