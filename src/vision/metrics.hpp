// Detection metrics: precision/recall with greedy IoU matching, the measure
// the paper reports for the NeoVision multi-object detection system
// (0.85 precision / 0.80 recall on the Tower test set, §IV-B).
#pragma once

#include <vector>

#include "src/vision/image.hpp"

namespace nsc::vision {

struct DetectionCounts {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;

  [[nodiscard]] double precision() const {
    const int denom = true_positives + false_positives;
    return denom ? static_cast<double>(true_positives) / denom : 0.0;
  }
  [[nodiscard]] double recall() const {
    const int denom = true_positives + false_negatives;
    return denom ? static_cast<double>(true_positives) / denom : 0.0;
  }
  [[nodiscard]] double f1() const {
    const double p = precision(), r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }

  DetectionCounts& operator+=(const DetectionCounts& o) {
    true_positives += o.true_positives;
    false_positives += o.false_positives;
    false_negatives += o.false_negatives;
    return *this;
  }
};

/// Greedy matching: each detection claims the best unclaimed ground-truth
/// box with IoU ≥ `iou_threshold`; `require_class` additionally demands the
/// class labels agree for a true positive.
[[nodiscard]] DetectionCounts match_detections(const std::vector<LabeledBox>& ground_truth,
                                               const std::vector<LabeledBox>& detections,
                                               double iou_threshold = 0.3,
                                               bool require_class = true);

}  // namespace nsc::vision
