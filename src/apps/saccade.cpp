#include "src/apps/saccade.hpp"

#include <vector>

#include "src/apps/saliency.hpp"
#include "src/corelet/lib.hpp"
#include "src/corelet/place.hpp"
#include "src/vision/scene.hpp"

namespace nsc::apps {

SaccadeApp make_saccade_app(const AppConfig& cfg) {
  SaliencyCorelet sal = build_saliency_corelet(cfg.img_w, cfg.img_h);
  const int n = static_cast<int>(sal.energy_pins.size());
  const int kIorDelay = 25;

  corelet::Corelet net("saccade");
  const int sal_off = net.absorb(std::move(sal.net));

  // WTA-with-IoR core. Axons: [0,n) saliency-energy inputs (type 0),
  // [n,2n) winner feedback (type 1), [2n,3n) inhibition-of-return (type 2).
  // Neurons: [0,n) winners, [n,2n) output copies, [2n,3n) IoR copies.
  const int wta = net.add_core();
  {
    core::CoreSpec& spec = net.core(wta);
    for (int i = 0; i < n; ++i) {
      spec.axon_type[static_cast<std::size_t>(i)] = 0;
      spec.axon_type[static_cast<std::size_t>(n + i)] = 1;
      spec.axon_type[static_cast<std::size_t>(2 * n + i)] = 2;
    }
    for (int j = 0; j < n; ++j) {
      // Winner j: excited by region j's saliency energy, inhibited by all
      // other winners and by its own delayed IoR echo.
      spec.crossbar.set(j, j);
      for (int i = 0; i < n; ++i) {
        if (i != j) spec.crossbar.set(n + i, j);
      }
      spec.crossbar.set(2 * n + j, j);
      core::NeuronParams& w = spec.neuron[j];
      w.enabled = 1;
      // Saliency-energy inputs arrive well below 1 spike/tick, so the
      // excitation must integrate without decay; inhibition and IoR supply
      // all the competitive dynamics.
      w.weight[0] = 8;
      w.weight[1] = -10;
      w.weight[2] = -40;
      w.threshold = 12;
      w.leak = 0;
      w.neg_threshold = 24;
      w.negative_mode = core::NegativeMode::kSaturate;
      w.reset_mode = core::ResetMode::kAbsolute;
      net.connect({wta, static_cast<std::uint16_t>(j)},
                  {wta, static_cast<std::uint16_t>(n + j)}, 1);

      // Output copy (external saccade signal) and IoR copy (loop driver),
      // both fed by the winner's feedback row.
      spec.crossbar.set(n + j, n + j);
      spec.crossbar.set(n + j, 2 * n + j);
      for (int copy : {n + j, 2 * n + j}) {
        core::NeuronParams& cpy = spec.neuron[copy];
        cpy.enabled = 1;
        cpy.weight[1] = 1;
        cpy.threshold = 1;
        cpy.reset_mode = core::ResetMode::kAbsolute;
      }
      net.add_output({wta, static_cast<std::uint16_t>(n + j)});
    }
  }

  // Close the IoR loop through a delay line: winner spike → 25 ticks later
  // the same channel's IoR axon is struck.
  const int dl_off = net.absorb(corelet::make_delay_line(n, kIorDelay - 2));
  // (−2: one tick through the feedback axon, one through the IoR copy.)
  {
    // Wire: IoR copy → delay line input; delay line output → IoR axon.
    // Delay-line pins were exported before absorb, so rebase them.
    for (int j = 0; j < n; ++j) {
      net.connect({wta, static_cast<std::uint16_t>(2 * n + j)},
                  {dl_off, static_cast<std::uint16_t>(j)}, 1);
    }
  }

  // The delay line's terminal relay is its last core; find each channel's
  // terminal neuron via the line's exported outputs, which absorb() did not
  // import — reconstruct: make_delay_line chains relays; outputs live on
  // the final relay core with neuron index == channel. The final core is
  // the last absorbed core.
  const int dl_last = net.core_count() - 1;
  for (int j = 0; j < n; ++j) {
    net.connect({dl_last, static_cast<std::uint16_t>(j)},
                {wta, static_cast<std::uint16_t>(2 * n + j)}, 1);
  }

  // Wire saliency energy outputs into the WTA inputs.
  for (int j = 0; j < n; ++j) {
    const corelet::OutputPin e =
        corelet::Corelet::offset_pin(sal.energy_pins[static_cast<std::size_t>(j)], sal_off);
    net.connect(e, {wta, static_cast<std::uint16_t>(j)}, 1);
  }

  SaccadeApp app;
  app.regions = n;
  app.ior_delay_ticks = kIorDelay;
  app.net.name = "saccade";
  app.net.placed = corelet::place(net, corelet::fit_geometry(net));
  app.net.ticks = static_cast<core::Tick>(cfg.frames) * cfg.ticks_per_frame;

  // Stimulus identical to the saliency app.
  std::vector<int> patch_core;
  patch_core.reserve(sal.patch_core.size());
  for (int c : sal.patch_core) patch_core.push_back(c + sal_off);
  vision::SceneConfig sc;
  sc.width = cfg.img_w;
  sc.height = cfg.img_h;
  sc.objects = cfg.scene_objects;
  sc.seed = cfg.seed;
  vision::SyntheticScene scene(sc);
  std::vector<vision::Image> frames;
  frames.reserve(static_cast<std::size_t>(cfg.frames));
  for (int f = 0; f < cfg.frames; ++f) {
    frames.push_back(scene.render());
    scene.step();
  }
  const vision::RateEncoder enc(0.5, cfg.seed ^ 0x5ACC);
  encode_frames(sal.grid, frames, cfg.ticks_per_frame, enc, app.net.placed, patch_core,
                app.net.inputs);
  return app;
}

}  // namespace nsc::apps
