// Shared application harness: a built application network plus the machinery
// to run it on either kernel expression and collect the measurements the
// Fig. 7/8 benches need.
#pragma once

#include <string>

#include "src/core/input_schedule.hpp"
#include "src/core/network.hpp"
#include "src/corelet/place.hpp"

namespace nsc::apps {

/// Standard workload configuration for the five characterization apps.
struct AppConfig {
  int img_w = 64;
  int img_h = 64;
  int frames = 6;
  core::Tick ticks_per_frame = 33;  ///< ≈30 fps at the 1 kHz real-time tick.
  int scene_objects = 3;
  std::uint64_t seed = 1;
};

/// A deployable application: network + stimulus.
struct AppNetwork {
  std::string name;
  corelet::PlacedCorelet placed;
  core::InputSchedule inputs;
  core::Tick ticks = 0;

  [[nodiscard]] const core::Network& network() const { return placed.network; }
  [[nodiscard]] int used_cores() const { return placed.network.used_cores(); }
  [[nodiscard]] std::uint64_t neurons() const { return placed.network.enabled_neurons(); }
};

/// Result of executing an application on one backend.
struct AppRunResult {
  core::KernelStats stats;
  double wall_seconds = 0.0;  ///< Measured host wall-clock for the whole run.

  [[nodiscard]] double seconds_per_tick() const {
    return stats.ticks ? wall_seconds / static_cast<double>(stats.ticks) : 0.0;
  }
};

/// Runs on the TrueNorth expression (collects hop counts and per-tick
/// critical path for the energy/timing models). `sink` may be null.
[[nodiscard]] AppRunResult run_on_truenorth(const AppNetwork& app, core::SpikeSink* sink = nullptr);

/// Runs on the Compass expression with `threads` simulated processes,
/// measuring host wall-clock. `sink` may be null.
[[nodiscard]] AppRunResult run_on_compass(const AppNetwork& app, int threads,
                                          core::SpikeSink* sink = nullptr);

}  // namespace nsc::apps
