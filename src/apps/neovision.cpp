#include "src/apps/neovision.hpp"

#include <algorithm>
#include <cmath>

#include "src/corelet/corelet.hpp"
#include "src/corelet/place.hpp"
#include "src/vision/encode.hpp"
#include "src/vision/scene.hpp"

namespace nsc::apps {
namespace {

constexpr int kRegionPx = 16;    ///< Region side in pixels.
constexpr int kSampleStride = 2; ///< Pixel sampling stride (8×8 = 64 samples).
constexpr int kSamples = (kRegionPx / kSampleStride) * (kRegionPx / kSampleStride);

/// Expected per-tick spike drive of one region's 64 samples when an object
/// of class `c` sits fully inside it (plus background elsewhere).
double expected_drive(vision::ObjectClass c, double bg_mean, double max_prob) {
  const vision::ClassArchetype a = vision::archetype(c);
  const double obj_samples = std::min<double>(kSamples, a.w * a.h / 4.0);
  const double obj_level = 0.75 * a.brightness + 0.25 * a.accent;
  return obj_samples * obj_level / 255.0 * max_prob +
         (kSamples - obj_samples) * bg_mean / 255.0 * max_prob;
}

}  // namespace

NeovisionApp make_neovision_app(const AppConfig& cfg) {
  const double kMaxProb = 0.5;
  const double kBgMean = 40.0;  // background level + texture average

  NeovisionApp app;
  app.region_cols = cfg.img_w / kRegionPx;
  app.region_rows = cfg.img_h / kRegionPx;
  app.region_w = kRegionPx;
  app.region_h = kRegionPx;
  app.ticks_per_frame = cfg.ticks_per_frame;
  app.frames = cfg.frames;
  const int regions = app.region_cols * app.region_rows;

  // Class cut ladder: classes sorted by expected luminous mass; cuts are the
  // midpoints (the What network separates the archetypes on this axis).
  std::array<int, 5> order{0, 1, 2, 3, 4};
  std::array<double, 5> drive{};
  for (int c = 0; c < 5; ++c) {
    drive[static_cast<std::size_t>(c)] =
        expected_drive(static_cast<vision::ObjectClass>(c), kBgMean, kMaxProb);
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) {
              return drive[static_cast<std::size_t>(a)] < drive[static_cast<std::size_t>(b)];
            });
  const double bg_drive = kSamples * kBgMean / 255.0 * kMaxProb;
  std::array<int, 6> cuts{};  // cuts[b]: lower bound of band b; cuts[5] unused sentinel
  for (int b = 0; b < 5; ++b) {
    const double lo =
        b == 0 ? bg_drive : drive[static_cast<std::size_t>(order[static_cast<std::size_t>(b - 1)])];
    const double hi = drive[static_cast<std::size_t>(order[static_cast<std::size_t>(b)])];
    cuts[static_cast<std::size_t>(b)] = std::max(1, static_cast<int>(std::lround((lo + hi) / 2.0)));
  }
  cuts[5] = 0;

  corelet::Corelet net("neovision");
  app.motion_index.resize(static_cast<std::size_t>(regions));
  app.class_index.resize(static_cast<std::size_t>(regions));
  app.ladder_index.resize(static_cast<std::size_t>(regions));
  app.bg_drive = bg_drive;
  for (int b = 0; b < 5; ++b) {
    app.band_cut[static_cast<std::size_t>(b)] = cuts[static_cast<std::size_t>(b)];
  }
  for (int c = 0; c < 5; ++c) {
    app.class_drive[static_cast<std::size_t>(c)] = drive[static_cast<std::size_t>(c)];
  }
  std::vector<int> where_core(static_cast<std::size_t>(regions));
  std::vector<int> what_core(static_cast<std::size_t>(regions));

  for (int r = 0; r < regions; ++r) {
    // ---- Where: transient core.
    // Axons: [0,64) current samples (type 0), [64,128) frame-lagged samples
    // (type 1), [128,256) ON/OFF feedback (type 2).
    const int wc = net.add_core();
    where_core[static_cast<std::size_t>(r)] = wc;
    core::CoreSpec& w = net.core(wc);
    for (int i = 0; i < kSamples; ++i) {
      w.axon_type[static_cast<std::size_t>(i)] = 0;
      w.axon_type[static_cast<std::size_t>(kSamples + i)] = 1;
      w.axon_type[static_cast<std::size_t>(128 + i)] = 2;
      w.axon_type[static_cast<std::size_t>(128 + kSamples + i)] = 2;
    }
    for (int i = 0; i < kSamples; ++i) {
      // ON cell: +now −old; OFF cell: −now +old (per-neuron type weights).
      const int on = i, off = kSamples + i;
      w.crossbar.set(i, on);
      w.crossbar.set(kSamples + i, on);
      w.crossbar.set(i, off);
      w.crossbar.set(kSamples + i, off);
      core::NeuronParams& pon = w.neuron[on];
      pon.enabled = 1;
      // Inter-frame rate differences are fractions of a spike/tick; ±8
      // amplifies them past the −1/tick decay.
      pon.weight[0] = 8;
      pon.weight[1] = -8;
      pon.threshold = 4;
      pon.leak = -1;
      pon.negative_mode = core::NegativeMode::kSaturate;
      // Absolute reset: a transient must not leave a backlog that keeps the
      // detector firing into later (static) frames.
      pon.reset_mode = core::ResetMode::kAbsolute;
      core::NeuronParams& poff = w.neuron[off];
      poff = pon;
      poff.weight[0] = -8;
      poff.weight[1] = 8;
      // Feedback into the pooling field.
      net.connect({wc, static_cast<std::uint16_t>(on)},
                  {wc, static_cast<std::uint16_t>(128 + on)}, 1);
      net.connect({wc, static_cast<std::uint16_t>(off)},
                  {wc, static_cast<std::uint16_t>(128 + off)}, 1);
    }
    // Pooling neuron: regional motion energy.
    const int pool = 2 * kSamples;
    for (int a = 128; a < 128 + 2 * kSamples; ++a) w.crossbar.set(a, pool);
    core::NeuronParams& pp = w.neuron[pool];
    pp.enabled = 1;
    pp.weight[2] = 2;
    pp.threshold = 4;
    pp.leak = -1;
    pp.negative_mode = core::NegativeMode::kSaturate;
    pp.reset_mode = core::ResetMode::kAbsolute;
    const int motion_pin = net.add_output({wc, static_cast<std::uint16_t>(pool)});
    (void)motion_pin;

    // ---- What: classifier core.
    // Axons: [0,64) current samples (type 0), [64,70) ladder feedback
    // (type 1 for the own-band gate, type 2 for the next-band suppressor —
    // both ladder echoes share type 1; suppression sign lives per neuron).
    const int qc = net.add_core();
    what_core[static_cast<std::size_t>(r)] = qc;
    core::CoreSpec& q = net.core(qc);
    for (int i = 0; i < kSamples; ++i) q.axon_type[static_cast<std::size_t>(i)] = 0;
    for (int c = 0; c < 5; ++c) q.axon_type[static_cast<std::size_t>(kSamples + c)] = 1;

    // Ladder neurons hi_b: silent below cut b, rate ∝ (drive − cut) above.
    for (int b = 0; b < 5; ++b) {
      const int hi = 5 + b;  // neurons [5,10) = ladder; [0,5) = band/class
      for (int i = 0; i < kSamples; ++i) q.crossbar.set(i, hi);
      core::NeuronParams& ph = q.neuron[hi];
      ph.enabled = 1;
      ph.weight[0] = 1;
      ph.leak = static_cast<std::int16_t>(-cuts[static_cast<std::size_t>(b)]);
      ph.threshold = 2;
      ph.negative_mode = core::NegativeMode::kSaturate;
      ph.neg_threshold = 0;
      ph.reset_mode = core::ResetMode::kLinear;
      net.connect({qc, static_cast<std::uint16_t>(hi)},
                  {qc, static_cast<std::uint16_t>(kSamples + b)}, 1);
    }
    // Band neurons: excited by own ladder echo, suppressed by the next one.
    for (int b = 0; b < 5; ++b) {
      const int band = b;
      q.crossbar.set(kSamples + b, band);
      if (b < 4) q.crossbar.set(kSamples + b + 1, band);
      core::NeuronParams& pb = q.neuron[band];
      pb.enabled = 1;
      pb.weight[1] = 2;  // ... own echo excites
      pb.threshold = 4;
      pb.leak = -1;
      pb.negative_mode = core::NegativeMode::kSaturate;
      pb.reset_mode = core::ResetMode::kLinear;
      const int pin = net.add_output({qc, static_cast<std::uint16_t>(band)});
      (void)pin;
      // Band b detects the class with the b-th smallest luminous mass.
      app.class_index[static_cast<std::size_t>(r)][static_cast<std::size_t>(
          order[static_cast<std::size_t>(b)])] = 0;  // filled after placement
    }
  }

  // Ladder-echo typing: band neuron b needs +2 from its own ladder echo and
  // −6 from the next band's echo, but axon types are per-axon. Alternate:
  // echo b rides type 1 when b is even, type 2 when odd; adjacent parities
  // differ, so each band's (own, suppressor) pair maps onto the two type
  // slots with per-neuron signs.
  for (int r = 0; r < regions; ++r) {
    core::CoreSpec& q = net.core(what_core[static_cast<std::size_t>(r)]);
    for (int b = 0; b < 5; ++b) {
      q.axon_type[static_cast<std::size_t>(kSamples + b)] =
          static_cast<std::uint8_t>(b % 2 == 0 ? 1 : 2);
    }
    for (int b = 0; b < 5; ++b) {
      core::NeuronParams& pb = q.neuron[b];
      const bool own_even = b % 2 == 0;
      pb.weight[1] = own_even ? 4 : -12;
      pb.weight[2] = own_even ? -12 : 4;
    }
  }

  // ---- Placement and output index resolution.
  app.net.name = "neovision";
  app.net.placed = corelet::place(net, corelet::fit_geometry(net));
  app.net.ticks = static_cast<core::Tick>(cfg.frames) * cfg.ticks_per_frame;
  for (int r = 0; r < regions; ++r) {
    const core::CoreId wc =
        app.net.placed.core_map[static_cast<std::size_t>(where_core[static_cast<std::size_t>(r)])];
    const core::CoreId qc =
        app.net.placed.core_map[static_cast<std::size_t>(what_core[static_cast<std::size_t>(r)])];
    app.motion_index[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(wc) * core::kCoreSize + static_cast<std::size_t>(2 * kSamples);
    for (int b = 0; b < 5; ++b) {
      app.class_index[static_cast<std::size_t>(r)][static_cast<std::size_t>(
          order[static_cast<std::size_t>(b)])] =
          static_cast<std::size_t>(qc) * core::kCoreSize + static_cast<std::size_t>(b);
      app.ladder_index[static_cast<std::size_t>(r)][static_cast<std::size_t>(b)] =
          static_cast<std::size_t>(qc) * core::kCoreSize + static_cast<std::size_t>(5 + b);
    }
  }

  // ---- Stimulus: frames + frame-lagged replica + ground truth.
  vision::SceneConfig sc;
  sc.width = cfg.img_w;
  sc.height = cfg.img_h;
  sc.objects = cfg.scene_objects;
  sc.seed = cfg.seed;
  sc.min_separation = 2 * kRegionPx;  // binder resolution (see scene.hpp)
  vision::SyntheticScene scene(sc);
  std::vector<vision::Image> frames;
  frames.reserve(static_cast<std::size_t>(cfg.frames));
  for (int f = 0; f < cfg.frames; ++f) {
    frames.push_back(scene.render());
    app.ground_truth.push_back(scene.ground_truth());
    scene.step();
  }

  const vision::RateEncoder enc(kMaxProb, cfg.seed ^ 0x0E0);
  for (int f = 0; f < cfg.frames; ++f) {
    const core::Tick t0 = static_cast<core::Tick>(f) * cfg.ticks_per_frame;
    const vision::Image& now = frames[static_cast<std::size_t>(f)];
    const vision::Image& old = frames[static_cast<std::size_t>(std::max(0, f - 1))];
    for (int r = 0; r < regions; ++r) {
      const int rx = (r % app.region_cols) * kRegionPx;
      const int ry = (r / app.region_cols) * kRegionPx;
      const core::CoreId wc = app.net.placed
              .core_map[static_cast<std::size_t>(where_core[static_cast<std::size_t>(r)])];
      const core::CoreId qc = app.net.placed
              .core_map[static_cast<std::size_t>(what_core[static_cast<std::size_t>(r)])];
      for (int sy = 0; sy < kRegionPx / kSampleStride; ++sy) {
        for (int sx = 0; sx < kRegionPx / kSampleStride; ++sx) {
          const int x = rx + sx * kSampleStride, y = ry + sy * kSampleStride;
          const auto pix = static_cast<std::uint32_t>(y * cfg.img_w + x);
          const int s = sy * (kRegionPx / kSampleStride) + sx;
          for (core::Tick dt = 0; dt < cfg.ticks_per_frame; ++dt) {
            const core::Tick t = t0 + dt;
            if (enc.fires(pix, t, now.at(x, y))) {
              app.net.inputs.add(t, wc, static_cast<std::uint16_t>(s));
              app.net.inputs.add(t, qc, static_cast<std::uint16_t>(s));
            }
            // Frame-lagged replica with common random numbers: the old tap
            // re-encodes the previous frame's value with the *same* draw as
            // the now tap (one shared encoder LFSR phase), so unchanged
            // pixels co-fire and cancel exactly — differential events occur
            // with probability |Δp|, not as rectified Bernoulli noise.
            // Frame 0's "previous frame" is itself: the taps cancel exactly
            // and the Where network starts quiet instead of bursting.
            if (enc.fires(pix, t, old.at(x, y))) {
              app.net.inputs.add(t, wc, static_cast<std::uint16_t>(kSamples + s));
            }
          }
        }
      }
    }
  }
  app.net.inputs.finalize();
  return app;
}

namespace {

/// Expected total ladder evidence per tick for a region whose sample drive
/// is `d`: each ladder neuron fires at min(1, (d − cut)/2), floored at 0.
double ladder_evidence_per_tick(const NeovisionApp& app, double d) {
  double e = 0.0;
  for (int b = 0; b < 5; ++b) {
    e += std::clamp((d - app.band_cut[static_cast<std::size_t>(b)]) / 2.0, 0.0, 1.0);
  }
  return e;
}

}  // namespace

NeovisionResult decode_detections(const NeovisionApp& app, const core::WindowedCountSink& sink,
                                  std::uint32_t motion_threshold) {
  NeovisionResult out;
  const int regions = app.region_cols * app.region_rows;
  const double window = static_cast<double>(app.ticks_per_frame);

  // Object hypotheses before temporal binding: one per motion component.
  struct Hypothesis {
    std::size_t frame;
    double cx, cy, evidence;
    double n_eff;  ///< Participation ratio of per-region evidence.
    int track = -1;
  };
  std::vector<Hypothesis> hyps;

  for (std::size_t w = 0; w < sink.windows().size(); ++w) {
    const auto& counts = sink.windows()[w];
    std::vector<std::uint32_t> motion(static_cast<std::size_t>(regions), 0);
    for (int r = 0; r < regions; ++r) {
      motion[static_cast<std::size_t>(r)] = counts[app.motion_index[static_cast<std::size_t>(r)]];
    }

    // What/Where binding: connected components of moving regions are object
    // hypotheses; ladder evidence pooled over a component recovers the
    // object's luminous mass even when it straddles region boundaries.
    std::vector<int> comp(static_cast<std::size_t>(regions), -1);
    int ncomp = 0;
    for (int seed = 0; seed < regions; ++seed) {
      if (motion[static_cast<std::size_t>(seed)] < motion_threshold ||
          comp[static_cast<std::size_t>(seed)] != -1) {
        continue;
      }
      // Flood fill (4-connectivity).
      std::vector<int> stack{seed};
      comp[static_cast<std::size_t>(seed)] = ncomp;
      while (!stack.empty()) {
        const int r = stack.back();
        stack.pop_back();
        const int rx = r % app.region_cols, ry = r / app.region_cols;
        constexpr int kD[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
        for (const auto& d : kD) {
          const int nx = rx + d[0], ny = ry + d[1];
          if (nx < 0 || ny < 0 || nx >= app.region_cols || ny >= app.region_rows) continue;
          const int nr = ny * app.region_cols + nx;
          if (motion[static_cast<std::size_t>(nr)] < motion_threshold ||
              comp[static_cast<std::size_t>(nr)] != -1) {
            continue;
          }
          comp[static_cast<std::size_t>(nr)] = ncomp;
          stack.push_back(nr);
        }
      }
      ++ncomp;
    }

    for (int k = 0; k < ncomp; ++k) {
      double evidence = 0.0, ev_sq = 0.0, cx = 0.0, cy = 0.0, mass = 0.0;
      for (int r = 0; r < regions; ++r) {
        if (comp[static_cast<std::size_t>(r)] != k) continue;
        double region_e = 0.0;
        for (int b = 0; b < 5; ++b) {
          region_e +=
              counts[app.ladder_index[static_cast<std::size_t>(r)][static_cast<std::size_t>(b)]];
        }
        evidence += region_e;
        ev_sq += region_e * region_e;
        // Sub-region centroid: the ON/OFF transient cells localize motion
        // at the stride-2 sampling resolution (region centers alone are
        // too coarse for the small classes).
        const std::size_t wc_base =
            app.motion_index[static_cast<std::size_t>(r)] - 2 * kSamples;  // neuron 0 of core
        const int rx = (r % app.region_cols) * app.region_w;
        const int ry = (r / app.region_cols) * app.region_h;
        const int row_samples = kRegionPx / kSampleStride;
        for (int s = 0; s < kSamples; ++s) {
          const double m = static_cast<double>(counts[wc_base + static_cast<std::size_t>(s)]) +
                           static_cast<double>(
                               counts[wc_base + kSamples + static_cast<std::size_t>(s)]);
          if (m == 0.0) continue;
          cx += m * (rx + (s % row_samples) * kSampleStride + 1);
          cy += m * (ry + (s / row_samples) * kSampleStride + 1);
          mass += m;
        }
      }
      // Fragments (an object edge grazing one region) carry little motion
      // mass; requiring a real transient suppresses split hypotheses.
      if (mass < 2.5 * motion_threshold) continue;
      const double n_eff = ev_sq > 0.0 ? evidence * evidence / ev_sq : 1.0;
      hyps.push_back({w, cx / mass, cy / mass, evidence, std::max(1.0, n_eff), -1});
    }
  }

  // Temporal binding: chain hypotheses into tracks (nearest predecessor
  // within one region diagonal), then classify each track once on its mean
  // evidence. Per-frame evidence wobbles with the stride-2 sampling parity
  // of small objects; averaging over the track's frames removes the wobble.
  int ntracks = 0;
  for (std::size_t i = 0; i < hyps.size(); ++i) {
    double best_d2 = 24.0 * 24.0;
    int best = -1;
    for (std::size_t j = 0; j < i; ++j) {
      if (hyps[j].frame + 1 != hyps[i].frame) continue;
      const double dx = hyps[i].cx - hyps[j].cx, dy = hyps[i].cy - hyps[j].cy;
      if (dx * dx + dy * dy < best_d2) {
        best_d2 = dx * dx + dy * dy;
        best = static_cast<int>(j);
      }
    }
    hyps[i].track = best >= 0 ? hyps[static_cast<std::size_t>(best)].track : ntracks++;
  }
  std::vector<double> track_evidence(static_cast<std::size_t>(ntracks), 0.0);
  std::vector<double> track_neff(static_cast<std::size_t>(ntracks), 0.0);
  std::vector<int> track_frames(static_cast<std::size_t>(ntracks), 0);
  for (const Hypothesis& h : hyps) {
    track_evidence[static_cast<std::size_t>(h.track)] += h.evidence;
    track_neff[static_cast<std::size_t>(h.track)] += h.n_eff;
    ++track_frames[static_cast<std::size_t>(h.track)];
  }
  std::vector<vision::ObjectClass> track_class(static_cast<std::size_t>(ntracks));
  for (int k = 0; k < ntracks; ++k) {
    const int nf = std::max(1, track_frames[static_cast<std::size_t>(k)]);
    const double mean_e = track_evidence[static_cast<std::size_t>(k)] / nf;
    const double n_eff = track_neff[static_cast<std::size_t>(k)] / nf;
    int best_cls = 0;
    double best_err = 1e300;
    for (int c = 0; c < 5; ++c) {
      // An object split over n_eff regions re-pays the background baseline
      // in each: expected evidence is n_eff regions at 1/n_eff of the
      // object's net drive, each riding on the background.
      const double net = app.class_drive[static_cast<std::size_t>(c)] - app.bg_drive;
      const double expect =
          window * n_eff * ladder_evidence_per_tick(app, app.bg_drive + net / n_eff);
      const double err = std::abs(mean_e - expect);
      if (err < best_err) {
        best_err = err;
        best_cls = c;
      }
    }
    track_class[static_cast<std::size_t>(k)] = static_cast<vision::ObjectClass>(best_cls);
  }

  // Emit labeled boxes per frame and score frames 1..N (frame 0 has no
  // lagged input, so the Where network is blind there by construction).
  out.detections.resize(sink.windows().size());
  for (const Hypothesis& h : hyps) {
    const vision::ObjectClass cls = track_class[static_cast<std::size_t>(h.track)];
    const vision::ClassArchetype a = vision::archetype(cls);
    vision::LabeledBox box;
    box.w = a.w;
    box.h = a.h;
    box.x = static_cast<int>(h.cx) - a.w / 2;
    box.y = static_cast<int>(h.cy) - a.h / 2;
    box.cls = cls;
    out.detections[h.frame].push_back(box);
  }
  for (std::size_t w = 1; w < out.detections.size() && w < app.ground_truth.size(); ++w) {
    // 0.15 IoU: localization is limited by the 16-pixel region tiling of
    // the binder, not by the detector (documented in EXPERIMENTS.md).
    out.counts += vision::match_detections(app.ground_truth[w], out.detections[w], 0.15, true);
  }
  return out;
}

}  // namespace nsc::apps
