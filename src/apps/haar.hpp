// Haar-like feature extraction corelet (paper §IV-B: ten Haar-like features
// over streaming video, the face-detection-style front end of Viola–Jones).
//
// Each patch core evaluates the ten kernels at a stride-4 grid of positions.
// Kernels are ± rectangular patterns; the plus/minus axon-pair idiom (see
// patch.hpp) realizes the sign pattern on the binary crossbar, and output
// neurons rate-code the rectified feature response.
#pragma once

#include "src/apps/app_common.hpp"

namespace nsc::apps {

struct HaarApp {
  AppNetwork net;
  int features = 10;           ///< Kernels evaluated.
  int neurons_per_patch = 0;   ///< Feature neurons per patch core.
  int patches = 0;
};

[[nodiscard]] HaarApp make_haar_app(const AppConfig& cfg);

}  // namespace nsc::apps
