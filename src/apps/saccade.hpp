// Saccade corelet (paper §IV-B): selects regions of interest by applying
// winner-take-all to the saliency map, with temporal inhibition-of-return so
// attention explores the scene instead of locking onto one region.
//
// Composition showcase: absorbs the saliency corelet, adds a WTA stage with
// an inhibition-of-return loop closed through a delay-line corelet.
#pragma once

#include "src/apps/app_common.hpp"

namespace nsc::apps {

struct SaccadeApp {
  AppNetwork net;
  int regions = 0;          ///< WTA channels (one per image patch).
  int ior_delay_ticks = 0;  ///< Inhibition-of-return loop latency.
};

[[nodiscard]] SaccadeApp make_saccade_app(const AppConfig& cfg);

}  // namespace nsc::apps
