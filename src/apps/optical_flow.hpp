// Optical flow corelet (paper §IV-A lists optical flow among the corelet
// library's applications).
//
// Reichardt-style direction selectivity on frame-lagged taps: a rightward
// detector at sample x fires when the current frame is bright at x AND the
// previous frame was bright at x−Δ (the pattern moved right by Δ between
// frames), with the stationary component suppressed by an inhibitory tap at
// the detector's own position in the previous frame. Four direction
// channels (R, L, U, D) per region feed an opponency stage (R−L, U−D) whose
// outputs the decoder reads as a per-region flow field.
#pragma once

#include <array>
#include <vector>

#include "src/apps/app_common.hpp"
#include "src/core/spike_sink.hpp"
#include "src/vision/image.hpp"

namespace nsc::apps {

enum class FlowDir : std::uint8_t { kRight = 0, kLeft, kDown, kUp };
[[nodiscard]] const char* flow_dir_name(FlowDir d);

struct OpticalFlowApp {
  AppNetwork net;
  int region_cols = 0, region_rows = 0;
  int region_px = 0;
  core::Tick ticks_per_frame = 0;
  int frames = 0;
  /// Flat sink index of the opponency neuron for (region, direction).
  std::vector<std::array<std::size_t, 4>> opponency_index;
  /// Ground truth dominant direction per frame (from object velocities),
  /// or -1 when no object moves in that frame.
  std::vector<int> true_direction;
};

/// Builds the flow network only (no stimulus); callers encode frames via
/// encode_flow_frames. `true_direction` stays empty.
[[nodiscard]] OpticalFlowApp make_optical_flow_net(const AppConfig& cfg);

/// Rate-encodes `frames` (with the common-random-number frame-lagged taps)
/// into `app.net.inputs` and finalizes the schedule. Call once.
void encode_flow_frames(OpticalFlowApp& app, const std::vector<vision::Image>& frames,
                        std::uint64_t encoder_seed);

/// Convenience: network + synthetic-scene stimulus + ground-truth labels.
[[nodiscard]] OpticalFlowApp make_optical_flow_app(const AppConfig& cfg);

/// Decoded flow: per frame, the dominant direction over all regions
/// (argmax of summed opponency spikes; -1 if no motion energy).
struct FlowResult {
  std::vector<int> dominant_direction;  ///< Per frame.
  int correct_frames = 0;               ///< Frames matching ground truth.
  int scored_frames = 0;

  [[nodiscard]] double accuracy() const {
    return scored_frames ? static_cast<double>(correct_frames) / scored_frames : 0.0;
  }
};

[[nodiscard]] FlowResult decode_flow(const OpticalFlowApp& app,
                                     const core::WindowedCountSink& sink);

}  // namespace nsc::apps
