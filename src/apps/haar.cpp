#include "src/apps/haar.hpp"

#include <array>
#include <vector>

#include "src/apps/patch.hpp"
#include "src/corelet/corelet.hpp"
#include "src/vision/scene.hpp"

namespace nsc::apps {
namespace {

/// One Haar-like kernel: a w×h grid of {-1, 0, +1}.
struct HaarKernel {
  int w, h;
  std::array<std::int8_t, 64> sign;  // row-major, w*h entries used
};

std::int8_t& cell(HaarKernel& k, int x, int y) {
  return k.sign[static_cast<std::size_t>(y * k.w + x)];
}

/// The ten kernels: edges, lines, diagonals and center-surround at two
/// scales — the classic Viola–Jones feature set.
std::vector<HaarKernel> haar_kernels() {
  std::vector<HaarKernel> ks;
  auto filled = [](int w, int h) {
    HaarKernel k{w, h, {}};
    return k;
  };
  {  // 1: horizontal edge 8x4 (top +, bottom -)
    HaarKernel k = filled(8, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 8; ++x) cell(k, x, y) = y < 2 ? 1 : -1;
    ks.push_back(k);
  }
  {  // 2: vertical edge 8x4 (left +, right -)
    HaarKernel k = filled(8, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 8; ++x) cell(k, x, y) = x < 4 ? 1 : -1;
    ks.push_back(k);
  }
  {  // 3: horizontal line 8x4 (middle rows +, outer -)
    HaarKernel k = filled(8, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 8; ++x) cell(k, x, y) = (y == 1 || y == 2) ? 1 : -1;
    ks.push_back(k);
  }
  {  // 4: vertical line 8x4 (middle columns +, outer -)
    HaarKernel k = filled(8, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 8; ++x) cell(k, x, y) = (x >= 3 && x <= 4) ? 1 : -1;
    ks.push_back(k);
  }
  {  // 5: diagonal 8x4 (quadrant checkerboard)
    HaarKernel k = filled(8, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 8; ++x) cell(k, x, y) = ((x < 4) == (y < 2)) ? 1 : -1;
    ks.push_back(k);
  }
  {  // 6: center-surround 8x4
    HaarKernel k = filled(8, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 8; ++x)
        cell(k, x, y) = (x >= 2 && x < 6 && y >= 1 && y < 3) ? 1 : -1;
    ks.push_back(k);
  }
  {  // 7: horizontal edge 4x4
    HaarKernel k = filled(4, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) cell(k, x, y) = y < 2 ? 1 : -1;
    ks.push_back(k);
  }
  {  // 8: vertical edge 4x4
    HaarKernel k = filled(4, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) cell(k, x, y) = x < 2 ? 1 : -1;
    ks.push_back(k);
  }
  {  // 9: diagonal 4x4
    HaarKernel k = filled(4, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) cell(k, x, y) = ((x < 2) == (y < 2)) ? 1 : -1;
    ks.push_back(k);
  }
  {  // 10: center-surround 4x4
    HaarKernel k = filled(4, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x)
        cell(k, x, y) = (x >= 1 && x < 3 && y >= 1 && y < 3) ? 1 : -1;
    ks.push_back(k);
  }
  return ks;
}

}  // namespace

HaarApp make_haar_app(const AppConfig& cfg) {
  const PatchGrid grid{cfg.img_w, cfg.img_h, 16, 8};
  const auto kernels = haar_kernels();

  corelet::Corelet net("haar");
  std::vector<int> patch_core(static_cast<std::size_t>(grid.count()));

  int neurons_per_patch = 0;
  for (int k = 0; k < grid.count(); ++k) {
    const PatchGrid::Patch pa = grid.patch(k);
    const int ci = net.add_core();
    patch_core[static_cast<std::size_t>(k)] = ci;
    core::CoreSpec& spec = net.core(ci);
    configure_pair_axons(spec, pa.pixels());

    int j = 0;
    constexpr int kStride = 4;
    for (const HaarKernel& ker : kernels) {
      for (int oy = 0; oy + ker.h <= pa.h; oy += kStride) {
        for (int ox = 0; ox + ker.w <= pa.w; ox += kStride) {
          if (j >= core::kCoreSize) break;
          int plus = 0;
          for (int dy = 0; dy < ker.h; ++dy) {
            for (int dx = 0; dx < ker.w; ++dx) {
              const std::int8_t s = ker.sign[static_cast<std::size_t>(dy * ker.w + dx)];
              if (s == 0) continue;
              const int lp = (oy + dy) * pa.w + (ox + dx);
              spec.crossbar.set(s > 0 ? PatchGrid::plus_axon(lp) : PatchGrid::minus_axon(lp), j);
              plus += s > 0 ? 1 : 0;
            }
          }
          core::NeuronParams& p = spec.neuron[j];
          p.enabled = 1;
          p.weight[0] = 1;
          p.weight[1] = -1;
          // Threshold scales with the positive area so responses rate-code
          // the normalized feature value; mild decay forgets stale evidence.
          p.threshold = std::max(2, plus / 2);
          p.leak = -1;
          p.neg_threshold = 0;
          p.negative_mode = core::NegativeMode::kSaturate;
          p.reset_mode = core::ResetMode::kLinear;
          net.add_output({ci, static_cast<std::uint16_t>(j)});
          ++j;
        }
      }
    }
    if (k == 0) neurons_per_patch = j;
  }

  HaarApp app;
  app.patches = grid.count();
  app.neurons_per_patch = neurons_per_patch;
  app.net.name = "haar";
  app.net.placed = corelet::place(net, corelet::fit_geometry(net));
  app.net.ticks = static_cast<core::Tick>(cfg.frames) * cfg.ticks_per_frame;

  // Stimulus: the synthetic scene, rate-encoded onto the patch axon pairs.
  vision::SceneConfig sc;
  sc.width = cfg.img_w;
  sc.height = cfg.img_h;
  sc.objects = cfg.scene_objects;
  sc.seed = cfg.seed;
  vision::SyntheticScene scene(sc);
  std::vector<vision::Image> frames;
  frames.reserve(static_cast<std::size_t>(cfg.frames));
  for (int f = 0; f < cfg.frames; ++f) {
    frames.push_back(scene.render());
    scene.step();
  }
  const vision::RateEncoder enc(0.5, cfg.seed ^ 0xE5C0DE);
  encode_frames(grid, frames, cfg.ticks_per_frame, enc, app.net.placed, patch_core,
                app.net.inputs);
  return app;
}

}  // namespace nsc::apps
