// Saliency-map corelet (paper §IV-B): center-surround (difference-of-
// Gaussians style) contrast at two scales, combined into a per-location
// saliency map plus a per-region saliency energy signal.
//
// Exposed as a reusable builder because the saccade system (saccade.hpp)
// composes it with a winner-take-all stage — the corelet-composition
// workflow of the paper's CPE.
#pragma once

#include <vector>

#include "src/apps/app_common.hpp"
#include "src/apps/patch.hpp"
#include "src/corelet/corelet.hpp"

namespace nsc::apps {

struct SaliencyCorelet {
  corelet::Corelet net{"saliency"};
  PatchGrid grid;
  std::vector<int> patch_core;              ///< Layer-1 core per patch (encoding target).
  std::vector<corelet::OutputPin> map_pins; ///< Saliency map, patch-major then center.
  std::vector<corelet::OutputPin> energy_pins;  ///< One per patch (region energy).
  int centers_per_patch = 0;
};

/// Builds the two-layer saliency network for a full image.
[[nodiscard]] SaliencyCorelet build_saliency_corelet(int img_w, int img_h);

struct SaliencyApp {
  AppNetwork net;
  int centers_per_patch = 0;
  int patches = 0;
};

[[nodiscard]] SaliencyApp make_saliency_app(const AppConfig& cfg);

}  // namespace nsc::apps
