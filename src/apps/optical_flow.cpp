#include "src/apps/optical_flow.hpp"

#include <algorithm>
#include <cmath>

#include "src/corelet/corelet.hpp"
#include "src/corelet/place.hpp"
#include "src/vision/encode.hpp"
#include "src/vision/scene.hpp"

namespace nsc::apps {
namespace {

constexpr int kRegionPx = 16;
constexpr int kStride = 2;
constexpr int kSide = kRegionPx / kStride;        // 8 samples per axis
constexpr int kSamples = kSide * kSide;           // 64 samples per region
constexpr int kShift = 1;                         // detector offset, in samples

/// Sample-offset of each direction's excitatory lagged tap: motion to the
/// right means the pattern was at x−Δ one frame ago.
constexpr int kTapDx[4] = {-kShift, kShift, 0, 0};
constexpr int kTapDy[4] = {0, 0, -kShift, kShift};

}  // namespace

const char* flow_dir_name(FlowDir d) {
  switch (d) {
    case FlowDir::kRight: return "right";
    case FlowDir::kLeft: return "left";
    case FlowDir::kDown: return "down";
    case FlowDir::kUp: return "up";
  }
  return "?";
}

OpticalFlowApp make_optical_flow_net(const AppConfig& cfg) {
  OpticalFlowApp app;
  app.region_cols = cfg.img_w / kRegionPx;
  app.region_rows = cfg.img_h / kRegionPx;
  app.region_px = kRegionPx;
  app.ticks_per_frame = cfg.ticks_per_frame;
  app.frames = cfg.frames;
  const int regions = app.region_cols * app.region_rows;
  app.opponency_index.resize(static_cast<std::size_t>(regions));

  corelet::Corelet net("optical_flow");
  std::vector<int> detect_core(static_cast<std::size_t>(regions));
  std::vector<int> pool_core(static_cast<std::size_t>(regions));

  for (int r = 0; r < regions; ++r) {
    // Detector core: axons [0,64) now taps (type 0), [64,128) lagged taps
    // (type 1). Detector neuron for direction d at interior sample (sx,sy):
    //   +4·now(s)  +4·old(s + tap_d)  −4·old(s)      θ=6, leak −1.
    // The lagged taps ride type 1 with both signs needed — impossible with
    // one type — so the inhibitory self-lag tap rides type 2 via a second
    // copy of the lagged taps on axons [128,192).
    const int dc = net.add_core();
    detect_core[static_cast<std::size_t>(r)] = dc;
    core::CoreSpec& spec = net.core(dc);
    for (int s = 0; s < kSamples; ++s) {
      spec.axon_type[static_cast<std::size_t>(s)] = 0;
      spec.axon_type[static_cast<std::size_t>(kSamples + s)] = 1;
      spec.axon_type[static_cast<std::size_t>(2 * kSamples + s)] = 2;
    }

    const int pc = net.add_core();
    pool_core[static_cast<std::size_t>(r)] = pc;
    core::CoreSpec& pool = net.core(pc);

    int j = 0;
    int pool_axon = 0;
    for (int d = 0; d < 4; ++d) {
      for (int sy = kShift; sy < kSide - kShift; ++sy) {
        for (int sx = kShift; sx < kSide - kShift; ++sx) {
          const int s = sy * kSide + sx;
          const int lag = (sy + kTapDy[d]) * kSide + (sx + kTapDx[d]);
          spec.crossbar.set(s, j);                    // +now(s)
          spec.crossbar.set(kSamples + lag, j);       // +old(s + tap)
          spec.crossbar.set(2 * kSamples + s, j);     // −old(s)
          core::NeuronParams& n = spec.neuron[j];
          n.enabled = 1;
          n.weight[0] = 4;
          n.weight[1] = 4;
          n.weight[2] = -4;
          n.threshold = 6;
          n.leak = -1;
          n.neg_threshold = 0;
          n.negative_mode = core::NegativeMode::kSaturate;
          n.reset_mode = core::ResetMode::kAbsolute;
          // Pool core: axon typed by direction.
          pool.axon_type[static_cast<std::size_t>(pool_axon)] = static_cast<std::uint8_t>(d);
          net.connect({dc, static_cast<std::uint16_t>(j)},
                      {pc, static_cast<std::uint16_t>(pool_axon)}, 1);
          ++j;
          ++pool_axon;
        }
      }
    }

    // Opponency neurons: R−L, L−R, D−U, U−D, each reading all detector
    // axons through per-type weights (+2 own direction, −2 opponent).
    for (int d = 0; d < 4; ++d) {
      const int opp = d ^ 1;  // right<->left, down<->up
      const int neuron = d;
      for (int a = 0; a < pool_axon; ++a) pool.crossbar.set(a, neuron);
      core::NeuronParams& n = pool.neuron[neuron];
      n.enabled = 1;
      n.weight[d] = 2;
      n.weight[opp] = -2;
      // No decay: the directional evidence is a slow drift (opposing
      // detector populations nearly cancel), so any leak would swamp it;
      // the saturating negative floor bounds the integration instead.
      n.threshold = 4;
      n.leak = 0;
      n.neg_threshold = 8;
      n.negative_mode = core::NegativeMode::kSaturate;
      n.reset_mode = core::ResetMode::kLinear;
      net.add_output({pc, static_cast<std::uint16_t>(neuron)});
    }
  }

  app.net.name = "optical_flow";
  app.net.placed = corelet::place(net, corelet::fit_geometry(net));
  app.net.ticks = static_cast<core::Tick>(cfg.frames) * cfg.ticks_per_frame;
  for (int r = 0; r < regions; ++r) {
    const core::CoreId pc =
        app.net.placed.core_map[static_cast<std::size_t>(pool_core[static_cast<std::size_t>(r)])];
    for (int d = 0; d < 4; ++d) {
      app.opponency_index[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(pc) * core::kCoreSize + static_cast<std::size_t>(d);
    }
  }

  return app;
}

void encode_flow_frames(OpticalFlowApp& app, const std::vector<vision::Image>& frames,
                        std::uint64_t encoder_seed) {
  const int regions = app.region_cols * app.region_rows;
  const int img_w = app.region_cols * kRegionPx;
  const vision::RateEncoder enc(0.5, encoder_seed);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const core::Tick t0 = static_cast<core::Tick>(f) * app.ticks_per_frame;
    const vision::Image& now = frames[f];
    const vision::Image& old = frames[f == 0 ? 0 : f - 1];
    for (int r = 0; r < regions; ++r) {
      const int rx = (r % app.region_cols) * kRegionPx;
      const int ry = (r / app.region_cols) * kRegionPx;
      // Detector core precedes its pool core in the placement map.
      const core::CoreId dc = static_cast<core::CoreId>(
          app.net.placed.core_map[static_cast<std::size_t>(2 * r)]);
      for (int sy = 0; sy < kSide; ++sy) {
        for (int sx = 0; sx < kSide; ++sx) {
          const int x = rx + sx * kStride, y = ry + sy * kStride;
          const auto pix = static_cast<std::uint32_t>(y * img_w + x);
          const int s = sy * kSide + sx;
          for (core::Tick dt = 0; dt < app.ticks_per_frame; ++dt) {
            const core::Tick t = t0 + dt;
            if (enc.fires(pix, t, now.at(x, y))) {
              app.net.inputs.add(t, dc, static_cast<std::uint16_t>(s));
            }
            if (enc.fires(pix, t, old.at(x, y))) {
              app.net.inputs.add(t, dc, static_cast<std::uint16_t>(kSamples + s));
              app.net.inputs.add(t, dc, static_cast<std::uint16_t>(2 * kSamples + s));
            }
          }
        }
      }
    }
  }
  app.net.inputs.finalize();
}

OpticalFlowApp make_optical_flow_app(const AppConfig& cfg) {
  OpticalFlowApp app = make_optical_flow_net(cfg);

  // Stimulus: moving objects, encoded with now + frame-lagged taps using
  // common random numbers (see neovision.cpp).
  vision::SceneConfig sc;
  sc.width = cfg.img_w;
  sc.height = cfg.img_h;
  sc.objects = cfg.scene_objects;
  sc.seed = cfg.seed;
  sc.min_separation = 2 * kRegionPx;
  // The Reichardt taps are tuned to ~2 px/frame (one sample): scale the
  // walk speeds so velocities cluster there — slower motion never crosses
  // the sample grid, much faster motion outruns the tap.
  sc.speed_scale = 1.6;
  vision::SyntheticScene scene(sc);
  std::vector<vision::Image> frames;
  std::vector<std::pair<double, double>> mean_v;
  frames.reserve(static_cast<std::size_t>(cfg.frames));
  for (int f = 0; f < cfg.frames; ++f) {
    frames.push_back(scene.render());
    // Ground truth: dominant axis of the mean displacement this frame.
    const auto before = scene.ground_truth();
    scene.step();
    const auto after = scene.ground_truth();
    double vx = 0, vy = 0;
    for (std::size_t o = 0; o < before.size() && o < after.size(); ++o) {
      vx += after[o].x - before[o].x;
      vy += after[o].y - before[o].y;
    }
    mean_v.push_back({vx, vy});
  }
  // true_direction[f] refers to the displacement from frame f-1 to f. Only
  // frames whose dominant axis clearly wins (≥ 2× the other) carry a label:
  // near-diagonal motion has no well-defined four-way ground truth.
  app.true_direction.assign(static_cast<std::size_t>(cfg.frames), -1);
  for (int f = 1; f < cfg.frames; ++f) {
    const auto [vx, vy] = mean_v[static_cast<std::size_t>(f - 1)];
    if (std::abs(vx) >= 2.0 * std::abs(vy) && vx != 0) {
      app.true_direction[static_cast<std::size_t>(f)] =
          static_cast<int>(vx > 0 ? FlowDir::kRight : FlowDir::kLeft);
    } else if (std::abs(vy) >= 2.0 * std::abs(vx) && vy != 0) {
      app.true_direction[static_cast<std::size_t>(f)] =
          static_cast<int>(vy > 0 ? FlowDir::kDown : FlowDir::kUp);
    }
  }

  encode_flow_frames(app, frames, cfg.seed ^ 0xF10);
  return app;
}

FlowResult decode_flow(const OpticalFlowApp& app, const core::WindowedCountSink& sink) {
  FlowResult out;
  const int regions = app.region_cols * app.region_rows;
  for (std::size_t w = 0; w < sink.windows().size(); ++w) {
    const auto& counts = sink.windows()[w];
    std::uint64_t dir_energy[4] = {0, 0, 0, 0};
    for (int r = 0; r < regions; ++r) {
      for (int d = 0; d < 4; ++d) {
        dir_energy[d] +=
            counts[app.opponency_index[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)]];
      }
    }
    int best = -1;
    std::uint64_t best_e = 0;
    for (int d = 0; d < 4; ++d) {
      if (dir_energy[d] > best_e) {
        best_e = dir_energy[d];
        best = d;
      }
    }
    out.dominant_direction.push_back(best);
    if (w >= 1 && w < app.true_direction.size() &&
        app.true_direction[w] >= 0) {
      ++out.scored_frames;
      if (best == app.true_direction[w]) ++out.correct_frames;
    }
  }
  return out;
}

}  // namespace nsc::apps
