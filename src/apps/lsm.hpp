// Liquid state machine (paper Fig. 2: LSMs are among the applications
// demonstrated on Compass and TrueNorth).
//
// A fixed random recurrent reservoir (mixed excitatory/inhibitory, fading
// memory) projects input spike trains into a high-dimensional state; a
// linear readout trained offline on reservoir spike counts classifies
// *temporal* patterns. The benchmark task here is constructed so timing is
// the only signal: every class drives every channel with the same number of
// spikes, differing only in when they arrive — a count-based readout on the
// raw input is at chance, while the reservoir's temporal mixing makes the
// classes linearly separable.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/input_schedule.hpp"
#include "src/core/network.hpp"
#include "src/train/perceptron.hpp"

namespace nsc::apps {

struct LsmConfig {
  int input_channels = 32;
  int classes = 4;
  core::Tick pattern_ticks = 40;   ///< Length of one temporal pattern.
  core::Tick readout_ticks = 50;   ///< Observation window (pattern + echo).
  int spikes_per_channel = 6;      ///< Identical for every class (timing-only task).
  double jitter_prob = 0.25;       ///< P(spike shifts ±1 tick) per sample.
  double drop_prob = 0.05;         ///< P(spike dropped) per sample.
  std::uint64_t seed = 1;
};

/// The reservoir: one core, 256 neurons, random recurrence. Axons [0,32)
/// carry inputs (type 0), [32,192) excitatory recurrence (type 1),
/// [192,256) inhibitory recurrence (type 2).
struct Lsm {
  LsmConfig cfg;
  core::Network reservoir;
  /// Class template rasters: spike ticks per (class, channel, spike).
  std::vector<std::vector<std::vector<core::Tick>>> templates;
};

[[nodiscard]] Lsm make_lsm(const LsmConfig& cfg);

/// Draws one jittered sample of class `cls` (deterministic per sample_seed).
[[nodiscard]] core::InputSchedule make_lsm_sample(const Lsm& lsm, int cls,
                                                  std::uint64_t sample_seed);

/// Runs one sample through the reservoir and returns the pooled state:
/// 64 features (4 neurons each), normalized spike counts.
[[nodiscard]] std::vector<float> reservoir_state(const Lsm& lsm, const core::InputSchedule& in);

/// Builds a dataset of `per_class` jittered samples per class, featurized
/// through the reservoir (`use_reservoir` = true) or as raw per-channel
/// input counts (the timing-blind baseline).
[[nodiscard]] train::Dataset make_lsm_dataset(const Lsm& lsm, int per_class, bool use_reservoir,
                                              std::uint64_t seed);

}  // namespace nsc::apps
