// Patch decomposition shared by the vision corelets.
//
// A feature core sees one image patch. Every patch pixel owns an *axon
// pair*: axon 2p (type 0, the "plus" tap) and axon 2p+1 (type 1, the
// "minus" tap) carry identical spike trains; a neuron takes the pixel with
// weight S⁰ by connecting to the plus tap or with S¹ by connecting to the
// minus tap. This is the standard TrueNorth idiom for signed kernels over a
// binary crossbar: arbitrary ±-patterned receptive fields from per-neuron
// axon-type weights. Patches hold ≤128 pixels so the pair layout fits the
// 256 axons of one core.
#pragma once

#include <span>
#include <vector>

#include "src/core/input_schedule.hpp"
#include "src/corelet/place.hpp"
#include "src/vision/encode.hpp"
#include "src/vision/image.hpp"

namespace nsc::apps {

inline constexpr int kMaxPatchPixels = 128;

struct PatchGrid {
  int img_w = 64, img_h = 64;
  int patch_w = 16, patch_h = 8;  ///< 128 pixels by default.

  [[nodiscard]] int cols() const { return (img_w + patch_w - 1) / patch_w; }
  [[nodiscard]] int rows() const { return (img_h + patch_h - 1) / patch_h; }
  [[nodiscard]] int count() const { return cols() * rows(); }

  struct Patch {
    int x0, y0, w, h;
    [[nodiscard]] int pixels() const { return w * h; }
  };

  [[nodiscard]] Patch patch(int index) const {
    const int px = index % cols(), py = index / cols();
    const int x0 = px * patch_w, y0 = py * patch_h;
    return {x0, y0, std::min(patch_w, img_w - x0), std::min(patch_h, img_h - y0)};
  }

  /// Local pixel index within patch, or -1 when (x, y) is outside it.
  [[nodiscard]] static int local_pixel(const Patch& p, int x, int y) {
    if (x < p.x0 || y < p.y0 || x >= p.x0 + p.w || y >= p.y0 + p.h) return -1;
    return (y - p.y0) * p.w + (x - p.x0);
  }

  /// Plus/minus axons of a local pixel.
  [[nodiscard]] static std::uint16_t plus_axon(int local_pixel) {
    return static_cast<std::uint16_t>(2 * local_pixel);
  }
  [[nodiscard]] static std::uint16_t minus_axon(int local_pixel) {
    return static_cast<std::uint16_t>(2 * local_pixel + 1);
  }
};

/// Marks the pair-tap axon types on a patch core (even axons type 0, odd
/// axons type 1) for the first `pixels` pixels.
void configure_pair_axons(core::CoreSpec& spec, int pixels);

/// Rate-encodes `frames` (each shown for `ticks_per_frame`) into `out`,
/// delivering every pixel's identical spike train to its axon pair on the
/// owning patch core. `patch_core_local[k]` is the local corelet core index
/// of patch k; draws are keyed by global pixel id so overlapping consumers
/// stay correlated.
void encode_frames(const PatchGrid& grid, std::span<const vision::Image> frames,
                   core::Tick ticks_per_frame, const vision::RateEncoder& enc,
                   const corelet::PlacedCorelet& placed, const std::vector<int>& patch_core_local,
                   core::InputSchedule& out);

}  // namespace nsc::apps
