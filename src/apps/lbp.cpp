#include "src/apps/lbp.hpp"

#include <vector>

#include "src/apps/patch.hpp"
#include "src/corelet/corelet.hpp"
#include "src/vision/scene.hpp"

namespace nsc::apps {
namespace {

constexpr int kBins = 20;
constexpr int kNeighbors = 8;
constexpr int kOffsets[kNeighbors][2] = {{-1, -1}, {0, -1}, {1, -1}, {-1, 0},
                                         {1, 0},   {-1, 1}, {0, 1},  {1, 1}};

}  // namespace

LbpApp make_lbp_app(const AppConfig& cfg) {
  const PatchGrid grid{cfg.img_w, cfg.img_h, 16, 8};
  corelet::Corelet net("lbp");
  std::vector<int> patch_core(static_cast<std::size_t>(grid.count()));

  int comparisons = 0;
  for (int k = 0; k < grid.count(); ++k) {
    const PatchGrid::Patch pa = grid.patch(k);
    const int l1 = net.add_core();
    patch_core[static_cast<std::size_t>(k)] = l1;
    core::CoreSpec& spec = net.core(l1);
    configure_pair_axons(spec, pa.pixels());

    // Layer 2: the histogram core for this patch.
    const int l2 = net.add_core();
    core::CoreSpec& hist = net.core(l2);

    // Layer 1: comparison neurons on a stride-2 grid of interior centers.
    int j = 0;
    for (int cy = 1; cy < pa.h - 1; cy += 2) {
      for (int cx = 1; cx < pa.w - 1; cx += 2) {
        for (int d = 0; d < kNeighbors; ++d) {
          if (j >= core::kCoreSize) break;
          const int lc = cy * pa.w + cx;
          const int ln = (cy + kOffsets[d][1]) * pa.w + (cx + kOffsets[d][0]);
          // Fires when the center's rate exceeds the neighbor's: the LBP
          // bit center > neighbor, rate-coded.
          spec.crossbar.set(PatchGrid::plus_axon(lc), j);
          spec.crossbar.set(PatchGrid::minus_axon(ln), j);
          core::NeuronParams& p = spec.neuron[j];
          p.enabled = 1;
          // ±4 so a rate-coded difference (< 1 spike/tick) overcomes the
          // −1/tick decay; at ±1 the comparison would never cross threshold.
          p.weight[0] = 4;
          p.weight[1] = -4;
          p.threshold = 4;
          p.leak = -1;
          p.negative_mode = core::NegativeMode::kSaturate;
          p.reset_mode = core::ResetMode::kLinear;
          // Route this comparison into the histogram core: axon j carries
          // (sample, direction); the fixed projection below bins it.
          net.connect({l1, static_cast<std::uint16_t>(j)}, {l2, static_cast<std::uint16_t>(j)},
                      core::kMinDelay);
          ++j;
        }
      }
    }
    if (k == 0) comparisons = j;

    // Layer 2: bin b accumulates all comparisons with (sample*8+dir) ≡ b
    // (mod 20) — the fixed projection standing in for the uniform-pattern
    // code table.
    for (int b = 0; b < kBins; ++b) {
      for (int a = b; a < j; a += kBins) {
        hist.crossbar.set(a, b);
      }
      core::NeuronParams& p = hist.neuron[b];
      p.enabled = 1;
      p.weight[0] = 1;
      p.threshold = 6;
      p.leak = 0;
      p.reset_mode = core::ResetMode::kLinear;
      net.add_output({l2, static_cast<std::uint16_t>(b)});
    }
  }

  LbpApp app;
  app.subpatches = grid.count();
  app.comparisons_per_patch = comparisons;
  app.net.name = "lbp";
  app.net.placed = corelet::place(net, corelet::fit_geometry(net));
  app.net.ticks = static_cast<core::Tick>(cfg.frames) * cfg.ticks_per_frame;

  vision::SceneConfig sc;
  sc.width = cfg.img_w;
  sc.height = cfg.img_h;
  sc.objects = cfg.scene_objects;
  sc.seed = cfg.seed;
  vision::SyntheticScene scene(sc);
  std::vector<vision::Image> frames;
  frames.reserve(static_cast<std::size_t>(cfg.frames));
  for (int f = 0; f < cfg.frames; ++f) {
    frames.push_back(scene.render());
    scene.step();
  }
  const vision::RateEncoder enc(0.5, cfg.seed ^ 0x1B9);
  encode_frames(grid, frames, cfg.ticks_per_frame, enc, app.net.placed, patch_core,
                app.net.inputs);
  return app;
}

}  // namespace nsc::apps
