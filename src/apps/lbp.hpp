// Local Binary Pattern histogram corelet (paper §IV-B: 20-bin LBP feature
// histograms over 8 subpatches — the texture front end used in biometrics
// and robot navigation).
//
// Two-layer composition: layer 1 cores compute the 8 center-vs-neighbor
// comparisons per sampled pixel (the bits of the LBP code), layer 2 cores
// accumulate 20-bin histograms per subpatch. Binning uses a fixed projection
// from (sample, direction) to bin — a documented simplification of the
// rotation-invariant uniform-pattern code (see DESIGN.md §3).
#pragma once

#include "src/apps/app_common.hpp"

namespace nsc::apps {

struct LbpApp {
  AppNetwork net;
  int bins = 20;
  int subpatches = 0;   ///< Histogram cores (one per image patch).
  int comparisons_per_patch = 0;
};

[[nodiscard]] LbpApp make_lbp_app(const AppConfig& cfg);

}  // namespace nsc::apps
