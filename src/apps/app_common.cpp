#include "src/apps/app_common.hpp"

#include <chrono>

#include "src/compass/simulator.hpp"
#include "src/tn/chip_sim.hpp"

namespace nsc::apps {
namespace {

template <typename MakeSim>
AppRunResult timed_run(const AppNetwork& app, core::SpikeSink* sink, MakeSim&& make) {
  auto sim = make();
  const auto t0 = std::chrono::steady_clock::now();
  sim->run(app.ticks, &app.inputs, sink);
  const auto t1 = std::chrono::steady_clock::now();
  AppRunResult r;
  r.stats = sim->stats();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace

AppRunResult run_on_truenorth(const AppNetwork& app, core::SpikeSink* sink) {
  return timed_run(app, sink, [&] {
    return std::make_unique<tn::TrueNorthSimulator>(app.placed.network);
  });
}

AppRunResult run_on_compass(const AppNetwork& app, int threads, core::SpikeSink* sink) {
  return timed_run(app, sink, [&] {
    return std::make_unique<compass::Simulator>(app.placed.network,
                                                compass::Config{.threads = threads});
  });
}

}  // namespace nsc::apps
