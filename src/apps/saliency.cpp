#include "src/apps/saliency.hpp"

#include "src/corelet/place.hpp"
#include "src/vision/scene.hpp"

namespace nsc::apps {
namespace {

/// Ring offsets: scale A at radius 1 (8-neighborhood), scale B at radius 2.
constexpr int kRingA[8][2] = {{-1, -1}, {0, -1}, {1, -1}, {-1, 0},
                              {1, 0},   {-1, 1}, {0, 1},  {1, 1}};
constexpr int kRingB[8][2] = {{-2, -2}, {0, -2}, {2, -2}, {-2, 0},
                              {2, 0},   {-2, 2}, {0, 2},  {2, 2}};

}  // namespace

SaliencyCorelet build_saliency_corelet(int img_w, int img_h) {
  SaliencyCorelet s;
  s.grid = PatchGrid{img_w, img_h, 16, 8};

  for (int k = 0; k < s.grid.count(); ++k) {
    const PatchGrid::Patch pa = s.grid.patch(k);
    const int l1 = s.net.add_core();
    s.patch_core.push_back(l1);
    core::CoreSpec& spec = s.net.core(l1);
    configure_pair_axons(spec, pa.pixels());

    const int l2 = s.net.add_core();
    core::CoreSpec& combine = s.net.core(l2);

    // Layer 1: one DoG neuron per (center, scale); both scales share the
    // stride-2 interior center grid with a 2-pixel margin.
    int centers = 0;
    int j = 0;
    for (int cy = 2; cy < pa.h - 2; cy += 2) {
      for (int cx = 2; cx < pa.w - 2; cx += 2) {
        for (int scale = 0; scale < 2; ++scale) {
          const auto& ring = scale == 0 ? kRingA : kRingB;
          const int lc = cy * pa.w + cx;
          spec.crossbar.set(PatchGrid::plus_axon(lc), j);
          for (const auto& d : ring) {
            const int ln = (cy + d[1]) * pa.w + (cx + d[0]);
            spec.crossbar.set(PatchGrid::minus_axon(ln), j);
          }
          core::NeuronParams& p = spec.neuron[j];
          p.enabled = 1;
          p.weight[0] = 8;   // balanced center-surround: +8 vs 8 × (−1)
          p.weight[1] = -1;
          p.threshold = 8;
          p.leak = -1;
          p.negative_mode = core::NegativeMode::kSaturate;
          p.reset_mode = core::ResetMode::kLinear;
          // Combine core axon j carries (center, scale).
          s.net.connect({l1, static_cast<std::uint16_t>(j)},
                        {l2, static_cast<std::uint16_t>(j)}, core::kMinDelay);
          ++j;
        }
        ++centers;
      }
    }
    s.centers_per_patch = centers;

    // Layer 2: per-center map neurons (sum of the two scales) and one
    // region-energy neuron over everything.
    for (int c = 0; c < centers; ++c) {
      combine.crossbar.set(2 * c, c);
      combine.crossbar.set(2 * c + 1, c);
      core::NeuronParams& p = combine.neuron[c];
      p.enabled = 1;
      p.weight[0] = 1;
      p.threshold = 2;
      p.leak = -1;
      p.negative_mode = core::NegativeMode::kSaturate;
      p.reset_mode = core::ResetMode::kLinear;
      s.map_pins.push_back({l2, static_cast<std::uint16_t>(c)});
    }
    const int energy = centers;
    for (int a = 0; a < 2 * centers; ++a) combine.crossbar.set(a, energy);
    core::NeuronParams& pe = combine.neuron[energy];
    pe.enabled = 1;
    pe.weight[0] = 1;
    pe.threshold = 10;
    pe.leak = -1;
    pe.negative_mode = core::NegativeMode::kSaturate;
    pe.reset_mode = core::ResetMode::kLinear;
    s.energy_pins.push_back({l2, static_cast<std::uint16_t>(energy)});
  }
  return s;
}

SaliencyApp make_saliency_app(const AppConfig& cfg) {
  SaliencyCorelet s = build_saliency_corelet(cfg.img_w, cfg.img_h);
  for (const auto& pin : s.map_pins) s.net.add_output(pin);
  for (const auto& pin : s.energy_pins) s.net.add_output(pin);

  SaliencyApp app;
  app.centers_per_patch = s.centers_per_patch;
  app.patches = s.grid.count();
  app.net.name = "saliency";
  app.net.placed = corelet::place(s.net, corelet::fit_geometry(s.net));
  app.net.ticks = static_cast<core::Tick>(cfg.frames) * cfg.ticks_per_frame;

  vision::SceneConfig sc;
  sc.width = cfg.img_w;
  sc.height = cfg.img_h;
  sc.objects = cfg.scene_objects;
  sc.seed = cfg.seed;
  vision::SyntheticScene scene(sc);
  std::vector<vision::Image> frames;
  frames.reserve(static_cast<std::size_t>(cfg.frames));
  for (int f = 0; f < cfg.frames; ++f) {
    frames.push_back(scene.render());
    scene.step();
  }
  const vision::RateEncoder enc(0.5, cfg.seed ^ 0x5A11);
  encode_frames(s.grid, frames, cfg.ticks_per_frame, enc, app.net.placed, s.patch_core,
                app.net.inputs);
  return app;
}

}  // namespace nsc::apps
