#include "src/apps/patch.hpp"

#include <cassert>

namespace nsc::apps {

void configure_pair_axons(core::CoreSpec& spec, int pixels) {
  assert(pixels <= kMaxPatchPixels);
  for (int p = 0; p < pixels; ++p) {
    spec.axon_type[static_cast<std::size_t>(2 * p)] = 0;
    spec.axon_type[static_cast<std::size_t>(2 * p + 1)] = 1;
  }
}

void encode_frames(const PatchGrid& grid, std::span<const vision::Image> frames,
                   core::Tick ticks_per_frame, const vision::RateEncoder& enc,
                   const corelet::PlacedCorelet& placed, const std::vector<int>& patch_core_local,
                   core::InputSchedule& out) {
  assert(static_cast<int>(patch_core_local.size()) == grid.count());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const vision::Image& img = frames[f];
    const core::Tick t0 = static_cast<core::Tick>(f) * ticks_per_frame;
    for (int k = 0; k < grid.count(); ++k) {
      const PatchGrid::Patch pa = grid.patch(k);
      const core::CoreId cid =
          placed.core_map[static_cast<std::size_t>(patch_core_local[static_cast<std::size_t>(k)])];
      for (int yy = 0; yy < pa.h; ++yy) {
        for (int xx = 0; xx < pa.w; ++xx) {
          const std::uint8_t v = img.at(pa.x0 + xx, pa.y0 + yy);
          if (v == 0) continue;
          const auto pixel_id =
              static_cast<std::uint32_t>((pa.y0 + yy) * grid.img_w + (pa.x0 + xx));
          const int lp = yy * pa.w + xx;
          for (core::Tick dt = 0; dt < ticks_per_frame; ++dt) {
            const core::Tick t = t0 + dt;
            if (!enc.fires(pixel_id, t, v)) continue;
            out.add(t, cid, PatchGrid::plus_axon(lp));
            out.add(t, cid, PatchGrid::minus_axon(lp));
          }
        }
      }
    }
  }
  out.finalize();
}

}  // namespace nsc::apps
