#include "src/apps/lsm.hpp"

#include <algorithm>
#include <cassert>

#include "src/core/spike_sink.hpp"
#include "src/tn/chip_sim.hpp"
#include "src/util/prng.hpp"

namespace nsc::apps {
namespace {

constexpr int kInputAxons = 32;   // [0, 32): type 0
constexpr int kExcAxons = 160;    // [32, 192): type 1
constexpr int kInhAxonBase = 192; // [192, 256): type 2

}  // namespace

Lsm make_lsm(const LsmConfig& cfg) {
  assert(cfg.input_channels <= kInputAxons);
  Lsm lsm;
  lsm.cfg = cfg;
  lsm.reservoir = core::Network(core::Geometry{1, 1, 1, 1}, cfg.seed);
  util::Xoshiro rng(cfg.seed * 6364136223846793005ULL + 1442695040888963407ULL);

  core::CoreSpec& cs = lsm.reservoir.core(0);
  for (int a = 0; a < core::kCoreSize; ++a) {
    cs.axon_type[static_cast<std::size_t>(a)] =
        a < kInputAxons ? 0 : (a < kInhAxonBase ? 1 : 2);
  }
  // 20% of reservoir neurons are inhibitory (they project to type-2 axons).
  std::vector<bool> inhibitory(core::kCoreSize);
  for (int j = 0; j < core::kCoreSize; ++j) {
    inhibitory[static_cast<std::size_t>(j)] = rng.next_double() < 0.2;
  }

  for (int j = 0; j < core::kCoreSize; ++j) {
    core::NeuronParams& p = cs.neuron[j];
    p.enabled = 1;
    p.weight[0] = 8;   // input drive
    p.weight[1] = 2;   // recurrent excitation — subcritical: the echo must
    p.weight[2] = -6;  // fade, not self-sustain (a chaotic attractor would
                       // forget its input and destroy class information)
    p.threshold = 10 + static_cast<std::int32_t>(rng.next_below(8));
    p.leak = -1;  // fading memory
    p.neg_threshold = 10;
    p.negative_mode = core::NegativeMode::kSaturate;
    p.reset_mode = core::ResetMode::kLinear;  // carry sub-threshold trace
    p.init_v = static_cast<std::int32_t>(rng.next_below(8));
    // Each neuron listens to ~3 input channels and ~8 recurrent axons.
    for (int k = 0; k < 3; ++k) {
      cs.crossbar.set(
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(cfg.input_channels))), j);
    }
    for (int k = 0; k < 8; ++k) {
      cs.crossbar.set(kInputAxons + static_cast<int>(rng.next_below(kExcAxons + 64)), j);
    }
    // Recurrent projection: excitatory neurons strike a type-1 axon,
    // inhibitory ones a type-2 axon, with delays 1–6 for temporal mixing.
    const int axon = inhibitory[static_cast<std::size_t>(j)]
                         ? kInhAxonBase + static_cast<int>(rng.next_below(64))
                         : kInputAxons + static_cast<int>(rng.next_below(kExcAxons));
    p.target = {0, static_cast<std::uint16_t>(axon),
                static_cast<std::uint8_t>(1 + rng.next_below(6))};
  }

  // Timing-only class templates: every class places the same number of
  // spikes on every channel, at class-specific ticks.
  lsm.templates.resize(static_cast<std::size_t>(cfg.classes));
  for (int c = 0; c < cfg.classes; ++c) {
    auto& cls = lsm.templates[static_cast<std::size_t>(c)];
    cls.resize(static_cast<std::size_t>(cfg.input_channels));
    for (int ch = 0; ch < cfg.input_channels; ++ch) {
      auto& ticks = cls[static_cast<std::size_t>(ch)];
      while (static_cast<int>(ticks.size()) < cfg.spikes_per_channel) {
        const auto t = static_cast<core::Tick>(rng.next_below(
            static_cast<std::uint64_t>(cfg.pattern_ticks)));
        if (std::find(ticks.begin(), ticks.end(), t) == ticks.end()) ticks.push_back(t);
      }
      std::sort(ticks.begin(), ticks.end());
    }
  }
  return lsm;
}

core::InputSchedule make_lsm_sample(const Lsm& lsm, int cls, std::uint64_t sample_seed) {
  assert(cls >= 0 && cls < lsm.cfg.classes);
  core::InputSchedule in;
  util::Xoshiro rng(sample_seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(cls) + 1);
  const auto& tmpl = lsm.templates[static_cast<std::size_t>(cls)];
  for (int ch = 0; ch < lsm.cfg.input_channels; ++ch) {
    for (core::Tick t : tmpl[static_cast<std::size_t>(ch)]) {
      if (rng.next_double() < lsm.cfg.drop_prob) continue;
      core::Tick jt = t;
      if (rng.next_double() < lsm.cfg.jitter_prob) {
        jt += rng.next_double() < 0.5 ? -1 : 1;
        jt = std::clamp<core::Tick>(jt, 0, lsm.cfg.pattern_ticks - 1);
      }
      in.add(jt, 0, static_cast<std::uint16_t>(ch));
    }
  }
  in.finalize();
  return in;
}

std::vector<float> reservoir_state(const Lsm& lsm, const core::InputSchedule& in) {
  tn::TrueNorthSimulator sim(lsm.reservoir);
  // Drive the liquid through the pattern, then read its echo: per-neuron
  // spike counts in the post-stimulus window, where any class information
  // can only come from the reservoir's fading memory of input *timing*.
  sim.run(lsm.cfg.pattern_ticks, &in, nullptr);
  core::CountSink sink(static_cast<std::uint64_t>(core::kCoreSize));
  const core::Tick echo = std::max<core::Tick>(1, lsm.cfg.readout_ticks - lsm.cfg.pattern_ticks);
  sim.run(echo, &in, &sink);
  std::vector<float> state(static_cast<std::size_t>(core::kCoreSize), 0.0f);
  for (int j = 0; j < core::kCoreSize; ++j) {
    state[static_cast<std::size_t>(j)] =
        static_cast<float>(sink.count(0, static_cast<std::uint16_t>(j))) /
        static_cast<float>(echo);
  }
  return state;
}

train::Dataset make_lsm_dataset(const Lsm& lsm, int per_class, bool use_reservoir,
                                std::uint64_t seed) {
  train::Dataset d;
  d.classes = lsm.cfg.classes;
  for (int c = 0; c < lsm.cfg.classes; ++c) {
    for (int s = 0; s < per_class; ++s) {
      const auto sample_seed = seed + static_cast<std::uint64_t>(c * per_class + s) * 7919ULL;
      const core::InputSchedule in = make_lsm_sample(lsm, c, sample_seed);
      if (use_reservoir) {
        d.x.push_back(reservoir_state(lsm, in));
      } else {
        // Timing-blind baseline: per-channel spike counts (identical across
        // classes up to drop noise — the task's design).
        std::vector<float> counts(static_cast<std::size_t>(lsm.cfg.input_channels), 0.0f);
        for (const auto& e : in.events()) counts[e.axon] += 1.0f;
        for (float& x : counts) x /= static_cast<float>(lsm.cfg.spikes_per_channel);
        d.x.push_back(std::move(counts));
      }
      d.y.push_back(c);
    }
  }
  return d;
}

}  // namespace nsc::apps
