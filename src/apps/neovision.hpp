// NeoVision-style multi-object detection and classification (paper §IV-B):
// a Where network detects moving objects via ON/OFF transient cells, a What
// network classifies regions into the five NeoVision classes, and a
// What/Where binding stage emits labeled bounding boxes whose precision/
// recall is measured against the synthetic scene's ground truth.
//
// Where: per-patch transient cores compare the current frame against a
//   frame-lagged copy (the off-chip frame buffer role the Zynq plays);
//   ON cells fire on appearing energy, OFF cells on vanishing energy; a
//   per-patch pooling neuron rate-codes regional motion energy.
// What: per-region classifier cores band-classify the region's luminous
//   mass (area × brightness — the archetypes are separable on this axis)
//   through a threshold ladder and band-binding neurons.
// Binding: decode_detections() fuses motion regions with class bands into
//   labeled boxes per frame window.
#pragma once

#include <array>
#include <vector>

#include "src/apps/app_common.hpp"
#include "src/core/spike_sink.hpp"
#include "src/vision/image.hpp"
#include "src/vision/metrics.hpp"

namespace nsc::apps {

struct NeovisionApp {
  AppNetwork net;
  int region_cols = 0, region_rows = 0;  ///< What/Where region tiling.
  int region_w = 0, region_h = 0;        ///< Region size in pixels.
  core::Tick ticks_per_frame = 0;
  int frames = 0;

  /// Output bookkeeping for the decoder: flat sink indices.
  std::vector<std::size_t> motion_index;              ///< per region.
  std::vector<std::array<std::size_t, 5>> class_index;///< per region × class.
  std::vector<std::array<std::size_t, 5>> ladder_index;  ///< per region × band.

  /// Classifier calibration (drive units = expected spikes/tick).
  std::array<int, 5> band_cut{};      ///< Ladder cuts, ascending.
  std::array<double, 5> class_drive{};///< Expected full-object drive per class.
  double bg_drive = 0.0;

  /// Ground truth per frame (from the synthetic scene).
  std::vector<std::vector<vision::LabeledBox>> ground_truth;
};

[[nodiscard]] NeovisionApp make_neovision_app(const AppConfig& cfg);

/// Decodes labeled boxes per frame from windowed spike counts and matches
/// them against the ground truth.
struct NeovisionResult {
  vision::DetectionCounts counts;
  std::vector<std::vector<vision::LabeledBox>> detections;  ///< Per frame.
};

[[nodiscard]] NeovisionResult decode_detections(const NeovisionApp& app,
                                                const core::WindowedCountSink& sink,
                                                std::uint32_t motion_threshold = 2);

}  // namespace nsc::apps
