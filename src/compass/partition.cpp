#include "src/compass/partition.hpp"

#include <algorithm>
#include <cassert>

namespace nsc::compass {

double core_load_estimate(const core::CoreSpec& spec) {
  if (spec.disabled) return 0.0;
  int enabled = 0;
  for (const auto& p : spec.neuron) enabled += p.enabled ? 1 : 0;
  // Neuron updates run every tick; synaptic work is event-driven and scales
  // with crossbar population. The 1/16 activity factor approximates typical
  // cortical firing sparsity; balancing only needs relative weights.
  return static_cast<double>(enabled) + static_cast<double>(spec.crossbar.count()) / 16.0;
}

std::vector<CoreRange> partition_range(const core::Network& net, CoreRange span, int parts) {
  assert(parts >= 1);
  assert(span.begin <= span.end);
  const core::CoreId n = span.end - span.begin;
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (core::CoreId i = 0; i < n; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + core_load_estimate(net.core(span.begin + i));
  }
  const double total = prefix.back();

  std::vector<CoreRange> ranges;
  ranges.reserve(static_cast<std::size_t>(parts));
  core::CoreId cursor = 0;
  for (int p = 0; p < parts; ++p) {
    const double target = total * static_cast<double>(p + 1) / parts;
    // First core index whose prefix load reaches the target; ranges stay
    // contiguous and monotone.
    core::CoreId hi = cursor;
    while (hi < n && prefix[static_cast<std::size_t>(hi) + 1] < target) ++hi;
    if (hi < n) ++hi;
    if (p == parts - 1) hi = n;  // last range absorbs any remainder
    ranges.push_back({span.begin + cursor, span.begin + hi});
    cursor = hi;
  }
  return ranges;
}

std::vector<CoreRange> partition_balanced(const core::Network& net, int parts) {
  return partition_range(net, {0, static_cast<core::CoreId>(net.geom.total_cores())}, parts);
}

double load_imbalance(const core::Network& net, const std::vector<CoreRange>& parts) {
  if (parts.empty()) return 1.0;
  double max_load = 0.0, sum = 0.0;
  for (const CoreRange& r : parts) {
    double load = 0.0;
    for (core::CoreId c = r.begin; c < r.end; ++c) load += core_load_estimate(net.core(c));
    max_load = std::max(max_load, load);
    sum += load;
  }
  const double mean = sum / static_cast<double>(parts.size());
  return mean > 0.0 ? max_load / mean : 1.0;
}

}  // namespace nsc::compass
