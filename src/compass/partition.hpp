// Core-to-process partitioning with load balancing (paper §III-B: Compass
// "uses meticulous load-balancing" and exploits spatial structure).
//
// Partitions are contiguous core ranges: contiguity preserves the canonical
// (core, neuron) spike order when per-partition outputs are concatenated,
// and it maps cleanly onto the clustered topology the kernel assumes.
// Balancing weighs each core by its expected per-tick work: enabled neurons
// (leak/threshold every tick) plus active synapses (event-driven, scaled by
// expected activity).
#pragma once

#include <vector>

#include "src/core/network.hpp"

namespace nsc::compass {

/// Half-open range of cores owned by one simulated process.
struct CoreRange {
  core::CoreId begin = 0;
  core::CoreId end = 0;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(end - begin); }
  [[nodiscard]] bool contains(core::CoreId c) const noexcept { return c >= begin && c < end; }
};

/// Splits the network's cores into `parts` contiguous ranges with near-equal
/// estimated load. Always returns exactly `parts` ranges (possibly empty
/// trailing ones for tiny networks).
[[nodiscard]] std::vector<CoreRange> partition_balanced(const core::Network& net, int parts);

/// Same balanced split restricted to `span` (half-open). Used by the sharded
/// backend to sub-partition one rank's core range across its threads; the
/// two-level split keeps every range contiguous, so concatenating outputs in
/// (rank, partition) order is still the canonical (core, neuron) order.
[[nodiscard]] std::vector<CoreRange> partition_range(const core::Network& net, CoreRange span,
                                                     int parts);

/// Estimated per-tick work of one core (arbitrary units, used for balancing).
[[nodiscard]] double core_load_estimate(const core::CoreSpec& spec);

/// Largest partition load divided by mean partition load (1.0 = perfect).
[[nodiscard]] double load_imbalance(const core::Network& net,
                                    const std::vector<CoreRange>& parts);

}  // namespace nsc::compass
