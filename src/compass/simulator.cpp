#include "src/compass/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/core/snapshot.hpp"

namespace nsc::compass {

using core::CoreId;
using core::kCoreSize;
using core::NeuronParams;
using core::Tick;

namespace {

CoreRange shard_of(const core::Network& net, const Config& cfg) {
  if (cfg.ranks < 1 || cfg.rank < 0 || cfg.rank >= cfg.ranks) {
    throw std::invalid_argument("compass: rank must satisfy 0 <= rank < ranks");
  }
  if (cfg.ranks == 1) return {0, static_cast<CoreId>(net.geom.total_cores())};
  return partition_balanced(net, cfg.ranks)[static_cast<std::size_t>(cfg.rank)];
}

}  // namespace

Simulator::Simulator(const core::Network& net, Config cfg)
    : net_(net),
      cfg_(cfg),
      prng_(net.seed),
      shard_(shard_of(net, cfg)),
      parts_(partition_range(net, shard_, cfg.threads)),
      pool_(std::make_unique<util::ThreadPool>(cfg.threads)),
      faults_(net.geom.total_cores()),
      link_faults_(net.geom.chips()),
      v_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      delay_(static_cast<std::size_t>(net.geom.total_cores()) * kDelaySlots),
      enabled_(static_cast<std::size_t>(net.geom.total_cores())),
      enabled_count_(static_cast<std::size_t>(net.geom.total_cores()), 0),
      target_ok_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      target_faulted_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      outbox_(static_cast<std::size_t>(cfg.threads) * static_cast<std::size_t>(cfg.threads)),
      remote_out_(static_cast<std::size_t>(cfg.threads) * static_cast<std::size_t>(cfg.ranks)),
      remote_words_(static_cast<std::size_t>(cfg.ranks)),
      outbox_words_(static_cast<std::size_t>(cfg.threads) * static_cast<std::size_t>(cfg.threads)),
      spike_buf_(static_cast<std::size_t>(cfg.threads)),
      local_(static_cast<std::size_t>(cfg.threads)),
      part_compute_ns_(static_cast<std::size_t>(cfg.threads), 0) {
  // Resolve metric slots once; hot paths only touch the returned references.
  ph_compute_ = &obs_.phase("compute");
  ph_exchange_ = &obs_.phase("exchange");
  ph_commit_ = &obs_.phase("commit");
  ctr_messages_ = &obs_.counter("messages");
  ctr_message_bytes_ = &obs_.counter("message_bytes");
  ctr_cores_failed_ = &obs_.counter("fault.cores_failed");
  ctr_links_failed_ = &obs_.counter("fault.links_failed");
  ctr_fault_dropped_ = &obs_.counter("fault.spikes_dropped");
  ctr_cores_visited_ = &obs_.counter("cores_visited");
  ctr_cores_skipped_ = &obs_.counter("cores_skipped");
  ctr_events_delivered_ = &obs_.counter("events_delivered");
  ctr_kernel_isa_ =
      &obs_.counter(std::string("kernel.isa_") + kernels::isa_name(kern_->isa));
  *ctr_kernel_isa_ = 1;
  ctr_dispatch_[0] = &obs_.counter("kernel.dispatch_sparse");
  ctr_dispatch_[1] = &obs_.counter("kernel.dispatch_hybrid");
  ctr_dispatch_[2] = &obs_.counter("kernel.dispatch_dense");
  for (int b = 0; b < 8; ++b) {
    ctr_density_[b] = &obs_.counter("kernel.density_b" + std::to_string(b));
  }
  const auto ncores = static_cast<CoreId>(net.geom.total_cores());
  owner_.assign(static_cast<std::size_t>(ncores), -1);
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    for (CoreId c = parts_[p].begin; c < parts_[p].end; ++c) owner_[c] = static_cast<int>(p);
  }
  if (cfg_.ranks > 1) {
    const std::vector<CoreRange> shards = partition_balanced(net, cfg_.ranks);
    rank_owner_.assign(static_cast<std::size_t>(ncores), 0);
    for (std::size_t r = 0; r < shards.size(); ++r) {
      for (CoreId c = shards[r].begin; c < shards[r].end; ++c) {
        rank_owner_[c] = static_cast<int>(r);
      }
    }
  }
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    for (int j = 0; j < kCoreSize; ++j) {
      v_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j)] =
          spec.neuron[j].init_v;
    }
    if (spec.disabled) {
      faults_.mark(c);
      continue;
    }
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (p.target.valid() && p.target.core < ncores && !net.core(p.target.core).disabled) {
        target_ok_[nid] = 1;
      }
    }
  }
  init_activity();
}

Simulator::~Simulator() = default;

void Simulator::init_activity() {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  active_.clear();
  active_.reserve(parts_.size());
  for (const CoreRange& r : parts_) active_.emplace_back(r.begin, r.end, kDelaySlots);
  always_active_.assign(static_cast<std::size_t>(ncores), 0);
  hot_ok_.assign(static_cast<std::size_t>(ncores), 0);
  hot_.assign(static_cast<std::size_t>(ncores) * core::kHotStride, 0);
  wtab_.assign(static_cast<std::size_t>(ncores) * core::kWeightTabPerCore, 0);
  fire_.assign(static_cast<std::size_t>(ncores) * kCoreSize, core::HotFire{});
  rowpop_.assign(static_cast<std::size_t>(ncores) * kCoreSize, 0);
  // Density profiles restart at the hybrid default: perf-only derived state,
  // so a restored run re-learns its strategies without perturbing output.
  profile_.assign(static_cast<std::size_t>(ncores), kernels::CoreProfile{});
  part_enabled_.assign(parts_.size(), 0);
  part_live_cores_.assign(parts_.size(), 0);
  for (CoreId c = 0; c < ncores; ++c) {
    util::BitRow256* rows = &delay_[static_cast<std::size_t>(c) * kDelaySlots];
    if (faults_.is_faulted(c)) {
      // A dense loop would clear stale slot bits of a dead core on its next
      // visit; the worklist never visits it, so clear them here once.
      for (int s = 0; s < kDelaySlots; ++s) rows[s].reset();
      continue;
    }
    // Shard mode: cores owned by other ranks carry no local worklist, hot
    // table or partition accounting — they are computed elsewhere.
    if (owner_[c] < 0) continue;
    const auto p = static_cast<std::size_t>(owner_[c]);
    ++part_live_cores_[p];
    part_enabled_[p] += enabled_count_[c];
    const core::CoreSpec& spec = net_.core(c);
    if (core::core_hot_eligible(spec, enabled_count_[c]) &&
        core::hot_potentials_safe(&v_[static_cast<std::size_t>(c) * kCoreSize])) {
      hot_ok_[c] = 1;
      core::fill_hot_core(spec, &hot_[static_cast<std::size_t>(c) * core::kHotStride],
                          &wtab_[static_cast<std::size_t>(c) * core::kWeightTabPerCore]);
      core::fill_hot_fire(spec, &fire_[static_cast<std::size_t>(c) * kCoreSize]);
      for (int i = 0; i < kCoreSize; ++i) {
        rowpop_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(i)] =
            static_cast<std::uint16_t>(spec.crossbar.row(i).count());
      }
    }
    const bool always = core::core_always_active(spec, enabled_[c]);
    always_active_[c] = always ? 1 : 0;
    if (always ||
        core::core_restless_at(spec, enabled_[c], &v_[static_cast<std::size_t>(c) * kCoreSize])) {
      active_[p].set_restless(c, true);
    }
    for (int s = 0; s < kDelaySlots; ++s) {
      if (rows[s].any()) active_[p].mark_event(c, s);
    }
  }
}

void Simulator::reset_stats() {
  stats_.reset();
  messages_ = 0;
}

void Simulator::reset_metrics() noexcept {
  obs_.reset();
  *ctr_kernel_isa_ = 1;  // The dispatched tier marker survives metric resets.
  std::fill(part_compute_ns_.begin(), part_compute_ns_.end(), 0);
}

double Simulator::load_imbalance() const noexcept {
  std::uint64_t max = 0, sum = 0;
  for (const std::uint64_t ns : part_compute_ns_) {
    max = std::max(max, ns);
    sum += ns;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(part_compute_ns_.size());
  return static_cast<double>(max) / mean;
}

void Simulator::phase_compute(int p, Tick t, const core::InputSchedule* inputs, bool record) {
  const bool obs_on = obs::kEnabled && cfg_.collect_phase_metrics;
  const std::uint64_t t0 = obs_on ? obs::now_ns() : 0;
  const CoreRange range = parts_[static_cast<std::size_t>(p)];
  const int P = cfg_.threads;
  LocalStats& ls = local_[static_cast<std::size_t>(p)];

  core::ActiveSet& active = active_[static_cast<std::size_t>(p)];
  const int si = static_cast<int>(t % kDelaySlots);
  if (inputs != nullptr) {
    for (const core::InputSpike& s : inputs->at(t)) {
      if (!range.contains(s.core)) continue;
      if (!faults_.is_faulted(s.core)) {
        slot_of(s.core, t).set(s.axon);
        active.mark_event(s.core, si);
      } else if (!net_.core(s.core).disabled) {
        // Aimed at a core a fault campaign killed mid-run: absorbed, but
        // counted — degradation must be observable, never silent.
        ++ls.fault_dropped;
      }
    }
  }

  std::uint64_t visited = 0;
  std::int32_t acc[kCoreSize];
  // Event-driven core walk: only cores with pending axon events in this
  // tick's delay slot or live idle dynamics are visited; everything else is
  // provably a no-op (core::idle_quiescent) and contributes zero to every
  // stat except neuron_updates, compensated in bulk below.
  active.for_each_active(si, [&](CoreId c) {
    ++visited;
    util::BitRow256& axons = slot_of(c, t);
    const core::CoreSpec& spec = net_.core(c);
    const std::uint64_t core_axons = static_cast<std::uint64_t>(axons.count());
    if (enabled_count_[c] == 0) {
      axons.reset();
      ls.axon_events += core_axons;
      return;
    }

    const bool hot = hot_ok_[c] != 0;

    // Synapse phase: word-level walk — crossbar row ∩ enabled mask one word
    // at a time, SOPs batched per word (popcount), bits extracted with ctz.
    if (core_axons != 0) {
      std::fill(acc, acc + kCoreSize, 0);
      const util::BitRow256& en = enabled_[c];
      if (hot) {
        // Fast path: every synapse deterministic — a dense weight-table row
        // per axon type replaces the scattered per-synapse NeuronParams load.
        // The profile-chosen strategy folds to one per-word cutoff (always
        // SIMD / popcount branch / always ctz); every branch computes the
        // identical accumulator, so the choice is performance-only.
        kernels::CoreProfile& prof = profile_[c];
        const int cut = kernels::strategy_cut(prof.strategy);
        std::uint32_t vis_words = 0;
        std::uint32_t vis_bits = 0;
        const std::int16_t* wt = &wtab_[static_cast<std::size_t>(c) * core::kWeightTabPerCore];
        if (prof.strategy == kernels::Strategy::kDense) {
          // Dense strategy: the whole visit goes to the fused SIMD kernel in
          // one dispatch — no per-word popcount branch, no per-row indirect
          // call. Hot cores have every lane enabled, so the raw crossbar row
          // is the mask and SOPs come from the init-time row popcounts.
          std::int16_t idx[kCoreSize];
          int nax = 0;
          std::uint32_t row_bits = 0;
          const std::uint16_t* rp = &rowpop_[static_cast<std::size_t>(c) * kCoreSize];
          axons.for_each_set([&](int i) {
            idx[nax++] = static_cast<std::int16_t>(i);
            row_bits += rp[i];
          });
          ls.sops += row_bits;
          vis_words = static_cast<std::uint32_t>(nax) * util::BitRow256::kWords;
          vis_bits = row_bits;
          kern_->accumulate_core(acc, wt, &spec.crossbar.row(0), spec.axon_type.data(), rp, idx,
                                 nax);
        } else {
          axons.for_each_set([&](int i) {
            const std::int16_t* wrow =
                wt +
                static_cast<std::size_t>(spec.axon_type[static_cast<std::size_t>(i)]) * kCoreSize;
            spec.crossbar.row(i).for_each_masked_word(en, [&](int base, std::uint64_t bits) {
              const int pc = util::popcount64(bits);
              ls.sops += static_cast<std::uint64_t>(pc);
              ++vis_words;
              vis_bits += static_cast<std::uint32_t>(pc);
              if (pc >= cut) {
                kern_->accumulate_word(acc + base, wrow + base, bits);
                return;
              }
              do {
                const int j = base + util::lowest_set(bits);
                acc[j] += wrow[j];
                bits = util::clear_lowest(bits);
              } while (bits != 0);
            });
          });
        }
        ++ls.dispatch[static_cast<int>(prof.strategy)];
        if (vis_words != 0) {
          ++ls.density[std::min<std::uint32_t>(7, (vis_bits / vis_words) >> 3)];
          kernels::update_profile(prof, vis_words, vis_bits, core::kDenseWordCut);
        }
      } else {
        axons.for_each_set([&](int i) {
          const int g = spec.axon_type[static_cast<std::size_t>(i)];
          spec.crossbar.row(i).for_each_masked_word(en, [&](int base, std::uint64_t bits) {
            ls.sops += static_cast<std::uint64_t>(util::popcount64(bits));
            do {
              const int j = base + util::lowest_set(bits);
              const NeuronParams& pj = spec.neuron[j];
              if (pj.stochastic_weight == 0) {
                acc[j] += pj.weight[g];
              } else {
                acc[j] += core::synapse_delta(pj, g, prng_, c, static_cast<std::uint32_t>(j), t,
                                              static_cast<std::uint32_t>(i));
              }
              bits = util::clear_lowest(bits);
            } while (bits != 0);
          });
        });
      }
    }

    const bool check_restless = always_active_[c] == 0;
    bool restless = false;
    // Spike emission/delivery tail shared by the fast and generic loops.
    const auto emit = [&](int j, const core::AxonTarget& tgt, std::size_t nid) {
      ++ls.spikes;
      if (record) {
        spike_buf_[static_cast<std::size_t>(p)].push_back({t, c, static_cast<std::uint16_t>(j)});
      }
      if (target_ok_[nid] == 0) {
        ++ls.dropped;
        if (target_faulted_[nid] != 0) ++ls.fault_dropped;
        return;
      }
      const Tick arrive = t + tgt.delay;
      if (range.contains(tgt.core)) {
        // Local delivery: straight into the owner's own delay buffer.
        slot_of(tgt.core, arrive).set(tgt.axon);
        active.mark_event(tgt.core, static_cast<int>(arrive % kDelaySlots));
        ++ls.events_delivered;
      } else {
        // Remote delivery: enqueue for the owning process. In aggregated
        // mode the whole outbox is one logical message; otherwise every
        // delivery is its own message. Shard mode: cores outside this rank
        // (owner -1) queue for their owning rank instead; dist_tick batches
        // them for the transport.
        const int dst = owner_[tgt.core];
        if (dst >= 0) {
          outbox_[static_cast<std::size_t>(p) * static_cast<std::size_t>(P) +
                  static_cast<std::size_t>(dst)]
              .push_back({tgt.core, tgt.axon, static_cast<std::uint16_t>(arrive % kDelaySlots)});
        } else {
          remote_out_[static_cast<std::size_t>(p) * static_cast<std::size_t>(cfg_.ranks) +
                      static_cast<std::size_t>(rank_owner_[tgt.core])]
              .push_back({tgt.core, tgt.axon, static_cast<std::uint16_t>(arrive % kDelaySlots)});
        }
      }
    };
    if (hot) {
      // Fast path: a vectorizable int32 sweep (dispatched tier, src/kernels/)
      // folds acc+leak into the whole core and flags the neurons where a fire
      // or floor event is possible; only those run the exact slow functions.
      // The sweep hands back the flags as four bit-words walked with ctz.
      std::int32_t* vrow = &v_[static_cast<std::size_t>(c) * kCoreSize];
      const std::int32_t* hrow = &hot_[static_cast<std::size_t>(c) * core::kHotStride];
      const core::HotFire* frow = &fire_[static_cast<std::size_t>(c) * kCoreSize];
      std::uint64_t bad[4];
      kern_->sweep_badmask(vrow, core_axons != 0 ? acc : nullptr, hrow, bad);
      for (int w = 0; w < 4; ++w) {
        std::uint64_t word = bad[w];
        while (word != 0) {
          const int j = w * 64 + util::lowest_set(word);
          word = util::clear_lowest(word);
          std::int32_t vj = vrow[j];
          const core::HotFire& fj = frow[j];
          const std::int32_t alpha = hrow[kCoreSize + j];
          const bool fired =
              core::hot_fire_reset(vj, alpha, fj, prng_, c, static_cast<std::uint32_t>(j), t);
          vrow[j] = vj;
          if (check_restless && !core::hot_idle_quiescent(vj, hrow[j], alpha, fj)) restless = true;
          if (fired) {
            emit(j, fj.target,
                 static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j));
          }
        }
      }
    } else {
      enabled_[c].for_each_set([&](int j) {
        const NeuronParams& pj = spec.neuron[j];
        const std::size_t nid =
            static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
        std::int32_t vj = v_[nid];
        if (core_axons != 0) {
          vj = core::clamp_potential(static_cast<std::int64_t>(vj) + acc[j]);
        }
        const bool fired =
            core::leak_threshold_update(vj, pj, prng_, c, static_cast<std::uint32_t>(j), t);
        v_[nid] = vj;
        if (check_restless && !core::idle_quiescent(pj, vj)) restless = true;
        if (fired) emit(j, pj.target, nid);
      });
    }
    if (check_restless) active.set_restless(c, restless);

    axons.reset();
    ls.axon_events += core_axons;
  });
  // Skipped cores still run their (no-op) neuron pass on the chip: count
  // every enabled neuron of every live core so the SOPS/W accounting — and
  // cross-backend stats equality — is independent of the worklist.
  ls.neuron_updates += part_enabled_[static_cast<std::size_t>(p)];
  ls.cores_visited += visited;
  ls.cores_skipped += part_live_cores_[static_cast<std::size_t>(p)] - visited;

  // Message accounting and (aggregated mode) word-level batching of this
  // tick's sends. Sorting by (core, slot) groups deliveries for the same
  // delay row, so consecutive records coalesce into 64-axon OR-masks.
  for (int dst = 0; dst < P; ++dst) {
    if (dst == p) continue;
    auto& box = outbox_[static_cast<std::size_t>(p) * static_cast<std::size_t>(P) +
                        static_cast<std::size_t>(dst)];
    if (box.empty()) continue;
    ls.events_delivered += box.size();
    if (cfg_.aggregate_messages) {
      std::sort(box.begin(), box.end(), [](const Delivery& a, const Delivery& b) {
        if (a.core != b.core) return a.core < b.core;
        if (a.slot != b.slot) return a.slot < b.slot;
        return a.axon < b.axon;
      });
      auto& words = outbox_words_[static_cast<std::size_t>(p) * static_cast<std::size_t>(P) +
                                  static_cast<std::size_t>(dst)];
      for (const Delivery& d : box) {
        const auto w = static_cast<std::uint16_t>(d.axon >> 6);
        const std::uint64_t bit = std::uint64_t{1} << (d.axon & 63U);
        if (!words.empty() && words.back().core == d.core && words.back().slot == d.slot &&
            words.back().word == w) {
          words.back().bits |= bit;
        } else {
          words.push_back({d.core, d.slot, w, bit});
        }
      }
      box.clear();
      ls.messages += 1;
      ls.message_bytes += words.size() * sizeof(WordDelivery);
    } else {
      ls.messages += box.size();
      ls.message_bytes += box.size() * sizeof(Delivery);
    }
  }
  if (obs_on) ls.compute_ns += obs::now_ns() - t0;
}

void Simulator::phase_exchange(int p) {
  const int P = cfg_.threads;
  core::ActiveSet& active = active_[static_cast<std::size_t>(p)];
  for (int src = 0; src < P; ++src) {
    // Aggregated mode: batched word records — one OR lands up to 64 axons.
    auto& words = outbox_words_[static_cast<std::size_t>(src) * static_cast<std::size_t>(P) +
                                static_cast<std::size_t>(p)];
    for (const WordDelivery& d : words) {
      delay_[static_cast<std::size_t>(d.core) * kDelaySlots + d.slot].or_word(d.word, d.bits);
      active.mark_event(d.core, d.slot);
    }
    words.clear();
    // Per-spike mode (ablation): raw per-delivery records.
    auto& box = outbox_[static_cast<std::size_t>(src) * static_cast<std::size_t>(P) +
                        static_cast<std::size_t>(p)];
    for (const Delivery& d : box) {
      delay_[static_cast<std::size_t>(d.core) * kDelaySlots + d.slot].set(d.axon);
      active.mark_event(d.core, d.slot);
    }
    box.clear();
  }
}

void Simulator::run(Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) {
  if (cfg_.ranks > 1) {
    // A shard cannot self-advance: its remote spikes need a transport. The
    // dist::Coordinator drives shards via dist_tick/dist_deliver instead.
    throw std::logic_error("compass: run() is invalid on a shard (ranks > 1); use dist_tick");
  }
  if (nticks <= 0) return;
  const bool record = sink != nullptr;
  const bool obs_on = obs::kEnabled && cfg_.collect_phase_metrics;
  const Tick start = now_;
  const int P = cfg_.threads;

  // Commit: partitions are contiguous ascending core ranges, so
  // concatenation is the canonical (core, neuron) order.
  const auto commit_tick = [&](Tick t) {
    for (auto& buf : spike_buf_) {
      sink->on_spike_batch(buf.data(), buf.size());
      buf.clear();
    }
    sink->on_tick_end(t);
  };

  const unsigned hc = std::thread::hardware_concurrency();
  if (P > 1 && hc == 1) {
    // The host has a single hardware thread: real parallelism is impossible
    // and every barrier would cost a scheduling quantum. Simulate the
    // processes round-robin on the calling thread instead — bit-exact, by
    // the same argument that makes the two-barrier tick race-free: within a
    // phase, processes touch disjoint state (plus their own outboxes), so
    // any execution order between barriers yields identical results.
    for (Tick i = 0; i < nticks; ++i) {
      const Tick t = start + i;
      {
        obs::ScopedTimer timer(obs_on ? ph_compute_ : nullptr);
        for (int p = 0; p < P; ++p) phase_compute(p, t, inputs, record);
      }
      {
        obs::ScopedTimer timer(obs_on ? ph_exchange_ : nullptr);
        for (int p = 0; p < P; ++p) phase_exchange(p);
      }
      if (record) {
        obs::ScopedTimer timer(obs_on ? ph_commit_ : nullptr);
        commit_tick(t);
      }
    }
  } else {
    // One pool dispatch for the whole run: the simulated processes stay hot
    // and advance in lockstep through the kernel's two per-tick
    // synchronization steps (the paper's persistent MPI processes — never a
    // per-phase fork/join, whose sleep/wake latency would dominate at
    // millisecond tick granularity). Process 0 runs inline on the calling
    // thread and commits recorded spikes concurrently with the other
    // processes' exchange phase: the commit only reads per-process spike
    // buffers (stable since the first barrier) and the external sink, which
    // no exchange phase touches.
    util::SpinBarrier barrier(P);
    pool_->run_all([&](int p) {
      const bool lead = p == 0;
      for (Tick i = 0; i < nticks; ++i) {
        const Tick t = start + i;
        const std::uint64_t t0 = (obs_on && lead) ? obs::now_ns() : 0;
        phase_compute(p, t, inputs, record);
        barrier.arrive_and_wait();  // Sync step 1: all sends of tick t queued.
        const std::uint64_t t1 = (obs_on && lead) ? obs::now_ns() : 0;
        phase_exchange(p);
        std::uint64_t t2 = 0, t3 = 0;
        if (lead) {
          t2 = obs_on ? obs::now_ns() : 0;
          if (record) commit_tick(t);
          t3 = obs_on ? obs::now_ns() : 0;
        }
        barrier.arrive_and_wait();  // Sync step 2: all deliveries landed.
        if (obs_on && lead) {
          const std::uint64_t t4 = obs::now_ns();
          ph_compute_->add(t1 - t0);
          ph_exchange_->add((t2 - t1) + (t4 - t3));
          if (record) ph_commit_->add(t3 - t2);
        }
      }
    });
  }
  stats_.ticks += nticks;
  now_ += nticks;
  fold_local_stats();
}

void Simulator::fold_local_stats() {
  // Fold per-process counters into the aggregate view.
  for (std::size_t p = 0; p < local_.size(); ++p) {
    LocalStats& ls = local_[p];
    stats_.spikes += ls.spikes;
    stats_.sops += ls.sops;
    stats_.axon_events += ls.axon_events;
    stats_.neuron_updates += ls.neuron_updates;
    stats_.dropped_spikes += ls.dropped;
    *ctr_fault_dropped_ += ls.fault_dropped;
    messages_ += ls.messages;
    *ctr_messages_ += ls.messages;
    *ctr_message_bytes_ += ls.message_bytes;
    *ctr_cores_visited_ += ls.cores_visited;
    *ctr_cores_skipped_ += ls.cores_skipped;
    *ctr_events_delivered_ += ls.events_delivered;
    for (int s = 0; s < 3; ++s) *ctr_dispatch_[s] += ls.dispatch[s];
    for (int b = 0; b < 8; ++b) *ctr_density_[b] += ls.density[b];
    part_compute_ns_[p] += ls.compute_ns;
    ls = LocalStats{};
  }
}

void Simulator::dist_tick(Tick t, const core::InputSchedule* inputs, bool record) {
  const bool obs_on = obs::kEnabled && cfg_.collect_phase_metrics;
  const int P = cfg_.threads;
  if (P == 1 || std::thread::hardware_concurrency() == 1) {
    // Serial round-robin: same bit-exactness argument as run()'s
    // single-hardware-thread path — within a phase, partitions touch
    // disjoint state, so any order between the phase boundaries is
    // equivalent.
    {
      obs::ScopedTimer timer(obs_on ? ph_compute_ : nullptr);
      for (int p = 0; p < P; ++p) phase_compute(p, t, inputs, record);
    }
    obs::ScopedTimer timer(obs_on ? ph_exchange_ : nullptr);
    for (int p = 0; p < P; ++p) phase_exchange(p);
  } else {
    obs::ScopedTimer timer(obs_on ? ph_compute_ : nullptr);
    util::SpinBarrier barrier(P);
    pool_->run_all([&](int p) {
      phase_compute(p, t, inputs, record);
      barrier.arrive_and_wait();  // All local sends of tick t queued.
      phase_exchange(p);
    });
  }
  build_remote_batches();
}

void Simulator::build_remote_batches() {
  if (cfg_.ranks <= 1) return;
  const int P = cfg_.threads;
  const int R = cfg_.ranks;
  LocalStats& ls = local_[0];
  for (int r = 0; r < R; ++r) {
    if (r == cfg_.rank) continue;
    auto& words = remote_words_[static_cast<std::size_t>(r)];
    std::size_t deliveries = 0;
    for (int p = 0; p < P; ++p) {
      auto& box = remote_out_[static_cast<std::size_t>(p) * static_cast<std::size_t>(R) +
                              static_cast<std::size_t>(r)];
      deliveries += box.size();
    }
    if (deliveries == 0) continue;
    // Remote deliveries count at the sender (as run() does for outboxes) so
    // the sum over ranks matches the single-process events_delivered.
    ls.events_delivered += deliveries;
    std::vector<Delivery> merged;
    merged.reserve(deliveries);
    for (int p = 0; p < P; ++p) {
      auto& box = remote_out_[static_cast<std::size_t>(p) * static_cast<std::size_t>(R) +
                              static_cast<std::size_t>(r)];
      merged.insert(merged.end(), box.begin(), box.end());
      box.clear();
    }
    // Canonical batch order: the sorted-by-(core, slot, axon) coalescing
    // makes the packet bytes a pure function of the delivery multiset, so
    // identical runs produce identical wire traffic.
    std::sort(merged.begin(), merged.end(), [](const Delivery& a, const Delivery& b) {
      if (a.core != b.core) return a.core < b.core;
      if (a.slot != b.slot) return a.slot < b.slot;
      return a.axon < b.axon;
    });
    for (const Delivery& d : merged) {
      const auto w = static_cast<std::uint16_t>(d.axon >> 6);
      const std::uint64_t bit = std::uint64_t{1} << (d.axon & 63U);
      if (!words.empty() && words.back().core == d.core && words.back().slot == d.slot &&
          words.back().word == w) {
        words.back().bits |= bit;
      } else {
        words.push_back({d.core, d.slot, w, bit});
      }
    }
    ls.messages += 1;
    ls.message_bytes += words.size() * sizeof(WordDelivery);
  }
}

void Simulator::dist_clear_outgoing() {
  for (auto& words : remote_words_) words.clear();
}

void Simulator::dist_deliver(const WordDelivery* words, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const WordDelivery& d = words[i];
    if (d.core >= owner_.size() || owner_[d.core] < 0 || d.slot >= kDelaySlots ||
        d.word >= util::BitRow256::kWords) {
      continue;  // Not ours (or malformed): a fault elsewhere must not corrupt local state.
    }
    delay_[static_cast<std::size_t>(d.core) * kDelaySlots + d.slot].or_word(d.word, d.bits);
    active_[static_cast<std::size_t>(owner_[d.core])].mark_event(d.core, d.slot);
  }
}

void Simulator::dist_drain_spikes(std::vector<core::Spike>& out) {
  for (auto& buf : spike_buf_) {
    out.insert(out.end(), buf.begin(), buf.end());
    buf.clear();
  }
}

void Simulator::dist_end_run(Tick nticks) {
  stats_.ticks += nticks;
  now_ += nticks;
  fold_local_stats();
}

void Simulator::refresh_targets_after_fault() {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    if (faults_.is_faulted(c)) continue;
    const core::CoreSpec& spec = net_.core(c);
    enabled_[c].for_each_set([&](int j) {
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (target_ok_[nid] == 0) return;  // fault state only shrinks
      const core::AxonTarget& tgt = spec.neuron[j].target;
      if (faults_.is_faulted(tgt.core) ||
          !noc::route_with_faults(net_.geom, faults_, link_faults_, c, tgt.core).reachable) {
        // Same mid-run rule (and the same noc reachability computation) as
        // the TrueNorth expression, so both backends drop identical spikes.
        target_ok_[nid] = 0;
        target_faulted_[nid] = 1;
      }
    });
  }
}

bool Simulator::fail_core(core::CoreId c) {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  if (c >= ncores || faults_.is_faulted(c)) return false;
  faults_.mark(c);
  runtime_faults_ = true;
  if (owner_[c] >= 0) {  // Shard mode: remote cores have no local worklist.
    const auto o = static_cast<std::size_t>(owner_[c]);
    part_enabled_[o] -= enabled_count_[c];
    --part_live_cores_[o];
    active_[o].clear_core(c);
  }
  always_active_[c] = 0;
  enabled_[c] = util::BitRow256{};
  enabled_count_[c] = 0;
  std::uint64_t pending = 0;
  for (int s = 0; s < kDelaySlots; ++s) {
    util::BitRow256& row = delay_[static_cast<std::size_t>(c) * kDelaySlots + s];
    pending += static_cast<std::uint64_t>(row.count());
    row.reset();
  }
  *ctr_fault_dropped_ += pending;
  ++*ctr_cores_failed_;
  refresh_targets_after_fault();
  return true;
}

bool Simulator::fail_link(int chip, int dir) {
  if (net_.geom.chips() <= 1) return false;
  if (chip < 0 || chip >= net_.geom.chips() || dir < 0 || dir >= 4) return false;
  if (link_faults_.blocked(chip, dir)) return false;
  link_faults_.mark(chip, dir);
  runtime_faults_ = true;
  ++*ctr_links_failed_;
  refresh_targets_after_fault();
  return true;
}

void Simulator::save_checkpoint(std::ostream& os) const {
  core::Snapshot snap;
  snap.backend = core::SnapshotBackend::kCompass;
  snap.geom = net_.geom;
  snap.net_seed = net_.seed;
  snap.tick = now_;
  snap.stats = stats_;
  const auto ncores = static_cast<std::size_t>(net_.geom.total_cores());
  snap.dead_cores.resize(ncores, 0);
  for (std::size_t c = 0; c < ncores; ++c) {
    snap.dead_cores[c] = faults_.is_faulted(static_cast<CoreId>(c)) ? 1 : 0;
  }
  const int chips = net_.geom.chips();
  snap.dead_links.resize(static_cast<std::size_t>(chips) * 4, 0);
  for (int ch = 0; ch < chips; ++ch) {
    for (int d = 0; d < 4; ++d) {
      snap.dead_links[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] =
          link_faults_.blocked(ch, d) ? 1 : 0;
    }
  }
  snap.v = v_;
  snap.delay_words.reserve(delay_.size() * util::BitRow256::kWords);
  for (const util::BitRow256& row : delay_) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) snap.delay_words.push_back(row.word(w));
  }
  snap.set_extra("messages", messages_);
  snap.set_extra("fault.cores_failed", *ctr_cores_failed_);
  snap.set_extra("fault.links_failed", *ctr_links_failed_);
  snap.set_extra("fault.spikes_dropped", *ctr_fault_dropped_);
  core::save_snapshot(snap, os);
}

void Simulator::load_checkpoint(std::istream& is) {
  const core::Snapshot snap = core::load_snapshot(is);
  if (snap.geom != net_.geom) {
    throw std::runtime_error("checkpoint geometry does not match this simulator's network");
  }
  if (snap.net_seed != net_.seed) {
    throw std::runtime_error("checkpoint was taken against a different network (seed mismatch)");
  }
  now_ = snap.tick;
  stats_ = snap.stats;
  messages_ = snap.extra("messages");
  v_ = snap.v;
  for (std::size_t i = 0; i < delay_.size(); ++i) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) {
      delay_[i].set_word(w, snap.delay_words[i * util::BitRow256::kWords +
                                             static_cast<std::size_t>(w)]);
    }
  }
  for (auto& box : outbox_) box.clear();
  for (auto& words : outbox_words_) words.clear();
  for (auto& box : remote_out_) box.clear();
  for (auto& words : remote_words_) words.clear();
  for (auto& buf : spike_buf_) buf.clear();
  for (auto& ls : local_) ls = LocalStats{};

  // Rebuild fault state and everything derived from it; runtime faults (the
  // snapshot's dead set beyond the network's static one) re-activate the
  // mid-run drop rule exactly as the saving simulator's fail_* calls did.
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  faults_ = noc::FaultSet(static_cast<int>(ncores));
  link_faults_ = noc::LinkFaultSet(net_.geom.chips());
  runtime_faults_ = false;
  for (CoreId c = 0; c < ncores; ++c) {
    const bool static_dead = net_.core(c).disabled != 0;
    const bool dead = snap.dead_cores[c] != 0 || static_dead;
    if (dead) faults_.mark(c);
    if (dead && !static_dead) runtime_faults_ = true;
  }
  for (int ch = 0; ch < net_.geom.chips(); ++ch) {
    for (int d = 0; d < 4; ++d) {
      if (snap.dead_links[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] != 0) {
        link_faults_.mark(ch, d);
        runtime_faults_ = true;
      }
    }
  }
  std::fill(target_ok_.begin(), target_ok_.end(), 0);
  std::fill(target_faulted_.begin(), target_faulted_.end(), 0);
  for (CoreId c = 0; c < ncores; ++c) {
    enabled_[c] = util::BitRow256{};
    enabled_count_[c] = 0;
    if (faults_.is_faulted(c)) continue;
    const core::CoreSpec& spec = net_.core(c);
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
      if (!p.target.valid() || p.target.core >= ncores) continue;
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (net_.core(p.target.core).disabled != 0) continue;  // dropped since construction
      if (faults_.is_faulted(p.target.core)) {
        target_faulted_[nid] = 1;  // killed mid-run
        continue;
      }
      if (runtime_faults_ &&
          !noc::route_with_faults(net_.geom, faults_, link_faults_, c, p.target.core).reachable) {
        target_faulted_[nid] = 1;  // fault-disconnected: mid-run drop rule
        continue;
      }
      target_ok_[nid] = 1;
    }
  }

  // Worklists are derived state: re-derive restless bits from the restored
  // potentials and event bits from the restored delay rings (never persisted
  // — the snapshot format is unchanged).
  init_activity();

  *ctr_cores_failed_ = snap.extra("fault.cores_failed");
  *ctr_links_failed_ = snap.extra("fault.links_failed");
  *ctr_fault_dropped_ = snap.extra("fault.spikes_dropped");
}

}  // namespace nsc::compass
