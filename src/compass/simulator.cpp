#include "src/compass/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/core/snapshot.hpp"

namespace nsc::compass {

using core::CoreId;
using core::kCoreSize;
using core::NeuronParams;
using core::Tick;

Simulator::Simulator(const core::Network& net, Config cfg)
    : net_(net),
      cfg_(cfg),
      prng_(net.seed),
      parts_(partition_balanced(net, cfg.threads)),
      pool_(std::make_unique<util::ThreadPool>(cfg.threads)),
      faults_(net.geom.total_cores()),
      link_faults_(net.geom.chips()),
      v_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      delay_(static_cast<std::size_t>(net.geom.total_cores()) * kDelaySlots),
      enabled_(static_cast<std::size_t>(net.geom.total_cores())),
      enabled_count_(static_cast<std::size_t>(net.geom.total_cores()), 0),
      target_ok_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      target_faulted_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      outbox_(static_cast<std::size_t>(cfg.threads) * static_cast<std::size_t>(cfg.threads)),
      spike_buf_(static_cast<std::size_t>(cfg.threads)),
      local_(static_cast<std::size_t>(cfg.threads)),
      part_compute_ns_(static_cast<std::size_t>(cfg.threads), 0) {
  // Resolve metric slots once; hot paths only touch the returned references.
  ph_compute_ = &obs_.phase("compute");
  ph_exchange_ = &obs_.phase("exchange");
  ph_commit_ = &obs_.phase("commit");
  ctr_messages_ = &obs_.counter("messages");
  ctr_message_bytes_ = &obs_.counter("message_bytes");
  ctr_cores_failed_ = &obs_.counter("fault.cores_failed");
  ctr_links_failed_ = &obs_.counter("fault.links_failed");
  ctr_fault_dropped_ = &obs_.counter("fault.spikes_dropped");
  const auto ncores = static_cast<CoreId>(net.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    for (int j = 0; j < kCoreSize; ++j) {
      v_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j)] =
          spec.neuron[j].init_v;
    }
    if (spec.disabled) {
      faults_.mark(c);
      continue;
    }
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (p.target.valid() && p.target.core < ncores && !net.core(p.target.core).disabled) {
        target_ok_[nid] = 1;
      }
    }
  }
}

Simulator::~Simulator() = default;

void Simulator::reset_stats() {
  stats_.reset();
  messages_ = 0;
}

void Simulator::reset_metrics() noexcept {
  obs_.reset();
  std::fill(part_compute_ns_.begin(), part_compute_ns_.end(), 0);
}

double Simulator::load_imbalance() const noexcept {
  std::uint64_t max = 0, sum = 0;
  for (const std::uint64_t ns : part_compute_ns_) {
    max = std::max(max, ns);
    sum += ns;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(part_compute_ns_.size());
  return static_cast<double>(max) / mean;
}

void Simulator::phase_compute(int p, Tick t, const core::InputSchedule* inputs, bool record) {
  const bool obs_on = obs::kEnabled && cfg_.collect_phase_metrics;
  const std::uint64_t t0 = obs_on ? obs::now_ns() : 0;
  const CoreRange range = parts_[static_cast<std::size_t>(p)];
  const int P = cfg_.threads;
  LocalStats& ls = local_[static_cast<std::size_t>(p)];

  if (inputs != nullptr) {
    for (const core::InputSpike& s : inputs->at(t)) {
      if (!range.contains(s.core)) continue;
      if (!faults_.is_faulted(s.core)) {
        slot_of(s.core, t).set(s.axon);
      } else if (!net_.core(s.core).disabled) {
        // Aimed at a core a fault campaign killed mid-run: absorbed, but
        // counted — degradation must be observable, never silent.
        ++ls.fault_dropped;
      }
    }
  }

  std::int32_t acc[kCoreSize];
  for (CoreId c = range.begin; c < range.end; ++c) {
    util::BitRow256& axons = slot_of(c, t);
    const core::CoreSpec& spec = net_.core(c);
    if (faults_.is_faulted(c)) {
      axons.reset();
      continue;
    }
    const std::uint64_t core_axons = static_cast<std::uint64_t>(axons.count());
    if (enabled_count_[c] == 0) {
      axons.reset();
      ls.axon_events += core_axons;
      continue;
    }

    if (core_axons != 0) {
      std::fill(acc, acc + kCoreSize, 0);
      axons.for_each_set([&](int i) {
        const int g = spec.axon_type[static_cast<std::size_t>(i)];
        util::BitRow256 masked = spec.crossbar.row(i);
        for (int w = 0; w < util::BitRow256::kWords; ++w) {
          masked.set_word(w, masked.word(w) & enabled_[c].word(w));
        }
        masked.for_each_set([&](int j) {
          const NeuronParams& pj = spec.neuron[j];
          if (pj.stochastic_weight == 0) {
            acc[j] += pj.weight[g];
          } else {
            acc[j] += core::synapse_delta(pj, g, prng_, c, static_cast<std::uint32_t>(j), t,
                                          static_cast<std::uint32_t>(i));
          }
          ++ls.sops;
        });
      });
    }

    enabled_[c].for_each_set([&](int j) {
      const NeuronParams& pj = spec.neuron[j];
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      std::int32_t vj = v_[nid];
      if (core_axons != 0) {
        vj = core::clamp_potential(static_cast<std::int64_t>(vj) + acc[j]);
      }
      ++ls.neuron_updates;
      const bool fired =
          core::leak_threshold_update(vj, pj, prng_, c, static_cast<std::uint32_t>(j), t);
      v_[nid] = vj;
      if (!fired) return;

      ++ls.spikes;
      if (record) {
        spike_buf_[static_cast<std::size_t>(p)].push_back({t, c, static_cast<std::uint16_t>(j)});
      }
      if (target_ok_[nid] == 0) {
        ++ls.dropped;
        if (target_faulted_[nid] != 0) ++ls.fault_dropped;
        return;
      }
      const Tick arrive = t + pj.target.delay;
      if (range.contains(pj.target.core)) {
        // Local delivery: straight into the owner's own delay buffer.
        slot_of(pj.target.core, arrive).set(pj.target.axon);
      } else {
        // Remote delivery: enqueue for the owning process. In aggregated
        // mode the whole outbox is one logical message; otherwise every
        // delivery is its own message (counted in phase_exchange).
        int dst = 0;
        while (!parts_[static_cast<std::size_t>(dst)].contains(pj.target.core)) ++dst;
        outbox_[static_cast<std::size_t>(p) * static_cast<std::size_t>(P) +
                static_cast<std::size_t>(dst)]
            .push_back({pj.target.core, pj.target.axon,
                        static_cast<std::uint16_t>(arrive % kDelaySlots)});
      }
    });

    axons.reset();
    ls.axon_events += core_axons;
  }

  // Message accounting for this tick's sends.
  for (int dst = 0; dst < P; ++dst) {
    if (dst == p) continue;
    const auto& box = outbox_[static_cast<std::size_t>(p) * static_cast<std::size_t>(P) +
                              static_cast<std::size_t>(dst)];
    if (box.empty()) continue;
    ls.messages += cfg_.aggregate_messages ? 1 : box.size();
    ls.message_bytes += box.size() * sizeof(Delivery);
  }
  if (obs_on) ls.compute_ns += obs::now_ns() - t0;
}

void Simulator::phase_exchange(int p) {
  const int P = cfg_.threads;
  for (int src = 0; src < P; ++src) {
    auto& box = outbox_[static_cast<std::size_t>(src) * static_cast<std::size_t>(P) +
                        static_cast<std::size_t>(p)];
    for (const Delivery& d : box) {
      delay_[static_cast<std::size_t>(d.core) * kDelaySlots + d.slot].set(d.axon);
    }
    box.clear();
  }
}

void Simulator::run(Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) {
  const bool record = sink != nullptr;
  const bool obs_on = obs::kEnabled && cfg_.collect_phase_metrics;
  for (Tick i = 0; i < nticks; ++i) {
    const Tick t = now_;
    {
      // Phase 1+2 (synapse + neuron), all processes in parallel; run_all
      // joins, which is the first of the kernel's two per-tick
      // synchronization steps.
      obs::ScopedTimer timer(obs_on ? ph_compute_ : nullptr);
      pool_->run_all([&](int p) { phase_compute(p, t, inputs, record); });
    }
    {
      // Exchange: every process drains the outboxes addressed to it. The
      // join is the second synchronization step.
      obs::ScopedTimer timer(obs_on ? ph_exchange_ : nullptr);
      pool_->run_all([&](int p) { phase_exchange(p); });
    }
    if (record) {
      // Commit: partitions are contiguous ascending core ranges, so
      // concatenation is the canonical (core, neuron) order.
      obs::ScopedTimer timer(obs_on ? ph_commit_ : nullptr);
      for (auto& buf : spike_buf_) {
        for (const core::Spike& s : buf) sink->on_spike(s.tick, s.core, s.neuron);
        buf.clear();
      }
      sink->on_tick_end(t);
    }
    ++stats_.ticks;
    ++now_;
  }
  // Fold per-process counters into the aggregate view.
  for (std::size_t p = 0; p < local_.size(); ++p) {
    LocalStats& ls = local_[p];
    stats_.spikes += ls.spikes;
    stats_.sops += ls.sops;
    stats_.axon_events += ls.axon_events;
    stats_.neuron_updates += ls.neuron_updates;
    stats_.dropped_spikes += ls.dropped;
    *ctr_fault_dropped_ += ls.fault_dropped;
    messages_ += ls.messages;
    *ctr_messages_ += ls.messages;
    *ctr_message_bytes_ += ls.message_bytes;
    part_compute_ns_[p] += ls.compute_ns;
    ls = LocalStats{};
  }
}

void Simulator::refresh_targets_after_fault() {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    if (faults_.is_faulted(c)) continue;
    const core::CoreSpec& spec = net_.core(c);
    enabled_[c].for_each_set([&](int j) {
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (target_ok_[nid] == 0) return;  // fault state only shrinks
      const core::AxonTarget& tgt = spec.neuron[j].target;
      if (faults_.is_faulted(tgt.core) ||
          !noc::route_with_faults(net_.geom, faults_, link_faults_, c, tgt.core).reachable) {
        // Same mid-run rule (and the same noc reachability computation) as
        // the TrueNorth expression, so both backends drop identical spikes.
        target_ok_[nid] = 0;
        target_faulted_[nid] = 1;
      }
    });
  }
}

bool Simulator::fail_core(core::CoreId c) {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  if (c >= ncores || faults_.is_faulted(c)) return false;
  faults_.mark(c);
  runtime_faults_ = true;
  enabled_[c] = util::BitRow256{};
  enabled_count_[c] = 0;
  std::uint64_t pending = 0;
  for (int s = 0; s < kDelaySlots; ++s) {
    util::BitRow256& row = delay_[static_cast<std::size_t>(c) * kDelaySlots + s];
    pending += static_cast<std::uint64_t>(row.count());
    row.reset();
  }
  *ctr_fault_dropped_ += pending;
  ++*ctr_cores_failed_;
  refresh_targets_after_fault();
  return true;
}

bool Simulator::fail_link(int chip, int dir) {
  if (net_.geom.chips() <= 1) return false;
  if (chip < 0 || chip >= net_.geom.chips() || dir < 0 || dir >= 4) return false;
  if (link_faults_.blocked(chip, dir)) return false;
  link_faults_.mark(chip, dir);
  runtime_faults_ = true;
  ++*ctr_links_failed_;
  refresh_targets_after_fault();
  return true;
}

void Simulator::save_checkpoint(std::ostream& os) const {
  core::Snapshot snap;
  snap.backend = core::SnapshotBackend::kCompass;
  snap.geom = net_.geom;
  snap.net_seed = net_.seed;
  snap.tick = now_;
  snap.stats = stats_;
  const auto ncores = static_cast<std::size_t>(net_.geom.total_cores());
  snap.dead_cores.resize(ncores, 0);
  for (std::size_t c = 0; c < ncores; ++c) {
    snap.dead_cores[c] = faults_.is_faulted(static_cast<CoreId>(c)) ? 1 : 0;
  }
  const int chips = net_.geom.chips();
  snap.dead_links.resize(static_cast<std::size_t>(chips) * 4, 0);
  for (int ch = 0; ch < chips; ++ch) {
    for (int d = 0; d < 4; ++d) {
      snap.dead_links[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] =
          link_faults_.blocked(ch, d) ? 1 : 0;
    }
  }
  snap.v = v_;
  snap.delay_words.reserve(delay_.size() * util::BitRow256::kWords);
  for (const util::BitRow256& row : delay_) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) snap.delay_words.push_back(row.word(w));
  }
  snap.set_extra("messages", messages_);
  snap.set_extra("fault.cores_failed", *ctr_cores_failed_);
  snap.set_extra("fault.links_failed", *ctr_links_failed_);
  snap.set_extra("fault.spikes_dropped", *ctr_fault_dropped_);
  core::save_snapshot(snap, os);
}

void Simulator::load_checkpoint(std::istream& is) {
  const core::Snapshot snap = core::load_snapshot(is);
  if (snap.geom != net_.geom) {
    throw std::runtime_error("checkpoint geometry does not match this simulator's network");
  }
  if (snap.net_seed != net_.seed) {
    throw std::runtime_error("checkpoint was taken against a different network (seed mismatch)");
  }
  now_ = snap.tick;
  stats_ = snap.stats;
  messages_ = snap.extra("messages");
  v_ = snap.v;
  for (std::size_t i = 0; i < delay_.size(); ++i) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) {
      delay_[i].set_word(w, snap.delay_words[i * util::BitRow256::kWords +
                                             static_cast<std::size_t>(w)]);
    }
  }
  for (auto& box : outbox_) box.clear();
  for (auto& buf : spike_buf_) buf.clear();
  for (auto& ls : local_) ls = LocalStats{};

  // Rebuild fault state and everything derived from it; runtime faults (the
  // snapshot's dead set beyond the network's static one) re-activate the
  // mid-run drop rule exactly as the saving simulator's fail_* calls did.
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  faults_ = noc::FaultSet(static_cast<int>(ncores));
  link_faults_ = noc::LinkFaultSet(net_.geom.chips());
  runtime_faults_ = false;
  for (CoreId c = 0; c < ncores; ++c) {
    const bool static_dead = net_.core(c).disabled != 0;
    const bool dead = snap.dead_cores[c] != 0 || static_dead;
    if (dead) faults_.mark(c);
    if (dead && !static_dead) runtime_faults_ = true;
  }
  for (int ch = 0; ch < net_.geom.chips(); ++ch) {
    for (int d = 0; d < 4; ++d) {
      if (snap.dead_links[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] != 0) {
        link_faults_.mark(ch, d);
        runtime_faults_ = true;
      }
    }
  }
  std::fill(target_ok_.begin(), target_ok_.end(), 0);
  std::fill(target_faulted_.begin(), target_faulted_.end(), 0);
  for (CoreId c = 0; c < ncores; ++c) {
    enabled_[c] = util::BitRow256{};
    enabled_count_[c] = 0;
    if (faults_.is_faulted(c)) continue;
    const core::CoreSpec& spec = net_.core(c);
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
      if (!p.target.valid() || p.target.core >= ncores) continue;
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (net_.core(p.target.core).disabled != 0) continue;  // dropped since construction
      if (faults_.is_faulted(p.target.core)) {
        target_faulted_[nid] = 1;  // killed mid-run
        continue;
      }
      if (runtime_faults_ &&
          !noc::route_with_faults(net_.geom, faults_, link_faults_, c, p.target.core).reachable) {
        target_faulted_[nid] = 1;  // fault-disconnected: mid-run drop rule
        continue;
      }
      target_ok_[nid] = 1;
    }
  }

  *ctr_cores_failed_ = snap.extra("fault.cores_failed");
  *ctr_links_failed_ = snap.extra("fault.links_failed");
  *ctr_fault_dropped_ = snap.extra("fault.spikes_dropped");
}

}  // namespace nsc::compass
