// Compass expression of the kernel: a multi-threaded, message-passing
// function-level simulator (paper §III-B).
//
// Each simulated "process" (thread) owns a contiguous, load-balanced range of
// cores and their state. One tick runs the kernel's three phases
// (Listing 1):
//   Synapse+Neuron phase — each process integrates pending axon events and
//     runs leak/threshold/fire for its local neurons; spikes to local cores
//     are written straight into the local delay buffers, spikes to remote
//     cores are appended to a per-destination outbox (message aggregation:
//     all spikes between a pair of processes travel as one "message" per
//     tick, the optimization Compass used to cut MPI message counts).
//   Exchange phase — after a barrier, every process drains the outboxes
//     addressed to it into its own delay buffers (double-buffered, race-free
//     by construction).
//   Commit phase — after a second barrier, recorded output spikes are
//     emitted in canonical (core, neuron) order. Two barriers per tick match
//     the paper's "innovative synchronization scheme requiring just two
//     communication steps regardless of the number of the processors".
//
// Functional behaviour is spike-for-spike identical to tn::TrueNorthSimulator
// for every network, thread count and seed — the property the paper's 413k
// regression methodology checks between Compass and TrueNorth silicon.
#pragma once

#include <memory>
#include <vector>

#include "src/compass/partition.hpp"
#include "src/core/active_set.hpp"
#include "src/core/input_schedule.hpp"
#include "src/core/neuron_hot.hpp"
#include "src/core/network.hpp"
#include "src/kernels/kernels.hpp"
#include "src/noc/route.hpp"
#include "src/obs/obs.hpp"
#include "src/util/barrier.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/prng.hpp"
#include "src/util/thread_pool.hpp"

namespace nsc::compass {

struct Config {
  int threads = 1;                 ///< Simulated processes (1..hardware limit).
  bool aggregate_messages = true;  ///< Ablation: false = one message per spike.
  /// Runtime toggle for the per-phase wall-time metrics (a handful of
  /// monotonic-clock reads per tick; spike output is identical either way).
  /// NSC_OBS=0 compiles the instrumentation out regardless of this flag.
  bool collect_phase_metrics = true;
  /// Shard mode (src/dist/): this simulator owns rank `rank` of a
  /// `ranks`-way balanced split and only computes its own core range.
  /// Spikes bound for other ranks accumulate in per-destination-rank word
  /// batches (dist_outgoing) instead of being delivered; a driver moves
  /// them between processes and applies them with dist_deliver. The
  /// default (ranks = 1) is the plain single-process simulator.
  int rank = 0;
  int ranks = 1;
};

class Simulator final : public core::Simulator {
 public:
  /// The network must outlive the simulator.
  Simulator(const core::Network& net, Config cfg);
  ~Simulator() override;

  void run(core::Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) override;
  [[nodiscard]] core::Tick now() const override { return now_; }
  [[nodiscard]] const core::KernelStats& stats() const override { return stats_; }
  void reset_stats() override;

  /// Checkpoint/restore: full dynamic state (tick, potentials, delay
  /// buffers, runtime fault state, kernel/message counters). A restored run
  /// continues bit-exactly, at any thread count; snapshots interchange with
  /// the TrueNorth expression.
  void save_checkpoint(std::ostream& os) const override;
  void load_checkpoint(std::istream& is) override;

  /// Mid-run faults (docs/RESILIENCE.md): the function-level expression of
  /// what TrueNorth does physically — the partition entries of the dead core
  /// are silenced, its in-flight deliveries are dropped and counted
  /// (fault.spikes_dropped), and spikes whose target the fault kills or
  /// disconnects (per the same noc reachability the chip uses) drop
  /// identically to the TrueNorth expression, preserving 1:1 equivalence
  /// under any campaign. Must only be called between run() calls.
  bool fail_core(core::CoreId c) override;
  bool fail_link(int chip, int dir) override;

  [[nodiscard]] std::int32_t potential(core::CoreId c, int neuron) const {
    return v_[static_cast<std::size_t>(c) * core::kCoreSize + static_cast<std::size_t>(neuron)];
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<CoreRange>& partitions() const noexcept { return parts_; }

  /// Inter-process messages sent so far (aggregated mode counts one per
  /// non-empty (src, dst) pair per tick; per-spike mode counts every spike).
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_; }

  /// Per-phase wall-time metrics and message counters accumulated so far.
  /// Phases: "compute" (synapse+neuron, first barrier), "exchange" (outbox
  /// drain, second barrier), "commit" (canonical-order spike emission).
  /// Counters: "messages", "message_bytes", plus the event-driven trio
  /// "cores_visited" / "cores_skipped" (worklist visit/skip split over live
  /// cores) and "events_delivered" (spike deliveries into delay slots).
  /// Phase timers are empty when collect_phase_metrics is off or NSC_OBS=0;
  /// counters are always live.
  [[nodiscard]] const obs::Registry& metrics() const noexcept { return obs_; }

  /// Wall nanoseconds each partition spent in its compute phase.
  [[nodiscard]] const std::vector<std::uint64_t>& partition_compute_ns() const noexcept {
    return part_compute_ns_;
  }

  /// Load imbalance across partitions: max / mean per-partition compute
  /// time (1.0 = perfectly balanced; 0.0 when no timings were collected).
  [[nodiscard]] double load_imbalance() const noexcept;

  /// Zeroes phase timers, obs counters and per-partition compute times.
  void reset_metrics() noexcept;

  /// A spike delivery bound for a remote partition.
  struct Delivery {
    core::CoreId core;
    std::uint16_t axon;
    std::uint16_t slot;  ///< Absolute (tick + delay) % kDelaySlots at send time.
  };

  /// Batched remote delivery (aggregated mode): up to 64 axon events for one
  /// (core, slot) delay row travel as a single OR-mask, cutting outbox
  /// traffic and turning the exchange phase's per-spike bit sets into word
  /// ORs. Per-spike mode (the ablation) keeps raw Delivery records so its
  /// message count still means "one message per spike". Shard mode reuses
  /// this record verbatim as the inter-rank wire format (src/dist/).
  struct WordDelivery {
    core::CoreId core;
    std::uint16_t slot;
    std::uint16_t word;  ///< Word index within the BitRow256 (axon / 64).
    std::uint64_t bits;  ///< OR-mask of axon bits within that word.
  };

  // ---- Shard-mode stepping API (driven by dist::, no-ops at ranks == 1) ----

  /// This rank's contiguous core range ([0, total_cores) at ranks == 1).
  [[nodiscard]] CoreRange shard() const noexcept { return shard_; }

  /// Runs one full local tick: input injection + compute + intra-rank
  /// exchange for every local partition, then coalesces spikes bound for
  /// other ranks into per-destination word batches sorted by (core, slot,
  /// axon) — byte-deterministic, so identical runs produce identical
  /// packets. Inter-rank deliveries for tick t land no earlier than t+1
  /// (axonal delay >= 1), so the caller exchanges batches after this
  /// returns and applies them with dist_deliver before the next dist_tick.
  void dist_tick(core::Tick t, const core::InputSchedule* inputs, bool record);

  /// Outgoing word batch for destination rank `dst` produced by the last
  /// dist_tick (empty for dst == rank). Valid until dist_clear_outgoing.
  [[nodiscard]] const std::vector<WordDelivery>& dist_outgoing(int dst) const {
    return remote_words_[static_cast<std::size_t>(dst)];
  }
  void dist_clear_outgoing();

  /// Applies a peer rank's word batch into the local delay buffers (OR
  /// semantics — commutative, so arrival order between peers is irrelevant).
  void dist_deliver(const WordDelivery* words, std::size_t n);

  /// Moves the spikes recorded by dist_tick into `out` in canonical
  /// (core, neuron) order (partitions are contiguous ascending ranges).
  void dist_drain_spikes(std::vector<core::Spike>& out);

  /// Folds per-partition counters into stats() and advances now() by
  /// `nticks`; call once per completed run segment (mirrors run()'s tail).
  void dist_end_run(core::Tick nticks);

 private:
  static constexpr int kDelaySlots = core::kMaxDelay + 1;

  [[nodiscard]] util::BitRow256& slot_of(core::CoreId c, core::Tick t) {
    return delay_[static_cast<std::size_t>(c) * kDelaySlots +
                  static_cast<std::size_t>(t % kDelaySlots)];
  }

  void phase_compute(int p, core::Tick t, const core::InputSchedule* inputs, bool record);
  void phase_exchange(int p);

  /// Merges per-partition remote boxes into per-destination-rank word
  /// batches (shard mode; runs on the calling thread after the local
  /// phases). Counters land in local_[0].
  void build_remote_batches();

  /// Folds per-partition LocalStats into stats_/obs counters (run() tail).
  void fold_local_stats();

  /// (Re)derives the per-partition event-driven worklist state (restless +
  /// event bitmaps, always_active flags, live-core/enabled totals) from the
  /// current network/fault/potential/delay-ring state. Called at
  /// construction and after load_checkpoint — worklists are derived state,
  /// deliberately not part of the snapshot format.
  void init_activity();

  /// Re-evaluates every live target against the current fault state, using
  /// the same noc reachability as the TrueNorth expression (mid-run rule:
  /// dead or fault-disconnected targets drop their spikes).
  void refresh_targets_after_fault();

  const core::Network& net_;
  Config cfg_;
  util::CounterPrng prng_;
  core::Tick now_ = 0;
  core::KernelStats stats_;
  CoreRange shard_;  ///< This rank's core range; [0, total_cores) at ranks == 1.
  std::vector<CoreRange> parts_;
  std::unique_ptr<util::ThreadPool> pool_;

  noc::FaultSet faults_;          ///< Static (network) + mid-run failed cores.
  noc::LinkFaultSet link_faults_; ///< Mid-run failed inter-chip links.
  bool runtime_faults_ = false;   ///< Any fault beyond the network's static ones.

  std::vector<std::int32_t> v_;
  std::vector<util::BitRow256> delay_;
  std::vector<util::BitRow256> enabled_;
  std::vector<std::uint16_t> enabled_count_;
  std::vector<std::uint8_t> target_ok_;
  /// Neurons whose target_ok_ was revoked by a mid-run fault (their dropped
  /// spikes count into fault.spikes_dropped, never silently).
  std::vector<std::uint8_t> target_faulted_;

  /// outbox_[src * P + dst]: deliveries produced by src for dst this tick.
  std::vector<std::vector<Delivery>> outbox_;
  /// remote_out_[src_partition * ranks + dst_rank]: shard-mode deliveries
  /// bound for another rank (empty vector of vectors at ranks == 1).
  std::vector<std::vector<Delivery>> remote_out_;
  /// Per-destination-rank word batches built by dist_tick from remote_out_.
  std::vector<std::vector<WordDelivery>> remote_words_;
  /// outbox_words_[src * P + dst]: the same deliveries coalesced into
  /// per-(core, slot, word) OR-masks at the end of src's compute phase
  /// (aggregated mode only; drained by dst's exchange phase).
  std::vector<std::vector<WordDelivery>> outbox_words_;
  /// Per-partition recorded output spikes (core,neuron ascending), per tick.
  std::vector<std::vector<core::Spike>> spike_buf_;
  /// Per-partition stats, merged after every run() to avoid false sharing.
  struct alignas(64) LocalStats {
    std::uint64_t spikes = 0, sops = 0, axon_events = 0, neuron_updates = 0, dropped = 0;
    std::uint64_t fault_dropped = 0;  ///< Drops caused by mid-run faults.
    std::uint64_t messages = 0, message_bytes = 0;
    std::uint64_t compute_ns = 0;  ///< Wall time this partition spent in phase_compute.
    std::uint64_t cores_visited = 0, cores_skipped = 0;  ///< Worklist visit/skip split.
    std::uint64_t events_delivered = 0;  ///< Spike deliveries into delay slots.
    /// Hot-core synapse-phase visits by accumulate strategy (kernel.dispatch_*)
    /// and by mean-crossbar-word-density bucket (kernel.density_b*, buckets of
    /// 8 bits/word) — the per-core density view the dispatcher steers by.
    std::uint64_t dispatch[3] = {0, 0, 0};
    std::uint64_t density[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  };
  std::vector<LocalStats> local_;
  std::uint64_t messages_ = 0;

  /// Phase timers/counters; accumulator references resolved once at
  /// construction (Registry::reset keeps them valid).
  obs::Registry obs_;
  obs::PhaseAccum* ph_compute_ = nullptr;
  obs::PhaseAccum* ph_exchange_ = nullptr;
  obs::PhaseAccum* ph_commit_ = nullptr;
  std::uint64_t* ctr_messages_ = nullptr;
  std::uint64_t* ctr_message_bytes_ = nullptr;
  std::uint64_t* ctr_cores_failed_ = nullptr;
  std::uint64_t* ctr_links_failed_ = nullptr;
  std::uint64_t* ctr_fault_dropped_ = nullptr;
  std::uint64_t* ctr_cores_visited_ = nullptr;
  std::uint64_t* ctr_cores_skipped_ = nullptr;
  std::uint64_t* ctr_events_delivered_ = nullptr;
  std::uint64_t* ctr_kernel_isa_ = nullptr;       ///< kernel.isa_<tier> = 1.
  std::uint64_t* ctr_dispatch_[3] = {};           ///< kernel.dispatch_{sparse,hybrid,dense}.
  std::uint64_t* ctr_density_[8] = {};            ///< kernel.density_b0..b7.
  std::vector<std::uint64_t> part_compute_ns_;

  /// Event-driven worklist state (derived; rebuilt by init_activity). One
  /// ActiveSet per partition: partition boundaries are not 64-bit-aligned,
  /// so sharing bitmap words across threads would race.
  std::vector<core::ActiveSet> active_;
  std::vector<std::uint8_t> always_active_;    ///< Cores with parameter-level idle dynamics.
  std::vector<int> owner_;                     ///< Core -> local partition (-1 = remote rank).
  std::vector<int> rank_owner_;                ///< Core -> rank index (shard mode only).
  std::vector<std::uint64_t> part_enabled_;    ///< Σ enabled_count_ per partition (live).
  std::vector<std::uint64_t> part_live_cores_; ///< Non-faulted cores per partition.

  /// Fast-path constants for homogeneous deterministic cores (derived;
  /// rebuilt by init_activity — see src/core/neuron_hot.hpp).
  std::vector<std::uint8_t> hot_ok_;  ///< Core qualifies for the fast loops.
  std::vector<std::int32_t> hot_;     ///< SoA leak|alpha|floor rows (kHotStride/core).
  std::vector<std::int16_t> wtab_;    ///< Dense per-(core, type) weight rows.
  std::vector<core::HotFire> fire_;   ///< Packed fire-path constants (kCoreSize/core).
  std::vector<std::uint16_t> rowpop_;///< Crossbar row popcounts (kCoreSize/core).

  /// Runtime-dispatched SIMD kernels (src/kernels/): tier resolved once at
  /// construction (NSC_FORCE_ISA honored), then called through `kern_` on
  /// every hot-core visit. Per-core density profiles drive the accumulate
  /// strategy; derived perf-only state, reset by init_activity (cores touch
  /// only their owner partition's entries, so no cross-thread sharing).
  const kernels::Kernels* kern_ = &kernels::select_kernels();
  std::vector<kernels::CoreProfile> profile_;
};

}  // namespace nsc::compass
