// Shared framed-message IPC primitives (docs/SERVE.md, docs/DISTRIBUTED.md).
//
// Promoted out of src/dist/transport so every local multi-process subsystem
// — the sharded backend's rank mesh, the nsc_serve session daemon, and any
// future elastic re-sharding migration path — speaks the same wire unit: one
// frame = an 8-byte (kind, size) header followed by `size` payload bytes.
//
// This directory (together with src/dist/transport*) is the only home
// allowed to touch raw socket/process/poll syscalls (lint_invariants
// INV005/INV006): everything above it talks in framed messages over an
// abstract Channel, so fd hygiene, EOF-based death detection and every
// liveness decision stay auditable in one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace nsc::ipc {

/// One framed message: kind tag + raw payload bytes. The kind namespace is
/// the endpoint pair's contract (dist ranks use dist::MsgKind, serve
/// sessions use serve::Cmd); the transport never interprets it.
struct Frame {
  std::uint32_t kind = 0;
  std::vector<std::uint8_t> payload;
};

/// The frame header as it travels on the wire.
struct FrameHeader {
  std::uint32_t kind = 0;
  std::uint32_t size = 0;
};
static_assert(sizeof(FrameHeader) == 8);

/// Upper bound on a single frame payload: the largest legitimate frame is a
/// checkpoint blob (tens of MB for the biggest test nets); anything past
/// this is a corrupted header, rejected before allocation.
inline constexpr std::uint32_t kMaxFramePayload = 1U << 30;

/// Outcome of a deadline-bounded frame receive.
enum class RecvStatus {
  kOk,       ///< A full frame arrived.
  kClosed,   ///< EOF or error: the peer is gone; the channel is now dead.
  kTimeout,  ///< No bytes for `deadline_ms`: the caller must treat the
             ///< channel as wedged (it may hold a partial frame — kill it).
};

/// A bidirectional framed byte channel over one socket. Blocking send/recv
/// (used on coordinator<->rank and client<->daemon channels); poll-driven
/// endpoints switch to non-blocking and use read_some/write_some instead.
/// A closed/EOF/EPIPE channel turns dead and stays dead — death is state,
/// not an exception.
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel() { close(); }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Channel& operator=(Channel&& other) noexcept;

  /// Sends one frame; false when the peer is gone (EPIPE/reset), after which
  /// the channel is dead. Signals are never raised (MSG_NOSIGNAL).
  bool send_frame(std::uint32_t kind, const void* payload, std::size_t size);

  /// Receives one frame (blocking); false on EOF or a dead channel. Throws
  /// std::runtime_error when the header claims an implausible payload size.
  bool recv_frame(Frame& out);

  /// Deadline-bounded receive: waits at most `deadline_ms` of silence for
  /// progress (the clock resets on every byte, so a slow-but-streaming peer
  /// never times out while a wedged one does). deadline_ms <= 0 degrades to
  /// the blocking recv_frame. On kTimeout the channel may hold a partial
  /// frame — the caller must not reuse it for framed I/O (kill + close it).
  RecvStatus recv_frame_deadline(Frame& out, int deadline_ms);

  /// Non-blocking read of whatever bytes are available (at most one 64 KiB
  /// chunk), appended to `buf`. Returns the byte count (> 0), 0 when the
  /// read would block, or -1 on EOF/error (the channel is closed). The fd
  /// must be in non-blocking mode (set_nonblocking).
  int read_some(std::vector<std::uint8_t>& buf);

  /// Non-blocking write of up to `n` bytes. Returns bytes written (>= 0; 0
  /// when the send would block) or -1 on EPIPE/error (channel closed).
  long write_some(const void* data, std::size_t n);

  void set_nonblocking();
  void close();
  [[nodiscard]] bool alive() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// Poll-driven duplex frame exchange across a peer mesh. Each round sends
/// exactly one frame to every live peer and receives exactly one from each;
/// receive buffers persist across rounds because a fast peer's next-tick
/// frame can arrive early (the dist tick-window protocol tolerates one tick
/// of skew). Peers that reach EOF mid-round are reported dead, not fatal.
class PeerPump {
 public:
  PeerPump(std::vector<Channel>* peers, int self);

  /// `out[r]`: frame to send to live peer r (ignored for self/dead peers).
  /// On return, `in[r]` holds the received frame for every peer that was
  /// alive at entry and stayed alive; `newly_dead` lists peers whose channel
  /// hit EOF this round. With `deadline_ms > 0`, a round that makes no byte
  /// progress for that long declares every still-pending peer dead (same
  /// degrade semantics as EOF) instead of blocking forever — the clock
  /// resets on any progress, so a slow-but-streaming peer never trips it.
  void round(const std::vector<Frame>& out, std::vector<Frame>& in,
             std::vector<int>& newly_dead, int deadline_ms = 0);

 private:
  bool try_extract(std::size_t i, Frame& f);

  std::vector<Channel>* peers_;
  int self_;
  std::vector<std::vector<std::uint8_t>> rbuf_;  ///< Per-peer receive accumulation.
};

// --- POD wire helpers (shared by dist/protocol.hpp and serve/protocol.hpp).

/// Appends the raw bytes of a POD to a payload buffer.
template <class T>
void put_pod(std::vector<std::uint8_t>& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

/// Reads a POD back, advancing `off`; throws on truncated payloads so a
/// malformed frame can never read out of bounds.
template <class T>
T get_pod(const std::vector<std::uint8_t>& buf, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (off > buf.size() || buf.size() - off < sizeof(T)) {
    throw std::runtime_error("ipc: truncated frame payload");
  }
  T v;
  std::memcpy(&v, buf.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

/// Reads `n` PODs as a vector (bounds-checked as one block).
template <class T>
std::vector<T> get_pod_array(const std::vector<std::uint8_t>& buf, std::size_t& off,
                             std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (off > buf.size() || n > (buf.size() - off) / sizeof(T)) {
    throw std::runtime_error("ipc: truncated frame payload");
  }
  std::vector<T> v(n);
  std::memcpy(v.data(), buf.data() + off, n * sizeof(T));
  off += n * sizeof(T);
  return v;
}

}  // namespace nsc::ipc
