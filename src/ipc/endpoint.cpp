#include "src/ipc/endpoint.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace nsc::ipc {

namespace {

/// Fills a sockaddr_un; false when the path does not fit (sun_path is 108
/// bytes on Linux — a silent truncation would bind the wrong file).
bool make_addr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

long long ms_since(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

volatile std::sig_atomic_t g_stop_flag = 0;

extern "C" void stop_signal_handler(int) { g_stop_flag = 1; }

}  // namespace

Listener::Listener(const std::string& path, bool unlink_existing, int backlog) : path_(path) {
  sockaddr_un addr{};
  if (!make_addr(path, addr)) {
    throw std::runtime_error("ipc: socket path empty or too long: '" + path + "'");
  }
  if (unlink_existing) ::unlink(path.c_str());
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("ipc: socket() failed");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, backlog) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("ipc: cannot listen on '" + path +
                             "': " + std::strerror(err));
  }
  // Non-blocking accept: the listener joins the same poll loop as the
  // connections, and a connection that vanishes between poll and accept
  // must not wedge the daemon.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

Channel Listener::accept_channel() {
  if (fd_ < 0) return Channel();
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) return Channel(cfd);
    if (errno == EINTR) continue;
    return Channel();  // EAGAIN (nothing pending) or a transient error.
  }
}

Channel connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (!make_addr(path, addr)) return Channel();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Channel();
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      return Channel(fd);
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return Channel();
  }
}

std::pair<Channel, Channel> channel_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("ipc: socketpair failed");
  }
  return {Channel(fds[0]), Channel(fds[1])};
}

int poll_wait(std::vector<PollItem>& items, int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> idx;
  pfds.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    PollItem& it = items[i];
    it.readable = it.writable = it.hangup = false;
    if (it.fd < 0 || (!it.want_read && !it.want_write)) continue;
    short ev = 0;
    if (it.want_read) ev |= POLLIN;
    if (it.want_write) ev |= POLLOUT;
    pfds.push_back({it.fd, ev, 0});
    idx.push_back(i);
  }
  const int rc = ::poll(pfds.empty() ? nullptr : pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return -1;
    throw std::runtime_error("ipc: poll failed");
  }
  int ready = 0;
  for (std::size_t k = 0; k < pfds.size(); ++k) {
    const short re = pfds[k].revents;
    if (re == 0) continue;
    PollItem& it = items[idx[k]];
    // POLLHUP still delivers buffered bytes; surface it as readable too so
    // the caller drains before seeing EOF.
    if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) it.readable = true;
    if ((re & POLLOUT) != 0) it.writable = true;
    if ((re & (POLLHUP | POLLERR | POLLNVAL)) != 0) it.hangup = true;
    ++ready;
  }
  return ready;
}

int spawn_process(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::invalid_argument("ipc: spawn_process needs argv[0]");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("ipc: fork failed");
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed; nothing of the parent may run in the child.
  }
  return static_cast<int>(pid);
}

int reap_process(int pid) {
  if (pid <= 0) return -1;
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  return status;
}

int reap_process_deadline(int pid, int deadline_ms) {
  if (pid <= 0) return -1;
  int status = 0;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (r < 0 && errno != EINTR) return -1;
    if (ms_since(start) >= deadline_ms) break;
    ::poll(nullptr, 0, 1);  // 1 ms nap between exit probes.
  }
  // The child is stopped or wedged: a plain waitpid would block forever, so
  // escalate to SIGKILL (which also resumes-to-kill a SIGSTOPped process)
  // and then reap unconditionally.
  ::kill(pid, SIGKILL);
  return reap_process(pid);
}

void signal_process(int pid, int signum) {
  if (pid > 0) ::kill(pid, signum);
}

void wedge_forever() {
  for (;;) ::pause();
}

void install_stop_signal(int signum) {
  struct sigaction sa{};
  sa.sa_handler = stop_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: poll must return EINTR so loops notice.
  ::sigaction(signum, &sa, nullptr);
}

bool stop_signal_raised() noexcept { return g_stop_flag != 0; }

void clear_stop_signal() noexcept { g_stop_flag = 0; }

}  // namespace nsc::ipc
