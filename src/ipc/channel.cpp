#include "src/ipc/channel.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace nsc::ipc {

namespace {

bool send_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: peer is gone.
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool recv_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF: peer closed (died or shut down).
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// Milliseconds elapsed since `since` on the monotonic clock (deadlines must
/// survive wall-clock adjustments; std::chrono is allowed here — INV002 only
/// bans time sources inside the deterministic kernel).
long long ms_since(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Deadline-bounded recv_all: the silence window resets on every byte, so
/// only `deadline_ms` of *no progress* times out, not a slow transfer.
RecvStatus recv_all_deadline(int fd, void* data, std::size_t n, int deadline_ms) {
  auto* p = static_cast<std::uint8_t*>(data);
  auto last_progress = std::chrono::steady_clock::now();
  while (n > 0) {
    const long long remaining = deadline_ms - ms_since(last_progress);
    if (remaining <= 0) return RecvStatus::kTimeout;
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kClosed;
    }
    if (rc == 0) return RecvStatus::kTimeout;
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return RecvStatus::kClosed;
    }
    if (r == 0) return RecvStatus::kClosed;  // EOF: peer closed.
    p += r;
    n -= static_cast<std::size_t>(r);
    last_progress = std::chrono::steady_clock::now();
  }
  return RecvStatus::kOk;
}

}  // namespace

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::set_nonblocking() {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

bool Channel::send_frame(std::uint32_t kind, const void* payload, std::size_t size) {
  if (fd_ < 0) return false;
  const FrameHeader h{kind, static_cast<std::uint32_t>(size)};
  if (!send_all(fd_, &h, sizeof h) || (size > 0 && !send_all(fd_, payload, size))) {
    close();
    return false;
  }
  return true;
}

bool Channel::recv_frame(Frame& out) {
  if (fd_ < 0) return false;
  FrameHeader h;
  if (!recv_all(fd_, &h, sizeof h)) {
    close();
    return false;
  }
  if (h.size > kMaxFramePayload) {
    close();
    throw std::runtime_error("ipc: frame header claims an implausible payload size");
  }
  out.kind = h.kind;
  out.payload.resize(h.size);
  if (h.size > 0 && !recv_all(fd_, out.payload.data(), h.size)) {
    close();
    return false;
  }
  return true;
}

RecvStatus Channel::recv_frame_deadline(Frame& out, int deadline_ms) {
  if (deadline_ms <= 0) {
    return recv_frame(out) ? RecvStatus::kOk : RecvStatus::kClosed;
  }
  if (fd_ < 0) return RecvStatus::kClosed;
  FrameHeader h;
  RecvStatus st = recv_all_deadline(fd_, &h, sizeof h, deadline_ms);
  if (st != RecvStatus::kOk) {
    // kTimeout leaves the fd open on purpose: the caller owns the decision
    // (kill + on_rank_death closes it); kClosed means the peer is gone.
    if (st == RecvStatus::kClosed) close();
    return st;
  }
  if (h.size > kMaxFramePayload) {
    close();
    throw std::runtime_error("ipc: frame header claims an implausible payload size");
  }
  out.kind = h.kind;
  out.payload.resize(h.size);
  if (h.size > 0) {
    st = recv_all_deadline(fd_, out.payload.data(), h.size, deadline_ms);
    if (st != RecvStatus::kOk) {
      if (st == RecvStatus::kClosed) close();
      return st;
    }
  }
  return RecvStatus::kOk;
}

int Channel::read_some(std::vector<std::uint8_t>& buf) {
  if (fd_ < 0) return -1;
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t r = ::recv(fd_, chunk, sizeof chunk, 0);
    if (r > 0) {
      buf.insert(buf.end(), chunk, chunk + r);
      return static_cast<int>(r);
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    }
    close();  // EOF or hard error.
    return -1;
  }
}

long Channel::write_some(const void* data, std::size_t n) {
  if (fd_ < 0) return -1;
  for (;;) {
    const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (w >= 0) return w;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    close();
    return -1;
  }
}

PeerPump::PeerPump(std::vector<Channel>* peers, int self) : peers_(peers), self_(self) {
  rbuf_.resize(peers->size());
  for (std::size_t i = 0; i < peers->size(); ++i) {
    if (static_cast<int>(i) != self_) (*peers_)[i].set_nonblocking();
  }
}

bool PeerPump::try_extract(std::size_t i, Frame& f) {
  auto& buf = rbuf_[i];
  if (buf.size() < sizeof(FrameHeader)) return false;
  FrameHeader h;
  std::memcpy(&h, buf.data(), sizeof h);
  if (h.size > kMaxFramePayload) {
    throw std::runtime_error("ipc: peer frame header claims an implausible payload size");
  }
  const std::size_t total = sizeof h + h.size;
  if (buf.size() < total) return false;
  f.kind = h.kind;
  f.payload.assign(buf.begin() + sizeof h, buf.begin() + static_cast<std::ptrdiff_t>(total));
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

void PeerPump::round(const std::vector<Frame>& out, std::vector<Frame>& in,
                     std::vector<int>& newly_dead, int deadline_ms) {
  const std::size_t n = peers_->size();
  in.assign(n, Frame{});
  newly_dead.clear();

  // Pre-encoded outgoing bytes (header + payload) and progress cursors.
  std::vector<std::vector<std::uint8_t>> sbuf(n);
  std::vector<std::size_t> sent(n, 0);
  std::vector<std::uint8_t> got(n, 0);
  std::vector<std::uint8_t> want(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == self_ || !(*peers_)[i].alive()) continue;
    want[i] = 1;
    const FrameHeader h{out[i].kind, static_cast<std::uint32_t>(out[i].payload.size())};
    sbuf[i].resize(sizeof h + out[i].payload.size());
    std::memcpy(sbuf[i].data(), &h, sizeof h);
    if (!out[i].payload.empty()) {
      std::memcpy(sbuf[i].data() + sizeof h, out[i].payload.data(), out[i].payload.size());
    }
    // A fast peer's frame may already be buffered from a previous round.
    if (try_extract(i, in[i])) got[i] = 1;
  }

  const auto mark_dead = [&](std::size_t i) {
    (*peers_)[i].close();
    want[i] = 0;
    sent[i] = sbuf[i].size();
    newly_dead.push_back(static_cast<int>(i));
  };

  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    std::vector<pollfd> pfds;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < n; ++i) {
      if (want[i] == 0) continue;
      short ev = 0;
      if (got[i] == 0) ev |= POLLIN;
      if (sent[i] < sbuf[i].size()) ev |= POLLOUT;
      if (ev == 0) continue;
      pfds.push_back({(*peers_)[i].fd(), ev, 0});
      idx.push_back(i);
    }
    if (pfds.empty()) break;
    int timeout = -1;
    if (deadline_ms > 0) {
      const long long remaining = deadline_ms - ms_since(last_progress);
      if (remaining <= 0) {
        // No byte moved in `deadline_ms`: every still-pending peer is
        // declared dead (degrade semantics, same as EOF) so this rank can
        // never wedge behind a hung one. A live coordinator will kill the
        // actual culprit; the collateral closes just desynchronize us from
        // a world that is being torn down or rolled back anyway.
        for (std::size_t i = 0; i < n; ++i) {
          if (want[i] != 0 && (got[i] == 0 || sent[i] < sbuf[i].size())) mark_dead(i);
        }
        continue;  // Pending set is now empty -> loop exits via break.
      }
      timeout = static_cast<int>(remaining);
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("ipc: poll failed during peer exchange");
    }
    if (rc == 0) continue;  // Timeout: next iteration re-checks the clock.
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      const std::size_t i = idx[k];
      const short re = pfds[k].revents;
      if (re == 0) continue;
      if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && got[i] == 0) {
        std::uint8_t chunk[65536];
        const ssize_t r = ::recv((*peers_)[i].fd(), chunk, sizeof chunk, 0);
        if (r > 0) {
          rbuf_[i].insert(rbuf_[i].end(), chunk, chunk + r);
          if (try_extract(i, in[i])) got[i] = 1;
          last_progress = std::chrono::steady_clock::now();
        } else if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
          mark_dead(i);
          continue;
        }
      }
      if ((re & POLLOUT) != 0 && want[i] != 0 && sent[i] < sbuf[i].size()) {
        const ssize_t w = ::send((*peers_)[i].fd(), sbuf[i].data() + sent[i],
                                 sbuf[i].size() - sent[i], MSG_NOSIGNAL);
        if (w > 0) {
          sent[i] += static_cast<std::size_t>(w);
          last_progress = std::chrono::steady_clock::now();
        } else if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          mark_dead(i);
        }
      }
    }
  }
}

}  // namespace nsc::ipc
