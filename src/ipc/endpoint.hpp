// IPC endpoints: Unix-domain listeners/connectors, a poll-set wrapper for
// event-loop servers, process spawn/reap/signal helpers, and async-signal
// stop flags. Together with channel.{hpp,cpp} this is the sanctioned home
// of raw socket/process/poll syscalls (lint_invariants INV005/INV006);
// higher layers (src/serve, tools) must come through these helpers so fd
// hygiene and liveness decisions stay auditable in one place.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/ipc/channel.hpp"

namespace nsc::ipc {

/// A listening Unix-domain stream socket bound to a filesystem path. The
/// path is unlinked again on close so a cleanly shut down daemon leaves no
/// stale socket behind; `unlink_existing` additionally removes a stale one
/// left by a crashed predecessor before binding.
class Listener {
 public:
  Listener() = default;
  /// Binds and listens; throws std::runtime_error on failure (path too long
  /// for sockaddr_un, bind/listen error, or the path exists and
  /// `unlink_existing` is false).
  explicit Listener(const std::string& path, bool unlink_existing = true, int backlog = 64);
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;

  /// Accepts one pending connection as a Channel; a dead (not alive())
  /// channel when nothing is pending (the fd is non-blocking) or on error.
  [[nodiscard]] Channel accept_channel();

  void close();
  [[nodiscard]] bool alive() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a Unix-domain listener; a dead channel on failure (no such
/// socket, refused, path too long). Blocking-mode fd; callers that join a
/// poll loop switch it with set_nonblocking().
[[nodiscard]] Channel connect_unix(const std::string& path);

/// A connected socketpair as two Channels (in-process test harnesses).
[[nodiscard]] std::pair<Channel, Channel> channel_pair();

/// One fd of interest in a poll_wait call.
struct PollItem {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  // Outputs, valid after poll_wait returns:
  bool readable = false;  ///< Data (or EOF/err — read to find out) pending.
  bool writable = false;
  bool hangup = false;    ///< POLLHUP/POLLERR/POLLNVAL.
};

/// Waits up to `timeout_ms` (-1 = forever) for events on `items`. Returns
/// the number of ready items, 0 on timeout, or -1 when interrupted by a
/// signal (EINTR) so the caller can re-check its stop flag. Throws on real
/// poll errors.
int poll_wait(std::vector<PollItem>& items, int timeout_ms);

/// Forks and execs `argv` (argv[0] = binary path). Returns the child pid;
/// throws std::runtime_error when fork fails. A failed exec exits the child
/// with status 127.
[[nodiscard]] int spawn_process(const std::vector<std::string>& argv);

/// Waits for a spawned process to exit; returns the raw wait status or -1
/// for an invalid pid.
int reap_process(int pid);

/// Deadline-bounded reap: polls for the exit up to `deadline_ms`, then
/// SIGKILLs and reaps unconditionally (guards teardown against a stopped or
/// wedged child that will never exit on its own).
int reap_process_deadline(int pid, int deadline_ms);

/// Sends `signum` (e.g. SIGTERM, SIGKILL, SIGSTOP) to a spawned process.
void signal_process(int pid, int signum);

/// Parks the calling process forever without closing its fds — the
/// in-process twin of SIGSTOP for wedged-node fault injection.
[[noreturn]] void wedge_forever();

/// Installs a handler for `signum` that sets the shared stop flag (no
/// SA_RESTART, so a blocking poll returns EINTR and the event loop can see
/// the flag immediately). Async-signal-safe by construction: the handler
/// only stores to a sig_atomic_t.
void install_stop_signal(int signum);

/// True once any install_stop_signal()-registered signal has been received.
[[nodiscard]] bool stop_signal_raised() noexcept;

/// Clears the stop flag (test isolation).
void clear_stop_signal() noexcept;

}  // namespace nsc::ipc
