// Coverage-aware no-unwind process exit, shared by every subsystem that
// terminates a forked child (src/dist rank processes, tests that probe
// child-exit contracts).
#pragma once

namespace nsc::util {

/// Terminates the calling process without unwinding — no atexit handlers
/// and no static destructors, because a forked child must not re-run
/// teardown the parent also owns (test-framework state, buffered stdio).
/// Under a --coverage build the gcov counters are flushed first so the
/// child's execution still counts toward the CI coverage gate.
[[noreturn]] void exit_process_nounwind(int status) noexcept;

}  // namespace nsc::util
