// Streaming statistics accumulators used by the measurement harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace nsc::util {

/// Welford mean/variance accumulator; numerically stable for long runs.
class RunningStat {
 public:
  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins, matching how the power-meter emulation bins current samples.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t bin_count(int i) const noexcept {
    return counts_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int bins() const noexcept { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(int i) const noexcept;
  /// Value below which `q` (0..1) of the samples fall (linear within a bin).
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace nsc::util
