// ASCII table/contour printers: every bench regenerates its paper figure as a
// table (rows/series) or a contour grid on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nsc::util {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` significant digits.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 4);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `sig` significant digits, using engineering-friendly
/// fixed/scientific selection (e.g. "46.2", "6.5e+04").
[[nodiscard]] std::string format_sig(double v, int sig = 4);

/// Prints a 2D grid z(x, y) as a contour-style table: one row per y value
/// (descending, so the plot reads like the paper's figures), one column per
/// x value. Used for the Fig. 5 characterization surfaces.
void print_grid(std::ostream& os, const std::string& title, const std::string& x_name,
                const std::string& y_name, const std::vector<double>& xs,
                const std::vector<double>& ys,
                const std::vector<std::vector<double>>& z,  // z[yi][xi]
                int precision = 3);

}  // namespace nsc::util
