// Pseudo-random number generation for the stochastic neuron modes.
//
// TrueNorth places one LFSR in every core and draws from it in a fixed
// hardware-defined order; Compass replays the identical order so the two
// expressions stay spike-for-spike equal (paper §VI-A). A software
// reproduction that parallelizes over threads cannot cheaply guarantee a
// global draw order, so our *primary* generator is counter-based: each draw
// is a stateless mix of (seed, core, neuron, tick, salt). Any evaluation
// order yields identical streams, which is exactly the property the paper's
// 1:1 regression methodology needs. The Galois LFSR the hardware uses is
// also provided (and unit-tested) for fidelity and for the PRNG ablation
// bench.
#pragma once

#include <cstdint>

namespace nsc::util {

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Counter-based PRNG: stateless draws keyed by logical coordinates.
///
/// Draws are independent of evaluation order, so the TrueNorth and Compass
/// expressions (and any Compass thread count) consume identical randomness.
class CounterPrng {
 public:
  constexpr explicit CounterPrng(std::uint64_t seed = 0) noexcept : seed_(seed) {}

  [[nodiscard]] constexpr std::uint64_t seed() const noexcept { return seed_; }

  /// 64-bit draw keyed by (core, neuron, tick, salt).
  [[nodiscard]] constexpr std::uint64_t draw(std::uint32_t core, std::uint32_t neuron,
                                             std::uint64_t tick,
                                             std::uint32_t salt) const noexcept {
    std::uint64_t k = seed_;
    k = mix64(k ^ (std::uint64_t{core} << 32 | neuron));
    k = mix64(k ^ tick);
    k = mix64(k ^ salt);
    return k;
  }

  /// Uniform draw in [0, 2^bits), bits in [1, 64].
  [[nodiscard]] constexpr std::uint64_t draw_bits(std::uint32_t core, std::uint32_t neuron,
                                                  std::uint64_t tick, std::uint32_t salt,
                                                  int bits) const noexcept {
    return draw(core, neuron, tick, salt) >> (64 - bits);
  }

  /// Bernoulli draw with probability p16 / 2^16.
  [[nodiscard]] constexpr bool bernoulli16(std::uint32_t core, std::uint32_t neuron,
                                           std::uint64_t tick, std::uint32_t salt,
                                           std::uint32_t p16) const noexcept {
    return (draw(core, neuron, tick, salt) >> 48) < p16;
  }

 private:
  std::uint64_t seed_;
};

/// 16-bit Galois LFSR with taps 16,15,13,4 (maximal period 2^16 - 1), the
/// style of generator a neurosynaptic core implements in silicon.
class GaloisLfsr16 {
 public:
  explicit GaloisLfsr16(std::uint16_t seed = 0xACE1u) noexcept : state_(seed ? seed : 1) {}

  /// Advances one step and returns the new 16-bit state.
  std::uint16_t next() noexcept {
    const std::uint16_t lsb = state_ & 1u;
    state_ >>= 1;
    if (lsb != 0) state_ ^= kTaps;
    return state_;
  }

  [[nodiscard]] std::uint16_t state() const noexcept { return state_; }

  /// Period of the maximal-length 16-bit LFSR.
  static constexpr std::uint32_t kPeriod = 65535;

 private:
  static constexpr std::uint16_t kTaps = 0xB400u;  // x^16 + x^15 + x^13 + x^4 + 1
  std::uint16_t state_;
};

/// Sequential xorshift64* generator for workload/network generation (not used
/// inside the simulated neuron update, where order-independence matters).
class Xoshiro {
 public:
  explicit Xoshiro(std::uint64_t seed = 1) noexcept : s_(seed ? mix64(seed) : 0x1234567ULL) {}

  std::uint64_t next() noexcept {
    s_ ^= s_ >> 12;
    s_ ^= s_ << 25;
    s_ ^= s_ >> 27;
    return s_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept { return next() % n; }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s_;
};

/// Fisher–Yates choice of k distinct values in [0, n); deterministic per rng state.
/// Writes the chosen values (ascending order not guaranteed) into out[0..k).
void sample_distinct(Xoshiro& rng, int n, int k, int* out);

}  // namespace nsc::util
