// Bit-manipulation helpers shared by the crossbar and router implementations.
#pragma once

#include <bit>
#include <cstdint>

namespace nsc::util {

/// Number of set bits in a 64-bit word.
///
/// On x86-64 built without -mpopcnt, std::popcount lowers to a libgcc call
/// (__popcountdi2); the synaptic hot path issues one popcount per crossbar
/// word, so the call overhead is measurable. The SWAR reduction below inlines
/// to ~12 data ops. Targets with a native instruction keep std::popcount.
[[nodiscard]] constexpr int popcount64(std::uint64_t w) noexcept {
#if defined(__x86_64__) && !defined(__POPCNT__)
  w -= (w >> 1) & 0x5555555555555555ULL;
  w = (w & 0x3333333333333333ULL) + ((w >> 2) & 0x3333333333333333ULL);
  w = (w + (w >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  return static_cast<int>((w * 0x0101010101010101ULL) >> 56);
#else
  return std::popcount(w);
#endif
}

/// Index of the lowest set bit; undefined for w == 0.
[[nodiscard]] constexpr int lowest_set(std::uint64_t w) noexcept { return std::countr_zero(w); }

/// Clears the lowest set bit of `w` and returns the new value.
[[nodiscard]] constexpr std::uint64_t clear_lowest(std::uint64_t w) noexcept { return w & (w - 1); }

/// Rounds `v` up to the next multiple of `m` (m must be a power of two).
[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t v, std::size_t m) noexcept {
  return (v + m - 1) & ~(m - 1);
}

/// Integer ceiling division.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T a, T b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace nsc::util
