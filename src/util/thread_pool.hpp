// Minimal persistent thread pool used by the Compass simulator.
//
// Workers are created once and reused for every simulated tick; the
// alternative (spawning threads per tick) would dominate run time at the
// kernel's millisecond tick granularity.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nsc::util {

class ThreadPool {
 public:
  /// Creates `n` worker threads (n >= 1). Worker 0 is the calling thread's
  /// partner: run_all executes index 0 inline to keep single-thread runs
  /// free of cross-thread latency.
  explicit ThreadPool(int n);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept { return n_; }

  /// Runs fn(i) for every worker index i in [0, size()) and waits for all.
  void run_all(const std::function<void(int)>& fn);

 private:
  void worker_loop(int index);

  int n_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace nsc::util
