// Synchronization barrier for the Compass semi-synchronous simulation loop.
//
// The paper's kernel advances all threads through a barrier at the end of
// every simulated time step (Listing 1, line 21). A sense-reversing spinning
// barrier keeps per-tick synchronization cost low for the small thread counts
// a single host runs; std::barrier is avoided because its completion-function
// machinery adds latency we would pay once per simulated millisecond.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace nsc::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(int participants) noexcept
      : participants_(participants), remaining_(participants), sense_(false) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants have arrived. Reusable across phases.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      // Spin first (ticks are short, so the straggler usually arrives within
      // microseconds), then yield: when participants outnumber hardware
      // threads, the straggler needs this CPU to make progress at all.
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > kSpinLimit) std::this_thread::yield();
      }
    }
  }

  [[nodiscard]] int participants() const noexcept { return participants_; }

 private:
  static constexpr int kSpinLimit = 1024;

  const int participants_;
  std::atomic<int> remaining_;
  std::atomic<bool> sense_;
};

}  // namespace nsc::util
