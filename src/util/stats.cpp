#include "src/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nsc::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(bins), 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) noexcept {
  const int n = bins();
  int i = static_cast<int>((x - lo_) / (hi_ - lo_) * n);
  i = std::clamp(i, 0, n - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(int i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / bins();
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  const double width = (hi_ - lo_) / bins();
  for (int i = 0; i < bins(); ++i) {
    const double c = static_cast<double>(counts_[static_cast<std::size_t>(i)]);
    if (cum + c >= target) {
      const double frac = c > 0 ? (target - cum) / c : 0.0;
      return bin_lo(i) + frac * width;
    }
    cum += c;
  }
  return hi_;
}

}  // namespace nsc::util
