#include "src/util/process_exit.hpp"

#include <cstdlib>

#ifdef NSC_COVERAGE
// gcov's flush hook: processes leaving via _Exit (no atexit) must dump their
// counters explicitly or the coverage gate never sees their execution. The
// reference must be strong — weak undefined symbols do not extract the
// definition from the static libgcov archive.
extern "C" void __gcov_dump();  // NOLINT(bugprone-reserved-identifier)
#endif

namespace nsc::util {

void exit_process_nounwind(int status) noexcept {
#ifdef NSC_COVERAGE
  __gcov_dump();
#endif
  std::_Exit(status);
}

}  // namespace nsc::util
