#include "src/util/prng.hpp"

#include <cassert>
#include <vector>

namespace nsc::util {

void sample_distinct(Xoshiro& rng, int n, int k, int* out) {
  assert(k >= 0 && k <= n);
  // Partial Fisher–Yates over an index pool; O(n) setup, O(k) draws. The pool
  // is small (n <= 256 for a crossbar row) so setup cost is irrelevant.
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - i)));
    std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
    out[i] = pool[static_cast<std::size_t>(i)];
  }
}

}  // namespace nsc::util
