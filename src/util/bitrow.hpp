// Fixed 256-bit row: the unit of crossbar storage (one axon's outgoing connections).
//
// A TrueNorth crossbar row is exactly 256 binary synapses; we store it as four
// 64-bit words so the event-driven synaptic phase can iterate set bits with
// countr_zero in O(active synapses), the property the kernel's efficiency
// argument rests on (paper §III).
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bits.hpp"

namespace nsc::util {

class BitRow256 {
 public:
  static constexpr int kBits = 256;
  static constexpr int kWords = 4;

  constexpr BitRow256() noexcept : words_{} {}

  void set(int i) noexcept { words_[static_cast<unsigned>(i) >> 6] |= word_bit(i); }
  void clear(int i) noexcept { words_[static_cast<unsigned>(i) >> 6] &= ~word_bit(i); }
  [[nodiscard]] bool test(int i) const noexcept {
    return (words_[static_cast<unsigned>(i) >> 6] & word_bit(i)) != 0;
  }
  void reset() noexcept { words_.fill(0); }

  [[nodiscard]] int count() const noexcept {
    int n = 0;
    for (std::uint64_t w : words_) n += popcount64(w);
    return n;
  }

  [[nodiscard]] bool any() const noexcept {
    return (words_[0] | words_[1] | words_[2] | words_[3]) != 0;
  }

  [[nodiscard]] std::uint64_t word(int i) const noexcept {
    return words_[static_cast<std::size_t>(i)];
  }
  void set_word(int i, std::uint64_t v) noexcept { words_[static_cast<std::size_t>(i)] = v; }

  /// Visits the index of every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (int wi = 0; wi < kWords; ++wi) {
      std::uint64_t w = words_[static_cast<std::size_t>(wi)];
      while (w != 0) {
        fn(wi * 64 + lowest_set(w));
        w = clear_lowest(w);
      }
    }
  }

  /// Word-level iteration: visits every nonzero word of (this & mask) as
  /// fn(base_index, word), base_index ascending in steps of 64. The caller
  /// extracts bits with ctz, so integration cost tracks popcount and the
  /// per-word popcount can be batched (one instruction per 64 synapses).
  template <typename Fn>
  void for_each_masked_word(const BitRow256& mask, Fn&& fn) const {
    for (int wi = 0; wi < kWords; ++wi) {
      const std::uint64_t w =
          words_[static_cast<std::size_t>(wi)] & mask.words_[static_cast<std::size_t>(wi)];
      if (w != 0) fn(wi * 64, w);
    }
  }

  /// Visits the index of every set bit of (this & mask) in ascending order,
  /// without materializing the intersection row.
  template <typename Fn>
  void for_each_set_masked(const BitRow256& mask, Fn&& fn) const {
    for_each_masked_word(mask, [&](int base, std::uint64_t w) {
      do {
        fn(base + lowest_set(w));
        w = clear_lowest(w);
      } while (w != 0);
    });
  }

  /// Popcount of (this & mask), batched per word.
  [[nodiscard]] int and_count(const BitRow256& mask) const noexcept {
    int n = 0;
    for (int wi = 0; wi < kWords; ++wi) {
      n += popcount64(words_[static_cast<std::size_t>(wi)] &
                      mask.words_[static_cast<std::size_t>(wi)]);
    }
    return n;
  }

  /// ORs `bits` into word `i` (batched delivery: one OR lands up to 64 axons).
  void or_word(int i, std::uint64_t bits) noexcept { words_[static_cast<std::size_t>(i)] |= bits; }

  BitRow256& operator|=(const BitRow256& o) noexcept {
    for (int i = 0; i < kWords; ++i) {
      words_[static_cast<std::size_t>(i)] |= o.words_[static_cast<std::size_t>(i)];
    }
    return *this;
  }

  friend bool operator==(const BitRow256&, const BitRow256&) = default;

 private:
  static constexpr std::uint64_t word_bit(int i) noexcept {
    return std::uint64_t{1} << (static_cast<unsigned>(i) & 63U);
  }

  std::array<std::uint64_t, kWords> words_;
};

}  // namespace nsc::util
