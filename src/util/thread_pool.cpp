#include "src/util/thread_pool.hpp"

#include <cassert>

namespace nsc::util {

ThreadPool::ThreadPool(int n) : n_(n) {
  assert(n >= 1);
  threads_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_all(const std::function<void(int)>& fn) {
  if (n_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    outstanding_ = n_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--outstanding_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace nsc::util
