// CSV writer: benches optionally dump their series for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace nsc::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<double>& values);
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Escapes a cell per RFC 4180 (quotes cells containing comma/quote/newline).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace nsc::util
