#include "src/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace nsc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label, const std::vector<double>& values,
                            int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_sig(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << "  ";
      os << cell;
      for (std::size_t p = cell.size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_sig(double v, int sig) {
  char buf[64];
  if (v == 0.0) {
    std::snprintf(buf, sizeof buf, "0");
    return buf;
  }
  const double a = std::fabs(v);
  if (a >= 1e-3 && a < 1e6) {
    const int int_digits = a >= 1.0 ? static_cast<int>(std::floor(std::log10(a))) + 1 : 1;
    const int frac = std::max(0, sig - int_digits);
    std::snprintf(buf, sizeof buf, "%.*f", frac, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*e", std::max(0, sig - 1), v);
  }
  return buf;
}

void print_grid(std::ostream& os, const std::string& title, const std::string& x_name,
                const std::string& y_name, const std::vector<double>& xs,
                const std::vector<double>& ys, const std::vector<std::vector<double>>& z,
                int precision) {
  os << title << '\n';
  std::vector<std::string> header;
  header.reserve(xs.size() + 1);
  header.push_back(y_name + " \\ " + x_name);
  for (double x : xs) header.push_back(format_sig(x, 4));
  Table t(std::move(header));
  // Descending y so the highest firing-rate / voltage row prints on top,
  // matching the orientation of the paper's contour plots.
  for (std::size_t yi = ys.size(); yi-- > 0;) {
    t.add_row_numeric(format_sig(ys[yi], 4), z[yi], precision);
  }
  t.print(os);
}

}  // namespace nsc::util
