#include "src/util/csv.hpp"

#include <stdexcept>

#include "src/util/table.hpp"

namespace nsc::util {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_sig(v, 9));
  add_row(cells);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) throw std::runtime_error("CsvWriter: column count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace nsc::util
