// Mesh routing: deadlock-free X-then-Y dimension-order routing (paper §III-C,
// citing Dally & Seitz), fault-avoiding detours, and chip-boundary crossing
// accounting for the merge–split structures (paper Fig. 3(c)).
//
// Every spike is a single-word packet injected by the source core's router
// and passed hop-by-hop, first along x then along y, until it reaches the
// target core where it fans out through the crossbar. Chips tile seamlessly:
// the global mesh coordinate system spans chip boundaries, and each boundary
// crossing passes through a merge (serialize onto the shared inter-chip link)
// and a split (fan back out to the tagged row/column).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.hpp"

namespace nsc::noc {

/// Summary of one packet's path through the mesh.
struct RouteInfo {
  int hops = 0;             ///< Router-to-router traversals (0 for local fan-out).
  int chip_crossings = 0;   ///< Inter-chip merge–split traversals.
  bool reachable = true;    ///< False only if faults disconnect src from dst.
};

/// Set of faulted (disabled) cores; routing detours around them. The paper's
/// fault-tolerance claim (§III-C: "if a core fails, we disable it and route
/// spike events around it") is modelled by shortest-path detours.
class FaultSet {
 public:
  FaultSet() = default;
  explicit FaultSet(int total_cores) : faulted_(static_cast<std::size_t>(total_cores), 0) {}

  void mark(core::CoreId c) {
    if (faulted_.empty()) return;
    faulted_[static_cast<std::size_t>(c)] = 1;
    ++count_;
  }
  [[nodiscard]] bool is_faulted(core::CoreId c) const {
    return !faulted_.empty() && faulted_[static_cast<std::size_t>(c)] != 0;
  }
  [[nodiscard]] int count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  std::vector<std::uint8_t> faulted_;
  int count_ = 0;
};

/// Set of failed directed inter-chip merge–split links. A link is identified
/// by (chip, dir) with dir 0=E (toward +x neighbor), 1=W, 2=N (toward -y),
/// 3=S — the same indexing as noc::InterChipTraffic. Routing treats a failed
/// link as an impassable chip-boundary segment: packets must detour through
/// another chip row/column, or the destination becomes unreachable.
class LinkFaultSet {
 public:
  LinkFaultSet() = default;
  explicit LinkFaultSet(int chips) : dead_(static_cast<std::size_t>(chips) * 4, 0) {}

  void mark(int chip, int dir) {
    if (dead_.empty() || blocked(chip, dir)) return;
    dead_[static_cast<std::size_t>(chip) * 4 + static_cast<std::size_t>(dir)] = 1;
    ++count_;
  }
  [[nodiscard]] bool blocked(int chip, int dir) const {
    return !dead_.empty() &&
           dead_[static_cast<std::size_t>(chip) * 4 + static_cast<std::size_t>(dir)] != 0;
  }
  [[nodiscard]] int count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  std::vector<std::uint8_t> dead_;
  int count_ = 0;
};

/// Manhattan distance between two cores in global mesh coordinates.
[[nodiscard]] int manhattan(const core::Geometry& g, core::CoreId a, core::CoreId b);

/// Fault-free dimension-order route: hops = |Δx| + |Δy|; chip crossings are
/// counted along the X leg then the Y leg.
[[nodiscard]] RouteInfo route_dor(const core::Geometry& g, core::CoreId src, core::CoreId dst);

/// Route avoiding faulted cores. Falls back to route_dor when the DOR path is
/// clean; otherwise finds a shortest detour (BFS over non-faulted cores).
/// Endpoint cores themselves must not be faulted (callers disable neurons on
/// faulted cores, so no traffic originates or terminates there).
[[nodiscard]] RouteInfo route_with_faults(const core::Geometry& g, const FaultSet& faults,
                                          core::CoreId src, core::CoreId dst);

/// Route avoiding both faulted cores and failed inter-chip links. Falls back
/// to route_dor when the DOR path is clean; otherwise BFS over healthy cores
/// and live links. Exact chip crossings are counted along the detour.
[[nodiscard]] RouteInfo route_with_faults(const core::Geometry& g, const FaultSet& faults,
                                          const LinkFaultSet& links, core::CoreId src,
                                          core::CoreId dst);

/// True if the straight DOR path from src to dst passes through a faulted
/// intermediate core (endpoints excluded).
[[nodiscard]] bool dor_path_blocked(const core::Geometry& g, const FaultSet& faults,
                                    core::CoreId src, core::CoreId dst);

/// True if the straight DOR path from src to dst crosses a failed inter-chip
/// link (X leg at the source row, then Y leg at the target column).
[[nodiscard]] bool dor_links_blocked(const core::Geometry& g, const LinkFaultSet& links,
                                     core::CoreId src, core::CoreId dst);

}  // namespace nsc::noc
