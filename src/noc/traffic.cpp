#include "src/noc/traffic.hpp"

#include <algorithm>
#include <stdexcept>

namespace nsc::noc {

using core::CoreId;
using core::Geometry;

InterChipTraffic::InterChipTraffic(const Geometry& g)
    : geom_(g),
      chips_(g.chips()),
      tick_counts_(static_cast<std::size_t>(chips_) * 4, 0),
      link_totals_(static_cast<std::size_t>(chips_) * 4, 0) {}

void InterChipTraffic::bump(int chip, LinkDir dir) {
  const std::size_t i = static_cast<std::size_t>(chip) * 4 + static_cast<std::size_t>(dir);
  ++tick_counts_[i];
  ++link_totals_[i];
  ++total_;
}

void InterChipTraffic::record_route(CoreId src, CoreId dst) {
  if (chips_ <= 1 || src == dst) return;
  const auto cs = geom_.chip_xy(src);
  const auto cd = geom_.chip_xy(dst);
  // X leg: the packet stays in the source chip row; it exits east/west once
  // per chip-column boundary between cs.x and cd.x.
  if (cd.x > cs.x) {
    for (int cx = cs.x; cx < cd.x; ++cx) bump(cs.y * geom_.chips_x + cx, LinkDir::kEast);
  } else {
    for (int cx = cs.x; cx > cd.x; --cx) bump(cs.y * geom_.chips_x + cx, LinkDir::kWest);
  }
  // Y leg: at the destination chip column.
  if (cd.y > cs.y) {
    for (int cy = cs.y; cy < cd.y; ++cy) bump(cy * geom_.chips_x + cd.x, LinkDir::kSouth);
  } else {
    for (int cy = cs.y; cy > cd.y; --cy) bump(cy * geom_.chips_x + cd.x, LinkDir::kNorth);
  }
}

void InterChipTraffic::end_tick() {
  std::uint32_t m = 0;
  for (std::uint32_t c : tick_counts_) m = std::max(m, c);
  max_per_tick_ = std::max<std::uint64_t>(max_per_tick_, m);
  std::fill(tick_counts_.begin(), tick_counts_.end(), 0);
}

void InterChipTraffic::restore(const std::vector<std::uint64_t>& link_totals, std::uint64_t total,
                               std::uint64_t max_per_tick) {
  if (link_totals.size() != link_totals_.size()) {
    throw std::length_error("traffic restore: link count does not match geometry");
  }
  link_totals_ = link_totals;
  total_ = total;
  max_per_tick_ = max_per_tick;
  std::fill(tick_counts_.begin(), tick_counts_.end(), 0);
}

void InterChipTraffic::reset() {
  std::fill(tick_counts_.begin(), tick_counts_.end(), 0);
  std::fill(link_totals_.begin(), link_totals_.end(), 0);
  max_per_tick_ = 0;
  total_ = 0;
}

}  // namespace nsc::noc
