#include "src/noc/route.hpp"

#include <algorithm>
#include <cstdlib>
#include <queue>

#include "src/noc/traffic.hpp"

namespace nsc::noc {

using core::CoreId;
using core::Geometry;

int manhattan(const Geometry& g, CoreId a, CoreId b) {
  const auto pa = g.global_xy(a);
  const auto pb = g.global_xy(b);
  return std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
}

namespace {

/// Chip boundaries crossed moving along one axis from global coordinate a to
/// b, where each chip spans `span` cores on that axis.
int crossings_1d(int a, int b, int span) {
  return std::abs(a / span - b / span);
}

}  // namespace

RouteInfo route_dor(const Geometry& g, CoreId src, CoreId dst) {
  RouteInfo r;
  if (src == dst) return r;
  const auto ps = g.global_xy(src);
  const auto pd = g.global_xy(dst);
  r.hops = std::abs(pd.x - ps.x) + std::abs(pd.y - ps.y);
  // X leg at row ps.y, then Y leg at column pd.x.
  r.chip_crossings =
      crossings_1d(ps.x, pd.x, g.cores_x) + crossings_1d(ps.y, pd.y, g.cores_y);
  return r;
}

bool dor_path_blocked(const Geometry& g, const FaultSet& faults, CoreId src, CoreId dst) {
  if (faults.empty() || src == dst) return false;
  const auto ps = g.global_xy(src);
  const auto pd = g.global_xy(dst);
  // X leg along row ps.y. The turn core (pd.x, ps.y) is an intermediate hop
  // and is checked unless it is the destination itself.
  if (ps.x != pd.x) {
    const int sx = ps.x < pd.x ? 1 : -1;
    for (int x = ps.x + sx;; x += sx) {
      if (x == pd.x && ps.y == pd.y) break;  // destination, excluded
      if (faults.is_faulted(g.core_at_global(x, ps.y))) return true;
      if (x == pd.x) break;
    }
  }
  // Y leg along column pd.x, destination excluded.
  if (ps.y != pd.y) {
    const int sy = ps.y < pd.y ? 1 : -1;
    for (int y = ps.y + sy; y != pd.y; y += sy) {
      if (faults.is_faulted(g.core_at_global(pd.x, y))) return true;
    }
  }
  return false;
}

bool dor_links_blocked(const Geometry& g, const LinkFaultSet& links, CoreId src, CoreId dst) {
  if (links.empty() || src == dst || g.chips() <= 1) return false;
  const auto cs = g.chip_xy(src);
  const auto cd = g.chip_xy(dst);
  // X leg in the source chip row (matches InterChipTraffic::record_route).
  if (cd.x > cs.x) {
    for (int cx = cs.x; cx < cd.x; ++cx) {
      if (links.blocked(cs.y * g.chips_x + cx, static_cast<int>(LinkDir::kEast))) return true;
    }
  } else {
    for (int cx = cs.x; cx > cd.x; --cx) {
      if (links.blocked(cs.y * g.chips_x + cx, static_cast<int>(LinkDir::kWest))) return true;
    }
  }
  // Y leg at the destination chip column.
  if (cd.y > cs.y) {
    for (int cy = cs.y; cy < cd.y; ++cy) {
      if (links.blocked(cy * g.chips_x + cd.x, static_cast<int>(LinkDir::kSouth))) return true;
    }
  } else {
    for (int cy = cs.y; cy > cd.y; --cy) {
      if (links.blocked(cy * g.chips_x + cd.x, static_cast<int>(LinkDir::kNorth))) return true;
    }
  }
  return false;
}

RouteInfo route_with_faults(const Geometry& g, const FaultSet& faults, const LinkFaultSet& links,
                            CoreId src, CoreId dst) {
  if (!dor_path_blocked(g, faults, src, dst) && !dor_links_blocked(g, links, src, dst)) {
    return route_dor(g, src, dst);
  }

  // BFS shortest detour over healthy cores and live links, tracking the
  // exact chip-boundary crossings of the discovered shortest path (among
  // equal-hop paths, the first found in fixed E/W/S/N neighbor order).
  const int w = g.chips_x * g.cores_x;
  const int h = g.chips_y * g.cores_y;
  const auto ps = g.global_xy(src);
  const auto pd = g.global_xy(dst);
  std::vector<std::int32_t> dist(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), -1);
  std::vector<std::int32_t> cross(dist.size(), 0);
  auto idx = [w](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(w) + static_cast<std::size_t>(x);
  };
  std::queue<std::pair<int, int>> q;
  dist[idx(ps.x, ps.y)] = 0;
  q.push({ps.x, ps.y});
  while (!q.empty()) {
    const auto [x, y] = q.front();
    q.pop();
    if (x == pd.x && y == pd.y) break;
    const int d = dist[idx(x, y)];
    constexpr int dx[4] = {1, -1, 0, 0};
    constexpr int dy[4] = {0, 0, 1, -1};
    // Link direction of each move when it crosses a chip boundary.
    constexpr LinkDir dir[4] = {LinkDir::kEast, LinkDir::kWest, LinkDir::kSouth, LinkDir::kNorth};
    for (int k = 0; k < 4; ++k) {
      const int nx = x + dx[k], ny = y + dy[k];
      if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
      if (dist[idx(nx, ny)] != -1) continue;
      const bool boundary = (x / g.cores_x != nx / g.cores_x) || (y / g.cores_y != ny / g.cores_y);
      if (boundary) {
        const int chip = (y / g.cores_y) * g.chips_x + (x / g.cores_x);
        if (links.blocked(chip, static_cast<int>(dir[k]))) continue;
      }
      const CoreId cid = g.core_at_global(nx, ny);
      if (faults.is_faulted(cid) && !(nx == pd.x && ny == pd.y)) continue;
      dist[idx(nx, ny)] = d + 1;
      cross[idx(nx, ny)] = cross[idx(x, y)] + (boundary ? 1 : 0);
      q.push({nx, ny});
    }
  }
  RouteInfo r;
  const std::int32_t d = dist[idx(pd.x, pd.y)];
  if (d < 0) {
    r.reachable = false;
    return r;
  }
  r.hops = d;
  r.chip_crossings = cross[idx(pd.x, pd.y)];
  return r;
}

RouteInfo route_with_faults(const Geometry& g, const FaultSet& faults, CoreId src, CoreId dst) {
  if (faults.empty() || !dor_path_blocked(g, faults, src, dst)) return route_dor(g, src, dst);

  // BFS shortest detour over non-faulted cores in the global mesh. The mesh
  // is small (≤ a few thousand cores per system in our runs) and blocked
  // routes are rare, so an exact search is cheaper than a heuristic that
  // would need livelock proofs.
  const int w = g.chips_x * g.cores_x;
  const int h = g.chips_y * g.cores_y;
  const auto pd = g.global_xy(dst);
  std::vector<std::int32_t> dist(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), -1);
  auto idx = [w](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(w) + static_cast<std::size_t>(x);
  };
  std::queue<std::pair<int, int>> q;
  const auto ps = g.global_xy(src);
  dist[idx(ps.x, ps.y)] = 0;
  q.push({ps.x, ps.y});
  while (!q.empty()) {
    const auto [x, y] = q.front();
    q.pop();
    if (x == pd.x && y == pd.y) break;
    const int d = dist[idx(x, y)];
    constexpr int dx[4] = {1, -1, 0, 0};
    constexpr int dy[4] = {0, 0, 1, -1};
    for (int k = 0; k < 4; ++k) {
      const int nx = x + dx[k], ny = y + dy[k];
      if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
      if (dist[idx(nx, ny)] != -1) continue;
      const CoreId cid = g.core_at_global(nx, ny);
      // Intermediate cores must be healthy; the destination is allowed even
      // if marked (callers guarantee endpoints are healthy anyway).
      if (faults.is_faulted(cid) && !(nx == pd.x && ny == pd.y)) continue;
      dist[idx(nx, ny)] = d + 1;
      q.push({nx, ny});
    }
  }
  RouteInfo r;
  const std::int32_t d = dist[idx(pd.x, pd.y)];
  if (d < 0) {
    r.reachable = false;
    return r;
  }
  r.hops = d;
  // Detours can wander across chip boundaries; approximate crossings by the
  // straight-line count (lower bound) — the merge–split traffic model only
  // needs crossing counts on healthy meshes, where DOR is exact.
  r.chip_crossings = route_dor(g, src, dst).chip_crossings;
  return r;
}

}  // namespace nsc::noc
