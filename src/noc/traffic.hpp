// Inter-chip traffic accounting for the merge–split boundary structures.
//
// Each chip edge carries one shared serialized link per direction (paper
// Fig. 3(c)): packets leaving the mesh are tagged with their row/column,
// merged onto the link, and split back out on the far side. Congestion does
// not change function — the chip simply cannot finish the tick in time — so
// this model records per-tick per-link packet counts and reports the maximum
// observed, which bounds the sustainable tick frequency for multi-chip runs.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.hpp"

namespace nsc::noc {

/// Direction of a directed inter-chip link.
enum class LinkDir : std::uint8_t { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

class InterChipTraffic {
 public:
  explicit InterChipTraffic(const core::Geometry& g);

  /// Records the boundary crossings of a DOR route from src to dst for the
  /// current tick (X leg at the source row, then Y leg at the target column).
  void record_route(core::CoreId src, core::CoreId dst);

  /// Closes the current tick: folds per-link counts into maxima/totals.
  void end_tick();

  /// Packets on the busiest directed link in any single tick so far.
  [[nodiscard]] std::uint64_t max_link_packets_per_tick() const noexcept { return max_per_tick_; }

  /// Total packets serialized through any merge–split this run.
  [[nodiscard]] std::uint64_t total_crossings() const noexcept { return total_; }

  /// Total per directed link, accumulated over all ticks.
  /// Link index: (chip * 4 + dir); East = toward +x neighbor, etc.
  [[nodiscard]] std::uint64_t link_total(int chip, LinkDir dir) const {
    return link_totals_[static_cast<std::size_t>(chip) * 4 + static_cast<std::size_t>(dir)];
  }

  [[nodiscard]] int chips() const noexcept { return chips_; }

  void reset();

  /// Restores accumulated totals from a checkpoint (per-tick counts restart
  /// at zero, matching a tick boundary). `link_totals` must have one entry
  /// per directed link (chips * 4).
  void restore(const std::vector<std::uint64_t>& link_totals, std::uint64_t total,
               std::uint64_t max_per_tick);

 private:
  void bump(int chip, LinkDir dir);

  core::Geometry geom_;
  int chips_;
  std::vector<std::uint32_t> tick_counts_;   ///< Per directed link, current tick.
  std::vector<std::uint64_t> link_totals_;   ///< Per directed link, whole run.
  std::uint64_t max_per_tick_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace nsc::noc
