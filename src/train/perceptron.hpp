// Offline training substrate (paper Fig. 2 / §VII-D: networks are trained
// off-line — on Compass, or any conventional learner — then deployed
// unchanged on TrueNorth; "learning large-scale neural networks ... is an
// important direction").
//
// This module closes that loop in miniature: a multi-class averaged
// perceptron is trained in floating point, each output neuron's weight
// vector is quantized to the chip's representation (≤ 4 signed levels per
// neuron, selected through the axon-type mechanism), and the result is
// emitted as a classifier corelet whose spiking accuracy can be compared
// against the float model.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/corelet/corelet.hpp"

namespace nsc::train {

/// A labeled dataset of dense feature vectors in [0, 1].
struct Dataset {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  int classes = 0;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] int features() const { return x.empty() ? 0 : static_cast<int>(x[0].size()); }
};

/// Dense linear model (one weight row per class, no bias — inputs carry an
/// always-on feature if a bias is wanted).
struct LinearModel {
  std::vector<std::vector<float>> w;  ///< [classes][features]

  [[nodiscard]] int predict(const std::vector<float>& x) const;
  [[nodiscard]] double accuracy(const Dataset& d) const;
};

struct TrainConfig {
  int epochs = 20;
  float lr = 1.0f;
  std::uint64_t shuffle_seed = 1;
};

/// Averaged multi-class perceptron.
[[nodiscard]] LinearModel train_perceptron(const Dataset& d, const TrainConfig& cfg = {});

/// Per-neuron quantization of one weight row to at most `kAxonTypes` signed
/// integer levels (1-D k-means / Lloyd iterations). `scale` maps float
/// weights to the integer grid before clustering.
struct QuantizedRow {
  std::int16_t level[core::kAxonTypes] = {0, 0, 0, 0};
  std::vector<std::uint8_t> assign;  ///< feature → level index (or 0xFF = off)
};
[[nodiscard]] QuantizedRow quantize_row(const std::vector<float>& w, float scale,
                                        int levels = core::kAxonTypes);

/// Emits the quantized model as a single-core classifier corelet:
/// feature i is presented on axons {4i+g}; neuron j (class j) connects
/// feature i on the axon whose type carries j's nearest weight level.
/// Requires 4 * features ≤ 256 (≤ 64 features per core).
/// Inputs: `features` pins (pin i fans to that feature's 4 axons is the
/// caller's job via input_axons()); outputs: `classes` pins.
struct ClassifierCorelet {
  corelet::Corelet net{"classifier"};
  int features = 0;
  int classes = 0;
  std::int32_t threshold = 0;

  /// The four axons feature `i` must be driven on (identical spike train).
  [[nodiscard]] std::array<std::uint16_t, core::kAxonTypes> feature_axons(int i) const {
    std::array<std::uint16_t, core::kAxonTypes> a{};
    for (int g = 0; g < core::kAxonTypes; ++g) {
      a[static_cast<std::size_t>(g)] = static_cast<std::uint16_t>(core::kAxonTypes * i + g);
    }
    return a;
  }
};

struct EmitConfig {
  float weight_scale = 16.0f;  ///< Integer grid after global normalization.
  /// Evidence per output spike; <= 0 selects an adaptive threshold placed
  /// just below the strongest class's saturation point (a class neuron can
  /// fire at most once per tick, so an oversized drive-to-threshold ratio
  /// saturates every class and destroys the argmax).
  std::int32_t threshold = 0;
};

[[nodiscard]] ClassifierCorelet emit_classifier(const LinearModel& m, const EmitConfig& cfg = {});

/// Evaluates the spiking classifier on a dataset: each sample is rate-coded
/// for `ticks_per_sample` ticks (probability = feature value × max_prob);
/// prediction = class neuron with the most spikes. Returns accuracy.
[[nodiscard]] double spiking_accuracy(const ClassifierCorelet& clf, const Dataset& d,
                                      core::Tick ticks_per_sample = 48, double max_prob = 0.5,
                                      std::uint64_t seed = 9);

/// Synthetic pattern dataset: `per_class` samples of 8×8 patterns in four
/// classes (horizontal stripes, vertical stripes, checkerboard, center
/// blob), with flip noise. A standing replacement for image data.
[[nodiscard]] Dataset make_pattern_dataset(int per_class, double noise, std::uint64_t seed);

}  // namespace nsc::train
