#include "src/train/perceptron.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/core/input_schedule.hpp"
#include "src/core/spike_sink.hpp"
#include "src/corelet/place.hpp"
#include "src/tn/chip_sim.hpp"
#include "src/util/prng.hpp"

namespace nsc::train {

int LinearModel::predict(const std::vector<float>& x) const {
  int best = 0;
  float best_s = -1e30f;
  for (std::size_t c = 0; c < w.size(); ++c) {
    float s = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) s += w[c][i] * x[i];
    if (s > best_s) {
      best_s = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double LinearModel::accuracy(const Dataset& d) const {
  if (d.size() == 0) return 0.0;
  int ok = 0;
  for (std::size_t i = 0; i < d.size(); ++i) ok += predict(d.x[i]) == d.y[i] ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(d.size());
}

LinearModel train_perceptron(const Dataset& d, const TrainConfig& cfg) {
  assert(d.classes > 0 && d.size() > 0);
  const int f = d.features();
  LinearModel m;
  m.w.assign(static_cast<std::size_t>(d.classes),
             std::vector<float>(static_cast<std::size_t>(f), 0.0f));
  // Averaged perceptron: accumulate weight snapshots for stability.
  auto acc = m.w;
  std::vector<std::size_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro rng(cfg.shuffle_seed);
  for (int e = 0; e < cfg.epochs; ++e) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t idx : order) {
      const auto& x = d.x[idx];
      const int truth = d.y[idx];
      const int pred = m.predict(x);
      if (pred != truth) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          m.w[static_cast<std::size_t>(truth)][i] += cfg.lr * x[i];
          m.w[static_cast<std::size_t>(pred)][i] -= cfg.lr * x[i];
        }
      }
      for (std::size_t c = 0; c < m.w.size(); ++c) {
        for (std::size_t i = 0; i < m.w[c].size(); ++i) acc[c][i] += m.w[c][i];
      }
    }
  }
  return LinearModel{std::move(acc)};
}

QuantizedRow quantize_row(const std::vector<float>& w, float scale, int levels) {
  assert(levels >= 1 && levels <= core::kAxonTypes);
  QuantizedRow q;
  q.assign.assign(w.size(), 0xFF);
  // Scale to the integer grid; zeros stay off the crossbar.
  std::vector<float> v(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) v[i] = w[i] * scale;

  // Initialize centers at spread quantiles of the nonzero values.
  std::vector<float> nz;
  nz.reserve(v.size());
  for (float x : v) {
    if (std::fabs(x) >= 0.5f) nz.push_back(x);
  }
  if (nz.empty()) return q;
  std::sort(nz.begin(), nz.end());
  std::vector<float> centers(static_cast<std::size_t>(levels));
  for (int k = 0; k < levels; ++k) {
    centers[static_cast<std::size_t>(k)] =
        nz[nz.size() * (2 * static_cast<std::size_t>(k) + 1) /
           (2 * static_cast<std::size_t>(levels))];
  }
  // Lloyd iterations.
  for (int it = 0; it < 12; ++it) {
    std::vector<double> sum(static_cast<std::size_t>(levels), 0.0);
    std::vector<int> count(static_cast<std::size_t>(levels), 0);
    for (float x : nz) {
      int best = 0;
      for (int k = 1; k < levels; ++k) {
        if (std::fabs(x - centers[static_cast<std::size_t>(k)]) <
            std::fabs(x - centers[static_cast<std::size_t>(best)])) {
          best = k;
        }
      }
      sum[static_cast<std::size_t>(best)] += x;
      ++count[static_cast<std::size_t>(best)];
    }
    for (int k = 0; k < levels; ++k) {
      if (count[static_cast<std::size_t>(k)] > 0) {
        centers[static_cast<std::size_t>(k)] =
            static_cast<float>(sum[static_cast<std::size_t>(k)] /
                               count[static_cast<std::size_t>(k)]);
      }
    }
  }
  for (int k = 0; k < levels; ++k) {
    const long r = std::lround(centers[static_cast<std::size_t>(k)]);
    q.level[k] = static_cast<std::int16_t>(std::clamp(r, -255L, 255L));
  }
  // Assign each significant weight to its nearest level; levels rounded to 0
  // switch the synapse off instead.
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::fabs(v[i]) < 0.5f) continue;
    int best = 0;
    for (int k = 1; k < levels; ++k) {
      if (std::fabs(v[i] - centers[static_cast<std::size_t>(k)]) <
          std::fabs(v[i] - centers[static_cast<std::size_t>(best)])) {
        best = k;
      }
    }
    if (q.level[best] != 0) q.assign[i] = static_cast<std::uint8_t>(best);
  }
  return q;
}

ClassifierCorelet emit_classifier(const LinearModel& m, const EmitConfig& cfg) {
  ClassifierCorelet out;
  out.classes = static_cast<int>(m.w.size());
  out.features = m.w.empty() ? 0 : static_cast<int>(m.w[0].size());
  if (core::kAxonTypes * out.features > core::kCoreSize) {
    throw std::out_of_range("emit_classifier: more than 64 features per core");
  }
  // Global normalization: one scale for all rows keeps the class scores
  // comparable (per-row scaling would distort the argmax).
  float gmax = 0.0f;
  for (const auto& row : m.w) {
    for (float x : row) gmax = std::max(gmax, std::fabs(x));
  }
  const float scale = gmax > 0.0f ? cfg.weight_scale / gmax : 1.0f;

  const int k = out.net.add_core();
  core::CoreSpec& cs = out.net.core(k);
  // Axon i*4+g carries feature i on type g.
  for (int i = 0; i < out.features; ++i) {
    for (int g = 0; g < core::kAxonTypes; ++g) {
      cs.axon_type[static_cast<std::size_t>(core::kAxonTypes * i + g)] =
          static_cast<std::uint8_t>(g);
    }
    out.net.add_input({k, static_cast<std::uint16_t>(core::kAxonTypes * i)});
  }
  std::int32_t max_pos_drive = 0;
  std::vector<QuantizedRow> rows;
  rows.reserve(static_cast<std::size_t>(out.classes));
  for (int c = 0; c < out.classes; ++c) {
    rows.push_back(quantize_row(m.w[static_cast<std::size_t>(c)], scale));
    std::int32_t pos = 0;
    const QuantizedRow& q = rows.back();
    for (int i = 0; i < out.features; ++i) {
      const std::uint8_t g = q.assign[static_cast<std::size_t>(i)];
      if (g != 0xFF && q.level[g] > 0) pos += q.level[g];
    }
    max_pos_drive = std::max(max_pos_drive, pos);
  }
  // Adaptive threshold: the winner's expected per-tick drive at typical
  // coding rates (~0.5 spikes/tick per active feature, roughly half the
  // features positive-active) sits near 0.3 × max positive row sum; placing
  // θ there keeps the winner near — but not past — saturation.
  out.threshold = cfg.threshold > 0
                      ? cfg.threshold
                      : std::max<std::int32_t>(8, max_pos_drive * 3 / 10);

  for (int c = 0; c < out.classes; ++c) {
    const QuantizedRow& q = rows[static_cast<std::size_t>(c)];
    core::NeuronParams& n = cs.neuron[c];
    n.enabled = 1;
    for (int g = 0; g < core::kAxonTypes; ++g) n.weight[g] = q.level[g];
    n.threshold = out.threshold;
    n.leak = -1;  // evidence decays between samples
    n.neg_threshold = 0;
    n.negative_mode = core::NegativeMode::kSaturate;
    n.reset_mode = core::ResetMode::kLinear;
    for (int i = 0; i < out.features; ++i) {
      const std::uint8_t g = q.assign[static_cast<std::size_t>(i)];
      if (g != 0xFF) cs.crossbar.set(core::kAxonTypes * i + g, c);
    }
    out.net.add_output({k, static_cast<std::uint16_t>(c)});
  }
  return out;
}

double spiking_accuracy(const ClassifierCorelet& clf, const Dataset& d, core::Tick ticks_per_sample,
                        double max_prob, std::uint64_t seed) {
  if (d.size() == 0) return 0.0;
  const corelet::PlacedCorelet placed =
      corelet::place(clf.net, core::Geometry{1, 1, 1, 1}, corelet::PlaceStrategy::kLinear);
  const util::CounterPrng prng(seed);
  int ok = 0;
  for (std::size_t s = 0; s < d.size(); ++s) {
    core::InputSchedule in;
    for (core::Tick t = 0; t < ticks_per_sample; ++t) {
      for (int i = 0; i < clf.features; ++i) {
        const float x = d.x[s][static_cast<std::size_t>(i)];
        if (x <= 0.0f) continue;
        const auto p16 = static_cast<std::uint32_t>(std::min(1.0, max_prob * x) * 65536.0);
        if (!prng.bernoulli16(static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(i),
                              static_cast<std::uint64_t>(t), 0x5EED, p16)) {
          continue;
        }
        for (std::uint16_t axon : clf.feature_axons(i)) in.add(t, 0, axon);
      }
    }
    in.finalize();
    tn::TrueNorthSimulator sim(placed.network);
    core::CountSink sink(static_cast<std::uint64_t>(placed.network.geom.neurons()));
    sim.run(ticks_per_sample + 2, &in, &sink);
    int best = 0;
    std::uint32_t best_count = 0;
    for (int c = 0; c < clf.classes; ++c) {
      const std::uint32_t n = sink.count(0, static_cast<std::uint16_t>(c));
      if (n > best_count) {
        best_count = n;
        best = c;
      }
    }
    ok += best == d.y[s] ? 1 : 0;
  }
  return static_cast<double>(ok) / static_cast<double>(d.size());
}

Dataset make_pattern_dataset(int per_class, double noise, std::uint64_t seed) {
  Dataset d;
  d.classes = 4;
  util::Xoshiro rng(seed * 48271 + 13);
  for (int cls = 0; cls < 4; ++cls) {
    for (int s = 0; s < per_class; ++s) {
      std::vector<float> x(64, 0.0f);
      // Fixed phase: a random phase would equalize every pixel's class-
      // conditional mean at 0.5, making the stripe classes linearly
      // inseparable — this dataset must suit a linear model.
      for (int yy = 0; yy < 8; ++yy) {
        for (int xx = 0; xx < 8; ++xx) {
          bool on = false;
          switch (cls) {
            case 0: on = yy % 2 == 0; break;                           // horizontal stripes
            case 1: on = xx % 2 == 0; break;                           // vertical stripes
            case 2: on = (xx + yy) % 2 == 0; break;                    // checkerboard
            case 3: on = xx >= 2 && xx < 6 && yy >= 2 && yy < 6; break;// center blob
          }
          if (rng.next_double() < noise) on = !on;
          x[static_cast<std::size_t>(yy * 8 + xx)] = on ? 1.0f : 0.0f;
        }
      }
      d.x.push_back(std::move(x));
      d.y.push_back(cls);
    }
  }
  return d;
}

}  // namespace nsc::train
