#include "src/analysis/graph.hpp"

#include <algorithm>
#include <deque>

namespace nsc::analysis {

using core::CoreId;

CoreGraph build_core_graph(const core::Network& net) {
  CoreGraph g;
  g.ncores = net.geom.total_cores();
  const auto ncores = static_cast<std::size_t>(g.ncores);
  g.out_start.assign(ncores + 1, 0);
  g.in_degree.assign(ncores, 0);
  if (net.cores.size() != ncores) return g;  // NSC001 territory; no graph.

  // Collect distinct targets per core (targets within a core cluster, so a
  // sort+unique of a small scratch vector per core beats a global edge sort).
  std::vector<std::uint32_t> scratch;
  std::vector<std::vector<std::uint32_t>> adj(ncores);
  for (std::size_t c = 0; c < ncores; ++c) {
    scratch.clear();
    for (const auto& p : net.cores[c].neuron) {
      if (!p.enabled || !p.target.valid()) continue;
      if (p.target.core >= ncores) continue;  // out-of-range: NSC005, not an edge
      scratch.push_back(p.target.core);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    adj[c] = scratch;
  }
  for (std::size_t c = 0; c < ncores; ++c) {
    g.out_start[c + 1] = g.out_start[c] + static_cast<std::uint32_t>(adj[c].size());
  }
  g.out_edges.reserve(g.out_start[ncores]);
  for (std::size_t c = 0; c < ncores; ++c) {
    for (std::uint32_t d : adj[c]) {
      g.out_edges.push_back(d);
      ++g.in_degree[d];
    }
  }
  return g;
}

namespace {

/// Shortest directed cycle through `start` restricted to cores whose
/// component id equals `comp`: BFS over the component from start's
/// successors back to start.
int shortest_cycle_through(const CoreGraph& g, const std::vector<int>& comp_of, int comp,
                           std::uint32_t start) {
  std::vector<int> dist(static_cast<std::size_t>(g.ncores), -1);
  std::deque<std::uint32_t> queue;
  dist[start] = 0;
  queue.push_back(start);
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t e = g.out_start[u]; e < g.out_start[u + 1]; ++e) {
      const std::uint32_t v = g.out_edges[e];
      if (comp_of[v] != comp) continue;
      if (v == start) return dist[u] + 1;
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return 0;  // start has no cycle inside the component (size-1 SCC).
}

}  // namespace

std::vector<RecurrentComponent> recurrent_components(const CoreGraph& g) {
  // Iterative Tarjan: explicit DFS stack so chain-shaped million-core
  // graphs cannot overflow the call stack.
  const auto n = static_cast<std::size_t>(g.ncores);
  std::vector<int> index(n, -1), lowlink(n, 0), comp_of(n, -1);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;  ///< Next out-edge offset to visit.
  };
  std::vector<Frame> dfs;
  std::vector<std::vector<CoreId>> comps;
  int next_index = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    dfs.push_back({root, g.out_start[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      if (f.edge < g.out_start[f.v + 1]) {
        const std::uint32_t w = g.out_edges[f.edge++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back({w, g.out_start[w]});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const std::uint32_t v = f.v;
        dfs.pop_back();
        if (!dfs.empty()) lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        if (lowlink[v] == index[v]) {
          std::vector<CoreId> comp;
          std::uint32_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comp_of[w] = static_cast<int>(comps.size());
            comp.push_back(w);
          } while (w != v);
          std::sort(comp.begin(), comp.end());
          comps.push_back(std::move(comp));
        }
      }
    }
  }

  std::vector<RecurrentComponent> out;
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    const auto& comp = comps[ci];
    bool recurrent = comp.size() > 1;
    if (!recurrent) {
      // Size-1 SCC counts only with a self-edge.
      const std::uint32_t v = comp[0];
      for (std::uint32_t e = g.out_start[v]; e < g.out_start[v + 1] && !recurrent; ++e) {
        recurrent = g.out_edges[e] == v;
      }
    }
    if (!recurrent) continue;
    RecurrentComponent rc;
    rc.cores = comp;
    rc.shortest_cycle =
        shortest_cycle_through(g, comp_of, static_cast<int>(ci), comp[0]);
    out.push_back(std::move(rc));
  }
  std::sort(out.begin(), out.end(), [](const RecurrentComponent& a, const RecurrentComponent& b) {
    return a.cores[0] < b.cores[0];
  });
  return out;
}

}  // namespace nsc::analysis
