// Conservative, no-simulation load bounds for a network (docs/ANALYSIS.md).
//
// Everything here is an upper bound derivable from the static description:
// a neuron can fire at most once per tick, and it cannot fire faster than
// its maximum per-tick synaptic drive divided by its minimum effective
// threshold. Folding those per-neuron rates along the deterministic DOR
// routes gives a worst-case spikes/tick figure per merge–split link that
// can be compared against the link's serialization capacity before any
// tick is simulated (the paper's multi-chip sustainability question,
// Fig. 3(c), answered statically).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/core/network.hpp"

namespace nsc::analysis {

/// Histogram bucket count for fan-in/fan-out summaries: bucket k covers
/// [k*16, k*16+15] synapses, with the last bucket catching 240..256.
inline constexpr int kFanHistBuckets = 16;

/// Static load profile of one core.
struct CoreLoad {
  std::uint32_t synapses = 0;      ///< Active crossbar bits (total fan-in work).
  std::uint32_t enabled_neurons = 0;
  std::uint32_t fan_out = 0;       ///< Enabled neurons with a valid target.
  std::uint32_t axons_targeted = 0;  ///< Axons some neuron routes spikes to.
  /// Σ_j min(1, drive_j / threshold_j): upper bound on this core's firings
  /// per tick, assuming every synapse is driven every tick.
  double rate_bound = 0.0;
};

/// Worst-case load of one directed inter-chip merge–split link.
struct LinkLoad {
  std::uint64_t worst_case_packets = 0;  ///< Every routed neuron fires each tick.
  double bounded_packets = 0.0;          ///< Rate-bound-weighted packets/tick.
};

/// Network-wide static load summary.
struct LoadSummary {
  std::vector<CoreLoad> cores;
  /// Per directed inter-chip link, indexed chip * 4 + dir (0=E,1=W,2=N,3=S);
  /// empty for single-chip networks.
  std::vector<LinkLoad> links;
  std::array<std::uint64_t, kFanHistBuckets> fan_in_hist{};   ///< Neuron in-degree.
  std::array<std::uint64_t, kFanHistBuckets> fan_out_hist{};  ///< Axon row fan-out.
  double total_rate_bound = 0.0;  ///< Σ cores[i].rate_bound (spikes/tick).
};

/// Serialization capacity of one directed merge–split link in packets per
/// tick: the most spikes the boundary structures can merge, serialize and
/// split within a 1 ms tick without stretching the tick. Model constant
/// (docs/ANALYSIS.md §NSC030); exceeding it does not change function, only
/// real-time feasibility, so the linter flags it as a warn.
inline constexpr std::uint64_t kLinkPacketsPerTickCapacity = 8192;

/// Upper bound on neuron j of `spec` firing per tick: max positive per-tick
/// drive over minimum effective threshold, clamped to [0, 1]. Stochastic
/// synapses/leaks contribute at most ±1 per event by construction.
[[nodiscard]] double neuron_rate_bound(const core::CoreSpec& spec, int j);

/// Computes the full static load profile of `net`.
[[nodiscard]] LoadSummary compute_load(const core::Network& net);

}  // namespace nsc::analysis
