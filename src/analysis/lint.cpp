#include "src/analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/analysis/graph.hpp"
#include "src/analysis/plan.hpp"

namespace nsc::analysis {

using core::CoreId;
using core::kCoreSize;

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarn: return "warn";
    case Severity::kInfo: return "info";
  }
  return "info";
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"NSC001", Severity::kError, "core vector size or geometry inconsistent"},
      {"NSC002", Severity::kError, "axon type index out of range"},
      {"NSC003", Severity::kError, "non-positive firing threshold"},
      {"NSC004", Severity::kError, "negative negative-threshold magnitude"},
      {"NSC005", Severity::kError, "target core out of grid"},
      {"NSC006", Severity::kError, "target core is disabled"},
      {"NSC007", Severity::kError, "axonal delay outside [1, 15]"},
      {"NSC008", Severity::kError, "synaptic weight outside signed 9-bit range"},
      {"NSC009", Severity::kError, "leak outside signed 9-bit range"},
      {"NSC010", Severity::kError, "threshold magnitude exceeds 18-bit range"},
      {"NSC011", Severity::kError, "reset or initial potential outside 20-bit range"},
      {"NSC012", Severity::kError, "target axon index out of crossbar range"},
      {"NSC013", Severity::kWarn, "enabled neuron on disabled core"},
      {"NSC014", Severity::kWarn, "initial potential reaches threshold (fires at t=0)"},
      {"NSC020", Severity::kInfo, "dead-end neuron: no outgoing route, spikes dropped"},
      {"NSC021", Severity::kWarn, "dangling axon target: delivered spikes reach no synapse"},
      {"NSC022", Severity::kInfo, "duplicate axon target: deliveries collide on one axon"},
      {"NSC023", Severity::kInfo, "recurrent loop (strongly connected cores)"},
      {"NSC024", Severity::kInfo, "unreachable core: no routed spikes can arrive"},
      {"NSC025", Severity::kInfo, "orphan axons: synapses only external input can drive"},
      {"NSC030", Severity::kWarn, "merge-split link overflow risk vs per-tick capacity"},
      {"NSC031", Severity::kInfo, "saturated core: every enabled neuron may fire each tick"},
      {"NSC040", Severity::kInfo, "stochastic modes present: PRNG seed affects spikes"},
      {"NSC041", Severity::kWarn, "deployment: empty rank shard(s) at the requested rank count"},
      {"NSC042", Severity::kWarn, "deployment: static shard load imbalance exceeds threshold"},
      {"NSC043", Severity::kWarn, "deployment: partition-cut exchange bytes/tick exceed capacity"},
      {"NSC044", Severity::kWarn,
       "deployment: worst-case tick exceeds rank-deadline/4 (false RankTimeout risk)"},
      {"NSC045", Severity::kWarn, "deployment: worst-case supervisor recovery exceeds budget"},
      {"NSC046", Severity::kWarn, "deployment: replica-batch memory footprint exceeds budget"},
      {"NSC047", Severity::kInfo, "deployment: a different rank count is recommended"},
      {"NSC048", Severity::kError, "checkpoint: malformed or hostile NSCK file"},
      {"NSC049", Severity::kError, "checkpoint: geometry or seed mismatch vs the network"},
      {"NSC050", Severity::kError, "checkpoint: fault bitmap holds non-boolean bytes"},
      {"NSC051", Severity::kError, "checkpoint: membrane potential outside the 20-bit envelope"},
      {"NSC052", Severity::kWarn, "checkpoint: tick counter behind stats.ticks"},
      {"NSC053", Severity::kInfo, "checkpoint: runtime fault state present (dead cores/links)"},
      {"NSC054", Severity::kWarn, "checkpoint: in-flight deliveries buffered on dead cores"},
      {"NSC055", Severity::kError, "deployment: replicas > 1 cannot combine with ranks > 1"},
  };
  return kCatalog;
}

namespace {

Severity rule_severity(std::string_view id) {
  for (const RuleInfo& r : rule_catalog()) {
    if (r.id == id) return r.severity;
  }
  return Severity::kInfo;
}

/// Per-rule finding cap: per-core detail is kept for the first offenders and
/// the tail is folded into one summary finding so reports stay bounded on
/// million-core networks.
constexpr std::size_t kMaxFindingsPerRule = 32;

class Recorder {
 public:
  explicit Recorder(const LintOptions& options)
      : suppress_(options.suppress.begin(), options.suppress.end()) {}

  [[nodiscard]] bool suppressed(std::string_view rule) const {
    return suppress_.count(std::string(rule)) != 0;
  }

  void emit(std::string_view rule, CoreId core, int neuron, std::string message,
            std::uint64_t count = 1) {
    if (suppressed(rule)) return;
    Finding f;
    f.rule = std::string(rule);
    f.severity = rule_severity(rule);
    f.message = std::move(message);
    f.core = core;
    f.neuron = neuron;
    f.count = count;
    findings_.push_back(std::move(f));
  }

  /// Sorted findings with the per-rule cap applied.
  [[nodiscard]] std::vector<Finding> take() {
    std::stable_sort(findings_.begin(), findings_.end(), [](const Finding& a, const Finding& b) {
      if (a.severity != b.severity) return a.severity > b.severity;
      if (a.rule != b.rule) return a.rule < b.rule;
      return a.core < b.core;
    });
    std::vector<Finding> capped;
    capped.reserve(findings_.size());
    std::map<std::string, std::size_t> kept_per_rule;
    // rule -> {cores, sites}
    std::map<std::string, std::pair<std::size_t, std::uint64_t>> overflow;
    for (auto& f : findings_) {
      if (kept_per_rule[f.rule]++ < kMaxFindingsPerRule) {
        capped.push_back(std::move(f));
      } else {
        auto& [cores, sites] = overflow[f.rule];
        ++cores;
        sites += f.count;
      }
    }
    for (auto& [rule, tail] : overflow) {
      Finding f;
      f.rule = rule;
      f.severity = rule_severity(rule);
      std::ostringstream os;
      os << "rule matched on " << tail.first << " more core(s), " << tail.second
         << " further site(s) not listed individually";
      f.message = os.str();
      f.core = core::kInvalidCore;
      f.neuron = -1;
      f.count = tail.second;
      // Insert after the last kept finding of the same rule to preserve the
      // severity-major ordering.
      auto it = std::find_if(capped.rbegin(), capped.rend(),
                             [&](const Finding& g) { return g.rule == rule; });
      capped.insert(it.base(), std::move(f));
    }
    return capped;
  }

 private:
  std::set<std::string> suppress_;
  std::vector<Finding> findings_;
};

std::string at(CoreId core, int neuron) {
  std::ostringstream os;
  os << "core " << core;
  if (neuron >= 0) os << " neuron " << neuron;
  return os.str();
}

void lint_envelope(const core::Network& net, Recorder& rec) {
  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);

    // NSC002: axon types (aggregated per core).
    int bad_axon_types = 0, first_bad_axon = -1;
    for (int i = 0; i < kCoreSize; ++i) {
      if (spec.axon_type[static_cast<std::size_t>(i)] >= core::kAxonTypes) {
        ++bad_axon_types;
        if (first_bad_axon < 0) first_bad_axon = i;
      }
    }
    if (bad_axon_types > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << bad_axon_types << " axon type index(es) >= "
         << core::kAxonTypes << " (first: axon " << first_bad_axon << ")";
      rec.emit("NSC002", c, first_bad_axon, os.str(),
               static_cast<std::uint64_t>(bad_axon_types));
    }

    int on_disabled = 0, first_on_disabled = -1;
    int instant_fire = 0, first_instant = -1;
    for (int j = 0; j < kCoreSize; ++j) {
      const core::NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      if (spec.disabled) {
        ++on_disabled;
        if (first_on_disabled < 0) first_on_disabled = j;
      }
      if (p.threshold <= 0) {
        rec.emit("NSC003", c, j,
                 at(c, j) + ": threshold " + std::to_string(p.threshold) + " must be > 0");
      }
      if (p.neg_threshold < 0) {
        rec.emit("NSC004", c, j,
                 at(c, j) + ": negative threshold " + std::to_string(p.neg_threshold) +
                     " must be >= 0");
      }
      if (p.threshold > core::kThresholdMax || p.neg_threshold > core::kThresholdMax) {
        rec.emit("NSC010", c, j,
                 at(c, j) + ": threshold magnitude exceeds 18-bit maximum " +
                     std::to_string(core::kThresholdMax));
      }
      for (int g = 0; g < core::kAxonTypes; ++g) {
        if (p.weight[g] < core::kWeightMin || p.weight[g] > core::kWeightMax) {
          rec.emit("NSC008", c, j,
                   at(c, j) + ": weight[" + std::to_string(g) + "] = " +
                       std::to_string(p.weight[g]) + " outside signed 9-bit [" +
                       std::to_string(core::kWeightMin) + ", " +
                       std::to_string(core::kWeightMax) + "]");
          break;  // One finding per neuron keeps the report readable.
        }
      }
      if (p.leak < core::kWeightMin || p.leak > core::kWeightMax) {
        rec.emit("NSC009", c, j,
                 at(c, j) + ": leak " + std::to_string(p.leak) + " outside signed 9-bit range");
      }
      if (p.reset_v > core::kPotentialMax || p.reset_v < core::kPotentialMin ||
          p.init_v > core::kPotentialMax || p.init_v < core::kPotentialMin) {
        rec.emit("NSC011", c, j,
                 at(c, j) + ": reset/init potential outside the 20-bit membrane range");
      }
      if (p.threshold > 0 && p.init_v >= p.threshold) {
        ++instant_fire;
        if (first_instant < 0) first_instant = j;
      }
      if (p.target.valid()) {
        if (p.target.core >= ncores) {
          rec.emit("NSC005", c, j,
                   at(c, j) + ": target core " + std::to_string(p.target.core) +
                       " outside the " + std::to_string(ncores) + "-core grid");
        } else if (net.core(p.target.core).disabled) {
          rec.emit("NSC006", c, j,
                   at(c, j) + ": targets disabled core " + std::to_string(p.target.core));
        }
        if (p.target.delay < core::kMinDelay || p.target.delay > core::kMaxDelay) {
          rec.emit("NSC007", c, j,
                   at(c, j) + ": axonal delay " + std::to_string(int(p.target.delay)) +
                       " outside [" + std::to_string(core::kMinDelay) + ", " +
                       std::to_string(core::kMaxDelay) + "]");
        }
        if (p.target.axon >= kCoreSize) {
          rec.emit("NSC012", c, j,
                   at(c, j) + ": target axon " + std::to_string(p.target.axon) + " >= " +
                       std::to_string(kCoreSize));
        }
      }
    }
    if (on_disabled > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << on_disabled
         << " enabled neuron(s) on a disabled core (first: neuron " << first_on_disabled << ")";
      rec.emit("NSC013", c, first_on_disabled, os.str(),
               static_cast<std::uint64_t>(on_disabled));
    }
    if (instant_fire > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << instant_fire
         << " neuron(s) start with init_v >= threshold and fire at t=0 without input "
            "(first: neuron "
         << first_instant << ")";
      rec.emit("NSC014", c, first_instant, os.str(),
               static_cast<std::uint64_t>(instant_fire));
    }
  }
}

void lint_graph(const core::Network& net, Recorder& rec) {
  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  const CoreGraph graph = build_core_graph(net);

  // Per-target-axon delivery counts for NSC021/NSC022/NSC025.
  std::vector<std::vector<std::uint16_t>> inbound(ncores);
  for (auto& v : inbound) v.assign(kCoreSize, 0);

  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    int dead_end = 0, first_dead = -1;
    for (int j = 0; j < kCoreSize; ++j) {
      const core::NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      if (!p.target.valid()) {
        ++dead_end;
        if (first_dead < 0) first_dead = j;
        continue;
      }
      if (p.target.core >= ncores || p.target.axon >= kCoreSize) continue;  // NSC005/NSC012
      auto& slot = inbound[p.target.core][p.target.axon];
      if (slot < 0xFFFF) ++slot;
    }
    if (dead_end > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << dead_end
         << " enabled neuron(s) have no outgoing route; their spikes are dropped as sinks "
            "(first: neuron "
         << first_dead << ")";
      rec.emit("NSC020", c, first_dead, os.str(), static_cast<std::uint64_t>(dead_end));
    }
  }

  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    // NSC021: routed deliveries onto empty crossbar rows do zero SOPs.
    int dangling = 0, first_dangling = -1;
    int duplicates = 0, first_dup = -1;
    int orphans = 0, first_orphan = -1;
    for (int a = 0; a < kCoreSize; ++a) {
      const int routed = inbound[c][a];
      const int synapses = spec.crossbar.row_count(a);
      if (routed > 0 && synapses == 0 && !spec.disabled) {
        ++dangling;
        if (first_dangling < 0) first_dangling = a;
      }
      if (routed > 1) {
        ++duplicates;
        if (first_dup < 0) first_dup = a;
      }
      if (routed == 0 && synapses > 0) {
        ++orphans;
        if (first_orphan < 0) first_orphan = a;
      }
    }
    if (dangling > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << dangling
         << " targeted axon(s) have an empty crossbar row — every delivered spike is wasted "
            "traffic (first: axon "
         << first_dangling << ")";
      rec.emit("NSC021", c, first_dangling, os.str(), static_cast<std::uint64_t>(dangling));
    }
    if (duplicates > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << duplicates
         << " axon(s) are targeted by multiple neurons; same-tick deliveries collide on one "
            "binary axon line in hardware (first: axon "
         << first_dup << ")";
      rec.emit("NSC022", c, first_dup, os.str(), static_cast<std::uint64_t>(duplicates));
    }
    if (orphans > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << orphans
         << " axon row(s) carry synapses but no neuron routes to them; only external input "
            "can drive them (first: axon "
         << first_orphan << ")";
      rec.emit("NSC025", c, first_orphan, os.str(), static_cast<std::uint64_t>(orphans));
    }
    // NSC024: enabled neurons that no routed spike can ever reach.
    bool has_enabled = false;
    for (const auto& p : spec.neuron) {
      if (p.enabled) {
        has_enabled = true;
        break;
      }
    }
    if (has_enabled && !spec.disabled && graph.in_degree[c] == 0) {
      rec.emit("NSC024", c, -1,
               at(c, -1) +
                   ": no neuron routes spikes to this core; it can only fire from external "
                   "input, leak, or its initial potential");
    }
  }

  // NSC023: recurrent components with their shortest cycle length.
  if (!rec.suppressed("NSC023")) {
    for (const RecurrentComponent& comp : recurrent_components(graph)) {
      std::ostringstream os;
      os << "recurrent loop over " << comp.cores.size() << " core(s) starting at core "
         << comp.cores[0] << " (shortest core-level cycle: " << comp.shortest_cycle
         << " hop(s)); activity can self-sustain";
      rec.emit("NSC023", comp.cores[0], -1, os.str(),
               static_cast<std::uint64_t>(comp.cores.size()));
    }
  }
}

void lint_load(const LoadSummary& load, Recorder& rec) {
  for (std::size_t li = 0; li < load.links.size(); ++li) {
    const LinkLoad& link = load.links[li];
    if (link.bounded_packets > static_cast<double>(kLinkPacketsPerTickCapacity)) {
      static constexpr const char* kDirs[] = {"E", "W", "N", "S"};
      std::ostringstream os;
      os << "merge-split link chip " << li / 4 << " dir " << kDirs[li % 4]
         << ": worst-case " << static_cast<std::uint64_t>(link.bounded_packets)
         << " packets/tick (all-fire " << link.worst_case_packets << ") exceeds capacity "
         << kLinkPacketsPerTickCapacity << " — overflow risk, tick may stretch";
      rec.emit("NSC030", static_cast<CoreId>(core::kInvalidCore), -1, os.str());
    }
  }
  for (std::size_t c = 0; c < load.cores.size(); ++c) {
    const CoreLoad& cl = load.cores[c];
    if (cl.enabled_neurons > 0 &&
        cl.rate_bound >= 0.99 * static_cast<double>(cl.enabled_neurons)) {
      std::ostringstream os;
      os << at(static_cast<CoreId>(c), -1)
         << ": firing-rate upper bound is saturated (every one of " << cl.enabled_neurons
         << " enabled neuron(s) can fire each tick)";
      rec.emit("NSC031", static_cast<CoreId>(c), -1, os.str(), cl.enabled_neurons);
    }
  }
}

void lint_determinism(const core::Network& net, Recorder& rec) {
  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    int stochastic = 0, first = -1;
    for (int j = 0; j < kCoreSize; ++j) {
      const core::NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      if (p.stochastic_weight != 0 || p.stochastic_leak != 0 || p.threshold_mask != 0) {
        ++stochastic;
        if (first < 0) first = j;
      }
    }
    if (stochastic > 0) {
      std::ostringstream os;
      os << at(c, -1) << ": " << stochastic
         << " neuron(s) use stochastic synapse/leak/threshold modes; spike equivalence "
            "requires identical PRNG seeds (first: neuron "
         << first << ")";
      rec.emit("NSC040", c, first, os.str(), static_cast<std::uint64_t>(stochastic));
    }
  }
}

}  // namespace

std::uint64_t LintReport::count(Severity s) const noexcept {
  std::uint64_t n = 0;
  for (const Finding& f : findings) n += f.severity == s ? 1 : 0;
  return n;
}

bool LintReport::has_rule(std::string_view rule_id) const noexcept {
  for (const Finding& f : findings) {
    if (f.rule == rule_id) return true;
  }
  return false;
}

Severity LintReport::max_severity() const noexcept {
  Severity worst = Severity::kInfo;
  for (const Finding& f : findings) worst = std::max(worst, f.severity);
  return worst;
}

LintReport lint(const core::Network& net, const LintOptions& options) {
  LintReport report;
  report.suppressed = options.suppress;
  std::sort(report.suppressed.begin(), report.suppressed.end());
  report.suppressed.erase(std::unique(report.suppressed.begin(), report.suppressed.end()),
                          report.suppressed.end());
  Recorder rec(options);

  // NSC001: structural integrity gates everything else — a mis-sized core
  // vector makes per-core iteration meaningless.
  const int total = net.geom.total_cores();
  if (net.geom.chips_x <= 0 || net.geom.chips_y <= 0 || net.geom.cores_x <= 0 ||
      net.geom.cores_y <= 0 || net.cores.size() != static_cast<std::size_t>(total)) {
    std::ostringstream os;
    os << "core vector holds " << net.cores.size() << " entries but the geometry declares "
       << total << " cores";
    rec.emit("NSC001", core::kInvalidCore, -1, os.str());
    report.findings = rec.take();
    return report;
  }

  lint_envelope(net, rec);
  if (options.graph) lint_graph(net, rec);
  if (options.load) {
    report.load = compute_load(net);
    lint_load(report.load, rec);
  }
  lint_determinism(net, rec);
  if (options.deploy != nullptr) {
    // Deployment-planner pass (docs/ANALYSIS.md): the plan itself is cheap
    // to recompute, so lint only folds its findings; callers wanting the
    // full plan (JSON emission, bounds) call plan_deployment directly.
    const DeploymentPlan plan = plan_deployment(net, *options.deploy);
    for (const Finding& f : plan_findings(net, plan)) {
      rec.emit(f.rule, f.core, f.neuron, f.message, f.count);
    }
  }

  report.findings = rec.take();
  return report;
}

bool clean_at(const core::Network& net, Severity floor) {
  const LintReport report = lint(net);
  for (const Finding& f : report.findings) {
    if (f.severity >= floor) return false;
  }
  return true;
}

void require_deployable(const core::Network& net) {
  // Envelope-only pass: deployment gates on errors, and all error rules live
  // in the envelope/structure checks, so the graph/load passes are skipped.
  LintOptions options;
  options.graph = false;
  options.load = false;
  const LintReport report = lint(net, options);
  if (report.count(Severity::kError) == 0) return;
  std::ostringstream os;
  os << "network fails lint with " << report.count(Severity::kError) << " error(s):";
  std::size_t shown = 0;
  for (const Finding& f : report.findings) {
    if (f.severity != Severity::kError) continue;
    os << "\n  [" << f.rule << "] " << f.message;
    if (++shown == 5) break;
  }
  throw std::runtime_error(os.str());
}

}  // namespace nsc::analysis
