// Deployment planner: partition-, replica-, and checkpoint-aware static
// analysis (docs/ANALYSIS.md, "Deployment planner").
//
// plan_deployment composes the no-simulation firing-rate/load bounds
// (load.hpp) with the compass balanced partitioner (src/compass/partition) to
// bound, at any rank count and *without simulating*:
//   - per-rank compute work per tick (neuron updates + axon events + SOPs),
//   - partition-cut exchange messages and bytes per tick,
//   - the static load imbalance of the resulting shard assignment,
// plus heartbeat/deadline feasibility, supervisor recovery cost, and the
// replica-batch SoA memory footprint. The count bounds are *provably
// conservative*: CI runs fuzzed nets at {1,2,4} ranks and asserts the
// measured `dist.messages`/`dist.bytes` and per-rank compute never exceed
// them (tests/test_plan.cpp, the bench-smoke `--check-run` gate).
//
// The bound derivations (docs/ANALYSIS.md has the full argument):
//   messages/tick  = ranks*(ranks-1), exactly: every rank sends one
//     kSpikeBatch frame per live peer per tick, empty or not, and only those
//     frames increment dist.messages (src/dist/rank.cpp).
//   bytes/tick(s→d) <= 8 + 16 * W(s,d): a frame is an 8-byte tick header
//     plus one 16-byte WordDelivery per distinct (target core, delay,
//     axon/64) triple — deliveries coalesce per (core, slot, word), and at a
//     fixed tick the slot is injective in the delay, so W(s,d) counts the
//     distinct triples over enabled, validly-targeted neurons crossing s→d.
//   work/tick(rank) <= enabled neurons on live shard cores (neuron_updates
//     is exactly that, every tick) + Σ axons_targeted (each targeted axon
//     fires its row at most once per tick) + Σ over targeted axons of
//     |row ∩ enabled| (each active row does at most that many SOPs).
// The work bound holds for fresh, input-free runs (external input is
// statically unknowable and deliberately excluded, like load.hpp).
//
// The checkpoint audit (audit_checkpoint, `nsc_lint --checkpoint`) statically
// verifies an NSCK file via core::load_snapshot — PR 2's hostile-file
// hardening (magic/version/geometry/truncation validated before any
// allocation) — then checks the decoded state against the hardware envelope.
// No simulator is ever constructed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/lint.hpp"
#include "src/compass/partition.hpp"
#include "src/core/network.hpp"
#include "src/obs/json.hpp"

namespace nsc::analysis {

// --- Deployment model constants (docs/ANALYSIS.md, "Planner model"). The
// time/memory models are advisory (warn rules); the count bounds above are
// the ones CI proves conservative. ---

/// Modeled nanoseconds per compute work unit (one neuron update, axon event,
/// or SOP) on a provisioned rank.
inline constexpr double kWorkUnitNs = 2.0;
/// Modeled nanoseconds per exchanged payload byte (socketpair copy cost).
inline constexpr double kExchangeByteNs = 0.25;
/// Modeled fixed cost per peer frame (syscall + framing) per tick.
inline constexpr double kMessageOverheadNs = 4000.0;
/// Exchange budget per tick across all rank pairs before NSC043 warns that
/// the partition cut dominates the tick.
inline constexpr std::uint64_t kExchangeBytesPerTickCapacity = 16ull << 20;
/// Modeled nanoseconds per shadow-image byte (stitch + restore copy cost).
inline constexpr double kSnapshotByteNs = 1.0;
/// Worst-case recovery (restore + replay) budget before NSC045 warns; one
/// biological second at the paper's 1 ms tick.
inline constexpr double kRecoveryBudgetNs = 1e9;
/// Static shard imbalance (max/mean core_load_estimate) above which NSC042
/// warns that ranks will idle at the tick barrier.
inline constexpr double kImbalanceWarnRatio = 1.5;
/// Default replica-batch memory budget for NSC046 (1 GiB).
inline constexpr std::uint64_t kDefaultReplicaMemoryBudgetBytes = 1ull << 30;
/// Highest rank count the recommendation scan considers.
inline constexpr int kMaxPlannedRanks = 16;

/// The deployment configuration under analysis — mirrors the `nsc_run`
/// flags (--ranks/--replicas/--supervise/--rank-deadline-ms/
/// --recovery-interval) plus the replica memory budget.
struct DeploymentSpec {
  int ranks = 1;
  int replicas = 1;
  bool supervise = false;
  int rank_deadline_ms = 0;               ///< 0 = failure detector disabled.
  std::int64_t recovery_interval = 32;    ///< Shadow-checkpoint period (ticks).
  std::uint64_t replica_memory_budget = kDefaultReplicaMemoryBudgetBytes;
};

/// Static per-tick bounds for one rank's shard. The three work components
/// bound the rank's measured sops/axon_events/neuron_updates individually;
/// `work_bound` is their sum (what the conservativeness gate checks against
/// Coordinator::rank_compute_work).
struct RankBound {
  compass::CoreRange shard;
  std::uint64_t enabled_neurons = 0;     ///< = per-tick neuron_updates (exact).
  std::uint64_t axons_targeted = 0;      ///< >= per-tick axon_events.
  std::uint64_t reachable_synapses = 0;  ///< >= per-tick SOPs.
  std::uint64_t work_bound = 0;          ///< Sum of the three.
  std::uint64_t send_messages = 0;       ///< = ranks - 1 (exact, per tick).
  std::uint64_t send_bytes = 0;          ///< >= per-tick dist.bytes sent.
  double est_tick_ns = 0.0;              ///< Modeled worst-case tick time.
};

/// Replica-batch SoA footprint (src/replica/batch.hpp layout, bytes).
struct ReplicaFootprint {
  std::uint64_t shared_bytes = 0;       ///< Read-only per-network tables.
  std::uint64_t per_replica_bytes = 0;  ///< State one replica adds.
  std::uint64_t total_bytes = 0;        ///< shared + replicas * per_replica.
};

/// Supervisor worst-case recovery cost (shadow image restore + rollback
/// replay of up to `recovery_interval` ticks).
struct RecoveryCost {
  std::uint64_t image_bytes = 0;        ///< NSCK shadow-image size bound.
  std::uint64_t replay_work_bound = 0;  ///< recovery_interval * total work.
  double recovery_ns = 0.0;             ///< Modeled restore + replay time.
};

/// The full static deployment plan for (network, spec).
struct DeploymentPlan {
  DeploymentSpec spec;
  std::vector<RankBound> ranks;              ///< One entry per rank.
  std::uint64_t total_messages_per_tick = 0; ///< = ranks*(ranks-1), exact.
  std::uint64_t total_bytes_per_tick = 0;    ///< >= measured dist.bytes/tick.
  std::uint64_t total_work_per_tick = 0;     ///< Σ ranks[r].work_bound.
  double load_imbalance = 0.0;               ///< Static max/mean shard load.
  double est_tick_ns = 0.0;                  ///< max over ranks (critical path).
  int recommended_ranks = 1;                 ///< argmin modeled tick time.
  ReplicaFootprint replica;
  RecoveryCost recovery;
};

/// Computes the static deployment plan. Throws std::invalid_argument when
/// spec.ranks or spec.replicas < 1, or recovery_interval < 1.
[[nodiscard]] DeploymentPlan plan_deployment(const core::Network& net,
                                             const DeploymentSpec& spec);

/// The planner rule pass (NSC041–NSC047, NSC055) over a computed plan.
/// Returned findings carry catalog severities; lint() folds them through its
/// recorder when LintOptions::deploy is set.
[[nodiscard]] std::vector<Finding> plan_findings(const core::Network& net,
                                                 const DeploymentPlan& plan);

/// Serializes the plan to the round-trippable "nsc-plan-v1" schema.
[[nodiscard]] obs::JsonValue plan_to_json(const DeploymentPlan& plan,
                                          const std::string& net_name,
                                          const core::Geometry& geom);

/// Parses an "nsc-plan-v1" document back into a DeploymentPlan. Throws
/// std::runtime_error on a schema mismatch.
[[nodiscard]] DeploymentPlan plan_from_json(const obs::JsonValue& doc);

/// Upper bound on the byte size of an NSCK snapshot of `geom` (exact
/// serialized layout plus the loader-capped extras allowance).
[[nodiscard]] std::uint64_t snapshot_image_bytes_bound(const core::Geometry& geom);

/// Statically audits an NSCK checkpoint file (rules NSC048–NSC054) without
/// constructing a simulator: core::load_snapshot performs the hostile-file
/// hardening (NSC048 on throw), then the decoded state is checked against
/// the envelope and, when `net` is non-null, against the network it claims
/// to belong to. `suppress` lists rule IDs to skip (recorded in the report).
[[nodiscard]] LintReport audit_checkpoint(const std::string& path,
                                          const core::Network* net = nullptr,
                                          const std::vector<std::string>& suppress = {});

}  // namespace nsc::analysis
