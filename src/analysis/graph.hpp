// Core-level connectivity graph for static analysis (docs/ANALYSIS.md).
//
// Nodes are cores; there is an edge c→d when any enabled neuron on c
// targets an axon on d. The graph answers the structural lint questions:
// which cores can never receive a spike (unreachable), which axon rows are
// never targeted (orphans), and where the recurrent loops are (strongly
// connected components, whose shortest internal cycle bounds how fast
// activity can echo).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/network.hpp"

namespace nsc::analysis {

/// Directed core graph in CSR form, plus per-core degree summaries.
struct CoreGraph {
  int ncores = 0;
  /// CSR adjacency: out_edges[out_start[c] .. out_start[c+1]) are the
  /// distinct target cores of core c, ascending.
  std::vector<std::uint32_t> out_start;
  std::vector<std::uint32_t> out_edges;
  std::vector<std::uint32_t> in_degree;  ///< Distinct source cores per core.
};

[[nodiscard]] CoreGraph build_core_graph(const core::Network& net);

/// One strongly connected component with more than one core, or a single
/// core with a self-edge — i.e. a genuine recurrent loop at core level.
struct RecurrentComponent {
  std::vector<core::CoreId> cores;  ///< Members, ascending.
  int shortest_cycle = 0;           ///< Length of the shortest internal cycle.
};

/// Tarjan SCC (iterative — safe for million-core graphs) filtered to the
/// recurrent components, ordered by their smallest member core.
[[nodiscard]] std::vector<RecurrentComponent> recurrent_components(const CoreGraph& g);

}  // namespace nsc::analysis
