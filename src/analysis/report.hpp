// Rendering of lint results: human-readable text and the machine-readable
// "nsc-lint-v1" JSON schema (docs/ANALYSIS.md). The JSON is built with
// src/obs/json so every report the emitter writes is round-trippable by the
// same parser CI tooling uses for the bench reports.
#pragma once

#include <iosfwd>
#include <string>

#include "src/analysis/lint.hpp"
#include "src/obs/json.hpp"

namespace nsc::analysis {

/// Pretty-prints the report: findings grouped by severity (errors first),
/// then the load summary and the severity tally. `max_findings` caps the
/// printed findings (0 = unlimited); the tally always reflects all of them.
void print_report(std::ostream& os, const LintReport& report, std::size_t max_findings = 50);

/// Serializes the report to the "nsc-lint-v1" schema:
///   { "schema": "nsc-lint-v1", "net": <name>, "geometry": {...},
///     "counts": {"error": n, "warn": n, "info": n},
///     "findings": [{"rule","severity","message","core","neuron","count"}...],
///     "suppressed": [...],
///     "load": { "total_rate_bound", "link_capacity_per_tick",
///               "max_link_worst_case", "fan_in_hist", "fan_out_hist" } }
[[nodiscard]] obs::JsonValue report_to_json(const LintReport& report, const std::string& net_name,
                                            const core::Geometry& geom);

/// Writes the JSON to `path`; throws std::runtime_error on I/O failure.
void write_lint_report(const std::string& path, const LintReport& report,
                       const std::string& net_name, const core::Geometry& geom);

/// CLI `--lint` preflight (nsc_run, nsc_faultsweep): lints `net`, prints
/// error- and warn-level findings to stderr, and returns false when
/// error-level findings make the network undeployable — callers must then
/// refuse to simulate it. Warnings never block.
[[nodiscard]] bool lint_preflight(const core::Network& net, const std::string& net_name);

/// Deployment-aware preflight: same contract, but also runs the planner
/// rules (NSC041–NSC047, NSC055) against `deploy`, so `--ranks`/
/// `--replicas`/`--supervise` runs are vetted before any process forks.
/// `deploy` must outlive the call (it is borrowed by LintOptions).
[[nodiscard]] bool lint_preflight(const core::Network& net, const std::string& net_name,
                                  const DeploymentSpec& deploy);

}  // namespace nsc::analysis
