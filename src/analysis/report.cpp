#include "src/analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace nsc::analysis {

void print_report(std::ostream& os, const LintReport& report, std::size_t max_findings) {
  std::size_t shown = 0;
  for (const Finding& f : report.findings) {
    if (max_findings != 0 && shown == max_findings) {
      os << "... " << (report.findings.size() - shown) << " more finding(s) elided\n";
      break;
    }
    os << severity_name(f.severity) << " [" << f.rule << "] " << f.message << "\n";
    ++shown;
  }
  if (!report.suppressed.empty()) {
    os << "suppressed:";
    for (const std::string& rule : report.suppressed) os << " " << rule;
    os << "\n";
  }
  if (!report.load.cores.empty()) {
    std::uint64_t worst_link = 0;
    for (const LinkLoad& link : report.load.links) {
      worst_link = std::max(worst_link, link.worst_case_packets);
    }
    os << "load: rate bound " << report.load.total_rate_bound << " spikes/tick";
    if (!report.load.links.empty()) {
      os << ", busiest merge-split link worst case " << worst_link << "/"
         << kLinkPacketsPerTickCapacity << " packets/tick";
    }
    os << "\n";
  }
  os << report.count(Severity::kError) << " error(s), " << report.count(Severity::kWarn)
     << " warning(s), " << report.count(Severity::kInfo) << " info(s)\n";
}

obs::JsonValue report_to_json(const LintReport& report, const std::string& net_name,
                              const core::Geometry& geom) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", "nsc-lint-v1");
  doc.set("net", net_name);

  obs::JsonValue g = obs::JsonValue::object();
  g.set("chips_x", geom.chips_x);
  g.set("chips_y", geom.chips_y);
  g.set("cores_x", geom.cores_x);
  g.set("cores_y", geom.cores_y);
  g.set("total_cores", geom.total_cores());
  doc.set("geometry", std::move(g));

  obs::JsonValue counts = obs::JsonValue::object();
  counts.set("error", report.count(Severity::kError));
  counts.set("warn", report.count(Severity::kWarn));
  counts.set("info", report.count(Severity::kInfo));
  doc.set("counts", std::move(counts));

  obs::JsonValue findings = obs::JsonValue::array();
  for (const Finding& f : report.findings) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("rule", f.rule);
    entry.set("severity", std::string(severity_name(f.severity)));
    entry.set("message", f.message);
    if (f.core != core::kInvalidCore) entry.set("core", static_cast<std::int64_t>(f.core));
    if (f.neuron >= 0) entry.set("neuron", f.neuron);
    entry.set("count", f.count);
    findings.push_back(std::move(entry));
  }
  doc.set("findings", std::move(findings));

  obs::JsonValue suppressed = obs::JsonValue::array();
  for (const std::string& rule : report.suppressed) suppressed.push_back(obs::JsonValue(rule));
  doc.set("suppressed", std::move(suppressed));

  if (!report.load.cores.empty()) {
    obs::JsonValue load = obs::JsonValue::object();
    load.set("total_rate_bound", report.load.total_rate_bound);
    load.set("link_capacity_per_tick", kLinkPacketsPerTickCapacity);
    std::uint64_t worst = 0;
    double bounded = 0.0;
    for (const LinkLoad& link : report.load.links) {
      worst = std::max(worst, link.worst_case_packets);
      bounded = std::max(bounded, link.bounded_packets);
    }
    load.set("max_link_worst_case", worst);
    load.set("max_link_rate_bound", bounded);
    obs::JsonValue fin = obs::JsonValue::array();
    for (std::uint64_t b : report.load.fan_in_hist) fin.push_back(obs::JsonValue(b));
    load.set("fan_in_hist", std::move(fin));
    obs::JsonValue fout = obs::JsonValue::array();
    for (std::uint64_t b : report.load.fan_out_hist) fout.push_back(obs::JsonValue(b));
    load.set("fan_out_hist", std::move(fout));
    doc.set("load", std::move(load));
  }
  return doc;
}

namespace {

bool preflight_report(const LintReport& report, const std::string& net_name) {
  std::size_t shown = 0;
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::kInfo) continue;
    if (shown++ == 20) {
      std::fprintf(stderr, "lint: ... further findings elided; run nsc_lint --net %s\n",
                   net_name.c_str());
      break;
    }
    std::fprintf(stderr, "lint: %s [%s] %s\n", std::string(severity_name(f.severity)).c_str(),
                 f.rule.c_str(), f.message.c_str());
  }
  const std::uint64_t errors = report.count(Severity::kError);
  if (errors > 0) {
    std::fprintf(stderr,
                 "lint preflight FAILED: %llu error-level finding(s) in %s; refusing to run "
                 "(the kernel expressions are only equivalent inside the hardware envelope)\n",
                 static_cast<unsigned long long>(errors), net_name.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool lint_preflight(const core::Network& net, const std::string& net_name) {
  return preflight_report(lint(net), net_name);
}

bool lint_preflight(const core::Network& net, const std::string& net_name,
                    const DeploymentSpec& deploy) {
  LintOptions options;
  options.deploy = &deploy;
  return preflight_report(lint(net, options), net_name);
}

void write_lint_report(const std::string& path, const LintReport& report,
                       const std::string& net_name, const core::Geometry& geom) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os << report_to_json(report, net_name, geom).to_string(2) << "\n";
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace nsc::analysis
