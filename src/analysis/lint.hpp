// Static network analysis ("nsc_lint"): verifies a NetworkDescription
// against TrueNorth's hardware envelope and flags structural and load
// hazards *without simulating it* (docs/ANALYSIS.md).
//
// The two kernel expressions are only spike-for-spike equivalent when the
// network respects the hardware envelope (256×256 binary crossbars, four
// axon types with signed 9-bit weights, axonal delays 1–15 ticks, bounded
// merge–split inter-chip traffic). Violations otherwise surface as
// mysterious divergence at simulation time; this subsystem catches them at
// deploy time, the role validation plays in the Corelet Programming
// Environment's compile flow.
//
// Every finding carries a stable rule ID (NSC001…) and a severity:
//   error — the network is outside the hardware envelope; simulators may
//           diverge, trap, or silently mis-execute. Deployment must refuse.
//   warn  — legal but almost certainly a configuration mistake (spikes that
//           can do no work, overflow-risk links, instant-fire neurons).
//   info  — properties a deployer should know (stochastic modes that demand
//           seeding, recurrent loops, spike sinks, saturated-rate cores).
//
// This header replaces src/core/validation.{hpp,cpp}; `require_deployable`
// is the migration path for the old `validate_or_throw` call sites.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/load.hpp"
#include "src/core/network.hpp"

namespace nsc::analysis {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

[[nodiscard]] std::string_view severity_name(Severity s) noexcept;

/// One lint finding. `core`/`neuron` locate the first offender; findings
/// that aggregate (dead-end neurons, duplicate targets, orphan axons) also
/// report how many sites the rule matched via `count`.
struct Finding {
  std::string rule;       ///< Stable ID, e.g. "NSC007".
  Severity severity = Severity::kInfo;
  std::string message;    ///< Human-readable, self-contained.
  core::CoreId core = core::kInvalidCore;  ///< kInvalidCore for network-level.
  int neuron = -1;        ///< -1 when the finding is core- or network-level.
  std::uint64_t count = 1;  ///< Matched sites folded into this finding.
};

/// One rule of the catalog (docs/ANALYSIS.md lists all of them).
struct RuleInfo {
  std::string_view id;
  Severity severity;
  std::string_view summary;
};

/// The full rule catalog, ordered by ID. Stable across releases: IDs are
/// never reused, only retired.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

struct DeploymentSpec;  // src/analysis/plan.hpp

struct LintOptions {
  /// Rule IDs to suppress (exact match, e.g. {"NSC040"}). Suppressed rules
  /// are skipped entirely and listed in the report for auditability.
  std::vector<std::string> suppress;
  /// Run the graph rules (NSC02x). Dominated by SCC analysis; can be turned
  /// off for very large networks when only the envelope matters.
  bool graph = true;
  /// Run the load-bound rules (NSC03x) and compute LoadSummary.
  bool load = true;
  /// When non-null, run the deployment-planner rules (NSC041–NSC047, NSC055)
  /// against this configuration (src/analysis/plan.hpp). The spec must
  /// outlive the lint() call.
  const DeploymentSpec* deploy = nullptr;
};

/// The result of linting one network.
struct LintReport {
  std::vector<Finding> findings;          ///< Sorted: errors, warns, infos.
  std::vector<std::string> suppressed;    ///< Rules skipped per options.
  LoadSummary load;                       ///< Populated when options.load.

  [[nodiscard]] std::uint64_t count(Severity s) const noexcept;
  [[nodiscard]] bool has_rule(std::string_view rule_id) const noexcept;
  /// Highest severity present, or kInfo when there are no findings.
  [[nodiscard]] Severity max_severity() const noexcept;
  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Lints `net` against the full rule catalog. Never throws on network
/// content — every defect becomes a finding.
[[nodiscard]] LintReport lint(const core::Network& net, const LintOptions& options = {});

/// Throws std::runtime_error listing the first error-severity findings when
/// `net` is outside the hardware envelope (any NSC0xx error rule fires).
/// Warnings and infos do not throw. Replaces core::validate_or_throw.
void require_deployable(const core::Network& net);

/// True when no finding of severity >= `floor` fires on `net`: the
/// one-liner tests and CI use to assert a network is lint-clean at the
/// `--fail-on=warn` gate (the shipping bar for generators and examples).
[[nodiscard]] bool clean_at(const core::Network& net, Severity floor = Severity::kWarn);

}  // namespace nsc::analysis
