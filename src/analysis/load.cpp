#include "src/analysis/load.hpp"

#include <algorithm>

#include "src/util/bitrow.hpp"

namespace nsc::analysis {

using core::CoreId;
using core::kCoreSize;

double neuron_rate_bound(const core::CoreSpec& spec, int j) {
  const core::NeuronParams& p = spec.neuron[j];
  if (!p.enabled) return 0.0;
  // Maximum positive drive one tick can deliver: every axon with a synapse
  // onto j fires, every stochastic draw lands. Stochastic synapses add at
  // most sign(S) = ±1 per event by construction (neuron_model.hpp).
  std::int64_t drive = 0;
  for (int i = 0; i < kCoreSize; ++i) {
    if (!spec.crossbar.test(i, j)) continue;
    const int g = spec.axon_type[static_cast<std::size_t>(i)];
    if (g < 0 || g >= core::kAxonTypes) continue;  // NSC002 territory
    const std::int32_t w = p.weight[g];
    if ((p.stochastic_weight & (1u << g)) != 0) {
      drive += w > 0 ? 1 : 0;
    } else {
      drive += w > 0 ? w : 0;
    }
  }
  // Leak: with leak reversal a positive λ drives |V| upward on both sides,
  // and a negative λ still raises V while V < 0, so the conservative bound
  // is |λ| (or 1 when stochastic).
  const std::int32_t mag = p.leak < 0 ? -p.leak : p.leak;
  if (p.stochastic_leak != 0) {
    drive += mag > 0 ? 1 : 0;
  } else {
    drive += p.leak_reversal != 0 ? mag : (p.leak > 0 ? p.leak : 0);
  }
  if (drive <= 0) return 0.0;
  // Minimum effective threshold: the jitter mask only ever raises α.
  const std::int64_t alpha = p.threshold > 0 ? p.threshold : 1;
  return drive >= alpha ? 1.0 : static_cast<double>(drive) / static_cast<double>(alpha);
}

namespace {

/// Mirrors noc::InterChipTraffic::record_route: X leg along the source chip
/// row, then Y leg at the destination chip column. Calls `visit(link)` for
/// every directed link index (chip * 4 + dir) the route serializes through.
template <typename Visit>
void for_each_link_crossing(const core::Geometry& geom, CoreId src, CoreId dst, Visit&& visit) {
  const auto cs = geom.chip_xy(src);
  const auto cd = geom.chip_xy(dst);
  if (cd.x > cs.x) {
    for (int cx = cs.x; cx < cd.x; ++cx) visit((cs.y * geom.chips_x + cx) * 4 + 0);  // E
  } else {
    for (int cx = cs.x; cx > cd.x; --cx) visit((cs.y * geom.chips_x + cx) * 4 + 1);  // W
  }
  if (cd.y > cs.y) {
    for (int cy = cs.y; cy < cd.y; ++cy) visit((cy * geom.chips_x + cd.x) * 4 + 3);  // S
  } else {
    for (int cy = cs.y; cy > cd.y; --cy) visit((cy * geom.chips_x + cd.x) * 4 + 2);  // N
  }
}

}  // namespace

LoadSummary compute_load(const core::Network& net) {
  LoadSummary sum;
  const auto ncores = static_cast<std::size_t>(net.geom.total_cores());
  if (net.cores.size() != ncores) return sum;  // NSC001: no profile to build.
  sum.cores.resize(ncores);
  if (net.geom.chips() > 1) sum.links.resize(static_cast<std::size_t>(net.geom.chips()) * 4);

  // Which axons of each core receive routed spikes (external input is
  // unknowable statically and deliberately excluded).
  std::vector<util::BitRow256> targeted(ncores);

  for (std::size_t c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.cores[c];
    CoreLoad& load = sum.cores[c];
    load.synapses = static_cast<std::uint32_t>(spec.crossbar.count());
    for (int i = 0; i < kCoreSize; ++i) {
      const int fan_out = spec.crossbar.row_count(i);
      ++sum.fan_out_hist[static_cast<std::size_t>(std::min(fan_out / 16, kFanHistBuckets - 1))];
    }
    for (int j = 0; j < kCoreSize; ++j) {
      const int fan_in = spec.crossbar.column_count(j);
      ++sum.fan_in_hist[static_cast<std::size_t>(std::min(fan_in / 16, kFanHistBuckets - 1))];
      const core::NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      ++load.enabled_neurons;
      const double rate = neuron_rate_bound(spec, j);
      load.rate_bound += rate;
      if (!p.target.valid() || p.target.core >= ncores) continue;
      ++load.fan_out;
      if (p.target.axon < kCoreSize) targeted[p.target.core].set(p.target.axon);
      if (!sum.links.empty() && net.geom.chip_of(static_cast<CoreId>(c)) !=
                                    net.geom.chip_of(p.target.core)) {
        for_each_link_crossing(net.geom, static_cast<CoreId>(c), p.target.core, [&](int link) {
          ++sum.links[static_cast<std::size_t>(link)].worst_case_packets;
          sum.links[static_cast<std::size_t>(link)].bounded_packets += rate;
        });
      }
    }
    sum.total_rate_bound += load.rate_bound;
  }
  for (std::size_t c = 0; c < ncores; ++c) {
    sum.cores[c].axons_targeted = static_cast<std::uint32_t>(targeted[c].count());
  }
  return sum;
}

}  // namespace nsc::analysis
