#include "src/analysis/plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "src/core/snapshot.hpp"
#include "src/util/bitrow.hpp"

namespace nsc::analysis {

using core::CoreId;
using core::kCoreSize;

namespace {

Severity catalog_severity(std::string_view id) {
  for (const RuleInfo& r : rule_catalog()) {
    if (r.id == id) return r.severity;
  }
  return Severity::kInfo;
}

/// Recorder-order sort (lint.cpp): severity descending, rule, core.
void sort_findings(std::vector<Finding>& fs) {
  std::stable_sort(fs.begin(), fs.end(), [](const Finding& a, const Finding& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.core < b.core;
  });
}

/// One potential partition-cut delivery, at core granularity: an enabled
/// neuron of live core `src` routes to (dst, delay-slot, word). Deduped —
/// same-word deliveries coalesce into one WordDelivery OR-mask.
struct Edge {
  CoreId src = 0;
  CoreId dst = 0;
  std::uint8_t delay = 0;
  std::uint8_t word = 0;

  friend bool operator<(const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst, a.delay, a.word) < std::tie(b.src, b.dst, b.delay, b.word);
  }
  friend bool operator==(const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst, a.delay, a.word) == std::tie(b.src, b.dst, b.delay, b.word);
  }
};

/// Rank-independent static profile: computed once, reused for every rank
/// count the recommendation scan evaluates.
struct NetProfile {
  std::size_t ncores = 0;
  std::vector<std::uint32_t> enabled;        ///< Enabled neurons per live core.
  std::vector<std::uint32_t> axons;          ///< Targeted axons per live core.
  std::vector<std::uint64_t> synapses;       ///< Reachable synapses per live core.
  std::vector<Edge> edges;                   ///< Deduped potential deliveries.
};

NetProfile profile_network(const core::Network& net) {
  NetProfile prof;
  prof.ncores = static_cast<std::size_t>(net.geom.total_cores());
  if (net.cores.size() != prof.ncores) {
    prof.ncores = 0;  // NSC001 territory: no meaningful profile.
    return prof;
  }
  prof.enabled.assign(prof.ncores, 0);
  prof.axons.assign(prof.ncores, 0);
  prof.synapses.assign(prof.ncores, 0);

  // Pass 1: enabled masks and the inbound targeted-axon masks (the same
  // masks compute_load builds; external input is deliberately excluded).
  std::vector<util::BitRow256> enabled_mask(prof.ncores);
  std::vector<util::BitRow256> targeted(prof.ncores);
  for (std::size_t c = 0; c < prof.ncores; ++c) {
    const core::CoreSpec& spec = net.cores[c];
    for (int j = 0; j < kCoreSize; ++j) {
      const core::NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      enabled_mask[c].set(j);
      if (spec.disabled) continue;  // Dead cores never fire.
      ++prof.enabled[c];
      if (!p.target.valid() || static_cast<std::size_t>(p.target.core) >= prof.ncores ||
          p.target.axon >= kCoreSize) {
        continue;
      }
      targeted[p.target.core].set(p.target.axon);
      prof.edges.push_back(Edge{static_cast<CoreId>(c), p.target.core, p.target.delay,
                                static_cast<std::uint8_t>(p.target.axon >> 6)});
    }
  }
  std::sort(prof.edges.begin(), prof.edges.end());
  prof.edges.erase(std::unique(prof.edges.begin(), prof.edges.end()), prof.edges.end());

  // Pass 2: per-core work components. A disabled core is never processed, so
  // it contributes nothing even when routed to.
  for (std::size_t c = 0; c < prof.ncores; ++c) {
    const core::CoreSpec& spec = net.cores[c];
    if (spec.disabled) continue;
    prof.axons[c] = static_cast<std::uint32_t>(targeted[c].count());
    std::uint64_t reach = 0;
    targeted[c].for_each_set([&](int a) {
      reach += static_cast<std::uint64_t>(spec.crossbar.row(a).and_count(enabled_mask[c]));
    });
    prof.synapses[c] = reach;
  }
  return prof;
}

/// Per-rank bounds of `prof` sharded `ranks` ways (the spec-independent
/// core of plan_deployment, reused by the recommendation scan).
std::vector<RankBound> rank_bounds(const core::Network& net, const NetProfile& prof, int ranks) {
  std::vector<RankBound> out(static_cast<std::size_t>(ranks));
  const std::vector<compass::CoreRange> shards = compass::partition_balanced(net, ranks);
  std::vector<int> rank_of(prof.ncores, 0);
  for (std::size_t r = 0; r < shards.size() && r < out.size(); ++r) {
    out[r].shard = shards[r];
    for (CoreId c = shards[r].begin; c < shards[r].end; ++c) {
      rank_of[c] = static_cast<int>(r);
      out[r].enabled_neurons += prof.enabled[c];
      out[r].axons_targeted += prof.axons[c];
      out[r].reachable_synapses += prof.synapses[c];
    }
  }
  // Distinct WordDeliveries per sending rank: dedupe (src rank, dst core,
  // delay, word) — same-shard sources coalesce into one OR-mask word.
  std::vector<std::tuple<int, CoreId, std::uint8_t, std::uint8_t>> cut;
  cut.reserve(prof.edges.size());
  for (const Edge& e : prof.edges) {
    const int s = rank_of[e.src];
    if (s != rank_of[e.dst]) cut.emplace_back(s, e.dst, e.delay, e.word);
  }
  std::sort(cut.begin(), cut.end());
  cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
  std::vector<std::uint64_t> words(static_cast<std::size_t>(ranks), 0);
  for (const auto& k : cut) ++words[static_cast<std::size_t>(std::get<0>(k))];

  for (std::size_t r = 0; r < out.size(); ++r) {
    RankBound& b = out[r];
    b.work_bound = b.enabled_neurons + b.axons_targeted + b.reachable_synapses;
    // One kSpikeBatch frame per live peer per tick, empty or not: an 8-byte
    // tick header plus 16 bytes per coalesced WordDelivery.
    b.send_messages = static_cast<std::uint64_t>(ranks - 1);
    b.send_bytes = b.send_messages * 8 + 16 * words[r];
    b.est_tick_ns = static_cast<double>(b.work_bound) * kWorkUnitNs +
                    static_cast<double>(b.send_bytes) * kExchangeByteNs +
                    static_cast<double>(ranks - 1) * kMessageOverheadNs;
  }
  return out;
}

double critical_tick_ns(const std::vector<RankBound>& bounds) {
  double worst = 0.0;
  for (const RankBound& b : bounds) worst = std::max(worst, b.est_tick_ns);
  return worst;
}

ReplicaFootprint replica_footprint(const core::Network& net, int replicas) {
  // The BatchSimulator state layout, byte for byte (src/replica/batch.hpp):
  // shared read-only tables once, then per-replica dynamic state. The
  // ActiveSet term is an allowance (flag byte + worklist entry per core).
  const auto ncores = static_cast<std::uint64_t>(net.geom.total_cores());
  ReplicaFootprint f;
  f.shared_bytes = ncores * (32      // enabled_ (BitRow256)
                             + 4     // enabled_count_
                             + 1 + 1 + 1  // live_ / always_active_ / hot_ok_
                             + 3 * kCoreSize * 4   // hot_ SoA (leak|alpha|floor)
                             + core::kAxonTypes * kCoreSize * 2  // wtab_
                             + kCoreSize);                       // target_ok_
  f.per_replica_bytes = ncores * (kCoreSize * 4       // v_
                                  + 16 * 32           // delay_ (16 slots)
                                  + 1                 // hot_v_ok_
                                  + 8)                // ActiveSet allowance
                        + sizeof(core::KernelStats) + 8;  // stats_ + tick_
  f.total_bytes = f.shared_bytes + static_cast<std::uint64_t>(replicas) * f.per_replica_bytes;
  return f;
}

}  // namespace

std::uint64_t snapshot_image_bytes_bound(const core::Geometry& geom) {
  // The exact NSCK serialization (src/core/snapshot.cpp save_snapshot):
  // 41-byte header, 11 u64 stats, dense fault bitmaps, potentials, delay
  // words, then the extras and traffic sections at the loader's caps (64
  // extras of <= 64-char names; traffic always written for the geometry).
  const auto ncores = static_cast<std::uint64_t>(geom.total_cores());
  const auto nlinks = static_cast<std::uint64_t>(geom.chips()) * 4;
  return 41 + 11 * 8                                     // header + stats
         + ncores + nlinks                               // fault bitmaps
         + ncores * kCoreSize * 4                        // potentials
         + ncores * 16 * 4 * 8                           // delay words
         + 4 + 64 * (2 + 64 + 8)                         // extras allowance
         + 4 + nlinks * 8 + 16;                          // traffic section
}

DeploymentPlan plan_deployment(const core::Network& net, const DeploymentSpec& spec) {
  if (spec.ranks < 1) throw std::invalid_argument("plan: ranks must be >= 1");
  if (spec.replicas < 1) throw std::invalid_argument("plan: replicas must be >= 1");
  if (spec.recovery_interval < 1) {
    throw std::invalid_argument("plan: recovery_interval must be >= 1");
  }
  DeploymentPlan plan;
  plan.spec = spec;
  const NetProfile prof = profile_network(net);
  if (prof.ncores == 0) {  // NSC001-broken network: an empty but valid plan.
    plan.ranks.resize(static_cast<std::size_t>(spec.ranks));
    plan.recommended_ranks = 1;
    return plan;
  }

  plan.ranks = rank_bounds(net, prof, spec.ranks);
  for (const RankBound& b : plan.ranks) {
    plan.total_messages_per_tick += b.send_messages;
    plan.total_bytes_per_tick += b.send_bytes;
    plan.total_work_per_tick += b.work_bound;
  }
  {
    std::vector<compass::CoreRange> shards(plan.ranks.size());
    for (std::size_t r = 0; r < shards.size(); ++r) shards[r] = plan.ranks[r].shard;
    plan.load_imbalance = compass::load_imbalance(net, shards);
  }
  plan.est_tick_ns = critical_tick_ns(plan.ranks);

  // Recommended rank count: argmin of the modeled critical-path tick time
  // over 1..kMaxPlannedRanks (smaller wins ties — fewer processes).
  plan.recommended_ranks = 1;
  double best = 0.0;
  for (int r = 1; r <= kMaxPlannedRanks; ++r) {
    const double est = r == spec.ranks ? plan.est_tick_ns
                                       : critical_tick_ns(rank_bounds(net, prof, r));
    if (r == 1 || est < best) {
      best = est;
      plan.recommended_ranks = r;
    }
  }

  plan.replica = replica_footprint(net, spec.replicas);
  plan.recovery.image_bytes = snapshot_image_bytes_bound(net.geom);
  plan.recovery.replay_work_bound =
      static_cast<std::uint64_t>(spec.recovery_interval) * plan.total_work_per_tick;
  plan.recovery.recovery_ns =
      static_cast<double>(plan.recovery.image_bytes) * kSnapshotByteNs +
      static_cast<double>(plan.recovery.replay_work_bound) * kWorkUnitNs;
  return plan;
}

std::vector<Finding> plan_findings(const core::Network& net, const DeploymentPlan& plan) {
  std::vector<Finding> fs;
  const DeploymentSpec& spec = plan.spec;
  auto emit = [&](std::string_view rule, std::string message, std::uint64_t count = 1) {
    Finding f;
    f.rule = std::string(rule);
    f.severity = catalog_severity(rule);
    f.message = std::move(message);
    f.count = count;
    fs.push_back(std::move(f));
  };

  // NSC055: the backends compose replicas XOR ranks; both > 1 cannot run.
  if (spec.replicas > 1 && spec.ranks > 1) {
    std::ostringstream os;
    os << "deployment requests " << spec.replicas << " replicas across " << spec.ranks
       << " ranks; the replica-batched backend is single-process, so replicas > 1 "
          "cannot combine with ranks > 1 (run replicas on one rank or shard one replica)";
    emit("NSC055", os.str());
  }

  // NSC041: empty shards burn a process (fork, frames, barrier waits) on
  // zero work — the rank count exceeds what the network can use.
  if (spec.ranks > 1) {
    int empty = 0;
    for (const RankBound& b : plan.ranks) empty += b.shard.size() == 0 ? 1 : 0;
    if (empty > 0) {
      std::ostringstream os;
      os << empty << " of " << spec.ranks << " rank shard(s) own no cores at this rank "
         << "count; each still forks, sends per-tick frames, and waits at the tick "
         << "barrier for nothing — reduce --ranks to <= " << (spec.ranks - empty);
      emit("NSC041", os.str(), static_cast<std::uint64_t>(empty));
    }
  }

  // NSC042: a lopsided cut leaves ranks idling at the exchange barrier.
  if (spec.ranks > 1 && plan.load_imbalance > kImbalanceWarnRatio) {
    std::ostringstream os;
    os << "static shard load imbalance " << plan.load_imbalance << " exceeds "
       << kImbalanceWarnRatio << " at " << spec.ranks << " ranks (max/mean estimated "
       << "per-tick work); the slowest shard gates every tick";
    emit("NSC042", os.str());
  }

  // NSC043: the partition cut itself can dominate the tick.
  if (plan.total_bytes_per_tick > kExchangeBytesPerTickCapacity) {
    std::ostringstream os;
    os << "partition-cut exchange bound " << plan.total_bytes_per_tick << " bytes/tick "
       << "across " << plan.total_messages_per_tick << " frames exceeds the "
       << kExchangeBytesPerTickCapacity << " bytes/tick exchange capacity; the cut "
       << "crosses too many (core, delay, word) routes — repartition or reduce ranks";
    emit("NSC043", os.str());
  }

  // NSC044: ranks heartbeat only while waiting (every deadline/4 ms); a
  // compute phase longer than that window risks a false RankTimeout.
  if (spec.rank_deadline_ms > 0 && spec.ranks > 1) {
    const double quarter_ns = static_cast<double>(spec.rank_deadline_ms) * 1e6 / 4.0;
    if (plan.est_tick_ns > quarter_ns) {
      std::ostringstream os;
      os << "worst-case tick bound " << plan.est_tick_ns / 1e6 << " ms exceeds "
         << "rank-deadline-ms/4 = " << quarter_ns / 1e6 << " ms; a healthy rank can be "
         << "silent longer than the heartbeat window and be killed as hung (false "
         << "RankTimeout) — raise --rank-deadline-ms to >= "
         << static_cast<std::uint64_t>(plan.est_tick_ns * 4.0 / 1e6) + 1;
      emit("NSC044", os.str());
    }
  }

  // NSC045: recovery = restore the shadow image + replay up to a full
  // recovery interval of worst-case ticks.
  if (spec.supervise && plan.recovery.recovery_ns > kRecoveryBudgetNs) {
    std::ostringstream os;
    os << "worst-case recovery cost " << plan.recovery.recovery_ns / 1e9 << " s ("
       << plan.recovery.image_bytes << "-byte shadow image + replay of "
       << spec.recovery_interval << " ticks x " << plan.total_work_per_tick
       << " work/tick) exceeds the " << kRecoveryBudgetNs / 1e9
       << " s budget; lower --recovery-interval";
    emit("NSC045", os.str());
  }

  // NSC046: the replica-batch SoA footprint must fit the budget.
  if (plan.replica.total_bytes > spec.replica_memory_budget) {
    std::ostringstream os;
    os << "replica-batch footprint " << plan.replica.total_bytes << " bytes ("
       << plan.replica.shared_bytes << " shared + " << spec.replicas << " x "
       << plan.replica.per_replica_bytes << " per replica) exceeds the "
       << spec.replica_memory_budget << "-byte budget; reduce --replicas or raise "
       << "--mem-budget-mb";
    emit("NSC046", os.str());
  }

  // NSC047: the modeled critical path prefers a different rank count.
  if (plan.recommended_ranks != spec.ranks) {
    std::ostringstream os;
    os << "modeled critical-path tick time favors " << plan.recommended_ranks
       << " rank(s) over the requested " << spec.ranks << " (bound "
       << plan.est_tick_ns / 1e3 << " us/tick at " << spec.ranks << ")";
    emit("NSC047", os.str());
  }

  (void)net;
  sort_findings(fs);
  return fs;
}

obs::JsonValue plan_to_json(const DeploymentPlan& plan, const std::string& net_name,
                            const core::Geometry& geom) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", "nsc-plan-v1");
  doc.set("net", net_name);
  obs::JsonValue g = obs::JsonValue::object();
  g.set("chips_x", geom.chips_x);
  g.set("chips_y", geom.chips_y);
  g.set("cores_x", geom.cores_x);
  g.set("cores_y", geom.cores_y);
  doc.set("geometry", std::move(g));

  obs::JsonValue spec = obs::JsonValue::object();
  spec.set("ranks", plan.spec.ranks);
  spec.set("replicas", plan.spec.replicas);
  spec.set("supervise", plan.spec.supervise);
  spec.set("rank_deadline_ms", plan.spec.rank_deadline_ms);
  spec.set("recovery_interval", static_cast<std::int64_t>(plan.spec.recovery_interval));
  spec.set("replica_memory_budget", plan.spec.replica_memory_budget);
  doc.set("spec", std::move(spec));

  obs::JsonValue ranks = obs::JsonValue::array();
  for (std::size_t r = 0; r < plan.ranks.size(); ++r) {
    const RankBound& b = plan.ranks[r];
    obs::JsonValue jr = obs::JsonValue::object();
    jr.set("rank", static_cast<std::int64_t>(r));
    jr.set("core_begin", static_cast<std::int64_t>(b.shard.begin));
    jr.set("core_end", static_cast<std::int64_t>(b.shard.end));
    jr.set("enabled_neurons", b.enabled_neurons);
    jr.set("axons_targeted", b.axons_targeted);
    jr.set("reachable_synapses", b.reachable_synapses);
    jr.set("work_bound", b.work_bound);
    jr.set("send_messages", b.send_messages);
    jr.set("send_bytes", b.send_bytes);
    jr.set("est_tick_ns", b.est_tick_ns);
    ranks.push_back(std::move(jr));
  }
  doc.set("ranks", std::move(ranks));

  obs::JsonValue totals = obs::JsonValue::object();
  totals.set("messages_per_tick", plan.total_messages_per_tick);
  totals.set("bytes_per_tick", plan.total_bytes_per_tick);
  totals.set("work_per_tick", plan.total_work_per_tick);
  totals.set("load_imbalance", plan.load_imbalance);
  totals.set("est_tick_ns", plan.est_tick_ns);
  doc.set("totals", std::move(totals));
  doc.set("recommended_ranks", plan.recommended_ranks);

  obs::JsonValue rep = obs::JsonValue::object();
  rep.set("shared_bytes", plan.replica.shared_bytes);
  rep.set("per_replica_bytes", plan.replica.per_replica_bytes);
  rep.set("total_bytes", plan.replica.total_bytes);
  doc.set("replica", std::move(rep));

  obs::JsonValue rec = obs::JsonValue::object();
  rec.set("image_bytes", plan.recovery.image_bytes);
  rec.set("replay_work_bound", plan.recovery.replay_work_bound);
  rec.set("recovery_ns", plan.recovery.recovery_ns);
  doc.set("recovery", std::move(rec));
  return doc;
}

namespace {

const obs::JsonValue& need(const obs::JsonValue& doc, std::string_view path) {
  const obs::JsonValue* v = doc.find_path(path);
  if (v == nullptr) {
    throw std::runtime_error("nsc-plan-v1: missing field '" + std::string(path) + "'");
  }
  return *v;
}

std::uint64_t need_u64(const obs::JsonValue& doc, std::string_view path) {
  return static_cast<std::uint64_t>(need(doc, path).as_int());
}

}  // namespace

DeploymentPlan plan_from_json(const obs::JsonValue& doc) {
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "nsc-plan-v1") {
    throw std::runtime_error("not an nsc-plan-v1 document");
  }
  DeploymentPlan plan;
  plan.spec.ranks = static_cast<int>(need(doc, "spec.ranks").as_int());
  plan.spec.replicas = static_cast<int>(need(doc, "spec.replicas").as_int());
  plan.spec.supervise = need(doc, "spec.supervise").as_bool();
  plan.spec.rank_deadline_ms = static_cast<int>(need(doc, "spec.rank_deadline_ms").as_int());
  plan.spec.recovery_interval = need(doc, "spec.recovery_interval").as_int();
  plan.spec.replica_memory_budget = need_u64(doc, "spec.replica_memory_budget");

  const obs::JsonValue& ranks = need(doc, "ranks");
  for (const obs::JsonValue& jr : ranks.items()) {
    RankBound b;
    b.shard.begin = static_cast<CoreId>(need(jr, "core_begin").as_int());
    b.shard.end = static_cast<CoreId>(need(jr, "core_end").as_int());
    b.enabled_neurons = need_u64(jr, "enabled_neurons");
    b.axons_targeted = need_u64(jr, "axons_targeted");
    b.reachable_synapses = need_u64(jr, "reachable_synapses");
    b.work_bound = need_u64(jr, "work_bound");
    b.send_messages = need_u64(jr, "send_messages");
    b.send_bytes = need_u64(jr, "send_bytes");
    b.est_tick_ns = need(jr, "est_tick_ns").as_double();
    plan.ranks.push_back(b);
  }
  plan.total_messages_per_tick = need_u64(doc, "totals.messages_per_tick");
  plan.total_bytes_per_tick = need_u64(doc, "totals.bytes_per_tick");
  plan.total_work_per_tick = need_u64(doc, "totals.work_per_tick");
  plan.load_imbalance = need(doc, "totals.load_imbalance").as_double();
  plan.est_tick_ns = need(doc, "totals.est_tick_ns").as_double();
  plan.recommended_ranks = static_cast<int>(need(doc, "recommended_ranks").as_int());
  plan.replica.shared_bytes = need_u64(doc, "replica.shared_bytes");
  plan.replica.per_replica_bytes = need_u64(doc, "replica.per_replica_bytes");
  plan.replica.total_bytes = need_u64(doc, "replica.total_bytes");
  plan.recovery.image_bytes = need_u64(doc, "recovery.image_bytes");
  plan.recovery.replay_work_bound = need_u64(doc, "recovery.replay_work_bound");
  plan.recovery.recovery_ns = need(doc, "recovery.recovery_ns").as_double();
  return plan;
}

LintReport audit_checkpoint(const std::string& path, const core::Network* net,
                            const std::vector<std::string>& suppress) {
  LintReport rep;
  rep.suppressed = suppress;
  std::sort(rep.suppressed.begin(), rep.suppressed.end());
  rep.suppressed.erase(std::unique(rep.suppressed.begin(), rep.suppressed.end()),
                       rep.suppressed.end());
  auto suppressed = [&](std::string_view rule) {
    return std::binary_search(rep.suppressed.begin(), rep.suppressed.end(), std::string(rule));
  };
  auto emit = [&](std::string_view rule, std::string message, CoreId core = core::kInvalidCore,
                  int neuron = -1, std::uint64_t count = 1) {
    if (suppressed(rule)) return;
    Finding f;
    f.rule = std::string(rule);
    f.severity = catalog_severity(rule);
    f.message = std::move(message);
    f.core = core;
    f.neuron = neuron;
    f.count = count;
    rep.findings.push_back(std::move(f));
  };

  core::Snapshot snap;
  try {
    snap = core::load_snapshot(path);
  } catch (const std::exception& e) {
    // NSC048: the loader's hostile-file hardening already rejected the file
    // (bad magic/version, implausible geometry, counts exceeding the stream)
    // before allocating for it; surface its verdict as the finding.
    emit("NSC048", path + ": rejected by the checkpoint loader: " + e.what());
    sort_findings(rep.findings);
    return rep;
  }

  // NSC049: a checkpoint only restores into the network it was taken from.
  if (net != nullptr && (snap.geom != net->geom || snap.net_seed != net->seed)) {
    std::ostringstream os;
    os << path << ": checkpoint belongs to geometry " << snap.geom.chips_x << "x"
       << snap.geom.chips_y << " chips of " << snap.geom.cores_x << "x" << snap.geom.cores_y
       << " cores, seed " << snap.net_seed << "; the network declares "
       << net->geom.chips_x << "x" << net->geom.chips_y << " chips of " << net->geom.cores_x
       << "x" << net->geom.cores_y << ", seed " << net->seed
       << " — restoring would be rejected (or silently wrong state)";
    emit("NSC049", os.str());
  }

  // NSC050: fault bitmaps are strictly boolean; any other byte means the
  // file was forged or corrupted past the loader's structural checks.
  {
    std::uint64_t bad = 0;
    CoreId first = core::kInvalidCore;
    for (std::size_t c = 0; c < snap.dead_cores.size(); ++c) {
      if (snap.dead_cores[c] > 1) {
        ++bad;
        if (first == core::kInvalidCore) first = static_cast<CoreId>(c);
      }
    }
    for (const std::uint8_t b : snap.dead_links) bad += b > 1 ? 1 : 0;
    if (bad > 0) {
      std::ostringstream os;
      os << path << ": " << bad << " fault-bitmap byte(s) are neither 0 nor 1 (first: core "
         << (first == core::kInvalidCore ? 0 : first)
         << "); the liveness state is not interpretable";
      emit("NSC050", os.str(), first, -1, bad);
    }
  }

  // NSC051: potentials must lie in the hardware's 20-bit membrane envelope —
  // hostile values outside it break the kernels' fast-path proofs.
  {
    std::uint64_t bad = 0;
    CoreId first_core = core::kInvalidCore;
    int first_neuron = -1;
    for (std::size_t i = 0; i < snap.v.size(); ++i) {
      const std::int32_t v = snap.v[i];
      if (v > core::kPotentialMax || v < core::kPotentialMin) {
        ++bad;
        if (first_core == core::kInvalidCore) {
          first_core = static_cast<CoreId>(i / kCoreSize);
          first_neuron = static_cast<int>(i % kCoreSize);
        }
      }
    }
    if (bad > 0) {
      std::ostringstream os;
      os << path << ": " << bad << " membrane potential(s) outside the 20-bit envelope ["
         << core::kPotentialMin << ", " << core::kPotentialMax << "] (first: core "
         << first_core << " neuron " << first_neuron << ")";
      emit("NSC051", os.str(), first_core, first_neuron, bad);
    }
  }

  // NSC052: stats.ticks counts processed ticks since the last reset; it can
  // trail the absolute clock but never lead it in an honestly produced file.
  if (snap.tick < static_cast<core::Tick>(snap.stats.ticks)) {
    std::ostringstream os;
    os << path << ": header tick " << snap.tick << " is behind stats.ticks "
       << snap.stats.ticks << "; the counters claim more ticks than the clock has seen";
    emit("NSC052", os.str());
  }

  // NSC053 / NSC054: runtime fault state a deployer should know about, and
  // deliveries buffered on cores that will never process them.
  {
    std::uint64_t dead_cores = 0, dead_links = 0;
    for (const std::uint8_t b : snap.dead_cores) dead_cores += b == 1 ? 1 : 0;
    for (const std::uint8_t b : snap.dead_links) dead_links += b == 1 ? 1 : 0;
    if (dead_cores + dead_links > 0) {
      std::ostringstream os;
      os << path << ": checkpoint carries runtime fault state (" << dead_cores
         << " dead core(s), " << dead_links << " dead link(s)); a restore resumes the "
         << "degraded world, not the pristine network";
      emit("NSC053", os.str(), core::kInvalidCore, -1, dead_cores + dead_links);
    }
    constexpr std::size_t kWordsPerCore = 16 * 4;
    std::uint64_t stuck = 0;
    CoreId first = core::kInvalidCore;
    for (std::size_t c = 0; c < snap.dead_cores.size(); ++c) {
      if (snap.dead_cores[c] != 1) continue;
      const std::size_t base = c * kWordsPerCore;
      if (base + kWordsPerCore > snap.delay_words.size()) break;
      for (std::size_t w = 0; w < kWordsPerCore; ++w) {
        if (snap.delay_words[base + w] != 0) {
          ++stuck;
          if (first == core::kInvalidCore) first = static_cast<CoreId>(c);
          break;
        }
      }
    }
    if (stuck > 0) {
      std::ostringstream os;
      os << path << ": " << stuck << " dead core(s) still hold in-flight deliveries in "
         << "their delay buffers (first: core " << first
         << "); those spikes can never be processed";
      emit("NSC054", os.str(), first, -1, stuck);
    }
  }

  sort_findings(rep.findings);
  return rep;
}

}  // namespace nsc::analysis
