#include "src/tn/chip_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/core/snapshot.hpp"

namespace nsc::tn {

using core::CoreId;
using core::kCoreSize;
using core::NeuronParams;
using core::Tick;

TrueNorthSimulator::TrueNorthSimulator(const core::Network& net, SimOptions opts)
    : net_(net),
      opts_(opts),
      prng_(net.seed),
      faults_(net.geom.total_cores()),
      link_faults_(net.geom.chips()),
      traffic_(net.geom),
      v_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      delay_(static_cast<std::size_t>(net.geom.total_cores()) * kDelaySlots),
      enabled_(static_cast<std::size_t>(net.geom.total_cores())),
      enabled_count_(static_cast<std::size_t>(net.geom.total_cores()), 0),
      route_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize),
      target_ok_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      target_faulted_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0) {
  // Resolve metric slots once; the per-tick path only touches references.
  ph_inject_ = &obs_.phase("inject");
  ph_compute_ = &obs_.phase("compute");
  ph_commit_ = &obs_.phase("commit");
  ctr_cores_failed_ = &obs_.counter("fault.cores_failed");
  ctr_links_failed_ = &obs_.counter("fault.links_failed");
  ctr_fault_dropped_ = &obs_.counter("fault.spikes_dropped");
  ctr_rerouted_hops_ = &obs_.counter("fault.rerouted_hops");
  ctr_cores_visited_ = &obs_.counter("cores_visited");
  ctr_cores_skipped_ = &obs_.counter("cores_skipped");
  ctr_events_delivered_ = &obs_.counter("events_delivered");
  ctr_kernel_isa_ =
      &obs_.counter(std::string("kernel.isa_") + kernels::isa_name(kern_->isa));
  *ctr_kernel_isa_ = 1;
  ctr_dispatch_[0] = &obs_.counter("kernel.dispatch_sparse");
  ctr_dispatch_[1] = &obs_.counter("kernel.dispatch_hybrid");
  ctr_dispatch_[2] = &obs_.counter("kernel.dispatch_dense");
  for (int b = 0; b < 8; ++b) {
    ctr_density_[b] = &obs_.counter("kernel.density_b" + std::to_string(b));
  }
  const auto ncores = static_cast<CoreId>(net.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    if (net.core(c).disabled) faults_.mark(c);
    for (int j = 0; j < kCoreSize; ++j) {
      v_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j)] =
          net.core(c).neuron[j].init_v;
    }
  }
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    if (spec.disabled) continue;
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (p.target.valid() && p.target.core < ncores && !net.core(p.target.core).disabled) {
        target_ok_[nid] = 1;
        route_[nid] = noc::route_with_faults(net.geom, faults_, link_faults_, c, p.target.core);
        if (!route_[nid].reachable) {
          // Fault-disconnected target: function-level delivery proceeds (a
          // deployable configuration must avoid this; the counter flags it)
          // with Manhattan hop accounting, keeping the two kernel
          // expressions functionally identical.
          ++unreachable_targets_;
          route_[nid] = noc::route_dor(net.geom, c, p.target.core);
        }
      }
    }
  }
  init_activity();
}

void TrueNorthSimulator::init_activity() {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  active_ = core::ActiveSet(0, ncores, kDelaySlots);
  always_active_.assign(static_cast<std::size_t>(ncores), 0);
  hot_ok_.assign(static_cast<std::size_t>(ncores), 0);
  hot_.assign(static_cast<std::size_t>(ncores) * core::kHotStride, 0);
  wtab_.assign(static_cast<std::size_t>(ncores) * core::kWeightTabPerCore, 0);
  fire_.assign(static_cast<std::size_t>(ncores) * kCoreSize, core::HotFire{});
  rowpop_.assign(static_cast<std::size_t>(ncores) * kCoreSize, 0);
  // Density profiles restart at the hybrid default: perf-only derived state,
  // so a restored run re-learns its strategies without perturbing output.
  profile_.assign(static_cast<std::size_t>(ncores), kernels::CoreProfile{});
  live_enabled_ = 0;
  live_cores_ = 0;
  for (CoreId c = 0; c < ncores; ++c) {
    util::BitRow256* rows = &delay_[static_cast<std::size_t>(c) * kDelaySlots];
    if (faults_.is_faulted(c)) {
      // A dense loop would clear stale slot bits of a dead core on its next
      // visit; the worklist never visits it, so clear them here once.
      for (int s = 0; s < kDelaySlots; ++s) rows[s].reset();
      continue;
    }
    ++live_cores_;
    live_enabled_ += enabled_count_[c];
    const core::CoreSpec& spec = net_.core(c);
    if (core::core_hot_eligible(spec, enabled_count_[c]) &&
        core::hot_potentials_safe(&v_[static_cast<std::size_t>(c) * kCoreSize])) {
      hot_ok_[c] = 1;
      core::fill_hot_core(spec, &hot_[static_cast<std::size_t>(c) * core::kHotStride],
                          &wtab_[static_cast<std::size_t>(c) * core::kWeightTabPerCore]);
      core::fill_hot_fire(spec, &fire_[static_cast<std::size_t>(c) * kCoreSize]);
      for (int i = 0; i < kCoreSize; ++i) {
        rowpop_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(i)] =
            static_cast<std::uint16_t>(spec.crossbar.row(i).count());
      }
    }
    const bool always = core::core_always_active(spec, enabled_[c]);
    always_active_[c] = always ? 1 : 0;
    if (always ||
        core::core_restless_at(spec, enabled_[c], &v_[static_cast<std::size_t>(c) * kCoreSize])) {
      active_.set_restless(c, true);
    }
    for (int s = 0; s < kDelaySlots; ++s) {
      if (rows[s].any()) active_.mark_event(c, s);
    }
  }
}

void TrueNorthSimulator::step(Tick t, const core::InputSchedule* inputs, core::SpikeSink* sink) {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  const bool multichip = net_.geom.chips() > 1 && opts_.track_interchip_traffic;
  const bool obs_on = obs::kEnabled && opts_.collect_phase_metrics;
  const std::uint64_t t0 = obs_on ? obs::now_ns() : 0;

  const int si = static_cast<int>(t % kDelaySlots);
  if (inputs != nullptr) {
    for (const core::InputSpike& s : inputs->at(t)) {
      if (s.core >= ncores) continue;
      if (!faults_.is_faulted(s.core)) {
        slot(s.core, t).set(s.axon);
        active_.mark_event(s.core, si);
      } else if (!net_.core(s.core).disabled) {
        // Aimed at a core a fault campaign killed mid-run: absorbed, but
        // counted — degradation must be observable, never silent.
        ++*ctr_fault_dropped_;
      }
    }
  }
  const std::uint64_t t1 = obs_on ? obs::now_ns() : 0;

  std::uint64_t max_sops = 0, max_axons = 0, max_spikes = 0;
  std::uint64_t visited = 0, delivered = 0;
  // Accumulator for one core's synaptic input; lives outside the loop so the
  // hot path never reallocates.
  std::int32_t acc[kCoreSize];

  // Event-driven core walk: only cores with pending axon events in this
  // tick's delay slot or live idle dynamics are visited; everything else is
  // provably a no-op (core::idle_quiescent) and contributes zero to every
  // stat except neuron_updates, which is compensated in bulk below.
  active_.for_each_active(si, [&](CoreId c) {
    ++visited;
    util::BitRow256& axons = slot(c, t);
    const core::CoreSpec& spec = net_.core(c);
    const std::uint64_t core_axons = static_cast<std::uint64_t>(axons.count());
    if (enabled_count_[c] == 0) {
      // Crossbar rows are still read on delivery even when no neuron
      // consumes them (counted as axon events, zero SOPs).
      axons.reset();
      stats_.axon_events += core_axons;
      max_axons = std::max(max_axons, core_axons);
      return;
    }
    std::uint64_t core_sops = 0, core_spikes = 0;
    const bool hot = hot_ok_[c] != 0;

    // --- Synapse phase: word-level walk of active axons only. Each crossbar
    // row is intersected with the enabled mask a word at a time; SOPs are
    // batched per word (popcount) and set bits extracted with ctz, so cost
    // tracks the number of live synapses, never 256. ---
    if (core_axons != 0) {
      std::fill(acc, acc + kCoreSize, 0);
      const util::BitRow256& en = enabled_[c];
      if (hot) {
        // Fast path: every synapse deterministic — a dense weight-table row
        // per axon type replaces the scattered per-synapse NeuronParams load.
        // The profile-chosen strategy folds to one per-word cutoff (always
        // SIMD / popcount branch / always ctz); every branch computes the
        // identical accumulator, so the choice is performance-only.
        kernels::CoreProfile& prof = profile_[c];
        const int cut = kernels::strategy_cut(prof.strategy);
        std::uint32_t vis_words = 0;
        std::uint32_t vis_bits = 0;
        const std::int16_t* wt = &wtab_[static_cast<std::size_t>(c) * core::kWeightTabPerCore];
        if (prof.strategy == kernels::Strategy::kDense) {
          // Dense strategy: the whole visit goes to the fused SIMD kernel in
          // one dispatch — no per-word popcount branch, no per-row indirect
          // call. Hot cores have every lane enabled, so the raw crossbar row
          // is the mask and SOPs come from the init-time row popcounts.
          std::int16_t idx[kCoreSize];
          int nax = 0;
          std::uint32_t row_bits = 0;
          const std::uint16_t* rp = &rowpop_[static_cast<std::size_t>(c) * kCoreSize];
          axons.for_each_set([&](int i) {
            idx[nax++] = static_cast<std::int16_t>(i);
            row_bits += rp[i];
          });
          core_sops += row_bits;
          vis_words = static_cast<std::uint32_t>(nax) * util::BitRow256::kWords;
          vis_bits = row_bits;
          kern_->accumulate_core(acc, wt, &spec.crossbar.row(0), spec.axon_type.data(), rp, idx,
                                 nax);
        } else {
          axons.for_each_set([&](int i) {
            const std::int16_t* wrow =
                wt +
                static_cast<std::size_t>(spec.axon_type[static_cast<std::size_t>(i)]) * kCoreSize;
            spec.crossbar.row(i).for_each_masked_word(en, [&](int base, std::uint64_t bits) {
              const int pc = util::popcount64(bits);
              core_sops += static_cast<std::uint64_t>(pc);
              ++vis_words;
              vis_bits += static_cast<std::uint32_t>(pc);
              if (pc >= cut) {
                kern_->accumulate_word(acc + base, wrow + base, bits);
                return;
              }
              do {
                const int j = base + util::lowest_set(bits);
                acc[j] += wrow[j];
                bits = util::clear_lowest(bits);
              } while (bits != 0);
            });
          });
        }
        ++*ctr_dispatch_[static_cast<int>(prof.strategy)];
        if (vis_words != 0) {
          ++*ctr_density_[std::min<std::uint32_t>(7, (vis_bits / vis_words) >> 3)];
          kernels::update_profile(prof, vis_words, vis_bits, core::kDenseWordCut);
        }
      } else {
        axons.for_each_set([&](int i) {
          const int g = spec.axon_type[static_cast<std::size_t>(i)];
          spec.crossbar.row(i).for_each_masked_word(en, [&](int base, std::uint64_t bits) {
            core_sops += static_cast<std::uint64_t>(util::popcount64(bits));
            do {
              const int j = base + util::lowest_set(bits);
              const NeuronParams& p = spec.neuron[j];
              if (p.stochastic_weight == 0) {
                acc[j] += p.weight[g];
              } else {
                acc[j] += core::synapse_delta(p, g, prng_, c, static_cast<std::uint32_t>(j), t,
                                              static_cast<std::uint32_t>(i));
              }
              bits = util::clear_lowest(bits);
            } while (bits != 0);
          });
        });
      }
    }

    // --- Neuron phase: leak, threshold, fire, reset — every enabled neuron
    // of a *visited* core (the chip multiplexes one physical neuron circuit
    // over all 256 logical neurons each tick; skipped cores are exactly the
    // ones where that pass would change nothing). ---
    const bool check_restless = always_active_[c] == 0;
    bool restless = false;
    // Spike emission/delivery tail shared by the fast and generic loops.
    const auto emit = [&](int j, const core::AxonTarget& tgt, std::size_t nid) {
      ++core_spikes;
      if (sink != nullptr) sink->on_spike(t, c, static_cast<std::uint16_t>(j));
      if (target_ok_[nid] != 0) {
        const Tick arrive = t + tgt.delay;
        slot(tgt.core, arrive).set(tgt.axon);
        active_.mark_event(tgt.core, static_cast<int>(arrive % kDelaySlots));
        ++delivered;
        stats_.hop_sum += static_cast<std::uint64_t>(route_[nid].hops);
        stats_.interchip_crossings += static_cast<std::uint64_t>(route_[nid].chip_crossings);
        if (multichip && route_[nid].chip_crossings > 0) traffic_.record_route(c, tgt.core);
      } else {
        ++stats_.dropped_spikes;
        if (target_faulted_[nid] != 0) ++*ctr_fault_dropped_;
      }
    };
    if (hot) {
      // Fast path: a vectorizable int32 sweep (dispatched tier, src/kernels/)
      // folds acc+leak into the whole core and flags the neurons where a fire
      // or floor event is possible; only those run the exact slow functions.
      // The sweep hands back the flags as four bit-words walked with ctz.
      std::int32_t* vrow = &v_[static_cast<std::size_t>(c) * kCoreSize];
      const std::int32_t* hrow = &hot_[static_cast<std::size_t>(c) * core::kHotStride];
      const core::HotFire* frow = &fire_[static_cast<std::size_t>(c) * kCoreSize];
      std::uint64_t bad[4];
      kern_->sweep_badmask(vrow, core_axons != 0 ? acc : nullptr, hrow, bad);
      for (int w = 0; w < 4; ++w) {
        std::uint64_t word = bad[w];
        while (word != 0) {
          const int j = w * 64 + util::lowest_set(word);
          word = util::clear_lowest(word);
          std::int32_t vj = vrow[j];
          const core::HotFire& fj = frow[j];
          const std::int32_t alpha = hrow[kCoreSize + j];
          const bool fired =
              core::hot_fire_reset(vj, alpha, fj, prng_, c, static_cast<std::uint32_t>(j), t);
          vrow[j] = vj;
          if (check_restless && !core::hot_idle_quiescent(vj, hrow[j], alpha, fj)) restless = true;
          if (fired) {
            emit(j, fj.target,
                 static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j));
          }
        }
      }
    } else {
      enabled_[c].for_each_set([&](int j) {
        const NeuronParams& p = spec.neuron[j];
        const std::size_t nid =
            static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
        std::int32_t vj = v_[nid];
        if (core_axons != 0) {
          vj = core::clamp_potential(static_cast<std::int64_t>(vj) + acc[j]);
        }
        const bool fired =
            core::leak_threshold_update(vj, p, prng_, c, static_cast<std::uint32_t>(j), t);
        v_[nid] = vj;
        if (check_restless && !core::idle_quiescent(p, vj)) restless = true;
        if (fired) emit(j, p.target, nid);
      });
    }
    if (check_restless) active_.set_restless(c, restless);

    axons.reset();
    stats_.sops += core_sops;
    stats_.axon_events += core_axons;
    stats_.spikes += core_spikes;
    max_sops = std::max(max_sops, core_sops);
    max_axons = std::max(max_axons, core_axons);
    max_spikes = std::max(max_spikes, core_spikes);
  });

  // Skipped cores still run their (no-op) neuron pass on the chip: count
  // every enabled neuron of every live core so the SOPS/W accounting — and
  // cross-backend stats equality — is independent of the worklist.
  stats_.neuron_updates += live_enabled_;
  *ctr_cores_visited_ += visited;
  *ctr_cores_skipped_ += live_cores_ - visited;
  *ctr_events_delivered_ += delivered;

  stats_.sum_max_core_sops += max_sops;
  stats_.sum_max_core_axon_events += max_axons;
  stats_.sum_max_core_spikes += max_spikes;
  ++stats_.ticks;
  const std::uint64_t t2 = obs_on ? obs::now_ns() : 0;
  if (multichip) traffic_.end_tick();
  if (sink != nullptr) sink->on_tick_end(t);
  if (obs_on) {
    const std::uint64_t t3 = obs::now_ns();
    ph_inject_->add(t1 - t0);
    ph_compute_->add(t2 - t1);
    ph_commit_->add(t3 - t2);
  }
}

void TrueNorthSimulator::run(Tick nticks, const core::InputSchedule* inputs,
                             core::SpikeSink* sink) {
  for (Tick i = 0; i < nticks; ++i) {
    step(now_, inputs, sink);
    ++now_;
  }
}

void TrueNorthSimulator::refresh_targets_after_fault(bool count_reroutes) {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    if (faults_.is_faulted(c)) continue;
    const core::CoreSpec& spec = net_.core(c);
    enabled_[c].for_each_set([&](int j) {
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      // Fault state only shrinks, so neurons already dropping stay dropping;
      // only currently-deliverable targets need re-evaluation.
      if (target_ok_[nid] == 0) return;
      const core::AxonTarget& tgt = spec.neuron[j].target;
      if (faults_.is_faulted(tgt.core)) {
        target_ok_[nid] = 0;
        target_faulted_[nid] = 1;
        return;
      }
      const noc::RouteInfo r =
          noc::route_with_faults(net_.geom, faults_, link_faults_, c, tgt.core);
      if (!r.reachable) {
        // The mid-run rule: once faults occur, a target no detour can reach
        // drops its spikes (counted) instead of the constructor's
        // deliver-anyway deployment-error accounting.
        target_ok_[nid] = 0;
        target_faulted_[nid] = 1;
        return;
      }
      if (count_reroutes && r.hops > route_[nid].hops) {
        *ctr_rerouted_hops_ += static_cast<std::uint64_t>(r.hops - route_[nid].hops);
      }
      route_[nid] = r;
    });
  }
}

bool TrueNorthSimulator::fail_core(core::CoreId c) {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  if (c >= ncores || faults_.is_faulted(c)) return false;
  faults_.mark(c);
  runtime_faults_ = true;
  live_enabled_ -= enabled_count_[c];
  --live_cores_;
  always_active_[c] = 0;
  active_.clear_core(c);
  enabled_[c] = util::BitRow256{};
  enabled_count_[c] = 0;
  // In-flight deliveries to the dead core die with it — counted, not silent.
  std::uint64_t pending = 0;
  for (int s = 0; s < kDelaySlots; ++s) {
    util::BitRow256& row = delay_[static_cast<std::size_t>(c) * kDelaySlots + s];
    pending += static_cast<std::uint64_t>(row.count());
    row.reset();
  }
  *ctr_fault_dropped_ += pending;
  ++*ctr_cores_failed_;
  refresh_targets_after_fault(/*count_reroutes=*/true);
  return true;
}

bool TrueNorthSimulator::fail_link(int chip, int dir) {
  if (net_.geom.chips() <= 1) return false;
  if (chip < 0 || chip >= net_.geom.chips() || dir < 0 || dir >= 4) return false;
  if (link_faults_.blocked(chip, dir)) return false;
  link_faults_.mark(chip, dir);
  runtime_faults_ = true;
  ++*ctr_links_failed_;
  refresh_targets_after_fault(/*count_reroutes=*/true);
  return true;
}

void TrueNorthSimulator::save_checkpoint(std::ostream& os) const {
  core::Snapshot snap;
  snap.backend = core::SnapshotBackend::kTrueNorth;
  snap.geom = net_.geom;
  snap.net_seed = net_.seed;
  snap.tick = now_;
  snap.stats = stats_;
  const auto ncores = static_cast<std::size_t>(net_.geom.total_cores());
  snap.dead_cores.resize(ncores, 0);
  for (std::size_t c = 0; c < ncores; ++c) {
    snap.dead_cores[c] = faults_.is_faulted(static_cast<CoreId>(c)) ? 1 : 0;
  }
  const int chips = net_.geom.chips();
  snap.dead_links.resize(static_cast<std::size_t>(chips) * 4, 0);
  for (int ch = 0; ch < chips; ++ch) {
    for (int d = 0; d < 4; ++d) {
      snap.dead_links[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] =
          link_faults_.blocked(ch, d) ? 1 : 0;
    }
  }
  snap.v = v_;
  snap.delay_words.reserve(delay_.size() * util::BitRow256::kWords);
  for (const util::BitRow256& row : delay_) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) snap.delay_words.push_back(row.word(w));
  }
  snap.set_extra("fault.cores_failed", *ctr_cores_failed_);
  snap.set_extra("fault.links_failed", *ctr_links_failed_);
  snap.set_extra("fault.spikes_dropped", *ctr_fault_dropped_);
  snap.set_extra("fault.rerouted_hops", *ctr_rerouted_hops_);
  snap.traffic_link_totals.resize(static_cast<std::size_t>(chips) * 4, 0);
  for (int ch = 0; ch < chips; ++ch) {
    for (int d = 0; d < 4; ++d) {
      snap.traffic_link_totals[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] =
          traffic_.link_total(ch, static_cast<noc::LinkDir>(d));
    }
  }
  snap.traffic_total = traffic_.total_crossings();
  snap.traffic_max_per_tick = traffic_.max_link_packets_per_tick();
  core::save_snapshot(snap, os);
}

void TrueNorthSimulator::load_checkpoint(std::istream& is) {
  const core::Snapshot snap = core::load_snapshot(is);
  if (snap.geom != net_.geom) {
    throw std::runtime_error("checkpoint geometry does not match this simulator's network");
  }
  if (snap.net_seed != net_.seed) {
    throw std::runtime_error("checkpoint was taken against a different network (seed mismatch)");
  }
  now_ = snap.tick;
  stats_ = snap.stats;
  v_ = snap.v;
  for (std::size_t i = 0; i < delay_.size(); ++i) {
    for (int w = 0; w < util::BitRow256::kWords; ++w) {
      delay_[i].set_word(w, snap.delay_words[i * util::BitRow256::kWords +
                                             static_cast<std::size_t>(w)]);
    }
  }

  // Rebuild the fault state and everything derived from it. The snapshot's
  // dead set must contain the network's static faults; anything beyond them
  // is a runtime (campaign) fault, which re-activates the mid-run drop rule
  // exactly as the original simulator's fail_core/fail_link calls did.
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  faults_ = noc::FaultSet(static_cast<int>(ncores));
  link_faults_ = noc::LinkFaultSet(net_.geom.chips());
  runtime_faults_ = false;
  for (CoreId c = 0; c < ncores; ++c) {
    const bool static_dead = net_.core(c).disabled != 0;
    const bool dead = snap.dead_cores[c] != 0 || static_dead;
    if (dead) faults_.mark(c);
    if (dead && !static_dead) runtime_faults_ = true;
  }
  for (int ch = 0; ch < net_.geom.chips(); ++ch) {
    for (int d = 0; d < 4; ++d) {
      if (snap.dead_links[static_cast<std::size_t>(ch) * 4 + static_cast<std::size_t>(d)] != 0) {
        link_faults_.mark(ch, d);
        runtime_faults_ = true;
      }
    }
  }
  for (CoreId c = 0; c < ncores; ++c) {
    enabled_[c] = util::BitRow256{};
    enabled_count_[c] = 0;
    if (faults_.is_faulted(c)) continue;
    const core::CoreSpec& spec = net_.core(c);
    for (int j = 0; j < kCoreSize; ++j) {
      if (!spec.neuron[j].enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
    }
  }
  // Re-derive target deliverability from the restored fault state; this is a
  // pure function of the final fault sets, so it reproduces the state the
  // saving simulator reached incrementally.
  std::fill(target_ok_.begin(), target_ok_.end(), 0);
  std::fill(target_faulted_.begin(), target_faulted_.end(), 0);
  unreachable_targets_ = 0;
  for (CoreId c = 0; c < ncores; ++c) {
    if (faults_.is_faulted(c)) continue;
    const core::CoreSpec& spec = net_.core(c);
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled || !p.target.valid() || p.target.core >= ncores) continue;
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      const bool static_ok = net_.core(p.target.core).disabled == 0;
      if (!static_ok) continue;  // dropped since construction; not fault-counted
      if (faults_.is_faulted(p.target.core)) {
        target_faulted_[nid] = 1;  // killed mid-run
        continue;
      }
      const noc::RouteInfo r =
          noc::route_with_faults(net_.geom, faults_, link_faults_, c, p.target.core);
      if (r.reachable) {
        target_ok_[nid] = 1;
        route_[nid] = r;
      } else if (runtime_faults_) {
        target_faulted_[nid] = 1;  // fault-disconnected: mid-run drop rule
      } else {
        // No runtime faults: constructor semantics (deployment error,
        // deliver anyway with Manhattan hop accounting).
        ++unreachable_targets_;
        target_ok_[nid] = 1;
        route_[nid] = noc::route_dor(net_.geom, c, p.target.core);
      }
    }
  }

  // Worklists are derived state: re-derive restless bits from the restored
  // potentials and event bits from the restored delay rings (never persisted
  // — the snapshot format is unchanged).
  init_activity();

  *ctr_cores_failed_ = snap.extra("fault.cores_failed");
  *ctr_links_failed_ = snap.extra("fault.links_failed");
  *ctr_fault_dropped_ = snap.extra("fault.spikes_dropped");
  *ctr_rerouted_hops_ = snap.extra("fault.rerouted_hops");
  traffic_.reset();
  if (!snap.traffic_link_totals.empty()) {
    traffic_.restore(snap.traffic_link_totals, snap.traffic_total, snap.traffic_max_per_tick);
  }
}

}  // namespace nsc::tn
