#include "src/tn/chip_sim.hpp"

#include <algorithm>

namespace nsc::tn {

using core::CoreId;
using core::kCoreSize;
using core::NeuronParams;
using core::Tick;

TrueNorthSimulator::TrueNorthSimulator(const core::Network& net, SimOptions opts)
    : net_(net),
      opts_(opts),
      prng_(net.seed),
      faults_(net.geom.total_cores()),
      traffic_(net.geom),
      v_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0),
      delay_(static_cast<std::size_t>(net.geom.total_cores()) * kDelaySlots),
      enabled_(static_cast<std::size_t>(net.geom.total_cores())),
      enabled_count_(static_cast<std::size_t>(net.geom.total_cores()), 0),
      route_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize),
      target_ok_(static_cast<std::size_t>(net.geom.total_cores()) * kCoreSize, 0) {
  // Resolve metric slots once; the per-tick path only touches references.
  ph_inject_ = &obs_.phase("inject");
  ph_compute_ = &obs_.phase("compute");
  ph_commit_ = &obs_.phase("commit");
  const auto ncores = static_cast<CoreId>(net.geom.total_cores());
  for (CoreId c = 0; c < ncores; ++c) {
    if (net.core(c).disabled) faults_.mark(c);
    for (int j = 0; j < kCoreSize; ++j) {
      v_[static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j)] =
          net.core(c).neuron[j].init_v;
    }
  }
  for (CoreId c = 0; c < ncores; ++c) {
    const core::CoreSpec& spec = net.core(c);
    if (spec.disabled) continue;
    for (int j = 0; j < kCoreSize; ++j) {
      const NeuronParams& p = spec.neuron[j];
      if (!p.enabled) continue;
      enabled_[c].set(j);
      ++enabled_count_[c];
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      if (p.target.valid() && p.target.core < ncores && !net.core(p.target.core).disabled) {
        target_ok_[nid] = 1;
        route_[nid] = noc::route_with_faults(net.geom, faults_, c, p.target.core);
        if (!route_[nid].reachable) {
          // Fault-disconnected target: function-level delivery proceeds (a
          // deployable configuration must avoid this; the counter flags it)
          // with Manhattan hop accounting, keeping the two kernel
          // expressions functionally identical.
          ++unreachable_targets_;
          route_[nid] = noc::route_dor(net.geom, c, p.target.core);
        }
      }
    }
  }
}

void TrueNorthSimulator::step(Tick t, const core::InputSchedule* inputs, core::SpikeSink* sink) {
  const auto ncores = static_cast<CoreId>(net_.geom.total_cores());
  const bool multichip = net_.geom.chips() > 1 && opts_.track_interchip_traffic;
  const bool obs_on = obs::kEnabled && opts_.collect_phase_metrics;
  const std::uint64_t t0 = obs_on ? obs::now_ns() : 0;

  if (inputs != nullptr) {
    for (const core::InputSpike& s : inputs->at(t)) {
      if (s.core < ncores && !net_.core(s.core).disabled) slot(s.core, t).set(s.axon);
    }
  }
  const std::uint64_t t1 = obs_on ? obs::now_ns() : 0;

  std::uint64_t max_sops = 0, max_axons = 0, max_spikes = 0;
  // Accumulator for one core's synaptic input; lives outside the loop so the
  // hot path never reallocates.
  std::int32_t acc[kCoreSize];

  for (CoreId c = 0; c < ncores; ++c) {
    util::BitRow256& axons = slot(c, t);
    const core::CoreSpec& spec = net_.core(c);
    if (spec.disabled) {
      // Faulted cores absorb nothing; stale bits must not survive into the
      // slot's next reuse 16 ticks later.
      axons.reset();
      continue;
    }
    const std::uint64_t core_axons = static_cast<std::uint64_t>(axons.count());
    if (enabled_count_[c] == 0) {
      // Crossbar rows are still read on delivery even when no neuron
      // consumes them (counted as axon events, zero SOPs).
      axons.reset();
      stats_.axon_events += core_axons;
      max_axons = std::max(max_axons, core_axons);
      continue;
    }
    std::uint64_t core_sops = 0, core_spikes = 0;

    // --- Synapse phase: event-driven walk of active axons only. ---
    if (core_axons != 0) {
      std::fill(acc, acc + kCoreSize, 0);
      axons.for_each_set([&](int i) {
        const int g = spec.axon_type[static_cast<std::size_t>(i)];
        // Mask to enabled neurons: SOPs are counted only where a neuron
        // consumes the weighted-accumulate.
        util::BitRow256 masked = spec.crossbar.row(i);
        for (int w = 0; w < util::BitRow256::kWords; ++w) {
          masked.set_word(w, masked.word(w) & enabled_[c].word(w));
        }
        masked.for_each_set([&](int j) {
          const NeuronParams& p = spec.neuron[j];
          if (p.stochastic_weight == 0) {
            acc[j] += p.weight[g];
          } else {
            acc[j] += core::synapse_delta(p, g, prng_, c, static_cast<std::uint32_t>(j), t,
                                          static_cast<std::uint32_t>(i));
          }
          ++core_sops;
        });
      });
    }

    // --- Neuron phase: leak, threshold, fire, reset — every enabled neuron,
    // every tick (the chip multiplexes one physical neuron circuit over all
    // 256 logical neurons each tick). ---
    enabled_[c].for_each_set([&](int j) {
      const NeuronParams& p = spec.neuron[j];
      const std::size_t nid = static_cast<std::size_t>(c) * kCoreSize + static_cast<std::size_t>(j);
      std::int32_t vj = v_[nid];
      if (core_axons != 0) {
        vj = core::clamp_potential(static_cast<std::int64_t>(vj) + acc[j]);
      }
      ++stats_.neuron_updates;
      const bool fired =
          core::leak_threshold_update(vj, p, prng_, c, static_cast<std::uint32_t>(j), t);
      v_[nid] = vj;
      if (!fired) return;

      ++core_spikes;
      if (sink != nullptr) sink->on_spike(t, c, static_cast<std::uint16_t>(j));
      if (target_ok_[nid] != 0) {
        slot(p.target.core, t + p.target.delay).set(p.target.axon);
        stats_.hop_sum += static_cast<std::uint64_t>(route_[nid].hops);
        stats_.interchip_crossings += static_cast<std::uint64_t>(route_[nid].chip_crossings);
        if (multichip && route_[nid].chip_crossings > 0) traffic_.record_route(c, p.target.core);
      } else {
        ++stats_.dropped_spikes;
      }
    });

    axons.reset();
    stats_.sops += core_sops;
    stats_.axon_events += core_axons;
    stats_.spikes += core_spikes;
    max_sops = std::max(max_sops, core_sops);
    max_axons = std::max(max_axons, core_axons);
    max_spikes = std::max(max_spikes, core_spikes);
  }

  stats_.sum_max_core_sops += max_sops;
  stats_.sum_max_core_axon_events += max_axons;
  stats_.sum_max_core_spikes += max_spikes;
  ++stats_.ticks;
  const std::uint64_t t2 = obs_on ? obs::now_ns() : 0;
  if (multichip) traffic_.end_tick();
  if (sink != nullptr) sink->on_tick_end(t);
  if (obs_on) {
    const std::uint64_t t3 = obs::now_ns();
    ph_inject_->add(t1 - t0);
    ph_compute_->add(t2 - t1);
    ph_commit_->add(t3 - t2);
  }
}

void TrueNorthSimulator::run(Tick nticks, const core::InputSchedule* inputs,
                             core::SpikeSink* sink) {
  for (Tick i = 0; i < nticks; ++i) {
    step(now_, inputs, sink);
    ++now_;
  }
}

}  // namespace nsc::tn
