// TrueNorth expression of the kernel: an architectural simulator of the chip
// (and of seamlessly tiled multi-chip arrays).
//
// This is the silicon side of the paper's co-design pair. It executes the
// same NetworkDescription as the Compass expression, spike-for-spike, while
// additionally accounting for what the silicon would do physically:
//   - event-driven synaptic integration through per-core 256×256 crossbars,
//   - 16-slot axonal delay buffers (delays 1–15, paper §III-A),
//   - dimension-order routing hop counts per spike (paper §III-C),
//   - merge–split inter-chip crossings for tiled arrays (paper Fig. 3(c)),
//   - per-tick critical-path core load, which bounds the maximum tick
//     frequency (paper Fig. 5(b,c)),
//   - detour routing around faulted cores.
// The energy/timing models in src/energy consume these counters to produce
// the paper's power, GSOPS and GSOPS/W numbers.
#pragma once

#include <memory>
#include <vector>

#include "src/core/active_set.hpp"
#include "src/core/input_schedule.hpp"
#include "src/core/neuron_hot.hpp"
#include "src/core/network.hpp"
#include "src/kernels/kernels.hpp"
#include "src/noc/route.hpp"
#include "src/noc/traffic.hpp"
#include "src/obs/obs.hpp"
#include "src/util/bitrow.hpp"
#include "src/util/prng.hpp"

namespace nsc::tn {

struct SimOptions {
  bool track_interchip_traffic = true;  ///< Record merge–split link loads.
  /// Runtime toggle for the per-phase wall-time metrics (four monotonic
  /// clock reads per tick; spike output is identical either way). NSC_OBS=0
  /// compiles the instrumentation out regardless of this flag.
  bool collect_phase_metrics = true;
};

class TrueNorthSimulator final : public core::Simulator {
 public:
  /// The network must outlive the simulator. Cores marked `disabled` are
  /// treated as faulted: they produce nothing, absorb nothing, and routes
  /// detour around them (hop counts reflect the detours).
  explicit TrueNorthSimulator(const core::Network& net, SimOptions opts = {});

  void run(core::Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) override;
  [[nodiscard]] core::Tick now() const override { return now_; }
  [[nodiscard]] const core::KernelStats& stats() const override { return stats_; }
  void reset_stats() override {
    stats_.reset();
    traffic_.reset();
  }

  /// Checkpoint/restore: full dynamic state (tick, potentials, delay
  /// buffers, runtime fault state, kernel and traffic counters). A restored
  /// run continues bit-exactly; snapshots interchange with Compass.
  void save_checkpoint(std::ostream& os) const override;
  void load_checkpoint(std::istream& is) override;

  /// Mid-run faults (docs/RESILIENCE.md): the core/link dies at the next
  /// tick boundary, in-flight deliveries to it are dropped and counted
  /// (obs counter fault.spikes_dropped), surviving routes re-detour around
  /// it (extra hops in fault.rerouted_hops), and targets no detour can reach
  /// drop their spikes from then on.
  bool fail_core(core::CoreId c) override;
  bool fail_link(int chip, int dir) override;

  /// Membrane potential access for white-box tests.
  [[nodiscard]] std::int32_t potential(core::CoreId c, int neuron) const {
    return v_[static_cast<std::size_t>(c) * core::kCoreSize + static_cast<std::size_t>(neuron)];
  }

  /// Inter-chip merge–split traffic (meaningful when geometry has >1 chip).
  [[nodiscard]] const noc::InterChipTraffic& traffic() const noexcept { return traffic_; }

  /// Per-phase wall-time metrics accumulated so far. Phases: "inject"
  /// (external input application), "compute" (the event-driven core array
  /// walk: synapse + neuron + routing), "commit" (traffic epoch close and
  /// sink tick boundary). Counters: "cores_visited" / "cores_skipped" (the
  /// worklist's per-tick visit/skip split over live cores) and
  /// "events_delivered" (spike deliveries into axon delay slots), plus the
  /// fault.* family. Phase timers are empty when collect_phase_metrics is
  /// off or NSC_OBS=0; counters are always live.
  [[nodiscard]] const obs::Registry& metrics() const noexcept { return obs_; }

  /// Zeroes the phase timers.
  void reset_metrics() noexcept {
    obs_.reset();
    *ctr_kernel_isa_ = 1;  // The dispatched tier marker survives metric resets.
  }

  /// Mean mesh hops per routed spike so far.
  [[nodiscard]] double mean_hops_per_spike() const {
    const auto routed = stats_.spikes - stats_.dropped_spikes;
    return routed ? static_cast<double>(stats_.hop_sum) / static_cast<double>(routed) : 0.0;
  }

  /// Neurons whose targets cannot be physically routed around the fault set
  /// (a deployment error: such spikes are still delivered function-level so
  /// the kernel expressions stay 1:1, but the configuration is unshippable).
  [[nodiscard]] std::uint64_t unreachable_targets() const noexcept {
    return unreachable_targets_;
  }

 private:
  static constexpr int kDelaySlots = core::kMaxDelay + 1;

  [[nodiscard]] util::BitRow256& slot(core::CoreId c, core::Tick t) {
    return delay_[static_cast<std::size_t>(c) * kDelaySlots +
                  static_cast<std::size_t>(t % kDelaySlots)];
  }

  void step(core::Tick t, const core::InputSchedule* inputs, core::SpikeSink* sink);

  /// (Re)derives everything the event-driven worklist needs from the current
  /// network/fault/potential/delay-ring state: restless + event bitmaps, the
  /// per-core always_active flags, and the live-core/enabled-neuron totals.
  /// Called at construction and after load_checkpoint (worklists are derived
  /// state — deliberately not part of the snapshot format).
  void init_activity();

  /// Re-evaluates every live target against the current fault state (the
  /// mid-run rule: dead or fault-disconnected targets drop their spikes).
  /// With `count_reroutes`, detour growth is added to fault.rerouted_hops.
  void refresh_targets_after_fault(bool count_reroutes);

  const core::Network& net_;
  SimOptions opts_;
  util::CounterPrng prng_;
  core::Tick now_ = 0;
  core::KernelStats stats_;
  noc::FaultSet faults_;
  noc::LinkFaultSet link_faults_;
  bool runtime_faults_ = false;  ///< Any fault beyond the network's static ones.
  noc::InterChipTraffic traffic_;

  /// Phase timers; accumulator references resolved once at construction
  /// (Registry::reset keeps them valid).
  obs::Registry obs_;
  obs::PhaseAccum* ph_inject_ = nullptr;
  obs::PhaseAccum* ph_compute_ = nullptr;
  obs::PhaseAccum* ph_commit_ = nullptr;
  std::uint64_t* ctr_cores_failed_ = nullptr;
  std::uint64_t* ctr_links_failed_ = nullptr;
  std::uint64_t* ctr_fault_dropped_ = nullptr;
  std::uint64_t* ctr_rerouted_hops_ = nullptr;
  std::uint64_t* ctr_cores_visited_ = nullptr;
  std::uint64_t* ctr_cores_skipped_ = nullptr;
  std::uint64_t* ctr_events_delivered_ = nullptr;
  std::uint64_t* ctr_kernel_isa_ = nullptr;  ///< kernel.isa_<tier> = 1.
  std::uint64_t* ctr_dispatch_[3] = {};      ///< kernel.dispatch_{sparse,hybrid,dense}.
  std::uint64_t* ctr_density_[8] = {};       ///< kernel.density_b0..b7.

  std::vector<std::int32_t> v_;              ///< Membrane potentials, core-major.
  std::vector<util::BitRow256> delay_;       ///< Axon delay buffers, 16 slots/core.
  std::vector<util::BitRow256> enabled_;     ///< Per-core enabled-neuron mask.
  std::vector<std::uint16_t> enabled_count_; ///< Enabled neurons per core.
  /// Precomputed route of each neuron's (static) target: hops + crossings.
  std::vector<noc::RouteInfo> route_;
  /// Neurons with valid, healthy targets (others drop their spikes).
  std::vector<std::uint8_t> target_ok_;
  /// Neurons whose target_ok_ was revoked by a mid-run fault (their dropped
  /// spikes count into fault.spikes_dropped, never silently).
  std::vector<std::uint8_t> target_faulted_;
  std::uint64_t unreachable_targets_ = 0;

  /// Event-driven worklist state (derived; rebuilt by init_activity).
  core::ActiveSet active_;
  std::vector<std::uint8_t> always_active_;  ///< Cores with parameter-level idle dynamics.
  std::uint64_t live_enabled_ = 0;           ///< Σ enabled_count_ over live cores.
  std::uint64_t live_cores_ = 0;             ///< Non-faulted cores.

  /// Fast-path constants for homogeneous deterministic cores (derived;
  /// rebuilt by init_activity — see src/core/neuron_hot.hpp).
  std::vector<std::uint8_t> hot_ok_;     ///< Core qualifies for the fast loops.
  std::vector<std::int32_t> hot_;        ///< SoA leak|alpha|floor rows (kHotStride/core).
  std::vector<std::int16_t> wtab_;       ///< Dense per-(core, type) weight rows.
  std::vector<core::HotFire> fire_;      ///< Packed fire-path constants (kCoreSize/core).
  std::vector<std::uint16_t> rowpop_;   ///< Crossbar row popcounts (kCoreSize/core).

  /// Runtime-dispatched SIMD kernels (src/kernels/): tier resolved once at
  /// construction (NSC_FORCE_ISA honored). Per-core density profiles drive
  /// the accumulate strategy; perf-only derived state, reset by
  /// init_activity.
  const kernels::Kernels* kern_ = &kernels::select_kernels();
  std::vector<kernels::CoreProfile> profile_;
};

}  // namespace nsc::tn
