// Local multi-process transport for the sharded backend.
//
// This is the ONLY translation unit allowed to create processes and sockets
// (lint_invariants INV005): everything above it talks in framed messages
// over an abstract Channel, so an MPI or TCP transport can replace the
// socketpair/fork implementation without touching the protocol, the rank
// loop or the coordinator.
//
// Topology: spawn_ranks(N) builds a full mesh — one Unix-domain stream
// socketpair per (coordinator, rank) pair and one per unordered rank pair —
// then forks the N rank processes. Peer-channel exchange is poll()-driven
// and non-blocking on both directions simultaneously, so two ranks sending
// large batches to each other cannot deadlock on kernel socket buffers, and
// a peer's death surfaces deterministically as EOF on its channel.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace nsc::dist {

/// One framed message: kind tag + raw payload bytes (src/dist/protocol.hpp).
struct Frame {
  std::uint32_t kind = 0;
  std::vector<std::uint8_t> payload;
};

/// Thrown when a rank stays silent past its configured I/O deadline
/// (Config::rank_deadline_ms): the rank was declared hung (not merely slow —
/// heartbeats would have refreshed its last-seen clock), its process has
/// already been killed and its death absorbed, so the exception is safe to
/// catch and recover from (dist::Supervisor) or to surface as a clean
/// non-zero exit (nsc_run).
class RankTimeout : public std::runtime_error {
 public:
  explicit RankTimeout(const std::string& what) : std::runtime_error(what) {}
};

/// Outcome of a deadline-bounded frame receive.
enum class RecvStatus {
  kOk,       ///< A full frame arrived.
  kClosed,   ///< EOF or error: the peer is gone; the channel is now dead.
  kTimeout,  ///< No bytes for `deadline_ms`: the caller must treat the
             ///< channel as wedged (it may hold a partial frame — kill it).
};

/// A bidirectional framed byte channel over one socket. Blocking send/recv
/// (used on the coordinator<->rank channels); peer channels are switched to
/// non-blocking and driven by PeerPump instead. A closed/EOF/EPIPE channel
/// turns dead and stays dead — death is state, not an exception.
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel() { close(); }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Channel& operator=(Channel&& other) noexcept;

  /// Sends one frame; false when the peer is gone (EPIPE/reset), after which
  /// the channel is dead. Signals are never raised (MSG_NOSIGNAL).
  bool send_frame(std::uint32_t kind, const void* payload, std::size_t size);

  /// Receives one frame (blocking); false on EOF or a dead channel.
  bool recv_frame(Frame& out);

  /// Deadline-bounded receive: waits at most `deadline_ms` of silence for
  /// progress (the clock resets on every byte, so a slow-but-streaming peer
  /// never times out while a wedged one does). deadline_ms <= 0 degrades to
  /// the blocking recv_frame. On kTimeout the channel may hold a partial
  /// frame — the caller must not reuse it for framed I/O (kill + close it).
  RecvStatus recv_frame_deadline(Frame& out, int deadline_ms);

  void set_nonblocking();
  void close();
  [[nodiscard]] bool alive() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// Result of spawn_ranks, valid in exactly one of two shapes:
///   coordinator (rank == -1): `to_rank[r]` + `pids[r]` per rank;
///   rank process (rank >= 0): `to_parent` + `peers[r]` (self entry dead).
struct Spawned {
  int rank = -1;
  std::vector<Channel> to_rank;  ///< Coordinator side.
  std::vector<int> pids;         ///< Coordinator side.
  Channel to_parent;             ///< Rank side.
  std::vector<Channel> peers;    ///< Rank side, indexed by peer rank.

  [[nodiscard]] bool is_child() const noexcept { return rank >= 0; }
};

/// Creates the full channel mesh and forks `nranks` rank processes. Returns
/// once per process: the coordinator gets the parent shape, each child the
/// rank shape. Throws std::runtime_error when the OS runs out of resources.
[[nodiscard]] Spawned spawn_ranks(int nranks);

/// Terminates the calling rank process without unwinding — no atexit
/// handlers and no static destructors, because a forked child must not
/// re-run teardown the parent also owns (test-framework state, buffered
/// stdio). Under a --coverage build the gcov counters are flushed first so
/// rank-process execution still counts toward the CI coverage gate.
[[noreturn]] void exit_rank_process(int status) noexcept;

/// Waits for a rank process to exit (after its channel died or a shutdown
/// was sent). Returns the raw wait status, or -1 if pid is invalid.
int reap_rank(int pid);

/// Deadline-bounded reap: polls for the exit up to `deadline_ms`, then
/// SIGKILLs and reaps unconditionally. Guards coordinator teardown against a
/// child that is stopped or wedged and will never exit on its own.
int reap_rank_deadline(int pid, int deadline_ms);

/// Force-kills a rank process (coordinator teardown of a wedged child).
void kill_rank_process(int pid);

/// Stops (SIGSTOP) a rank process without killing it: the fault-campaign
/// model of a wedged-but-alive node — fds stay open, so peers see silence,
/// not EOF, and only a deadline can tell it apart from a slow rank.
void stop_rank_process(int pid);

/// Test hook for Config::hang_rank: parks the calling rank process forever
/// without closing its fds (the in-process twin of stop_rank_process).
[[noreturn]] void wedge_rank_process();

/// Poll-driven duplex frame exchange across the peer mesh. Each round sends
/// exactly one frame to every live peer and receives exactly one from each;
/// receive buffers persist across rounds because a fast peer's next-tick
/// frame can arrive early (the tick-window protocol tolerates one tick of
/// skew). Peers that reach EOF mid-round are reported dead, not fatal.
class PeerPump {
 public:
  PeerPump(std::vector<Channel>* peers, int self);

  /// `out[r]`: frame to send to live peer r (ignored for self/dead peers).
  /// On return, `in[r]` holds the received frame for every peer that was
  /// alive at entry and stayed alive; `newly_dead` lists peers whose channel
  /// hit EOF this round. With `deadline_ms > 0`, a round that makes no byte
  /// progress for that long declares every still-pending peer dead (same
  /// degrade semantics as EOF) instead of blocking forever — the clock
  /// resets on any progress, so a slow-but-streaming peer never trips it.
  void round(const std::vector<Frame>& out, std::vector<Frame>& in,
             std::vector<int>& newly_dead, int deadline_ms = 0);

 private:
  bool try_extract(std::size_t i, Frame& f);

  std::vector<Channel>* peers_;
  int self_;
  std::vector<std::vector<std::uint8_t>> rbuf_;  ///< Per-peer receive accumulation.
};

}  // namespace nsc::dist
