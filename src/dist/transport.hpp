// Local multi-process transport for the sharded backend.
//
// The generic framed-message primitives (Frame, Channel, the poll-driven
// PeerPump, and the POD wire helpers) live in the shared src/ipc/ layer —
// promoted there so nsc_serve and future transports reuse them — and are
// aliased back into nsc::dist here so the rank/coordinator/supervisor code
// and its callers are unchanged. What remains in this translation unit is
// the dist-specific part: the full socketpair mesh + fork of the rank
// fleet, and the rank-process lifecycle helpers (together with src/ipc this
// is the only home of raw process/socket syscalls — lint_invariants
// INV005/INV006).
//
// Topology: spawn_ranks(N) builds a full mesh — one Unix-domain stream
// socketpair per (coordinator, rank) pair and one per unordered rank pair —
// then forks the N rank processes. Peer-channel exchange is poll()-driven
// and non-blocking on both directions simultaneously, so two ranks sending
// large batches to each other cannot deadlock on kernel socket buffers, and
// a peer's death surfaces deterministically as EOF on its channel.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/ipc/channel.hpp"

namespace nsc::dist {

using Frame = ipc::Frame;
using Channel = ipc::Channel;
using RecvStatus = ipc::RecvStatus;
using PeerPump = ipc::PeerPump;

/// Thrown when a rank stays silent past its configured I/O deadline
/// (Config::rank_deadline_ms): the rank was declared hung (not merely slow —
/// heartbeats would have refreshed its last-seen clock), its process has
/// already been killed and its death absorbed, so the exception is safe to
/// catch and recover from (dist::Supervisor) or to surface as a clean
/// non-zero exit (nsc_run).
class RankTimeout : public std::runtime_error {
 public:
  explicit RankTimeout(const std::string& what) : std::runtime_error(what) {}
};

/// Result of spawn_ranks, valid in exactly one of two shapes:
///   coordinator (rank == -1): `to_rank[r]` + `pids[r]` per rank;
///   rank process (rank >= 0): `to_parent` + `peers[r]` (self entry dead).
struct Spawned {
  int rank = -1;
  std::vector<Channel> to_rank;  ///< Coordinator side.
  std::vector<int> pids;         ///< Coordinator side.
  Channel to_parent;             ///< Rank side.
  std::vector<Channel> peers;    ///< Rank side, indexed by peer rank.

  [[nodiscard]] bool is_child() const noexcept { return rank >= 0; }
};

/// Creates the full channel mesh and forks `nranks` rank processes. Returns
/// once per process: the coordinator gets the parent shape, each child the
/// rank shape. Throws std::runtime_error when the OS runs out of resources.
[[nodiscard]] Spawned spawn_ranks(int nranks);

/// Terminates the calling rank process without unwinding — no atexit
/// handlers and no static destructors, because a forked child must not
/// re-run teardown the parent also owns (test-framework state, buffered
/// stdio). Under a --coverage build the gcov counters are flushed first so
/// rank-process execution still counts toward the CI coverage gate.
[[noreturn]] void exit_rank_process(int status) noexcept;

/// Waits for a rank process to exit (after its channel died or a shutdown
/// was sent). Returns the raw wait status, or -1 if pid is invalid.
int reap_rank(int pid);

/// Deadline-bounded reap: polls for the exit up to `deadline_ms`, then
/// SIGKILLs and reaps unconditionally. Guards coordinator teardown against a
/// child that is stopped or wedged and will never exit on its own.
int reap_rank_deadline(int pid, int deadline_ms);

/// Force-kills a rank process (coordinator teardown of a wedged child).
void kill_rank_process(int pid);

/// Stops (SIGSTOP) a rank process without killing it: the fault-campaign
/// model of a wedged-but-alive node — fds stay open, so peers see silence,
/// not EOF, and only a deadline can tell it apart from a slow rank.
void stop_rank_process(int pid);

/// Test hook for Config::hang_rank: parks the calling rank process forever
/// without closing its fds (the in-process twin of stop_rank_process).
[[noreturn]] void wedge_rank_process();

}  // namespace nsc::dist
