// Coordinator of the multi-process sharded Compass backend
// (docs/DISTRIBUTED.md).
//
// Constructing a Coordinator forks Config::ranks rank processes, each owning
// a contiguous balanced shard of the network's cores (compass::partition)
// and running the existing event-driven Compass kernel on it. Each tick the
// ranks exchange destination-rank-batched AER word packets peer-to-peer
// (tick-window protocol, no barrier) while the coordinator merges recorded
// spikes in rank order — shards are ascending core ranges, so the merged
// stream is the canonical (core, neuron) order and the run is
// spike-for-spike identical to single-process Compass and TrueNorth.
//
// The coordinator implements the full core::Simulator contract: checkpoints
// are stitched from per-rank blobs into one ordinary NSCK snapshot (loadable
// by any backend at any rank/thread count), fault injection broadcasts to
// every rank, and a rank process dying mid-run degrades into the existing
// fail_core/spikes_dropped accounting instead of hanging.
#pragma once

#include <iosfwd>
#include <vector>

#include "src/compass/partition.hpp"
#include "src/core/network.hpp"
#include "src/dist/protocol.hpp"
#include "src/dist/rank.hpp"
#include "src/dist/transport.hpp"
#include "src/noc/route.hpp"
#include "src/obs/obs.hpp"

namespace nsc::dist {

class Coordinator final : public core::Simulator {
 public:
  /// Forks the rank processes. The network must outlive the coordinator.
  /// Throws std::invalid_argument for ranks < 1 or threads_per_rank < 1.
  Coordinator(const core::Network& net, Config cfg);
  ~Coordinator() override;

  void run(core::Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) override;
  [[nodiscard]] core::Tick now() const override { return now_; }
  [[nodiscard]] const core::KernelStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  /// Checkpoint stitching: every live rank serializes its shard state; the
  /// coordinator splices the shard-owned slices into one snapshot carrying
  /// its authoritative tick/stats/fault bookkeeping. The result is a plain
  /// NSCK snapshot — restorable single-process or at any rank count.
  void save_checkpoint(std::ostream& os) const override;
  void load_checkpoint(std::istream& is) override;

  /// Broadcast fault injection: every rank applies the same fail at the same
  /// command boundary, so the drop rule stays identical on all shards.
  bool fail_core(core::CoreId c) override;
  bool fail_link(int chip, int dir) override;

  /// Process-level fault injection (rank-kill / rank-hang campaign events):
  /// SIGKILLs (`hang == false`) or SIGSTOPs (`hang == true`) the rank's
  /// process. The failure is NOT absorbed here — it surfaces through the
  /// normal detection paths (EOF for a kill, deadline expiry for a hang),
  /// exactly like a real node loss would.
  bool fail_rank(int rank, bool hang) override;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<compass::CoreRange>& shards() const noexcept { return shards_; }
  [[nodiscard]] bool rank_alive(int r) const noexcept {
    return alive_[static_cast<std::size_t>(r)] != 0;
  }
  [[nodiscard]] int live_ranks() const noexcept;

  /// Aggregated counters: the compass trio (messages, message_bytes,
  /// cores_visited/skipped, events_delivered), the fault.* set, and the
  /// dist layer's own dist.messages / dist.bytes / dist.exchange_ns.
  [[nodiscard]] const obs::Registry& metrics() const noexcept { return obs_; }

  /// Wall nanoseconds each rank spent computing / exchanging so far.
  [[nodiscard]] const std::vector<std::uint64_t>& rank_compute_ns() const noexcept {
    return rank_compute_ns_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& rank_exchange_ns() const noexcept {
    return rank_exchange_ns_;
  }

  /// Compute work units (SOPs + axon events + neuron updates) each rank has
  /// reported so far — the measured side of the deployment planner's
  /// per-rank bound (src/analysis/plan.hpp, docs/ANALYSIS.md).
  [[nodiscard]] const std::vector<std::uint64_t>& rank_compute_work() const noexcept {
    return rank_work_;
  }

  /// Load imbalance across ranks: max / mean per-rank compute time.
  [[nodiscard]] double load_imbalance() const noexcept;

 private:
  void fold_report(int rank, const std::vector<std::uint8_t>& payload);
  /// Collects one kReport from every live rank (ranks that die while we wait
  /// are absorbed via on_rank_death).
  void collect_reports();
  void on_rank_death(int r);
  void broadcast(MsgKind kind, const void* payload, std::size_t size);
  /// Deadline-aware receive from rank r: drains kHeartbeat frames (each one
  /// refreshes the silence window), returns false after absorbing an EOF
  /// death, and on deadline expiry kills the hung rank, absorbs its death,
  /// and throws RankTimeout. With rank_deadline_ms == 0 this is exactly the
  /// old blocking recv_frame.
  bool recv_from_rank(int r, Frame& f);

  const core::Network& net_;
  Config cfg_;
  core::Tick now_ = 0;
  core::KernelStats stats_;
  std::vector<compass::CoreRange> shards_;
  std::vector<Channel> to_rank_;
  std::vector<int> pids_;
  std::vector<std::uint8_t> alive_;
  /// Ranks SIGSTOPped by fail_rank(hang): the destructor must SIGKILL them
  /// before reaping — waitpid on a stopped process never returns.
  std::vector<std::uint8_t> stopped_;

  /// Coordinator-side fault mirror: validates fail_* calls (same contract as
  /// the in-process backends) and owns the cores_failed/links_failed counts,
  /// which every rank would otherwise report R times over.
  std::vector<std::uint8_t> dead_;
  noc::LinkFaultSet dead_links_;
  std::uint64_t messages_total_ = 0;

  obs::Registry obs_;
  std::uint64_t* ctr_messages_ = nullptr;
  std::uint64_t* ctr_message_bytes_ = nullptr;
  std::uint64_t* ctr_cores_failed_ = nullptr;
  std::uint64_t* ctr_links_failed_ = nullptr;
  std::uint64_t* ctr_fault_dropped_ = nullptr;
  std::uint64_t* ctr_cores_visited_ = nullptr;
  std::uint64_t* ctr_cores_skipped_ = nullptr;
  std::uint64_t* ctr_events_delivered_ = nullptr;
  std::uint64_t* ctr_dist_messages_ = nullptr;
  std::uint64_t* ctr_dist_bytes_ = nullptr;
  std::uint64_t* ctr_dist_exchange_ns_ = nullptr;
  std::uint64_t* ctr_heartbeats_missed_ = nullptr;
  std::vector<std::uint64_t> rank_compute_ns_;
  std::vector<std::uint64_t> rank_exchange_ns_;
  std::vector<std::uint64_t> rank_work_;
};

}  // namespace nsc::dist
