#include "src/dist/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace nsc::dist {

using core::Tick;

namespace {

/// Per-segment output buffer: spikes and tick-end marks are replayed to the
/// user sink only after the segment is known good, and only for ticks at or
/// past the committed watermark — a rollback replays the pre-fault prefix
/// without double-emitting it.
class BufferSink final : public core::SpikeSink {
 public:
  void on_spike(Tick tick, core::CoreId c, std::uint16_t neuron) override {
    ev_.push_back({tick, c, neuron, 0});
  }
  void on_tick_end(Tick tick) override { ev_.push_back({tick, 0, 0, 1}); }

  void flush(core::SpikeSink& out, Tick committed) {
    for (const Ev& e : ev_) {
      if (e.tick < committed) continue;
      if (e.end != 0) {
        out.on_tick_end(e.tick);
      } else {
        out.on_spike(e.tick, e.core, e.neuron);
      }
    }
    ev_.clear();
  }

 private:
  struct Ev {
    Tick tick;
    core::CoreId core;
    std::uint16_t neuron;
    std::uint8_t end;
  };
  std::vector<Ev> ev_;
};

}  // namespace

Supervisor::Supervisor(const core::Network& net, Config cfg, SupervisorConfig scfg)
    : net_(net), cfg_(cfg), scfg_(scfg) {
  if (scfg.recovery_interval < 1) {
    throw std::invalid_argument("dist: recovery_interval must be >= 1");
  }
  if (scfg.max_respawns < 0) throw std::invalid_argument("dist: max_respawns must be >= 0");
  if (scfg.backoff_base_ms < 0) {
    throw std::invalid_argument("dist: backoff_base_ms must be >= 0");
  }
  ctr_respawned_ = &own_.counter("dist.ranks_respawned");
  ctr_recovery_ns_ = &own_.counter("dist.recovery_ns");
  ctr_rollback_ticks_ = &own_.counter("dist.rollback_ticks");
  cfg_.incarnation = incarnation_;
  coord_ = std::make_unique<Coordinator>(net_, cfg_);
  committed_ = coord_->now();
  journal_end_ = coord_->now();
}

const obs::Registry& Supervisor::metrics() const {
  merged_ = coord_->metrics();
  merged_.merge(own_);
  return merged_;
}

void Supervisor::load_checkpoint(std::istream& is) {
  coord_->load_checkpoint(is);
  image_.clear();
  image_tick_ = -1;
  journal_.clear();
  journal_end_ = coord_->now();
  committed_ = coord_->now();
}

bool Supervisor::fail_core(core::CoreId c) {
  const bool ok = coord_->fail_core(c);
  if (ok) {
    image_.clear();
    image_tick_ = -1;
  }
  return ok;
}

bool Supervisor::fail_link(int chip, int dir) {
  const bool ok = coord_->fail_link(chip, dir);
  if (ok) {
    image_.clear();
    image_tick_ = -1;
  }
  return ok;
}

bool Supervisor::fail_rank(int rank, bool hang) { return coord_->fail_rank(rank, hang); }

void Supervisor::refresh_image() {
  if (coord_->live_ranks() != cfg_.ranks) return;  // Never image a degraded fleet.
  if (image_tick_ >= 0 && coord_->now() < image_tick_ + scfg_.recovery_interval) return;
  std::ostringstream os(std::ios::binary);
  coord_->save_checkpoint(os);
  if (coord_->live_ranks() != cfg_.ranks) return;  // Death mid-collection: keep the old image.
  image_ = os.str();
  image_tick_ = coord_->now();
  // The journal only ever needs to reach back to the image tick.
  journal_.erase(std::remove_if(journal_.begin(), journal_.end(),
                                [this](const core::InputSpike& s) { return s.tick < image_tick_; }),
                 journal_.end());
}

void Supervisor::journal_inputs(const core::InputSchedule* inputs, Tick to) {
  if (inputs != nullptr) {
    for (Tick t = journal_end_; t < to; ++t) {
      for (const core::InputSpike& s : inputs->at(t)) journal_.push_back(s);
    }
  }
  journal_end_ = std::max(journal_end_, to);
}

bool Supervisor::recover(Tick planned_end) {
  if (respawns_done_ >= scfg_.max_respawns || image_tick_ < 0) {
    exhausted_ = true;
    return false;
  }
  const std::uint64_t t0 = obs::now_ns();
  // The dying incarnation's hang detections must survive it (every other
  // counter is either restored from the image or legitimately re-earned by
  // the replay).
  own_.counter("dist.heartbeats_missed") +=
      coord_->metrics().counter_value("dist.heartbeats_missed");
  if (scfg_.backoff_base_ms > 0) {
    const int shift = std::min(respawns_done_, 10);
    const int delay = std::min(scfg_.backoff_base_ms << shift, 2000);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  ++respawns_done_;
  ++incarnation_;
  cfg_.incarnation = incarnation_;
  coord_.reset();  // Tears down (and reaps) whatever is left of the fleet.
  coord_ = std::make_unique<Coordinator>(net_, cfg_);
  std::istringstream is(image_, std::ios::binary);
  coord_->load_checkpoint(is);
  *ctr_respawned_ += static_cast<std::uint64_t>(cfg_.ranks);
  *ctr_rollback_ticks_ += static_cast<std::uint64_t>(planned_end - image_tick_);
  *ctr_recovery_ns_ += obs::now_ns() - t0;
  return true;
}

void Supervisor::run(Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) {
  if (nticks <= 0) return;
  const Tick target = coord_->now() + nticks;
  while (coord_->now() < target) {
    if (scfg_.policy != Policy::kRecover || exhausted_) {
      // Plain degrade path: no imaging, no buffering; a hang still surfaces
      // as RankTimeout (when a deadline is configured) rather than a wedge.
      coord_->run(target - coord_->now(), inputs, sink);
      committed_ = coord_->now();
      break;
    }
    Tick seg_end = target;
    try {
      refresh_image();
      if (image_tick_ >= 0) {
        const Tick block_end = image_tick_ + scfg_.recovery_interval;
        seg_end = std::min(target, std::max(block_end, coord_->now() + 1));
      }
      journal_inputs(inputs, seg_end);
      core::InputSchedule replay;
      for (const core::InputSpike& s : journal_) replay.add(s);
      replay.finalize();
      BufferSink buf;
      coord_->run(seg_end - coord_->now(), &replay, sink != nullptr ? &buf : nullptr);
      if (coord_->live_ranks() == cfg_.ranks) {
        if (sink != nullptr) buf.flush(*sink, committed_);
        committed_ = coord_->now();
      } else if (!recover(seg_end)) {
        // Budget spent (or no image): keep the degraded world we have.
        if (sink != nullptr) buf.flush(*sink, committed_);
        committed_ = coord_->now();
      }
    } catch (const RankTimeout&) {
      // A hang always aborts the segment mid-flight (the merge cannot be
      // resumed), so without a successful recovery it must propagate.
      if (!recover(seg_end)) throw;
    }
  }
}

}  // namespace nsc::dist
