// Rank-process side of the sharded backend: one forked process per rank,
// each running a compass::Simulator in shard mode and exchanging
// destination-rank-batched spike words with its peers every tick
// (docs/DISTRIBUTED.md).
#pragma once

#include "src/core/network.hpp"
#include "src/core/types.hpp"
#include "src/dist/transport.hpp"

namespace nsc::dist {

/// Shared coordinator/rank configuration (the fork inherits it by value).
struct Config {
  int ranks = 2;              ///< Rank processes to fork (>= 1).
  int threads_per_rank = 1;   ///< Compass partitions (threads) inside each rank.
  bool collect_phase_metrics = true;
  /// Fault-injection test hook: rank `suicide_rank` exits with status 3
  /// immediately before computing tick `suicide_tick` (-1 = never). Models
  /// a node loss mid-run; peers and the coordinator observe the death as
  /// EOF and degrade via the fail_core accounting instead of hanging.
  int suicide_rank = -1;
  core::Tick suicide_tick = -1;
};

/// Runs the rank command loop until the coordinator shuts it down or its
/// channel dies. Called in the forked child by dist::Coordinator; returns
/// the child's exit status (the caller passes it to std::_Exit).
int rank_main(const core::Network& net, const Config& cfg, Spawned&& spawned);

}  // namespace nsc::dist
