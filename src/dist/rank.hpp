// Rank-process side of the sharded backend: one forked process per rank,
// each running a compass::Simulator in shard mode and exchanging
// destination-rank-batched spike words with its peers every tick
// (docs/DISTRIBUTED.md).
#pragma once

#include "src/core/network.hpp"
#include "src/core/types.hpp"
#include "src/dist/transport.hpp"

namespace nsc::dist {

/// Shared coordinator/rank configuration (the fork inherits it by value).
struct Config {
  int ranks = 2;              ///< Rank processes to fork (>= 1).
  int threads_per_rank = 1;   ///< Compass partitions (threads) inside each rank.
  bool collect_phase_metrics = true;
  /// Fault-injection test hook: rank `suicide_rank` exits with status 3
  /// immediately before computing tick `suicide_tick` (-1 = never). Models
  /// a node loss mid-run; peers and the coordinator observe the death as
  /// EOF and degrade via the fail_core accounting instead of hanging.
  int suicide_rank = -1;
  core::Tick suicide_tick = -1;
  /// Tick phase at which the suicide/suicide2/hang hooks fire: 0 =
  /// pre-compute, 1 = post-compute (before the peer exchange), 2 =
  /// post-exchange (before the recorded spikes reach the coordinator).
  int suicide_phase = 0;
  /// Second independent failure for double-failure-in-one-recovery-window
  /// tests (same exit-3 semantics as the first).
  int suicide2_rank = -1;
  core::Tick suicide2_tick = -1;
  /// Hang hook: the rank wedges forever (fds stay open, so peers see
  /// silence rather than EOF) — only a deadline can detect it.
  int hang_rank = -1;
  core::Tick hang_tick = -1;
  /// Checkpoint-time death: rank `die_on_save_rank` exits on receiving its
  /// `die_on_save_seq`-th kSave command (kills recovery-image collection).
  int die_on_save_rank = -1;
  int die_on_save_seq = 1;
  /// All hooks above fire only when `hook_incarnation` matches `incarnation`
  /// (-1 = every incarnation). The Supervisor bumps `incarnation` on each
  /// respawn, so a tick-T suicide does not refire after rolling back past T.
  int hook_incarnation = 0;
  int incarnation = 0;
  /// Failure-detection deadline: declare a silent rank hung (and kill it)
  /// after this many ms without bytes or heartbeats. 0 = disabled — waits
  /// block forever exactly as before the deadline layer existed.
  int rank_deadline_ms = 0;
};

/// Runs the rank command loop until the coordinator shuts it down or its
/// channel dies. Called in the forked child by dist::Coordinator; returns
/// the child's exit status (the caller passes it to std::_Exit).
int rank_main(const core::Network& net, const Config& cfg, Spawned&& spawned);

}  // namespace nsc::dist
