// Self-healing layer over the sharded backend (docs/DISTRIBUTED.md,
// "Failure model and recovery").
//
// A Supervisor owns a Coordinator and makes rank loss survivable: every
// `recovery_interval` ticks it stitches a shadow checkpoint (an ordinary
// in-memory NSCK image, taken only while every rank is alive) and journals
// the input-spike window from the image tick on. When a rank dies (EOF) or
// is declared hung (RankTimeout from the deadline layer), policy decides:
//
//   kDegrade — today's behavior: a completed-but-degraded segment flushes
//     as-is (the dead shard's cores fail, its spikes drop and are counted);
//     a mid-segment hang still surfaces as RankTimeout, never a wedge.
//   kRecover — tear the whole rank fleet down, respawn it (full-mesh
//     channels cannot be rebuilt around one survivor without fd passing, so
//     resurrection is fleet-granular), restore the recovery image, replay
//     the journaled inputs, and resume. Output spikes buffer per segment
//     and only ticks >= the committed watermark reach the user sink, so the
//     replayed prefix is never double-emitted and the recovered trace is
//     spike-for-spike identical to a fault-free run.
//
// Respawns draw from a bounded budget with exponential backoff; exhausting
// it (or failing with no valid image) permanently falls back to kDegrade.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/input_schedule.hpp"
#include "src/core/network.hpp"
#include "src/dist/coordinator.hpp"
#include "src/obs/obs.hpp"

namespace nsc::dist {

enum class Policy {
  kDegrade,  ///< Absorb rank loss into fault accounting (no resurrection).
  kRecover,  ///< Respawn + rollback + replay, budget permitting.
};

struct SupervisorConfig {
  Policy policy = Policy::kRecover;
  core::Tick recovery_interval = 32;  ///< K: shadow-checkpoint period (ticks).
  int max_respawns = 3;               ///< Fleet-respawn budget for the whole run.
  int backoff_base_ms = 5;            ///< Backoff before respawn i is base << i ms.
};

class Supervisor final : public core::Simulator {
 public:
  /// Forks the rank fleet (by constructing the inner Coordinator). Throws
  /// std::invalid_argument for invalid cfg/scfg values.
  Supervisor(const core::Network& net, Config cfg, SupervisorConfig scfg);

  void run(core::Tick nticks, const core::InputSchedule* inputs, core::SpikeSink* sink) override;
  [[nodiscard]] core::Tick now() const override { return coord_->now(); }
  [[nodiscard]] const core::KernelStats& stats() const override { return coord_->stats(); }
  void reset_stats() override { coord_->reset_stats(); }

  void save_checkpoint(std::ostream& os) const override { coord_->save_checkpoint(os); }
  /// Restores and re-bases recovery state: the retained image and journal
  /// describe a timeline the restore just abandoned, so both are dropped
  /// and the committed watermark jumps to the restored tick.
  void load_checkpoint(std::istream& is) override;

  /// Logical faults invalidate the recovery image: they are part of the
  /// simulated world and must survive a rollback, which the pre-fault image
  /// would undo. The next run() block re-images with the fault applied.
  bool fail_core(core::CoreId c) override;
  bool fail_link(int chip, int dir) override;
  /// Process faults do NOT invalidate the image — undoing them is exactly
  /// what recovery is for.
  bool fail_rank(int rank, bool hang) override;

  /// Coordinator counters merged with the supervisor's own
  /// dist.ranks_respawned / dist.recovery_ns / dist.rollback_ticks.
  [[nodiscard]] const obs::Registry& metrics() const;

  [[nodiscard]] const Coordinator& coordinator() const noexcept { return *coord_; }
  [[nodiscard]] int respawns_done() const noexcept { return respawns_done_; }
  /// True once the respawn budget ran out (policy degraded permanently).
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

 private:
  /// Captures a fresh recovery image when due (block boundary) and the
  /// fleet is fully alive; a death discovered mid-collection discards the
  /// attempt and keeps the previous image.
  void refresh_image();
  /// Journals `inputs` for ticks [journal_end_, to) so a rollback replays
  /// exactly what the original pass consumed.
  void journal_inputs(const core::InputSchedule* inputs, core::Tick to);
  /// Respawns the fleet from the recovery image. False (and permanently
  /// exhausted) when the budget is spent or no valid image exists.
  bool recover(core::Tick planned_end);

  const core::Network& net_;
  Config cfg_;
  SupervisorConfig scfg_;
  std::unique_ptr<Coordinator> coord_;

  std::string image_;            ///< Stitched NSCK bytes (empty = invalid).
  core::Tick image_tick_ = -1;   ///< Tick the image was taken at (-1 = none).
  core::Tick committed_ = 0;     ///< First tick not yet emitted to the user sink.
  std::vector<core::InputSpike> journal_;  ///< Inputs covering [image_tick_, journal_end_).
  core::Tick journal_end_ = 0;

  int respawns_done_ = 0;
  int incarnation_ = 0;
  bool exhausted_ = false;

  obs::Registry own_;
  std::uint64_t* ctr_respawned_ = nullptr;
  std::uint64_t* ctr_recovery_ns_ = nullptr;
  std::uint64_t* ctr_rollback_ticks_ = nullptr;
  mutable obs::Registry merged_;
};

}  // namespace nsc::dist
