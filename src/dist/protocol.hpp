// Wire protocol of the multi-process sharded backend (docs/DISTRIBUTED.md).
//
// Every message on every channel is one frame: an 8-byte header (kind, size)
// followed by `size` payload bytes. Rank processes are forks of the same
// binary, so payloads carry the in-memory representation of the shared PODs
// (core::Spike, core::InputSpike, compass::Simulator::WordDelivery) directly;
// the static_asserts below pin the sizes the frames rely on.
//
// Channels and directions:
//   coordinator -> rank : kRun, kFailCore, kFailLink, kSave, kLoad, kShutdown
//   rank -> coordinator : kTickSpikes (one per tick while recording),
//                         kReport (end of every command), kBlob (kSave reply),
//                         kHeartbeat (liveness, only when a deadline is set)
//   rank <-> rank       : kSpikeBatch (exactly one per tick per live peer)
#pragma once

#include <cstdint>

#include "src/compass/simulator.hpp"
#include "src/core/types.hpp"
#include "src/ipc/channel.hpp"

namespace nsc::dist {

enum class MsgKind : std::uint32_t {
  kRun = 1,        ///< nticks + record flag + the input-spike window.
  kSpikeBatch = 2, ///< tick + destination-rank-batched WordDelivery records.
  kTickSpikes = 3, ///< tick + this rank's recorded spikes for that tick.
  kReport = 4,     ///< RankReport: counter deltas since the previous report.
  kFailCore = 5,   ///< core id to fail at this command boundary.
  kFailLink = 6,   ///< chip + direction of the inter-chip link to fail.
  kSave = 7,       ///< request a full checkpoint blob.
  kBlob = 8,       ///< checkpoint bytes (kSave reply).
  kLoad = 9,       ///< checkpoint bytes to restore.
  kShutdown = 10,  ///< clean exit request.
  kHeartbeat = 11, ///< empty liveness frame: refreshes the rank's last-seen
                   ///< clock so a slow rank is never mistaken for a hung one.
};

/// Per-command counter deltas a rank reports to the coordinator. Deltas (not
/// totals) keep the coordinator's aggregate view authoritative: it folds
/// every report as it arrives, and a checkpoint restore — which overwrites
/// rank-local totals with the global snapshot's — cannot double-count.
struct RankReport {
  std::uint64_t spikes = 0;
  std::uint64_t sops = 0;
  std::uint64_t axon_events = 0;
  std::uint64_t neuron_updates = 0;
  std::uint64_t dropped_spikes = 0;
  std::uint64_t fault_dropped = 0;  ///< fault.spikes_dropped (incl. in-flight wire drops).
  std::uint64_t messages = 0;       ///< Intra-rank aggregated messages.
  std::uint64_t message_bytes = 0;
  std::uint64_t cores_visited = 0;
  std::uint64_t cores_skipped = 0;
  std::uint64_t events_delivered = 0;
  std::uint64_t compute_ns = 0;   ///< Σ per-partition compute wall time.
  std::uint64_t exchange_ns = 0;  ///< Wall time in inter-rank frame exchange.
  std::uint64_t dist_messages = 0;  ///< Inter-rank frames sent.
  std::uint64_t dist_bytes = 0;     ///< Inter-rank payload bytes sent.
};
static_assert(sizeof(RankReport) == 15 * sizeof(std::uint64_t));

static_assert(sizeof(core::Spike) == 16);
static_assert(sizeof(core::InputSpike) == 16);
static_assert(sizeof(compass::Simulator::WordDelivery) == 16);

// POD wire helpers live in the shared IPC layer (bounds-checked there so a
// malformed frame can never read out of bounds); re-exported for the rank
// and coordinator encode/decode paths.
using ipc::get_pod;
using ipc::get_pod_array;
using ipc::put_pod;

}  // namespace nsc::dist
