// Wire protocol of the multi-process sharded backend (docs/DISTRIBUTED.md).
//
// Every message on every channel is one frame: an 8-byte header (kind, size)
// followed by `size` payload bytes. Rank processes are forks of the same
// binary, so payloads carry the in-memory representation of the shared PODs
// (core::Spike, core::InputSpike, compass::Simulator::WordDelivery) directly;
// the static_asserts below pin the sizes the frames rely on.
//
// Channels and directions:
//   coordinator -> rank : kRun, kFailCore, kFailLink, kSave, kLoad, kShutdown
//   rank -> coordinator : kTickSpikes (one per tick while recording),
//                         kReport (end of every command), kBlob (kSave reply),
//                         kHeartbeat (liveness, only when a deadline is set)
//   rank <-> rank       : kSpikeBatch (exactly one per tick per live peer)
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "src/compass/simulator.hpp"
#include "src/core/types.hpp"

namespace nsc::dist {

enum class MsgKind : std::uint32_t {
  kRun = 1,        ///< nticks + record flag + the input-spike window.
  kSpikeBatch = 2, ///< tick + destination-rank-batched WordDelivery records.
  kTickSpikes = 3, ///< tick + this rank's recorded spikes for that tick.
  kReport = 4,     ///< RankReport: counter deltas since the previous report.
  kFailCore = 5,   ///< core id to fail at this command boundary.
  kFailLink = 6,   ///< chip + direction of the inter-chip link to fail.
  kSave = 7,       ///< request a full checkpoint blob.
  kBlob = 8,       ///< checkpoint bytes (kSave reply).
  kLoad = 9,       ///< checkpoint bytes to restore.
  kShutdown = 10,  ///< clean exit request.
  kHeartbeat = 11, ///< empty liveness frame: refreshes the rank's last-seen
                   ///< clock so a slow rank is never mistaken for a hung one.
};

/// Per-command counter deltas a rank reports to the coordinator. Deltas (not
/// totals) keep the coordinator's aggregate view authoritative: it folds
/// every report as it arrives, and a checkpoint restore — which overwrites
/// rank-local totals with the global snapshot's — cannot double-count.
struct RankReport {
  std::uint64_t spikes = 0;
  std::uint64_t sops = 0;
  std::uint64_t axon_events = 0;
  std::uint64_t neuron_updates = 0;
  std::uint64_t dropped_spikes = 0;
  std::uint64_t fault_dropped = 0;  ///< fault.spikes_dropped (incl. in-flight wire drops).
  std::uint64_t messages = 0;       ///< Intra-rank aggregated messages.
  std::uint64_t message_bytes = 0;
  std::uint64_t cores_visited = 0;
  std::uint64_t cores_skipped = 0;
  std::uint64_t events_delivered = 0;
  std::uint64_t compute_ns = 0;   ///< Σ per-partition compute wall time.
  std::uint64_t exchange_ns = 0;  ///< Wall time in inter-rank frame exchange.
  std::uint64_t dist_messages = 0;  ///< Inter-rank frames sent.
  std::uint64_t dist_bytes = 0;     ///< Inter-rank payload bytes sent.
};
static_assert(sizeof(RankReport) == 15 * sizeof(std::uint64_t));

static_assert(sizeof(core::Spike) == 16);
static_assert(sizeof(core::InputSpike) == 16);
static_assert(sizeof(compass::Simulator::WordDelivery) == 16);

/// Appends the raw bytes of a POD to a payload buffer.
template <class T>
void put_pod(std::vector<std::uint8_t>& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

/// Reads a POD back, advancing `off`; throws on truncated payloads so a
/// malformed frame can never read out of bounds.
template <class T>
T get_pod(const std::vector<std::uint8_t>& buf, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (buf.size() - off < sizeof(T)) throw std::runtime_error("dist: truncated frame payload");
  T v;
  std::memcpy(&v, buf.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

/// Reads `n` PODs as a vector (bounds-checked as one block).
template <class T>
std::vector<T> get_pod_array(const std::vector<std::uint8_t>& buf, std::size_t& off,
                             std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (n > (buf.size() - off) / sizeof(T)) {
    throw std::runtime_error("dist: truncated frame payload");
  }
  std::vector<T> v(n);
  std::memcpy(v.data(), buf.data() + off, n * sizeof(T));
  off += n * sizeof(T);
  return v;
}

}  // namespace nsc::dist
